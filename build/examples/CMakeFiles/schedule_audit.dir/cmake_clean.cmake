file(REMOVE_RECURSE
  "CMakeFiles/schedule_audit.dir/schedule_audit.cpp.o"
  "CMakeFiles/schedule_audit.dir/schedule_audit.cpp.o.d"
  "schedule_audit"
  "schedule_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
