# Empty dependencies file for schedule_audit.
# This may be replaced when dependencies are built.
