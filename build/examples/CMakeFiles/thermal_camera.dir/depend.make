# Empty dependencies file for thermal_camera.
# This may be replaced when dependencies are built.
