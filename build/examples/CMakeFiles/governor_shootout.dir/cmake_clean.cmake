file(REMOVE_RECURSE
  "CMakeFiles/governor_shootout.dir/governor_shootout.cpp.o"
  "CMakeFiles/governor_shootout.dir/governor_shootout.cpp.o.d"
  "governor_shootout"
  "governor_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/governor_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
