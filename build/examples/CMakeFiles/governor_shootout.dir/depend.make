# Empty dependencies file for governor_shootout.
# This may be replaced when dependencies are built.
