file(REMOVE_RECURSE
  "CMakeFiles/foscil_cli.dir/foscil_cli.cpp.o"
  "CMakeFiles/foscil_cli.dir/foscil_cli.cpp.o.d"
  "foscil_cli"
  "foscil_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foscil_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
