# Empty compiler generated dependencies file for foscil_cli.
# This may be replaced when dependencies are built.
