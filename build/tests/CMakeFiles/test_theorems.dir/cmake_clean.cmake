file(REMOVE_RECURSE
  "CMakeFiles/test_theorems.dir/theorems/extension_platforms_test.cpp.o"
  "CMakeFiles/test_theorems.dir/theorems/extension_platforms_test.cpp.o.d"
  "CMakeFiles/test_theorems.dir/theorems/property1_test.cpp.o"
  "CMakeFiles/test_theorems.dir/theorems/property1_test.cpp.o.d"
  "CMakeFiles/test_theorems.dir/theorems/theorem1_test.cpp.o"
  "CMakeFiles/test_theorems.dir/theorems/theorem1_test.cpp.o.d"
  "CMakeFiles/test_theorems.dir/theorems/theorem2_test.cpp.o"
  "CMakeFiles/test_theorems.dir/theorems/theorem2_test.cpp.o.d"
  "CMakeFiles/test_theorems.dir/theorems/theorem34_test.cpp.o"
  "CMakeFiles/test_theorems.dir/theorems/theorem34_test.cpp.o.d"
  "CMakeFiles/test_theorems.dir/theorems/theorem5_test.cpp.o"
  "CMakeFiles/test_theorems.dir/theorems/theorem5_test.cpp.o.d"
  "CMakeFiles/test_theorems.dir/theorems/theorem_sweep_test.cpp.o"
  "CMakeFiles/test_theorems.dir/theorems/theorem_sweep_test.cpp.o.d"
  "test_theorems"
  "test_theorems.pdb"
  "test_theorems[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_theorems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
