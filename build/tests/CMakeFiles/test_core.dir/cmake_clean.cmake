file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/ao_options_test.cpp.o"
  "CMakeFiles/test_core.dir/core/ao_options_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/ao_test.cpp.o"
  "CMakeFiles/test_core.dir/core/ao_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/audit_test.cpp.o"
  "CMakeFiles/test_core.dir/core/audit_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/config_loader_test.cpp.o"
  "CMakeFiles/test_core.dir/core/config_loader_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/exs_test.cpp.o"
  "CMakeFiles/test_core.dir/core/exs_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/heterogeneous_test.cpp.o"
  "CMakeFiles/test_core.dir/core/heterogeneous_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/ideal_test.cpp.o"
  "CMakeFiles/test_core.dir/core/ideal_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/integration_test.cpp.o"
  "CMakeFiles/test_core.dir/core/integration_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/lns_test.cpp.o"
  "CMakeFiles/test_core.dir/core/lns_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/pco_test.cpp.o"
  "CMakeFiles/test_core.dir/core/pco_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/reactive_test.cpp.o"
  "CMakeFiles/test_core.dir/core/reactive_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
