
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/ao_options_test.cpp" "tests/CMakeFiles/test_core.dir/core/ao_options_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/ao_options_test.cpp.o.d"
  "/root/repo/tests/core/ao_test.cpp" "tests/CMakeFiles/test_core.dir/core/ao_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/ao_test.cpp.o.d"
  "/root/repo/tests/core/audit_test.cpp" "tests/CMakeFiles/test_core.dir/core/audit_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/audit_test.cpp.o.d"
  "/root/repo/tests/core/config_loader_test.cpp" "tests/CMakeFiles/test_core.dir/core/config_loader_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/config_loader_test.cpp.o.d"
  "/root/repo/tests/core/exs_test.cpp" "tests/CMakeFiles/test_core.dir/core/exs_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/exs_test.cpp.o.d"
  "/root/repo/tests/core/heterogeneous_test.cpp" "tests/CMakeFiles/test_core.dir/core/heterogeneous_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/heterogeneous_test.cpp.o.d"
  "/root/repo/tests/core/ideal_test.cpp" "tests/CMakeFiles/test_core.dir/core/ideal_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/ideal_test.cpp.o.d"
  "/root/repo/tests/core/integration_test.cpp" "tests/CMakeFiles/test_core.dir/core/integration_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/integration_test.cpp.o.d"
  "/root/repo/tests/core/lns_test.cpp" "tests/CMakeFiles/test_core.dir/core/lns_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/lns_test.cpp.o.d"
  "/root/repo/tests/core/pco_test.cpp" "tests/CMakeFiles/test_core.dir/core/pco_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/pco_test.cpp.o.d"
  "/root/repo/tests/core/reactive_test.cpp" "tests/CMakeFiles/test_core.dir/core/reactive_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/reactive_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/foscil_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/foscil_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/foscil_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/foscil_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/foscil_power.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/foscil_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/foscil_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
