file(REMOVE_RECURSE
  "CMakeFiles/test_thermal.dir/thermal/calibration_test.cpp.o"
  "CMakeFiles/test_thermal.dir/thermal/calibration_test.cpp.o.d"
  "CMakeFiles/test_thermal.dir/thermal/floorplan_test.cpp.o"
  "CMakeFiles/test_thermal.dir/thermal/floorplan_test.cpp.o.d"
  "CMakeFiles/test_thermal.dir/thermal/model_test.cpp.o"
  "CMakeFiles/test_thermal.dir/thermal/model_test.cpp.o.d"
  "CMakeFiles/test_thermal.dir/thermal/rc_network_test.cpp.o"
  "CMakeFiles/test_thermal.dir/thermal/rc_network_test.cpp.o.d"
  "CMakeFiles/test_thermal.dir/thermal/stacked_test.cpp.o"
  "CMakeFiles/test_thermal.dir/thermal/stacked_test.cpp.o.d"
  "test_thermal"
  "test_thermal.pdb"
  "test_thermal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
