file(REMOVE_RECURSE
  "CMakeFiles/foscil_thermal.dir/floorplan.cpp.o"
  "CMakeFiles/foscil_thermal.dir/floorplan.cpp.o.d"
  "CMakeFiles/foscil_thermal.dir/model.cpp.o"
  "CMakeFiles/foscil_thermal.dir/model.cpp.o.d"
  "CMakeFiles/foscil_thermal.dir/rc_network.cpp.o"
  "CMakeFiles/foscil_thermal.dir/rc_network.cpp.o.d"
  "libfoscil_thermal.a"
  "libfoscil_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foscil_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
