file(REMOVE_RECURSE
  "libfoscil_thermal.a"
)
