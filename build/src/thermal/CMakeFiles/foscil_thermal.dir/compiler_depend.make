# Empty compiler generated dependencies file for foscil_thermal.
# This may be replaced when dependencies are built.
