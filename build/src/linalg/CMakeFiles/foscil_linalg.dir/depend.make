# Empty dependencies file for foscil_linalg.
# This may be replaced when dependencies are built.
