file(REMOVE_RECURSE
  "CMakeFiles/foscil_linalg.dir/eigen_sym.cpp.o"
  "CMakeFiles/foscil_linalg.dir/eigen_sym.cpp.o.d"
  "CMakeFiles/foscil_linalg.dir/expm.cpp.o"
  "CMakeFiles/foscil_linalg.dir/expm.cpp.o.d"
  "CMakeFiles/foscil_linalg.dir/lu.cpp.o"
  "CMakeFiles/foscil_linalg.dir/lu.cpp.o.d"
  "CMakeFiles/foscil_linalg.dir/matrix.cpp.o"
  "CMakeFiles/foscil_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/foscil_linalg.dir/ode.cpp.o"
  "CMakeFiles/foscil_linalg.dir/ode.cpp.o.d"
  "CMakeFiles/foscil_linalg.dir/spectral.cpp.o"
  "CMakeFiles/foscil_linalg.dir/spectral.cpp.o.d"
  "libfoscil_linalg.a"
  "libfoscil_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foscil_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
