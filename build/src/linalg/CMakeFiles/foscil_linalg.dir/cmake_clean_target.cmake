file(REMOVE_RECURSE
  "libfoscil_linalg.a"
)
