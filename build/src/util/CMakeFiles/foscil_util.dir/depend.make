# Empty dependencies file for foscil_util.
# This may be replaced when dependencies are built.
