file(REMOVE_RECURSE
  "CMakeFiles/foscil_util.dir/config.cpp.o"
  "CMakeFiles/foscil_util.dir/config.cpp.o.d"
  "CMakeFiles/foscil_util.dir/table.cpp.o"
  "CMakeFiles/foscil_util.dir/table.cpp.o.d"
  "libfoscil_util.a"
  "libfoscil_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foscil_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
