file(REMOVE_RECURSE
  "libfoscil_util.a"
)
