# Empty compiler generated dependencies file for foscil_power.
# This may be replaced when dependencies are built.
