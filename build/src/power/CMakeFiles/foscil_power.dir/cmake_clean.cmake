file(REMOVE_RECURSE
  "CMakeFiles/foscil_power.dir/dvfs.cpp.o"
  "CMakeFiles/foscil_power.dir/dvfs.cpp.o.d"
  "libfoscil_power.a"
  "libfoscil_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foscil_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
