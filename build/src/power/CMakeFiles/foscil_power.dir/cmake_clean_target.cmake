file(REMOVE_RECURSE
  "libfoscil_power.a"
)
