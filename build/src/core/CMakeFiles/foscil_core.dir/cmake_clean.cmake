file(REMOVE_RECURSE
  "CMakeFiles/foscil_core.dir/ao.cpp.o"
  "CMakeFiles/foscil_core.dir/ao.cpp.o.d"
  "CMakeFiles/foscil_core.dir/audit.cpp.o"
  "CMakeFiles/foscil_core.dir/audit.cpp.o.d"
  "CMakeFiles/foscil_core.dir/config_loader.cpp.o"
  "CMakeFiles/foscil_core.dir/config_loader.cpp.o.d"
  "CMakeFiles/foscil_core.dir/exs.cpp.o"
  "CMakeFiles/foscil_core.dir/exs.cpp.o.d"
  "CMakeFiles/foscil_core.dir/ideal.cpp.o"
  "CMakeFiles/foscil_core.dir/ideal.cpp.o.d"
  "CMakeFiles/foscil_core.dir/lns.cpp.o"
  "CMakeFiles/foscil_core.dir/lns.cpp.o.d"
  "CMakeFiles/foscil_core.dir/pco.cpp.o"
  "CMakeFiles/foscil_core.dir/pco.cpp.o.d"
  "CMakeFiles/foscil_core.dir/platform.cpp.o"
  "CMakeFiles/foscil_core.dir/platform.cpp.o.d"
  "CMakeFiles/foscil_core.dir/reactive.cpp.o"
  "CMakeFiles/foscil_core.dir/reactive.cpp.o.d"
  "libfoscil_core.a"
  "libfoscil_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foscil_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
