# Empty dependencies file for foscil_core.
# This may be replaced when dependencies are built.
