
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ao.cpp" "src/core/CMakeFiles/foscil_core.dir/ao.cpp.o" "gcc" "src/core/CMakeFiles/foscil_core.dir/ao.cpp.o.d"
  "/root/repo/src/core/audit.cpp" "src/core/CMakeFiles/foscil_core.dir/audit.cpp.o" "gcc" "src/core/CMakeFiles/foscil_core.dir/audit.cpp.o.d"
  "/root/repo/src/core/config_loader.cpp" "src/core/CMakeFiles/foscil_core.dir/config_loader.cpp.o" "gcc" "src/core/CMakeFiles/foscil_core.dir/config_loader.cpp.o.d"
  "/root/repo/src/core/exs.cpp" "src/core/CMakeFiles/foscil_core.dir/exs.cpp.o" "gcc" "src/core/CMakeFiles/foscil_core.dir/exs.cpp.o.d"
  "/root/repo/src/core/ideal.cpp" "src/core/CMakeFiles/foscil_core.dir/ideal.cpp.o" "gcc" "src/core/CMakeFiles/foscil_core.dir/ideal.cpp.o.d"
  "/root/repo/src/core/lns.cpp" "src/core/CMakeFiles/foscil_core.dir/lns.cpp.o" "gcc" "src/core/CMakeFiles/foscil_core.dir/lns.cpp.o.d"
  "/root/repo/src/core/pco.cpp" "src/core/CMakeFiles/foscil_core.dir/pco.cpp.o" "gcc" "src/core/CMakeFiles/foscil_core.dir/pco.cpp.o.d"
  "/root/repo/src/core/platform.cpp" "src/core/CMakeFiles/foscil_core.dir/platform.cpp.o" "gcc" "src/core/CMakeFiles/foscil_core.dir/platform.cpp.o.d"
  "/root/repo/src/core/reactive.cpp" "src/core/CMakeFiles/foscil_core.dir/reactive.cpp.o" "gcc" "src/core/CMakeFiles/foscil_core.dir/reactive.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/foscil_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/foscil_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/foscil_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/foscil_power.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/foscil_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/foscil_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
