file(REMOVE_RECURSE
  "libfoscil_core.a"
)
