# Empty compiler generated dependencies file for foscil_sched.
# This may be replaced when dependencies are built.
