file(REMOVE_RECURSE
  "libfoscil_sched.a"
)
