file(REMOVE_RECURSE
  "CMakeFiles/foscil_sched.dir/schedule.cpp.o"
  "CMakeFiles/foscil_sched.dir/schedule.cpp.o.d"
  "CMakeFiles/foscil_sched.dir/transforms.cpp.o"
  "CMakeFiles/foscil_sched.dir/transforms.cpp.o.d"
  "libfoscil_sched.a"
  "libfoscil_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foscil_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
