file(REMOVE_RECURSE
  "libfoscil_sim.a"
)
