
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/peak.cpp" "src/sim/CMakeFiles/foscil_sim.dir/peak.cpp.o" "gcc" "src/sim/CMakeFiles/foscil_sim.dir/peak.cpp.o.d"
  "/root/repo/src/sim/steady.cpp" "src/sim/CMakeFiles/foscil_sim.dir/steady.cpp.o" "gcc" "src/sim/CMakeFiles/foscil_sim.dir/steady.cpp.o.d"
  "/root/repo/src/sim/trace_io.cpp" "src/sim/CMakeFiles/foscil_sim.dir/trace_io.cpp.o" "gcc" "src/sim/CMakeFiles/foscil_sim.dir/trace_io.cpp.o.d"
  "/root/repo/src/sim/transient.cpp" "src/sim/CMakeFiles/foscil_sim.dir/transient.cpp.o" "gcc" "src/sim/CMakeFiles/foscil_sim.dir/transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/thermal/CMakeFiles/foscil_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/foscil_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/foscil_power.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/foscil_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/foscil_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
