file(REMOVE_RECURSE
  "CMakeFiles/foscil_sim.dir/peak.cpp.o"
  "CMakeFiles/foscil_sim.dir/peak.cpp.o.d"
  "CMakeFiles/foscil_sim.dir/steady.cpp.o"
  "CMakeFiles/foscil_sim.dir/steady.cpp.o.d"
  "CMakeFiles/foscil_sim.dir/trace_io.cpp.o"
  "CMakeFiles/foscil_sim.dir/trace_io.cpp.o.d"
  "CMakeFiles/foscil_sim.dir/transient.cpp.o"
  "CMakeFiles/foscil_sim.dir/transient.cpp.o.d"
  "libfoscil_sim.a"
  "libfoscil_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foscil_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
