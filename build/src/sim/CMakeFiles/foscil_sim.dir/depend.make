# Empty dependencies file for foscil_sim.
# This may be replaced when dependencies are built.
