
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table5_time.cpp" "bench/CMakeFiles/bench_table5_time.dir/table5_time.cpp.o" "gcc" "bench/CMakeFiles/bench_table5_time.dir/table5_time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/foscil_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/foscil_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/foscil_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/foscil_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/foscil_power.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/foscil_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/foscil_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
