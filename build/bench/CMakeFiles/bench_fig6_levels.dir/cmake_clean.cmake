file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_levels.dir/fig6_levels.cpp.o"
  "CMakeFiles/bench_fig6_levels.dir/fig6_levels.cpp.o.d"
  "bench_fig6_levels"
  "bench_fig6_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
