# Empty dependencies file for bench_fig4_stepup_trace.
# This may be replaced when dependencies are built.
