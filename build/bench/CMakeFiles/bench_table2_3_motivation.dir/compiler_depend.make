# Empty compiler generated dependencies file for bench_table2_3_motivation.
# This may be replaced when dependencies are built.
