file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_3_motivation.dir/table2_3_motivation.cpp.o"
  "CMakeFiles/bench_table2_3_motivation.dir/table2_3_motivation.cpp.o.d"
  "bench_table2_3_motivation"
  "bench_table2_3_motivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_3_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
