file(REMOVE_RECURSE
  "CMakeFiles/bench_reactive_baseline.dir/reactive_baseline.cpp.o"
  "CMakeFiles/bench_reactive_baseline.dir/reactive_baseline.cpp.o.d"
  "bench_reactive_baseline"
  "bench_reactive_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reactive_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
