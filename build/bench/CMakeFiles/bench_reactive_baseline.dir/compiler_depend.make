# Empty compiler generated dependencies file for bench_reactive_baseline.
# This may be replaced when dependencies are built.
