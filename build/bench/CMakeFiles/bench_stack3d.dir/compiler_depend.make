# Empty compiler generated dependencies file for bench_stack3d.
# This may be replaced when dependencies are built.
