file(REMOVE_RECURSE
  "CMakeFiles/bench_stack3d.dir/stack3d.cpp.o"
  "CMakeFiles/bench_stack3d.dir/stack3d.cpp.o.d"
  "bench_stack3d"
  "bench_stack3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stack3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
