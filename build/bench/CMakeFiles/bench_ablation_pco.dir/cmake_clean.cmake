file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pco.dir/ablation_pco.cpp.o"
  "CMakeFiles/bench_ablation_pco.dir/ablation_pco.cpp.o.d"
  "bench_ablation_pco"
  "bench_ablation_pco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
