# Empty compiler generated dependencies file for bench_ablation_pco.
# This may be replaced when dependencies are built.
