file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_single_osc.dir/fig2_single_osc.cpp.o"
  "CMakeFiles/bench_fig2_single_osc.dir/fig2_single_osc.cpp.o.d"
  "bench_fig2_single_osc"
  "bench_fig2_single_osc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_single_osc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
