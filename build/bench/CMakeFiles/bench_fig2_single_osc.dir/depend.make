# Empty dependencies file for bench_fig2_single_osc.
# This may be replaced when dependencies are built.
