file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ao.dir/ablation_ao.cpp.o"
  "CMakeFiles/bench_ablation_ao.dir/ablation_ao.cpp.o.d"
  "bench_ablation_ao"
  "bench_ablation_ao.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ao.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
