# Empty compiler generated dependencies file for bench_ablation_ao.
# This may be replaced when dependencies are built.
