file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_tmax.dir/fig7_tmax.cpp.o"
  "CMakeFiles/bench_fig7_tmax.dir/fig7_tmax.cpp.o.d"
  "bench_fig7_tmax"
  "bench_fig7_tmax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_tmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
