# Empty compiler generated dependencies file for bench_fig7_tmax.
# This may be replaced when dependencies are built.
