file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_moscillating.dir/fig5_moscillating.cpp.o"
  "CMakeFiles/bench_fig5_moscillating.dir/fig5_moscillating.cpp.o.d"
  "bench_fig5_moscillating"
  "bench_fig5_moscillating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_moscillating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
