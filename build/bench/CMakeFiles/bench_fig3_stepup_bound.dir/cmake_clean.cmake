file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_stepup_bound.dir/fig3_stepup_bound.cpp.o"
  "CMakeFiles/bench_fig3_stepup_bound.dir/fig3_stepup_bound.cpp.o.d"
  "bench_fig3_stepup_bound"
  "bench_fig3_stepup_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_stepup_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
