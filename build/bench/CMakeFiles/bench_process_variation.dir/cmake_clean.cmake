file(REMOVE_RECURSE
  "CMakeFiles/bench_process_variation.dir/process_variation.cpp.o"
  "CMakeFiles/bench_process_variation.dir/process_variation.cpp.o.d"
  "bench_process_variation"
  "bench_process_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_process_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
