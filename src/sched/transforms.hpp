// Schedule transforms: the paper's Definitions 2 and 3 plus phase shifting.
#pragma once

#include "sched/schedule.hpp"

namespace foscil::sched {

/// Definition 2: reorder every core's segments into non-decreasing voltage
/// order, producing the step-up schedule that bounds the input's peak
/// temperature (Theorem 2).  Stable sort, so equal-voltage runs keep their
/// relative order.
[[nodiscard]] PeriodicSchedule to_step_up(const PeriodicSchedule& schedule);

/// Definition 3: scale every state interval's length down by m without
/// changing voltages.  The result has period t_p / m; repeating it m times
/// covers the original period with the same per-core work.
[[nodiscard]] PeriodicSchedule m_oscillate(const PeriodicSchedule& schedule,
                                           int m);

/// Rotate one core's cycle so that its pattern starts `offset` seconds
/// later: v'(t) = v(t - offset mod t_p).  Used by the PCO scheduler to
/// interleave high/low intervals spatially across cores.
[[nodiscard]] PeriodicSchedule phase_shift(const PeriodicSchedule& schedule,
                                           std::size_t core, double offset);

/// The segment-level core of phase_shift: rotate one core's segment list
/// (whose durations sum to `period`) by `offset`, dropping numerical slivers
/// and merging equal-voltage neighbors created by the split.  Lets builders
/// shift a core before it is installed in a schedule, avoiding a full
/// schedule copy per shifted core.
[[nodiscard]] std::vector<Segment> rotate_segments(
    const std::vector<Segment>& segments, double period, double offset);

}  // namespace foscil::sched
