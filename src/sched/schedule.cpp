#include "sched/schedule.hpp"

#include <algorithm>
#include <cmath>

namespace foscil::sched {

namespace {
/// Relative tolerance for period bookkeeping.
constexpr double kRelTol = 1e-9;
}  // namespace

PeriodicSchedule::PeriodicSchedule(std::size_t num_cores, double period)
    : period_(period), segments_(num_cores) {
  FOSCIL_EXPECTS(num_cores >= 1);
  FOSCIL_EXPECTS(period > 0.0);
  for (auto& core : segments_) core = {Segment{period, 0.0}};
}

PeriodicSchedule PeriodicSchedule::constant(const linalg::Vector& voltages,
                                            double period) {
  PeriodicSchedule schedule(voltages.size(), period);
  for (std::size_t core = 0; core < voltages.size(); ++core) {
    FOSCIL_EXPECTS(voltages[core] >= 0.0);
    schedule.set_core_segments(core, {Segment{period, voltages[core]}});
  }
  return schedule;
}

void PeriodicSchedule::set_core_segments(std::size_t core,
                                         std::vector<Segment> segments) {
  FOSCIL_EXPECTS(core < segments_.size());
  FOSCIL_EXPECTS(!segments.empty());
  double total = 0.0;
  for (const auto& seg : segments) {
    FOSCIL_EXPECTS(seg.duration > 0.0);
    FOSCIL_EXPECTS(seg.voltage >= 0.0);
    total += seg.duration;
  }
  FOSCIL_EXPECTS(std::abs(total - period_) <= kRelTol * period_ * 1e3);
  // Rescale so the durations sum to the period exactly; this keeps the
  // state-interval merge free of spurious slivers.
  const double scale = period_ / total;
  for (auto& seg : segments) seg.duration *= scale;
  segments_[core] = std::move(segments);
}

void PeriodicSchedule::restore_core_segments(std::size_t core,
                                             std::vector<Segment> segments) {
  FOSCIL_EXPECTS(core < segments_.size());
  FOSCIL_EXPECTS(!segments.empty());
  double total = 0.0;
  for (const auto& seg : segments) {
    FOSCIL_EXPECTS(seg.duration > 0.0);
    FOSCIL_EXPECTS(seg.voltage >= 0.0);
    total += seg.duration;
  }
  FOSCIL_EXPECTS(std::abs(total - period_) <= kRelTol * period_ * 1e3);
  segments_[core] = std::move(segments);
}

double PeriodicSchedule::voltage_at(std::size_t core, double t) const {
  FOSCIL_EXPECTS(core < segments_.size());
  double local = std::fmod(t, period_);
  if (local < 0.0) local += period_;
  double cursor = 0.0;
  for (const auto& seg : segments_[core]) {
    cursor += seg.duration;
    if (local < cursor) return seg.voltage;
  }
  return segments_[core].back().voltage;
}

std::vector<StateInterval> PeriodicSchedule::state_intervals() const {
  // Gather all per-core breakpoints (cumulative durations).
  std::vector<double> breaks{0.0, period_};
  for (const auto& core : segments_) {
    double cursor = 0.0;
    for (std::size_t s = 0; s + 1 < core.size(); ++s) {
      cursor += core[s].duration;
      breaks.push_back(cursor);
    }
  }
  std::sort(breaks.begin(), breaks.end());
  const double merge_tol = kRelTol * period_;
  std::vector<double> merged;
  for (double b : breaks) {
    if (merged.empty() || b - merged.back() > merge_tol) merged.push_back(b);
  }
  if (period_ - merged.back() <= merge_tol) merged.back() = period_;
  else merged.push_back(period_);

  std::vector<StateInterval> intervals;
  intervals.reserve(merged.size() - 1);
  // Per-core cursor walk: interval midpoints are strictly increasing, so
  // each core's segment list is traversed once for the whole schedule
  // instead of restarting a voltage_at scan per (interval, core).  The
  // cursor takes the same sequential prefix sums voltage_at computes and
  // applies the same strict `<`, so the sampled voltages are bit-identical
  // (fmod is exact for 0 <= midpoint < period, so voltage_at's wrap is a
  // no-op here).
  const std::size_t cores = num_cores();
  std::vector<std::size_t> seg_index(cores, 0);
  std::vector<double> seg_end(cores);
  for (std::size_t core = 0; core < cores; ++core)
    seg_end[core] = segments_[core].front().duration;
  for (std::size_t k = 0; k + 1 < merged.size(); ++k) {
    StateInterval interval;
    interval.start = merged[k];
    interval.length = merged[k + 1] - merged[k];
    interval.voltages = linalg::Vector(cores);
    const double midpoint = interval.start + 0.5 * interval.length;
    for (std::size_t core = 0; core < cores; ++core) {
      const auto& segs = segments_[core];
      while (midpoint >= seg_end[core] && seg_index[core] + 1 < segs.size()) {
        ++seg_index[core];
        seg_end[core] += segs[seg_index[core]].duration;
      }
      interval.voltages[core] = segs[seg_index[core]].voltage;
    }
    intervals.push_back(std::move(interval));
  }
  return intervals;
}

double PeriodicSchedule::throughput() const {
  double total = 0.0;
  for (std::size_t core = 0; core < num_cores(); ++core)
    total += core_work(core);
  return total / (static_cast<double>(num_cores()) * period_);
}

double PeriodicSchedule::core_work(std::size_t core) const {
  FOSCIL_EXPECTS(core < segments_.size());
  double work = 0.0;
  for (const auto& seg : segments_[core])
    work += seg.voltage * seg.duration;  // speed == voltage (Sec. II-A)
  return work;
}

bool PeriodicSchedule::is_step_up(double tol) const {
  for (const auto& core : segments_) {
    for (std::size_t s = 0; s + 1 < core.size(); ++s)
      if (core[s + 1].voltage < core[s].voltage - tol) return false;
  }
  return true;
}

PeriodicSchedule PeriodicSchedule::simplified(double voltage_tol) const {
  PeriodicSchedule out(num_cores(), period_);
  for (std::size_t core = 0; core < num_cores(); ++core) {
    std::vector<Segment> merged;
    for (const auto& seg : segments_[core]) {
      if (seg.duration <= 0.0) continue;
      if (!merged.empty() &&
          std::abs(merged.back().voltage - seg.voltage) <= voltage_tol) {
        merged.back().duration += seg.duration;
      } else {
        merged.push_back(seg);
      }
    }
    FOSCIL_ASSERT(!merged.empty());
    out.set_core_segments(core, std::move(merged));
  }
  return out;
}

}  // namespace foscil::sched
