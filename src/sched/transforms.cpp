#include "sched/transforms.hpp"

#include <algorithm>
#include <cmath>

namespace foscil::sched {

PeriodicSchedule to_step_up(const PeriodicSchedule& schedule) {
  PeriodicSchedule out(schedule.num_cores(), schedule.period());
  for (std::size_t core = 0; core < schedule.num_cores(); ++core) {
    std::vector<Segment> segments = schedule.core_segments(core);
    std::stable_sort(segments.begin(), segments.end(),
                     [](const Segment& a, const Segment& b) {
                       return a.voltage < b.voltage;
                     });
    out.set_core_segments(core, std::move(segments));
  }
  return out;
}

PeriodicSchedule m_oscillate(const PeriodicSchedule& schedule, int m) {
  FOSCIL_EXPECTS(m >= 1);
  const double scale = 1.0 / static_cast<double>(m);
  PeriodicSchedule out(schedule.num_cores(), schedule.period() * scale);
  for (std::size_t core = 0; core < schedule.num_cores(); ++core) {
    std::vector<Segment> segments = schedule.core_segments(core);
    for (auto& seg : segments) seg.duration *= scale;
    out.set_core_segments(core, std::move(segments));
  }
  return out;
}

std::vector<Segment> rotate_segments(const std::vector<Segment>& segments,
                                     double period, double offset) {
  FOSCIL_EXPECTS(period > 0.0);
  double shift = std::fmod(offset, period);
  if (shift < 0.0) shift += period;
  if (shift == 0.0) return segments;

  // v'(t) = v(t - shift): the tail of length `shift` (ending at the period
  // wrap) moves to the front.  Split the cycle at time (period - shift).
  const double cut = period - shift;
  std::vector<Segment> head;  // [0, cut)  -> goes second
  std::vector<Segment> tail;  // [cut, tp) -> goes first
  double cursor = 0.0;
  for (const auto& seg : segments) {
    const double begin = cursor;
    const double end = cursor + seg.duration;
    cursor = end;
    if (end <= cut) {
      head.push_back(seg);
    } else if (begin >= cut) {
      tail.push_back(seg);
    } else {
      head.push_back(Segment{cut - begin, seg.voltage});
      tail.push_back(Segment{end - cut, seg.voltage});
    }
  }
  std::vector<Segment> rotated = std::move(tail);
  rotated.insert(rotated.end(), head.begin(), head.end());
  // Drop numerical slivers created by the split.
  std::vector<Segment> cleaned;
  for (const auto& seg : rotated) {
    if (seg.duration <= 1e-12 * period) continue;
    if (!cleaned.empty() &&
        std::abs(cleaned.back().voltage - seg.voltage) <= 1e-12) {
      cleaned.back().duration += seg.duration;
    } else {
      cleaned.push_back(seg);
    }
  }
  return cleaned;
}

PeriodicSchedule phase_shift(const PeriodicSchedule& schedule,
                             std::size_t core, double offset) {
  FOSCIL_EXPECTS(core < schedule.num_cores());
  const double period = schedule.period();
  PeriodicSchedule out = schedule;
  double shift = std::fmod(offset, period);
  if (shift < 0.0) shift += period;
  if (shift == 0.0) return out;  // bit-preserving no-op
  out.set_core_segments(
      core, rotate_segments(schedule.core_segments(core), period, offset));
  return out;
}

}  // namespace foscil::sched
