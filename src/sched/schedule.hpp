// Periodic multi-core voltage schedules (Sec. II of the paper).
//
// A PeriodicSchedule assigns every core a cyclic sequence of (duration,
// voltage) segments over a common period t_p.  Cores switch independently,
// so the chip as a whole runs through "state intervals" — maximal spans in
// which no core changes mode — which is the granularity the thermal
// recurrences (eqs. 3, 4) operate on.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "util/contracts.hpp"

namespace foscil::sched {

/// One per-core run: hold `voltage` for `duration` seconds.
struct Segment {
  double duration = 0.0;
  double voltage = 0.0;
};

/// Chip-wide span in which every core holds one mode.
struct StateInterval {
  double start = 0.0;            ///< offset from period start
  double length = 0.0;           ///< seconds
  linalg::Vector voltages;       ///< per-core supply voltage
};

/// Piecewise-constant periodic voltage schedule for N cores.
class PeriodicSchedule {
 public:
  /// All cores initially hold 0 V for the whole period; fill with
  /// `set_core_segments`.
  PeriodicSchedule(std::size_t num_cores, double period);

  /// Every core holds its entry of `voltages` for the whole period.
  [[nodiscard]] static PeriodicSchedule constant(
      const linalg::Vector& voltages, double period);

  [[nodiscard]] std::size_t num_cores() const { return segments_.size(); }
  [[nodiscard]] double period() const { return period_; }

  /// Replace one core's cycle; durations must be positive and sum to the
  /// period (within a relative tolerance, after which they are rescaled to
  /// sum exactly).
  void set_core_segments(std::size_t core, std::vector<Segment> segments);

  /// Verbatim variant for deserialization (serve/snapshot warm restart):
  /// same validation as set_core_segments but durations are stored exactly
  /// as given, with no rescale.  The segments must have come from a
  /// schedule that already went through set_core_segments — re-rescaling
  /// them would perturb the stored bit patterns and break the snapshot
  /// round-trip bit-identity guarantee.
  void restore_core_segments(std::size_t core, std::vector<Segment> segments);

  [[nodiscard]] const std::vector<Segment>& core_segments(
      std::size_t core) const {
    FOSCIL_EXPECTS(core < segments_.size());
    return segments_[core];
  }

  /// Supply voltage of `core` at time t (t taken modulo the period).
  [[nodiscard]] double voltage_at(std::size_t core, double t) const;

  /// Merge the per-core breakpoints into chip-wide state intervals.
  [[nodiscard]] std::vector<StateInterval> state_intervals() const;

  /// Chip-wide throughput of eq. (5): mean speed per core, with speed == v.
  /// (Transition-stall accounting lives in the AO scheduler, which builds
  /// stall compensation into the segment durations.)
  [[nodiscard]] double throughput() const;

  /// Total work (volt-seconds) completed by one core per period.
  [[nodiscard]] double core_work(std::size_t core) const;

  /// True when every core's voltage is non-decreasing over its cycle
  /// (Definition 1).
  [[nodiscard]] bool is_step_up(double tol = 1e-12) const;

  /// Merge adjacent segments with equal voltage; drops zero-length runs.
  [[nodiscard]] PeriodicSchedule simplified(double voltage_tol = 1e-12) const;

 private:
  double period_;
  std::vector<std::vector<Segment>> segments_;
};

}  // namespace foscil::sched
