#include "serve/snapshot.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <limits>

#include "util/contracts.hpp"

namespace foscil::serve {
namespace {

constexpr char kMagic[8] = {'F', 'O', 'S', 'C', 'S', 'N', 'A', 'P'};
constexpr std::size_t kHeaderSize = 8 + 4 + 4 + 8 + 8;

// FNV-1a over raw bytes — the same construction the cache key uses, applied
// here as a corruption check (not a security boundary; a snapshot file is
// operator-controlled local state).
std::uint64_t checksum_bytes(const std::string& bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t double_bits(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) {
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

// ---- writer ---------------------------------------------------------------

class Writer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
  void f64(double v) { u64(double_bits(v)); }
  void str(const std::string& s) {
    u64(s.size());
    bytes_.append(s);
  }

  [[nodiscard]] const std::string& bytes() const { return bytes_; }

 private:
  std::string bytes_;
};

// ---- reader ---------------------------------------------------------------

// Cursor over the payload.  Every read is bounds-checked; an overrun means
// the payload structure disagrees with its own length fields, which the
// checksum cannot catch if the file was *written* malformed — so the reader
// never trusts a length without checking it against the bytes remaining.
class Reader {
 public:
  Reader(const std::string& bytes, const std::string& path)
      : bytes_(bytes), path_(path) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    pos_ += 8;
    return v;
  }
  double f64() { return bits_double(u64()); }
  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(bytes_.data() + pos_, n);
    pos_ += n;
    return s;
  }
  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) fail("boolean field holds " + std::to_string(v));
    return v == 1;
  }

  /// A count of fixed-size records; rejected when even `bytes_each` bytes
  /// per record would overrun the payload, so a corrupt count cannot drive
  /// a multi-gigabyte allocation before the overrun is noticed.
  std::uint64_t count(std::uint64_t bytes_each) {
    const std::uint64_t n = u64();
    if (bytes_each != 0 && n > (bytes_.size() - pos_) / bytes_each)
      fail("record count " + std::to_string(n) + " overruns payload");
    return n;
  }

  void expect_exhausted() const {
    if (pos_ != bytes_.size())
      fail(std::to_string(bytes_.size() - pos_) +
           " trailing bytes after payload");
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw SnapshotError("snapshot " + path_ + ": " + what);
  }

 private:
  void need(std::uint64_t n) const {
    if (n > bytes_.size() - pos_)
      fail("truncated payload (needed " + std::to_string(n) + " bytes at " +
           std::to_string(pos_) + ")");
  }

  const std::string& bytes_;
  std::string path_;
  std::size_t pos_ = 0;
};

// ---- plan / identify payloads ---------------------------------------------

void write_plan(Writer& w, const ServedPlan& plan) {
  w.u64(plan.key.hi);
  w.u64(plan.key.lo);
  w.u8(plan.kind == PlannerKind::kPco ? 1 : 0);
  w.u8(plan.degraded ? 1 : 0);
  w.u8(plan.certified_safe ? 1 : 0);
  w.f64(plan.certificate_rise);

  const core::SchedulerResult& r = plan.result;
  w.str(r.scheduler);
  w.u8(r.feasible ? 1 : 0);
  w.f64(r.throughput);
  w.f64(r.peak_rise);
  w.f64(r.peak_celsius);
  w.u64(static_cast<std::uint64_t>(r.m));
  w.f64(r.seconds);
  w.u64(r.evaluations);

  const sched::PeriodicSchedule& s = r.schedule;
  w.u64(s.num_cores());
  w.f64(s.period());
  for (std::size_t core = 0; core < s.num_cores(); ++core) {
    const auto& segments = s.core_segments(core);
    w.u64(segments.size());
    for (const auto& seg : segments) {
      w.f64(seg.duration);
      w.f64(seg.voltage);
    }
  }
}

ServedPlan read_plan(Reader& r) {
  ServedPlan plan;
  plan.key.hi = r.u64();
  plan.key.lo = r.u64();
  const std::uint8_t kind = r.u8();
  if (kind > 1) r.fail("planner kind holds " + std::to_string(kind));
  plan.kind = kind == 1 ? PlannerKind::kPco : PlannerKind::kAo;
  plan.degraded = r.boolean();
  plan.certified_safe = r.boolean();
  plan.certificate_rise = r.f64();

  core::SchedulerResult& res = plan.result;
  res.scheduler = r.str();
  res.feasible = r.boolean();
  res.throughput = r.f64();
  res.peak_rise = r.f64();
  res.peak_celsius = r.f64();
  const std::uint64_t m = r.u64();
  if (m == 0 || m > static_cast<std::uint64_t>(std::numeric_limits<int>::max()))
    r.fail("oscillation factor holds " + std::to_string(m));
  res.m = static_cast<int>(m);
  res.seconds = r.f64();
  res.evaluations = static_cast<std::size_t>(r.u64());

  const std::uint64_t cores = r.count(8 + 8);  // >= count + period per core
  if (cores == 0) r.fail("schedule with zero cores");
  const double period = r.f64();
  if (!(period > 0.0)) r.fail("schedule with non-positive period");
  sched::PeriodicSchedule schedule(static_cast<std::size_t>(cores), period);
  for (std::size_t core = 0; core < cores; ++core) {
    const std::uint64_t nseg = r.count(16);  // two doubles per segment
    if (nseg == 0) r.fail("core with zero segments");
    std::vector<sched::Segment> segments;
    segments.reserve(static_cast<std::size_t>(nseg));
    for (std::uint64_t i = 0; i < nseg; ++i) {
      sched::Segment seg;
      seg.duration = r.f64();
      seg.voltage = r.f64();
      if (!(seg.duration > 0.0)) r.fail("segment with non-positive duration");
      if (!(seg.voltage >= 0.0)) r.fail("segment with negative voltage");
      segments.push_back(seg);
    }
    double total = 0.0;
    for (const auto& seg : segments) total += seg.duration;
    if (std::abs(total - period) > 1e-6 * period)
      r.fail("core segments do not sum to the period");
    // Verbatim restore: set_core_segments would rescale the durations and
    // break the bit-identical round trip.
    schedule.restore_core_segments(core, std::move(segments));
  }
  res.schedule = std::move(schedule);
  return plan;
}

void write_identify(Writer& w, const core::IdentifyState& state) {
  const std::size_t dim = state.theta.size();
  w.u64(dim);
  for (std::size_t i = 0; i < dim; ++i) w.f64(state.theta[i]);
  for (std::size_t rr = 0; rr < dim; ++rr)
    for (std::size_t cc = 0; cc < dim; ++cc) w.f64(state.covariance(rr, cc));
  w.u64(state.updates);
  w.u64(state.polls);
  w.f64(state.seconds);
}

core::IdentifyState read_identify(Reader& r) {
  core::IdentifyState state;
  const std::uint64_t dim = r.count(8);  // at least theta itself
  if (dim == 0) r.fail("identify state with zero parameters");
  if (dim > (std::uint64_t{1} << 16)) r.fail("identify state dimension");
  state.theta = linalg::Vector(static_cast<std::size_t>(dim));
  for (std::size_t i = 0; i < dim; ++i) state.theta[i] = r.f64();
  state.covariance = linalg::Matrix(static_cast<std::size_t>(dim),
                                    static_cast<std::size_t>(dim));
  for (std::size_t rr = 0; rr < dim; ++rr)
    for (std::size_t cc = 0; cc < dim; ++cc) state.covariance(rr, cc) = r.f64();
  state.updates = static_cast<std::size_t>(r.u64());
  state.polls = static_cast<std::size_t>(r.u64());
  state.seconds = r.f64();
  return state;
}

}  // namespace

std::string encode_plan_bytes(const ServedPlan& plan) {
  Writer w;
  write_plan(w, plan);
  return w.bytes();
}

ServedPlan decode_plan_bytes(const std::string& bytes,
                             const std::string& context) {
  Reader r(bytes, context);
  ServedPlan plan = read_plan(r);
  r.expect_exhausted();
  return plan;
}

void save_snapshot(const std::string& path, const SnapshotData& data) {
  FOSCIL_EXPECTS(!path.empty());

  Writer payload;
  payload.u64(data.plans.size());
  for (const ServedPlan& plan : data.plans) write_plan(payload, plan);
  payload.u8(data.identify.has_value() ? 1 : 0);
  if (data.identify.has_value()) write_identify(payload, *data.identify);

  Writer header;
  header.u32(kSnapshotVersion);
  header.u32(0);  // reserved flags
  header.u64(payload.bytes().size());
  header.u64(checksum_bytes(payload.bytes()));

  // Atomic publish: a crash before the rename leaves the previous snapshot
  // (or no snapshot) in place; rename within one directory replaces the
  // destination in a single step on POSIX.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw SnapshotError("snapshot " + tmp + ": cannot open");
    out.write(kMagic, sizeof(kMagic));
    out.write(header.bytes().data(),
              static_cast<std::streamsize>(header.bytes().size()));
    out.write(payload.bytes().data(),
              static_cast<std::streamsize>(payload.bytes().size()));
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      throw SnapshotError("snapshot " + tmp + ": write failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SnapshotError("snapshot " + path + ": rename failed");
  }
}

SnapshotData load_snapshot(const std::string& path) {
  FOSCIL_EXPECTS(!path.empty());

  std::ifstream in(path, std::ios::binary);
  if (!in) throw SnapshotError("snapshot " + path + ": cannot open");
  std::string file((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof())
    throw SnapshotError("snapshot " + path + ": read failed");

  if (file.size() < kHeaderSize)
    throw SnapshotError("snapshot " + path + ": truncated header (" +
                        std::to_string(file.size()) + " bytes)");
  if (std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0)
    throw SnapshotError("snapshot " + path + ": bad magic");

  Reader header(file, path);
  // Skip past the magic by re-reading it through the cursor.
  for (std::size_t i = 0; i < sizeof(kMagic); ++i) header.u8();
  const std::uint32_t version = header.u32();
  if (version != kSnapshotVersion)
    throw SnapshotError("snapshot " + path + ": format version " +
                        std::to_string(version) + " (this build reads " +
                        std::to_string(kSnapshotVersion) + ")");
  const std::uint32_t flags = header.u32();
  if (flags != 0)
    throw SnapshotError("snapshot " + path + ": unknown flags " +
                        std::to_string(flags));
  const std::uint64_t payload_size = header.u64();
  const std::uint64_t stored_checksum = header.u64();
  if (file.size() - kHeaderSize != payload_size)
    throw SnapshotError(
        "snapshot " + path + ": payload size mismatch (header says " +
        std::to_string(payload_size) + ", file holds " +
        std::to_string(file.size() - kHeaderSize) + ")");

  const std::string payload = file.substr(kHeaderSize);
  const std::uint64_t actual_checksum = checksum_bytes(payload);
  if (actual_checksum != stored_checksum)
    throw SnapshotError("snapshot " + path + ": checksum mismatch");

  Reader r(payload, path);
  SnapshotData data;
  // Smallest possible serialized plan is well over 64 bytes; 32 is a safe
  // lower bound that still rejects absurd counts before allocating.
  const std::uint64_t plan_count = r.count(32);
  data.plans.reserve(static_cast<std::size_t>(plan_count));
  for (std::uint64_t i = 0; i < plan_count; ++i)
    data.plans.push_back(read_plan(r));
  if (r.boolean()) data.identify = read_identify(r);
  r.expect_exhausted();
  return data;
}

}  // namespace foscil::serve
