#include "serve/service.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <iostream>
#include <unordered_map>

#include "core/audit.hpp"
#include "serve/snapshot.hpp"
#include "util/cancel.hpp"
#include "util/parallel_for.hpp"

namespace foscil::serve {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_between(Clock::time_point from,
                                     Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

std::shared_ptr<const ServedPlan> plan_direct(const PlanRequest& request,
                                              bool degraded) {
  FOSCIL_EXPECTS(request.platform.model != nullptr);
  auto plan = std::make_shared<ServedPlan>();
  plan->kind = request.kind;
  plan->degraded = degraded;
  plan->key = plan_key(request.platform, request.t_max_c, request.kind,
                       request.ao, request.pco, degraded);
  plan->result =
      request.kind == PlannerKind::kAo
          ? core::run_ao(request.platform, request.t_max_c, request.ao)
          : core::run_pco(request.platform, request.t_max_c, request.pco);
  plan->certificate_rise = core::step_up_certificate_rise(
      request.platform.model, plan->result.schedule);
  const double budget = request.platform.rise_budget(request.t_max_c);
  plan->certified_safe = plan->certificate_rise <= budget * (1.0 + 1e-6);
  core::AuditCounters::instance().record_certificate(plan->certified_safe);
  return plan;
}

/// One admitted cache-miss request plus everyone waiting on its result.
/// Lives in the queue and the in-flight table; guarded by Impl::mutex.
struct InFlightRequest {
  CacheKey key{};
  PlanRequest request;
  Clock::time_point submitted{};
  bool degraded = false;  ///< planned with capped options, keyed separately
  /// Shared cancellation: carries the max deadline over all waiters (no
  /// deadline at all once a deadline-free waiter joins), so the planner
  /// stops as soon as nobody's budget can still be met.  The token's own
  /// atomics make deadline extension by coalescing submitters race-free
  /// against the planner polling it.
  CancelToken token;

  struct Waiter {
    std::promise<PlanResponse> promise;
    bool coalesced = false;
    bool has_deadline = false;
    Clock::time_point deadline{};
    Clock::time_point submitted{};
  };
  std::vector<Waiter> waiters;
};

struct PlanningService::Impl {
  explicit Impl(const ServiceOptions& opts)
      : options(opts), overload(opts.overload), breaker(opts.breaker) {}

  ServiceOptions options;
  OverloadController overload;
  CircuitBreaker breaker;

  std::mutex mutex;
  std::mutex stop_mutex;  ///< serializes stop() callers; never nested
  /// Serializes every snapshot writer (periodic flusher, stop()'s final
  /// flush, explicit save_snapshot_file callers).  All writers stage
  /// through the same `path + ".tmp"` file; without this, a SIGTERM-driven
  /// final flush racing a background periodic flush interleaves two
  /// writers on that tmp file and can publish a corrupt snapshot.  Never
  /// held together with `mutex` or `stop_mutex`.
  std::mutex flush_mutex;
  std::size_t worker_count = 0;
  std::condition_variable work_ready;
  std::condition_variable snapshot_tick;  ///< wakes the snapshot flusher
  std::deque<std::shared_ptr<InFlightRequest>> queue;
  // Keyed by canonical request hash: an identical concurrent miss attaches
  // here instead of planning twice.  Entries stay until the plan (or its
  // failure) has been delivered, so attachment is race-free.
  std::unordered_map<CacheKey, std::shared_ptr<InFlightRequest>, CacheKeyHash>
      in_flight;
  bool stopping = false;
  bool final_flush_done = false;  ///< guarded by stop_mutex
  std::size_t queue_peak = 0;

  // Identification state carried by snapshots: set by set_identify_state,
  // refreshed by a successful warm load.
  std::mutex identify_mutex;
  std::optional<core::IdentifyState> identify;
  std::optional<core::IdentifyState> loaded_identify;

  // Lazily-initialized, mutex-guarded memo of model content fingerprints.
  // ThermalModel itself has no lazy caches (everything is eager and
  // immutable, see thermal/model.hpp) — this is the one lazy cache in the
  // serving stack, keyed by model identity with a weak_ptr guard against
  // address reuse after a model dies.
  std::mutex fingerprint_mutex;
  std::unordered_map<const thermal::ThermalModel*,
                     std::pair<std::weak_ptr<const thermal::ThermalModel>,
                               CacheKey>>
      fingerprints;

  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> fast_path_hits{0};
  std::atomic<std::uint64_t> coalesced{0};
  std::atomic<std::uint64_t> planned{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> rejected_queue_full{0};
  std::atomic<std::uint64_t> rejected_expired{0};
  std::atomic<std::uint64_t> expired_in_queue{0};
  std::atomic<std::uint64_t> cancelled_mid_plan{0};
  std::atomic<std::uint64_t> degraded_served{0};
  std::atomic<std::uint64_t> rejected_overload{0};
  std::atomic<std::uint64_t> breaker_rejections{0};
  std::atomic<std::uint64_t> snapshot_saves{0};
  std::atomic<std::uint64_t> snapshot_loads{0};
  std::atomic<std::uint64_t> snapshot_load_failures{0};
  /// EWMA of recent planner wall times, feeding the SHED retry-after hint.
  /// Plain exchange arithmetic (load/compute/store) — the hint is
  /// heuristic; a lost update between workers is harmless.
  std::atomic<double> ewma_plan_seconds{0.0};

  [[nodiscard]] double retry_after_hint(std::size_t queue_depth) const {
    const double per_plan = ewma_plan_seconds.load(std::memory_order_relaxed);
    const double backlog =
        per_plan * static_cast<double>(queue_depth) /
        static_cast<double>(std::max<std::size_t>(1, worker_count));
    return std::max(options.overload.min_retry_after_s, backlog);
  }

  void note_plan_seconds(double seconds) {
    const double old = ewma_plan_seconds.load(std::memory_order_relaxed);
    const double next = old == 0.0 ? seconds : 0.8 * old + 0.2 * seconds;
    ewma_plan_seconds.store(next, std::memory_order_relaxed);
  }

  [[nodiscard]] CacheKey memoized_model_fingerprint(
      const std::shared_ptr<const thermal::ThermalModel>& model) {
    FOSCIL_EXPECTS(model != nullptr);
    const std::lock_guard<std::mutex> lock(fingerprint_mutex);
    auto it = fingerprints.find(model.get());
    if (it != fingerprints.end() && !it->second.first.expired())
      return it->second.second;
    const CacheKey fp = model_fingerprint(*model);
    // Bound the memo: drop dead entries once it grows past a few hundred
    // models (a serving process typically hosts a handful).
    if (fingerprints.size() > 512) {
      for (auto entry = fingerprints.begin(); entry != fingerprints.end();) {
        entry = entry->second.first.expired() ? fingerprints.erase(entry)
                                              : std::next(entry);
      }
    }
    fingerprints[model.get()] = {model, fp};
    return fp;
  }
};

PlanningService::PlanningService(ServiceOptions options)
    : cache_(options.cache_capacity, options.cache_shards),
      impl_(std::make_unique<Impl>(options)) {
  FOSCIL_EXPECTS(options.queue_capacity >= 1);
  FOSCIL_EXPECTS(options.snapshot_period_s >= 0.0);
  // Warm start before any worker can race the cache: a corrupt, truncated,
  // version-mismatched, or missing snapshot is counted and ignored — the
  // snapshot is an optimization, never required for correctness.
  if (!options.snapshot_path.empty() && options.warm_load_at_construction) {
    try {
      load_snapshot_file(options.snapshot_path);
    } catch (const SnapshotError&) {
      impl_->snapshot_load_failures.fetch_add(1, std::memory_order_relaxed);
    }
  }
  const unsigned workers =
      options.workers == 0 ? hardware_parallelism() : options.workers;
  impl_->worker_count = workers;
  threads_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w)
    threads_.emplace_back([this] { worker_loop(); });
  if (!options.snapshot_path.empty() && options.snapshot_period_s > 0.0)
    snapshot_thread_ = std::thread([this] { snapshot_loop(); });
}

PlanningService::~PlanningService() { stop(); }

void PlanningService::stop() {
  const std::lock_guard<std::mutex> stop_lock(impl_->stop_mutex);
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->work_ready.notify_all();
  impl_->snapshot_tick.notify_all();
  for (std::thread& thread : threads_)
    if (thread.joinable()) thread.join();
  threads_.clear();
  if (snapshot_thread_.joinable()) snapshot_thread_.join();
  // Final flush after the workers have drained, so the snapshot sees every
  // plan the service admitted.  Best-effort: a full disk must not turn
  // shutdown into a crash.
  if (!impl_->options.snapshot_path.empty() && !impl_->final_flush_done) {
    impl_->final_flush_done = true;
    try {
      save_snapshot_file(impl_->options.snapshot_path);
    } catch (const SnapshotError& error) {
      std::cerr << "foscil-serve: shutdown snapshot failed: " << error.what()
                << "\n";
    }
  }
}

std::future<PlanResponse> PlanningService::submit(PlanRequest request) {
  Impl& impl = *impl_;
  impl.submitted.fetch_add(1, std::memory_order_relaxed);
  const Clock::time_point now = Clock::now();

  const CacheKey model_fp =
      impl.memoized_model_fingerprint(request.platform.model);
  const CacheKey full_key =
      plan_key(model_fp, request.platform, request.t_max_c, request.kind,
               request.ao, request.pco);

  // Fast path: a full-quality hit costs one fingerprint hash and one shard
  // lookup, and is served in every ladder state — degradation and load
  // shedding only gate *planning*, never cached answers.
  if (std::shared_ptr<const ServedPlan> hit = cache_.lookup(full_key)) {
    impl.fast_path_hits.fetch_add(1, std::memory_order_relaxed);
    impl.completed.fetch_add(1, std::memory_order_relaxed);
    PlanResponse response;
    response.plan = std::move(hit);
    response.cache_hit = true;
    response.total_seconds = seconds_between(now, Clock::now());
    std::promise<PlanResponse> ready;
    std::future<PlanResponse> future = ready.get_future();
    ready.set_value(std::move(response));
    return future;
  }

  const double deadline_s = request.deadline_s >= 0.0
                                ? request.deadline_s
                                : impl.options.default_deadline_s;
  const bool has_deadline =
      request.deadline_s >= 0.0 || impl.options.default_deadline_s > 0.0;
  if (has_deadline && deadline_s <= 0.0) {
    // A miss with no time budget cannot be planned in time; reject now.
    impl.rejected_expired.fetch_add(1, std::memory_order_relaxed);
    throw DeadlineExpiredError();
  }

  // Degradation ladder: position depends on queue occupancy alone, so it
  // is evaluated (with hysteresis) on every miss.
  LoadState state;
  std::size_t queue_depth;
  {
    const std::lock_guard<std::mutex> lock(impl.mutex);
    if (impl.stopping) throw ServiceStoppedError();
    queue_depth = impl.queue.size();
    state = impl.overload.update(queue_depth, impl.options.queue_capacity);
  }
  if (state == LoadState::kShed) {
    impl.rejected_overload.fetch_add(1, std::memory_order_relaxed);
    throw OverloadedError(impl.retry_after_hint(queue_depth));
  }

  CacheKey key = full_key;
  const bool degraded = state == LoadState::kDegraded;
  if (degraded) {
    // Cap the search extent (never the tolerances or the certificate), and
    // re-key: the degraded bit is part of the key schema, so this plan can
    // never collide with — or later shadow — the full-quality entry.
    if (request.kind == PlannerKind::kAo)
      request.ao = degraded_ao_options(request.ao, impl.options.overload);
    else
      request.pco = degraded_pco_options(request.pco, impl.options.overload);
    key = plan_key(model_fp, request.platform, request.t_max_c, request.kind,
                   request.ao, request.pco, true);
    if (std::shared_ptr<const ServedPlan> hit = cache_.lookup(key)) {
      impl.fast_path_hits.fetch_add(1, std::memory_order_relaxed);
      impl.degraded_served.fetch_add(1, std::memory_order_relaxed);
      impl.completed.fetch_add(1, std::memory_order_relaxed);
      PlanResponse response;
      response.plan = std::move(hit);
      response.cache_hit = true;
      response.total_seconds = seconds_between(now, Clock::now());
      std::promise<PlanResponse> ready;
      std::future<PlanResponse> future = ready.get_future();
      ready.set_value(std::move(response));
      return future;
    }
  }

  InFlightRequest::Waiter waiter;
  waiter.submitted = now;
  waiter.has_deadline = has_deadline;
  if (has_deadline)
    waiter.deadline = now + std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double>(deadline_s));
  std::future<PlanResponse> future = waiter.promise.get_future();

  {
    const std::lock_guard<std::mutex> lock(impl.mutex);
    if (impl.stopping) throw ServiceStoppedError();
    const auto in_flight = impl.in_flight.find(key);
    if (in_flight != impl.in_flight.end()) {
      // Keep the shared run alive while *any* waiter still has budget: the
      // token deadline is the max over waiters, and vanishes entirely once
      // a deadline-free waiter joins (extend past a cleared deadline is a
      // no-op, so the order of joins cannot resurrect one).
      if (waiter.has_deadline)
        in_flight->second->token.extend_deadline(waiter.deadline);
      else
        in_flight->second->token.clear_deadline();
      waiter.coalesced = true;
      impl.coalesced.fetch_add(1, std::memory_order_relaxed);
      in_flight->second->waiters.push_back(std::move(waiter));
      return future;
    }
    if (impl.queue.size() >= impl.options.queue_capacity) {
      impl.rejected_queue_full.fetch_add(1, std::memory_order_relaxed);
      throw QueueFullError();
    }
    // Breaker gate last: after the queue-capacity check, so a rejection
    // here can only mean "this key is poisoned", and a half-open trial is
    // only ever claimed by a request that is guaranteed a queue slot.
    try {
      impl.breaker.admit(key, now);
    } catch (const BreakerOpenError&) {
      impl.breaker_rejections.fetch_add(1, std::memory_order_relaxed);
      throw;
    }
    auto job = std::make_shared<InFlightRequest>();
    job->key = key;
    job->request = std::move(request);
    job->submitted = now;
    job->degraded = degraded;
    if (waiter.has_deadline) job->token.set_deadline(waiter.deadline);
    job->waiters.push_back(std::move(waiter));
    impl.in_flight.emplace(key, job);
    impl.queue.push_back(std::move(job));
    impl.queue_peak = std::max(impl.queue_peak, impl.queue.size());
  }
  impl.work_ready.notify_one();
  return future;
}

void PlanningService::worker_loop() {
  Impl& impl = *impl_;
  for (;;) {
    std::shared_ptr<InFlightRequest> job;
    {
      std::unique_lock<std::mutex> lock(impl.mutex);
      impl.work_ready.wait(
          lock, [&] { return impl.stopping || !impl.queue.empty(); });
      // Drain the queue even when stopping: every admitted request is
      // answered (with a plan or an error), never silently dropped.
      if (impl.queue.empty()) return;
      job = std::move(impl.queue.front());
      impl.queue.pop_front();

      const Clock::time_point now = Clock::now();
      // Deadline triage under the lock: waiters whose budget has already
      // passed are rejected before any planning happens.  New arrivals can
      // still coalesce onto this job until it completes.
      std::vector<InFlightRequest::Waiter> expired;
      auto& waiters = job->waiters;
      for (auto it = waiters.begin(); it != waiters.end();) {
        if (it->has_deadline && it->deadline <= now) {
          expired.push_back(std::move(*it));
          it = waiters.erase(it);
        } else {
          ++it;
        }
      }
      const bool abandon = waiters.empty();
      if (abandon) impl.in_flight.erase(job->key);
      lock.unlock();

      impl.expired_in_queue.fetch_add(
          static_cast<std::uint64_t>(expired.size()),
          std::memory_order_relaxed);
      for (auto& waiter : expired)
        waiter.promise.set_exception(
            std::make_exception_ptr(DeadlineExpiredError()));
      if (abandon) {
        // The job may hold this key's half-open breaker trial; release it
        // so the abandoned run cannot jam the breaker open forever.
        impl.breaker.abandon_trial(job->key);
        continue;  // nobody left to pay for this plan
      }
    }

    const Clock::time_point started = Clock::now();
    // Re-probe the cache: an identical key can land between this job's
    // admission and its pickup (the in-flight entry is erased only after
    // the cache insert, so the window is tiny but real).
    std::shared_ptr<const ServedPlan> plan = cache_.peek(job->key);
    const bool served_from_cache = plan != nullptr;
    std::exception_ptr error;
    bool cancelled = false;
    if (!plan) {
      try {
        impl.planned.fetch_add(1, std::memory_order_relaxed);
        // Attach the shared token so the planner stops within one
        // candidate evaluation once every waiter's deadline has passed
        // (or the service is tearing the job down).
        if (job->request.kind == PlannerKind::kAo)
          job->request.ao.cancel = &job->token;
        else
          job->request.pco.ao.cancel = &job->token;
        plan = plan_direct(job->request, job->degraded);
        FOSCIL_ASSERT(plan->key == job->key);
        cache_.insert(job->key, plan);
        impl.breaker.record_success(job->key);
        impl.note_plan_seconds(seconds_between(started, Clock::now()));
      } catch (const CancelledError&) {
        // Expected outcome, not a planner defect: no breaker strike, no
        // `failed` count — but the trial (if any) must be released.
        cancelled = true;
        impl.breaker.abandon_trial(job->key);
      } catch (const std::exception& e) {
        error = std::current_exception();
        impl.breaker.record_failure(job->key, e.what(), Clock::now());
      } catch (...) {
        error = std::current_exception();
        impl.breaker.record_failure(job->key, "unknown planner error",
                                    Clock::now());
      }
    }

    std::vector<InFlightRequest::Waiter> waiters;
    {
      const std::lock_guard<std::mutex> lock(impl.mutex);
      impl.in_flight.erase(job->key);
      waiters = std::move(job->waiters);
    }
    const Clock::time_point finished = Clock::now();
    for (auto& waiter : waiters) {
      if (cancelled) {
        impl.cancelled_mid_plan.fetch_add(1, std::memory_order_relaxed);
        waiter.promise.set_exception(
            std::make_exception_ptr(CancelledError()));
        continue;
      }
      if (error) {
        impl.failed.fetch_add(1, std::memory_order_relaxed);
        waiter.promise.set_exception(error);
        continue;
      }
      PlanResponse response;
      response.plan = plan;
      response.cache_hit = served_from_cache;
      response.coalesced = waiter.coalesced;
      response.queue_seconds = seconds_between(waiter.submitted, started);
      response.total_seconds = seconds_between(waiter.submitted, finished);
      impl.completed.fetch_add(1, std::memory_order_relaxed);
      if (plan->degraded)
        impl.degraded_served.fetch_add(1, std::memory_order_relaxed);
      waiter.promise.set_value(std::move(response));
    }
  }
}

void PlanningService::snapshot_loop() {
  Impl& impl = *impl_;
  const auto period = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(impl.options.snapshot_period_s));
  std::unique_lock<std::mutex> lock(impl.mutex);
  for (;;) {
    impl.snapshot_tick.wait_for(lock, period, [&] { return impl.stopping; });
    if (impl.stopping) return;  // stop() writes the final snapshot itself
    lock.unlock();
    try {
      // Never publish an empty snapshot: a tick that fires before the
      // first plan lands (or before a warm restore begins) would clobber
      // a good on-disk snapshot with nothing.
      if (cache_.stats().entries > 0)
        save_snapshot_file(impl.options.snapshot_path);
    } catch (const SnapshotError& snapshot_error) {
      // Periodic flushes are best-effort; the next tick retries.
      std::cerr << "foscil-serve: periodic snapshot failed: "
                << snapshot_error.what() << "\n";
    }
    lock.lock();
  }
}

void PlanningService::save_snapshot_file(const std::string& path) {
  // One writer at a time: concurrent flushes (periodic thread vs. a
  // SIGTERM-driven final flush vs. explicit callers) would interleave on
  // the shared tmp file.  The cache export itself is taken inside the
  // critical section so the last flush to finish also wrote the freshest
  // content.
  const std::lock_guard<std::mutex> flush_lock(impl_->flush_mutex);
  SnapshotData data;
  for (const auto& plan : cache_.export_entries()) data.plans.push_back(*plan);
  {
    const std::lock_guard<std::mutex> lock(impl_->identify_mutex);
    data.identify = impl_->identify;
  }
  save_snapshot(path, data);
  impl_->snapshot_saves.fetch_add(1, std::memory_order_relaxed);
}

void PlanningService::load_snapshot_file(const std::string& path) {
  SnapshotData data = load_snapshot(path);  // throws before any mutation
  for (ServedPlan& plan : data.plans) {
    const CacheKey key = plan.key;
    cache_.insert(key, std::make_shared<const ServedPlan>(std::move(plan)));
  }
  if (data.identify.has_value()) {
    const std::lock_guard<std::mutex> lock(impl_->identify_mutex);
    impl_->identify = data.identify;
    impl_->loaded_identify = std::move(data.identify);
  }
  impl_->snapshot_loads.fetch_add(1, std::memory_order_relaxed);
}

bool PlanningService::insert_plan_if_absent(
    std::shared_ptr<const ServedPlan> plan) {
  FOSCIL_EXPECTS(plan != nullptr);
  const CacheKey key = plan->key;
  return cache_.insert_if_absent(key, std::move(plan));
}

std::optional<core::IdentifyState> PlanningService::loaded_identify_state()
    const {
  const std::lock_guard<std::mutex> lock(impl_->identify_mutex);
  return impl_->loaded_identify;
}

void PlanningService::set_identify_state(core::IdentifyState state) {
  const std::lock_guard<std::mutex> lock(impl_->identify_mutex);
  impl_->identify = std::move(state);
}

ServiceStats PlanningService::stats() const {
  ServiceStats stats;
  stats.submitted = impl_->submitted.load(std::memory_order_relaxed);
  stats.fast_path_hits =
      impl_->fast_path_hits.load(std::memory_order_relaxed);
  stats.coalesced = impl_->coalesced.load(std::memory_order_relaxed);
  stats.planned = impl_->planned.load(std::memory_order_relaxed);
  stats.completed = impl_->completed.load(std::memory_order_relaxed);
  stats.failed = impl_->failed.load(std::memory_order_relaxed);
  stats.rejected_queue_full =
      impl_->rejected_queue_full.load(std::memory_order_relaxed);
  stats.rejected_expired =
      impl_->rejected_expired.load(std::memory_order_relaxed);
  stats.expired_in_queue =
      impl_->expired_in_queue.load(std::memory_order_relaxed);
  stats.cancelled_mid_plan =
      impl_->cancelled_mid_plan.load(std::memory_order_relaxed);
  stats.degraded_served =
      impl_->degraded_served.load(std::memory_order_relaxed);
  stats.rejected_overload =
      impl_->rejected_overload.load(std::memory_order_relaxed);
  stats.breaker_rejections =
      impl_->breaker_rejections.load(std::memory_order_relaxed);
  stats.snapshot_saves = impl_->snapshot_saves.load(std::memory_order_relaxed);
  stats.snapshot_loads = impl_->snapshot_loads.load(std::memory_order_relaxed);
  stats.snapshot_load_failures =
      impl_->snapshot_load_failures.load(std::memory_order_relaxed);
  stats.overload_transitions = impl_->overload.transitions();
  stats.load_state = impl_->overload.state();
  stats.workers = impl_->worker_count;
  std::size_t queue_depth = 0;
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    stats.queue_peak = impl_->queue_peak;
    queue_depth = impl_->queue.size();
  }
  stats.cache = cache_.stats();
  stats.ewma_plan_seconds =
      impl_->ewma_plan_seconds.load(std::memory_order_relaxed);
  stats.retry_after_hint_s = impl_->retry_after_hint(queue_depth);
  // Project the counters onto the stable wire taxonomy.  Expiry before and
  // after admission are one client-visible condition (DEADLINE_EXPIRED);
  // kDegraded is an annotation, not a rejection (those requests were
  // served), surfaced per-code so operators see degraded traffic next to
  // the hard rejections it prevented.
  auto& codes = stats.rejections_by_code;
  codes[status_index(StatusCode::kQueueFull)] = stats.rejected_queue_full;
  codes[status_index(StatusCode::kDeadlineExpired)] =
      stats.rejected_expired + stats.expired_in_queue;
  codes[status_index(StatusCode::kShed)] = stats.rejected_overload;
  codes[status_index(StatusCode::kBreakerOpen)] = stats.breaker_rejections;
  codes[status_index(StatusCode::kCancelled)] = stats.cancelled_mid_plan;
  codes[status_index(StatusCode::kPlannerFailed)] = stats.failed;
  codes[status_index(StatusCode::kDegraded)] = stats.degraded_served;
  return stats;
}

unsigned PlanningService::worker_count() const {
  return static_cast<unsigned>(impl_->worker_count);
}

LoadState PlanningService::load_state() const {
  return impl_->overload.state();
}

}  // namespace foscil::serve
