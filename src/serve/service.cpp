#include "serve/service.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <unordered_map>

#include "core/audit.hpp"
#include "util/parallel_for.hpp"

namespace foscil::serve {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_between(Clock::time_point from,
                                     Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

std::shared_ptr<const ServedPlan> plan_direct(const PlanRequest& request) {
  FOSCIL_EXPECTS(request.platform.model != nullptr);
  auto plan = std::make_shared<ServedPlan>();
  plan->kind = request.kind;
  plan->key = plan_key(request.platform, request.t_max_c, request.kind,
                       request.ao, request.pco);
  plan->result =
      request.kind == PlannerKind::kAo
          ? core::run_ao(request.platform, request.t_max_c, request.ao)
          : core::run_pco(request.platform, request.t_max_c, request.pco);
  plan->certificate_rise = core::step_up_certificate_rise(
      request.platform.model, plan->result.schedule);
  const double budget = request.platform.rise_budget(request.t_max_c);
  plan->certified_safe = plan->certificate_rise <= budget * (1.0 + 1e-6);
  core::AuditCounters::instance().record_certificate(plan->certified_safe);
  return plan;
}

/// One admitted cache-miss request plus everyone waiting on its result.
/// Lives in the queue and the in-flight table; guarded by Impl::mutex.
struct InFlightRequest {
  CacheKey key{};
  PlanRequest request;
  Clock::time_point submitted{};

  struct Waiter {
    std::promise<PlanResponse> promise;
    bool coalesced = false;
    bool has_deadline = false;
    Clock::time_point deadline{};
    Clock::time_point submitted{};
  };
  std::vector<Waiter> waiters;
};

struct PlanningService::Impl {
  ServiceOptions options;

  std::mutex mutex;
  std::mutex stop_mutex;  ///< serializes stop() callers; never nested
  std::size_t worker_count = 0;
  std::condition_variable work_ready;
  std::deque<std::shared_ptr<InFlightRequest>> queue;
  // Keyed by canonical request hash: an identical concurrent miss attaches
  // here instead of planning twice.  Entries stay until the plan (or its
  // failure) has been delivered, so attachment is race-free.
  std::unordered_map<CacheKey, std::shared_ptr<InFlightRequest>, CacheKeyHash>
      in_flight;
  bool stopping = false;
  std::size_t queue_peak = 0;

  // Lazily-initialized, mutex-guarded memo of model content fingerprints.
  // ThermalModel itself has no lazy caches (everything is eager and
  // immutable, see thermal/model.hpp) — this is the one lazy cache in the
  // serving stack, keyed by model identity with a weak_ptr guard against
  // address reuse after a model dies.
  std::mutex fingerprint_mutex;
  std::unordered_map<const thermal::ThermalModel*,
                     std::pair<std::weak_ptr<const thermal::ThermalModel>,
                               CacheKey>>
      fingerprints;

  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> fast_path_hits{0};
  std::atomic<std::uint64_t> coalesced{0};
  std::atomic<std::uint64_t> planned{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> rejected_queue_full{0};
  std::atomic<std::uint64_t> rejected_expired{0};
  std::atomic<std::uint64_t> expired_in_queue{0};

  [[nodiscard]] CacheKey memoized_model_fingerprint(
      const std::shared_ptr<const thermal::ThermalModel>& model) {
    FOSCIL_EXPECTS(model != nullptr);
    const std::lock_guard<std::mutex> lock(fingerprint_mutex);
    auto it = fingerprints.find(model.get());
    if (it != fingerprints.end() && !it->second.first.expired())
      return it->second.second;
    const CacheKey fp = model_fingerprint(*model);
    // Bound the memo: drop dead entries once it grows past a few hundred
    // models (a serving process typically hosts a handful).
    if (fingerprints.size() > 512) {
      for (auto entry = fingerprints.begin(); entry != fingerprints.end();) {
        entry = entry->second.first.expired() ? fingerprints.erase(entry)
                                              : std::next(entry);
      }
    }
    fingerprints[model.get()] = {model, fp};
    return fp;
  }
};

PlanningService::PlanningService(ServiceOptions options)
    : cache_(options.cache_capacity, options.cache_shards),
      impl_(std::make_unique<Impl>()) {
  FOSCIL_EXPECTS(options.queue_capacity >= 1);
  impl_->options = options;
  const unsigned workers =
      options.workers == 0 ? hardware_parallelism() : options.workers;
  impl_->worker_count = workers;
  threads_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w)
    threads_.emplace_back([this] { worker_loop(); });
}

PlanningService::~PlanningService() { stop(); }

void PlanningService::stop() {
  const std::lock_guard<std::mutex> stop_lock(impl_->stop_mutex);
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->work_ready.notify_all();
  for (std::thread& thread : threads_)
    if (thread.joinable()) thread.join();
  threads_.clear();
}

std::future<PlanResponse> PlanningService::submit(PlanRequest request) {
  impl_->submitted.fetch_add(1, std::memory_order_relaxed);
  const Clock::time_point now = Clock::now();

  const CacheKey model_fp =
      impl_->memoized_model_fingerprint(request.platform.model);
  const CacheKey key = plan_key(model_fp, request.platform, request.t_max_c,
                                request.kind, request.ao, request.pco);

  // Fast path: a hit costs one fingerprint hash and one shard lookup.
  if (std::shared_ptr<const ServedPlan> hit = cache_.lookup(key)) {
    impl_->fast_path_hits.fetch_add(1, std::memory_order_relaxed);
    impl_->completed.fetch_add(1, std::memory_order_relaxed);
    PlanResponse response;
    response.plan = std::move(hit);
    response.cache_hit = true;
    response.total_seconds = seconds_between(now, Clock::now());
    std::promise<PlanResponse> ready;
    std::future<PlanResponse> future = ready.get_future();
    ready.set_value(std::move(response));
    return future;
  }

  const double deadline_s = request.deadline_s >= 0.0
                                ? request.deadline_s
                                : impl_->options.default_deadline_s;
  const bool has_deadline =
      request.deadline_s >= 0.0 || impl_->options.default_deadline_s > 0.0;
  if (has_deadline && deadline_s <= 0.0) {
    // A miss with no time budget cannot be planned in time; reject now.
    impl_->rejected_expired.fetch_add(1, std::memory_order_relaxed);
    throw DeadlineExpiredError();
  }

  InFlightRequest::Waiter waiter;
  waiter.submitted = now;
  waiter.has_deadline = has_deadline;
  if (has_deadline)
    waiter.deadline = now + std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double>(deadline_s));
  std::future<PlanResponse> future = waiter.promise.get_future();

  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    if (impl_->stopping) throw ServiceStoppedError();
    const auto in_flight = impl_->in_flight.find(key);
    if (in_flight != impl_->in_flight.end()) {
      waiter.coalesced = true;
      impl_->coalesced.fetch_add(1, std::memory_order_relaxed);
      in_flight->second->waiters.push_back(std::move(waiter));
      return future;
    }
    if (impl_->queue.size() >= impl_->options.queue_capacity) {
      impl_->rejected_queue_full.fetch_add(1, std::memory_order_relaxed);
      throw QueueFullError();
    }
    auto job = std::make_shared<InFlightRequest>();
    job->key = key;
    job->request = std::move(request);
    job->submitted = now;
    job->waiters.push_back(std::move(waiter));
    impl_->in_flight.emplace(key, job);
    impl_->queue.push_back(std::move(job));
    impl_->queue_peak = std::max(impl_->queue_peak, impl_->queue.size());
  }
  impl_->work_ready.notify_one();
  return future;
}

void PlanningService::worker_loop() {
  Impl& impl = *impl_;
  for (;;) {
    std::shared_ptr<InFlightRequest> job;
    {
      std::unique_lock<std::mutex> lock(impl.mutex);
      impl.work_ready.wait(
          lock, [&] { return impl.stopping || !impl.queue.empty(); });
      // Drain the queue even when stopping: every admitted request is
      // answered (with a plan or an error), never silently dropped.
      if (impl.queue.empty()) return;
      job = std::move(impl.queue.front());
      impl.queue.pop_front();

      const Clock::time_point now = Clock::now();
      // Deadline triage under the lock: waiters whose budget has already
      // passed are rejected before any planning happens.  New arrivals can
      // still coalesce onto this job until it completes.
      std::vector<InFlightRequest::Waiter> expired;
      auto& waiters = job->waiters;
      for (auto it = waiters.begin(); it != waiters.end();) {
        if (it->has_deadline && it->deadline <= now) {
          expired.push_back(std::move(*it));
          it = waiters.erase(it);
        } else {
          ++it;
        }
      }
      const bool abandon = waiters.empty();
      if (abandon) impl.in_flight.erase(job->key);
      lock.unlock();

      impl.expired_in_queue.fetch_add(
          static_cast<std::uint64_t>(expired.size()),
          std::memory_order_relaxed);
      for (auto& waiter : expired)
        waiter.promise.set_exception(
            std::make_exception_ptr(DeadlineExpiredError()));
      if (abandon) continue;  // nobody left to pay for this plan
    }

    const Clock::time_point started = Clock::now();
    // Re-probe the cache: an identical key can land between this job's
    // admission and its pickup (the in-flight entry is erased only after
    // the cache insert, so the window is tiny but real).
    std::shared_ptr<const ServedPlan> plan = cache_.peek(job->key);
    const bool served_from_cache = plan != nullptr;
    std::exception_ptr error;
    if (!plan) {
      try {
        impl.planned.fetch_add(1, std::memory_order_relaxed);
        plan = plan_direct(job->request);
        FOSCIL_ASSERT(plan->key == job->key);
        cache_.insert(job->key, plan);
      } catch (...) {
        error = std::current_exception();
      }
    }

    std::vector<InFlightRequest::Waiter> waiters;
    {
      const std::lock_guard<std::mutex> lock(impl.mutex);
      impl.in_flight.erase(job->key);
      waiters = std::move(job->waiters);
    }
    const Clock::time_point finished = Clock::now();
    for (auto& waiter : waiters) {
      if (error) {
        impl.failed.fetch_add(1, std::memory_order_relaxed);
        waiter.promise.set_exception(error);
        continue;
      }
      PlanResponse response;
      response.plan = plan;
      response.cache_hit = served_from_cache;
      response.coalesced = waiter.coalesced;
      response.queue_seconds = seconds_between(waiter.submitted, started);
      response.total_seconds = seconds_between(waiter.submitted, finished);
      impl.completed.fetch_add(1, std::memory_order_relaxed);
      waiter.promise.set_value(std::move(response));
    }
  }
}

ServiceStats PlanningService::stats() const {
  ServiceStats stats;
  stats.submitted = impl_->submitted.load(std::memory_order_relaxed);
  stats.fast_path_hits =
      impl_->fast_path_hits.load(std::memory_order_relaxed);
  stats.coalesced = impl_->coalesced.load(std::memory_order_relaxed);
  stats.planned = impl_->planned.load(std::memory_order_relaxed);
  stats.completed = impl_->completed.load(std::memory_order_relaxed);
  stats.failed = impl_->failed.load(std::memory_order_relaxed);
  stats.rejected_queue_full =
      impl_->rejected_queue_full.load(std::memory_order_relaxed);
  stats.rejected_expired =
      impl_->rejected_expired.load(std::memory_order_relaxed);
  stats.expired_in_queue =
      impl_->expired_in_queue.load(std::memory_order_relaxed);
  stats.workers = impl_->worker_count;
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    stats.queue_peak = impl_->queue_peak;
  }
  stats.cache = cache_.stats();
  return stats;
}

unsigned PlanningService::worker_count() const {
  return static_cast<unsigned>(impl_->worker_count);
}

}  // namespace foscil::serve
