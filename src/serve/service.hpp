// Long-lived, in-process planning service.
//
// Turns the one-request-per-call planners of core/ into a shared,
// thread-safe serving stack:
//
//   submit() ──> canonical key ──> plan cache ──hit──> ready future
//                     │ miss
//                     ├──> identical request already in flight?
//                     │        └── yes: attach to it (coalescing) — the
//                     │            plan is computed exactly once and every
//                     │            waiter receives the same shared result
//                     └──> bounded FIFO queue (admission control: a full
//                          queue rejects at submit, it never blocks)
//                               │
//                  fixed worker pool: plan, certify (Theorem 2), insert
//                  into the cache, resolve every waiter
//
// Deadlines: a request may carry a per-request deadline (or inherit the
// service default).  A request whose deadline has passed when a worker
// dequeues it is rejected with DeadlineExpiredError without touching the
// planner — expired requests are never half-planned and never enter the
// cache.  An expired-at-submit request is only admitted if the cache can
// serve it instantly.
//
// Robustness: the service degrades before it falls over.  Requests carry
// cooperative CancelTokens (a deadline that passes mid-plan stops the
// planner within one candidate and reports CancelledError); a hysteresis
// overload ladder (serve/overload.hpp) caps search depth under pressure
// (DEGRADED) and sheds load with retry-after hints before the queue can
// grow unbounded (SHED); a per-key circuit breaker stops a poisoned
// request from repeatedly burning workers; and an optional snapshot file
// (serve/snapshot.hpp) makes restarts warm — the cache reloads
// bit-identical plans, and corrupt snapshots are rejected cleanly in
// favor of a cold start.
//
// Thread-safety contract: Platform/ThermalModel are immutable after
// construction (see thermal/model.hpp), the planners are reentrant pure
// functions of their arguments, and every piece of shared mutable state in
// this module (cache shards, queue, in-flight table, fingerprint memo,
// counters) is lock- or atomic-guarded.  The serve test battery runs under
// ThreadSanitizer in CI.
#pragma once

#include <array>
#include <future>
#include <optional>
#include <stdexcept>
#include <thread>

#include "core/identify.hpp"
#include "serve/errors.hpp"
#include "serve/overload.hpp"
#include "serve/plan_cache.hpp"

namespace foscil::serve {

struct ServiceOptions {
  unsigned workers = 0;             ///< 0 = hardware_parallelism()
  std::size_t queue_capacity = 256; ///< pending (not yet started) requests
  std::size_t cache_capacity = 1024;
  std::size_t cache_shards = 8;
  double default_deadline_s = 0.0;  ///< <= 0: no default deadline
  /// Degradation ladder watermarks and degraded-search caps.
  OverloadOptions overload{};
  /// Per-key failure isolation.
  BreakerOptions breaker{};
  /// Snapshot file for crash-safe warm restarts.  Empty: persistence off.
  /// Non-empty: the constructor attempts a warm start from this file (a
  /// missing/corrupt file is counted and ignored — the service starts
  /// cold), and stop() flushes a final snapshot to it.
  std::string snapshot_path;
  /// > 0: a background thread additionally flushes the snapshot every this
  /// many seconds, so a crash loses at most one period of cached plans.
  double snapshot_period_s = 0.0;
  /// When true (the default) a configured snapshot_path is warm-loaded in
  /// the constructor, before any worker starts.  The network front end
  /// (serve/net/server.hpp) sets this false so it can open its listening
  /// socket first and answer READY=false while it restores — warm-up
  /// becomes an externally observable state instead of silent startup
  /// latency.  stop()/periodic flushing are unaffected by this flag.
  bool warm_load_at_construction = true;
};

struct PlanRequest {
  core::Platform platform;
  double t_max_c = 55.0;
  PlannerKind kind = PlannerKind::kAo;
  core::AoOptions ao{};   ///< used when kind == kAo
  core::PcoOptions pco{}; ///< used when kind == kPco (embeds its own ao)
  /// Seconds from submit until the request is no longer worth planning.
  /// < 0: inherit the service default; 0 or more: explicit budget.
  double deadline_s = -1.0;
};

struct PlanResponse {
  std::shared_ptr<const ServedPlan> plan;
  bool cache_hit = false;   ///< served from the cache without planning
  bool coalesced = false;   ///< attached to an identical in-flight request
  double queue_seconds = 0.0;  ///< submit -> worker pickup (0 on fast path)
  double total_seconds = 0.0;  ///< submit -> response ready
};

struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t fast_path_hits = 0;    ///< cache hits served at submit
  std::uint64_t coalesced = 0;         ///< attached to in-flight requests
  std::uint64_t planned = 0;           ///< planner invocations
  std::uint64_t completed = 0;         ///< responses delivered with a plan
  std::uint64_t failed = 0;            ///< planner threw; waiters got it
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_expired = 0;  ///< dead on arrival at submit
  std::uint64_t expired_in_queue = 0;  ///< dequeued past their deadline
  std::uint64_t cancelled_mid_plan = 0;  ///< waiters whose plan was cut short
  std::uint64_t degraded_served = 0;     ///< responses carrying degraded plans
  std::uint64_t rejected_overload = 0;   ///< shed at submit (OverloadedError)
  std::uint64_t breaker_rejections = 0;  ///< rejected by an open breaker
  std::uint64_t snapshot_saves = 0;
  std::uint64_t snapshot_loads = 0;         ///< successful warm starts
  std::uint64_t snapshot_load_failures = 0; ///< corrupt/missing -> cold start
  std::uint64_t overload_transitions = 0;   ///< ladder state changes
  LoadState load_state = LoadState::kNormal;
  std::size_t queue_peak = 0;
  std::size_t workers = 0;
  CacheStats cache;
  /// EWMA of recent planner wall times and the retry-after hint it implies
  /// at the current queue depth — the same hint OverloadedError (and the
  /// wire SHED status) carries, surfaced so operators and health frames
  /// can see the advertised backoff.
  double ewma_plan_seconds = 0.0;
  double retry_after_hint_s = 0.0;
  /// Rejection/annotation breakdown on the stable wire status taxonomy
  /// (serve/errors.hpp StatusCode), indexed by status_index().  Derived
  /// from the counters above: every rejection the service can issue maps
  /// to exactly one code.  Framing-layer codes (MALFORMED, TOO_LARGE, ...)
  /// stay zero here — only the network tier can produce those; it counts
  /// them in its own ServerStats.
  std::array<std::uint64_t, kStatusCodeCount> rejections_by_code{};
};

/// Fixed-pool planning service.  All public methods are thread-safe.
class PlanningService {
 public:
  explicit PlanningService(ServiceOptions options = {});
  ~PlanningService();

  PlanningService(const PlanningService&) = delete;
  PlanningService& operator=(const PlanningService&) = delete;

  /// Admit one request.  Returns a future that yields the response, or
  /// throws QueueFullError / DeadlineExpiredError / ServiceStoppedError /
  /// OverloadedError / BreakerOpenError at submit.  Failures after
  /// admission (expiry in queue, cancellation mid-plan, planner errors)
  /// are delivered through the future.
  [[nodiscard]] std::future<PlanResponse> submit(PlanRequest request);

  /// Stop accepting work, drain the queue, join the workers, and (when a
  /// snapshot path is configured) flush a final snapshot.  Idempotent.
  void stop();

  /// Serialize the current cache contents (and the identify state, if one
  /// was set or warm-loaded) to `path` atomically.  Throws SnapshotError
  /// on I/O failure.  Counted in ServiceStats::snapshot_saves.
  void save_snapshot_file(const std::string& path);

  /// Warm-start from `path`: insert every snapshotted plan into the cache
  /// (bit-identical to when it was saved) and retain the identify state
  /// for loaded_identify_state().  Throws SnapshotError when the file is
  /// missing, corrupt, truncated, or version-mismatched — the cache is
  /// left untouched (cold) in that case.
  void load_snapshot_file(const std::string& path);

  /// Identify state restored by the last successful snapshot load, for the
  /// owner of the ThermalIdentifier to re-arm it after a warm restart.
  [[nodiscard]] std::optional<core::IdentifyState> loaded_identify_state()
      const;
  /// Attach the current identification state so subsequent snapshots
  /// persist it alongside the cached plans.
  void set_identify_state(core::IdentifyState state);

  /// Warm-inject one plan received from a peer shard (live cache handoff):
  /// inserted only when the key is absent — whatever this shard already
  /// cached is the truth and is never overwritten.  Returns true when the
  /// plan was inserted.  Thread-safe (the cache's own shard locks).
  bool insert_plan_if_absent(std::shared_ptr<const ServedPlan> plan);

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] const PlanCache& cache() const { return cache_; }
  [[nodiscard]] unsigned worker_count() const;
  [[nodiscard]] LoadState load_state() const;

 private:
  struct Impl;
  void worker_loop();
  void snapshot_loop();

  PlanCache cache_;
  std::unique_ptr<Impl> impl_;
  std::vector<std::thread> threads_;
  std::thread snapshot_thread_;
};

/// Plan one request directly on the calling thread — the planner run plus
/// the Theorem-2 certificate, exactly as a service worker would compute it,
/// but with no cache, queue, or coalescing.  This is the serial baseline
/// for benchmarking and the oracle for the differential tests.
/// `degraded` stamps the plan and its key with the degraded bit; the
/// caller is responsible for having already capped the request's search
/// options (see degraded_ao_options) — the flag itself changes no math.
[[nodiscard]] std::shared_ptr<const ServedPlan> plan_direct(
    const PlanRequest& request, bool degraded = false);

}  // namespace foscil::serve
