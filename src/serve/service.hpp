// Long-lived, in-process planning service.
//
// Turns the one-request-per-call planners of core/ into a shared,
// thread-safe serving stack:
//
//   submit() ──> canonical key ──> plan cache ──hit──> ready future
//                     │ miss
//                     ├──> identical request already in flight?
//                     │        └── yes: attach to it (coalescing) — the
//                     │            plan is computed exactly once and every
//                     │            waiter receives the same shared result
//                     └──> bounded FIFO queue (admission control: a full
//                          queue rejects at submit, it never blocks)
//                               │
//                  fixed worker pool: plan, certify (Theorem 2), insert
//                  into the cache, resolve every waiter
//
// Deadlines: a request may carry a per-request deadline (or inherit the
// service default).  A request whose deadline has passed when a worker
// dequeues it is rejected with DeadlineExpiredError without touching the
// planner — expired requests are never half-planned and never enter the
// cache.  An expired-at-submit request is only admitted if the cache can
// serve it instantly.
//
// Thread-safety contract: Platform/ThermalModel are immutable after
// construction (see thermal/model.hpp), the planners are reentrant pure
// functions of their arguments, and every piece of shared mutable state in
// this module (cache shards, queue, in-flight table, fingerprint memo,
// counters) is lock- or atomic-guarded.  The serve test battery runs under
// ThreadSanitizer in CI.
#pragma once

#include <future>
#include <stdexcept>
#include <thread>

#include "serve/plan_cache.hpp"

namespace foscil::serve {

class ServeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Admission control: the bounded request queue is full.
class QueueFullError : public ServeError {
 public:
  QueueFullError() : ServeError("planning service queue is full") {}
};

/// The request's deadline passed before a worker could start planning it.
class DeadlineExpiredError : public ServeError {
 public:
  DeadlineExpiredError()
      : ServeError("planning request deadline expired before planning") {}
};

/// The service is stopping / stopped and accepts no new work.
class ServiceStoppedError : public ServeError {
 public:
  ServiceStoppedError() : ServeError("planning service is stopped") {}
};

struct ServiceOptions {
  unsigned workers = 0;             ///< 0 = hardware_parallelism()
  std::size_t queue_capacity = 256; ///< pending (not yet started) requests
  std::size_t cache_capacity = 1024;
  std::size_t cache_shards = 8;
  double default_deadline_s = 0.0;  ///< <= 0: no default deadline
};

struct PlanRequest {
  core::Platform platform;
  double t_max_c = 55.0;
  PlannerKind kind = PlannerKind::kAo;
  core::AoOptions ao{};   ///< used when kind == kAo
  core::PcoOptions pco{}; ///< used when kind == kPco (embeds its own ao)
  /// Seconds from submit until the request is no longer worth planning.
  /// < 0: inherit the service default; 0 or more: explicit budget.
  double deadline_s = -1.0;
};

struct PlanResponse {
  std::shared_ptr<const ServedPlan> plan;
  bool cache_hit = false;   ///< served from the cache without planning
  bool coalesced = false;   ///< attached to an identical in-flight request
  double queue_seconds = 0.0;  ///< submit -> worker pickup (0 on fast path)
  double total_seconds = 0.0;  ///< submit -> response ready
};

struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t fast_path_hits = 0;    ///< cache hits served at submit
  std::uint64_t coalesced = 0;         ///< attached to in-flight requests
  std::uint64_t planned = 0;           ///< planner invocations
  std::uint64_t completed = 0;         ///< responses delivered with a plan
  std::uint64_t failed = 0;            ///< planner threw; waiters got it
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_expired = 0;  ///< dead on arrival at submit
  std::uint64_t expired_in_queue = 0;  ///< dequeued past their deadline
  std::size_t queue_peak = 0;
  std::size_t workers = 0;
  CacheStats cache;
};

/// Fixed-pool planning service.  All public methods are thread-safe.
class PlanningService {
 public:
  explicit PlanningService(ServiceOptions options = {});
  ~PlanningService();

  PlanningService(const PlanningService&) = delete;
  PlanningService& operator=(const PlanningService&) = delete;

  /// Admit one request.  Returns a future that yields the response, or
  /// throws QueueFullError / DeadlineExpiredError / ServiceStoppedError at
  /// submit.  Failures after admission (expiry in queue, planner errors)
  /// are delivered through the future.
  [[nodiscard]] std::future<PlanResponse> submit(PlanRequest request);

  /// Stop accepting work, drain the queue, join the workers.  Idempotent.
  void stop();

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] const PlanCache& cache() const { return cache_; }
  [[nodiscard]] unsigned worker_count() const;

 private:
  struct Impl;
  void worker_loop();

  PlanCache cache_;
  std::unique_ptr<Impl> impl_;
  std::vector<std::thread> threads_;
};

/// Plan one request directly on the calling thread — the planner run plus
/// the Theorem-2 certificate, exactly as a service worker would compute it,
/// but with no cache, queue, or coalescing.  This is the serial baseline
/// for benchmarking and the oracle for the differential tests.
[[nodiscard]] std::shared_ptr<const ServedPlan> plan_direct(
    const PlanRequest& request);

}  // namespace foscil::serve
