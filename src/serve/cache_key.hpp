// Canonical cache keys for the planning service.
//
// A plan is a pure function of (platform contents, T_max, planner kind,
// planner options): the schedulers are deterministic and carry no hidden
// state, so two requests whose canonical inputs hash equal may share one
// cached result bit-for-bit.  The key is a 128-bit content hash — two
// independent 64-bit streams (FNV-1a and a splitmix-style accumulator) over
// the canonicalized bit patterns of every input that can influence the
// planner:
//   * the thermal model: node/core/tier counts, die-node map, the full
//     conductance matrix, capacitances, and per-core power coefficients;
//   * the DVFS level set and the ambient temperature;
//   * T_max, the planner kind, and every AoOptions/PcoOptions field.
// The platform *name* is deliberately excluded (it is a label, not an
// input), and floating-point values are canonicalized (-0.0 folds onto
// +0.0; NaN violates a precondition) so equal-behaving requests cannot
// split across keys.  Collisions across *different* inputs are guarded
// against by storing the full key in each cache entry and comparing on hit.
#pragma once

#include <cstdint>

#include "core/ao.hpp"
#include "core/pco.hpp"
#include "core/platform.hpp"

namespace foscil::serve {

/// Which planner a request runs (EXS is served through its own tooling;
/// the service covers the paper's oscillating schedulers).
enum class PlannerKind { kAo, kPco };

[[nodiscard]] const char* planner_name(PlannerKind kind);

/// 128-bit content hash; equality is exact.
struct CacheKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

/// Hash functor for unordered containers keyed by CacheKey.
struct CacheKeyHash {
  [[nodiscard]] std::size_t operator()(const CacheKey& key) const noexcept {
    // hi and lo are independent streams; fold them so containers see
    // different bits than the cache's shard selector (which uses hi alone).
    std::uint64_t x = key.lo ^ (key.hi * 0x9E3779B97F4A7C15ull);
    x ^= x >> 32;
    return static_cast<std::size_t>(x);
  }
};

/// Incremental canonical hasher: two independent 64-bit streams fed with
/// 64-bit words.  Doubles are folded by bit pattern after canonicalizing
/// signed zero; NaN inputs violate the precondition (a NaN in any planner
/// input is already rejected upstream by the config loader / contracts).
class KeyHasher {
 public:
  KeyHasher& mix(std::uint64_t value) noexcept;
  KeyHasher& mix_double(double value);
  KeyHasher& mix(const linalg::Vector& values);
  KeyHasher& mix(const linalg::Matrix& values);

  [[nodiscard]] CacheKey key() const noexcept { return {hi_, lo_}; }

 private:
  std::uint64_t hi_ = 14695981039346656037ull;  // FNV-1a offset basis
  std::uint64_t lo_ = 0x6C62272E07BB0142ull;    // independent seed
};

/// Content fingerprint of the thermal model alone (RC network + power
/// coefficients).  O(n^2) in the node count — negligible next to a plan,
/// and the service memoizes it per model instance.
[[nodiscard]] CacheKey model_fingerprint(const thermal::ThermalModel& model);

/// Content fingerprint of a full platform: model + level set + ambient.
[[nodiscard]] CacheKey platform_fingerprint(const core::Platform& platform);

/// Canonical key of one planning request.  `ao` is hashed for kAo requests;
/// `pco` (including its embedded AoOptions) for kPco requests.  Passing a
/// precomputed `model_fp` skips rehashing the model contents.  `degraded`
/// marks a plan computed under overload with capped search options; it is
/// part of the key schema so degraded and full-quality plans can never
/// share an entry.
[[nodiscard]] CacheKey plan_key(const core::Platform& platform,
                                double t_max_c, PlannerKind kind,
                                const core::AoOptions& ao,
                                const core::PcoOptions& pco = {},
                                bool degraded = false);
[[nodiscard]] CacheKey plan_key(const CacheKey& model_fp,
                                const core::Platform& platform,
                                double t_max_c, PlannerKind kind,
                                const core::AoOptions& ao,
                                const core::PcoOptions& pco = {},
                                bool degraded = false);

}  // namespace foscil::serve
