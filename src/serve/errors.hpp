// Error hierarchy of the planning service.
//
// Lives in its own header so every serve/ module (overload controller,
// circuit breaker, snapshot persistence, the service itself) can throw and
// catch the same types without include cycles.  All serving-stack failures
// derive from ServeError; callers that only care about "the service said
// no" catch the base, callers that implement retry policy catch the
// specific types (OverloadedError and BreakerOpenError carry retry-after
// hints).
#pragma once

#include <stdexcept>
#include <string>

namespace foscil::serve {

class ServeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Admission control: the bounded request queue is full.
class QueueFullError : public ServeError {
 public:
  QueueFullError() : ServeError("planning service queue is full") {}
};

/// The request's deadline passed before a worker could start planning it.
class DeadlineExpiredError : public ServeError {
 public:
  DeadlineExpiredError()
      : ServeError("planning request deadline expired before planning") {}
};

/// The service is stopping / stopped and accepts no new work.
class ServiceStoppedError : public ServeError {
 public:
  ServiceStoppedError() : ServeError("planning service is stopped") {}
};

/// Load shedding: the overload ladder reached SHED and rejected the
/// request at submit.  `retry_after_s` estimates when the queue will have
/// drained enough to admit work again.
class OverloadedError : public ServeError {
 public:
  explicit OverloadedError(double retry_s)
      : ServeError("planning service overloaded; retry in " +
                   std::to_string(retry_s * 1e3) + " ms"),
        retry_after_s(retry_s) {}

  double retry_after_s = 0.0;
};

/// Per-key circuit breaker: this canonical request has failed repeatedly
/// and is rejected fast instead of re-burning a worker.  Carries the last
/// planner error as the negative-cache diagnosis plus a retry-after hint
/// (the remaining exponential backoff).
class BreakerOpenError : public ServeError {
 public:
  BreakerOpenError(double retry_s, const std::string& diagnosis)
      : ServeError("circuit breaker open for this request (retry in " +
                   std::to_string(retry_s * 1e3) +
                   " ms); last planner error: " + diagnosis),
        retry_after_s(retry_s),
        last_error(diagnosis) {}

  double retry_after_s = 0.0;
  std::string last_error;
};

/// Snapshot persistence failure: unreadable, truncated, corrupt, or
/// version-mismatched snapshot file, or an I/O error while writing one.
/// The message always names the file and the specific defect so operators
/// can diagnose a failed warm restart from the log line alone.
class SnapshotError : public ServeError {
 public:
  using ServeError::ServeError;
};

}  // namespace foscil::serve
