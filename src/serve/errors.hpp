// Error hierarchy of the planning service.
//
// Lives in its own header so every serve/ module (overload controller,
// circuit breaker, snapshot persistence, the service itself) can throw and
// catch the same types without include cycles.  All serving-stack failures
// derive from ServeError; callers that only care about "the service said
// no" catch the base, callers that implement retry policy catch the
// specific types (OverloadedError and BreakerOpenError carry retry-after
// hints).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/cancel.hpp"

namespace foscil::serve {

class ServeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Admission control: the bounded request queue is full.
class QueueFullError : public ServeError {
 public:
  QueueFullError() : ServeError("planning service queue is full") {}
};

/// The request's deadline passed before a worker could start planning it.
class DeadlineExpiredError : public ServeError {
 public:
  DeadlineExpiredError()
      : ServeError("planning request deadline expired before planning") {}
};

/// The service is stopping / stopped and accepts no new work.
class ServiceStoppedError : public ServeError {
 public:
  ServiceStoppedError() : ServeError("planning service is stopped") {}
};

/// Load shedding: the overload ladder reached SHED and rejected the
/// request at submit.  `retry_after_s` estimates when the queue will have
/// drained enough to admit work again.
class OverloadedError : public ServeError {
 public:
  explicit OverloadedError(double retry_s)
      : ServeError("planning service overloaded; retry in " +
                   std::to_string(retry_s * 1e3) + " ms"),
        retry_after_s(retry_s) {}

  double retry_after_s = 0.0;
};

/// Per-key circuit breaker: this canonical request has failed repeatedly
/// and is rejected fast instead of re-burning a worker.  Carries the last
/// planner error as the negative-cache diagnosis plus a retry-after hint
/// (the remaining exponential backoff).
class BreakerOpenError : public ServeError {
 public:
  BreakerOpenError(double retry_s, const std::string& diagnosis)
      : ServeError("circuit breaker open for this request (retry in " +
                   std::to_string(retry_s * 1e3) +
                   " ms); last planner error: " + diagnosis),
        retry_after_s(retry_s),
        last_error(diagnosis) {}

  double retry_after_s = 0.0;
  std::string last_error;
};

/// Snapshot persistence failure: unreadable, truncated, corrupt, or
/// version-mismatched snapshot file, or an I/O error while writing one.
/// The message always names the file and the specific defect so operators
/// can diagnose a failed warm restart from the log line alone.
class SnapshotError : public ServeError {
 public:
  using ServeError::ServeError;
};

// ---- stable wire status taxonomy ------------------------------------------
//
// Every way the serving stack can say "no" maps onto one stable numeric
// status code, shared between in-process stats (ServiceStats::
// rejections_by_code) and the network tier (serve/net/wire.hpp Status
// frames).  The numeric values are a wire contract: once assigned they are
// never reused or renumbered, only appended to — a v1 client must be able
// to classify a v9 server's rejections.  Codes 1..5 are framing-layer
// defects only the network tier can produce; codes 6..13 are the service's
// own rejection taxonomy; kDegraded is an annotation (the request was
// *served*, from a capped search), counted so operators can see degraded
// traffic per code next to the hard rejections.
enum class StatusCode : std::uint16_t {
  kOk = 0,
  kMalformed = 1,           ///< frame/body failed strict validation
  kUnsupportedVersion = 2,  ///< protocol version skew
  kTooLarge = 3,            ///< declared body length over the cap
  kPlatformMismatch = 4,    ///< request fingerprint != server platform
  kNotReady = 5,            ///< still warming from snapshot; retry
  kQueueFull = 6,           ///< QueueFullError
  kDeadlineExpired = 7,     ///< DeadlineExpiredError
  kShed = 8,                ///< OverloadedError (EWMA retry-after hint)
  kBreakerOpen = 9,         ///< BreakerOpenError (backoff retry hint)
  kStopping = 10,           ///< ServiceStoppedError / draining server
  kPlannerFailed = 11,      ///< planner threw; deterministic, don't retry
  kCancelled = 12,          ///< CancelledError mid-plan
  kDegraded = 13,           ///< served, but from a capped (degraded) search
  kStaleEpoch = 14,         ///< handoff carried an older membership epoch
};

inline constexpr std::size_t kStatusCodeCount = 15;

[[nodiscard]] constexpr std::size_t status_index(StatusCode code) noexcept {
  return static_cast<std::size_t>(code);
}

[[nodiscard]] inline const char* status_code_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kMalformed: return "MALFORMED";
    case StatusCode::kUnsupportedVersion: return "UNSUPPORTED_VERSION";
    case StatusCode::kTooLarge: return "TOO_LARGE";
    case StatusCode::kPlatformMismatch: return "PLATFORM_MISMATCH";
    case StatusCode::kNotReady: return "NOT_READY";
    case StatusCode::kQueueFull: return "QUEUE_FULL";
    case StatusCode::kDeadlineExpired: return "DEADLINE_EXPIRED";
    case StatusCode::kShed: return "SHED";
    case StatusCode::kBreakerOpen: return "BREAKER_OPEN";
    case StatusCode::kStopping: return "STOPPING";
    case StatusCode::kPlannerFailed: return "PLANNER_FAILED";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kDegraded: return "DEGRADED";
    case StatusCode::kStaleEpoch: return "STALE_EPOCH";
  }
  return "UNKNOWN";
}

/// True for statuses a client may retry automatically (possibly against
/// another shard): transient conditions that say nothing about the request
/// itself.  Deterministic failures (malformed, mismatched platform, planner
/// error) must never be retried — they would fail identically everywhere.
[[nodiscard]] inline bool status_retryable(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kNotReady:
    case StatusCode::kQueueFull:
    case StatusCode::kShed:
    case StatusCode::kBreakerOpen:
    case StatusCode::kStopping:
      return true;
    default:
      return false;
  }
}

/// Classify a serving-stack exception onto the wire taxonomy.  Unknown
/// exception types classify as kPlannerFailed — the catch-all for "the
/// request reached a planner and the planner said no".
[[nodiscard]] inline StatusCode status_code_of(const std::exception& error) {
  if (dynamic_cast<const QueueFullError*>(&error) != nullptr)
    return StatusCode::kQueueFull;
  if (dynamic_cast<const DeadlineExpiredError*>(&error) != nullptr)
    return StatusCode::kDeadlineExpired;
  if (dynamic_cast<const OverloadedError*>(&error) != nullptr)
    return StatusCode::kShed;
  if (dynamic_cast<const BreakerOpenError*>(&error) != nullptr)
    return StatusCode::kBreakerOpen;
  if (dynamic_cast<const ServiceStoppedError*>(&error) != nullptr)
    return StatusCode::kStopping;
  if (dynamic_cast<const CancelledError*>(&error) != nullptr)
    return StatusCode::kCancelled;
  return StatusCode::kPlannerFailed;
}

/// Retry-after hint carried by an exception (seconds), 0 when it has none.
[[nodiscard]] inline double retry_after_of(const std::exception& error) {
  if (const auto* overloaded = dynamic_cast<const OverloadedError*>(&error))
    return overloaded->retry_after_s;
  if (const auto* breaker = dynamic_cast<const BreakerOpenError*>(&error))
    return breaker->retry_after_s;
  return 0.0;
}

}  // namespace foscil::serve
