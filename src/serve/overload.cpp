#include "serve/overload.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace foscil::serve {

const char* load_state_name(LoadState state) {
  switch (state) {
    case LoadState::kNormal:
      return "normal";
    case LoadState::kDegraded:
      return "degraded";
    case LoadState::kShed:
      return "shed";
  }
  FOSCIL_ASSERT(false);
  return "?";
}

void OverloadOptions::check() const {
  FOSCIL_EXPECTS(recover_fill >= 0.0);
  FOSCIL_EXPECTS(recover_fill < degrade_fill);
  FOSCIL_EXPECTS(degrade_fill < shed_fill);
  FOSCIL_EXPECTS(shed_fill <= 1.0);
  FOSCIL_EXPECTS(degraded_max_m >= 1);
  FOSCIL_EXPECTS(degraded_patience >= 1);
  FOSCIL_EXPECTS(degraded_phase_grid >= 1);
  FOSCIL_EXPECTS(degraded_phase_rounds >= 1);
  FOSCIL_EXPECTS(min_retry_after_s >= 0.0);
}

OverloadController::OverloadController(OverloadOptions options)
    : options_(options) {
  options_.check();
}

LoadState OverloadController::update(std::size_t queue_depth,
                                     std::size_t queue_capacity) {
  FOSCIL_EXPECTS(queue_capacity > 0);
  if (!options_.enabled) return LoadState::kNormal;
  const double fill =
      static_cast<double>(queue_depth) / static_cast<double>(queue_capacity);

  // The service serializes update() under its admission mutex, so a plain
  // read-modify-write on the atomic is race-free; the atomic exists for the
  // lock-free readers (stats, benches).
  const auto current = state();
  LoadState next = current;
  switch (current) {
    case LoadState::kNormal:
      if (fill >= options_.shed_fill)
        next = LoadState::kShed;
      else if (fill >= options_.degrade_fill)
        next = LoadState::kDegraded;
      break;
    case LoadState::kDegraded:
      if (fill >= options_.shed_fill)
        next = LoadState::kShed;
      else if (fill <= options_.recover_fill)
        next = LoadState::kNormal;
      break;
    case LoadState::kShed:
      // Step down one rung at a time: shedding stops as soon as the queue
      // is back under the degrade watermark, but full quality only returns
      // once the backlog has truly drained past the recovery watermark.
      if (fill <= options_.recover_fill)
        next = LoadState::kNormal;
      else if (fill < options_.degrade_fill)
        next = LoadState::kDegraded;
      break;
  }
  if (next != current) {
    state_.store(static_cast<int>(next), std::memory_order_release);
    transitions_.fetch_add(1, std::memory_order_relaxed);
  }
  return next;
}

core::AoOptions degraded_ao_options(core::AoOptions ao,
                                    const OverloadOptions& opts) {
  ao.max_m = std::min(ao.max_m, opts.degraded_max_m);
  ao.m_search_patience = std::min(ao.m_search_patience, opts.degraded_patience);
  return ao;
}

core::PcoOptions degraded_pco_options(core::PcoOptions pco,
                                      const OverloadOptions& opts) {
  pco.ao = degraded_ao_options(pco.ao, opts);
  pco.phase_grid = std::min(pco.phase_grid, opts.degraded_phase_grid);
  pco.phase_rounds = std::min(pco.phase_rounds, opts.degraded_phase_rounds);
  return pco;
}

void BreakerOptions::check() const {
  FOSCIL_EXPECTS(failure_threshold >= 1);
  FOSCIL_EXPECTS(backoff_initial_s > 0.0);
  FOSCIL_EXPECTS(backoff_factor >= 1.0);
  FOSCIL_EXPECTS(backoff_max_s >= backoff_initial_s);
  FOSCIL_EXPECTS(max_entries >= 1);
}

CircuitBreaker::CircuitBreaker(BreakerOptions options) : options_(options) {
  options_.check();
}

void CircuitBreaker::admit(const CacheKey& key, Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end() || !it->second.open) return;

  Entry& entry = it->second;
  if (now < entry.open_until) {
    const double remaining =
        std::chrono::duration<double>(entry.open_until - now).count();
    throw BreakerOpenError(remaining, entry.last_error);
  }
  // Backoff expired: half-open.  Admit exactly one trial; anyone else
  // arriving before the trial resolves is still rejected (with the full
  // backoff as the hint — if the trial fails, that is what they'd wait).
  if (entry.trial_in_flight)
    throw BreakerOpenError(entry.backoff_s, entry.last_error);
  entry.trial_in_flight = true;
  entry.last_update = now;
}

void CircuitBreaker::record_failure(const CacheKey& key,
                                    const std::string& reason,
                                    Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[key];
  entry.trial_in_flight = false;
  entry.consecutive_failures += 1;
  entry.last_error = reason;
  entry.last_update = now;
  if (entry.consecutive_failures >= options_.failure_threshold) {
    // First opening starts at the initial backoff; each further failure
    // (a failed half-open trial) doubles it up to the cap.
    entry.backoff_s =
        entry.open ? std::min(entry.backoff_s * options_.backoff_factor,
                              options_.backoff_max_s)
                   : options_.backoff_initial_s;
    entry.open = true;
    entry.open_until =
        now + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(entry.backoff_s));
  }
  if (entries_.size() > options_.max_entries) evict_locked();
}

void CircuitBreaker::record_success(const CacheKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.erase(key);
}

void CircuitBreaker::abandon_trial(const CacheKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) it->second.trial_in_flight = false;
}

std::size_t CircuitBreaker::open_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t open = 0;
  for (const auto& [key, entry] : entries_)
    if (entry.open) ++open;
  return open;
}

std::size_t CircuitBreaker::tracked_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void CircuitBreaker::evict_locked() {
  // Closed entries (keys merely accumulating failures below the threshold)
  // go first, oldest update first; open breakers are only dropped when the
  // table is somehow full of them.
  while (entries_.size() > options_.max_entries) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (victim == entries_.end() ||
          (!it->second.open && victim->second.open) ||
          (it->second.open == victim->second.open &&
           it->second.last_update < victim->second.last_update))
        victim = it;
    }
    if (victim == entries_.end()) break;
    entries_.erase(victim);
  }
}

}  // namespace foscil::serve
