#include "serve/serve_config.hpp"

namespace foscil::serve {

ServiceOptions service_options_from_config(const Config& config) {
  ServiceOptions options;
  const long workers = config.get_int_or("serve.workers", 0);
  FOSCIL_EXPECTS(workers >= 0);
  options.workers = static_cast<unsigned>(workers);

  const long queue = config.get_int_or(
      "serve.queue_capacity", static_cast<long>(options.queue_capacity));
  FOSCIL_EXPECTS(queue >= 1);
  options.queue_capacity = static_cast<std::size_t>(queue);

  const long capacity = config.get_int_or(
      "serve.cache_capacity", static_cast<long>(options.cache_capacity));
  FOSCIL_EXPECTS(capacity >= 1);
  options.cache_capacity = static_cast<std::size_t>(capacity);

  const long shards = config.get_int_or(
      "serve.cache_shards", static_cast<long>(options.cache_shards));
  FOSCIL_EXPECTS(shards >= 1);
  options.cache_shards = static_cast<std::size_t>(shards);

  const double deadline_ms =
      config.get_double_or("serve.default_deadline_ms", 0.0);
  FOSCIL_EXPECTS(deadline_ms >= 0.0);
  options.default_deadline_s = deadline_ms / 1e3;

  OverloadOptions& overload = options.overload;
  overload.enabled = config.has("serve.overload_enabled")
                         ? config.get_bool("serve.overload_enabled")
                         : overload.enabled;
  overload.degrade_fill =
      config.get_double_or("serve.degrade_fill", overload.degrade_fill);
  overload.shed_fill =
      config.get_double_or("serve.shed_fill", overload.shed_fill);
  overload.recover_fill =
      config.get_double_or("serve.recover_fill", overload.recover_fill);
  overload.degraded_max_m = static_cast<int>(
      config.get_int_or("serve.degraded_max_m", overload.degraded_max_m));
  overload.degraded_patience = static_cast<int>(config.get_int_or(
      "serve.degraded_patience", overload.degraded_patience));
  overload.check();

  BreakerOptions& breaker = options.breaker;
  breaker.failure_threshold = static_cast<int>(config.get_int_or(
      "serve.breaker_threshold", breaker.failure_threshold));
  breaker.backoff_initial_s =
      config.get_double_or("serve.breaker_backoff_initial_ms",
                           breaker.backoff_initial_s * 1e3) /
      1e3;
  breaker.backoff_max_s =
      config.get_double_or("serve.breaker_backoff_max_ms",
                           breaker.backoff_max_s * 1e3) /
      1e3;
  breaker.check();

  options.snapshot_path = config.get_string_or("serve.snapshot_path", "");
  options.snapshot_period_s =
      config.get_double_or("serve.snapshot_period_s", 0.0);
  FOSCIL_EXPECTS(options.snapshot_period_s >= 0.0);
  return options;
}

ServeDemoOptions demo_options_from_config(const Config& config) {
  ServeDemoOptions demo;
  const long unique = config.get_int_or("serve.demo_unique",
                                        demo.unique_requests);
  const long repeats = config.get_int_or("serve.demo_repeats", demo.repeats);
  FOSCIL_EXPECTS(unique >= 1);
  FOSCIL_EXPECTS(repeats >= 1);
  demo.unique_requests = static_cast<int>(unique);
  demo.repeats = static_cast<int>(repeats);
  return demo;
}

net::ServerOptions server_options_from_config(const Config& config) {
  net::ServerOptions options;
  options.listen_host =
      config.get_string_or("net.listen_host", options.listen_host);
  const long port = config.get_int_or("net.listen_port", 0);
  FOSCIL_EXPECTS(port >= 0 && port <= 65535);
  options.listen_port = static_cast<std::uint16_t>(port);

  const long connections = config.get_int_or(
      "net.max_connections", static_cast<long>(options.max_connections));
  FOSCIL_EXPECTS(connections >= 1);
  options.max_connections = static_cast<std::size_t>(connections);

  const long in_flight = config.get_int_or(
      "net.max_in_flight",
      static_cast<long>(options.max_in_flight_per_connection));
  FOSCIL_EXPECTS(in_flight >= 1);
  options.max_in_flight_per_connection = static_cast<std::size_t>(in_flight);

  const long body_kib = config.get_int_or(
      "net.max_body_kib", static_cast<long>(options.max_body_bytes >> 10));
  FOSCIL_EXPECTS(body_kib >= 1);
  options.max_body_bytes = static_cast<std::uint32_t>(body_kib) << 10;

  options.read_idle_timeout_s = config.get_double_or(
      "net.read_idle_timeout_s", options.read_idle_timeout_s);
  options.write_stall_timeout_s = config.get_double_or(
      "net.write_stall_timeout_s", options.write_stall_timeout_s);
  options.idle_timeout_s =
      config.get_double_or("net.idle_timeout_s", options.idle_timeout_s);
  options.warm_snapshot_path =
      config.get_string_or("net.warm_snapshot_path", "");
  options.drain_snapshot_path =
      config.get_string_or("net.drain_snapshot_path", "");
  options.force_poll = config.has("net.force_poll")
                           ? config.get_bool("net.force_poll")
                           : options.force_poll;

  options.advertised_host =
      config.get_string_or("net.advertised_host", options.advertised_host);
  const long advertised_port = config.get_int_or("net.advertised_port", 0);
  FOSCIL_EXPECTS(advertised_port >= 0 && advertised_port <= 65535);
  options.advertised_port = static_cast<std::uint16_t>(advertised_port);

  net::MembershipOptions& membership = options.membership;
  membership.heartbeat_interval_s = config.get_double_or(
      "net.heartbeat_interval_s", membership.heartbeat_interval_s);
  membership.suspect_timeout_s = config.get_double_or(
      "net.suspect_timeout_s", membership.suspect_timeout_s);
  membership.dead_timeout_s =
      config.get_double_or("net.dead_timeout_s", membership.dead_timeout_s);
  membership.rejoin_probe_interval_s = config.get_double_or(
      "net.rejoin_probe_interval_s", membership.rejoin_probe_interval_s);
  membership.check();

  const long vnodes = config.get_int_or("net.ring_vnodes",
                                        static_cast<long>(options.ring_vnodes));
  FOSCIL_EXPECTS(vnodes >= 1);
  options.ring_vnodes = static_cast<std::size_t>(vnodes);
  options.handoff_enabled = config.has("net.handoff_enabled")
                                ? config.get_bool("net.handoff_enabled")
                                : options.handoff_enabled;
  const long batch = config.get_int_or(
      "net.handoff_batch_plans",
      static_cast<long>(options.handoff_batch_plans));
  FOSCIL_EXPECTS(batch >= 1);
  options.handoff_batch_plans = static_cast<std::size_t>(batch);
  options.handoff_io_timeout_s = config.get_double_or(
      "net.handoff_io_timeout_s", options.handoff_io_timeout_s);
  options.handoff_retry_interval_s = config.get_double_or(
      "net.handoff_retry_interval_s", options.handoff_retry_interval_s);

  options.check();
  return options;
}

std::vector<std::string> serve_known_config_keys() {
  return {
      "serve.workers",
      "serve.queue_capacity",
      "serve.cache_capacity",
      "serve.cache_shards",
      "serve.default_deadline_ms",
      "serve.overload_enabled",
      "serve.degrade_fill",
      "serve.shed_fill",
      "serve.recover_fill",
      "serve.degraded_max_m",
      "serve.degraded_patience",
      "serve.breaker_threshold",
      "serve.breaker_backoff_initial_ms",
      "serve.breaker_backoff_max_ms",
      "serve.snapshot_path",
      "serve.snapshot_period_s",
      "serve.demo_unique",
      "serve.demo_repeats",
      "net.listen_host",
      "net.listen_port",
      "net.max_connections",
      "net.max_in_flight",
      "net.max_body_kib",
      "net.read_idle_timeout_s",
      "net.write_stall_timeout_s",
      "net.idle_timeout_s",
      "net.warm_snapshot_path",
      "net.drain_snapshot_path",
      "net.force_poll",
      "net.advertised_host",
      "net.advertised_port",
      "net.heartbeat_interval_s",
      "net.suspect_timeout_s",
      "net.dead_timeout_s",
      "net.rejoin_probe_interval_s",
      "net.ring_vnodes",
      "net.handoff_enabled",
      "net.handoff_batch_plans",
      "net.handoff_io_timeout_s",
      "net.handoff_retry_interval_s",
  };
}

}  // namespace foscil::serve
