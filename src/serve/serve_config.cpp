#include "serve/serve_config.hpp"

namespace foscil::serve {

ServiceOptions service_options_from_config(const Config& config) {
  ServiceOptions options;
  const long workers = config.get_int_or("serve.workers", 0);
  FOSCIL_EXPECTS(workers >= 0);
  options.workers = static_cast<unsigned>(workers);

  const long queue = config.get_int_or(
      "serve.queue_capacity", static_cast<long>(options.queue_capacity));
  FOSCIL_EXPECTS(queue >= 1);
  options.queue_capacity = static_cast<std::size_t>(queue);

  const long capacity = config.get_int_or(
      "serve.cache_capacity", static_cast<long>(options.cache_capacity));
  FOSCIL_EXPECTS(capacity >= 1);
  options.cache_capacity = static_cast<std::size_t>(capacity);

  const long shards = config.get_int_or(
      "serve.cache_shards", static_cast<long>(options.cache_shards));
  FOSCIL_EXPECTS(shards >= 1);
  options.cache_shards = static_cast<std::size_t>(shards);

  const double deadline_ms =
      config.get_double_or("serve.default_deadline_ms", 0.0);
  FOSCIL_EXPECTS(deadline_ms >= 0.0);
  options.default_deadline_s = deadline_ms / 1e3;
  return options;
}

ServeDemoOptions demo_options_from_config(const Config& config) {
  ServeDemoOptions demo;
  const long unique = config.get_int_or("serve.demo_unique",
                                        demo.unique_requests);
  const long repeats = config.get_int_or("serve.demo_repeats", demo.repeats);
  FOSCIL_EXPECTS(unique >= 1);
  FOSCIL_EXPECTS(repeats >= 1);
  demo.unique_requests = static_cast<int>(unique);
  demo.repeats = static_cast<int>(repeats);
  return demo;
}

}  // namespace foscil::serve
