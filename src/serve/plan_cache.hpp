// Sharded LRU cache of served plans.
//
// The serving fleet's workload is dominated by identical requests (same
// chip, same threshold, same knobs), so the hot path is a hash lookup that
// returns the previously planned result by shared_ptr — bit-identical by
// construction, since the stored object *is* the plan computed once.
// Sharding bounds lock contention: a key's shard is chosen from hash bits
// disjoint from the ones the shard's own map uses, each shard holds an
// independent mutex + intrusive LRU list, and the per-shard capacities sum
// exactly to the configured total so the cache-wide entry count can never
// exceed it.  All counters are exact (taken under the shard lock).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/result.hpp"
#include "serve/cache_key.hpp"

namespace foscil::serve {

/// A plan as the service stores and returns it: the scheduler result plus
/// the Theorem-2 step-up certificate computed when it was planned.
struct ServedPlan {
  core::SchedulerResult result;
  double certificate_rise = 0.0;  ///< step-up permutation peak (K)
  bool certified_safe = false;    ///< certificate clears the rise budget
  CacheKey key{};
  PlannerKind kind = PlannerKind::kAo;
  /// Planned under overload with capped search options (serve/overload).
  /// Degraded plans hash to their own cache keys (the degraded bit is part
  /// of the key schema), so they can never replace or alias a full-quality
  /// entry; they are still Theorem-2 certified.
  bool degraded = false;
};

/// True when two scheduler results are bit-identical in every
/// planner-determined field.  Wall time (`seconds`) is excluded: it is
/// measurement, not plan content.  Doubles are compared by bit pattern, so
/// even -0.0 vs +0.0 or differently-rounded values count as different.
[[nodiscard]] bool plans_bit_identical(const core::SchedulerResult& a,
                                       const core::SchedulerResult& b);

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t inserts = 0;
  std::size_t entries = 0;
  std::size_t capacity = 0;
  std::size_t shards = 0;

  [[nodiscard]] std::uint64_t lookups() const { return hits + misses; }
  [[nodiscard]] double hit_rate() const {
    return lookups() == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(lookups());
  }
};

class PlanCache {
 public:
  /// `capacity` entries total, spread over `shards` independent LRU lists
  /// (clamped so no shard has zero capacity).  capacity >= 1.
  explicit PlanCache(std::size_t capacity, std::size_t shards = 8);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Hit: moves the entry to the front of its shard's LRU order and counts
  /// a hit.  Miss: counts a miss and returns nullptr.
  [[nodiscard]] std::shared_ptr<const ServedPlan> lookup(const CacheKey& key);

  /// Read-only probe: no counter update, no LRU reordering.  For tests and
  /// introspection only — the serving path must use lookup().
  [[nodiscard]] std::shared_ptr<const ServedPlan> peek(
      const CacheKey& key) const;

  /// Insert (or refresh) an entry at the front of its shard's LRU order,
  /// evicting from the tail while the shard exceeds its capacity.
  void insert(const CacheKey& key, std::shared_ptr<const ServedPlan> plan);

  /// Insert only when the key is absent; an existing entry is left exactly
  /// as it is (no value replacement, no LRU promotion).  Returns true when
  /// the entry was inserted.  This is the cache-handoff primitive: a plan
  /// is a pure function of its key, so whatever is already cached is the
  /// truth and a streamed-in copy must never replace it.
  bool insert_if_absent(const CacheKey& key,
                        std::shared_ptr<const ServedPlan> plan);

  /// All entries, least recently used first within each shard, so feeding
  /// the list back through insert() in order reproduces the LRU ordering.
  /// Taken shard by shard under each shard's lock; concurrent mutation in
  /// another shard may or may not be included (snapshotting is best-effort
  /// by design — the service quiesces nothing to take one).
  [[nodiscard]] std::vector<std::shared_ptr<const ServedPlan>> export_entries()
      const;

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  void clear();

 private:
  struct Entry {
    CacheKey key;
    std::shared_ptr<const ServedPlan> plan;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
        index;
    std::size_t capacity = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t inserts = 0;
  };

  [[nodiscard]] Shard& shard_of(const CacheKey& key) {
    return *shards_[static_cast<std::size_t>(key.hi) & shard_mask_];
  }
  [[nodiscard]] const Shard& shard_of(const CacheKey& key) const {
    return *shards_[static_cast<std::size_t>(key.hi) & shard_mask_];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t shard_mask_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace foscil::serve
