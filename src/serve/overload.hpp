// Graceful degradation and per-key failure isolation for the planning
// service.
//
// Two independent protections live here:
//
//   * OverloadController — a hysteresis ladder NORMAL → DEGRADED → SHED
//     driven by the admission-queue fill fraction.  DEGRADED keeps serving
//     but plans with capped oscillation depth (`degraded_ao_options`), so a
//     burst gets fast, still-Theorem-2-certified plans instead of a growing
//     queue of slow full-quality ones.  SHED rejects cache-missing work
//     outright with OverloadedError and a retry-after hint.  The watermarks
//     are hysteretic (recover < degrade < shed) so the ladder cannot
//     flap on a queue hovering at one threshold.
//
//   * CircuitBreaker — a per-canonical-key failure memory.  A request key
//     whose planner throws `failure_threshold` consecutive times opens a
//     breaker: further submits for that key are rejected immediately with
//     BreakerOpenError carrying the cached diagnosis (negative cache), so
//     one poisoned request cannot repeatedly burn a worker.  The backoff
//     grows exponentially; when it expires the breaker goes half-open and
//     admits exactly one trial — success closes it, failure re-opens with
//     a longer backoff.
//
// Both are mechanism-only: the PlanningService decides when to consult
// them, and cancelled plans (CancelledError) never count as failures.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/ao.hpp"
#include "core/pco.hpp"
#include "serve/cache_key.hpp"
#include "serve/errors.hpp"

namespace foscil::serve {

/// Position on the degradation ladder.
enum class LoadState { kNormal, kDegraded, kShed };

[[nodiscard]] const char* load_state_name(LoadState state);

struct OverloadOptions {
  /// Master switch.  false pins the ladder at NORMAL (update() never
  /// transitions), leaving the bounded queue's QueueFullError as the only
  /// admission backstop — the pre-ladder behavior.
  bool enabled = true;
  /// Queue fill fraction at which NORMAL steps down to DEGRADED.
  double degrade_fill = 0.50;
  /// Queue fill fraction at which the ladder drops to SHED.
  double shed_fill = 0.90;
  /// Fill fraction below which DEGRADED recovers to NORMAL (hysteresis:
  /// must be < degrade_fill so a queue hovering at the degrade watermark
  /// cannot flap the ladder every submit).
  double recover_fill = 0.25;
  /// Cap on AoOptions::max_m while DEGRADED (full-quality searches often
  /// run to hundreds of half-periods; a shallow cap bounds worst-case
  /// plan latency while keeping every served plan certified).
  int degraded_max_m = 64;
  /// Cap on AoOptions::patience while DEGRADED.
  int degraded_patience = 2;
  /// Caps on the PCO phase search while DEGRADED.
  int degraded_phase_grid = 4;
  int degraded_phase_rounds = 1;
  /// Floor for the retry-after hint attached to OverloadedError.
  double min_retry_after_s = 0.05;

  /// Validates watermark ordering and cap positivity.
  void check() const;
};

/// Hysteresis ladder over the admission-queue fill fraction.  update() is
/// called by the service at every submit and worker dequeue; reads are
/// lock-free so stats/benchmarks can poll the state concurrently.
class OverloadController {
 public:
  explicit OverloadController(OverloadOptions options);

  /// Re-evaluates the ladder for the given queue occupancy and returns the
  /// (possibly changed) state.  `capacity` must be nonzero.
  LoadState update(std::size_t queue_depth, std::size_t queue_capacity);

  [[nodiscard]] LoadState state() const {
    return static_cast<LoadState>(state_.load(std::memory_order_acquire));
  }
  /// Number of ladder transitions since construction (observability: a
  /// healthy service under steady load transitions rarely; a flapping
  /// ladder means mis-tuned watermarks).
  [[nodiscard]] std::uint64_t transitions() const {
    return transitions_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const OverloadOptions& options() const { return options_; }

 private:
  OverloadOptions options_;
  std::atomic<int> state_{static_cast<int>(LoadState::kNormal)};
  std::atomic<std::uint64_t> transitions_{0};
};

/// The capped planner options used for degraded service.  Only search
/// *extent* knobs shrink (max_m, patience, phase grid/rounds); tolerances
/// and the certificate margin are untouched, so degraded plans remain
/// Theorem-2 certified — they are merely allowed to stop searching sooner.
[[nodiscard]] core::AoOptions degraded_ao_options(core::AoOptions ao,
                                                 const OverloadOptions& opts);
[[nodiscard]] core::PcoOptions degraded_pco_options(core::PcoOptions pco,
                                                    const OverloadOptions& opts);

struct BreakerOptions {
  /// Consecutive failures of one key that open its breaker.
  int failure_threshold = 3;
  /// First backoff once opened; doubles (by `backoff_factor`) on every
  /// failed half-open trial, capped at `backoff_max_s`.
  double backoff_initial_s = 0.1;
  double backoff_factor = 2.0;
  double backoff_max_s = 5.0;
  /// Bound on distinct keys tracked.  When exceeded, closed (non-open)
  /// entries are evicted first; open breakers are kept so a flood of
  /// unique healthy keys cannot wash out the memory of a poisoned one.
  std::size_t max_entries = 1024;

  void check() const;
};

/// Per-key circuit breaker with a negative cache of the last failure.
/// Thread-safe; every method takes one short critical section.
class CircuitBreaker {
 public:
  using Clock = std::chrono::steady_clock;

  explicit CircuitBreaker(BreakerOptions options);

  /// Gate for one submit of `key`.  Throws BreakerOpenError while the
  /// breaker is open and backing off.  When the backoff has expired the
  /// breaker goes half-open: the first caller through is admitted as the
  /// trial and must later report record_success or record_failure;
  /// concurrent submits during the trial are still rejected.
  void admit(const CacheKey& key, Clock::time_point now);

  /// Records a planner failure for `key` (never called for cancellations).
  void record_failure(const CacheKey& key, const std::string& reason,
                      Clock::time_point now);

  /// Records a successful plan: closes the breaker and forgets the key.
  void record_success(const CacheKey& key);

  /// Releases a half-open trial that ended without a verdict (the request
  /// was cancelled or abandoned before the planner finished).  The breaker
  /// stays open with its current backoff; the next admit starts a fresh
  /// trial.  Without this, an aborted trial would jam the breaker open
  /// forever (trial_in_flight never cleared).
  void abandon_trial(const CacheKey& key);

  /// Number of keys whose breaker is currently open.
  [[nodiscard]] std::size_t open_count() const;
  /// Total number of keys tracked (open or accumulating failures).
  [[nodiscard]] std::size_t tracked_count() const;

  [[nodiscard]] const BreakerOptions& options() const { return options_; }

 private:
  struct Entry {
    int consecutive_failures = 0;
    bool open = false;
    bool trial_in_flight = false;
    double backoff_s = 0.0;
    Clock::time_point open_until{};
    Clock::time_point last_update{};
    std::string last_error;
  };

  void evict_locked();

  BreakerOptions options_;
  mutable std::mutex mutex_;
  std::unordered_map<CacheKey, Entry, CacheKeyHash> entries_;
};

}  // namespace foscil::serve
