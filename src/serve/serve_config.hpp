// [serve] configuration section for the planning service.
//
// Lives in serve/ (not core/config_loader) so the core library never
// depends upward on the serving stack.  Recognized keys, all optional:
//
//   [serve]
//   workers = 8              ; worker threads (0 = hardware default)
//   queue_capacity = 256     ; bounded request queue (admission control)
//   cache_capacity = 1024    ; LRU plan cache entries
//   cache_shards = 8         ; lock shards (rounded down to a power of two)
//   default_deadline_ms = 0  ; per-request deadline default (0 = none)
//   overload_enabled = true  ; NORMAL/DEGRADED/SHED admission ladder
//   degrade_fill = 0.5       ; queue fill that triggers degraded planning
//   shed_fill = 0.9          ; queue fill that triggers load shedding
//   recover_fill = 0.25      ; queue fill below which NORMAL resumes
//   degraded_max_m = 64      ; m-search cap while degraded
//   degraded_patience = 2    ; m-search patience cap while degraded
//   breaker_threshold = 3    ; consecutive failures that open a breaker
//   breaker_backoff_initial_ms = 100
//   breaker_backoff_max_ms = 5000
//   snapshot_path =          ; warm-restart snapshot file (empty = off)
//   snapshot_period_s = 0    ; extra periodic flush (> 0 starts a flusher)
//   demo_unique = 16         ; foscil_cli serve: distinct T_max points
//   demo_repeats = 32        ; foscil_cli serve: repeats per point
//
// The network front end (serve/net/server.hpp) reads its own [net]
// section:
//
//   [net]
//   listen_host = 127.0.0.1
//   listen_port = 0            ; 0 = ephemeral (printed at startup)
//   max_connections = 256      ; beyond this, connections are shed
//   max_in_flight = 32         ; per-connection cap at NORMAL load
//   max_body_kib = 1024        ; inbound frame body cap
//   read_idle_timeout_s = 5    ; partial-frame (slow-loris) timeout
//   write_stall_timeout_s = 5  ; stalled-writer timeout
//   idle_timeout_s = 0         ; reap idle connections (0 = never)
//   warm_snapshot_path =       ; restore after listen, gate READY on it
//   drain_snapshot_path =      ; final flush on graceful drain
//   force_poll = false         ; use the poll(2) backend even with epoll
#pragma once

#include "serve/net/server.hpp"
#include "serve/service.hpp"
#include "util/config.hpp"

namespace foscil::serve {

/// Service knobs from [serve] (defaults when the section is absent).
/// Throws ConfigError / ContractViolation on malformed values.
[[nodiscard]] ServiceOptions service_options_from_config(
    const Config& config);

/// Workload shape for the CLI serving demo.
struct ServeDemoOptions {
  int unique_requests = 16;  ///< distinct T_max points swept
  int repeats = 32;          ///< how often each point recurs
};

[[nodiscard]] ServeDemoOptions demo_options_from_config(const Config& config);

/// Network front-end knobs from [net] (defaults when absent).  Throws
/// ConfigError / ContractViolation on malformed values.
[[nodiscard]] net::ServerOptions server_options_from_config(
    const Config& config);

/// Every "serve.*" key this module reads — the serve layer's contribution
/// to core::unknown_config_keys / warn_unknown_config_keys, so a
/// misspelled [serve] knob is warned about instead of silently ignored.
[[nodiscard]] std::vector<std::string> serve_known_config_keys();

}  // namespace foscil::serve
