// [serve] configuration section for the planning service.
//
// Lives in serve/ (not core/config_loader) so the core library never
// depends upward on the serving stack.  Recognized keys, all optional:
//
//   [serve]
//   workers = 8              ; worker threads (0 = hardware default)
//   queue_capacity = 256     ; bounded request queue (admission control)
//   cache_capacity = 1024    ; LRU plan cache entries
//   cache_shards = 8         ; lock shards (rounded down to a power of two)
//   default_deadline_ms = 0  ; per-request deadline default (0 = none)
//   demo_unique = 16         ; foscil_cli serve: distinct T_max points
//   demo_repeats = 32        ; foscil_cli serve: repeats per point
#pragma once

#include "serve/service.hpp"
#include "util/config.hpp"

namespace foscil::serve {

/// Service knobs from [serve] (defaults when the section is absent).
/// Throws ConfigError / ContractViolation on malformed values.
[[nodiscard]] ServiceOptions service_options_from_config(
    const Config& config);

/// Workload shape for the CLI serving demo.
struct ServeDemoOptions {
  int unique_requests = 16;  ///< distinct T_max points swept
  int repeats = 32;          ///< how often each point recurs
};

[[nodiscard]] ServeDemoOptions demo_options_from_config(const Config& config);

}  // namespace foscil::serve
