// Crash-safe persistence for the planning service.
//
// A snapshot lets a restarted service start warm: the plan cache is
// repopulated with the exact ServedPlan objects the previous process
// computed (bit-identical — doubles round-trip by bit pattern) and the
// online thermal-identification state resumes where it stopped.  Snapshots
// are written atomically (tmp file + rename), so a crash mid-write leaves
// the previous good snapshot intact, and loads are paranoid: anything that
// does not parse as exactly one well-formed snapshot of the current version
// is rejected with a SnapshotError naming the defect, and the service then
// simply serves from a cold cache.  A snapshot is an optimization, never a
// source of truth.
//
// On-disk layout (all integers little-endian fixed-width, all doubles by
// IEEE-754 bit pattern):
//
//   header   8 bytes  magic "FOSCSNAP"
//            u32      format version (kSnapshotVersion; loader rejects
//                     any other value, older *or* newer — plans are cheap
//                     to recompute, so no migration machinery)
//            u32      reserved flags (written 0, must read 0)
//            u64      payload size in bytes
//            u64      FNV-1a checksum over the payload bytes
//   payload  u64      plan count
//            plans    (see snapshot.cpp; includes the cache key, the
//                     degraded flag, the certificate, and the full
//                     schedule), least recently used first
//            u8       identify-state-present flag
//            state    (optional) RLS theta/covariance/updates + poll count
//                     and accumulated observation time
//
// The cache key stored with each plan was hashed under the key schema
// version current at save time; plan keys are *not* rehashed at load.
// That is sound because the loader rejects any snapshot whose format
// version differs, and the snapshot format version is bumped whenever the
// key schema version changes (see cache_key.cpp kSchemaVersion — the two
// move together by policy, documented in DESIGN.md §12).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/identify.hpp"
#include "serve/errors.hpp"
#include "serve/plan_cache.hpp"

namespace foscil::serve {

/// Current on-disk format version.  Bump on ANY layout change and whenever
/// serve/cache_key.cpp bumps its key schema version.
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Everything a snapshot carries.
struct SnapshotData {
  /// Cached plans, least recently used first (PlanCache::export_entries
  /// order), so replaying through PlanCache::insert restores LRU order.
  std::vector<ServedPlan> plans;
  /// Online thermal-identification state, when the service runs with an
  /// identifier attached.
  std::optional<core::IdentifyState> identify;
};

/// Serializes `data` to `path` atomically: writes `path` + ".tmp", then
/// renames over `path`.  Throws SnapshotError on any I/O failure (the tmp
/// file is removed best-effort).
void save_snapshot(const std::string& path, const SnapshotData& data);

/// Parses the snapshot at `path`.  Throws SnapshotError — with a message
/// naming the file and the specific defect — if the file is missing,
/// unreadable, truncated, corrupt (checksum or structure), or carries a
/// different format version.  A successful load round-trips every plan
/// bit-identically.
[[nodiscard]] SnapshotData load_snapshot(const std::string& path);

/// Serialize one ServedPlan to the snapshot's plan record layout (no
/// header, no checksum — the caller frames it).  The network tier reuses
/// this as the PlanResponse body so a plan crossing the wire round-trips
/// bit-identically through exactly the code the snapshot tests pin down.
[[nodiscard]] std::string encode_plan_bytes(const ServedPlan& plan);

/// Parse one plan record.  Strict: every length is bounds-checked, every
/// field validated, and trailing bytes are rejected.  Throws SnapshotError
/// naming `context` and the defect.
[[nodiscard]] ServedPlan decode_plan_bytes(const std::string& bytes,
                                           const std::string& context);

}  // namespace foscil::serve
