// Socket-level network fault injector for the planning tier's chaos tests.
//
// A FaultProxy listens on its own port and forwards every byte to one
// upstream endpoint, running all traffic through a deterministic, seeded
// fault schedule plus runtime toggles:
//
//   * partition      — a black hole: accepted bytes are consumed and never
//                      delivered (the sender's send() succeeds, exactly
//                      like packets vanishing on the wire), and new
//                      connections are refused;
//   * one-way drops  — the same, for a single direction (asymmetric
//                      partitions: A hears B, B never hears A);
//   * corruption     — with probability p per forwarded chunk, one bit is
//                      flipped at a seeded position (exercising the frame
//                      checksum, not just the length checks);
//   * drops          — with probability p a chunk silently vanishes;
//   * delay          — every chunk is held for delay_s before delivery;
//   * reordering     — with probability p a chunk is queued *behind* the
//                      chunk that arrives after it;
//   * forced close   — the connection is severed abruptly after N
//                      forwarded bytes (mid-frame disconnects).
//
// The schedule is driven by one mt19937_64 seeded from the options, so a
// failing chaos run reproduces from its printed seed.  The proxy runs on
// its own thread; every setter and stats() is safe from any thread.
//
// This is the test harness the robustness claims of DESIGN.md §15 are
// proven against: servers and clients under test are pointed at proxy
// ports (shards advertise the proxy endpoint as their identity), so every
// protocol path can be exercised against a hostile network without
// touching kernel facilities.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "serve/net/ring.hpp"

namespace foscil::serve::net {

struct FaultProxyOptions {
  std::string listen_host = "127.0.0.1";
  std::uint16_t listen_port = 0;  ///< 0 = ephemeral; start() reports actual
  /// Where clean traffic goes.  May be left unset (port 0) and supplied
  /// later via set_upstream(): the proxy refuses connections until it has
  /// a target.  This breaks the bootstrap circularity when a shard must
  /// advertise the proxy's port — start the proxy, spawn the shard
  /// advertising it, then point the proxy at the shard — and lets a
  /// stable proxy identity be re-pointed at a replacement process.
  Endpoint upstream;
  std::uint64_t seed = 1;         ///< fault-schedule seed (print it)
  double corrupt_probability = 0.0;
  double drop_probability = 0.0;
  double reorder_probability = 0.0;
  double delay_s = 0.0;
  /// Sever a connection after this many forwarded bytes (0: never).
  /// Counted per connection, both directions together, so the cut lands
  /// mid-frame for any non-trivial traffic.
  std::uint64_t close_after_bytes = 0;

  void check() const;
};

struct FaultProxyStats {
  std::uint64_t connections = 0;
  std::uint64_t refused_connections = 0;  ///< refused while partitioned
  std::uint64_t chunks_forwarded = 0;
  std::uint64_t bytes_forwarded = 0;
  std::uint64_t chunks_corrupted = 0;
  std::uint64_t chunks_dropped = 0;  ///< schedule drops + partition drops
  std::uint64_t chunks_reordered = 0;
  std::uint64_t forced_closes = 0;   ///< close_after_bytes cuts
};

class FaultProxy {
 public:
  explicit FaultProxy(FaultProxyOptions options);
  ~FaultProxy();

  FaultProxy(const FaultProxy&) = delete;
  FaultProxy& operator=(const FaultProxy&) = delete;

  /// Bind, listen, spawn the forwarding thread.  Returns the bound port.
  std::uint16_t start();

  /// Close the listener and every connection, join the thread.  Idempotent.
  void stop();

  /// The endpoint clients (and gossip) should use for the shard behind
  /// this proxy.  Valid after start().
  [[nodiscard]] Endpoint endpoint() const;

  /// Re-point the proxy at a new upstream (effective for the next
  /// accepted connection; live connections keep their old target).  The
  /// chaos batteries use this to model a replacement process taking over
  /// a stable ring identity.
  void set_upstream(const Endpoint& upstream);

  // Runtime fault toggles (all safe from any thread, effective for the
  // next chunk).
  void set_partitioned(bool on);
  void set_drop_to_upstream(bool on);  ///< client -> shard bytes vanish
  void set_drop_to_client(bool on);    ///< shard -> client bytes vanish
  void set_corrupt_probability(double p);
  /// Restrict schedule-driven corruption to one direction (both on by
  /// default), so a battery can exercise one checksum path at a time:
  /// reply corruption is rejected by the client's assembler, request
  /// corruption condemns the stream server-side — both surface to the
  /// caller as retryable transport errors, never as accepted bytes.
  void set_corrupt_to_upstream(bool on);
  void set_corrupt_to_client(bool on);
  void set_drop_probability(double p);
  void set_reorder_probability(double p);
  void set_delay(double seconds);
  void set_close_after_bytes(std::uint64_t bytes);
  /// Sever every live connection now (the listener stays up).
  void drop_connections();

  [[nodiscard]] FaultProxyStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace foscil::serve::net
