#include "serve/net/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/contracts.hpp"

namespace foscil::serve::net {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_until(Clock::time_point deadline) {
  return std::chrono::duration<double>(deadline - Clock::now()).count();
}

int poll_timeout_ms(Clock::time_point deadline) {
  const double remaining = seconds_until(deadline);
  if (remaining <= 0.0) return 0;
  return static_cast<int>(std::min(remaining * 1000.0 + 1.0, 3.6e6));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

void ClientOptions::check() const {
  FOSCIL_EXPECTS(connect_timeout_s > 0.0);
  FOSCIL_EXPECTS(io_timeout_s > 0.0);
  FOSCIL_EXPECTS(backoff_initial_s > 0.0);
  FOSCIL_EXPECTS(backoff_max_s >= backoff_initial_s);
  FOSCIL_EXPECTS(backoff_multiplier >= 1.0);
  FOSCIL_EXPECTS(ring_vnodes >= 1);
  FOSCIL_EXPECTS(max_body_bytes >= 1);
  FOSCIL_EXPECTS(max_body_bytes <= kMaxBodyBytes);
}

struct NetClient::Impl {
  Impl(std::vector<Endpoint> endpoints, core::Platform plat,
       ClientOptions opts)
      : options(std::move(opts)),
        ring(std::move(endpoints), options.ring_vnodes),
        platform(std::move(plat)),
        platform_fp(platform_fingerprint(platform)) {
    options.check();
    FOSCIL_EXPECTS(platform.model != nullptr);
    sockets.assign(ring.size(), -1);
    for (std::size_t i = 0; i < ring.size(); ++i)
      assemblers.emplace_back(options.max_body_bytes);
  }

  ~Impl() {
    for (const int fd : sockets)
      if (fd >= 0) ::close(fd);
  }

  ClientOptions options;
  HashRing ring;
  core::Platform platform;
  CacheKey platform_fp;
  std::vector<int> sockets;
  std::vector<FrameAssembler> assemblers;
  std::uint64_t next_request_id = 0;
  ClientStats stats;

  void drop(std::size_t index) {
    if (sockets[index] >= 0) ::close(sockets[index]);
    sockets[index] = -1;
    assemblers[index] = FrameAssembler(options.max_body_bytes);
  }

  /// Lazily (re)connect endpoint `index`.  Nonblocking connect bounded by
  /// the tighter of connect_timeout_s and `deadline`.
  bool ensure_connected(std::size_t index, Clock::time_point deadline) {
    if (sockets[index] >= 0) return true;
    const Endpoint& endpoint = ring.endpoints()[index];

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(endpoint.port);
    if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      return false;
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0 &&
        errno != EINPROGRESS) {
      ::close(fd);
      return false;
    }

    const Clock::time_point connect_deadline = std::min(
        deadline, Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(
                                         options.connect_timeout_s)));
    pollfd p{};
    p.fd = fd;
    p.events = POLLOUT;
    const int n = ::poll(&p, 1, poll_timeout_ms(connect_deadline));
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (n <= 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      ::close(fd);
      return false;
    }
    sockets[index] = fd;
    assemblers[index] = FrameAssembler(options.max_body_bytes);
    ++stats.reconnects;
    return true;
  }

  bool send_all(std::size_t index, const std::string& data,
                Clock::time_point deadline) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n = ::send(sockets[index], data.data() + sent,
                               data.size() - sent, MSG_NOSIGNAL);
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        pollfd p{};
        p.fd = sockets[index];
        p.events = POLLOUT;
        const int timeout = poll_timeout_ms(deadline);
        if (timeout <= 0 || ::poll(&p, 1, timeout) <= 0) return false;
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    return true;
  }

  /// Wait for the frame answering `want_id`.  Stale frames for earlier
  /// (timed-out, already-abandoned) ids are discarded; a Status frame with
  /// id 0 is the server's terminal stream diagnosis — the connection is
  /// about to close, so it fails the read.  Returns false on any
  /// transport or framing failure (the socket is dropped).
  bool recv_reply(std::size_t index, std::uint64_t want_id, Frame* out,
                  Clock::time_point deadline) {
    FrameAssembler& assembler = assemblers[index];
    for (;;) {
      Frame frame;
      const FrameAssembler::Result result = assembler.next(&frame);
      if (result == FrameAssembler::Result::kBad) {
        drop(index);
        return false;
      }
      if (result == FrameAssembler::Result::kFrame) {
        if (frame.request_id == want_id) {
          *out = std::move(frame);
          return true;
        }
        if (frame.type == FrameType::kStatus && frame.request_id == 0) {
          drop(index);
          return false;
        }
        continue;  // stale reply to an abandoned request
      }

      pollfd p{};
      p.fd = sockets[index];
      p.events = POLLIN;
      const int timeout = poll_timeout_ms(deadline);
      if (timeout <= 0 || ::poll(&p, 1, timeout) <= 0) {
        drop(index);
        return false;
      }
      char buf[16384];
      const ssize_t n = ::recv(sockets[index], buf, sizeof(buf), 0);
      if (n > 0) {
        assembler.feed(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                    errno == EINTR))
        continue;
      drop(index);  // orderly close or hard error
      return false;
    }
  }

  bool roundtrip(std::size_t index, FrameType type, const std::string& body,
                 Frame* reply, Clock::time_point deadline) {
    if (!ensure_connected(index, deadline)) return false;
    const std::uint64_t id = ++next_request_id;
    if (!send_all(index, encode_frame(type, id, body), deadline)) {
      drop(index);
      return false;
    }
    return recv_reply(index, id, reply, deadline);
  }

  WirePlanResponse plan(WirePlanRequest request) {
    request.platform_fp = platform_fp;
    const CacheKey key = plan_key(platform, request.t_max_c, request.kind,
                                  request.ao, request.pco);
    const std::vector<std::size_t> order = ring.successors(key);

    const bool has_budget = request.deadline_s >= 0.0;
    const Clock::time_point budget_deadline =
        has_budget ? Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                        std::chrono::duration<double>(
                                            request.deadline_s))
                   : Clock::time_point::max();

    StatusCode last_code = StatusCode::kPlannerFailed;
    std::string last_message = "no endpoint reachable";
    double backoff = options.backoff_initial_s;

    for (std::size_t round = 0; round <= options.max_retries; ++round) {
      if (round > 0) {
        ++stats.retries;
        double pause = backoff;
        if (has_budget)
          pause = std::min(pause, std::max(0.0,
                                           seconds_until(budget_deadline)));
        std::this_thread::sleep_for(std::chrono::duration<double>(pause));
        backoff = std::min(backoff * options.backoff_multiplier,
                           options.backoff_max_s);
      }

      for (std::size_t pos = 0; pos < order.size(); ++pos) {
        if (has_budget && seconds_until(budget_deadline) <= 0.0)
          throw NetClientError(StatusCode::kDeadlineExpired,
                               "plan: client deadline exhausted (last: " +
                                   last_message + ")");
        if (pos > 0) ++stats.failovers;
        const std::size_t index = order[pos];

        // Each attempt is bounded by io_timeout_s and the overall budget;
        // the wire carries the remaining budget so the server gives up in
        // step with us.
        const Clock::time_point attempt_deadline = std::min(
            budget_deadline,
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   options.io_timeout_s)));
        WirePlanRequest attempt = request;
        if (has_budget)
          attempt.deadline_s = std::max(0.0, seconds_until(budget_deadline));

        Frame reply;
        if (!roundtrip(index, FrameType::kPlanRequest,
                       encode_plan_request(attempt), &reply,
                       attempt_deadline)) {
          ++stats.transport_errors;
          continue;
        }

        if (reply.type == FrameType::kPlanResponse) {
          WirePlanResponse response;
          try {
            response = decode_plan_response(reply.body);
          } catch (const MalformedFrameError&) {
            drop(index);
            ++stats.transport_errors;
            continue;
          }
          ++stats.plans;
          if (response.cache_hit) ++stats.cache_hits;
          return response;
        }
        if (reply.type == FrameType::kStatus) {
          WireStatus status;
          try {
            status = decode_status(reply.body);
          } catch (const MalformedFrameError&) {
            drop(index);
            ++stats.transport_errors;
            continue;
          }
          ++stats.statuses_by_code[status_index(status.code)];
          if (!status_retryable(status.code))
            throw NetClientError(status.code,
                                 std::string(status_code_name(status.code)) +
                                     ": " + status.message);
          last_code = status.code;
          last_message = status.message;
          if (status.retry_after_s > 0.0)
            backoff = std::clamp(status.retry_after_s,
                                 options.backoff_initial_s,
                                 options.backoff_max_s);
          continue;
        }
        // Anything else is a protocol violation from the server side.
        drop(index);
        ++stats.transport_errors;
      }
    }
    throw NetClientError(last_code, "plan: retries exhausted (last: " +
                                        last_message + ")");
  }

  Frame control(std::size_t index, FrameType type, FrameType expect) {
    FOSCIL_EXPECTS(index < ring.size());
    const Clock::time_point deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(options.io_timeout_s));
    Frame reply;
    if (!roundtrip(index, type, "", &reply, deadline)) {
      ++stats.transport_errors;
      throw NetClientError(StatusCode::kPlannerFailed,
                           "control frame failed: endpoint " +
                               ring.endpoints()[index].label() +
                               " unreachable");
    }
    if (reply.type != expect) {
      drop(index);
      throw NetClientError(StatusCode::kMalformed,
                           "control frame: unexpected reply type");
    }
    return reply;
  }
};

NetClient::NetClient(std::vector<Endpoint> endpoints, core::Platform platform,
                     ClientOptions options)
    : impl_(std::make_unique<Impl>(std::move(endpoints), std::move(platform),
                                   std::move(options))) {}

NetClient::~NetClient() = default;

WirePlanResponse NetClient::plan(WirePlanRequest request) {
  return impl_->plan(std::move(request));
}

std::size_t NetClient::route(const WirePlanRequest& request) const {
  return impl_->ring.owner(plan_key(impl_->platform, request.t_max_c,
                                    request.kind, request.ao, request.pco));
}

HealthInfo NetClient::health(std::size_t endpoint_index) {
  const Frame reply = impl_->control(endpoint_index, FrameType::kHealth,
                                     FrameType::kHealthReply);
  try {
    return decode_health(reply.body);
  } catch (const MalformedFrameError& error) {
    impl_->drop(endpoint_index);
    throw NetClientError(StatusCode::kMalformed, error.what());
  }
}

ReadyInfo NetClient::ready(std::size_t endpoint_index) {
  const Frame reply = impl_->control(endpoint_index, FrameType::kReady,
                                     FrameType::kReadyReply);
  try {
    return decode_ready(reply.body);
  } catch (const MalformedFrameError& error) {
    impl_->drop(endpoint_index);
    throw NetClientError(StatusCode::kMalformed, error.what());
  }
}

void NetClient::drain(std::size_t endpoint_index) {
  (void)impl_->control(endpoint_index, FrameType::kDrain,
                       FrameType::kDrainReply);
}

bool NetClient::await_ready(std::size_t endpoint_index, double timeout_s,
                            double poll_interval_s) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_s));
  for (;;) {
    try {
      if (ready(endpoint_index).ready != 0) return true;
    } catch (const NetClientError&) {
      // Connection refused or garbled while the shard restarts: keep
      // polling until the timeout.
    }
    if (seconds_until(deadline) <= 0.0) return false;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(poll_interval_s));
  }
}

const HashRing& NetClient::ring() const { return impl_->ring; }

const ClientStats& NetClient::stats() const { return impl_->stats; }

}  // namespace foscil::serve::net
