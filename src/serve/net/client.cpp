#include "serve/net/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <random>
#include <thread>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace foscil::serve::net {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_until(Clock::time_point deadline) {
  return std::chrono::duration<double>(deadline - Clock::now()).count();
}

/// Monotonic seconds for the membership table (same clock everywhere).
double mono_seconds() {
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

int poll_timeout_ms(Clock::time_point deadline) {
  const double remaining = seconds_until(deadline);
  if (remaining <= 0.0) return 0;
  return static_cast<int>(std::min(remaining * 1000.0 + 1.0, 3.6e6));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

void ClientOptions::check() const {
  FOSCIL_EXPECTS(connect_timeout_s > 0.0);
  FOSCIL_EXPECTS(io_timeout_s > 0.0);
  FOSCIL_EXPECTS(backoff_initial_s > 0.0);
  FOSCIL_EXPECTS(backoff_max_s >= backoff_initial_s);
  FOSCIL_EXPECTS(backoff_multiplier >= 1.0);
  FOSCIL_EXPECTS(ring_vnodes >= 1);
  FOSCIL_EXPECTS(max_body_bytes >= 1);
  FOSCIL_EXPECTS(max_body_bytes <= kMaxBodyBytes);
  FOSCIL_EXPECTS(gossip_timeout_s > 0.0);
  membership.check();
}

struct NetClient::Impl {
  Impl(std::vector<Endpoint> endpoints, core::Platform plat,
       ClientOptions opts)
      : options(std::move(opts)),
        ring(endpoints, options.ring_vnodes),
        platform(std::move(plat)),
        platform_fp(platform_fingerprint(platform)),
        membership(options.membership, endpoints, mono_seconds()),
        rng(options.backoff_seed != 0 ? options.backoff_seed
                                      : std::random_device{}()) {
    options.check();
    FOSCIL_EXPECTS(platform.model != nullptr);
    for (const Endpoint& endpoint : ring.endpoints())
      ring_to_peer.push_back(peer_of(endpoint));
    ring_epoch = membership.epoch();
  }

  ~Impl() {
    for (const Peer& peer : peers)
      if (peer.fd >= 0) ::close(peer.fd);
  }

  /// One shard connection slot.  The registry only grows (a dead shard
  /// keeps its slot, disconnected), so peer indices are stable even as
  /// the routing ring is rebuilt around them.
  struct Peer {
    Endpoint endpoint;
    int fd = -1;
    FrameAssembler assembler;
  };

  ClientOptions options;
  HashRing ring;
  core::Platform platform;
  CacheKey platform_fp;
  MembershipTable membership;
  Rng rng;
  std::vector<Peer> peers;
  std::vector<std::size_t> ring_to_peer;  ///< ring index -> peer index
  std::uint64_t ring_epoch = 0;  ///< membership epoch the ring was built at
  double last_tick_s = -1e300;
  std::uint64_t next_request_id = 0;
  ClientStats stats;

  std::size_t peer_of(const Endpoint& endpoint) {
    for (std::size_t i = 0; i < peers.size(); ++i)
      if (peers[i].endpoint == endpoint) return i;
    peers.push_back(
        Peer{endpoint, -1, FrameAssembler(options.max_body_bytes)});
    return peers.size() - 1;
  }

  void drop(std::size_t peer) {
    if (peers[peer].fd >= 0) ::close(peers[peer].fd);
    peers[peer].fd = -1;
    peers[peer].assembler = FrameAssembler(options.max_body_bytes);
  }

  /// Lazily (re)connect peer `peer`.  Nonblocking connect bounded by the
  /// tighter of connect_timeout_s and `deadline`.
  bool ensure_connected(std::size_t peer, Clock::time_point deadline) {
    if (peers[peer].fd >= 0) return true;
    const Endpoint& endpoint = peers[peer].endpoint;

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(endpoint.port);
    if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      return false;
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0 &&
        errno != EINPROGRESS) {
      ::close(fd);
      return false;
    }

    const Clock::time_point connect_deadline = std::min(
        deadline, Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(
                                         options.connect_timeout_s)));
    pollfd p{};
    p.fd = fd;
    p.events = POLLOUT;
    const int n = ::poll(&p, 1, poll_timeout_ms(connect_deadline));
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (n <= 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      ::close(fd);
      return false;
    }
    peers[peer].fd = fd;
    peers[peer].assembler = FrameAssembler(options.max_body_bytes);
    ++stats.reconnects;
    return true;
  }

  bool send_all(std::size_t peer, const std::string& data,
                Clock::time_point deadline) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n = ::send(peers[peer].fd, data.data() + sent,
                               data.size() - sent, MSG_NOSIGNAL);
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        pollfd p{};
        p.fd = peers[peer].fd;
        p.events = POLLOUT;
        const int timeout = poll_timeout_ms(deadline);
        if (timeout <= 0 || ::poll(&p, 1, timeout) <= 0) return false;
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    return true;
  }

  /// Wait for the frame answering `want_id`.  Stale frames for earlier
  /// (timed-out, already-abandoned) ids are discarded; a Status frame with
  /// id 0 is the server's terminal stream diagnosis — the connection is
  /// about to close, so it fails the read.  Returns false on any
  /// transport or framing failure (the socket is dropped).
  bool recv_reply(std::size_t peer, std::uint64_t want_id, Frame* out,
                  Clock::time_point deadline) {
    FrameAssembler& assembler = peers[peer].assembler;
    for (;;) {
      Frame frame;
      const FrameAssembler::Result result = assembler.next(&frame);
      if (result == FrameAssembler::Result::kBad) {
        drop(peer);
        return false;
      }
      if (result == FrameAssembler::Result::kFrame) {
        if (frame.request_id == want_id) {
          *out = std::move(frame);
          return true;
        }
        if (frame.type == FrameType::kStatus && frame.request_id == 0) {
          drop(peer);
          return false;
        }
        continue;  // stale reply to an abandoned request
      }

      pollfd p{};
      p.fd = peers[peer].fd;
      p.events = POLLIN;
      const int timeout = poll_timeout_ms(deadline);
      if (timeout <= 0 || ::poll(&p, 1, timeout) <= 0) {
        drop(peer);
        return false;
      }
      char buf[16384];
      const ssize_t n = ::recv(peers[peer].fd, buf, sizeof(buf), 0);
      if (n > 0) {
        assembler.feed(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                    errno == EINTR))
        continue;
      drop(peer);  // orderly close or hard error
      return false;
    }
  }

  bool roundtrip(std::size_t peer, FrameType type, const std::string& body,
                 Frame* reply, Clock::time_point deadline) {
    if (!ensure_connected(peer, deadline)) return false;
    const std::uint64_t id = ++next_request_id;
    if (!send_all(peer, encode_frame(type, id, body), deadline)) {
      drop(peer);
      return false;
    }
    return recv_reply(peer, id, reply, deadline);
  }

  // ---- membership ---------------------------------------------------------

  /// Request-path evidence feeds the detector, but never rebuilds the ring
  /// mid-plan (the plan loop holds ring indices); the next tick does.
  void note_alive(std::size_t ring_index) {
    if (!options.membership_enabled) return;
    membership.observe_alive(ring.endpoints()[ring_index], 0,
                             mono_seconds());
  }

  void note_unreachable(std::size_t ring_index) {
    if (!options.membership_enabled) return;
    membership.observe_unreachable(ring.endpoints()[ring_index],
                                   mono_seconds());
  }

  void maybe_tick() {
    if (!options.membership_enabled) return;
    if (mono_seconds() - last_tick_s <
        options.membership.heartbeat_interval_s * 0.5)
      return;
    tick_round();
  }

  void tick_round() {
    const double start = mono_seconds();
    last_tick_s = start;
    for (const Endpoint& target : membership.due_probes(start))
      probe(target);
    membership.tick(mono_seconds());
    refresh_ring();
  }

  /// One gossip round trip: push our view, merge the shard's merged view
  /// back.  Success is direct evidence of life; failure, of trouble.
  void probe(const Endpoint& target) {
    ++stats.gossip_probes;
    const std::size_t peer = peer_of(target);
    const Clock::time_point deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               options.gossip_timeout_s));
    WireGossip gossip;
    gossip.sender_is_shard = 0;
    gossip.view = membership.view();
    Frame reply;
    if (!roundtrip(peer, FrameType::kGossip, encode_gossip(gossip), &reply,
                   deadline) ||
        reply.type != FrameType::kGossipReply) {
      ++stats.gossip_probe_failures;
      drop(peer);
      membership.observe_unreachable(target, mono_seconds());
      return;
    }
    try {
      const WireGossipReply merged = decode_gossip_reply(reply.body);
      membership.merge(merged.view, mono_seconds());
      membership.observe_alive(target, merged.responder_incarnation,
                               mono_seconds());
    } catch (const MalformedFrameError&) {
      ++stats.gossip_probe_failures;
      drop(peer);
      membership.observe_unreachable(target, mono_seconds());
    }
  }

  /// Rebuild the routing ring over the current live set when the epoch
  /// moved.  An empty live set keeps the last ring — routing to possibly
  /// dead shards (and failing) beats routing to nothing.
  void refresh_ring() {
    const std::uint64_t epoch = membership.epoch();
    if (epoch == ring_epoch) return;
    ring_epoch = epoch;
    std::vector<Endpoint> live = membership.live_endpoints();
    if (live.empty()) return;
    ring = HashRing(std::move(live), options.ring_vnodes);
    ring_to_peer.clear();
    for (const Endpoint& endpoint : ring.endpoints())
      ring_to_peer.push_back(peer_of(endpoint));
    ++stats.ring_rebuilds;
  }

  void join_endpoint(const Endpoint& endpoint) {
    membership.join(endpoint, 0, mono_seconds());
    probe(endpoint);  // learn its real incarnation right away
    refresh_ring();
  }

  // ---- plan ---------------------------------------------------------------

  WirePlanResponse plan(WirePlanRequest request) {
    maybe_tick();
    request.platform_fp = platform_fp;
    const CacheKey key = plan_key(platform, request.t_max_c, request.kind,
                                  request.ao, request.pco);
    const std::vector<std::size_t> order = ring.successors(key);

    const bool has_budget = request.deadline_s >= 0.0;
    const Clock::time_point budget_deadline =
        has_budget ? Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                        std::chrono::duration<double>(
                                            request.deadline_s))
                   : Clock::time_point::max();

    StatusCode last_code = StatusCode::kPlannerFailed;
    std::string last_message = "no endpoint reachable";
    double backoff = options.backoff_initial_s;

    for (std::size_t round = 0; round <= options.max_retries; ++round) {
      if (round > 0) {
        ++stats.retries;
        double pause = backoff;
        if (options.backoff_jitter)
          pause = std::min(
              options.backoff_max_s,
              rng.uniform(options.backoff_initial_s, backoff * 3.0));
        if (has_budget)
          pause = std::min(pause, std::max(0.0,
                                           seconds_until(budget_deadline)));
        std::this_thread::sleep_for(std::chrono::duration<double>(pause));
        if (options.backoff_jitter)
          // Decorrelated jitter: the next draw ranges off the sleep we
          // actually took, so a fleet kicked by one event de-syncs fast.
          backoff = std::clamp(pause, options.backoff_initial_s,
                               options.backoff_max_s);
        else
          backoff = std::min(backoff * options.backoff_multiplier,
                             options.backoff_max_s);
      }

      for (std::size_t pos = 0; pos < order.size(); ++pos) {
        if (has_budget && seconds_until(budget_deadline) <= 0.0)
          throw NetClientError(StatusCode::kDeadlineExpired,
                               "plan: client deadline exhausted (last: " +
                                   last_message + ")");
        if (pos > 0) ++stats.failovers;
        const std::size_t index = order[pos];
        const std::size_t peer = ring_to_peer[index];

        // Each attempt is bounded by io_timeout_s and the overall budget;
        // the wire carries the remaining budget so the server gives up in
        // step with us.
        const Clock::time_point attempt_deadline = std::min(
            budget_deadline,
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   options.io_timeout_s)));
        WirePlanRequest attempt = request;
        if (has_budget)
          attempt.deadline_s = std::max(0.0, seconds_until(budget_deadline));

        Frame reply;
        if (!roundtrip(peer, FrameType::kPlanRequest,
                       encode_plan_request(attempt), &reply,
                       attempt_deadline)) {
          ++stats.transport_errors;
          note_unreachable(index);
          continue;
        }

        if (reply.type == FrameType::kPlanResponse) {
          WirePlanResponse response;
          try {
            response = decode_plan_response(reply.body);
          } catch (const MalformedFrameError&) {
            drop(peer);
            ++stats.transport_errors;
            continue;
          }
          ++stats.plans;
          if (response.cache_hit) ++stats.cache_hits;
          note_alive(index);
          return response;
        }
        if (reply.type == FrameType::kStatus) {
          WireStatus status;
          try {
            status = decode_status(reply.body);
          } catch (const MalformedFrameError&) {
            drop(peer);
            ++stats.transport_errors;
            continue;
          }
          ++stats.statuses_by_code[status_index(status.code)];
          note_alive(index);  // a rejection is still a live shard talking
          if (!status_retryable(status.code))
            throw NetClientError(status.code,
                                 std::string(status_code_name(status.code)) +
                                     ": " + status.message);
          last_code = status.code;
          last_message = status.message;
          if (status.retry_after_s > 0.0)
            backoff = std::clamp(status.retry_after_s,
                                 options.backoff_initial_s,
                                 options.backoff_max_s);
          continue;
        }
        // Anything else is a protocol violation from the server side.
        drop(peer);
        ++stats.transport_errors;
      }
    }
    throw NetClientError(last_code, "plan: retries exhausted (last: " +
                                        last_message + ")");
  }

  Frame control(std::size_t index, FrameType type, FrameType expect) {
    FOSCIL_EXPECTS(index < ring.size());
    const std::size_t peer = ring_to_peer[index];
    const Clock::time_point deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(options.io_timeout_s));
    Frame reply;
    if (!roundtrip(peer, type, "", &reply, deadline)) {
      ++stats.transport_errors;
      throw NetClientError(StatusCode::kPlannerFailed,
                           "control frame failed: endpoint " +
                               ring.endpoints()[index].label() +
                               " unreachable");
    }
    if (reply.type != expect) {
      drop(peer);
      throw NetClientError(StatusCode::kMalformed,
                           "control frame: unexpected reply type");
    }
    return reply;
  }
};

NetClient::NetClient(std::vector<Endpoint> endpoints, core::Platform platform,
                     ClientOptions options)
    : impl_(std::make_unique<Impl>(std::move(endpoints), std::move(platform),
                                   std::move(options))) {}

NetClient::~NetClient() = default;

WirePlanResponse NetClient::plan(WirePlanRequest request) {
  return impl_->plan(std::move(request));
}

std::size_t NetClient::route(const WirePlanRequest& request) const {
  return impl_->ring.owner(plan_key(impl_->platform, request.t_max_c,
                                    request.kind, request.ao, request.pco));
}

HealthInfo NetClient::health(std::size_t endpoint_index) {
  const Frame reply = impl_->control(endpoint_index, FrameType::kHealth,
                                     FrameType::kHealthReply);
  try {
    return decode_health(reply.body);
  } catch (const MalformedFrameError& error) {
    impl_->drop(impl_->ring_to_peer[endpoint_index]);
    throw NetClientError(StatusCode::kMalformed, error.what());
  }
}

ReadyInfo NetClient::ready(std::size_t endpoint_index) {
  const Frame reply = impl_->control(endpoint_index, FrameType::kReady,
                                     FrameType::kReadyReply);
  try {
    return decode_ready(reply.body);
  } catch (const MalformedFrameError& error) {
    impl_->drop(impl_->ring_to_peer[endpoint_index]);
    throw NetClientError(StatusCode::kMalformed, error.what());
  }
}

void NetClient::drain(std::size_t endpoint_index) {
  (void)impl_->control(endpoint_index, FrameType::kDrain,
                       FrameType::kDrainReply);
}

bool NetClient::await_ready(std::size_t endpoint_index, double timeout_s,
                            double poll_interval_s) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_s));
  for (;;) {
    try {
      if (ready(endpoint_index).ready != 0) return true;
    } catch (const NetClientError&) {
      // Connection refused or garbled while the shard restarts: keep
      // polling until the timeout.
    }
    if (seconds_until(deadline) <= 0.0) return false;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(poll_interval_s));
  }
}

void NetClient::tick() {
  if (!impl_->options.membership_enabled) return;
  impl_->tick_round();
}

void NetClient::join(const Endpoint& endpoint) {
  impl_->join_endpoint(endpoint);
}

MembershipView NetClient::membership_view() const {
  return impl_->membership.view();
}

std::uint64_t NetClient::membership_epoch() const {
  return impl_->membership.epoch();
}

std::size_t NetClient::index_of(const Endpoint& endpoint) const {
  const std::vector<Endpoint>& endpoints = impl_->ring.endpoints();
  for (std::size_t i = 0; i < endpoints.size(); ++i)
    if (endpoints[i] == endpoint) return i;
  throw NetClientError(StatusCode::kPlannerFailed,
                       "endpoint " + endpoint.label() + " is not in the ring");
}

const HashRing& NetClient::ring() const { return impl_->ring; }

const ClientStats& NetClient::stats() const { return impl_->stats; }

}  // namespace foscil::serve::net
