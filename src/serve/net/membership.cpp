#include "serve/net/membership.hpp"

#include <algorithm>
#include <chrono>

#include "util/contracts.hpp"

namespace foscil::serve::net {

const char* member_health_name(MemberHealth health) noexcept {
  switch (health) {
    case MemberHealth::kAlive: return "alive";
    case MemberHealth::kSuspect: return "suspect";
    case MemberHealth::kDead: return "dead";
  }
  return "unknown";
}

void MembershipOptions::check() const {
  FOSCIL_EXPECTS(heartbeat_interval_s > 0.0);
  FOSCIL_EXPECTS(suspect_timeout_s > 0.0);
  FOSCIL_EXPECTS(dead_timeout_s > suspect_timeout_s);
  FOSCIL_EXPECTS(rejoin_probe_interval_s > 0.0);
}

std::uint64_t fresh_incarnation() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

MembershipTable::MembershipTable(MembershipOptions options,
                                 std::vector<Endpoint> seeds, double now_s)
    : options_(options) {
  options_.check();
  for (Endpoint& seed : seeds) {
    if (find_locked(seed) != nullptr) continue;  // duplicate seed
    Slot slot;
    slot.record.endpoint = std::move(seed);
    slot.record.health = MemberHealth::kAlive;
    slot.record.incarnation = 0;  // the weakest claim: any gossip wins
    slot.last_heard_s = now_s;
    slots_.push_back(std::move(slot));
  }
}

MembershipTable::Slot* MembershipTable::find_locked(const Endpoint& endpoint) {
  for (Slot& slot : slots_)
    if (slot.record.endpoint == endpoint) return &slot;
  return nullptr;
}

const MembershipTable::Slot* MembershipTable::find_locked(
    const Endpoint& endpoint) const {
  for (const Slot& slot : slots_)
    if (slot.record.endpoint == endpoint) return &slot;
  return nullptr;
}

void MembershipTable::bump_epoch_locked(std::uint64_t at_least) {
  epoch_ = std::max(epoch_, at_least) + 1;
}

bool MembershipTable::apply_locked(const MemberRecord& remote, double now_s) {
  Slot* slot = find_locked(remote.endpoint);
  if (slot == nullptr) {
    // A join: first word of this endpoint's existence.
    Slot fresh;
    fresh.record = remote;
    fresh.last_heard_s = now_s;
    slots_.push_back(std::move(fresh));
    ++stats_.joins;
    // Only a live join changes the routable set.
    return remote.health != MemberHealth::kDead;
  }

  // Self is not a rumor: nothing a peer says about this node overrides the
  // node's own record (a higher remote incarnation of "us" would mean a
  // misconfigured twin; routing stays pinned to our own claim).
  if (slot->self) return false;

  const MemberRecord before = slot->record;
  if (remote.incarnation > slot->record.incarnation) {
    slot->record = remote;  // a newer life overrides everything
  } else if (remote.incarnation == slot->record.incarnation &&
             static_cast<std::uint8_t>(remote.health) >
                 static_cast<std::uint8_t>(slot->record.health)) {
    slot->record.health = remote.health;  // worse news wins a tie
  } else {
    return false;
  }
  slot->last_heard_s = now_s;

  const bool was_live = before.health != MemberHealth::kDead;
  const bool is_live = slot->record.health != MemberHealth::kDead;
  if (was_live && !is_live) ++stats_.deaths;
  if (!was_live && is_live) ++stats_.revivals;
  if (before.health == MemberHealth::kAlive &&
      slot->record.health == MemberHealth::kSuspect)
    ++stats_.suspects;
  return was_live != is_live;
}

bool MembershipTable::merge(const MembershipView& remote, double now_s) {
  const std::lock_guard<std::mutex> lock(mutex_);
  bool live_changed = false;
  for (const MemberRecord& record : remote.members)
    live_changed = apply_locked(record, now_s) || live_changed;
  if (live_changed) {
    bump_epoch_locked(remote.epoch);
    ++stats_.merges;
  } else {
    // Nothing structural changed, but never let the epoch run behind a
    // view we have fully absorbed.
    epoch_ = std::max(epoch_, remote.epoch);
  }
  return live_changed;
}

bool MembershipTable::observe_alive(const Endpoint& endpoint,
                                    std::uint64_t incarnation, double now_s) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Slot* slot = find_locked(endpoint);
  if (slot == nullptr) {
    Slot fresh;
    fresh.record.endpoint = endpoint;
    fresh.record.health = MemberHealth::kAlive;
    fresh.record.incarnation = incarnation;
    fresh.last_heard_s = now_s;
    slots_.push_back(std::move(fresh));
    ++stats_.joins;
    bump_epoch_locked(epoch_);
    return true;
  }
  slot->last_heard_s = now_s;
  if (slot->self) return false;

  const MemberHealth before = slot->record.health;
  // Direct contact beats any rumor — but a dead record can only be
  // overridden by a *newer incarnation* (the restart itself), matching the
  // merge rule that death is final per incarnation.
  if (before == MemberHealth::kDead) {
    if (incarnation <= slot->record.incarnation) return false;
    slot->record.incarnation = incarnation;
    slot->record.health = MemberHealth::kAlive;
    ++stats_.revivals;
    bump_epoch_locked(epoch_);
    return true;
  }
  slot->record.incarnation = std::max(slot->record.incarnation, incarnation);
  slot->record.health = MemberHealth::kAlive;  // suspect clears on contact
  return false;  // alive/suspect are both routable: live set unchanged
}

bool MembershipTable::observe_unreachable(const Endpoint& endpoint,
                                          double now_s) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Slot* slot = find_locked(endpoint);
  if (slot == nullptr || slot->self) return false;
  if (slot->record.health == MemberHealth::kAlive) {
    slot->record.health = MemberHealth::kSuspect;
    ++stats_.suspects;
    return true;  // transition happened (routable set unchanged, though)
  }
  if (slot->record.health == MemberHealth::kSuspect &&
      now_s - slot->last_heard_s > options_.dead_timeout_s) {
    slot->record.health = MemberHealth::kDead;
    ++stats_.deaths;
    bump_epoch_locked(epoch_);
    return true;
  }
  return false;
}

bool MembershipTable::tick(double now_s) {
  const std::lock_guard<std::mutex> lock(mutex_);
  bool live_changed = false;
  for (Slot& slot : slots_) {
    if (slot.self) continue;
    const double silent_s = now_s - slot.last_heard_s;
    if (slot.record.health == MemberHealth::kAlive &&
        silent_s > options_.suspect_timeout_s) {
      slot.record.health = MemberHealth::kSuspect;
      ++stats_.suspects;
    }
    if (slot.record.health == MemberHealth::kSuspect &&
        silent_s > options_.dead_timeout_s) {
      slot.record.health = MemberHealth::kDead;
      ++stats_.deaths;
      live_changed = true;
    }
  }
  if (live_changed) bump_epoch_locked(epoch_);
  return live_changed;
}

bool MembershipTable::join(const Endpoint& endpoint,
                           std::uint64_t incarnation, double now_s) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Slot* slot = find_locked(endpoint);
  if (slot == nullptr) {
    Slot fresh;
    fresh.record.endpoint = endpoint;
    fresh.record.health = MemberHealth::kAlive;
    fresh.record.incarnation = incarnation;
    fresh.last_heard_s = now_s;
    slots_.push_back(std::move(fresh));
    ++stats_.joins;
    bump_epoch_locked(epoch_);
    return true;
  }
  if (slot->self) return false;
  if (slot->record.health == MemberHealth::kDead &&
      incarnation <= slot->record.incarnation)
    return false;  // a join cannot resurrect a dead incarnation
  const bool was_dead = slot->record.health == MemberHealth::kDead;
  slot->record.health = MemberHealth::kAlive;
  slot->record.incarnation = std::max(slot->record.incarnation, incarnation);
  slot->last_heard_s = now_s;
  if (was_dead) {
    ++stats_.revivals;
    bump_epoch_locked(epoch_);
  }
  return was_dead;
}

std::vector<Endpoint> MembershipTable::live_endpoints() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Endpoint> live;
  for (const Slot& slot : slots_)
    if (slot.record.health != MemberHealth::kDead)
      live.push_back(slot.record.endpoint);
  return live;
}

std::vector<Endpoint> MembershipTable::due_probes(double now_s) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Endpoint> due;
  for (Slot& slot : slots_) {
    if (slot.self) continue;
    const double interval = slot.record.health == MemberHealth::kDead
                                ? options_.rejoin_probe_interval_s
                                : options_.heartbeat_interval_s;
    if (now_s - slot.last_probe_s >= interval) {
      slot.last_probe_s = now_s;
      due.push_back(slot.record.endpoint);
    }
  }
  return due;
}

MembershipView MembershipTable::view() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MembershipView snapshot;
  snapshot.epoch = epoch_;
  snapshot.members.reserve(slots_.size());
  for (const Slot& slot : slots_) snapshot.members.push_back(slot.record);
  return snapshot;
}

std::uint64_t MembershipTable::epoch() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

MembershipStats MembershipTable::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t MembershipTable::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

MemberHealth MembershipTable::health_of(const Endpoint& endpoint) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const Slot* slot = find_locked(endpoint);
  return slot == nullptr ? MemberHealth::kDead : slot->record.health;
}

void MembershipTable::set_self(const Endpoint& endpoint,
                               std::uint64_t incarnation) {
  const std::lock_guard<std::mutex> lock(mutex_);
  self_incarnation_ = incarnation;
  Slot* slot = find_locked(endpoint);
  if (slot == nullptr) {
    Slot fresh;
    fresh.record.endpoint = endpoint;
    slots_.push_back(std::move(fresh));
    slot = &slots_.back();
  }
  slot->record.health = MemberHealth::kAlive;
  slot->record.incarnation = incarnation;
  slot->self = true;
  slot->last_heard_s = 1e300;  // never times out
}

std::uint64_t MembershipTable::self_incarnation() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return self_incarnation_;
}

}  // namespace foscil::serve::net
