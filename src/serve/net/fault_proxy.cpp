#include "serve/net/fault_proxy.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/errors.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace foscil::serve::net {

namespace {

using Clock = std::chrono::steady_clock;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

void FaultProxyOptions::check() const {
  // An unset upstream (port 0) is legal: set_upstream() supplies it later
  // and the proxy refuses connections until then.
  FOSCIL_EXPECTS(upstream.port == 0 || !upstream.host.empty());
  FOSCIL_EXPECTS(corrupt_probability >= 0.0 && corrupt_probability <= 1.0);
  FOSCIL_EXPECTS(drop_probability >= 0.0 && drop_probability <= 1.0);
  FOSCIL_EXPECTS(reorder_probability >= 0.0 && reorder_probability <= 1.0);
  FOSCIL_EXPECTS(delay_s >= 0.0);
}

struct FaultProxy::Impl {
  explicit Impl(FaultProxyOptions opts)
      : options(std::move(opts)),
        corrupt_p(options.corrupt_probability),
        drop_p(options.drop_probability),
        reorder_p(options.reorder_probability),
        delay(options.delay_s),
        close_after(options.close_after_bytes),
        rng(options.seed),
        upstream_target(options.upstream) {
    options.check();
  }

  /// One delivery unit: whatever one recv() returned, faulted as a whole.
  struct Chunk {
    std::string bytes;
    Clock::time_point due;
  };

  struct Conn {
    int client_fd = -1;
    int upstream_fd = -1;
    bool upstream_connecting = false;
    bool client_eof = false;
    bool upstream_eof = false;
    std::deque<Chunk> to_upstream;
    std::deque<Chunk> to_client;
    std::uint64_t forwarded_bytes = 0;
  };

  FaultProxyOptions options;
  std::atomic<bool> partitioned{false};
  std::atomic<bool> drop_up{false};
  std::atomic<bool> drop_down{false};
  std::atomic<double> corrupt_p;
  std::atomic<bool> corrupt_up{true};
  std::atomic<bool> corrupt_down{true};
  std::atomic<double> drop_p;
  std::atomic<double> reorder_p;
  std::atomic<double> delay;
  std::atomic<std::uint64_t> close_after;
  std::atomic<bool> kill_conns{false};
  std::atomic<bool> stop_flag{false};

  Rng rng;  ///< proxy thread only
  mutable std::mutex upstream_mutex;
  Endpoint upstream_target;  ///< guarded by upstream_mutex
  int listen_fd = -1;
  std::uint16_t port = 0;
  std::thread thread;
  std::vector<Conn> conns;

  std::atomic<std::uint64_t> connections{0};
  std::atomic<std::uint64_t> refused_connections{0};
  std::atomic<std::uint64_t> chunks_forwarded{0};
  std::atomic<std::uint64_t> bytes_forwarded{0};
  std::atomic<std::uint64_t> chunks_corrupted{0};
  std::atomic<std::uint64_t> chunks_dropped{0};
  std::atomic<std::uint64_t> chunks_reordered{0};
  std::atomic<std::uint64_t> forced_closes{0};

  void close_conn(Conn& conn) {
    if (conn.client_fd >= 0) ::close(conn.client_fd);
    if (conn.upstream_fd >= 0) ::close(conn.upstream_fd);
    conn.client_fd = -1;
    conn.upstream_fd = -1;
  }

  void accept_one() {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) return;
    Endpoint target;
    {
      const std::lock_guard<std::mutex> lock(upstream_mutex);
      target = upstream_target;
    }
    // No upstream yet (bootstrap window) behaves like a partition: the
    // connection is refused, not black-holed into a hang.
    if (partitioned.load(std::memory_order_relaxed) || target.port == 0) {
      refused_connections.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      return;
    }
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    const int up = ::socket(AF_INET, SOCK_STREAM, 0);
    if (up < 0) {
      ::close(fd);
      return;
    }
    set_nonblocking(up);
    ::setsockopt(up, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(target.port);
    if (::inet_pton(AF_INET, target.host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      ::close(up);
      return;
    }
    const int rc =
        ::connect(up, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
      ::close(fd);
      ::close(up);
      return;
    }
    Conn conn;
    conn.client_fd = fd;
    conn.upstream_fd = up;
    conn.upstream_connecting = rc != 0;
    conns.push_back(std::move(conn));
    connections.fetch_add(1, std::memory_order_relaxed);
  }

  /// Run one received chunk through the fault schedule and queue it (or
  /// not).  `to_upstream_dir` is the direction of travel.
  void schedule_chunk(Conn& conn, bool to_upstream_dir, std::string bytes,
                      Clock::time_point now) {
    const bool black_holed =
        partitioned.load(std::memory_order_relaxed) ||
        (to_upstream_dir ? drop_up.load(std::memory_order_relaxed)
                         : drop_down.load(std::memory_order_relaxed));
    if (black_holed) {
      chunks_dropped.fetch_add(1, std::memory_order_relaxed);
      return;  // consumed, never delivered: a wire-level black hole
    }
    const double p_drop = drop_p.load(std::memory_order_relaxed);
    if (p_drop > 0.0 && rng.uniform(0.0, 1.0) < p_drop) {
      chunks_dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const bool corrupt_this_dir =
        to_upstream_dir ? corrupt_up.load(std::memory_order_relaxed)
                        : corrupt_down.load(std::memory_order_relaxed);
    const double p_corrupt = corrupt_p.load(std::memory_order_relaxed);
    if (corrupt_this_dir && p_corrupt > 0.0 && !bytes.empty() &&
        rng.uniform(0.0, 1.0) < p_corrupt) {
      const std::size_t bit = rng.index(bytes.size() * 8);
      bytes[bit / 8] = static_cast<char>(
          static_cast<unsigned char>(bytes[bit / 8]) ^ (1u << (bit % 8)));
      chunks_corrupted.fetch_add(1, std::memory_order_relaxed);
    }
    Chunk chunk;
    chunk.bytes = std::move(bytes);
    chunk.due = now + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(
                              delay.load(std::memory_order_relaxed)));
    std::deque<Chunk>& queue =
        to_upstream_dir ? conn.to_upstream : conn.to_client;
    const double p_reorder = reorder_p.load(std::memory_order_relaxed);
    queue.push_back(std::move(chunk));
    if (queue.size() >= 2 && p_reorder > 0.0 &&
        rng.uniform(0.0, 1.0) < p_reorder) {
      // Deliver this chunk before the one already queued ahead of it.
      std::swap(queue[queue.size() - 1], queue[queue.size() - 2]);
      chunks_reordered.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Read whatever is available from one side.  Returns false when the
  /// connection must be closed now (hard error).
  bool pump_read(Conn& conn, bool from_client, Clock::time_point now) {
    const int fd = from_client ? conn.client_fd : conn.upstream_fd;
    bool& eof = from_client ? conn.client_eof : conn.upstream_eof;
    if (eof) return true;
    char buf[16384];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n > 0) {
        schedule_chunk(conn, from_client,
                       std::string(buf, static_cast<std::size_t>(n)), now);
        if (static_cast<std::size_t>(n) < sizeof(buf)) return true;
        continue;
      }
      if (n == 0) {
        eof = true;  // keep flushing what is queued, read no more
        return true;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
  }

  /// Flush due chunks toward one side.  Returns false on a hard error.
  bool pump_write(Conn& conn, bool to_upstream_dir, Clock::time_point now) {
    std::deque<Chunk>& queue =
        to_upstream_dir ? conn.to_upstream : conn.to_client;
    const int fd = to_upstream_dir ? conn.upstream_fd : conn.client_fd;
    while (!queue.empty() && queue.front().due <= now) {
      Chunk& chunk = queue.front();
      const ssize_t n =
          ::send(fd, chunk.bytes.data(), chunk.bytes.size(), MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        if (errno == EINTR) continue;
        return false;
      }
      conn.forwarded_bytes += static_cast<std::uint64_t>(n);
      bytes_forwarded.fetch_add(static_cast<std::uint64_t>(n),
                                std::memory_order_relaxed);
      const std::uint64_t cut = close_after.load(std::memory_order_relaxed);
      if (cut != 0 && conn.forwarded_bytes >= cut) {
        forced_closes.fetch_add(1, std::memory_order_relaxed);
        return false;  // sever abruptly, mid-frame by construction
      }
      if (static_cast<std::size_t>(n) == chunk.bytes.size()) {
        chunks_forwarded.fetch_add(1, std::memory_order_relaxed);
        queue.pop_front();
        continue;
      }
      chunk.bytes.erase(0, static_cast<std::size_t>(n));
      return true;  // kernel buffer full; retry next round
    }
    // Source side gone and nothing left to flush: relay the half-close.
    const bool source_eof =
        to_upstream_dir ? conn.client_eof : conn.upstream_eof;
    if (source_eof && queue.empty()) ::shutdown(fd, SHUT_WR);
    return true;
  }

  void finish_upstream_connect(Conn& conn) {
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(conn.upstream_fd, SOL_SOCKET, SO_ERROR, &err, &len) !=
            0 ||
        err != 0) {
      conn.upstream_eof = true;
      conn.client_eof = true;
      conn.to_client.clear();
      conn.to_upstream.clear();
      return;
    }
    conn.upstream_connecting = false;
  }

  void run() {
    std::vector<pollfd> fds;
    while (!stop_flag.load(std::memory_order_acquire)) {
      if (kill_conns.exchange(false, std::memory_order_acq_rel)) {
        for (Conn& conn : conns) close_conn(conn);
        conns.clear();
      }

      fds.clear();
      {
        pollfd p{};
        p.fd = listen_fd;
        p.events = POLLIN;
        fds.push_back(p);
      }
      for (const Conn& conn : conns) {
        pollfd c{};
        c.fd = conn.client_fd;
        c.events = static_cast<short>(
            (conn.client_eof ? 0 : POLLIN) |
            (conn.to_client.empty() ? 0 : POLLOUT));
        fds.push_back(c);
        pollfd u{};
        u.fd = conn.upstream_fd;
        u.events = static_cast<short>(
            conn.upstream_connecting
                ? POLLOUT
                : ((conn.upstream_eof ? 0 : POLLIN) |
                   (conn.to_upstream.empty() ? 0 : POLLOUT)));
        fds.push_back(u);
      }
      // Short timeout: delayed chunks come due without any readiness.
      ::poll(fds.data(), fds.size(), 5);
      const Clock::time_point now = Clock::now();

      // Process the polled connections before accepting: accept_one()
      // grows `conns`, and a connection accepted this round has no pollfd
      // entry yet — indexing past `fds` for it would read garbage revents
      // and condemn it at birth.
      std::size_t fd_index = 1;
      for (std::size_t polled = (fds.size() - 1) / 2; polled > 0; --polled) {
        Conn& conn = conns[fd_index / 2];
        const pollfd& client = fds[fd_index++];
        const pollfd& upstream = fds[fd_index++];
        bool ok = true;
        if (conn.upstream_connecting &&
            (upstream.revents & (POLLOUT | POLLERR | POLLHUP)) != 0)
          finish_upstream_connect(conn);
        if ((client.revents & (POLLERR | POLLNVAL)) != 0) ok = false;
        if ((upstream.revents & (POLLERR | POLLNVAL)) != 0 &&
            !conn.upstream_connecting)
          ok = false;
        if (ok && (client.revents & (POLLIN | POLLHUP)) != 0)
          ok = pump_read(conn, true, now);
        if (ok && !conn.upstream_connecting &&
            (upstream.revents & (POLLIN | POLLHUP)) != 0)
          ok = pump_read(conn, false, now);
        if (ok && !conn.upstream_connecting)
          ok = pump_write(conn, true, now);
        if (ok) ok = pump_write(conn, false, now);
        const bool drained = conn.client_eof && conn.upstream_eof &&
                             conn.to_client.empty() &&
                             conn.to_upstream.empty();
        if (!ok || drained) {
          close_conn(conn);
        }
      }
      if ((fds[0].revents & POLLIN) != 0)
        for (int i = 0; i < 16; ++i) accept_one();
      std::erase_if(conns, [](const Conn& conn) { return conn.client_fd < 0; });
    }

    for (Conn& conn : conns) close_conn(conn);
    conns.clear();
  }
};

FaultProxy::FaultProxy(FaultProxyOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

FaultProxy::~FaultProxy() { stop(); }

std::uint16_t FaultProxy::start() {
  Impl& impl = *impl_;
  FOSCIL_EXPECTS(impl.listen_fd < 0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    throw ServeError("fault proxy: cannot create socket: " +
                     std::string(std::strerror(errno)));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(impl.options.listen_port);
  if (::inet_pton(AF_INET, impl.options.listen_host.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    throw ServeError("fault proxy: bad listen host " +
                     impl.options.listen_host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw ServeError("fault proxy: cannot bind/listen: " + why);
  }
  set_nonblocking(fd);
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw ServeError("fault proxy: getsockname failed: " + why);
  }
  impl.listen_fd = fd;
  impl.port = ntohs(bound.sin_port);
  impl.thread = std::thread([this] { impl_->run(); });
  return impl.port;
}

void FaultProxy::stop() {
  Impl& impl = *impl_;
  impl.stop_flag.store(true, std::memory_order_release);
  if (impl.thread.joinable()) impl.thread.join();
  if (impl.listen_fd >= 0) {
    ::close(impl.listen_fd);
    impl.listen_fd = -1;
  }
}

Endpoint FaultProxy::endpoint() const {
  return Endpoint{impl_->options.listen_host, impl_->port};
}

void FaultProxy::set_upstream(const Endpoint& upstream) {
  FOSCIL_EXPECTS(!upstream.host.empty() && upstream.port != 0);
  const std::lock_guard<std::mutex> lock(impl_->upstream_mutex);
  impl_->upstream_target = upstream;
}

void FaultProxy::set_partitioned(bool on) {
  impl_->partitioned.store(on, std::memory_order_relaxed);
}

void FaultProxy::set_drop_to_upstream(bool on) {
  impl_->drop_up.store(on, std::memory_order_relaxed);
}

void FaultProxy::set_drop_to_client(bool on) {
  impl_->drop_down.store(on, std::memory_order_relaxed);
}

void FaultProxy::set_corrupt_probability(double p) {
  impl_->corrupt_p.store(p, std::memory_order_relaxed);
}

void FaultProxy::set_corrupt_to_upstream(bool on) {
  impl_->corrupt_up.store(on, std::memory_order_relaxed);
}

void FaultProxy::set_corrupt_to_client(bool on) {
  impl_->corrupt_down.store(on, std::memory_order_relaxed);
}

void FaultProxy::set_drop_probability(double p) {
  impl_->drop_p.store(p, std::memory_order_relaxed);
}

void FaultProxy::set_reorder_probability(double p) {
  impl_->reorder_p.store(p, std::memory_order_relaxed);
}

void FaultProxy::set_delay(double seconds) {
  impl_->delay.store(seconds, std::memory_order_relaxed);
}

void FaultProxy::set_close_after_bytes(std::uint64_t bytes) {
  impl_->close_after.store(bytes, std::memory_order_relaxed);
}

void FaultProxy::drop_connections() {
  impl_->kill_conns.store(true, std::memory_order_release);
}

FaultProxyStats FaultProxy::stats() const {
  const Impl& impl = *impl_;
  FaultProxyStats stats;
  stats.connections = impl.connections.load(std::memory_order_relaxed);
  stats.refused_connections =
      impl.refused_connections.load(std::memory_order_relaxed);
  stats.chunks_forwarded =
      impl.chunks_forwarded.load(std::memory_order_relaxed);
  stats.bytes_forwarded = impl.bytes_forwarded.load(std::memory_order_relaxed);
  stats.chunks_corrupted =
      impl.chunks_corrupted.load(std::memory_order_relaxed);
  stats.chunks_dropped = impl.chunks_dropped.load(std::memory_order_relaxed);
  stats.chunks_reordered =
      impl.chunks_reordered.load(std::memory_order_relaxed);
  stats.forced_closes = impl.forced_closes.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace foscil::serve::net
