// Consistent-hash routing of 128-bit plan keys across shard endpoints.
//
// The client owns a ring of virtual nodes (`vnodes` points per endpoint,
// each hashed from "host:port#i"); a plan key routes to the endpoint
// owning the first ring point at or after the key's fold.  Properties the
// tests pin down:
//   * deterministic — every client with the same endpoint list routes a
//     key identically, so shard caches stay disjoint and hot;
//   * bounded disruption — removing one endpoint only re-routes the keys
//     it owned (its arcs fall to the successors), which is exactly the
//     failover path: when a shard dies, its keys land on the next live
//     node and the rest of the fleet's cache locality is untouched;
//   * failover order — successors(key) enumerates every endpoint, nearest
//     arc first, no repeats, so a client walks it for retries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/cache_key.hpp"

namespace foscil::serve::net {

struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  [[nodiscard]] std::string label() const {
    return host + ":" + std::to_string(port);
  }
  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

class HashRing {
 public:
  /// `endpoints` must be non-empty; `vnodes` >= 1 points per endpoint.
  explicit HashRing(std::vector<Endpoint> endpoints, std::size_t vnodes = 64);

  /// Endpoint index owning `key`.
  [[nodiscard]] std::size_t owner(const CacheKey& key) const;

  /// Every endpoint index in failover order for `key`: the owner first,
  /// then each remaining endpoint in ring order from the key's position.
  [[nodiscard]] std::vector<std::size_t> successors(const CacheKey& key) const;

  [[nodiscard]] const std::vector<Endpoint>& endpoints() const {
    return endpoints_;
  }
  [[nodiscard]] std::size_t size() const { return endpoints_.size(); }

 private:
  struct Point {
    std::uint64_t hash = 0;
    std::size_t endpoint = 0;
  };

  [[nodiscard]] std::size_t first_point_at_or_after(std::uint64_t hash) const;

  std::vector<Endpoint> endpoints_;
  std::vector<Point> points_;  ///< sorted by hash
};

/// Fold a 128-bit plan key onto the ring's 64-bit hash space.  Must be
/// identical across every client build (wire-stable routing).
[[nodiscard]] std::uint64_t ring_fold(const CacheKey& key) noexcept;

}  // namespace foscil::serve::net
