// Shard membership and failure detection for the networked planning tier.
//
// The static endpoint list of DESIGN.md §13 is demoted to a *seed list*:
// every node (shard server or client) maintains a MembershipTable — a live
// view of the ring — and keeps it current by gossiping the table over the
// existing wire format (kGossip/kGossipReply frames, serve/net/wire.hpp).
// The table answers the two questions static configuration cannot:
//
//   * "who is alive?" — each member walks an alive -> suspect -> dead
//     state machine driven by heartbeat probes and tunable timeouts, so a
//     dead shard leaves the routing ring (it is only re-probed at a slow
//     rejoin cadence, never in the request hot path) and a returning or
//     freshly joined shard re-enters it;
//   * "which view is newer?" — a monotonic *membership epoch* versions the
//     live set.  Every liveness change bumps it, merges adopt the maximum,
//     and cache handoff frames are fenced by it: a shard that streams plans
//     under an epoch older than the receiver's is provably stale and is
//     rejected (StatusCode::kStaleEpoch), so a partitioned former owner can
//     never clobber entries the new topology already owns.
//
// Merge rules (the SWIM-style core, deterministic and order-independent):
// members are keyed by endpoint; for one endpoint, a record with a higher
// *incarnation* wins outright — a restarting shard announces itself with a
// fresh, strictly larger incarnation (derived from its start time), which
// is what lets "A is dead" be overridden only by A itself coming back.  At
// equal incarnation the worse health wins (dead > suspect > alive):
// declaring an incarnation dead is irreversible, so rumors cannot resurrect
// a corpse.  Unknown endpoints are added (that is what a join looks like).
//
// Thread-safety: all methods are mutex-guarded — the server touches its
// table from the event loop and from the handoff streamer thread.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "serve/net/ring.hpp"

namespace foscil::serve::net {

/// Liveness states, ordered: a larger value wins a same-incarnation merge.
enum class MemberHealth : std::uint8_t {
  kAlive = 0,    ///< heard from recently; fully routable
  kSuspect = 1,  ///< missed heartbeats; still routable, being confirmed
  kDead = 2,     ///< timed out or gossiped dead; out of the ring
};

[[nodiscard]] const char* member_health_name(MemberHealth health) noexcept;

/// One member as gossip carries it (no local bookkeeping crosses the wire).
struct MemberRecord {
  Endpoint endpoint;
  MemberHealth health = MemberHealth::kAlive;
  std::uint64_t incarnation = 0;

  friend bool operator==(const MemberRecord&, const MemberRecord&) = default;
};

/// A whole table as gossip carries it: the epoch plus every member record.
struct MembershipView {
  std::uint64_t epoch = 0;
  std::vector<MemberRecord> members;
};

struct MembershipOptions {
  /// Probe cadence for alive/suspect members (seconds between heartbeats
  /// per member, driven by the owner's tick()).
  double heartbeat_interval_s = 0.25;
  /// An alive member unheard for this long becomes suspect.
  double suspect_timeout_s = 1.0;
  /// A suspect member unheard for this long becomes dead.
  double dead_timeout_s = 2.5;
  /// Dead members are probed this often (only) so a returning shard is
  /// noticed — the hot path never touches them.
  double rejoin_probe_interval_s = 1.0;

  void check() const;
};

/// Counters a table keeps about its own transitions (monotonic).
struct MembershipStats {
  std::uint64_t merges = 0;           ///< merge() calls that changed anything
  std::uint64_t joins = 0;            ///< members first seen
  std::uint64_t suspects = 0;         ///< alive -> suspect transitions
  std::uint64_t deaths = 0;           ///< -> dead transitions
  std::uint64_t revivals = 0;         ///< dead -> alive (rejoin/restart)
};

/// A fresh incarnation for this process: wall-clock nanoseconds at call
/// time, so a restarted shard always outranks every record of its former
/// life without persisting anything.
[[nodiscard]] std::uint64_t fresh_incarnation();

class MembershipTable {
 public:
  /// Seeds the table with `seeds` as alive members at incarnation 0 (the
  /// weakest possible claim: any gossip about them wins).  `now_s` is the
  /// caller's monotonic clock; every later call must use the same clock.
  MembershipTable(MembershipOptions options, std::vector<Endpoint> seeds,
                  double now_s);

  /// Merge a remote view (see merge rules above).  Returns true when the
  /// *live set* changed — members added, died, or returned — in which case
  /// the epoch was bumped past both the old local and the remote epoch.
  bool merge(const MembershipView& remote, double now_s);

  /// Direct evidence of life (a successful probe or any frame from the
  /// member).  `incarnation` 0 means "unknown, keep the current one".
  /// Returns true when this changed the live set (a revival or join).
  bool observe_alive(const Endpoint& endpoint, std::uint64_t incarnation,
                     double now_s);

  /// Direct evidence of trouble (a failed probe): an alive member becomes
  /// suspect immediately.  Death still waits for dead_timeout_s so one
  /// dropped packet cannot evict a shard.  Returns true on a transition.
  bool observe_unreachable(const Endpoint& endpoint, double now_s);

  /// Apply timeout transitions (alive -> suspect -> dead).  Returns true
  /// when the live set changed (some member died).
  bool tick(double now_s);

  /// Add-or-revive a member by operator action (a join announcement): the
  /// member enters alive with `incarnation` (0 = keep/weakest) and the
  /// epoch bumps if the live set changed.  Returns true on change.
  bool join(const Endpoint& endpoint, std::uint64_t incarnation,
            double now_s);

  /// Endpoints a router may use: alive and suspect members, in insertion
  /// order (deterministic across nodes that learned the members in the
  /// same order; the ring hashes labels, so order does not affect routing).
  [[nodiscard]] std::vector<Endpoint> live_endpoints() const;

  /// Members due a probe at `now_s`: alive/suspect past the heartbeat
  /// interval, dead past the rejoin interval.  `self` (when tracked) is
  /// never returned.  Calling this stamps the members probed so the next
  /// due time moves — exactly one caller should drive probing.
  [[nodiscard]] std::vector<Endpoint> due_probes(double now_s);

  [[nodiscard]] MembershipView view() const;
  [[nodiscard]] std::uint64_t epoch() const;
  [[nodiscard]] MembershipStats stats() const;
  [[nodiscard]] std::size_t size() const;
  /// Health of one endpoint; kDead when unknown.
  [[nodiscard]] MemberHealth health_of(const Endpoint& endpoint) const;

  /// Mark one endpoint as this node itself: it is pinned alive (its own
  /// liveness is not a rumor) and never probed.
  void set_self(const Endpoint& endpoint, std::uint64_t incarnation);
  [[nodiscard]] std::uint64_t self_incarnation() const;

 private:
  struct Slot {
    MemberRecord record;
    double last_heard_s = 0.0;
    double last_probe_s = -1e300;  ///< long overdue: probe immediately
    bool self = false;
  };

  [[nodiscard]] Slot* find_locked(const Endpoint& endpoint);
  [[nodiscard]] const Slot* find_locked(const Endpoint& endpoint) const;
  /// Apply one remote record under the merge rules; returns true when the
  /// live set changed.  Caller holds the lock.
  bool apply_locked(const MemberRecord& remote, double now_s);
  void bump_epoch_locked(std::uint64_t at_least);

  mutable std::mutex mutex_;
  MembershipOptions options_;
  std::vector<Slot> slots_;
  std::uint64_t epoch_ = 0;
  std::uint64_t self_incarnation_ = 0;
  MembershipStats stats_;
};

}  // namespace foscil::serve::net
