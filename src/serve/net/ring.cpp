#include "serve/net/ring.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace foscil::serve::net {

namespace {

std::uint64_t fnv1a(const std::string& bytes) noexcept {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t splitmix(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t ring_fold(const CacheKey& key) noexcept {
  // Mix both halves through a finalizer so the ring position shares no
  // bit pattern with the cache's shard selector (which uses key.hi alone).
  return splitmix(key.hi ^ splitmix(key.lo));
}

HashRing::HashRing(std::vector<Endpoint> endpoints, std::size_t vnodes)
    : endpoints_(std::move(endpoints)) {
  FOSCIL_EXPECTS(!endpoints_.empty());
  FOSCIL_EXPECTS(vnodes >= 1);
  points_.reserve(endpoints_.size() * vnodes);
  for (std::size_t e = 0; e < endpoints_.size(); ++e) {
    const std::string label = endpoints_[e].label();
    for (std::size_t v = 0; v < vnodes; ++v) {
      // Derive each virtual point from the endpoint label, then diffuse:
      // FNV alone clusters sequential "#i" suffixes.
      const std::uint64_t h =
          splitmix(fnv1a(label + "#" + std::to_string(v)));
      points_.push_back({h, e});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              // Tie-break on endpoint index so equal hashes (possible with
              // colliding labels) still sort deterministically.
              return a.hash != b.hash ? a.hash < b.hash
                                      : a.endpoint < b.endpoint;
            });
}

std::size_t HashRing::first_point_at_or_after(std::uint64_t hash) const {
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), hash,
      [](const Point& p, std::uint64_t h) { return p.hash < h; });
  return it == points_.end() ? 0 : static_cast<std::size_t>(
                                       it - points_.begin());
}

std::size_t HashRing::owner(const CacheKey& key) const {
  return points_[first_point_at_or_after(ring_fold(key))].endpoint;
}

std::vector<std::size_t> HashRing::successors(const CacheKey& key) const {
  std::vector<std::size_t> order;
  order.reserve(endpoints_.size());
  std::vector<bool> seen(endpoints_.size(), false);
  std::size_t at = first_point_at_or_after(ring_fold(key));
  for (std::size_t step = 0; step < points_.size(); ++step) {
    const Point& point = points_[(at + step) % points_.size()];
    if (seen[point.endpoint]) continue;
    seen[point.endpoint] = true;
    order.push_back(point.endpoint);
    if (order.size() == endpoints_.size()) break;
  }
  return order;
}

}  // namespace foscil::serve::net
