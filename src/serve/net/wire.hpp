// Wire protocol of the networked planning tier.
//
// Length-prefixed binary frames over a byte stream (TCP), built for a
// fleet where every external byte is assumed hostile or late until
// validated.  Frame layout (all integers little-endian fixed-width, all
// doubles by IEEE-754 bit pattern):
//
//   offset  size
//   0       4     magic "FPLN"
//   4       2     u16 protocol version (kWireVersion)
//   6       2     u16 frame type (FrameType)
//   8       8     u64 request id — chosen by the client, echoed verbatim in
//                 the matching response so requests can be pipelined
//   16      4     u32 body length in bytes (<= the receiver's cap)
//   20      8     u64 FNV-1a checksum over type, request id, body length,
//                 and the body bytes (in that order) — every semantic
//                 header field is covered, so a single flipped bit cannot
//                 silently turn one frame type (or request pairing) into
//                 another; magic and version are validated directly
//   28      ...   body
//
// Validation is strict and total: bad magic, unknown version, unknown
// type, oversized length, or a checksum mismatch classifies the *stream*
// as garbage — the receiver answers with one Status frame naming the
// defect (best effort) and closes the connection.  A frame that parses is
// then body-validated field by field (bounds-checked cursor, no length
// trusted before it is checked against the bytes remaining); a body
// defect is MALFORMED.  Nothing a peer sends can crash the receiver: the
// frame-decoder fuzz battery (tests/serve/net/wire_fuzz_test.cpp) pins
// this under ASan/UBSan.
//
// The PlanRequest body maps 1:1 onto cache-key schema v3 (see
// serve/cache_key.cpp): every input plan_key() hashes is either carried in
// the body (t_max, planner kind, every AoOptions/PcoOptions field) or
// pinned by the platform fingerprint the body leads with — the server
// compares that fingerprint against its own platform and rejects skew
// with PLATFORM_MISMATCH instead of silently planning on different
// hardware than the client hashed.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include <vector>

#include "serve/cache_key.hpp"
#include "serve/errors.hpp"
#include "serve/net/membership.hpp"
#include "serve/plan_cache.hpp"
#include "serve/service.hpp"

namespace foscil::serve::net {

/// Protocol version.  Bump on ANY frame or body layout change; a receiver
/// rejects every other version (no negotiation — plans are cheap to
/// recompute, fleets roll forward).  History: v1 checksummed only the
/// body; v2 extended coverage to the type/request-id/length header fields
/// after the fault-injection battery showed a single bit flip in the type
/// field could relabel a frame as another valid type.
inline constexpr std::uint16_t kWireVersion = 2;

inline constexpr char kFrameMagic[4] = {'F', 'P', 'L', 'N'};
inline constexpr std::size_t kFrameHeaderSize = 4 + 2 + 2 + 8 + 4 + 8;

/// Default cap on a frame body.  A plan response carries the full
/// schedule (two doubles per segment, up to 2 m + 1 segments per core), so
/// the cap is generous; everything a client *sends* is a few hundred
/// bytes and servers may configure a much tighter inbound cap.
inline constexpr std::uint32_t kMaxBodyBytes = 8u << 20;

/// Everything that can cross the wire.  Values are a wire contract:
/// append, never renumber.
enum class FrameType : std::uint16_t {
  kPlanRequest = 1,   ///< client -> server: plan (or serve cached) one key
  kPlanResponse = 2,  ///< server -> client: the served plan
  kStatus = 3,        ///< server -> client: rejection/annotation + hint
  kHealth = 4,        ///< client -> server: empty body
  kHealthReply = 5,   ///< server -> client: HealthInfo
  kReady = 6,         ///< client -> server: empty body
  kReadyReply = 7,    ///< server -> client: ReadyInfo
  kDrain = 8,         ///< client -> server: begin graceful drain
  kDrainReply = 9,    ///< server -> client: drain acknowledged
  kGossip = 10,       ///< any node -> server: sender's membership view
  kGossipReply = 11,  ///< server -> sender: the merged membership view
  kHandoff = 12,      ///< shard -> shard: epoch-fenced plan-cache batch
  kHandoffReply = 13, ///< receiving shard -> sender: apply outcome
};

[[nodiscard]] bool frame_type_known(std::uint16_t raw) noexcept;

/// Raised by body decoders on any structural defect; the transport maps it
/// to a kStatus{kMalformed} reply and closes.
class MalformedFrameError : public ServeError {
 public:
  using ServeError::ServeError;
};

struct Frame {
  FrameType type = FrameType::kStatus;
  std::uint64_t request_id = 0;
  std::string body;
};

/// Encode a complete frame (header + checksummed body).
[[nodiscard]] std::string encode_frame(FrameType type,
                                       std::uint64_t request_id,
                                       const std::string& body);

// ---- incremental frame decoding -------------------------------------------

/// Streaming frame decoder: feed bytes as they arrive, pull frames (or one
/// terminal defect) out.  This is the single place header validation
/// happens — the server, the client, and the fuzz battery all run their
/// inbound bytes through it.  After the first defect the assembler is
/// poisoned: the stream cannot be trusted to be frame-aligned anymore, so
/// the connection must be closed after the best-effort Status reply.
class FrameAssembler {
 public:
  enum class Result {
    kNeedMore,  ///< no complete frame buffered yet
    kFrame,     ///< `frame` holds the next decoded frame
    kBad,       ///< terminal: `defect` names it, `reply` classifies it
  };

  explicit FrameAssembler(std::uint32_t max_body_bytes = kMaxBodyBytes);

  /// Append raw bytes from the peer.
  void feed(const char* data, std::size_t size);

  /// Try to decode the next frame out of the buffered bytes.
  [[nodiscard]] Result next(Frame* frame);

  /// After kBad: human-readable defect and the status code to answer with
  /// before closing (kMalformed, kUnsupportedVersion, or kTooLarge).
  [[nodiscard]] const std::string& defect() const { return defect_; }
  [[nodiscard]] StatusCode reply() const { return reply_; }

  /// Bytes buffered but not yet consumed (bounded by header + max body).
  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }

 private:
  [[nodiscard]] Result fail(StatusCode reply, std::string defect);

  std::uint32_t max_body_bytes_;
  std::string buffer_;
  std::string defect_;
  StatusCode reply_ = StatusCode::kOk;
  bool poisoned_ = false;
};

// ---- frame bodies ----------------------------------------------------------

/// kPlanRequest body.  Mirrors cache-key schema v3: the fingerprint pins
/// (model, levels, ambient); the explicit fields carry everything else
/// plan_key() hashes.  `deadline_s` is the client's *remaining* budget at
/// send time (< 0: none) — the server re-anchors it on its own clock and
/// the service propagates it into the planner's CancelToken.
struct WirePlanRequest {
  CacheKey platform_fp{};  ///< platform_fingerprint() of the client platform
  double t_max_c = 55.0;
  PlannerKind kind = PlannerKind::kAo;
  double deadline_s = -1.0;
  core::AoOptions ao{};
  core::PcoOptions pco{};  ///< pco.ao is authoritative for kPco requests
};

[[nodiscard]] std::string encode_plan_request(const WirePlanRequest& request);
/// Throws MalformedFrameError on any defect.
[[nodiscard]] WirePlanRequest decode_plan_request(const std::string& body);

/// kPlanResponse body: response metadata + the plan serialized through the
/// snapshot plan codec (bit-identical round trip by construction).
struct WirePlanResponse {
  bool cache_hit = false;
  bool degraded = false;
  double server_seconds = 0.0;  ///< submit -> response on the server clock
  ServedPlan plan;
};

[[nodiscard]] std::string encode_plan_response(const WirePlanResponse& r);
[[nodiscard]] WirePlanResponse decode_plan_response(const std::string& body);

/// kStatus body: one entry of the stable taxonomy plus the retry-after
/// hint (the EWMA backlog estimate for SHED, the breaker backoff for
/// BREAKER_OPEN, 0 otherwise) and a diagnostic message.
struct WireStatus {
  StatusCode code = StatusCode::kOk;
  double retry_after_s = 0.0;
  std::string message;
};

[[nodiscard]] std::string encode_status(const WireStatus& status);
[[nodiscard]] WireStatus decode_status(const std::string& body);

/// kHealthReply body: the service counters an operator dashboard needs,
/// plus the per-code rejection breakdown and the socket tier's own state.
struct HealthInfo {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t planned = 0;
  std::uint64_t fast_path_hits = 0;
  std::uint64_t cache_entries = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_lookups = 0;
  std::uint64_t snapshot_saves = 0;
  std::uint64_t snapshot_loads = 0;
  std::uint16_t load_state = 0;  ///< LoadState as stable u16
  std::uint8_t ready = 0;
  std::uint8_t draining = 0;
  std::uint64_t connections = 0;
  double ewma_plan_seconds = 0.0;
  double retry_after_hint_s = 0.0;
  /// Indexed by status_index(); includes the framing-layer codes the
  /// server counts itself on top of the service's breakdown.
  std::array<std::uint64_t, kStatusCodeCount> rejections_by_code{};
};

[[nodiscard]] std::string encode_health(const HealthInfo& info);
[[nodiscard]] HealthInfo decode_health(const std::string& body);

/// kReadyReply body.  `ready` flips true only after the warm-restore
/// attempt (successful or failed-to-cold-start) has finished — a load
/// balancer gates traffic on it so a restarted shard never serves cold
/// misses it is still about to warm away.
struct ReadyInfo {
  std::uint8_t ready = 0;
  std::uint8_t draining = 0;
  std::uint64_t warm_plans = 0;      ///< plans restored from the snapshot
  std::uint64_t load_failures = 0;   ///< corrupt/missing snapshot attempts
};

[[nodiscard]] std::string encode_ready(const ReadyInfo& info);
[[nodiscard]] ReadyInfo decode_ready(const std::string& body);

// ---- membership gossip -----------------------------------------------------

/// kGossip body: who is speaking (servers advertise their shard endpoint
/// and incarnation so the receiver can mark them alive first-hand; clients
/// send an empty endpoint) plus the sender's full membership view.
struct WireGossip {
  std::uint8_t sender_is_shard = 0;
  Endpoint sender;               ///< meaningful only when sender_is_shard
  std::uint64_t sender_incarnation = 0;
  MembershipView view;
};

[[nodiscard]] std::string encode_gossip(const WireGossip& gossip);
[[nodiscard]] WireGossip decode_gossip(const std::string& body);

/// kGossipReply body: the responder's identity plus its view *after*
/// merging the sender's — one round trip converges both tables.
struct WireGossipReply {
  Endpoint responder;
  std::uint64_t responder_incarnation = 0;
  MembershipView view;
};

[[nodiscard]] std::string encode_gossip_reply(const WireGossipReply& reply);
[[nodiscard]] WireGossipReply decode_gossip_reply(const std::string& body);

// ---- live cache handoff ----------------------------------------------------

/// kHandoff body: a batch of plan records (snapshot plan codec — the same
/// bytes a snapshot file or a PlanResponse carries) fenced by the sender's
/// membership epoch.  A receiver whose epoch is newer answers one Status
/// frame with kStaleEpoch and applies nothing: a partitioned former owner
/// can never clobber the new topology's entries.
struct WireHandoff {
  std::uint64_t epoch = 0;
  std::vector<ServedPlan> plans;
};

[[nodiscard]] std::string encode_handoff(const WireHandoff& handoff);
[[nodiscard]] WireHandoff decode_handoff(const std::string& body);

/// kHandoffReply body: what the receiving shard did with the batch.
/// Existing entries are never overwritten (`skipped_existing`) — a plan is
/// a pure function of its key, so the entry already there is the truth.
struct WireHandoffReply {
  std::uint64_t epoch = 0;  ///< receiver's epoch after adopting the fence
  std::uint64_t accepted = 0;
  std::uint64_t skipped_existing = 0;
};

[[nodiscard]] std::string encode_handoff_reply(const WireHandoffReply& r);
[[nodiscard]] WireHandoffReply decode_handoff_reply(const std::string& body);

/// FNV-1a over raw bytes (the same construction the snapshot file uses;
/// not a security boundary).
[[nodiscard]] std::uint64_t fnv1a_bytes(const std::string& bytes) noexcept;

/// The frame checksum: FNV-1a over the semantic header fields (type,
/// request id, body length, little-endian) followed by the body bytes.
[[nodiscard]] std::uint64_t frame_checksum(std::uint16_t type,
                                           std::uint64_t request_id,
                                           std::uint32_t body_size,
                                           const std::string& body) noexcept;

}  // namespace foscil::serve::net
