// Client library for the networked planning tier.
//
// A NetClient owns one blocking socket per shard endpoint (lazily
// connected, transparently reconnected) and routes every plan request by
// consistent hash of its 128-bit content key (serve/net/ring.hpp), so a
// fleet of clients keeps each shard's cache hot on a stable, disjoint key
// range.  Request semantics:
//
//   * deadlines — plan() anchors the caller's budget once, at entry; every
//     attempt (including waits between retries) draws from that budget,
//     and the wire carries the *remaining* budget so the server's
//     CancelToken expires in step with the caller;
//   * retries — plan lookups are idempotent (a plan is a pure function of
//     its key), so transport failures and retryable statuses (NOT_READY,
//     QUEUE_FULL, SHED, BREAKER_OPEN, STOPPING) back off exponentially
//     (bounded, budget-capped) and retry automatically.  Non-retryable
//     statuses (MALFORMED, PLATFORM_MISMATCH, PLANNER_FAILED, ...) throw
//     immediately — retrying cannot help.  Control operations (drain) are
//     never retried automatically;
//   * failover — within one retry round the client walks the key's ring
//     successor order, so when a shard dies mid-load its keys land on the
//     next live node while the rest of the fleet's routing is untouched;
//     the dead shard's socket is dropped and reconnected on demand once
//     it returns;
//   * membership (opt-in) — with membership_enabled the constructor's
//     endpoint list is only a *seed list*: the client gossips with the
//     shards (kGossip round trips driven by tick(), rate-limited inside
//     plan()), walks each member through alive -> suspect -> dead, and
//     rebuilds its routing ring whenever the membership epoch moves — so
//     a dead shard leaves the ring entirely and a joined or returned
//     shard enters it without reconfiguration.  The request path itself
//     is evidence: a served plan marks the shard alive, a transport
//     failure marks it suspect.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/platform.hpp"
#include "serve/net/membership.hpp"
#include "serve/net/ring.hpp"
#include "serve/net/wire.hpp"

namespace foscil::serve::net {

/// Final client-side failure: every eligible endpoint and retry was
/// exhausted (code carries the last rejection seen, kPlannerFailed for
/// pure transport failures), or a non-retryable status arrived.
class NetClientError : public ServeError {
 public:
  NetClientError(StatusCode code, const std::string& what)
      : ServeError(what), code_(code) {}
  [[nodiscard]] StatusCode code() const { return code_; }

 private:
  StatusCode code_;
};

struct ClientOptions {
  double connect_timeout_s = 1.0;
  /// Per-reply wait (also bounds each send).  The per-request deadline, if
  /// tighter, wins.
  double io_timeout_s = 10.0;
  /// Automatic retry rounds after the first attempt (idempotent plan
  /// lookups only).  Each round walks the full failover order.
  std::size_t max_retries = 4;
  double backoff_initial_s = 0.02;
  double backoff_max_s = 0.5;
  double backoff_multiplier = 2.0;
  /// Decorrelated jitter on retry backoff (sleep drawn uniformly from
  /// [initial, 3 * previous], capped at backoff_max_s).  A fleet of
  /// clients kicked by the same shard failure would otherwise retry in
  /// deterministic lockstep and re-arrive as a thundering herd.
  bool backoff_jitter = true;
  /// Jitter seed; 0 seeds from std::random_device (every client distinct),
  /// nonzero pins the sleep sequence for deterministic tests.
  std::uint64_t backoff_seed = 0;
  std::size_t ring_vnodes = 64;
  /// Inbound body cap (plan responses are the big frames).
  std::uint32_t max_body_bytes = kMaxBodyBytes;

  /// Treat the constructor endpoints as a membership seed list and keep a
  /// gossip-fed live ring (see class comment).  Off by default: static
  /// fleets keep the exact pre-membership behavior.
  bool membership_enabled = false;
  MembershipOptions membership{};
  /// Budget for one gossip probe round trip.
  double gossip_timeout_s = 0.25;

  void check() const;
};

struct ClientStats {
  std::uint64_t plans = 0;        ///< plan() calls that returned a plan
  std::uint64_t cache_hits = 0;   ///< ... served from a shard's cache
  std::uint64_t retries = 0;      ///< extra attempts beyond the first
  std::uint64_t failovers = 0;    ///< attempts on a non-owner endpoint
  std::uint64_t reconnects = 0;   ///< sockets (re)established
  std::uint64_t transport_errors = 0;
  std::uint64_t gossip_probes = 0;          ///< kGossip round trips tried
  std::uint64_t gossip_probe_failures = 0;  ///< ... that failed
  std::uint64_t ring_rebuilds = 0;          ///< routing ring rebuilt
  /// Status frames received, by code (statuses the retry loop absorbed
  /// and the terminal ones alike), indexed by status_index().
  std::array<std::uint64_t, kStatusCodeCount> statuses_by_code{};
};

/// Not thread-safe: one NetClient per client thread (they are cheap; the
/// expensive state is the server-side cache).
class NetClient {
 public:
  /// `platform` must equal the shards' platform — its fingerprint rides in
  /// every request and a mismatch is rejected server-side.
  NetClient(std::vector<Endpoint> endpoints, core::Platform platform,
            ClientOptions options = {});
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Plan (or fetch) one request.  `request.platform_fp` is overwritten
  /// with this client's platform fingerprint; `request.deadline_s` (>= 0)
  /// is the total budget for every attempt, wait, and retry.  Throws
  /// NetClientError when the budget, the retry allowance, or every
  /// endpoint is exhausted.
  [[nodiscard]] WirePlanResponse plan(WirePlanRequest request);

  /// The endpoint index plan() would try first for this request.
  [[nodiscard]] std::size_t route(const WirePlanRequest& request) const;

  /// Single-attempt control operations against one endpoint (never
  /// retried; throw NetClientError on failure).
  [[nodiscard]] HealthInfo health(std::size_t endpoint_index);
  [[nodiscard]] ReadyInfo ready(std::size_t endpoint_index);
  void drain(std::size_t endpoint_index);

  /// Block until endpoint reports ready (true) or the timeout passes
  /// (false).  Connection failures count as not-ready (the shard may be
  /// restarting); polls every `poll_interval_s`.
  [[nodiscard]] bool await_ready(std::size_t endpoint_index,
                                 double timeout_s,
                                 double poll_interval_s = 0.05);

  /// One membership round: gossip with every member due a probe, apply
  /// timeout transitions, rebuild the ring if the epoch moved.  No-op
  /// unless membership_enabled.  plan() calls this itself (rate-limited
  /// to the heartbeat interval), so an actively planning client needs no
  /// external driver; an idle one calls tick() to keep probing.
  void tick();

  /// Announce a shard (operator-driven join): the endpoint enters this
  /// client's table alive, is probed immediately for its incarnation, and
  /// propagates to the rest of the fleet through normal gossip.
  void join(const Endpoint& endpoint);

  [[nodiscard]] MembershipView membership_view() const;
  [[nodiscard]] std::uint64_t membership_epoch() const;
  /// Current ring index of `endpoint`; throws NetClientError when it is
  /// not in the ring (dead or never seen).
  [[nodiscard]] std::size_t index_of(const Endpoint& endpoint) const;

  [[nodiscard]] const HashRing& ring() const;
  [[nodiscard]] const ClientStats& stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace foscil::serve::net
