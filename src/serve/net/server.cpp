#include "serve/net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <future>
#include <iostream>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/contracts.hpp"

namespace foscil::serve::net {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Monotonic seconds for the membership table (same clock everywhere).
double mono_seconds() {
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

int millis_until(Clock::time_point deadline) {
  const double s = seconds_between(Clock::now(), deadline);
  if (s <= 0.0) return 0;
  return static_cast<int>(s * 1000.0) + 1;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// One readiness event, backend-agnostic.
struct IoEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool broken = false;  ///< HUP/ERR — close without ceremony
};

/// Readiness backend: epoll where available, poll(2) as the portable
/// fallback (selectable everywhere via ServerOptions::force_poll so the
/// fallback stays testable on Linux too).  Level-triggered in both
/// backends, so a partial read or write simply re-arms.
class Poller {
 public:
  explicit Poller(bool force_poll) {
#ifdef __linux__
    if (!force_poll) epoll_fd_ = ::epoll_create1(0);
#else
    (void)force_poll;
#endif
  }
  ~Poller() {
#ifdef __linux__
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
#endif
  }

  void add(int fd, bool want_read, bool want_write) {
    interest_[fd] = {want_read, want_write};
#ifdef __linux__
    if (epoll_fd_ >= 0) {
      epoll_event ev{};
      ev.events = events_of(want_read, want_write);
      ev.data.fd = fd;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    }
#endif
  }

  void update(int fd, bool want_read, bool want_write) {
    auto it = interest_.find(fd);
    if (it == interest_.end()) return;
    if (it->second.read == want_read && it->second.write == want_write) return;
    it->second = {want_read, want_write};
#ifdef __linux__
    if (epoll_fd_ >= 0) {
      epoll_event ev{};
      ev.events = events_of(want_read, want_write);
      ev.data.fd = fd;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
    }
#endif
  }

  void remove(int fd) {
    interest_.erase(fd);
#ifdef __linux__
    if (epoll_fd_ >= 0) ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
#endif
  }

  void wait(std::vector<IoEvent>& events, int timeout_ms) {
    events.clear();
#ifdef __linux__
    if (epoll_fd_ >= 0) {
      std::array<epoll_event, 64> raw{};
      const int n = ::epoll_wait(epoll_fd_, raw.data(),
                                 static_cast<int>(raw.size()), timeout_ms);
      for (int i = 0; i < n; ++i) {
        const epoll_event& e = raw[static_cast<std::size_t>(i)];
        IoEvent ev;
        ev.fd = e.data.fd;
        ev.readable = (e.events & EPOLLIN) != 0;
        ev.writable = (e.events & EPOLLOUT) != 0;
        ev.broken = (e.events & (EPOLLERR | EPOLLHUP)) != 0;
        events.push_back(ev);
      }
      return;
    }
#endif
    std::vector<pollfd> fds;
    fds.reserve(interest_.size());
    for (const auto& [fd, want] : interest_) {
      pollfd p{};
      p.fd = fd;
      p.events = static_cast<short>((want.read ? POLLIN : 0) |
                                    (want.write ? POLLOUT : 0));
      fds.push_back(p);
    }
    const int n = ::poll(fds.data(), fds.size(), timeout_ms);
    if (n <= 0) return;
    for (const pollfd& p : fds) {
      if (p.revents == 0) continue;
      IoEvent ev;
      ev.fd = p.fd;
      ev.readable = (p.revents & POLLIN) != 0;
      ev.writable = (p.revents & POLLOUT) != 0;
      ev.broken = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      events.push_back(ev);
    }
  }

 private:
  struct Interest {
    bool read = false;
    bool write = false;
  };

#ifdef __linux__
  static std::uint32_t events_of(bool want_read, bool want_write) {
    return (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  }
  int epoll_fd_ = -1;
#endif
  std::unordered_map<int, Interest> interest_;
};

// ---- blocking peer I/O for the handoff streamer ---------------------------
// The streamer runs on its own thread, so it uses plain deadline-bounded
// blocking sockets instead of threading through the event loop.

/// Connect to `peer` within `timeout_s`; returns a nonblocking fd or -1.
int dial_peer(const Endpoint& peer, double timeout_s) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(peer.port);
  if (::inet_pton(AF_INET, peer.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  set_nonblocking(fd);
  const int rc =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return -1;
  }
  if (rc != 0) {
    pollfd p{};
    p.fd = fd;
    p.events = POLLOUT;
    if (::poll(&p, 1, static_cast<int>(timeout_s * 1000.0) + 1) <= 0) {
      ::close(fd);
      return -1;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return -1;
    }
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool send_all_by(int fd, const std::string& bytes, Clock::time_point deadline) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const int ms = millis_until(deadline);
      if (ms <= 0) return false;
      pollfd p{};
      p.fd = fd;
      p.events = POLLOUT;
      if (::poll(&p, 1, ms) <= 0) return false;
      continue;
    }
    return false;
  }
  return true;
}

bool recv_frame_by(int fd, FrameAssembler& assembler, Frame* frame,
                   Clock::time_point deadline) {
  for (;;) {
    const FrameAssembler::Result result = assembler.next(frame);
    if (result == FrameAssembler::Result::kFrame) return true;
    if (result == FrameAssembler::Result::kBad) return false;
    const int ms = millis_until(deadline);
    if (ms <= 0) return false;
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    if (::poll(&p, 1, ms) <= 0) return false;
    char buf[16384];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      assembler.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return false;
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return false;
  }
}

}  // namespace

void ServerOptions::check() const {
  FOSCIL_EXPECTS(max_connections >= 1);
  FOSCIL_EXPECTS(max_in_flight_per_connection >= 1);
  FOSCIL_EXPECTS(max_body_bytes >= 1);
  FOSCIL_EXPECTS(max_body_bytes <= kMaxBodyBytes);
  FOSCIL_EXPECTS(max_outbound_bytes >= kFrameHeaderSize);
  FOSCIL_EXPECTS(read_idle_timeout_s > 0.0);
  FOSCIL_EXPECTS(write_stall_timeout_s > 0.0);
  FOSCIL_EXPECTS(ring_vnodes >= 1);
  FOSCIL_EXPECTS(handoff_batch_plans >= 1);
  FOSCIL_EXPECTS(handoff_io_timeout_s > 0.0);
  FOSCIL_EXPECTS(handoff_retry_interval_s > 0.0);
  membership.check();
}

struct PlanServer::Impl {
  Impl(PlanningService& svc, core::Platform plat, ServerOptions opts,
       std::atomic<bool>* ready_flag, std::atomic<bool>* draining_flag)
      : service(svc),
        platform(std::move(plat)),
        options(std::move(opts)),
        platform_fp(platform_fingerprint(platform)),
        poller(options.force_poll),
        ready(ready_flag),
        draining(draining_flag),
        membership(options.membership, {}, mono_seconds()) {}

  struct Pending {
    std::uint64_t request_id = 0;
    std::future<PlanResponse> future;
  };

  struct Connection {
    int fd = -1;
    FrameAssembler assembler;
    std::string out;
    std::deque<Pending> pending;
    Clock::time_point last_read{};
    Clock::time_point last_write_progress{};
    Clock::time_point partial_since{};
    bool has_partial = false;
    bool condemned = false;  ///< flush out, then close; never read again

    explicit Connection(std::uint32_t max_body) : assembler(max_body) {}
  };

  PlanningService& service;
  core::Platform platform;
  ServerOptions options;
  CacheKey platform_fp;
  Poller poller;
  std::atomic<bool>* ready;
  std::atomic<bool>* draining;

  int listen_fd = -1;
  int wake_read = -1;
  int wake_write = -1;
  std::unordered_map<int, Connection> conns;
  std::atomic<bool> stop{false};
  std::atomic<bool> drain_requested{false};
  std::atomic<std::size_t> open_connections{0};
  bool listener_closed = false;

  // Membership: the table is rumor- and contact-driven on the server (no
  // tick — see ServerOptions::membership).  `self_endpoint` is fixed at
  // listen(); `incarnation` at construction, so a restarted shard always
  // announces a strictly larger one.
  MembershipTable membership;
  Endpoint self_endpoint;
  /// Atomic: bumped by SWIM refutation on the event loop, read by the
  /// handoff streamer for its gossip hello.
  std::atomic<std::uint64_t> incarnation{fresh_incarnation()};

  // Handoff streamer: one long-lived worker, kicked whenever a merge grows
  // the live set.  It owns its own blocking sockets; it shares only the
  // membership table (mutexed), the cache (shard locks), and counters.
  std::thread handoff_thread;
  std::mutex handoff_mutex;
  std::condition_variable handoff_cv;
  bool handoff_pending = false;
  bool handoff_stop = false;
  /// Per-peer epoch whose entries were fully streamed (or were empty);
  /// streamer thread only.  A sweep skips converged peers, so the retry
  /// cadence costs nothing once the fleet is caught up.
  std::unordered_map<std::string, std::uint64_t> handoff_done_epoch;

  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> closed{0};
  std::atomic<std::uint64_t> shed_connections{0};
  std::atomic<std::uint64_t> frames_in{0};
  std::atomic<std::uint64_t> frames_out{0};
  std::atomic<std::uint64_t> malformed_closes{0};
  std::atomic<std::uint64_t> timeout_closes{0};
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> responses{0};
  std::atomic<std::uint64_t> drains{0};
  std::atomic<std::uint64_t> gossip_frames{0};
  std::atomic<std::uint64_t> handoff_batches_received{0};
  std::atomic<std::uint64_t> handoff_plans_received{0};
  std::atomic<std::uint64_t> handoff_plans_skipped{0};
  std::atomic<std::uint64_t> stale_handoff_rejections{0};
  std::atomic<std::uint64_t> handoff_batches_sent{0};
  std::atomic<std::uint64_t> handoff_plans_sent{0};
  std::atomic<std::uint64_t> handoff_send_failures{0};
  std::array<std::atomic<std::uint64_t>, kStatusCodeCount> statuses{};

  std::uint64_t warm_plans = 0;
  std::uint64_t warm_failures = 0;

  void wake() {
    if (wake_write < 0) return;
    const char byte = 'w';
    // Best-effort: a full pipe already guarantees a pending wake.
    [[maybe_unused]] const ssize_t n = ::write(wake_write, &byte, 1);
  }

  // ---- outbound -----------------------------------------------------------

  void enqueue_frame(Connection& conn, FrameType type,
                     std::uint64_t request_id, const std::string& body,
                     Clock::time_point now) {
    if (conn.out.empty()) conn.last_write_progress = now;
    conn.out += encode_frame(type, request_id, body);
    frames_out.fetch_add(1, std::memory_order_relaxed);
    poller.update(conn.fd, !conn.condemned, true);
  }

  void enqueue_status(Connection& conn, std::uint64_t request_id,
                      StatusCode code, double retry_after_s,
                      std::string message, Clock::time_point now) {
    statuses[status_index(code)].fetch_add(1, std::memory_order_relaxed);
    WireStatus status;
    status.code = code;
    status.retry_after_s = retry_after_s;
    status.message = std::move(message);
    enqueue_frame(conn, FrameType::kStatus, request_id, encode_status(status),
                  now);
  }

  void condemn(Connection& conn) {
    // The stream can no longer be trusted to be frame-aligned: flush the
    // best-effort diagnosis already buffered, then close.  Reading stops
    // immediately and in-flight answers are dropped (they have no valid
    // stream to land on).
    conn.condemned = true;
    conn.pending.clear();
    poller.update(conn.fd, false, true);
  }

  void close_connection(int fd) {
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    poller.remove(fd);
    ::close(fd);
    conns.erase(it);
    closed.fetch_add(1, std::memory_order_relaxed);
    open_connections.store(conns.size(), std::memory_order_relaxed);
  }

  // ---- accept -------------------------------------------------------------

  void accept_ready(Clock::time_point now) {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) return;  // EAGAIN, or a transient accept error: try later
      if (conns.size() >= options.max_connections) {
        shed_one(fd);
        continue;
      }
      set_nonblocking(fd);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto [it, inserted] =
          conns.emplace(fd, Connection(options.max_body_bytes));
      it->second.fd = fd;
      it->second.last_read = now;
      it->second.last_write_progress = now;
      poller.add(fd, true, false);
      accepted.fetch_add(1, std::memory_order_relaxed);
      open_connections.store(conns.size(), std::memory_order_relaxed);
    }
  }

  /// Over the connection cap: tell the peer why (single best-effort
  /// nonblocking send on the fresh socket) and close.
  void shed_one(int fd) {
    shed_connections.fetch_add(1, std::memory_order_relaxed);
    statuses[status_index(StatusCode::kShed)].fetch_add(
        1, std::memory_order_relaxed);
    WireStatus status;
    status.code = StatusCode::kShed;
    status.retry_after_s = 0.2;
    status.message = "connection limit reached";
    const std::string frame =
        encode_frame(FrameType::kStatus, 0, encode_status(status));
    set_nonblocking(fd);
    [[maybe_unused]] const ssize_t n =
        ::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
    ::close(fd);
  }

  // ---- inbound ------------------------------------------------------------

  /// Returns false when the connection must be closed now.
  bool handle_readable(Connection& conn, Clock::time_point now) {
    if (conn.condemned) return true;  // stopped reading already
    char buf[16384];
    for (;;) {
      const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn.last_read = now;
        conn.assembler.feed(buf, static_cast<std::size_t>(n));
        if (!process_frames(conn, now)) return true;  // condemned, flushing
        if (static_cast<std::size_t>(n) < sizeof(buf)) break;
        continue;
      }
      if (n == 0) return false;  // orderly peer close
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;  // hard socket error
    }
    // Slow-loris bookkeeping: a partial frame parked in the assembler
    // starts (or continues) the read-idle countdown.
    if (conn.assembler.buffered() > 0) {
      if (!conn.has_partial) {
        conn.has_partial = true;
        conn.partial_since = now;
      }
    } else {
      conn.has_partial = false;
    }
    return true;
  }

  /// Drain every complete frame out of the assembler.  Returns false once
  /// the connection has been condemned (stop touching the assembler).
  bool process_frames(Connection& conn, Clock::time_point now) {
    Frame frame;
    for (;;) {
      const FrameAssembler::Result result = conn.assembler.next(&frame);
      if (result == FrameAssembler::Result::kNeedMore) return true;
      if (result == FrameAssembler::Result::kBad) {
        malformed_closes.fetch_add(1, std::memory_order_relaxed);
        enqueue_status(conn, 0, conn.assembler.reply(), 0.0,
                       conn.assembler.defect(), now);
        condemn(conn);
        return false;
      }
      frames_in.fetch_add(1, std::memory_order_relaxed);
      if (!handle_frame(conn, frame, now)) return false;
    }
  }

  bool handle_frame(Connection& conn, const Frame& frame,
                    Clock::time_point now) {
    switch (frame.type) {
      case FrameType::kPlanRequest:
        handle_plan_request(conn, frame, now);
        return true;
      case FrameType::kHealth:
        enqueue_frame(conn, FrameType::kHealthReply, frame.request_id,
                      encode_health(health_info()), now);
        return true;
      case FrameType::kReady: {
        ReadyInfo info;
        info.ready = ready->load(std::memory_order_acquire) ? 1 : 0;
        info.draining = draining->load(std::memory_order_acquire) ? 1 : 0;
        info.warm_plans = warm_plans;
        info.load_failures = warm_failures;
        enqueue_frame(conn, FrameType::kReadyReply, frame.request_id,
                      encode_ready(info), now);
        return true;
      }
      case FrameType::kDrain:
        drains.fetch_add(1, std::memory_order_relaxed);
        enqueue_frame(conn, FrameType::kDrainReply, frame.request_id, "", now);
        drain_requested.store(true, std::memory_order_release);
        return true;
      case FrameType::kGossip:
        handle_gossip(conn, frame, now);
        return true;
      case FrameType::kHandoff:
        handle_handoff(conn, frame, now);
        return true;
      default:
        // A server-to-client frame arriving at the server means the peer
        // is not speaking the protocol; same terminal handling as garbage.
        malformed_closes.fetch_add(1, std::memory_order_relaxed);
        enqueue_status(conn, frame.request_id, StatusCode::kMalformed, 0.0,
                       "unexpected frame type for a server", now);
        condemn(conn);
        return false;
    }
  }

  void handle_plan_request(Connection& conn, const Frame& frame,
                           Clock::time_point now) {
    WirePlanRequest wire;
    try {
      wire = decode_plan_request(frame.body);
    } catch (const MalformedFrameError& error) {
      malformed_closes.fetch_add(1, std::memory_order_relaxed);
      enqueue_status(conn, frame.request_id, StatusCode::kMalformed, 0.0,
                     error.what(), now);
      condemn(conn);
      return;
    }
    if (!ready->load(std::memory_order_acquire)) {
      enqueue_status(conn, frame.request_id, StatusCode::kNotReady, 0.05,
                     "warming up", now);
      return;
    }
    if (draining->load(std::memory_order_acquire) ||
        drain_requested.load(std::memory_order_acquire)) {
      enqueue_status(conn, frame.request_id, StatusCode::kStopping, 0.1,
                     "draining", now);
      return;
    }
    if (!(wire.platform_fp == platform_fp)) {
      enqueue_status(conn, frame.request_id, StatusCode::kPlatformMismatch,
                     0.0, "platform fingerprint does not match this shard",
                     now);
      return;
    }
    if (wire.t_max_c <= platform.t_ambient_c) {
      // Semantic reject, not a framing defect: answer and keep the
      // connection (a well-formed stream stays trusted).  Rejecting here
      // keeps an impossible thermal budget from burning a worker and
      // poisoning the per-key breaker.
      enqueue_status(conn, frame.request_id, StatusCode::kMalformed, 0.0,
                     "t_max_c at or below ambient", now);
      return;
    }
    if (conn.pending.size() >= in_flight_cap()) {
      enqueue_status(conn, frame.request_id, StatusCode::kShed,
                     service.stats().retry_after_hint_s,
                     "per-connection in-flight limit", now);
      return;
    }

    PlanRequest request;
    request.platform = platform;
    request.t_max_c = wire.t_max_c;
    request.kind = wire.kind;
    request.ao = wire.ao;
    request.pco = wire.pco;
    request.deadline_s = wire.deadline_s;
    try {
      Pending pending;
      pending.request_id = frame.request_id;
      pending.future = service.submit(std::move(request));
      conn.pending.push_back(std::move(pending));
      requests.fetch_add(1, std::memory_order_relaxed);
    } catch (const std::exception& error) {
      enqueue_status(conn, frame.request_id, status_code_of(error),
                     retry_after_of(error), error.what(), now);
    }
  }

  void handle_gossip(Connection& conn, const Frame& frame,
                     Clock::time_point now) {
    WireGossip gossip;
    try {
      gossip = decode_gossip(frame.body);
    } catch (const MalformedFrameError& error) {
      malformed_closes.fetch_add(1, std::memory_order_relaxed);
      enqueue_status(conn, frame.request_id, StatusCode::kMalformed, 0.0,
                     error.what(), now);
      condemn(conn);
      return;
    }
    gossip_frames.fetch_add(1, std::memory_order_relaxed);
    const double mono_now = mono_seconds();
    bool live_changed = membership.merge(gossip.view, mono_now);
    if (gossip.sender_is_shard != 0)
      live_changed = membership.observe_alive(gossip.sender,
                                              gossip.sender_incarnation,
                                              mono_now) ||
                     live_changed;
    // SWIM refutation: a rumor declaring *this* shard suspect/dead at (or
    // past) its current incarnation would otherwise be irrefutable — death
    // at an incarnation is final, so a shard falsely condemned during a
    // partition could never rejoin the ring after the heal.  Answering
    // with a strictly larger incarnation outranks the rumor everywhere it
    // has spread.
    for (const MemberRecord& record : gossip.view.members) {
      if (record.endpoint != self_endpoint ||
          record.health == MemberHealth::kAlive)
        continue;
      const std::uint64_t current =
          incarnation.load(std::memory_order_relaxed);
      if (record.incarnation >= current) {
        incarnation.store(record.incarnation + 1, std::memory_order_relaxed);
        membership.set_self(self_endpoint, record.incarnation + 1);
      }
    }
    // A grown or changed live set may have moved key ranges off this
    // shard: wake the streamer to push the affected hot entries to their
    // new owner.
    if (live_changed) schedule_handoff();

    WireGossipReply reply;
    reply.responder = self_endpoint;
    reply.responder_incarnation =
        incarnation.load(std::memory_order_relaxed);
    reply.view = membership.view();
    enqueue_frame(conn, FrameType::kGossipReply, frame.request_id,
                  encode_gossip_reply(reply), now);
  }

  void handle_handoff(Connection& conn, const Frame& frame,
                      Clock::time_point now) {
    WireHandoff handoff;
    try {
      handoff = decode_handoff(frame.body);
    } catch (const MalformedFrameError& error) {
      malformed_closes.fetch_add(1, std::memory_order_relaxed);
      enqueue_status(conn, frame.request_id, StatusCode::kMalformed, 0.0,
                     error.what(), now);
      condemn(conn);
      return;
    }
    handoff_batches_received.fetch_add(1, std::memory_order_relaxed);
    // The epoch fence: a sender whose view of the topology is older than
    // ours is a stale owner (partitioned away across a membership change).
    // Nothing it streams may land — not even insert-if-absent, because an
    // absent key proves nothing about where that key now belongs.
    if (handoff.epoch < membership.epoch()) {
      stale_handoff_rejections.fetch_add(1, std::memory_order_relaxed);
      enqueue_status(conn, frame.request_id, StatusCode::kStaleEpoch, 0.0,
                     "handoff epoch " + std::to_string(handoff.epoch) +
                         " behind local epoch " +
                         std::to_string(membership.epoch()),
                     now);
      return;  // well-formed stream: the connection stays trusted
    }
    // Adopt the fence so our own later handoffs carry at least this epoch.
    membership.merge(MembershipView{handoff.epoch, {}}, mono_seconds());

    WireHandoffReply reply;
    for (ServedPlan& plan : handoff.plans) {
      if (service.insert_plan_if_absent(
              std::make_shared<const ServedPlan>(std::move(plan))))
        ++reply.accepted;
      else
        ++reply.skipped_existing;
    }
    handoff_plans_received.fetch_add(reply.accepted,
                                     std::memory_order_relaxed);
    handoff_plans_skipped.fetch_add(reply.skipped_existing,
                                    std::memory_order_relaxed);
    reply.epoch = membership.epoch();
    enqueue_frame(conn, FrameType::kHandoffReply, frame.request_id,
                  encode_handoff_reply(reply), now);
  }

  /// Per-connection admission shrinks with the service's overload ladder
  /// so a client fleet feels DEGRADED/SHED as early backpressure.
  std::size_t in_flight_cap() const {
    const std::size_t full = options.max_in_flight_per_connection;
    switch (service.load_state()) {
      case LoadState::kNormal:
        return full;
      case LoadState::kDegraded:
        return full >= 2 ? full / 2 : 1;
      case LoadState::kShed:
        return 1;
    }
    return full;
  }

  HealthInfo health_info() {
    const ServiceStats service_stats = service.stats();
    HealthInfo info;
    info.submitted = service_stats.submitted;
    info.completed = service_stats.completed;
    info.planned = service_stats.planned;
    info.fast_path_hits = service_stats.fast_path_hits;
    info.cache_entries = service_stats.cache.entries;
    info.cache_hits = service_stats.cache.hits;
    info.cache_lookups = service_stats.cache.lookups();
    info.snapshot_saves = service_stats.snapshot_saves;
    info.snapshot_loads = service_stats.snapshot_loads;
    info.load_state = static_cast<std::uint16_t>(service_stats.load_state);
    info.ready = ready->load(std::memory_order_acquire) ? 1 : 0;
    info.draining = draining->load(std::memory_order_acquire) ? 1 : 0;
    info.connections = conns.size();
    info.ewma_plan_seconds = service_stats.ewma_plan_seconds;
    info.retry_after_hint_s = service_stats.retry_after_hint_s;
    // The service's own rejection breakdown plus the framing-layer codes
    // only this tier can produce.
    info.rejections_by_code = service_stats.rejections_by_code;
    for (std::size_t i = 0; i < kStatusCodeCount; ++i)
      info.rejections_by_code[i] +=
          statuses[i].load(std::memory_order_relaxed);
    return info;
  }

  // ---- handoff streamer ---------------------------------------------------

  void start_handoff_thread() {
    if (!options.handoff_enabled || handoff_thread.joinable()) return;
    handoff_thread = std::thread([this] { handoff_loop(); });
  }

  void stop_handoff_thread() {
    {
      const std::lock_guard<std::mutex> lock(handoff_mutex);
      handoff_stop = true;
    }
    handoff_cv.notify_all();
    if (handoff_thread.joinable()) handoff_thread.join();
  }

  void schedule_handoff() {
    {
      const std::lock_guard<std::mutex> lock(handoff_mutex);
      handoff_pending = true;
    }
    handoff_cv.notify_all();
  }

  bool handoff_stopping() {
    const std::lock_guard<std::mutex> lock(handoff_mutex);
    return handoff_stop;
  }

  void handoff_loop() {
    const auto retry = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(options.handoff_retry_interval_s));
    std::unique_lock<std::mutex> lock(handoff_mutex);
    for (;;) {
      handoff_cv.wait_for(lock, retry,
                          [this] { return handoff_pending || handoff_stop; });
      if (handoff_stop) return;
      handoff_pending = false;
      lock.unlock();
      stream_handoffs();
      lock.lock();
    }
  }

  /// Push every cached plan whose ring owner (under the *current* live
  /// set) is another shard to that shard.  Batches are idempotent on the
  /// receiving side (insert-if-absent) and epoch-fenced, so re-running
  /// after any membership change — or on the retry sweep, when an earlier
  /// attempt failed — is always safe.
  void stream_handoffs() {
    const std::vector<Endpoint> live = membership.live_endpoints();
    if (live.size() < 2) return;
    std::size_t self_index = live.size();
    for (std::size_t i = 0; i < live.size(); ++i)
      if (live[i] == self_endpoint) self_index = i;
    if (self_index == live.size()) return;  // not in our own live view yet
    const HashRing ring(live, options.ring_vnodes);

    std::vector<std::vector<ServedPlan>> buckets(live.size());
    for (const auto& plan : service.cache().export_entries()) {
      const std::size_t owner = ring.owner(plan->key);
      if (owner != self_index) buckets[owner].push_back(*plan);
    }
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (i == self_index) continue;
      if (handoff_stopping()) return;
      // Skip peers already caught up to the current epoch: the sweep is
      // free once converged.  The epoch is captured *before* streaming so
      // a concurrent membership change forces another pass.
      const std::uint64_t epoch_before = membership.epoch();
      const std::string label = live[i].label();
      const auto done = handoff_done_epoch.find(label);
      if (done != handoff_done_epoch.end() && done->second == epoch_before)
        continue;
      if (buckets[i].empty() || send_handoff_to(live[i], buckets[i]))
        handoff_done_epoch[label] = epoch_before;
      else
        handoff_send_failures.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// One peer conversation: a gossip round trip first (converges both
  /// epochs, so the fence below carries max(ours, theirs)), then the plan
  /// batches.  Any defect — timeout, protocol surprise, a Status reply
  /// (STALE_EPOCH included) — abandons the peer; the next membership
  /// change retries from scratch.
  bool send_handoff_to(const Endpoint& peer,
                       const std::vector<ServedPlan>& plans) {
    const Clock::time_point deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               options.handoff_io_timeout_s));
    const int fd = dial_peer(peer, options.handoff_io_timeout_s);
    if (fd < 0) return false;

    FrameAssembler assembler;
    Frame reply;
    std::uint64_t request_id = 1;

    WireGossip hello;
    hello.sender_is_shard = 1;
    hello.sender = self_endpoint;
    hello.sender_incarnation = incarnation;
    hello.view = membership.view();
    if (!send_all_by(fd,
                     encode_frame(FrameType::kGossip, request_id,
                                  encode_gossip(hello)),
                     deadline) ||
        !recv_frame_by(fd, assembler, &reply, deadline) ||
        reply.type != FrameType::kGossipReply) {
      ::close(fd);
      return false;
    }
    try {
      membership.merge(decode_gossip_reply(reply.body).view, mono_seconds());
    } catch (const MalformedFrameError&) {
      ::close(fd);
      return false;
    }

    for (std::size_t offset = 0; offset < plans.size();
         offset += options.handoff_batch_plans) {
      const std::size_t count =
          std::min(options.handoff_batch_plans, plans.size() - offset);
      WireHandoff batch;
      batch.epoch = membership.epoch();
      batch.plans.assign(plans.begin() + static_cast<std::ptrdiff_t>(offset),
                         plans.begin() +
                             static_cast<std::ptrdiff_t>(offset + count));
      ++request_id;
      if (!send_all_by(fd,
                       encode_frame(FrameType::kHandoff, request_id,
                                    encode_handoff(batch)),
                       deadline) ||
          !recv_frame_by(fd, assembler, &reply, deadline) ||
          reply.type != FrameType::kHandoffReply) {
        ::close(fd);
        return false;
      }
      try {
        const WireHandoffReply outcome = decode_handoff_reply(reply.body);
        handoff_batches_sent.fetch_add(1, std::memory_order_relaxed);
        handoff_plans_sent.fetch_add(outcome.accepted,
                                     std::memory_order_relaxed);
      } catch (const MalformedFrameError&) {
        ::close(fd);
        return false;
      }
    }
    ::close(fd);
    return true;
  }

  // ---- completion and writes ---------------------------------------------

  void pump_futures(Clock::time_point now) {
    std::vector<int> overflowed;
    for (auto& [fd, conn] : conns) {
      for (auto it = conn.pending.begin(); it != conn.pending.end();) {
        if (it->future.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready) {
          ++it;
          continue;
        }
        const std::uint64_t request_id = it->request_id;
        try {
          const PlanResponse response = it->future.get();
          WirePlanResponse wire;
          wire.cache_hit = response.cache_hit;
          wire.degraded = response.plan->degraded;
          wire.server_seconds = response.total_seconds;
          wire.plan = *response.plan;
          enqueue_frame(conn, FrameType::kPlanResponse, request_id,
                        encode_plan_response(wire), now);
          responses.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::exception& error) {
          enqueue_status(conn, request_id, status_code_of(error),
                         retry_after_of(error), error.what(), now);
        }
        it = conn.pending.erase(it);
      }
      if (conn.out.size() > options.max_outbound_bytes)
        overflowed.push_back(fd);
    }
    for (const int fd : overflowed) {
      // A reader this slow would grow the buffer without bound; treat it
      // like any other stalled peer.
      timeout_closes.fetch_add(1, std::memory_order_relaxed);
      close_connection(fd);
    }
  }

  /// Returns false when the connection must be closed now.
  bool handle_writable(Connection& conn, Clock::time_point now) {
    while (!conn.out.empty()) {
      const ssize_t n =
          ::send(conn.fd, conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
      if (n > 0) {
        conn.out.erase(0, static_cast<std::size_t>(n));
        conn.last_write_progress = now;
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;  // hard socket error
    }
    if (conn.condemned) return false;  // diagnosis flushed; close
    poller.update(conn.fd, true, false);
    return true;
  }

  void enforce_timeouts(Clock::time_point now) {
    std::vector<int> expired;
    for (const auto& [fd, conn] : conns) {
      const bool read_stalled =
          conn.has_partial && seconds_between(conn.partial_since, now) >
                                  options.read_idle_timeout_s;
      const bool write_stalled =
          !conn.out.empty() &&
          seconds_between(conn.last_write_progress, now) >
              options.write_stall_timeout_s;
      const bool idle =
          options.idle_timeout_s > 0.0 && conn.pending.empty() &&
          conn.out.empty() &&
          seconds_between(conn.last_read, now) > options.idle_timeout_s;
      if (read_stalled || write_stalled || idle) expired.push_back(fd);
    }
    for (const int fd : expired) {
      timeout_closes.fetch_add(1, std::memory_order_relaxed);
      close_connection(fd);
    }
  }

  // ---- loop ---------------------------------------------------------------

  int loop_timeout_ms(bool drain_engaged) const {
    for (const auto& [fd, conn] : conns)
      if (!conn.pending.empty()) return 2;  // futures resolve off-loop
    if (drain_engaged) return 2;
    return 25;
  }

  void run_loop(const std::function<bool()>& external_drain) {
    FOSCIL_EXPECTS(listen_fd >= 0);  // listen() first

    // Warm-up sequencing: the socket is already open (peers connect and
    // wait in the listen backlog), the restore attempt runs, then READY
    // flips.  A corrupt or missing snapshot degrades to a cold start —
    // warm-up must never prevent serving.
    if (!options.manual_ready) {
      if (!options.warm_snapshot_path.empty()) {
        const std::size_t before = service.cache().size();
        try {
          service.load_snapshot_file(options.warm_snapshot_path);
          warm_plans = service.cache().size() - before;
        } catch (const SnapshotError& error) {
          ++warm_failures;
          std::cerr << "foscil-net: warm start failed (serving cold): "
                    << error.what() << "\n";
        }
      }
      ready->store(true, std::memory_order_release);
    }

    std::vector<IoEvent> events;
    bool drain_engaged = false;
    while (!stop.load(std::memory_order_acquire)) {
      if (!drain_engaged &&
          (drain_requested.load(std::memory_order_acquire) ||
           (external_drain && external_drain()))) {
        drain_engaged = true;
        draining->store(true, std::memory_order_release);
        if (!listener_closed) {
          poller.remove(listen_fd);
          ::close(listen_fd);
          listen_fd = -1;
          listener_closed = true;
        }
      }

      // Drain completion: nothing in flight, nothing left to flush.
      if (drain_engaged) {
        bool quiet = true;
        for (const auto& [fd, conn] : conns)
          if (!conn.pending.empty() || !conn.out.empty()) quiet = false;
        if (quiet) break;
      }

      poller.wait(events, loop_timeout_ms(drain_engaged));
      const Clock::time_point now = Clock::now();

      for (const IoEvent& event : events) {
        if (event.fd == wake_read) {
          char sink[64];
          while (::read(wake_read, sink, sizeof(sink)) > 0) {
          }
          continue;
        }
        if (event.fd == listen_fd && !listener_closed) {
          accept_ready(now);
          continue;
        }
        auto it = conns.find(event.fd);
        if (it == conns.end()) continue;
        if (event.broken) {
          close_connection(event.fd);
          continue;
        }
        bool alive = true;
        if (event.readable) alive = handle_readable(it->second, now);
        if (alive && (event.writable || !it->second.out.empty()))
          alive = handle_writable(it->second, now);
        if (!alive) close_connection(event.fd);
      }

      pump_futures(now);
      enforce_timeouts(now);
    }

    // Hard stop or drain complete: close everything still open.
    std::vector<int> fds;
    fds.reserve(conns.size());
    for (const auto& [fd, conn] : conns) fds.push_back(fd);
    for (const int fd : fds) close_connection(fd);
    if (!listener_closed && listen_fd >= 0) {
      poller.remove(listen_fd);
      ::close(listen_fd);
      listen_fd = -1;
      listener_closed = true;
    }

    // The drain contract ends with one snapshot flush so a planned restart
    // starts warm; a hard shutdown() skips it.  The flush is serialized
    // against any periodic flusher by the service's flush mutex.
    if (drain_engaged && !options.drain_snapshot_path.empty()) {
      try {
        service.save_snapshot_file(options.drain_snapshot_path);
      } catch (const SnapshotError& error) {
        std::cerr << "foscil-net: drain snapshot failed: " << error.what()
                  << "\n";
      }
    }
  }
};

PlanServer::PlanServer(PlanningService& service, core::Platform platform,
                       ServerOptions options)
    : impl_(std::make_unique<Impl>(service, std::move(platform),
                                   std::move(options), &ready_, &draining_)) {
  impl_->options.check();
  FOSCIL_EXPECTS(impl_->platform.model != nullptr);
}

PlanServer::~PlanServer() {
  shutdown();
  Impl& impl = *impl_;
  impl.stop_handoff_thread();
  for (auto& [fd, conn] : impl.conns) ::close(fd);
  impl.conns.clear();
  if (impl.listen_fd >= 0) ::close(impl.listen_fd);
  if (impl.wake_read >= 0) ::close(impl.wake_read);
  if (impl.wake_write >= 0) ::close(impl.wake_write);
}

std::uint16_t PlanServer::listen() {
  Impl& impl = *impl_;
  FOSCIL_EXPECTS(impl.listen_fd < 0);

  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0)
    throw ServeError("net server: cannot create wake pipe: " +
                     std::string(std::strerror(errno)));
  impl.wake_read = pipe_fds[0];
  impl.wake_write = pipe_fds[1];
  set_nonblocking(impl.wake_read);
  set_nonblocking(impl.wake_write);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    throw ServeError("net server: cannot create socket: " +
                     std::string(std::strerror(errno)));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(impl.options.listen_port);
  if (::inet_pton(AF_INET, impl.options.listen_host.c_str(),
                  &addr.sin_addr) != 1) {
    ::close(fd);
    throw ServeError("net server: bad listen host " +
                     impl.options.listen_host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw ServeError("net server: cannot bind " + impl.options.listen_host +
                     ":" + std::to_string(impl.options.listen_port) + ": " +
                     why);
  }
  if (::listen(fd, 128) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw ServeError("net server: cannot listen: " + why);
  }
  set_nonblocking(fd);

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw ServeError("net server: getsockname failed: " + why);
  }
  impl.listen_fd = fd;
  port_ = ntohs(bound.sin_port);

  impl.self_endpoint.host = impl.options.advertised_host.empty()
                                ? impl.options.listen_host
                                : impl.options.advertised_host;
  impl.self_endpoint.port = impl.options.advertised_port != 0
                                ? impl.options.advertised_port
                                : port_;
  impl.membership.set_self(impl.self_endpoint, impl.incarnation);
  impl.start_handoff_thread();

  impl.poller.add(impl.wake_read, true, false);
  impl.poller.add(impl.listen_fd, true, false);
  return port_;
}

void PlanServer::run(const std::function<bool()>& external_drain) {
  impl_->run_loop(external_drain);
}

void PlanServer::begin_drain() {
  impl_->drain_requested.store(true, std::memory_order_release);
  impl_->wake();
}

void PlanServer::shutdown() {
  impl_->stop.store(true, std::memory_order_release);
  impl_->wake();
}

void PlanServer::set_ready(bool ready) {
  ready_.store(ready, std::memory_order_release);
}

ServerStats PlanServer::stats() const {
  const Impl& impl = *impl_;
  ServerStats stats;
  stats.accepted = impl.accepted.load(std::memory_order_relaxed);
  stats.closed = impl.closed.load(std::memory_order_relaxed);
  stats.shed_connections =
      impl.shed_connections.load(std::memory_order_relaxed);
  stats.frames_in = impl.frames_in.load(std::memory_order_relaxed);
  stats.frames_out = impl.frames_out.load(std::memory_order_relaxed);
  stats.malformed_closes =
      impl.malformed_closes.load(std::memory_order_relaxed);
  stats.timeout_closes = impl.timeout_closes.load(std::memory_order_relaxed);
  stats.requests = impl.requests.load(std::memory_order_relaxed);
  stats.responses = impl.responses.load(std::memory_order_relaxed);
  stats.drains = impl.drains.load(std::memory_order_relaxed);
  stats.gossip_frames = impl.gossip_frames.load(std::memory_order_relaxed);
  stats.handoff_batches_received =
      impl.handoff_batches_received.load(std::memory_order_relaxed);
  stats.handoff_plans_received =
      impl.handoff_plans_received.load(std::memory_order_relaxed);
  stats.handoff_plans_skipped =
      impl.handoff_plans_skipped.load(std::memory_order_relaxed);
  stats.stale_handoff_rejections =
      impl.stale_handoff_rejections.load(std::memory_order_relaxed);
  stats.handoff_batches_sent =
      impl.handoff_batches_sent.load(std::memory_order_relaxed);
  stats.handoff_plans_sent =
      impl.handoff_plans_sent.load(std::memory_order_relaxed);
  stats.handoff_send_failures =
      impl.handoff_send_failures.load(std::memory_order_relaxed);
  stats.membership_epoch = impl.membership.epoch();
  for (std::size_t i = 0; i < kStatusCodeCount; ++i)
    stats.statuses_by_code[i] =
        impl.statuses[i].load(std::memory_order_relaxed);
  return stats;
}

std::size_t PlanServer::connection_count() const {
  return impl_->open_connections.load(std::memory_order_relaxed);
}

Endpoint PlanServer::advertised_endpoint() const {
  return impl_->self_endpoint;
}

std::uint64_t PlanServer::incarnation() const { return impl_->incarnation; }

MembershipView PlanServer::membership_view() const {
  return impl_->membership.view();
}

std::uint64_t PlanServer::membership_epoch() const {
  return impl_->membership.epoch();
}

}  // namespace foscil::serve::net
