// Single-threaded event-loop front end for the planning service.
//
// One thread multiplexes every connection with epoll (level-triggered;
// a portable poll(2) backend is selectable for non-Linux builds and for
// testing the fallback), while the PlanningService's worker pool does the
// actual planning — the loop only parses frames, submits requests, and
// flushes completed futures back out.  Robustness contract:
//
//   * every inbound byte runs through the strict FrameAssembler; a
//     malformed, oversized, version-skewed, or checksum-failing stream is
//     answered with one best-effort Status frame and closed — never
//     crashed on;
//   * slow-loris defense: a connection that keeps a partial frame
//     buffered longer than `read_idle_timeout_s`, or that stalls a
//     non-empty outbound buffer longer than `write_stall_timeout_s`, is
//     closed; fully idle connections (no in-flight work) are reaped after
//     `idle_timeout_s`;
//   * backpressure reaches the socket layer: beyond `max_connections`
//     new connections are shed with a Status{SHED}; the per-connection
//     in-flight cap shrinks with the service's overload ladder (full at
//     NORMAL, halved at DEGRADED, 1 at SHED), so a client fleet sees the
//     ladder instead of a silently growing queue;
//   * READY gates warm-up: with a `warm_snapshot_path` the server opens
//     its socket first, answers READY=false (and NOT_READY to plan
//     requests) until the snapshot restore attempt finishes, then flips
//     ready — a restarted shard never serves traffic it is about to warm
//     away;
//   * graceful drain: on a DRAIN frame (or an external drain signal such
//     as SIGTERM) the listener closes, new plan requests are answered
//     STOPPING, in-flight plans finish and flush, the snapshot (if
//     configured) is written once, and run() returns so the process can
//     exit 0.
#pragma once

#include <array>
#include <atomic>
#include <csignal>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/platform.hpp"
#include "serve/net/wire.hpp"
#include "serve/service.hpp"

namespace foscil::serve::net {

struct ServerOptions {
  std::string listen_host = "127.0.0.1";
  std::uint16_t listen_port = 0;  ///< 0 = ephemeral; port() reports actual
  /// Connection cap; connections beyond it are shed at accept.
  std::size_t max_connections = 256;
  /// In-flight plan requests per connection at NORMAL load (halved at
  /// DEGRADED, 1 at SHED).
  std::size_t max_in_flight_per_connection = 32;
  /// Cap on one inbound frame body.
  std::uint32_t max_body_bytes = 1u << 20;
  /// Cap on a connection's buffered outbound bytes; a reader slow enough
  /// to exceed it is closed (it would otherwise grow the buffer without
  /// bound).
  std::size_t max_outbound_bytes = 32u << 20;
  /// A partial inbound frame older than this closes the connection.
  double read_idle_timeout_s = 5.0;
  /// A non-empty outbound buffer making no progress for this long closes
  /// the connection.
  double write_stall_timeout_s = 5.0;
  /// A connection with no traffic and no in-flight work is reaped after
  /// this long.  <= 0: never.
  double idle_timeout_s = 0.0;
  /// Non-empty: restore this snapshot *after* the socket is listening and
  /// report READY only once the attempt finished (see class comment).
  std::string warm_snapshot_path;
  /// Non-empty: flush a final snapshot here on drain, before run()
  /// returns.
  std::string drain_snapshot_path;
  /// Testing hook: start not-ready and stay so until set_ready(true) —
  /// pins the NOT_READY path deterministically.
  bool manual_ready = false;
  /// Use the portable poll(2) backend even where epoll is available.
  bool force_poll = false;

  // ---- membership & live cache handoff (DESIGN.md §15) --------------------

  /// The shard identity this server advertises in gossip.  Empty host /
  /// zero port default to the listen host and the bound port; set them
  /// when the shard is reached through a different address than it binds
  /// (a fault-injection proxy, NAT, a load balancer).
  std::string advertised_host;
  std::uint16_t advertised_port = 0;
  /// Failure-detection timeouts for the server's membership table.  The
  /// server is a *passive* gossiper: it merges views and marks gossiping
  /// shards alive first-hand, but never ticks timeouts itself — clients
  /// drive probing, so a shard with no client traffic does not spuriously
  /// declare its peers dead.
  MembershipOptions membership{};
  /// Virtual nodes per endpoint when the handoff streamer rebuilds the
  /// ring; must match the clients' ring_vnodes or ownership disagrees.
  std::size_t ring_vnodes = 64;
  /// Stream hot cache entries to their new owner when the live set grows
  /// (a shard joined or returned).  Epoch-fenced on the receiving side.
  bool handoff_enabled = true;
  /// Plans per kHandoff frame.
  std::size_t handoff_batch_plans = 64;
  /// Connect/send/receive budget for one handoff peer conversation.
  double handoff_io_timeout_s = 5.0;
  /// The streamer sweeps at this cadence until every live peer has acked
  /// the current epoch, so a peer that was briefly unreachable still gets
  /// its entries (bounded staleness).  Converged sweeps send nothing.
  double handoff_retry_interval_s = 0.5;

  void check() const;
};

struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t closed = 0;
  std::uint64_t shed_connections = 0;   ///< over max_connections at accept
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t malformed_closes = 0;   ///< bad streams condemned
  std::uint64_t timeout_closes = 0;     ///< read/write/idle timeouts
  std::uint64_t requests = 0;           ///< plan requests admitted
  std::uint64_t responses = 0;          ///< plan responses delivered
  std::uint64_t drains = 0;             ///< DRAIN frames honored
  // Membership & handoff (zero unless the fleet gossips).
  std::uint64_t gossip_frames = 0;            ///< kGossip frames answered
  std::uint64_t handoff_batches_received = 0;
  std::uint64_t handoff_plans_received = 0;   ///< accepted (inserted)
  std::uint64_t handoff_plans_skipped = 0;    ///< key already cached
  std::uint64_t stale_handoff_rejections = 0; ///< epoch fence fired
  std::uint64_t handoff_batches_sent = 0;
  std::uint64_t handoff_plans_sent = 0;       ///< accepted by the peer
  std::uint64_t handoff_send_failures = 0;    ///< peer conversations failed
  std::uint64_t membership_epoch = 0;         ///< gauge, not a counter
  /// Status frames sent, by code (framing defects, shed, not-ready, and
  /// every service rejection relayed to a client), indexed by
  /// status_index().
  std::array<std::uint64_t, kStatusCodeCount> statuses_by_code{};
};

/// The event loop.  listen() then run() from one thread; begin_drain(),
/// shutdown(), set_ready(), stats(), and the observers are safe from any
/// thread (and begin_drain/shutdown from a signal-adjacent context — they
/// only set atomics and write one byte to a wake pipe).
class PlanServer {
 public:
  PlanServer(PlanningService& service, core::Platform platform,
             ServerOptions options = {});
  ~PlanServer();

  PlanServer(const PlanServer&) = delete;
  PlanServer& operator=(const PlanServer&) = delete;

  /// Bind + listen.  Throws ServeError on socket failure.  Returns the
  /// bound port (resolves an ephemeral request).
  std::uint16_t listen();

  /// Run the event loop until drained or shut down.  `external_drain` is
  /// polled every loop iteration (when set) so a SIGTERM flag can trigger
  /// the same graceful drain a DRAIN frame does.
  void run(const std::function<bool()>& external_drain = {});

  /// Begin graceful drain: stop accepting, answer STOPPING to new plan
  /// requests, let in-flight work finish and flush, snapshot, return.
  void begin_drain();

  /// Hard stop: run() returns as soon as the loop notices (in-flight
  /// futures are abandoned to the service, connections closed).
  void shutdown();

  void set_ready(bool ready);

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] bool ready() const {
    return ready_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }
  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] std::size_t connection_count() const;

  /// The shard identity gossiped to peers (valid after listen()).
  [[nodiscard]] Endpoint advertised_endpoint() const;
  /// This process's incarnation (fresh per construction; a restart always
  /// outranks every record of the former life).
  [[nodiscard]] std::uint64_t incarnation() const;
  [[nodiscard]] MembershipView membership_view() const;
  [[nodiscard]] std::uint64_t membership_epoch() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::uint16_t port_ = 0;
  std::atomic<bool> ready_{false};
  std::atomic<bool> draining_{false};
};

}  // namespace foscil::serve::net
