#include "serve/net/wire.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "serve/snapshot.hpp"
#include "sim/modal.hpp"

namespace foscil::serve::net {

namespace {

std::uint64_t double_bits(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) {
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

/// Little-endian appender for frame bodies (and headers).
class Writer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) {
    for (int i = 0; i < 2; ++i)
      bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
  void f64(double v) { u64(double_bits(v)); }
  void str(const std::string& s) {
    u64(s.size());
    bytes_.append(s);
  }
  void raw(const std::string& s) { bytes_.append(s); }

  [[nodiscard]] std::string take() { return std::move(bytes_); }
  [[nodiscard]] const std::string& bytes() const { return bytes_; }

 private:
  std::string bytes_;
};

/// Bounds-checked cursor over an untrusted body.  Every read is checked
/// against the bytes remaining before it happens; a length field is never
/// trusted until it has been checked.  Overruns and value-domain defects
/// throw MalformedFrameError naming the defect.
class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }
  std::uint16_t u16() {
    need(2);
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i)
      v = static_cast<std::uint16_t>(
          v | static_cast<std::uint16_t>(
                  static_cast<unsigned char>(bytes_[pos_ + i]))
                  << (8 * i));
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    pos_ += 8;
    return v;
  }
  double f64() { return bits_double(u64()); }
  /// A double that must be finite (wire values feeding the planners; a NaN
  /// or infinity here would poison the numerics or the cache key).
  double finite() {
    const double v = f64();
    if (!std::isfinite(v)) fail("non-finite floating-point field");
    return v;
  }
  std::string str(std::uint64_t max_len) {
    const std::uint64_t n = u64();
    if (n > max_len) fail("string length " + std::to_string(n) + " over cap");
    need(n);
    std::string s(bytes_.data() + pos_, static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }
  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) fail("boolean field holds " + std::to_string(v));
    return v == 1;
  }

  void expect_exhausted() const {
    if (pos_ != bytes_.size())
      fail(std::to_string(bytes_.size() - pos_) +
           " trailing bytes after body");
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw MalformedFrameError("malformed frame body: " + what);
  }

 private:
  void need(std::uint64_t n) const {
    if (n > bytes_.size() - pos_)
      fail("truncated body (needed " + std::to_string(n) + " bytes at " +
           std::to_string(pos_) + ")");
  }

  const std::string& bytes_;
  std::size_t pos_ = 0;
};

constexpr std::uint64_t kMaxMessageBytes = 4096;  ///< diagnostic strings
constexpr std::uint64_t kMaxHostBytes = 253;      ///< RFC 1035 name bound
constexpr std::uint64_t kMaxMembers = 1024;       ///< gossip view cap
constexpr std::uint64_t kMaxHandoffPlans = 4096;  ///< one batch's plan cap

void write_endpoint(Writer& w, const Endpoint& endpoint) {
  w.str(endpoint.host);
  w.u16(endpoint.port);
}

Endpoint read_endpoint(Reader& r) {
  Endpoint endpoint;
  endpoint.host = r.str(kMaxHostBytes);
  endpoint.port = r.u16();
  return endpoint;
}

void write_view(Writer& w, const MembershipView& view) {
  w.u64(view.epoch);
  w.u64(view.members.size());
  for (const MemberRecord& member : view.members) {
    write_endpoint(w, member.endpoint);
    w.u8(static_cast<std::uint8_t>(member.health));
    w.u64(member.incarnation);
  }
}

MembershipView read_view(Reader& r) {
  MembershipView view;
  view.epoch = r.u64();
  const std::uint64_t count = r.u64();
  if (count > kMaxMembers)
    r.fail("membership view of " + std::to_string(count) + " members");
  view.members.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    MemberRecord member;
    member.endpoint = read_endpoint(r);
    const std::uint8_t health = r.u8();
    if (health > static_cast<std::uint8_t>(MemberHealth::kDead))
      r.fail("member health holds " + std::to_string(health));
    member.health = static_cast<MemberHealth>(health);
    member.incarnation = r.u64();
    view.members.push_back(std::move(member));
  }
  return view;
}

}  // namespace

std::uint64_t fnv1a_bytes(const std::string& bytes) noexcept {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

bool frame_type_known(std::uint16_t raw) noexcept {
  return raw >= static_cast<std::uint16_t>(FrameType::kPlanRequest) &&
         raw <= static_cast<std::uint16_t>(FrameType::kHandoffReply);
}

std::uint64_t frame_checksum(std::uint16_t type, std::uint64_t request_id,
                             std::uint32_t body_size,
                             const std::string& body) noexcept {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t value, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      h ^= (value >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  mix(type, 2);
  mix(request_id, 8);
  mix(body_size, 4);
  for (const char c : body) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string encode_frame(FrameType type, std::uint64_t request_id,
                         const std::string& body) {
  FOSCIL_EXPECTS(body.size() <= kMaxBodyBytes);
  Writer w;
  w.raw(std::string(kFrameMagic, sizeof(kFrameMagic)));
  w.u16(kWireVersion);
  const std::uint16_t raw_type = static_cast<std::uint16_t>(type);
  w.u16(raw_type);
  w.u64(request_id);
  w.u32(static_cast<std::uint32_t>(body.size()));
  w.u64(frame_checksum(raw_type, request_id,
                       static_cast<std::uint32_t>(body.size()), body));
  w.raw(body);
  return w.take();
}

// ---- FrameAssembler --------------------------------------------------------

FrameAssembler::FrameAssembler(std::uint32_t max_body_bytes)
    : max_body_bytes_(max_body_bytes) {}

void FrameAssembler::feed(const char* data, std::size_t size) {
  if (poisoned_) return;  // the stream is already condemned
  buffer_.append(data, size);
}

FrameAssembler::Result FrameAssembler::fail(StatusCode reply,
                                            std::string defect) {
  poisoned_ = true;
  reply_ = reply;
  defect_ = std::move(defect);
  buffer_.clear();
  return Result::kBad;
}

FrameAssembler::Result FrameAssembler::next(Frame* frame) {
  FOSCIL_EXPECTS(frame != nullptr);
  if (poisoned_) return Result::kBad;
  if (buffer_.size() < kFrameHeaderSize) return Result::kNeedMore;

  // Header fields, validated in layout order so the defect reported is the
  // first one on the wire.  The header is only consumed once the whole
  // frame (header + body) is buffered.
  if (std::memcmp(buffer_.data(), kFrameMagic, sizeof(kFrameMagic)) != 0)
    return fail(StatusCode::kMalformed, "bad frame magic");

  const auto byte_at = [&](std::size_t i) {
    return static_cast<std::uint64_t>(
        static_cast<unsigned char>(buffer_[i]));
  };
  const auto read_u16 = [&](std::size_t at) {
    return static_cast<std::uint16_t>(byte_at(at) | (byte_at(at + 1) << 8));
  };
  const auto read_u32 = [&](std::size_t at) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(byte_at(at + static_cast<std::size_t>(i)))
           << (8 * i);
    return v;
  };
  const auto read_u64 = [&](std::size_t at) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= byte_at(at + static_cast<std::size_t>(i)) << (8 * i);
    return v;
  };

  const std::uint16_t version = read_u16(4);
  if (version != kWireVersion)
    return fail(StatusCode::kUnsupportedVersion,
                "protocol version " + std::to_string(version) +
                    " (this build speaks " + std::to_string(kWireVersion) +
                    ")");
  const std::uint16_t raw_type = read_u16(6);
  if (!frame_type_known(raw_type))
    return fail(StatusCode::kMalformed,
                "unknown frame type " + std::to_string(raw_type));
  const std::uint64_t request_id = read_u64(8);
  const std::uint32_t body_size = read_u32(16);
  if (body_size > max_body_bytes_)
    return fail(StatusCode::kTooLarge,
                "declared body of " + std::to_string(body_size) +
                    " bytes exceeds the " + std::to_string(max_body_bytes_) +
                    "-byte cap");
  const std::uint64_t declared_checksum = read_u64(20);

  if (buffer_.size() < kFrameHeaderSize + body_size) return Result::kNeedMore;

  std::string body = buffer_.substr(kFrameHeaderSize, body_size);
  if (frame_checksum(raw_type, request_id, body_size, body) !=
      declared_checksum)
    return fail(StatusCode::kMalformed, "frame checksum mismatch");

  buffer_.erase(0, kFrameHeaderSize + body_size);
  frame->type = static_cast<FrameType>(raw_type);
  frame->request_id = request_id;
  frame->body = std::move(body);
  return Result::kFrame;
}

// ---- plan request ----------------------------------------------------------

std::string encode_plan_request(const WirePlanRequest& request) {
  Writer w;
  w.u64(request.platform_fp.hi);
  w.u64(request.platform_fp.lo);
  w.f64(request.t_max_c);
  w.u8(request.kind == PlannerKind::kPco ? 1 : 0);
  w.f64(request.deadline_s);
  const core::AoOptions& ao =
      request.kind == PlannerKind::kPco ? request.pco.ao : request.ao;
  w.f64(ao.base_period);
  w.f64(ao.transition_overhead);
  w.f64(ao.t_unit_fraction);
  w.u32(static_cast<std::uint32_t>(ao.max_m));
  w.u32(static_cast<std::uint32_t>(ao.m_search_patience));
  w.u8(static_cast<std::uint8_t>(ao.tpt_policy));
  w.u8(static_cast<std::uint8_t>(ao.mode_choice));
  w.f64(ao.t_max_margin);
  w.u8(static_cast<std::uint8_t>(ao.eval_engine));
  if (request.kind == PlannerKind::kPco) {
    w.u32(static_cast<std::uint32_t>(request.pco.phase_grid));
    w.u32(static_cast<std::uint32_t>(request.pco.phase_rounds));
    w.u32(static_cast<std::uint32_t>(request.pco.peak_samples));
    w.u32(static_cast<std::uint32_t>(request.pco.final_peak_samples));
  }
  return w.take();
}

WirePlanRequest decode_plan_request(const std::string& body) {
  Reader r(body);
  WirePlanRequest request;
  request.platform_fp.hi = r.u64();
  request.platform_fp.lo = r.u64();
  request.t_max_c = r.finite();
  const std::uint8_t kind = r.u8();
  if (kind > 1)
    r.fail("planner kind holds " + std::to_string(kind));
  request.kind = kind == 1 ? PlannerKind::kPco : PlannerKind::kAo;
  request.deadline_s = r.f64();
  if (std::isnan(request.deadline_s))
    r.fail("NaN deadline");

  core::AoOptions ao;
  ao.base_period = r.finite();
  if (!(ao.base_period > 0.0)) r.fail("non-positive base period");
  ao.transition_overhead = r.finite();
  if (ao.transition_overhead < 0.0) r.fail("negative transition overhead");
  ao.t_unit_fraction = r.finite();
  if (!(ao.t_unit_fraction > 0.0)) r.fail("non-positive t_unit fraction");
  const std::uint32_t max_m = r.u32();
  if (max_m == 0 || max_m > (1u << 24)) r.fail("m-search cap out of range");
  ao.max_m = static_cast<int>(max_m);
  const std::uint32_t patience = r.u32();
  if (patience == 0 || patience > (1u << 24))
    r.fail("m-search patience out of range");
  ao.m_search_patience = static_cast<int>(patience);
  const std::uint8_t tpt = r.u8();
  if (tpt > static_cast<std::uint8_t>(core::TptPolicy::kHottestCore))
    r.fail("TPT policy holds " + std::to_string(tpt));
  ao.tpt_policy = static_cast<core::TptPolicy>(tpt);
  const std::uint8_t mode = r.u8();
  if (mode > static_cast<std::uint8_t>(core::ModeChoice::kExtremes))
    r.fail("mode choice holds " + std::to_string(mode));
  ao.mode_choice = static_cast<core::ModeChoice>(mode);
  ao.t_max_margin = r.finite();
  if (ao.t_max_margin < 0.0) r.fail("negative T_max margin");
  const std::uint8_t engine = r.u8();
  if (engine > static_cast<std::uint8_t>(sim::EvalEngine::kModal))
    r.fail("eval engine holds " + std::to_string(engine));
  ao.eval_engine = static_cast<sim::EvalEngine>(engine);

  if (request.kind == PlannerKind::kAo) {
    request.ao = ao;
  } else {
    request.pco.ao = ao;
    const auto bounded = [&](const char* what) {
      const std::uint32_t v = r.u32();
      if (v == 0 || v > (1u << 20))
        r.fail(std::string(what) + " out of range");
      return static_cast<int>(v);
    };
    request.pco.phase_grid = bounded("phase grid");
    request.pco.phase_rounds = bounded("phase rounds");
    request.pco.peak_samples = bounded("peak samples");
    request.pco.final_peak_samples = bounded("final peak samples");
  }
  r.expect_exhausted();
  return request;
}

// ---- plan response ---------------------------------------------------------

std::string encode_plan_response(const WirePlanResponse& response) {
  Writer w;
  w.u8(response.cache_hit ? 1 : 0);
  w.u8(response.degraded ? 1 : 0);
  w.f64(response.server_seconds);
  w.str(encode_plan_bytes(response.plan));
  return w.take();
}

WirePlanResponse decode_plan_response(const std::string& body) {
  Reader r(body);
  WirePlanResponse response;
  response.cache_hit = r.boolean();
  response.degraded = r.boolean();
  response.server_seconds = r.f64();
  const std::string plan_bytes = r.str(kMaxBodyBytes);
  r.expect_exhausted();
  try {
    response.plan = decode_plan_bytes(plan_bytes, "wire plan");
  } catch (const SnapshotError& error) {
    throw MalformedFrameError(error.what());
  }
  return response;
}

// ---- status ----------------------------------------------------------------

std::string encode_status(const WireStatus& status) {
  Writer w;
  w.u16(static_cast<std::uint16_t>(status.code));
  w.f64(status.retry_after_s);
  w.str(status.message.substr(
      0, std::min<std::size_t>(status.message.size(), kMaxMessageBytes)));
  return w.take();
}

WireStatus decode_status(const std::string& body) {
  Reader r(body);
  WireStatus status;
  const std::uint16_t code = r.u16();
  if (code >= kStatusCodeCount)
    r.fail("status code holds " + std::to_string(code));
  status.code = static_cast<StatusCode>(code);
  status.retry_after_s = r.f64();
  if (std::isnan(status.retry_after_s) || status.retry_after_s < 0.0)
    r.fail("invalid retry-after hint");
  status.message = r.str(kMaxMessageBytes);
  r.expect_exhausted();
  return status;
}

// ---- health ----------------------------------------------------------------

std::string encode_health(const HealthInfo& info) {
  Writer w;
  w.u64(info.submitted);
  w.u64(info.completed);
  w.u64(info.planned);
  w.u64(info.fast_path_hits);
  w.u64(info.cache_entries);
  w.u64(info.cache_hits);
  w.u64(info.cache_lookups);
  w.u64(info.snapshot_saves);
  w.u64(info.snapshot_loads);
  w.u16(info.load_state);
  w.u8(info.ready);
  w.u8(info.draining);
  w.u64(info.connections);
  w.f64(info.ewma_plan_seconds);
  w.f64(info.retry_after_hint_s);
  w.u64(kStatusCodeCount);
  for (const std::uint64_t count : info.rejections_by_code) w.u64(count);
  return w.take();
}

HealthInfo decode_health(const std::string& body) {
  Reader r(body);
  HealthInfo info;
  info.submitted = r.u64();
  info.completed = r.u64();
  info.planned = r.u64();
  info.fast_path_hits = r.u64();
  info.cache_entries = r.u64();
  info.cache_hits = r.u64();
  info.cache_lookups = r.u64();
  info.snapshot_saves = r.u64();
  info.snapshot_loads = r.u64();
  info.load_state = r.u16();
  if (info.load_state > 2) r.fail("load state holds " +
                                  std::to_string(info.load_state));
  info.ready = r.boolean() ? 1 : 0;
  info.draining = r.boolean() ? 1 : 0;
  info.connections = r.u64();
  info.ewma_plan_seconds = r.f64();
  info.retry_after_hint_s = r.f64();
  // Forward-compatible within a protocol version: a peer that appends new
  // codes sends a larger count; the decoder keeps the ones it knows.
  const std::uint64_t codes = r.u64();
  if (codes > 4096) r.fail("status-code count " + std::to_string(codes));
  for (std::uint64_t i = 0; i < codes; ++i) {
    const std::uint64_t count = r.u64();
    if (i < kStatusCodeCount) info.rejections_by_code[i] = count;
  }
  r.expect_exhausted();
  return info;
}

// ---- gossip ----------------------------------------------------------------

std::string encode_gossip(const WireGossip& gossip) {
  Writer w;
  w.u8(gossip.sender_is_shard);
  write_endpoint(w, gossip.sender);
  w.u64(gossip.sender_incarnation);
  write_view(w, gossip.view);
  return w.take();
}

WireGossip decode_gossip(const std::string& body) {
  Reader r(body);
  WireGossip gossip;
  gossip.sender_is_shard = r.boolean() ? 1 : 0;
  gossip.sender = read_endpoint(r);
  gossip.sender_incarnation = r.u64();
  gossip.view = read_view(r);
  r.expect_exhausted();
  return gossip;
}

std::string encode_gossip_reply(const WireGossipReply& reply) {
  Writer w;
  write_endpoint(w, reply.responder);
  w.u64(reply.responder_incarnation);
  write_view(w, reply.view);
  return w.take();
}

WireGossipReply decode_gossip_reply(const std::string& body) {
  Reader r(body);
  WireGossipReply reply;
  reply.responder = read_endpoint(r);
  reply.responder_incarnation = r.u64();
  reply.view = read_view(r);
  r.expect_exhausted();
  return reply;
}

// ---- handoff ---------------------------------------------------------------

std::string encode_handoff(const WireHandoff& handoff) {
  FOSCIL_EXPECTS(handoff.plans.size() <= kMaxHandoffPlans);
  Writer w;
  w.u64(handoff.epoch);
  w.u64(handoff.plans.size());
  for (const ServedPlan& plan : handoff.plans)
    w.str(encode_plan_bytes(plan));
  return w.take();
}

WireHandoff decode_handoff(const std::string& body) {
  Reader r(body);
  WireHandoff handoff;
  handoff.epoch = r.u64();
  const std::uint64_t count = r.u64();
  if (count > kMaxHandoffPlans)
    r.fail("handoff batch of " + std::to_string(count) + " plans");
  handoff.plans.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string plan_bytes = r.str(kMaxBodyBytes);
    try {
      handoff.plans.push_back(
          decode_plan_bytes(plan_bytes, "handoff plan"));
    } catch (const SnapshotError& error) {
      throw MalformedFrameError(error.what());
    }
  }
  r.expect_exhausted();
  return handoff;
}

std::string encode_handoff_reply(const WireHandoffReply& reply) {
  Writer w;
  w.u64(reply.epoch);
  w.u64(reply.accepted);
  w.u64(reply.skipped_existing);
  return w.take();
}

WireHandoffReply decode_handoff_reply(const std::string& body) {
  Reader r(body);
  WireHandoffReply reply;
  reply.epoch = r.u64();
  reply.accepted = r.u64();
  reply.skipped_existing = r.u64();
  r.expect_exhausted();
  return reply;
}

// ---- ready -----------------------------------------------------------------

std::string encode_ready(const ReadyInfo& info) {
  Writer w;
  w.u8(info.ready);
  w.u8(info.draining);
  w.u64(info.warm_plans);
  w.u64(info.load_failures);
  return w.take();
}

ReadyInfo decode_ready(const std::string& body) {
  Reader r(body);
  ReadyInfo info;
  info.ready = r.boolean() ? 1 : 0;
  info.draining = r.boolean() ? 1 : 0;
  info.warm_plans = r.u64();
  info.load_failures = r.u64();
  r.expect_exhausted();
  return info;
}

}  // namespace foscil::serve::net
