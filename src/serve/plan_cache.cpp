#include "serve/plan_cache.hpp"

#include <bit>

namespace foscil::serve {

namespace {

[[nodiscard]] bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

[[nodiscard]] bool schedules_bit_identical(const sched::PeriodicSchedule& a,
                                           const sched::PeriodicSchedule& b) {
  if (a.num_cores() != b.num_cores()) return false;
  if (!bits_equal(a.period(), b.period())) return false;
  for (std::size_t core = 0; core < a.num_cores(); ++core) {
    const std::vector<sched::Segment>& sa = a.core_segments(core);
    const std::vector<sched::Segment>& sb = b.core_segments(core);
    if (sa.size() != sb.size()) return false;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      if (!bits_equal(sa[i].duration, sb[i].duration)) return false;
      if (!bits_equal(sa[i].voltage, sb[i].voltage)) return false;
    }
  }
  return true;
}

}  // namespace

bool plans_bit_identical(const core::SchedulerResult& a,
                         const core::SchedulerResult& b) {
  return a.scheduler == b.scheduler && a.feasible == b.feasible &&
         bits_equal(a.throughput, b.throughput) &&
         bits_equal(a.peak_rise, b.peak_rise) &&
         bits_equal(a.peak_celsius, b.peak_celsius) && a.m == b.m &&
         a.evaluations == b.evaluations &&
         schedules_bit_identical(a.schedule, b.schedule);
}

PlanCache::PlanCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity) {
  FOSCIL_EXPECTS(capacity >= 1);
  FOSCIL_EXPECTS(shards >= 1);
  // Power-of-two shard count (rounded down, clamped by capacity) keeps the
  // shard selector a mask on hash bits the per-shard maps do not use.
  std::size_t count = std::min(shards, capacity);
  count = std::size_t{1} << (std::bit_width(count) - 1);
  shard_mask_ = count - 1;
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    // Distribute the total capacity exactly: the first capacity % count
    // shards take one extra slot, so per-shard capacities sum to capacity.
    shards_.back()->capacity =
        capacity / count + (i < capacity % count ? 1 : 0);
    FOSCIL_ASSERT(shards_.back()->capacity >= 1);
  }
}

std::shared_ptr<const ServedPlan> PlanCache::lookup(const CacheKey& key) {
  Shard& shard = shard_of(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->plan;
}

std::shared_ptr<const ServedPlan> PlanCache::peek(const CacheKey& key) const {
  const Shard& shard = shard_of(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  return it == shard.index.end() ? nullptr : it->second->plan;
}

void PlanCache::insert(const CacheKey& key,
                       std::shared_ptr<const ServedPlan> plan) {
  FOSCIL_EXPECTS(plan != nullptr);
  Shard& shard = shard_of(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Refresh: replace the value and promote to most recently used.
    it->second->plan = std::move(plan);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, std::move(plan)});
  shard.index.emplace(key, shard.lru.begin());
  ++shard.inserts;
  while (shard.lru.size() > shard.capacity) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

bool PlanCache::insert_if_absent(const CacheKey& key,
                                 std::shared_ptr<const ServedPlan> plan) {
  FOSCIL_EXPECTS(plan != nullptr);
  Shard& shard = shard_of(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.index.find(key) != shard.index.end()) return false;
  shard.lru.push_front(Entry{key, std::move(plan)});
  shard.index.emplace(key, shard.lru.begin());
  ++shard.inserts;
  while (shard.lru.size() > shard.capacity) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  return true;
}

std::vector<std::shared_ptr<const ServedPlan>> PlanCache::export_entries()
    const {
  std::vector<std::shared_ptr<const ServedPlan>> out;
  out.reserve(size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    // Tail = least recently used; emitting tail-first means replaying the
    // list through insert() leaves the most recent entry at the LRU front.
    for (auto it = shard->lru.rbegin(); it != shard->lru.rend(); ++it)
      out.push_back(it->plan);
  }
  return out;
}

CacheStats PlanCache::stats() const {
  CacheStats stats;
  stats.capacity = capacity_;
  stats.shards = shards_.size();
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.evictions += shard->evictions;
    stats.inserts += shard->inserts;
    stats.entries += shard->lru.size();
  }
  return stats;
}

std::size_t PlanCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->lru.size();
  }
  return total;
}

void PlanCache::clear() {
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
  }
}

}  // namespace foscil::serve
