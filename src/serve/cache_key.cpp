#include "serve/cache_key.hpp"

#include <bit>
#include <cmath>

namespace foscil::serve {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Key-schema version: bump whenever the set of hashed inputs or the
/// planner semantics change, so stale persisted keys can never alias.
/// v2: AoOptions grew eval_engine (hashed — it changes the plan's arithmetic
/// in the last ulps) and scan_threads (NOT hashed — candidate scans reduce
/// in deterministic index order, so any thread count yields a bit-identical
/// plan and must hit the same cache entry).
/// v3: keys carry a `degraded` bit.  Plans computed under overload with
/// capped search options live under their own keys, so a degraded plan can
/// never replace, alias, or be served in place of a full-quality entry.
/// AoOptions also grew `cancel` (NOT hashed — like scan_threads, a token
/// can only stop a run, never change a completed plan).  Snapshot format
/// versioning is coupled to this constant: serve/snapshot.hpp must bump
/// kSnapshotVersion whenever this changes.
constexpr std::uint64_t kSchemaVersion = 3;

[[nodiscard]] std::uint64_t splitmix(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

const char* planner_name(PlannerKind kind) {
  return kind == PlannerKind::kAo ? "AO" : "PCO";
}

KeyHasher& KeyHasher::mix(std::uint64_t value) noexcept {
  // Stream 1: FNV-1a over the 8 bytes, little-endian.
  for (int byte = 0; byte < 8; ++byte) {
    hi_ ^= (value >> (8 * byte)) & 0xFFull;
    hi_ *= kFnvPrime;
  }
  // Stream 2: splitmix accumulation over whole words.
  lo_ = splitmix(lo_ ^ value);
  return *this;
}

KeyHasher& KeyHasher::mix_double(double value) {
  FOSCIL_EXPECTS(!std::isnan(value));
  if (value == 0.0) value = 0.0;  // fold -0.0 onto +0.0
  return mix(std::bit_cast<std::uint64_t>(value));
}

KeyHasher& KeyHasher::mix(const linalg::Vector& values) {
  mix(static_cast<std::uint64_t>(values.size()));
  for (std::size_t i = 0; i < values.size(); ++i) mix_double(values[i]);
  return *this;
}

KeyHasher& KeyHasher::mix(const linalg::Matrix& values) {
  mix(static_cast<std::uint64_t>(values.rows()));
  mix(static_cast<std::uint64_t>(values.cols()));
  for (std::size_t r = 0; r < values.rows(); ++r) {
    const double* row = values.row_data(r);
    for (std::size_t c = 0; c < values.cols(); ++c) mix_double(row[c]);
  }
  return *this;
}

CacheKey model_fingerprint(const thermal::ThermalModel& model) {
  KeyHasher hasher;
  const thermal::RcNetwork& network = model.network();
  hasher.mix(static_cast<std::uint64_t>(network.num_nodes()));
  hasher.mix(static_cast<std::uint64_t>(network.num_cores()));
  hasher.mix(static_cast<std::uint64_t>(network.num_tiers()));
  hasher.mix(static_cast<std::uint64_t>(network.sites_per_tier()));
  for (std::size_t core = 0; core < network.num_cores(); ++core)
    hasher.mix(static_cast<std::uint64_t>(network.die_node(core)));
  hasher.mix(network.conductance());
  hasher.mix(network.capacitance());
  // Per-core coefficients cover both the homogeneous and heterogeneous
  // shapes: a heterogeneous model whose entries all agree plans identically
  // to the uniform model, and hashes identically too.
  const power::PowerModel& power = model.power();
  for (std::size_t core = 0; core < model.num_cores(); ++core) {
    const power::PowerCoefficients& c = power.coefficients(core);
    hasher.mix_double(c.alpha);
    hasher.mix_double(c.beta);
    hasher.mix_double(c.gamma);
  }
  return hasher.key();
}

namespace {

void mix_platform_tail(KeyHasher& hasher, const core::Platform& platform) {
  hasher.mix_double(platform.t_ambient_c);
  const std::vector<double>& levels = platform.levels.values();
  hasher.mix(static_cast<std::uint64_t>(levels.size()));
  for (double v : levels) hasher.mix_double(v);
}

void mix_ao_options(KeyHasher& hasher, const core::AoOptions& ao) {
  hasher.mix_double(ao.base_period);
  hasher.mix_double(ao.transition_overhead);
  hasher.mix_double(ao.t_unit_fraction);
  hasher.mix(static_cast<std::uint64_t>(ao.max_m));
  hasher.mix(static_cast<std::uint64_t>(ao.m_search_patience));
  hasher.mix(static_cast<std::uint64_t>(ao.tpt_policy));
  hasher.mix(static_cast<std::uint64_t>(ao.mode_choice));
  hasher.mix_double(ao.t_max_margin);
  hasher.mix(static_cast<std::uint64_t>(ao.eval_engine));
  // ao.scan_threads deliberately unhashed; see kSchemaVersion.
}

}  // namespace

CacheKey platform_fingerprint(const core::Platform& platform) {
  const CacheKey model_fp = model_fingerprint(*platform.model);
  KeyHasher hasher;
  hasher.mix(model_fp.hi).mix(model_fp.lo);
  mix_platform_tail(hasher, platform);
  return hasher.key();
}

CacheKey plan_key(const CacheKey& model_fp, const core::Platform& platform,
                  double t_max_c, PlannerKind kind,
                  const core::AoOptions& ao, const core::PcoOptions& pco,
                  bool degraded) {
  KeyHasher hasher;
  hasher.mix(kSchemaVersion);
  hasher.mix(model_fp.hi).mix(model_fp.lo);
  mix_platform_tail(hasher, platform);
  hasher.mix_double(t_max_c);
  hasher.mix(static_cast<std::uint64_t>(kind));
  hasher.mix(degraded ? 1u : 0u);
  if (kind == PlannerKind::kAo) {
    mix_ao_options(hasher, ao);
  } else {
    mix_ao_options(hasher, pco.ao);
    hasher.mix(static_cast<std::uint64_t>(pco.phase_grid));
    hasher.mix(static_cast<std::uint64_t>(pco.phase_rounds));
    hasher.mix(static_cast<std::uint64_t>(pco.peak_samples));
    hasher.mix(static_cast<std::uint64_t>(pco.final_peak_samples));
  }
  return hasher.key();
}

CacheKey plan_key(const core::Platform& platform, double t_max_c,
                  PlannerKind kind, const core::AoOptions& ao,
                  const core::PcoOptions& pco, bool degraded) {
  return plan_key(model_fingerprint(*platform.model), platform, t_max_c,
                  kind, ao, pco, degraded);
}

}  // namespace foscil::serve
