// HotSpot-style material and package constants.
//
// The paper adopts thermal capacitances/resistances from HotSpot-5.02 at the
// 65 nm node (Sec. VI).  HotSpot itself is not redistributable here, so this
// header carries the physical constants of HotSpot's compact-model stack
// (die / thermal-interface-material / copper spreader / finned sink with a
// convection boundary) from which src/thermal/rc_network.cpp synthesizes the
// same kind of RC network.  Values are SI throughout.
//
// The package constants below are calibrated (see tests/thermal/
// calibration_test.cpp) so the generated platforms reproduce the paper's
// operating regime: a 3x1 chip's throughput-optimal constant voltage at
// T_max = 65 C sits near 1.2 V, a 2x1 chip saturates at the highest level
// for relaxed thresholds, and a 3x3 chip is strongly constrained at 55 C.
#pragma once

#include "util/contracts.hpp"

namespace foscil::thermal {

/// Material + package parameters for the compact RC stack.
struct HotSpotParams {
  // --- die layer (silicon) ---
  double k_silicon = 100.0;     ///< W/(m K) thermal conductivity
  double c_silicon = 1.75e6;    ///< J/(m^3 K) volumetric heat capacity
  double t_die = 0.15e-3;       ///< m, die thickness

  // --- thermal interface material between die and spreader ---
  double k_tim = 8.0;           ///< W/(m K)
  double t_tim = 2.0e-5;        ///< m

  // --- heat spreader (copper) ---
  double k_copper = 400.0;      ///< W/(m K)
  double c_copper = 3.55e6;     ///< J/(m^3 K)
  double t_spreader = 1.0e-3;   ///< m

  // --- heat sink base + fins, block-granular ---
  double t_sink_base = 6.0e-3;  ///< m, base thickness (lateral path)
  double r_convection_block = 2.0;   ///< K/W from one core-sized sink block
                                     ///< (base + fin + convection) to ambient
  double sink_mass_factor = 20.0;    ///< fin mass multiplier on the block's
                                     ///< copper heat capacity

  // --- package rim: spreader/sink area beyond the die footprint ---
  // HotSpot models the spreader and sink as larger than the die; boundary
  // blocks therefore see extra lateral paths into a peripheral rim that
  // convects on its own.  One rim node per layer; each boundary block
  // couples to it once per exposed (chip-edge) side.  This is what makes
  // edge cores run cooler than center cores, the asymmetry the paper's
  // Table II exhibits.
  double rim_width_blocks = 0.5;  ///< rim annulus width in core pitches
                                  ///< (scales rim convection area and mass)

  // --- 3D stacking (Sec. I motivation: stacked dies exacerbate thermal
  // problems because upper tiers sit farther from the heat sink) ---
  std::size_t die_tiers = 1;      ///< vertically stacked die layers; tier 0
                                  ///< touches the package, deeper tiers heat
                                  ///< through it
  double k_inter_tier = 2.0;      ///< W/(m K), bonding/TSV layer conductivity
  double t_inter_tier = 2.0e-5;   ///< m, bonding layer thickness

  /// Validate physical plausibility.
  void check() const {
    FOSCIL_EXPECTS(k_silicon > 0 && c_silicon > 0 && t_die > 0);
    FOSCIL_EXPECTS(k_tim > 0 && t_tim > 0);
    FOSCIL_EXPECTS(k_copper > 0 && c_copper > 0 && t_spreader > 0);
    FOSCIL_EXPECTS(t_sink_base > 0 && r_convection_block > 0);
    FOSCIL_EXPECTS(sink_mass_factor >= 1.0);
    FOSCIL_EXPECTS(rim_width_blocks > 0.0);
    FOSCIL_EXPECTS(die_tiers >= 1);
    FOSCIL_EXPECTS(k_inter_tier > 0 && t_inter_tier > 0);
  }
};

}  // namespace foscil::thermal
