#include "thermal/floorplan.hpp"

#include <cstdlib>

namespace foscil::thermal {

Floorplan::Floorplan(std::size_t rows, std::size_t cols, double core_edge_m)
    : rows_(rows), cols_(cols), core_edge_m_(core_edge_m) {
  FOSCIL_EXPECTS(rows >= 1 && cols >= 1);
  FOSCIL_EXPECTS(core_edge_m > 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      const std::size_t here = index(r, c);
      if (c + 1 < cols_) adjacency_.emplace_back(here, index(r, c + 1));
      if (r + 1 < rows_) adjacency_.emplace_back(here, index(r + 1, c));
    }
  }
}

std::size_t Floorplan::manhattan(std::size_t a, std::size_t b) const {
  const CoreSite sa = site(a);
  const CoreSite sb = site(b);
  const auto diff = [](std::size_t x, std::size_t y) {
    return x > y ? x - y : y - x;
  };
  return diff(sa.row, sb.row) + diff(sa.col, sb.col);
}

std::string Floorplan::label() const {
  return std::to_string(rows_) + "x" + std::to_string(cols_);
}

}  // namespace foscil::thermal
