// Core-level floorplans.
//
// The paper evaluates 2x1, 3x1, 3x2 and 3x3 grids of 4x4 mm^2 cores
// (Sec. VI).  Since the study is system-level, the floorplan is a regular
// grid at core granularity; the RC generator consumes only positions,
// areas, and the adjacency it derives here.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/contracts.hpp"

namespace foscil::thermal {

/// Position of one core in the grid.
struct CoreSite {
  std::size_t row = 0;
  std::size_t col = 0;
};

/// Regular grid of identical square cores.
class Floorplan {
 public:
  /// `rows` x `cols` cores, each `core_edge_m` on a side (meters).
  Floorplan(std::size_t rows, std::size_t cols, double core_edge_m);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t num_cores() const { return rows_ * cols_; }
  [[nodiscard]] double core_edge_m() const { return core_edge_m_; }
  [[nodiscard]] double core_area_m2() const {
    return core_edge_m_ * core_edge_m_;
  }

  /// Row-major core index.
  [[nodiscard]] std::size_t index(std::size_t row, std::size_t col) const {
    FOSCIL_EXPECTS(row < rows_ && col < cols_);
    return row * cols_ + col;
  }

  [[nodiscard]] CoreSite site(std::size_t core) const {
    FOSCIL_EXPECTS(core < num_cores());
    return {core / cols_, core % cols_};
  }

  /// 4-neighborhood adjacency as (a, b) pairs with a < b, each listed once.
  [[nodiscard]] const std::vector<std::pair<std::size_t, std::size_t>>&
  adjacent_pairs() const {
    return adjacency_;
  }

  /// Manhattan distance between two cores, in core pitches.
  [[nodiscard]] std::size_t manhattan(std::size_t a, std::size_t b) const;

  /// "3x2" style label used in experiment output.
  [[nodiscard]] std::string label() const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  double core_edge_m_;
  std::vector<std::pair<std::size_t, std::size_t>> adjacency_;
};

}  // namespace foscil::thermal
