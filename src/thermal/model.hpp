// The LTI thermal model of eq. (2):  dT/dt = A T + B(v).
//
// Combines an RcNetwork (G, C) with the power model's leakage feedback:
//
//   C dT/dt = -G T + beta E T + Psi(v)   =>   A = C^{-1}(beta E - G),
//                                             B(v) = C^{-1} Psi(v),
//
// where E selects die nodes (only cores leak) and Psi carries the
// temperature-independent heat alpha + gamma v^3 per active core.  All
// temperatures are rises over ambient.  The class owns:
//   * a spectral decomposition of A (A is similar to a symmetric matrix via
//     C^{1/2}, see linalg/spectral.hpp) used by every e^{At} evaluation, and
//   * an LU factorization of (G - beta E) for steady-state solves
//     T_inf(v) = -A^{-1} B(v) = (G - beta E)^{-1} Psi(v).
#pragma once

#include <memory>

#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/spectral.hpp"
#include "power/power_model.hpp"
#include "thermal/rc_network.hpp"

namespace foscil::thermal {

class ThermalModel {
 public:
  ThermalModel(RcNetwork network, power::PowerModel power);

  [[nodiscard]] std::size_t num_nodes() const {
    return network_.num_nodes();
  }
  [[nodiscard]] std::size_t num_cores() const {
    return network_.num_cores();
  }
  [[nodiscard]] const RcNetwork& network() const { return network_; }
  [[nodiscard]] const power::PowerModel& power() const { return power_; }

  /// Spectral decomposition of A (shared, immutable).
  [[nodiscard]] const linalg::SpectralDecomposition& spectral() const {
    return *spectral_;
  }

  /// Dense A = C^{-1}(beta E - G); reconstructed, mainly for tests.
  [[nodiscard]] linalg::Matrix a_matrix() const;

  /// The symmetric steady-state operator  G - beta E  (dense copy).
  [[nodiscard]] linalg::Matrix system_matrix() const;

  /// Node-sized heat injection Psi from per-core voltages.
  [[nodiscard]] linalg::Vector heat_injection(
      const linalg::Vector& core_voltages) const;

  /// B(v) = C^{-1} Psi(v).
  [[nodiscard]] linalg::Vector b_vector(
      const linalg::Vector& core_voltages) const;

  /// T_inf(v): temperature rises after running `core_voltages` forever.
  [[nodiscard]] linalg::Vector steady_state(
      const linalg::Vector& core_voltages) const;

  /// Steady state for an explicit node-sized heat vector.
  [[nodiscard]] linalg::Vector steady_state_from_heat(
      const linalg::Vector& psi) const;

  /// Extract the die-node entries of a node-sized rise vector.
  [[nodiscard]] linalg::Vector core_rises(
      const linalg::Vector& node_rises) const;

  /// Largest die-node rise.
  [[nodiscard]] double max_core_rise(const linalg::Vector& node_rises) const;

 private:
  RcNetwork network_;
  power::PowerModel power_;
  std::shared_ptr<const linalg::SpectralDecomposition> spectral_;
  std::shared_ptr<const linalg::LuDecomposition> steady_lu_;
};

}  // namespace foscil::thermal
