// The LTI thermal model of eq. (2):  dT/dt = A T + B(v).
//
// Combines an RcNetwork (G, C) with the power model's leakage feedback:
//
//   C dT/dt = -G T + beta E T + Psi(v)   =>   A = C^{-1}(beta E - G),
//                                             B(v) = C^{-1} Psi(v),
//
// where E selects die nodes (only cores leak) and Psi carries the
// temperature-independent heat alpha + gamma v^3 per active core.  All
// temperatures are rises over ambient.  The class owns:
//   * a spectral decomposition of A (A is similar to a symmetric matrix via
//     C^{1/2}, see linalg/spectral.hpp) used by every e^{At} evaluation, and
//   * an LU factorization of (G - beta E) for steady-state solves
//     T_inf(v) = -A^{-1} B(v) = (G - beta E)^{-1} Psi(v).
//
// Thread-safety contract (relied on by the planning service, src/serve):
// a ThermalModel is deeply immutable after construction.  The spectral and
// LU decompositions are computed *eagerly* in the constructor — never
// lazily on first use — and held through shared_ptr<const ...>, there are
// no mutable members, and every method is const and allocates only local
// state.  Consequently any number of threads may share one model (and the
// planners/simulators built on it) without synchronization.  Keep it that
// way: if a memoized cache (b-vectors, steady states, ...) is ever added,
// it must be guarded with std::call_once or a mutex, and
// tests/thermal/model_concurrency_test.cpp — which hammers this contract
// from 16 threads under ThreadSanitizer in CI — extended to cover it.
#pragma once

#include <memory>

#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/spectral.hpp"
#include "power/power_model.hpp"
#include "thermal/rc_network.hpp"

namespace foscil::thermal {

/// First-order model sensitivity ∂/∂θ for the mismatch parameters
///   θ = [Δalpha_0 … Δalpha_{C-1},  Δβ_rel,  δ_conv]
/// (per-core power offset in W, relative leakage-slope scale, relative
/// convection-resistance scale).  Column j of `heat` is the equivalent
/// extra heat-injection direction ∂Ψ_eff/∂θ_j at the linearization point;
/// column j of `steady` is the induced steady-state shift
/// ∂T_ss/∂θ_j = (G − βE)⁻¹ · heat_j.  Both are num_nodes tall and
/// num_cores + 2 wide.
struct SensitivityBasis {
  linalg::Matrix heat;
  linalg::Matrix steady;
};

class ThermalModel {
 public:
  ThermalModel(RcNetwork network, power::PowerModel power);

  [[nodiscard]] std::size_t num_nodes() const {
    return network_.num_nodes();
  }
  [[nodiscard]] std::size_t num_cores() const {
    return network_.num_cores();
  }
  [[nodiscard]] const RcNetwork& network() const { return network_; }
  [[nodiscard]] const power::PowerModel& power() const { return power_; }

  /// Spectral decomposition of A (shared, immutable).
  [[nodiscard]] const linalg::SpectralDecomposition& spectral() const {
    return *spectral_;
  }

  /// Dense A = C^{-1}(beta E - G); reconstructed, mainly for tests.
  [[nodiscard]] linalg::Matrix a_matrix() const;

  /// The symmetric steady-state operator  G - beta E  (dense copy).
  [[nodiscard]] linalg::Matrix system_matrix() const;

  /// Node-sized heat injection Psi from per-core voltages.
  [[nodiscard]] linalg::Vector heat_injection(
      const linalg::Vector& core_voltages) const;

  /// B(v) = C^{-1} Psi(v).
  [[nodiscard]] linalg::Vector b_vector(
      const linalg::Vector& core_voltages) const;

  /// T_inf(v): temperature rises after running `core_voltages` forever.
  [[nodiscard]] linalg::Vector steady_state(
      const linalg::Vector& core_voltages) const;

  /// Steady state for an explicit node-sized heat vector.
  [[nodiscard]] linalg::Vector steady_state_from_heat(
      const linalg::Vector& psi) const;

  /// Extract the die-node entries of a node-sized rise vector.
  [[nodiscard]] linalg::Vector core_rises(
      const linalg::Vector& node_rises) const;

  /// Largest die-node rise.
  [[nodiscard]] double max_core_rise(const linalg::Vector& node_rises) const;

  /// Per-node conductance to ambient (row sums of the grounded Laplacian G).
  /// Non-zero only at nodes with a direct path to ambient (convection).
  [[nodiscard]] const linalg::Vector& ground_conductance() const {
    return ground_conductance_;
  }

  /// Number of mismatch parameters in a SensitivityBasis: num_cores power
  /// offsets + leakage scale + convection scale.
  [[nodiscard]] std::size_t num_sensitivity_params() const {
    return num_cores() + 2;
  }

  /// Equivalent heat-injection directions ∂Ψ_eff/∂θ linearized at the
  /// operating point (`node_rises`, `core_voltages`):
  ///   * Δalpha_i  → e_{die(i)} while core i is powered (v_i > 0), zero when
  ///     power-gated;
  ///   * Δβ_rel    → β_i·T_die(i) at each die node (leakage feedback scales
  ///     with the local temperature rise);
  ///   * δ_conv    → g_i·T_i at each grounded node: scaling the convection
  ///     resistance by (1+δ) is, to first order, extra heat δ·g_i·T_i
  ///     trapped at the node.
  /// O(n·params) — no factorization.
  [[nodiscard]] linalg::Matrix sensitivity_heat(
      const linalg::Vector& node_rises,
      const linalg::Vector& core_voltages) const;

  /// Heat directions plus the steady-state shifts ∂T_ss/∂θ they induce,
  /// via the cached LU of (G − βE): O(n²) per column, no new O(n³) path.
  [[nodiscard]] SensitivityBasis sensitivity(
      const linalg::Vector& node_rises,
      const linalg::Vector& core_voltages) const;

 private:
  RcNetwork network_;
  power::PowerModel power_;
  std::shared_ptr<const linalg::SpectralDecomposition> spectral_;
  std::shared_ptr<const linalg::LuDecomposition> steady_lu_;
  linalg::Vector ground_conductance_;
};

}  // namespace foscil::thermal
