#include "thermal/model.hpp"

#include <algorithm>

namespace foscil::thermal {

ThermalModel::ThermalModel(RcNetwork network, power::PowerModel power)
    : network_(std::move(network)), power_(std::move(power)) {
  const std::size_t n = network_.num_nodes();
  // A heterogeneous power model must cover exactly this chip's cores.
  FOSCIL_EXPECTS(!power_.heterogeneous() ||
                 power_.per_core_count() == network_.num_cores());

  // S = beta E - G stays symmetric because E is diagonal.
  linalg::Matrix s = network_.conductance();
  s *= -1.0;
  for (std::size_t core = 0; core < network_.num_cores(); ++core) {
    const std::size_t d = network_.die_node(core);
    s(d, d) += power_.beta(core);
  }
  spectral_ = std::make_shared<const linalg::SpectralDecomposition>(
      s, network_.capacitance());
  // A physically meaningful platform must be stable: leakage feedback
  // cannot outrun conduction to ambient (otherwise thermal runaway).
  FOSCIL_ENSURES(spectral_->stable());

  linalg::Matrix steady = s;
  steady *= -1.0;  // G - beta E
  steady_lu_ = std::make_shared<const linalg::LuDecomposition>(steady);

  // Row sums of the grounded Laplacian G: lateral terms cancel, leaving
  // each node's conductance straight to ambient.  Cached for the
  // convection-scale sensitivity direction.
  const linalg::Matrix& g = network_.conductance();
  ground_conductance_ = linalg::Vector(n);
  for (std::size_t r = 0; r < n; ++r) {
    double sum = 0.0;
    const double* row = g.row_data(r);
    for (std::size_t c = 0; c < n; ++c) sum += row[c];
    // Clamp tiny negative rounding residue; a node either grounds or not.
    ground_conductance_[r] = std::max(0.0, sum);
  }
}

linalg::Matrix ThermalModel::a_matrix() const { return spectral_->matrix(); }

linalg::Matrix ThermalModel::system_matrix() const {
  linalg::Matrix steady = network_.conductance();
  for (std::size_t core = 0; core < network_.num_cores(); ++core) {
    const std::size_t d = network_.die_node(core);
    steady(d, d) -= power_.beta(core);
  }
  return steady;
}

linalg::Vector ThermalModel::heat_injection(
    const linalg::Vector& core_voltages) const {
  FOSCIL_EXPECTS(core_voltages.size() == num_cores());
  linalg::Vector psi(num_nodes());
  for (std::size_t core = 0; core < num_cores(); ++core) {
    psi[network_.die_node(core)] = power_.psi(core, core_voltages[core]);
  }
  return psi;
}

linalg::Vector ThermalModel::b_vector(
    const linalg::Vector& core_voltages) const {
  linalg::Vector b = heat_injection(core_voltages);
  const linalg::Vector& c = network_.capacitance();
  for (std::size_t i = 0; i < b.size(); ++i) b[i] /= c[i];
  return b;
}

linalg::Vector ThermalModel::steady_state(
    const linalg::Vector& core_voltages) const {
  return steady_lu_->solve(heat_injection(core_voltages));
}

linalg::Vector ThermalModel::steady_state_from_heat(
    const linalg::Vector& psi) const {
  FOSCIL_EXPECTS(psi.size() == num_nodes());
  return steady_lu_->solve(psi);
}

linalg::Vector ThermalModel::core_rises(
    const linalg::Vector& node_rises) const {
  FOSCIL_EXPECTS(node_rises.size() == num_nodes());
  linalg::Vector rises(num_cores());
  for (std::size_t core = 0; core < num_cores(); ++core)
    rises[core] = node_rises[network_.die_node(core)];
  return rises;
}

double ThermalModel::max_core_rise(const linalg::Vector& node_rises) const {
  return core_rises(node_rises).max();
}

linalg::Matrix ThermalModel::sensitivity_heat(
    const linalg::Vector& node_rises,
    const linalg::Vector& core_voltages) const {
  FOSCIL_EXPECTS(node_rises.size() == num_nodes());
  FOSCIL_EXPECTS(core_voltages.size() == num_cores());
  const std::size_t cores = num_cores();
  linalg::Matrix heat(num_nodes(), num_sensitivity_params());

  for (std::size_t core = 0; core < cores; ++core) {
    const std::size_t d = network_.die_node(core);
    // Column `core`: a power offset only heats while the core is powered
    // (the plant power-gates alpha together with the dynamic term at v = 0).
    if (core_voltages[core] > 0.0) heat(d, core) = 1.0;
    // Column `cores` (Δβ_rel): scaling every leakage slope by (1 + Δβ_rel)
    // adds β_i·T_die(i) of heat per unit Δβ_rel.
    heat(d, cores) += power_.beta(core) * node_rises[d];
  }
  // Column `cores + 1` (δ_conv): with the convection resistance scaled by
  // (1 + δ), the grounded conductance drops to g/(1 + δ) ≈ g(1 − δ), i.e.
  // δ·g_i·T_i of the heat that used to escape stays in the node.
  for (std::size_t node = 0; node < num_nodes(); ++node) {
    const double g = ground_conductance_[node];
    if (g > 0.0) heat(node, cores + 1) = g * node_rises[node];
  }
  return heat;
}

SensitivityBasis ThermalModel::sensitivity(
    const linalg::Vector& node_rises,
    const linalg::Vector& core_voltages) const {
  SensitivityBasis basis;
  basis.heat = sensitivity_heat(node_rises, core_voltages);
  basis.steady = steady_lu_->solve(basis.heat);
  return basis;
}

}  // namespace foscil::thermal
