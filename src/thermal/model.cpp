#include "thermal/model.hpp"

#include <algorithm>

namespace foscil::thermal {

ThermalModel::ThermalModel(RcNetwork network, power::PowerModel power)
    : network_(std::move(network)), power_(std::move(power)) {
  const std::size_t n = network_.num_nodes();
  // A heterogeneous power model must cover exactly this chip's cores.
  FOSCIL_EXPECTS(!power_.heterogeneous() ||
                 power_.per_core_count() == network_.num_cores());

  // S = beta E - G stays symmetric because E is diagonal.
  linalg::Matrix s = network_.conductance();
  s *= -1.0;
  for (std::size_t core = 0; core < network_.num_cores(); ++core) {
    const std::size_t d = network_.die_node(core);
    s(d, d) += power_.beta(core);
  }
  spectral_ = std::make_shared<const linalg::SpectralDecomposition>(
      s, network_.capacitance());
  // A physically meaningful platform must be stable: leakage feedback
  // cannot outrun conduction to ambient (otherwise thermal runaway).
  FOSCIL_ENSURES(spectral_->stable());

  linalg::Matrix steady = s;
  steady *= -1.0;  // G - beta E
  steady_lu_ = std::make_shared<const linalg::LuDecomposition>(steady);
  (void)n;
}

linalg::Matrix ThermalModel::a_matrix() const { return spectral_->matrix(); }

linalg::Matrix ThermalModel::system_matrix() const {
  linalg::Matrix steady = network_.conductance();
  for (std::size_t core = 0; core < network_.num_cores(); ++core) {
    const std::size_t d = network_.die_node(core);
    steady(d, d) -= power_.beta(core);
  }
  return steady;
}

linalg::Vector ThermalModel::heat_injection(
    const linalg::Vector& core_voltages) const {
  FOSCIL_EXPECTS(core_voltages.size() == num_cores());
  linalg::Vector psi(num_nodes());
  for (std::size_t core = 0; core < num_cores(); ++core) {
    psi[network_.die_node(core)] = power_.psi(core, core_voltages[core]);
  }
  return psi;
}

linalg::Vector ThermalModel::b_vector(
    const linalg::Vector& core_voltages) const {
  linalg::Vector b = heat_injection(core_voltages);
  const linalg::Vector& c = network_.capacitance();
  for (std::size_t i = 0; i < b.size(); ++i) b[i] /= c[i];
  return b;
}

linalg::Vector ThermalModel::steady_state(
    const linalg::Vector& core_voltages) const {
  return steady_lu_->solve(heat_injection(core_voltages));
}

linalg::Vector ThermalModel::steady_state_from_heat(
    const linalg::Vector& psi) const {
  FOSCIL_EXPECTS(psi.size() == num_nodes());
  return steady_lu_->solve(psi);
}

linalg::Vector ThermalModel::core_rises(
    const linalg::Vector& node_rises) const {
  FOSCIL_EXPECTS(node_rises.size() == num_nodes());
  linalg::Vector rises(num_cores());
  for (std::size_t core = 0; core < num_cores(); ++core)
    rises[core] = node_rises[network_.die_node(core)];
  return rises;
}

double ThermalModel::max_core_rise(const linalg::Vector& node_rises) const {
  return core_rises(node_rises).max();
}

}  // namespace foscil::thermal
