// Compact RC thermal network generation.
//
// Builds the (G, C) pair behind eq. (2) of the paper:  C dT/dt = -G T + P,
// where T is the vector of node temperature rises over ambient, G the
// symmetric conductance Laplacian (with ambient as ground), and C the
// diagonal capacitances.  The stack per core column is
//
//     die node --(TIM)--> spreader node --(base)--> sink node --(conv)--> amb
//
// with lateral conductances inside the die, spreader, and sink-base layers
// following the floorplan adjacency, plus a package rim (spreader/sink
// annulus beyond the die) that boundary blocks couple into.  Only die nodes
// dissipate power.
//
// 3D stacking (HotSpotParams::die_tiers > 1) replicates the die layer into
// vertically bonded tiers: tier 0 touches the TIM/spreader; tier t couples
// to tier t+1 through the bonding layer.  Cores are indexed tier-major
// (core = tier * floorplan_cores + site), so a 2-tier 2x2 chip has 8 cores
// over 4 columns.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "thermal/floorplan.hpp"
#include "thermal/hotspot_params.hpp"

namespace foscil::thermal {

/// Node roles in the generated network.
enum class NodeLayer { kDie, kSpreader, kSink, kSpreaderRim, kSinkRim };

/// Symmetric conductance matrix + capacitances + node bookkeeping.
class RcNetwork {
 public:
  RcNetwork(const Floorplan& floorplan, const HotSpotParams& params);

  [[nodiscard]] std::size_t num_nodes() const { return conductance_.rows(); }
  /// Total processing cores: floorplan sites x die tiers.
  [[nodiscard]] std::size_t num_cores() const { return num_cores_; }
  [[nodiscard]] std::size_t num_tiers() const { return tiers_; }
  /// Cores per tier (floorplan sites).
  [[nodiscard]] std::size_t sites_per_tier() const { return sites_; }

  /// Die node index of a core (power injection point).
  [[nodiscard]] std::size_t die_node(std::size_t core) const {
    FOSCIL_EXPECTS(core < num_cores_);
    return core;  // die nodes occupy [0, num_cores)
  }
  /// Tier of a core (0 = closest to the package).
  [[nodiscard]] std::size_t tier_of(std::size_t core) const {
    FOSCIL_EXPECTS(core < num_cores_);
    return core / sites_;
  }
  /// Floorplan site of a core.
  [[nodiscard]] std::size_t site_of(std::size_t core) const {
    FOSCIL_EXPECTS(core < num_cores_);
    return core % sites_;
  }
  /// Spreader node under a core's column.
  [[nodiscard]] std::size_t spreader_node(std::size_t core) const {
    FOSCIL_EXPECTS(core < num_cores_);
    return num_cores_ + site_of(core);
  }
  /// Sink node under a core's column.
  [[nodiscard]] std::size_t sink_node(std::size_t core) const {
    FOSCIL_EXPECTS(core < num_cores_);
    return num_cores_ + sites_ + site_of(core);
  }
  [[nodiscard]] std::size_t spreader_rim_node() const {
    return num_cores_ + 2 * sites_;
  }
  [[nodiscard]] std::size_t sink_rim_node() const {
    return num_cores_ + 2 * sites_ + 1;
  }

  [[nodiscard]] NodeLayer layer(std::size_t node) const;

  /// Symmetric positive definite conductance matrix (W/K), ambient grounded.
  [[nodiscard]] const linalg::Matrix& conductance() const {
    return conductance_;
  }
  /// Node heat capacities (J/K), strictly positive.
  [[nodiscard]] const linalg::Vector& capacitance() const {
    return capacitance_;
  }

  [[nodiscard]] const Floorplan& floorplan() const { return floorplan_; }
  [[nodiscard]] const HotSpotParams& params() const { return params_; }

 private:
  void add_conductance(std::size_t a, std::size_t b, double g);
  void add_ground_conductance(std::size_t node, double g);

  Floorplan floorplan_;
  HotSpotParams params_;
  std::size_t tiers_;
  std::size_t sites_;
  std::size_t num_cores_;
  linalg::Matrix conductance_;
  linalg::Vector capacitance_;
};

}  // namespace foscil::thermal
