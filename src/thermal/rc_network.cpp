#include "thermal/rc_network.hpp"

namespace foscil::thermal {

RcNetwork::RcNetwork(const Floorplan& floorplan, const HotSpotParams& params)
    : floorplan_(floorplan),
      params_(params),
      tiers_(params.die_tiers),
      sites_(floorplan.num_cores()),
      num_cores_(params.die_tiers * floorplan.num_cores()) {
  params_.check();
  const std::size_t n = num_cores_ + 2 * sites_ + 2;  // + rims
  conductance_ = linalg::Matrix(n, n);
  capacitance_ = linalg::Vector(n);

  const double area = floorplan_.core_area_m2();
  const double edge = floorplan_.core_edge_m();

  // --- vertical conductances per column ---
  const double g_tim = params_.k_tim * area / params_.t_tim;
  const double g_base = params_.k_copper * area / params_.t_spreader;
  const double g_conv = 1.0 / params_.r_convection_block;
  const double g_tier =
      params_.k_inter_tier * area / params_.t_inter_tier;
  for (std::size_t site = 0; site < sites_; ++site) {
    // Tier 0 die -> spreader through the TIM.
    add_conductance(die_node(site), spreader_node(site), g_tim);
    // Tier t+1 die -> tier t die through the bonding layer.
    for (std::size_t tier = 0; tier + 1 < tiers_; ++tier) {
      const std::size_t below = tier * sites_ + site;
      const std::size_t above = (tier + 1) * sites_ + site;
      add_conductance(die_node(below), die_node(above), g_tier);
    }
    add_conductance(spreader_node(site), sink_node(site), g_base);
    add_ground_conductance(sink_node(site), g_conv);
  }

  // --- lateral conductances along floorplan adjacency ---
  // Cross-section = layer thickness * core edge, length = core pitch.
  const double g_die_lat = params_.k_silicon * params_.t_die * edge / edge;
  const double g_spr_lat = params_.k_copper * params_.t_spreader * edge / edge;
  const double g_sink_lat =
      params_.k_copper * params_.t_sink_base * edge / edge;
  for (const auto& [a, b] : floorplan_.adjacent_pairs()) {
    for (std::size_t tier = 0; tier < tiers_; ++tier) {
      add_conductance(die_node(tier * sites_ + a),
                      die_node(tier * sites_ + b), g_die_lat);
    }
    add_conductance(spreader_node(a), spreader_node(b), g_spr_lat);
    add_conductance(sink_node(a), sink_node(b), g_sink_lat);
  }

  // --- package rim: spreader/sink annulus beyond the die footprint ---
  // Each boundary block couples into the rim once per chip-edge side it
  // exposes; the rim convects over an area proportional to the perimeter.
  std::vector<std::size_t> exposed(sites_, 4);
  for (const auto& [a, b] : floorplan_.adjacent_pairs()) {
    --exposed[a];
    --exposed[b];
  }
  double perimeter_edges = 0.0;
  for (std::size_t site = 0; site < sites_; ++site) {
    if (exposed[site] == 0) continue;
    const auto edges = static_cast<double>(exposed[site]);
    add_conductance(spreader_node(site), spreader_rim_node(),
                    edges * g_spr_lat);
    add_conductance(sink_node(site), sink_rim_node(), edges * g_sink_lat);
    perimeter_edges += edges;
  }
  FOSCIL_ASSERT(perimeter_edges >= 4.0);
  const double rim_blocks = perimeter_edges * params_.rim_width_blocks;
  add_conductance(spreader_rim_node(), sink_rim_node(), rim_blocks * g_base);
  add_ground_conductance(sink_rim_node(), rim_blocks * g_conv);
  // A token path keeps the spreader rim grounded even in degenerate
  // parameterizations (it normally drains through the sink rim).
  add_ground_conductance(spreader_rim_node(), 1e-6);

  // --- heat capacities ---
  const double c_die = params_.c_silicon * area * params_.t_die;
  const double c_spr = params_.c_copper * area * params_.t_spreader;
  const double c_sink = params_.c_copper * area * params_.t_sink_base *
                        params_.sink_mass_factor;
  for (std::size_t core = 0; core < num_cores_; ++core)
    capacitance_[die_node(core)] = c_die;
  for (std::size_t site = 0; site < sites_; ++site) {
    capacitance_[spreader_node(site)] = c_spr;
    capacitance_[sink_node(site)] = c_sink;
  }
  capacitance_[spreader_rim_node()] = rim_blocks * c_spr;
  capacitance_[sink_rim_node()] = rim_blocks * c_sink;

  // The network must be grounded (every node has a path to ambient), which
  // the per-block convection guarantees; spot-check positive diagonals.
  for (std::size_t i = 0; i < n; ++i) FOSCIL_ENSURES(conductance_(i, i) > 0.0);
}

NodeLayer RcNetwork::layer(std::size_t node) const {
  FOSCIL_EXPECTS(node < num_nodes());
  if (node < num_cores_) return NodeLayer::kDie;
  if (node < num_cores_ + sites_) return NodeLayer::kSpreader;
  if (node < num_cores_ + 2 * sites_) return NodeLayer::kSink;
  return node == spreader_rim_node() ? NodeLayer::kSpreaderRim
                                     : NodeLayer::kSinkRim;
}

void RcNetwork::add_conductance(std::size_t a, std::size_t b, double g) {
  FOSCIL_EXPECTS(a != b);
  FOSCIL_EXPECTS(g > 0.0);
  conductance_(a, a) += g;
  conductance_(b, b) += g;
  conductance_(a, b) -= g;
  conductance_(b, a) -= g;
}

void RcNetwork::add_ground_conductance(std::size_t node, double g) {
  FOSCIL_EXPECTS(g > 0.0);
  conductance_(node, node) += g;
}

}  // namespace foscil::thermal
