// Runtime-dispatched SIMD microkernels (DESIGN.md §14).
//
// Every dense hot loop in the repo — the GEMM behind the Padé expm
// products, LU forward/back substitution, the modal diagonal recurrences,
// the die-row back-transforms — funnels through this table of kernels.
// Each kernel has two implementations: a portable scalar one and an AVX2
// one, selected once at startup by CPUID and overridable at runtime
// (set_active_level, or the FOSCIL_SIMD=scalar|avx2|auto environment
// variable read on first use).  The scalar table is not a fallback of last
// resort: it is the differential oracle the SIMD path is pinned against
// (tests/linalg/simd_test.cpp) and CI runs a forced-scalar lane.
//
// Reduction-order contract: both implementations of every kernel perform
// the SAME floating-point operations in the SAME order, so the dispatch
// level never changes a result bit.  Concretely:
//   * element-wise kernels (axpy, modal_step, hadamard_scale) perform one
//     independent mul/add chain per element — lane width is unobservable;
//   * dot products use a fixed eight-accumulator shape: accumulator l sums
//     elements k ≡ l (mod 8); the reduction is u_l = s_l + s_{l+4}, then
//     (u0+u2) + (u1+u3); tail elements (k >= 8⌊n/8⌋) are folded in
//     sequentially afterwards.  The AVX2 kernels realize exactly this with
//     two 4-lane accumulators, and their translation unit is compiled with
//     -ffp-contract=off so no implicit FMA contraction can change a
//     rounding.
// FMA is deliberately not used: a fused multiply-add rounds once where the
// scalar oracle rounds twice, which would break the bit-identity guarantee
// the planners and the serve cache rely on (a plan must not depend on the
// machine that planned it).
#pragma once

#include <cstddef>

namespace foscil::linalg::simd {

enum class Level {
  kScalar = 0,  ///< portable C++, the differential oracle
  kAvx2 = 1,    ///< 256-bit AVX2 (no FMA — see the contract above)
};

[[nodiscard]] const char* level_name(Level level);

/// Best level the running CPU supports (CPUID, probed once).
[[nodiscard]] Level detected_level();

/// Level the kernel table currently dispatches to.
[[nodiscard]] Level active_level();

/// Select the dispatch level; requests above detected_level() clamp to
/// scalar.  Returns the previous level so tests can save/restore.  The
/// switch is atomic, but callers should only flip it at startup or in
/// single-threaded test setup — kernels resolved before the switch keep
/// running on the old level.
Level set_active_level(Level level);

/// One resolved kernel table.  Hot loops fetch the table once per
/// operation (not per inner iteration) and call through it.
struct Kernels {
  Level level;
  /// Canonical eight-accumulator dot product (see contract above).
  double (*dot)(const double* a, const double* b, std::size_t n);
  /// y[i] += alpha * x[i] for i in [0, n).
  void (*axpy)(std::size_t n, double alpha, const double* x, double* y);
  /// y[i] = e[i]*y[i] + p[i]*b[i] — one modal interval step (eq. 3 on the
  /// eigenbasis), evaluated as two mults and one add per element.
  void (*modal_step)(std::size_t n, const double* e, const double* p,
                     const double* b, double* y);
  /// y[i] *= f[i] — the diagonal resolvent application.
  void (*hadamard_scale)(std::size_t n, const double* f, double* y);
  /// C (m×n, row stride ldc) = A (m×depth, row stride lda) · Bᵀ with B
  /// supplied pre-transposed as b_t (n×depth, row stride ldb) — the packed
  /// GEMM form where both factors stream contiguous rows.  Every element
  /// is one canonical dot; the AVX2 kernel blocks four b_t rows per pass
  /// so each A-row load is reused fourfold.
  void (*mtr)(std::size_t m, std::size_t n, std::size_t depth,
              const double* a, std::size_t lda, const double* b_t,
              std::size_t ldb, double* c, std::size_t ldc);
};

/// Kernel table for the active level.
[[nodiscard]] const Kernels& kernels();

/// Kernel table for a specific level (differential tests pin both sides;
/// asking for an unsupported level returns the scalar table).
[[nodiscard]] const Kernels& kernels(Level level);

namespace detail {
// Implemented in simd.cpp / simd_avx2.cpp; the AVX2 table degrades to the
// scalar one when the build target or CPU cannot run it.
[[nodiscard]] const Kernels& scalar_kernels();
[[nodiscard]] const Kernels& avx2_kernels();
}  // namespace detail

}  // namespace foscil::linalg::simd
