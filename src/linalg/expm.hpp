// General dense matrix exponential.
//
// Higham's scaling-and-squaring with a degree-13 Padé approximant — the same
// algorithm behind MATLAB's expm, which is what the paper's reference
// implementation would have called.  foscil uses the spectral fast path
// (linalg/spectral.hpp) in production; this general routine exists to
// cross-validate that path in tests and to support experiments with
// non-diagonalizable perturbations.
#pragma once

#include "linalg/matrix.hpp"

namespace foscil::linalg {

/// e^{A} for a square A.
[[nodiscard]] Matrix expm(const Matrix& a);

/// e^{A·t} convenience wrapper.
[[nodiscard]] Matrix expm(const Matrix& a, double t);

}  // namespace foscil::linalg
