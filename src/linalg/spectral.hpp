// Spectral decomposition of "similar to symmetric" system matrices and fast
// matrix exponentials built on it.
//
// The thermal ODE of the paper, dT/dt = A·T + B, has A = C⁻¹·S with C a
// positive diagonal capacitance matrix and S = (βE − G) symmetric.  Then
//     A = C^{-1/2} · Ŝ · C^{1/2},    Ŝ = C^{-1/2} S C^{-1/2} symmetric,
// so A = W Λ W⁻¹ with real eigenvalues Λ (negative for a physically stable
// network), W = C^{-1/2} Q and W⁻¹ = Qᵀ C^{1/2}.  This file computes that
// decomposition once and then evaluates e^{A·t} (and its action on vectors)
// in O(n²) per call — the workhorse behind eqs. (3) and (4).
#pragma once

#include <cmath>

#include "linalg/eigen_sym.hpp"
#include "linalg/matrix.hpp"

namespace foscil::linalg {

/// Scalar convolution kernel (e^{λt} − 1)/λ of φ(t) = A⁻¹(e^{At} − I) on one
/// eigenvalue.  The λ→0 limit is t; near it the expm1 quotient loses all
/// significant digits, so below |λ| = 1e-14 we switch to the two-term series
/// t·(1 + λt/2) — the shared definition used by both the dense phi_apply and
/// the modal evaluator's diagonal recurrence (sim/modal.hpp), so the two
/// engines agree to the last ulp on this factor.
[[nodiscard]] inline double phi_factor(double lambda, double t) {
  const double lt = lambda * t;
  return std::abs(lambda) > 1e-14 ? std::expm1(lt) / lambda
                                  : t * (1.0 + 0.5 * lt);
}

/// Eigendecomposition A = W · diag(λ) · W⁻¹ of A = diag(1/c) · S.
class SpectralDecomposition {
 public:
  /// `s` symmetric, `c` strictly positive capacitances.
  SpectralDecomposition(const Matrix& s, const Vector& c);

  [[nodiscard]] std::size_t size() const { return eigenvalues_.size(); }
  [[nodiscard]] const Vector& eigenvalues() const { return eigenvalues_; }
  [[nodiscard]] const Matrix& w() const { return w_; }
  [[nodiscard]] const Matrix& w_inverse() const { return w_inv_; }

  /// True when every eigenvalue is strictly negative (Hurwitz A).
  [[nodiscard]] bool stable() const;

  /// Reconstruct A (mostly for testing).
  [[nodiscard]] Matrix matrix() const;

  /// Dense e^{A·t}.
  [[nodiscard]] Matrix exp(double t) const;

  /// e^{A·t} · x  in O(n²).
  [[nodiscard]] Vector exp_apply(double t, const Vector& x) const;

  /// φ(t)·x where φ(t) = A⁻¹(e^{A·t} − I); the convolution kernel in the
  /// closed-form transient  T(t) = e^{At}T0 + (I − e^{At})T∞  rearranged as
  /// T(t) = e^{At}T0 + φ(t)·B.  Requires stability (no zero eigenvalue).
  [[nodiscard]] Vector phi_apply(double t, const Vector& x) const;

 private:
  Vector eigenvalues_;
  Matrix w_;      // C^{-1/2} Q
  Matrix w_inv_;  // Qᵀ C^{1/2}
};

}  // namespace foscil::linalg
