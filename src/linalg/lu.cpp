#include "linalg/lu.hpp"

#include <cmath>
#include <numeric>
#include <sstream>

#include "linalg/simd.hpp"

namespace foscil::linalg {

namespace {

std::string singular_message(std::size_t column, std::size_t size,
                             double pivot, double inf_norm) {
  std::ostringstream msg;
  msg << "LU factorization of " << size << "x" << size
      << " matrix is singular to working precision: pivot " << pivot
      << " in column " << column << " (matrix inf-norm " << inf_norm << ")";
  return msg.str();
}

}  // namespace

SingularMatrixError::SingularMatrixError(std::size_t column, std::size_t size,
                                         double pivot, double inf_norm)
    : std::runtime_error(singular_message(column, size, pivot, inf_norm)),
      column_(column),
      size_(size),
      pivot_(pivot),
      inf_norm_(inf_norm) {}

LuDecomposition::LuDecomposition(const Matrix& a) : lu_(a) {
  FOSCIL_EXPECTS(a.square());
  FOSCIL_EXPECTS(!a.empty());
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});

  // Judge pivots relative to the matrix magnitude: a pivot below
  // n·eps·‖A‖∞ means the column is linearly dependent to within the
  // rounding already incurred by elimination, so downstream solves would
  // amplify noise rather than fail loudly.
  const double norm = a.inf_norm();
  const double pivot_floor =
      std::max(1e-300, 1e-14 * static_cast<double>(n) * norm);

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: bring the largest |entry| of column k to the pivot.
    std::size_t pivot = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(lu_(r, k));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (best < pivot_floor) throw SingularMatrixError(k, n, best, norm);
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(lu_(k, c), lu_(pivot, c));
      std::swap(perm_[k], perm_[pivot]);
      sign_ = -sign_;
    }

    const double inv_pivot = 1.0 / lu_(k, k);
    const simd::Kernels& kern = simd::kernels();
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) * inv_pivot;
      lu_(r, k) = factor;
      if (factor == 0.0) continue;
      const double* uk = lu_.row_data(k);
      double* ur = lu_.row_data(r);
      kern.axpy(n - k - 1, -factor, uk + k + 1, ur + k + 1);
    }
  }
}

Vector LuDecomposition::solve(const Vector& b) const {
  const std::size_t n = size();
  FOSCIL_EXPECTS(b.size() == n);

  // Forward substitution on the permuted RHS (L has unit diagonal).  The
  // gathered prefix/suffix products run through the dot kernel, so the
  // substitutions vectorize while staying bit-identical across dispatch.
  const simd::Kernels& kern = simd::kernels();
  Vector y(n);
  for (std::size_t r = 0; r < n; ++r) {
    const double* row = lu_.row_data(r);
    y[r] = b[perm_[r]] - kern.dot(row, y.data(), r);
  }
  // Back substitution through U.
  for (std::size_t ri = n; ri-- > 0;) {
    const double* row = lu_.row_data(ri);
    y[ri] = (y[ri] - kern.dot(row + ri + 1, y.data() + ri + 1, n - ri - 1)) /
            row[ri];
  }
  return y;
}

Matrix LuDecomposition::solve(const Matrix& b) const {
  FOSCIL_EXPECTS(b.rows() == size());
  Matrix x(b.rows(), b.cols());
  Vector column(b.rows());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < b.rows(); ++r) column[r] = b(r, c);
    const Vector solved = solve(column);
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = solved[r];
  }
  return x;
}

Matrix LuDecomposition::inverse() const {
  return solve(Matrix::identity(size()));
}

double LuDecomposition::determinant() const {
  double det = sign_;
  for (std::size_t i = 0; i < size(); ++i) det *= lu_(i, i);
  return det;
}

Vector solve(const Matrix& a, const Vector& b) {
  return LuDecomposition(a).solve(b);
}

Matrix inverse(const Matrix& a) { return LuDecomposition(a).inverse(); }

}  // namespace foscil::linalg
