#include "linalg/eigen_sym.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <vector>

namespace foscil::linalg {

namespace {

std::string convergence_message(std::size_t size, int sweeps,
                                double off_energy, double inf_norm) {
  std::ostringstream msg;
  msg << "Jacobi eigensolver failed to converge on " << size << "x" << size
      << " matrix after " << sweeps
      << " sweeps: off-diagonal energy " << off_energy
      << " (matrix inf-norm " << inf_norm
      << "); input is likely NaN/Inf-contaminated or non-symmetric";
  return msg.str();
}

/// Sum of squares of off-diagonal entries (upper triangle, doubled).
double off_diagonal_energy(const Matrix& a) {
  double total = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = r + 1; c < a.cols(); ++c)
      total += 2.0 * a(r, c) * a(r, c);
  return total;
}

}  // namespace

EigenConvergenceError::EigenConvergenceError(std::size_t size, int sweeps,
                                             double off_energy,
                                             double inf_norm)
    : std::runtime_error(
          convergence_message(size, sweeps, off_energy, inf_norm)),
      size_(size),
      sweeps_(sweeps),
      off_energy_(off_energy),
      inf_norm_(inf_norm) {}

SymmetricEigen eigen_symmetric(const Matrix& s, double symmetry_tol,
                               int max_sweeps) {
  FOSCIL_EXPECTS(s.square());
  FOSCIL_EXPECTS(!s.empty());
  FOSCIL_EXPECTS(max_sweeps >= 0);
  const double scale = std::max(s.inf_norm(), 1.0);
  FOSCIL_EXPECTS(s.asymmetry() <= symmetry_tol * scale);

  const std::size_t n = s.rows();
  Matrix a = s;
  // Symmetrize exactly so rounding in the caller cannot bias the sweep.
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = r + 1; c < n; ++c) {
      const double avg = 0.5 * (a(r, c) + a(c, r));
      a(r, c) = avg;
      a(c, r) = avg;
    }

  Matrix q = Matrix::identity(n);
  const double stop = 1e-30 * scale * scale * static_cast<double>(n * n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_energy(a) <= stop) break;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t r = p + 1; r < n; ++r) {
        const double apr = a(p, r);
        if (std::abs(apr) <= 1e-300) continue;
        // Classic Jacobi rotation annihilating a(p, r).
        const double theta = (a(r, r) - a(p, p)) / (2.0 * apr);
        const double t = std::copysign(
            1.0 / (std::abs(theta) + std::sqrt(theta * theta + 1.0)), theta);
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double sn = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akr = a(k, r);
          a(k, p) = c * akp - sn * akr;
          a(k, r) = sn * akp + c * akr;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double ark = a(r, k);
          a(p, k) = c * apk - sn * ark;
          a(r, k) = sn * apk + c * ark;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double qkp = q(k, p);
          const double qkr = q(k, r);
          q(k, p) = c * qkp - sn * qkr;
          q(k, r) = sn * qkp + c * qkr;
        }
      }
    }
  }
  const double residual_energy = off_diagonal_energy(a);
  if (!(residual_energy <=
        1e-16 * scale * scale * static_cast<double>(n * n)))
    throw EigenConvergenceError(n, max_sweeps, residual_energy,
                                s.inf_norm());

  // Sort eigenpairs ascending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
    return a(i, i) < a(j, j);
  });

  SymmetricEigen result;
  result.eigenvalues = Vector(n);
  result.eigenvectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    result.eigenvalues[j] = a(order[j], order[j]);
    for (std::size_t i = 0; i < n; ++i)
      result.eigenvectors(i, j) = q(i, order[j]);
  }
  return result;
}

}  // namespace foscil::linalg
