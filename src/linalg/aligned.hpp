// 32-byte-aligned storage for the dense kernels (DESIGN.md §14).
//
// The SIMD kernel layer (linalg/simd.hpp) streams Matrix/Vector buffers
// with 256-bit loads.  Unaligned AVX2 loads are cheap on current
// microarchitectures, but a buffer whose start straddles a cache line
// splits *every* load of a whole-buffer sweep; aligning the start to 32
// bytes makes element-wise kernels and row 0 split-free and keeps the door
// open for aligned streaming stores.  Rows of a matrix whose column count
// is not a multiple of 4 remain unaligned, so kernels never assume more
// than the buffer-start contract and always issue unaligned loads.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace foscil::linalg {

/// Alignment (bytes) guaranteed for the start of every Matrix/Vector
/// buffer: one AVX2 register, two per cache line.
inline constexpr std::size_t kSimdAlignment = 32;

/// Minimal aligned allocator: every allocation starts on a
/// kSimdAlignment boundary.  Stateless, so all instances are equal and
/// buffers can move between containers freely.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n > static_cast<std::size_t>(-1) / sizeof(T)) throw std::bad_alloc();
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kSimdAlignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kSimdAlignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// Contiguous double storage whose data() is 32-byte aligned.
using AlignedBuffer = std::vector<double, AlignedAllocator<double>>;

}  // namespace foscil::linalg
