#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/simd.hpp"

namespace foscil::linalg {

Vector& Vector::operator+=(const Vector& rhs) {
  FOSCIL_EXPECTS(size() == rhs.size());
  for (std::size_t i = 0; i < size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& rhs) {
  FOSCIL_EXPECTS(size() == rhs.size());
  for (std::size_t i = 0; i < size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Vector& Vector::operator*=(double scale) {
  for (auto& x : data_) x *= scale;
  return *this;
}

double Vector::max() const {
  FOSCIL_EXPECTS(!empty());
  return *std::max_element(data_.begin(), data_.end());
}

double Vector::min() const {
  FOSCIL_EXPECTS(!empty());
  return *std::min_element(data_.begin(), data_.end());
}

std::size_t Vector::argmax() const {
  FOSCIL_EXPECTS(!empty());
  return static_cast<std::size_t>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

double Vector::sum() const {
  double total = 0.0;
  for (double x : data_) total += x;
  return total;
}

double Vector::inf_norm() const {
  double best = 0.0;
  for (double x : data_) best = std::max(best, std::abs(x));
  return best;
}

double Vector::two_norm() const { return std::sqrt(dot(*this, *this)); }

Vector operator+(Vector lhs, const Vector& rhs) { return lhs += rhs; }
Vector operator-(Vector lhs, const Vector& rhs) { return lhs -= rhs; }
Vector operator*(double scale, Vector v) { return v *= scale; }

double dot(const Vector& a, const Vector& b) {
  FOSCIL_EXPECTS(a.size() == b.size());
  return simd::kernels().dot(a.data(), b.data(), a.size());
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    FOSCIL_EXPECTS(row.size() == cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  FOSCIL_EXPECTS(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  FOSCIL_EXPECTS(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scale) {
  for (auto& x : data_) x *= scale;
  return *this;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Vector Matrix::diagonal_vector() const {
  const std::size_t n = std::min(rows_, cols_);
  Vector d(n);
  for (std::size_t i = 0; i < n; ++i) d[i] = (*this)(i, i);
  return d;
}

double Matrix::inf_norm() const {
  double best = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    double row_sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) row_sum += std::abs((*this)(r, c));
    best = std::max(best, row_sum);
  }
  return best;
}

double Matrix::one_norm() const {
  double best = 0.0;
  for (std::size_t c = 0; c < cols_; ++c) {
    double col_sum = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) col_sum += std::abs((*this)(r, c));
    best = std::max(best, col_sum);
  }
  return best;
}

double Matrix::frobenius_norm() const {
  double total = 0.0;
  for (double x : data_) total += x * x;
  return std::sqrt(total);
}

double Matrix::asymmetry() const {
  FOSCIL_EXPECTS(square());
  double worst = 0.0;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = r + 1; c < cols_; ++c)
      worst = std::max(worst, std::abs((*this)(r, c) - (*this)(c, r)));
  return worst;
}

Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
Matrix operator*(double scale, Matrix m) { return m *= scale; }

Matrix operator*(const Matrix& a, const Matrix& b) {
  FOSCIL_EXPECTS(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  // ikj loop order keeps the inner loop streaming over contiguous rows; the
  // axpy kernel vectorizes it without changing per-element arithmetic.
  const simd::Kernels& kern = simd::kernels();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double* ci = c.row_data(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      kern.axpy(b.cols(), aik, b.row_data(k), ci);
    }
  }
  return c;
}

Vector operator*(const Matrix& a, const Vector& x) {
  FOSCIL_EXPECTS(a.cols() == x.size());
  Vector y(a.rows());
  gemv_accumulate(1.0, a, x, y);
  return y;
}

Matrix multiply_transposed_rhs(const Matrix& a, const Matrix& b_t) {
  FOSCIL_EXPECTS(a.cols() == b_t.cols());
  Matrix c(a.rows(), b_t.rows());
  if (c.empty()) return c;
  simd::kernels().mtr(a.rows(), b_t.rows(), a.cols(), a.row_data(0), a.cols(),
                      b_t.row_data(0), b_t.cols(), c.row_data(0), c.cols());
  return c;
}

void gemv_accumulate(double alpha, const Matrix& a, const Vector& x,
                     Vector& y) {
  FOSCIL_EXPECTS(a.cols() == x.size());
  FOSCIL_EXPECTS(a.rows() == y.size());
  const simd::Kernels& kern = simd::kernels();
  for (std::size_t r = 0; r < a.rows(); ++r)
    y[r] += alpha * kern.dot(a.row_data(r), x.data(), a.cols());
}

bool allclose(const Matrix& a, const Matrix& b, double rtol, double atol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c)
      if (std::abs(a(r, c) - b(r, c)) > atol + rtol * std::abs(b(r, c)))
        return false;
  return true;
}

bool allclose(const Vector& a, const Vector& b, double rtol, double atol) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::abs(a[i] - b[i]) > atol + rtol * std::abs(b[i])) return false;
  return true;
}

}  // namespace foscil::linalg
