// LU factorization with partial pivoting.
//
// Used for the steady-state solves of the thermal model: T∞ = -A⁻¹B(v)
// (eq. 2 of the paper) and the Schur-complement solve that pins the core
// nodes at T_max when deriving the ideal constant voltages (Sec. V).
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace foscil::linalg {

/// Factor PA = LU once, then solve/invert repeatedly.
class LuDecomposition {
 public:
  /// Factors a square matrix.  Throws SingularMatrixError when a pivot
  /// column is numerically zero relative to the matrix magnitude.
  explicit LuDecomposition(const Matrix& a);

  [[nodiscard]] std::size_t size() const { return lu_.rows(); }

  /// Solve A x = b.
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// Solve A X = B column-by-column.
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  /// Dense inverse (prefer solve() when a single RHS suffices).
  [[nodiscard]] Matrix inverse() const;

  /// Determinant from the product of pivots and permutation sign.
  [[nodiscard]] double determinant() const;

 private:
  Matrix lu_;                      // packed L (unit diagonal) and U
  std::vector<std::size_t> perm_;  // row permutation
  int sign_ = 1;                   // permutation parity
};

/// Thrown by LuDecomposition when the matrix is singular to working
/// precision.  Carries enough context to diagnose the offending system:
/// which pivot column collapsed, the matrix size, the pivot magnitude,
/// and the matrix inf-norm it was judged against.
class SingularMatrixError : public std::runtime_error {
 public:
  SingularMatrixError(std::size_t column, std::size_t size, double pivot,
                      double inf_norm);

  [[nodiscard]] std::size_t column() const { return column_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] double pivot() const { return pivot_; }
  [[nodiscard]] double inf_norm() const { return inf_norm_; }

 private:
  std::size_t column_;
  std::size_t size_;
  double pivot_;
  double inf_norm_;
};

/// One-shot convenience: solve A x = b.
[[nodiscard]] Vector solve(const Matrix& a, const Vector& b);

/// One-shot convenience: dense inverse of A.
[[nodiscard]] Matrix inverse(const Matrix& a);

}  // namespace foscil::linalg
