#include "linalg/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>

namespace foscil::linalg::simd {

namespace {

// ---------------------------------------------------------------------------
// Scalar kernels: the differential oracle.  Every loop below is the literal
// reduction-order contract from the header; the AVX2 kernels mirror it
// lane-for-lane, so any divergence is a bug the tail-case battery catches.
// ---------------------------------------------------------------------------

double dot_scalar(const double* a, const double* b, std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  double s4 = 0.0, s5 = 0.0, s6 = 0.0, s7 = 0.0;
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    s0 += a[k] * b[k];
    s1 += a[k + 1] * b[k + 1];
    s2 += a[k + 2] * b[k + 2];
    s3 += a[k + 3] * b[k + 3];
    s4 += a[k + 4] * b[k + 4];
    s5 += a[k + 5] * b[k + 5];
    s6 += a[k + 6] * b[k + 6];
    s7 += a[k + 7] * b[k + 7];
  }
  const double u0 = s0 + s4;
  const double u1 = s1 + s5;
  const double u2 = s2 + s6;
  const double u3 = s3 + s7;
  double r = (u0 + u2) + (u1 + u3);
  for (; k < n; ++k) r += a[k] * b[k];
  return r;
}

void axpy_scalar(std::size_t n, double alpha, const double* x, double* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void modal_step_scalar(std::size_t n, const double* e, const double* p,
                       const double* b, double* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] = e[i] * y[i] + p[i] * b[i];
}

void hadamard_scale_scalar(std::size_t n, const double* f, double* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] *= f[i];
}

void mtr_scalar(std::size_t m, std::size_t n, std::size_t depth,
                const double* a, std::size_t lda, const double* b_t,
                std::size_t ldb, double* c, std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* ai = a + i * lda;
    double* ci = c + i * ldc;
    for (std::size_t j = 0; j < n; ++j)
      ci[j] = dot_scalar(ai, b_t + j * ldb, depth);
  }
}

constexpr Kernels kScalarTable{Level::kScalar,     dot_scalar,
                               axpy_scalar,        modal_step_scalar,
                               hadamard_scale_scalar, mtr_scalar};

[[nodiscard]] bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

[[nodiscard]] Level level_from_env() {
  const char* env = std::getenv("FOSCIL_SIMD");
  if (env == nullptr || std::strcmp(env, "auto") == 0 ||
      std::strcmp(env, "") == 0)
    return detected_level();
  if (std::strcmp(env, "scalar") == 0) return Level::kScalar;
  if (std::strcmp(env, "avx2") == 0) {
    if (detected_level() == Level::kAvx2) return Level::kAvx2;
    std::cerr << "warning: FOSCIL_SIMD=avx2 requested but this CPU lacks "
                 "AVX2; using scalar kernels\n";
    return Level::kScalar;
  }
  std::cerr << "warning: unknown FOSCIL_SIMD value '" << env
            << "' (expected scalar|avx2|auto); using auto\n";
  return detected_level();
}

[[nodiscard]] std::atomic<Level>& active_slot() {
  static std::atomic<Level> slot{level_from_env()};
  return slot;
}

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
  }
  return "?";
}

Level detected_level() {
  static const Level level =
      cpu_has_avx2() ? Level::kAvx2 : Level::kScalar;
  return level;
}

Level active_level() {
  return active_slot().load(std::memory_order_relaxed);
}

Level set_active_level(Level level) {
  if (level == Level::kAvx2 && detected_level() != Level::kAvx2)
    level = Level::kScalar;
  return active_slot().exchange(level, std::memory_order_relaxed);
}

const Kernels& kernels(Level level) {
  return level == Level::kAvx2 ? detail::avx2_kernels()
                               : detail::scalar_kernels();
}

const Kernels& kernels() { return kernels(active_level()); }

namespace detail {
const Kernels& scalar_kernels() { return kScalarTable; }
}  // namespace detail

}  // namespace foscil::linalg::simd
