#include "linalg/ode.hpp"

namespace foscil::linalg {

namespace {

/// dx = (A x + b) evaluated without allocation churn.
void derivative(const Matrix& a, const Vector& b, const Vector& x,
                Vector& dx) {
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.row_data(r);
    double acc = b[r];
    for (std::size_t c = 0; c < a.cols(); ++c) acc += row[c] * x[c];
    dx[r] = acc;
  }
}

}  // namespace

Vector rk4_integrate(const Matrix& a, const Vector& b, const Vector& x0,
                     double duration, int steps) {
  FOSCIL_EXPECTS(a.square());
  FOSCIL_EXPECTS(a.rows() == b.size() && a.rows() == x0.size());
  FOSCIL_EXPECTS(duration >= 0.0);
  FOSCIL_EXPECTS(steps >= 1);

  const std::size_t n = x0.size();
  const double h = duration / steps;
  Vector x = x0;
  Vector k1(n);
  Vector k2(n);
  Vector k3(n);
  Vector k4(n);
  Vector stage(n);

  for (int s = 0; s < steps; ++s) {
    derivative(a, b, x, k1);
    for (std::size_t i = 0; i < n; ++i) stage[i] = x[i] + 0.5 * h * k1[i];
    derivative(a, b, stage, k2);
    for (std::size_t i = 0; i < n; ++i) stage[i] = x[i] + 0.5 * h * k2[i];
    derivative(a, b, stage, k3);
    for (std::size_t i = 0; i < n; ++i) stage[i] = x[i] + h * k3[i];
    derivative(a, b, stage, k4);
    for (std::size_t i = 0; i < n; ++i)
      x[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
  }
  return x;
}

Vector rk4_integrate_varying(const Matrix& a,
                             const std::function<Vector(double)>& input,
                             const Vector& x0, double duration, int steps) {
  FOSCIL_EXPECTS(a.square());
  FOSCIL_EXPECTS(a.rows() == x0.size());
  FOSCIL_EXPECTS(duration >= 0.0);
  FOSCIL_EXPECTS(steps >= 1);

  const std::size_t n = x0.size();
  const double h = duration / steps;
  Vector x = x0;
  Vector k1(n);
  Vector k2(n);
  Vector k3(n);
  Vector k4(n);
  Vector stage(n);

  for (int s = 0; s < steps; ++s) {
    const double t = h * s;
    const Vector b0 = input(t);
    const Vector b_half = input(t + 0.5 * h);
    const Vector b1 = input(t + h);
    FOSCIL_EXPECTS(b0.size() == n && b_half.size() == n && b1.size() == n);

    derivative(a, b0, x, k1);
    for (std::size_t i = 0; i < n; ++i) stage[i] = x[i] + 0.5 * h * k1[i];
    derivative(a, b_half, stage, k2);
    for (std::size_t i = 0; i < n; ++i) stage[i] = x[i] + 0.5 * h * k2[i];
    derivative(a, b_half, stage, k3);
    for (std::size_t i = 0; i < n; ++i) stage[i] = x[i] + h * k3[i];
    derivative(a, b1, stage, k4);
    for (std::size_t i = 0; i < n; ++i)
      x[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
  }
  return x;
}

}  // namespace foscil::linalg
