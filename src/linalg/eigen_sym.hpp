// Symmetric eigendecomposition via the cyclic Jacobi method.
//
// The thermal system matrix A = C⁻¹(βE − G) of eq. (2) is similar to the
// symmetric matrix C^{-1/2}(βE − G)C^{-1/2}, so a symmetric eigensolver is
// all the spectral machinery the whole library needs.  Jacobi is a good fit
// at n ≲ 100: simple, unconditionally convergent on symmetric input, and
// accurate to a small multiple of machine epsilon.
#pragma once

#include <stdexcept>
#include <string>

#include "linalg/matrix.hpp"

namespace foscil::linalg {

/// Result of a symmetric eigendecomposition  S = Q · diag(w) · Qᵀ with
/// eigenvalues ascending and Q orthogonal (columns are eigenvectors).
struct SymmetricEigen {
  Vector eigenvalues;
  Matrix eigenvectors;
};

/// Thrown when the cyclic Jacobi iteration fails to drive the off-diagonal
/// energy below tolerance within the sweep budget.  This cannot happen for
/// finite symmetric input (Jacobi is unconditionally convergent), so it
/// indicates NaN/Inf contamination or a caller bypassing the symmetry
/// check; the payload reports the matrix size and how far the iteration
/// got so the offending system can be reconstructed.
class EigenConvergenceError : public std::runtime_error {
 public:
  EigenConvergenceError(std::size_t size, int sweeps, double off_energy,
                        double inf_norm);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] int sweeps() const { return sweeps_; }
  /// Remaining off-diagonal energy (sum of squares) when the budget ran out.
  [[nodiscard]] double off_energy() const { return off_energy_; }
  [[nodiscard]] double inf_norm() const { return inf_norm_; }

 private:
  std::size_t size_;
  int sweeps_;
  double off_energy_;
  double inf_norm_;
};

/// Decompose a symmetric matrix.  `s` must be square and symmetric to within
/// `symmetry_tol` (inf-norm scaled); the strictly-lower triangle is ignored.
/// Throws EigenConvergenceError if the off-diagonal energy is still above
/// tolerance after `max_sweeps` cyclic sweeps (64 is far more than any
/// well-formed symmetric matrix at n ≲ 100 needs).
[[nodiscard]] SymmetricEigen eigen_symmetric(const Matrix& s,
                                             double symmetry_tol = 1e-8,
                                             int max_sweeps = 64);

}  // namespace foscil::linalg
