// Symmetric eigendecomposition via the cyclic Jacobi method.
//
// The thermal system matrix A = C⁻¹(βE − G) of eq. (2) is similar to the
// symmetric matrix C^{-1/2}(βE − G)C^{-1/2}, so a symmetric eigensolver is
// all the spectral machinery the whole library needs.  Jacobi is a good fit
// at n ≲ 100: simple, unconditionally convergent on symmetric input, and
// accurate to a small multiple of machine epsilon.
#pragma once

#include "linalg/matrix.hpp"

namespace foscil::linalg {

/// Result of a symmetric eigendecomposition  S = Q · diag(w) · Qᵀ with
/// eigenvalues ascending and Q orthogonal (columns are eigenvectors).
struct SymmetricEigen {
  Vector eigenvalues;
  Matrix eigenvectors;
};

/// Decompose a symmetric matrix.  `s` must be square and symmetric to within
/// `symmetry_tol` (inf-norm scaled); the strictly-lower triangle is ignored.
[[nodiscard]] SymmetricEigen eigen_symmetric(const Matrix& s,
                                             double symmetry_tol = 1e-8);

}  // namespace foscil::linalg
