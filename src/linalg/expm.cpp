#include "linalg/expm.hpp"

#include <array>
#include <cmath>

#include "linalg/lu.hpp"

namespace foscil::linalg {

namespace {

// Padé coefficients for the [13/13] approximant (Higham 2005, Table 10.4).
constexpr std::array<double, 14> kPade13 = {
    64764752532480000.0, 32382376266240000.0, 7771770303897600.0,
    1187353796428800.0,  129060195264000.0,   10559470521600.0,
    670442572800.0,      33522128640.0,       1323241920.0,
    40840800.0,          960960.0,            16380.0,
    182.0,               1.0};

// theta_13: scale until ||A||_1 <= theta so the approximant holds to eps.
constexpr double kTheta13 = 5.371920351148152;

}  // namespace

Matrix expm(const Matrix& a) {
  FOSCIL_EXPECTS(a.square());
  FOSCIL_EXPECTS(!a.empty());
  const std::size_t n = a.rows();

  // Scaling: A / 2^s with ||A/2^s||_1 <= theta_13.
  const double norm = a.one_norm();
  int squarings = 0;
  if (norm > kTheta13) {
    squarings = static_cast<int>(std::ceil(std::log2(norm / kTheta13)));
  }
  Matrix a_scaled = std::ldexp(1.0, -squarings) * a;

  // Padé(13): U = A(b13 A6³ …), V = even part; exp ≈ (V-U)⁻¹(V+U).
  // The O(n³) work below runs through the transposed-RHS kernel: one O(n²)
  // transpose per product buys contiguous row-dot-products on both factors.
  const Matrix identity = Matrix::identity(n);
  const Matrix a2 = multiply_transposed_rhs(a_scaled, a_scaled.transposed());
  const Matrix a4 = multiply_transposed_rhs(a2, a2.transposed());
  const Matrix a6 = multiply_transposed_rhs(a4, a2.transposed());

  Matrix u_inner = kPade13[13] * a6 + kPade13[11] * a4 + kPade13[9] * a2;
  u_inner = multiply_transposed_rhs(a6, u_inner.transposed());
  u_inner += kPade13[7] * a6 + kPade13[5] * a4 + kPade13[3] * a2 +
             kPade13[1] * identity;
  const Matrix u = multiply_transposed_rhs(a_scaled, u_inner.transposed());

  Matrix v = kPade13[12] * a6 + kPade13[10] * a4 + kPade13[8] * a2;
  v = multiply_transposed_rhs(a6, v.transposed());
  v += kPade13[6] * a6 + kPade13[4] * a4 + kPade13[2] * a2 +
       kPade13[0] * identity;

  Matrix numer = v + u;
  Matrix denom = v - u;
  Matrix result = LuDecomposition(denom).solve(numer);

  // Undo the scaling by repeated squaring.
  for (int s = 0; s < squarings; ++s)
    result = multiply_transposed_rhs(result, result.transposed());
  return result;
}

Matrix expm(const Matrix& a, double t) { return expm(t * a); }

}  // namespace foscil::linalg
