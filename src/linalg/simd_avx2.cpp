// AVX2 kernel table (DESIGN.md §14).
//
// This translation unit is the only one compiled with -mavx2, and it is
// compiled with -ffp-contract=off: GCC is otherwise free to contract the
// mul/add builtin pairs below into FMAs, which round once where the scalar
// oracle rounds twice and would silently break the bit-identity contract.
// The kernels are mirror images of the scalar ones in simd.cpp — same
// eight-accumulator dot shape (two 4-lane registers), same reduction
// order, same sequential tails — so dispatch level never changes a result
// bit.  Callers reach this table only after the CPUID probe in simd.cpp
// says the instructions exist.
#include "linalg/simd.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace foscil::linalg::simd {

namespace {

/// Reduce the two 4-lane accumulators to the canonical scalar: lane sums
/// u_l = s_l + s_{l+4}, then (u0+u2) + (u1+u3) — exactly the scalar
/// oracle's reduction order.
[[nodiscard]] inline double hsum8(__m256d lo, __m256d hi) {
  const __m256d u = _mm256_add_pd(lo, hi);               // [u0 u1 u2 u3]
  const __m128d front = _mm256_castpd256_pd128(u);       // [u0 u1]
  const __m128d back = _mm256_extractf128_pd(u, 1);      // [u2 u3]
  const __m128d pair = _mm_add_pd(front, back);          // [u0+u2, u1+u3]
  return _mm_cvtsd_f64(pair) +
         _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
}

double dot_avx2(const double* a, const double* b, std::size_t n) {
  __m256d lo = _mm256_setzero_pd();
  __m256d hi = _mm256_setzero_pd();
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    lo = _mm256_add_pd(
        lo, _mm256_mul_pd(_mm256_loadu_pd(a + k), _mm256_loadu_pd(b + k)));
    hi = _mm256_add_pd(hi, _mm256_mul_pd(_mm256_loadu_pd(a + k + 4),
                                         _mm256_loadu_pd(b + k + 4)));
  }
  double r = hsum8(lo, hi);
  for (; k < n; ++k) r += a[k] * b[k];
  return r;
}

void axpy_avx2(std::size_t n, double alpha, const double* x, double* y) {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d prod = _mm256_mul_pd(va, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void modal_step_avx2(std::size_t n, const double* e, const double* p,
                     const double* b, double* y) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d decay =
        _mm256_mul_pd(_mm256_loadu_pd(e + i), _mm256_loadu_pd(y + i));
    const __m256d drive =
        _mm256_mul_pd(_mm256_loadu_pd(p + i), _mm256_loadu_pd(b + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(decay, drive));
  }
  for (; i < n; ++i) y[i] = e[i] * y[i] + p[i] * b[i];
}

void hadamard_scale_avx2(std::size_t n, const double* f, double* y) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(
        y + i, _mm256_mul_pd(_mm256_loadu_pd(y + i), _mm256_loadu_pd(f + i)));
  for (; i < n; ++i) y[i] *= f[i];
}

void mtr_avx2(std::size_t m, std::size_t n, std::size_t depth,
              const double* a, std::size_t lda, const double* b_t,
              std::size_t ldb, double* c, std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* ai = a + i * lda;
    double* ci = c + i * ldc;
    std::size_t j = 0;
    // 1×4 micro-tile: four b_t rows share every A-row load.  Each of the
    // four outputs keeps its own lo/hi accumulator pair, so per element
    // the arithmetic is exactly dot_avx2 (and therefore dot_scalar).
    for (; j + 4 <= n; j += 4) {
      const double* b0 = b_t + j * ldb;
      const double* b1 = b0 + ldb;
      const double* b2 = b1 + ldb;
      const double* b3 = b2 + ldb;
      __m256d lo0 = _mm256_setzero_pd(), hi0 = _mm256_setzero_pd();
      __m256d lo1 = _mm256_setzero_pd(), hi1 = _mm256_setzero_pd();
      __m256d lo2 = _mm256_setzero_pd(), hi2 = _mm256_setzero_pd();
      __m256d lo3 = _mm256_setzero_pd(), hi3 = _mm256_setzero_pd();
      std::size_t k = 0;
      for (; k + 8 <= depth; k += 8) {
        const __m256d a_lo = _mm256_loadu_pd(ai + k);
        const __m256d a_hi = _mm256_loadu_pd(ai + k + 4);
        lo0 = _mm256_add_pd(lo0, _mm256_mul_pd(a_lo, _mm256_loadu_pd(b0 + k)));
        hi0 = _mm256_add_pd(hi0,
                            _mm256_mul_pd(a_hi, _mm256_loadu_pd(b0 + k + 4)));
        lo1 = _mm256_add_pd(lo1, _mm256_mul_pd(a_lo, _mm256_loadu_pd(b1 + k)));
        hi1 = _mm256_add_pd(hi1,
                            _mm256_mul_pd(a_hi, _mm256_loadu_pd(b1 + k + 4)));
        lo2 = _mm256_add_pd(lo2, _mm256_mul_pd(a_lo, _mm256_loadu_pd(b2 + k)));
        hi2 = _mm256_add_pd(hi2,
                            _mm256_mul_pd(a_hi, _mm256_loadu_pd(b2 + k + 4)));
        lo3 = _mm256_add_pd(lo3, _mm256_mul_pd(a_lo, _mm256_loadu_pd(b3 + k)));
        hi3 = _mm256_add_pd(hi3,
                            _mm256_mul_pd(a_hi, _mm256_loadu_pd(b3 + k + 4)));
      }
      double r0 = hsum8(lo0, hi0);
      double r1 = hsum8(lo1, hi1);
      double r2 = hsum8(lo2, hi2);
      double r3 = hsum8(lo3, hi3);
      for (; k < depth; ++k) {
        r0 += ai[k] * b0[k];
        r1 += ai[k] * b1[k];
        r2 += ai[k] * b2[k];
        r3 += ai[k] * b3[k];
      }
      ci[j] = r0;
      ci[j + 1] = r1;
      ci[j + 2] = r2;
      ci[j + 3] = r3;
    }
    for (; j < n; ++j) ci[j] = dot_avx2(ai, b_t + j * ldb, depth);
  }
}

constexpr Kernels kAvx2Table{Level::kAvx2,       dot_avx2,
                             axpy_avx2,          modal_step_avx2,
                             hadamard_scale_avx2, mtr_avx2};

}  // namespace

namespace detail {
const Kernels& avx2_kernels() { return kAvx2Table; }
}  // namespace detail

}  // namespace foscil::linalg::simd

#else  // !defined(__AVX2__)

namespace foscil::linalg::simd::detail {
// Built without AVX2 codegen (non-x86 target, or a toolchain without
// -mavx2): the probe in simd.cpp reports scalar-only, and any explicit
// request for the AVX2 table degrades to the oracle.
const Kernels& avx2_kernels() { return scalar_kernels(); }
}  // namespace foscil::linalg::simd::detail

#endif
