// Recursive least squares with exponential forgetting and covariance reset.
//
// Estimates theta in the scalar-measurement linear regression
//     y_k = phi_k^T theta + e_k
// one rank-1 update at a time: O(p^2) per observation, no factorization.
// The forgetting factor discounts old data geometrically so the estimate
// tracks slowly drifting plants; covariance reset re-opens the gain after
// the estimator has wound down (the classic remedy when the plant steps to
// a new regime).  Used by core/identify to regress thermal
// sensor-vs-prediction residuals onto model sensitivity directions.
//
// The covariance P is maintained in units of the measurement-noise
// variance: with unit-variance noise and no forgetting, sqrt(P_ii) is the
// marginal standard deviation of parameter i.  Callers scale their
// parameters so a prior sigma of 1 is a reasonable ignorance prior.
#pragma once

#include "linalg/matrix.hpp"

namespace foscil::linalg {

class RlsEstimator {
 public:
  /// `dim` parameters, prior theta = 0 with standard deviation `prior_sigma`
  /// per parameter (P = prior_sigma^2 I), forgetting factor in (0, 1]
  /// (1 = ordinary least squares, no discounting).
  RlsEstimator(std::size_t dim, double prior_sigma, double forgetting = 1.0);

  [[nodiscard]] std::size_t dim() const { return theta_.size(); }
  [[nodiscard]] std::size_t updates() const { return updates_; }
  [[nodiscard]] double forgetting() const { return forgetting_; }

  /// Absorb one scalar observation y ~ phi^T theta.  An all-zero regressor
  /// carries no information and is skipped (it would otherwise inflate the
  /// covariance through the forgetting division — RLS wind-up).
  void update(const Vector& phi, double y);

  [[nodiscard]] const Vector& theta() const { return theta_; }
  /// Parameter covariance (units of the measurement-noise variance).
  [[nodiscard]] const Matrix& covariance() const { return p_; }
  /// sqrt(P_ii): marginal standard deviation of parameter i.
  [[nodiscard]] double sigma(std::size_t i) const;
  /// max_i sigma(i).
  [[nodiscard]] double max_sigma() const;

  /// Re-open the gain: P := sigma^2 I, keeping theta.  Call when the plant
  /// is known to have changed (e.g. after a thermal-guard trip) so the
  /// estimator can re-converge instead of trusting stale confidence.
  void reset_covariance(double sigma);

  /// Tighten (or widen) the prior of one parameter: P_ii := sigma^2 with
  /// the cross terms zeroed.  Meaningful before the first update — priors
  /// encode per-parameter qualification knowledge (e.g. a leakage slope
  /// characterized pre-silicon deserves a much tighter prior than an
  /// unknown power offset); calling it mid-stream discards accumulated
  /// correlations involving parameter i.
  void set_prior_sigma(std::size_t i, double sigma);

  /// Overwrite the full recursive state (theta, P, update count) — the
  /// warm-restart path of crash-safe persistence (serve/snapshot).  The
  /// estimator continues exactly where the saved one stopped: subsequent
  /// update() calls are bit-identical to the uninterrupted run.  Dimensions
  /// must match this estimator's; the covariance must be square in them.
  void restore(const Vector& theta, const Matrix& covariance,
               std::size_t updates);

 private:
  Vector theta_;
  Matrix p_;
  double forgetting_;
  std::size_t updates_ = 0;
};

}  // namespace foscil::linalg
