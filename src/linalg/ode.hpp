// Classical fixed-step RK4 for the linear system  dx/dt = A x + b.
//
// The production thermal engine evaluates eq. (3) exactly through the
// spectral cache; this integrator is a deliberately independent numerical
// path (no eigendecomposition, no expm) used by tests to cross-validate the
// analytic solution and by experiments that inject time-varying inputs the
// closed form does not cover.
#pragma once

#include <functional>

#include "linalg/matrix.hpp"

namespace foscil::linalg {

/// Integrate dx/dt = A x + b from x0 over `duration` seconds using `steps`
/// uniform RK4 steps.  O(steps * n^2); global error O(h^4).
[[nodiscard]] Vector rk4_integrate(const Matrix& a, const Vector& b,
                                   const Vector& x0, double duration,
                                   int steps);

/// Integrate dx/dt = A x + b(t) with a caller-supplied input; `input(t)`
/// must return an n-vector.  Inputs are sampled at the RK4 stage times.
[[nodiscard]] Vector rk4_integrate_varying(
    const Matrix& a, const std::function<Vector(double)>& input,
    const Vector& x0, double duration, int steps);

}  // namespace foscil::linalg
