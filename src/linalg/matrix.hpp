// Dense row-major matrix and vector value types.
//
// foscil carries its own small linear-algebra layer because the thermal
// model (eq. 2 of the paper) only needs dense kernels on systems of a few
// dozen nodes: LU solves, a symmetric eigensolver, and matrix exponentials.
// Everything is double precision and value-semantic (C++ Core Guidelines
// C.10): copies are cheap at these sizes and aliasing bugs are not worth a
// expression-template layer.
#pragma once

#include <cstddef>
#include <initializer_list>

#include "linalg/aligned.hpp"
#include "util/contracts.hpp"

namespace foscil::linalg {

class Matrix;

/// Dense real vector.  Storage starts 32-byte aligned (linalg/aligned.hpp)
/// so the SIMD kernel layer streams it split-free.
class Vector {
 public:
  Vector() = default;
  explicit Vector(std::size_t n, double fill = 0.0) : data_(n, fill) {}
  Vector(std::initializer_list<double> values)
      : data_(values.begin(), values.end()) {}

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  double& operator[](std::size_t i) {
    FOSCIL_EXPECTS(i < data_.size());
    return data_[i];
  }
  double operator[](std::size_t i) const {
    FOSCIL_EXPECTS(i < data_.size());
    return data_[i];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  Vector& operator+=(const Vector& rhs);
  Vector& operator-=(const Vector& rhs);
  Vector& operator*=(double scale);

  /// Largest element (requires non-empty).
  [[nodiscard]] double max() const;
  /// Smallest element (requires non-empty).
  [[nodiscard]] double min() const;
  /// Index of the largest element (requires non-empty).
  [[nodiscard]] std::size_t argmax() const;
  /// Sum of elements.
  [[nodiscard]] double sum() const;
  /// Max-norm.
  [[nodiscard]] double inf_norm() const;
  /// Euclidean norm.
  [[nodiscard]] double two_norm() const;

 private:
  AlignedBuffer data_;
};

[[nodiscard]] Vector operator+(Vector lhs, const Vector& rhs);
[[nodiscard]] Vector operator-(Vector lhs, const Vector& rhs);
[[nodiscard]] Vector operator*(double scale, Vector v);
[[nodiscard]] double dot(const Vector& a, const Vector& b);

/// Dense real matrix, row-major.  Storage starts 32-byte aligned
/// (linalg/aligned.hpp); rows are packed with no padding, so only row 0 is
/// guaranteed aligned — kernels issue unaligned loads throughout.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Build from nested initializer lists; all rows must agree in width.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] static Matrix identity(std::size_t n);
  /// Diagonal matrix from a vector.
  [[nodiscard]] static Matrix diagonal(const Vector& d);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool square() const { return rows_ == cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    FOSCIL_EXPECTS(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    FOSCIL_EXPECTS(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  double* row_data(std::size_t r) {
    FOSCIL_EXPECTS(r < rows_);
    return data_.data() + r * cols_;
  }
  const double* row_data(std::size_t r) const {
    FOSCIL_EXPECTS(r < rows_);
    return data_.data() + r * cols_;
  }

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double scale);

  [[nodiscard]] Matrix transposed() const;
  /// Extract the main diagonal.
  [[nodiscard]] Vector diagonal_vector() const;
  /// Sum of |a_ij| maximized over rows (the induced inf-norm).
  [[nodiscard]] double inf_norm() const;
  /// Sum of |a_ij| maximized over columns (the induced 1-norm).
  [[nodiscard]] double one_norm() const;
  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const;
  /// Largest |a_ij - a_ji|; zero for symmetric matrices.
  [[nodiscard]] double asymmetry() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  AlignedBuffer data_;
};

[[nodiscard]] Matrix operator+(Matrix lhs, const Matrix& rhs);
[[nodiscard]] Matrix operator-(Matrix lhs, const Matrix& rhs);
[[nodiscard]] Matrix operator*(double scale, Matrix m);
[[nodiscard]] Matrix operator*(const Matrix& a, const Matrix& b);
[[nodiscard]] Vector operator*(const Matrix& a, const Vector& x);

/// y += alpha * A * x without allocating.
void gemv_accumulate(double alpha, const Matrix& a, const Vector& x,
                     Vector& y);

/// a · b_tᵀ given the right factor already transposed: every inner product
/// streams two contiguous rows, so no strided column walks remain — the
/// packed-GEMM form for back-transform batches where the columns of the
/// logical RHS are naturally produced as rows (e.g. one modal boundary per
/// candidate schedule).  Dispatches to the SIMD kernel layer
/// (linalg/simd.hpp), whose AVX2 micro-tile reuses each A-row load across
/// four b_t rows.  Requires a.cols() == b_t.cols().
[[nodiscard]] Matrix multiply_transposed_rhs(const Matrix& a,
                                             const Matrix& b_t);

/// True when |a_ij - b_ij| <= atol + rtol * |b_ij| for all entries.
[[nodiscard]] bool allclose(const Matrix& a, const Matrix& b,
                            double rtol = 1e-9, double atol = 1e-12);
[[nodiscard]] bool allclose(const Vector& a, const Vector& b,
                            double rtol = 1e-9, double atol = 1e-12);

}  // namespace foscil::linalg
