#include "linalg/rls.hpp"

#include <algorithm>
#include <cmath>

namespace foscil::linalg {

RlsEstimator::RlsEstimator(std::size_t dim, double prior_sigma,
                           double forgetting)
    : theta_(dim), forgetting_(forgetting) {
  FOSCIL_EXPECTS(dim >= 1);
  FOSCIL_EXPECTS(prior_sigma > 0.0);
  FOSCIL_EXPECTS(forgetting > 0.0 && forgetting <= 1.0);
  p_ = Matrix(dim, dim);
  for (std::size_t i = 0; i < dim; ++i) p_(i, i) = prior_sigma * prior_sigma;
}

void RlsEstimator::update(const Vector& phi, double y) {
  const std::size_t n = dim();
  FOSCIL_EXPECTS(phi.size() == n);

  bool informative = false;
  for (std::size_t i = 0; i < n; ++i)
    if (phi[i] != 0.0) {
      informative = true;
      break;
    }
  if (!informative) return;

  // Gain: k = P phi / (lambda + phi' P phi).
  Vector p_phi(n);
  for (std::size_t r = 0; r < n; ++r) {
    double acc = 0.0;
    const double* row = p_.row_data(r);
    for (std::size_t c = 0; c < n; ++c) acc += row[c] * phi[c];
    p_phi[r] = acc;
  }
  const double denom = forgetting_ + dot(phi, p_phi);
  FOSCIL_ASSERT(denom > 0.0);

  const double innovation = y - dot(phi, theta_);
  for (std::size_t i = 0; i < n; ++i)
    theta_[i] += p_phi[i] / denom * innovation;

  // P := (P - (P phi)(P phi)' / denom) / lambda, then re-symmetrize so
  // rounding cannot accumulate an antisymmetric part over many updates.
  for (std::size_t r = 0; r < n; ++r) {
    double* row = p_.row_data(r);
    const double pr = p_phi[r] / denom;
    for (std::size_t c = 0; c < n; ++c)
      row[c] = (row[c] - pr * p_phi[c]) / forgetting_;
  }
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = r + 1; c < n; ++c) {
      const double avg = 0.5 * (p_(r, c) + p_(c, r));
      p_(r, c) = avg;
      p_(c, r) = avg;
    }
  ++updates_;
}

double RlsEstimator::sigma(std::size_t i) const {
  FOSCIL_EXPECTS(i < dim());
  return std::sqrt(std::max(0.0, p_(i, i)));
}

double RlsEstimator::max_sigma() const {
  double worst = 0.0;
  for (std::size_t i = 0; i < dim(); ++i) worst = std::max(worst, sigma(i));
  return worst;
}

void RlsEstimator::set_prior_sigma(std::size_t i, double sigma) {
  FOSCIL_EXPECTS(i < dim());
  FOSCIL_EXPECTS(sigma > 0.0);
  for (std::size_t j = 0; j < dim(); ++j) {
    p_(i, j) = 0.0;
    p_(j, i) = 0.0;
  }
  p_(i, i) = sigma * sigma;
}

void RlsEstimator::reset_covariance(double sigma) {
  FOSCIL_EXPECTS(sigma > 0.0);
  p_ = Matrix(dim(), dim());
  for (std::size_t i = 0; i < dim(); ++i) p_(i, i) = sigma * sigma;
}

void RlsEstimator::restore(const Vector& theta, const Matrix& covariance,
                           std::size_t updates) {
  FOSCIL_EXPECTS(theta.size() == dim());
  FOSCIL_EXPECTS(covariance.rows() == dim());
  FOSCIL_EXPECTS(covariance.cols() == dim());
  theta_ = theta;
  p_ = covariance;
  updates_ = updates;
}

}  // namespace foscil::linalg
