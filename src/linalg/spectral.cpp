#include "linalg/spectral.hpp"

#include <cmath>

namespace foscil::linalg {

SpectralDecomposition::SpectralDecomposition(const Matrix& s,
                                             const Vector& c) {
  FOSCIL_EXPECTS(s.square());
  FOSCIL_EXPECTS(s.rows() == c.size());
  const std::size_t n = c.size();
  for (std::size_t i = 0; i < n; ++i) FOSCIL_EXPECTS(c[i] > 0.0);

  // Ŝ = C^{-1/2} S C^{-1/2} stays symmetric.
  Vector inv_sqrt_c(n);
  Vector sqrt_c(n);
  for (std::size_t i = 0; i < n; ++i) {
    sqrt_c[i] = std::sqrt(c[i]);
    inv_sqrt_c[i] = 1.0 / sqrt_c[i];
  }
  Matrix s_hat(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t col = 0; col < n; ++col)
      s_hat(r, col) = inv_sqrt_c[r] * s(r, col) * inv_sqrt_c[col];

  const SymmetricEigen eig = eigen_symmetric(s_hat);
  eigenvalues_ = eig.eigenvalues;

  w_ = Matrix(n, n);
  w_inv_ = Matrix(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t col = 0; col < n; ++col) {
      w_(r, col) = inv_sqrt_c[r] * eig.eigenvectors(r, col);
      w_inv_(r, col) = eig.eigenvectors(col, r) * sqrt_c[col];
    }
}

bool SpectralDecomposition::stable() const {
  for (double lambda : eigenvalues_)
    if (lambda >= 0.0) return false;
  return true;
}

Matrix SpectralDecomposition::matrix() const {
  const std::size_t n = size();
  Matrix scaled = w_;
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) scaled(r, c) *= eigenvalues_[c];
  return scaled * w_inv_;
}

Matrix SpectralDecomposition::exp(double t) const {
  const std::size_t n = size();
  Matrix scaled = w_;
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      scaled(r, c) *= std::exp(eigenvalues_[c] * t);
  return scaled * w_inv_;
}

Vector SpectralDecomposition::exp_apply(double t, const Vector& x) const {
  FOSCIL_EXPECTS(x.size() == size());
  Vector y = w_inv_ * x;
  for (std::size_t i = 0; i < y.size(); ++i)
    y[i] *= std::exp(eigenvalues_[i] * t);
  return w_ * y;
}

Vector SpectralDecomposition::phi_apply(double t, const Vector& x) const {
  FOSCIL_EXPECTS(x.size() == size());
  FOSCIL_EXPECTS(t >= 0.0);
  Vector y = w_inv_ * x;
  for (std::size_t i = 0; i < y.size(); ++i)
    y[i] *= phi_factor(eigenvalues_[i], t);
  return w_ * y;
}

}  // namespace foscil::linalg
