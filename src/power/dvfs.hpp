// Discrete DVFS running-mode sets.
//
// Each running mode is a (v, f) pair; following the paper (Sec. II-A) the
// normalized working frequency equals the supply voltage, so a mode is
// identified by its voltage and "speed" means volts-worth of work per second.
// The paper's evaluation uses levels in [0.6 V, 1.3 V] with a 0.05 V step
// plus the reduced sets of Table IV.
#pragma once

#include <optional>
#include <vector>

#include "util/contracts.hpp"

namespace foscil::power {

/// Normalized processing speed of a mode (paper uses f == v).
[[nodiscard]] inline double speed_of(double voltage) {
  FOSCIL_EXPECTS(voltage >= 0.0);
  return voltage;
}

/// The two discrete levels bracketing a target voltage.
struct NeighboringModes {
  double low = 0.0;
  double high = 0.0;
  /// True when the target coincided with an available level (low == high).
  [[nodiscard]] bool exact() const { return low == high; }
};

/// Sorted, de-duplicated set of available supply voltages.
class VoltageLevels {
 public:
  /// Levels are sorted and must be strictly positive.
  explicit VoltageLevels(std::vector<double> levels);

  [[nodiscard]] std::size_t count() const { return levels_.size(); }
  [[nodiscard]] const std::vector<double>& values() const { return levels_; }
  [[nodiscard]] double lowest() const { return levels_.front(); }
  [[nodiscard]] double highest() const { return levels_.back(); }
  [[nodiscard]] double level(std::size_t i) const {
    FOSCIL_EXPECTS(i < levels_.size());
    return levels_[i];
  }

  [[nodiscard]] bool contains(double v, double tol = 1e-12) const;

  /// Largest level <= v; empty when v is below the lowest level.
  [[nodiscard]] std::optional<double> floor_level(double v) const;
  /// Smallest level >= v; empty when v is above the highest level.
  [[nodiscard]] std::optional<double> ceil_level(double v) const;

  /// Neighboring modes around `target` (Theorem 4's choice): the closest
  /// levels with low <= target <= high, clamped to the extremes when the
  /// target leaves the range.
  [[nodiscard]] NeighboringModes neighbors(double target) const;

  /// The paper's Table IV mode sets: n in [2, 5].
  [[nodiscard]] static VoltageLevels paper_table4(int num_levels);
  /// Full range 0.6 V .. 1.3 V with a 0.05 V step (15 levels).
  [[nodiscard]] static VoltageLevels paper_full_range();

 private:
  std::vector<double> levels_;
};

}  // namespace foscil::power
