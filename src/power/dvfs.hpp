// Discrete DVFS running-mode sets.
//
// Each running mode is a (v, f) pair; following the paper (Sec. II-A) the
// normalized working frequency equals the supply voltage, so a mode is
// identified by its voltage and "speed" means volts-worth of work per second.
// The paper's evaluation uses levels in [0.6 V, 1.3 V] with a 0.05 V step
// plus the reduced sets of Table IV.
#pragma once

#include <optional>
#include <vector>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace foscil::power {

/// Normalized processing speed of a mode (paper uses f == v).
[[nodiscard]] inline double speed_of(double voltage) {
  FOSCIL_EXPECTS(voltage >= 0.0);
  return voltage;
}

/// The two discrete levels bracketing a target voltage.
struct NeighboringModes {
  double low = 0.0;
  double high = 0.0;
  /// True when the target coincided with an available level (low == high).
  [[nodiscard]] bool exact() const { return low == high; }
};

/// Sorted, de-duplicated set of available supply voltages.
class VoltageLevels {
 public:
  /// Levels are sorted and must be strictly positive.
  explicit VoltageLevels(std::vector<double> levels);

  [[nodiscard]] std::size_t count() const { return levels_.size(); }
  [[nodiscard]] const std::vector<double>& values() const { return levels_; }
  [[nodiscard]] double lowest() const { return levels_.front(); }
  [[nodiscard]] double highest() const { return levels_.back(); }
  [[nodiscard]] double level(std::size_t i) const {
    FOSCIL_EXPECTS(i < levels_.size());
    return levels_[i];
  }

  [[nodiscard]] bool contains(double v, double tol = 1e-12) const;

  /// Largest level <= v; empty when v is below the lowest level.
  [[nodiscard]] std::optional<double> floor_level(double v) const;
  /// Smallest level >= v; empty when v is above the highest level.
  [[nodiscard]] std::optional<double> ceil_level(double v) const;

  /// Neighboring modes around `target` (Theorem 4's choice): the closest
  /// levels with low <= target <= high, clamped to the extremes when the
  /// target leaves the range.
  [[nodiscard]] NeighboringModes neighbors(double target) const;

  /// The paper's Table IV mode sets: n in [2, 5].
  [[nodiscard]] static VoltageLevels paper_table4(int num_levels);
  /// Full range 0.6 V .. 1.3 V with a 0.05 V step (15 levels).
  [[nodiscard]] static VoltageLevels paper_full_range();

 private:
  std::vector<double> levels_;
};

/// What became of one requested mode change (fault-injection hook used by
/// sim::FaultedPlant; real PMICs drop or postpone transitions under load).
enum class TransitionOutcome {
  kApplied,  ///< took effect immediately
  kDropped,  ///< silently ignored; the core keeps its current mode
  kDelayed,  ///< takes effect `delay_s` seconds after the request
};

/// Probabilistic DVFS actuator failures.  A requested mode change is dropped
/// with `drop_probability`, otherwise delayed by `delay_s` seconds with
/// `delay_probability`; the remainder apply immediately.
struct TransitionFaults {
  double drop_probability = 0.0;
  double delay_probability = 0.0;
  double delay_s = 0.0;  ///< latency of a delayed transition

  [[nodiscard]] bool any() const {
    return drop_probability > 0.0 || delay_probability > 0.0;
  }

  void check() const {
    FOSCIL_EXPECTS(drop_probability >= 0.0 && drop_probability <= 1.0);
    FOSCIL_EXPECTS(delay_probability >= 0.0 && delay_probability <= 1.0);
    FOSCIL_EXPECTS(delay_s >= 0.0);
    FOSCIL_EXPECTS(delay_probability == 0.0 || delay_s > 0.0);
  }
};

/// Roll the dice for one requested transition.  Drop wins over delay when
/// both trigger (the request never reached the voltage regulator).
[[nodiscard]] TransitionOutcome decide_transition(const TransitionFaults& f,
                                                  Rng& rng);

}  // namespace foscil::power
