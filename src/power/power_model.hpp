// Per-core power model (eq. 1 of the paper).
//
//   P_i(t) = alpha_i(v_i) + beta_i * T_i(t) + gamma_i(v_i) * v_i^3
//
// with T measured as rise over ambient (the ambient-temperature leakage is
// folded into alpha).  The paper's evaluation uses one coefficient set for
// every core; the model also supports *heterogeneous* per-core coefficients
// (process variation, binned cores — the "different thermal behaviors" its
// abstract motivates), which flow through the thermal model and every
// scheduler.  Constants are abstracted from McPAT at 65 nm (see DESIGN.md
// calibration notes).
#pragma once

#include <cmath>
#include <vector>

#include "util/contracts.hpp"

namespace foscil::power {

/// Coefficients of eq. (1) for one core.
struct PowerCoefficients {
  double alpha = 1.0;   ///< W, voltage-dependent leakage offset
  double beta = 0.3;    ///< W/K, leakage growth per kelvin of rise
  double gamma = 9.0;   ///< W/V^3, dynamic switching coefficient

  void check() const {
    FOSCIL_EXPECTS(alpha >= 0.0);
    FOSCIL_EXPECTS(beta >= 0.0);
    FOSCIL_EXPECTS(gamma > 0.0);
  }
};

class PowerModel {
 public:
  /// Backwards-compatible alias (single coefficient set).
  using Coefficients = PowerCoefficients;

  /// Homogeneous model: every core shares one coefficient set.
  PowerModel() : PowerModel(PowerCoefficients{}) {}
  explicit PowerModel(const PowerCoefficients& c) : uniform_(c) {
    uniform_.check();
  }

  /// Heterogeneous model: one coefficient set per core (index = core id).
  explicit PowerModel(std::vector<PowerCoefficients> per_core)
      : per_core_(std::move(per_core)) {
    FOSCIL_EXPECTS(!per_core_.empty());
    for (const auto& c : per_core_) c.check();
    uniform_ = per_core_.front();
  }

  [[nodiscard]] bool heterogeneous() const { return !per_core_.empty(); }

  /// Number of per-core entries (0 for a homogeneous model).
  [[nodiscard]] std::size_t per_core_count() const {
    return per_core_.size();
  }

  [[nodiscard]] const PowerCoefficients& coefficients(
      std::size_t core = 0) const {
    if (per_core_.empty()) return uniform_;
    FOSCIL_EXPECTS(core < per_core_.size());
    return per_core_[core];
  }

  [[nodiscard]] double alpha(std::size_t core, double voltage) const {
    return voltage > 0.0 ? coefficients(core).alpha : 0.0;  // power-gated
  }
  [[nodiscard]] double beta(std::size_t core) const {
    return coefficients(core).beta;
  }
  [[nodiscard]] double gamma(std::size_t core, double voltage) const {
    FOSCIL_EXPECTS(voltage >= 0.0);
    return coefficients(core).gamma;
  }

  /// Temperature-independent heat injection: psi(v) = alpha + gamma v^3.
  /// The beta*T part lives inside the thermal system matrix A.
  [[nodiscard]] double psi(std::size_t core, double voltage) const {
    FOSCIL_EXPECTS(voltage >= 0.0);
    if (voltage == 0.0) return 0.0;
    const auto& c = coefficients(core);
    return c.alpha + c.gamma * voltage * voltage * voltage;
  }

  /// Total power at a given temperature rise.
  [[nodiscard]] double total(std::size_t core, double voltage,
                             double rise_kelvin) const {
    if (voltage == 0.0) return 0.0;
    return psi(core, voltage) + coefficients(core).beta * rise_kelvin;
  }

  /// Invert psi for a core: the voltage whose heat injection equals
  /// `psi_watts` (clamped at zero below the leakage floor).
  [[nodiscard]] double voltage_for_psi(std::size_t core,
                                       double psi_watts) const {
    const auto& c = coefficients(core);
    const double dynamic = psi_watts - c.alpha;
    if (dynamic <= 0.0) return 0.0;
    return std::cbrt(dynamic / c.gamma);
  }

  // --- homogeneous-model conveniences (core 0) -------------------------
  [[nodiscard]] double alpha(double voltage) const {
    return alpha(0, voltage);
  }
  [[nodiscard]] double beta() const { return beta(0); }
  [[nodiscard]] double gamma(double voltage) const {
    return gamma(0, voltage);
  }
  [[nodiscard]] double psi(double voltage) const { return psi(0, voltage); }
  [[nodiscard]] double total(double voltage, double rise_kelvin) const {
    return total(0, voltage, rise_kelvin);
  }
  [[nodiscard]] double voltage_for_psi(double psi_watts) const {
    return voltage_for_psi(0, psi_watts);
  }

 private:
  PowerCoefficients uniform_;
  std::vector<PowerCoefficients> per_core_;
};

}  // namespace foscil::power
