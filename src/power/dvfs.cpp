#include "power/dvfs.hpp"

#include <algorithm>
#include <cmath>

namespace foscil::power {

VoltageLevels::VoltageLevels(std::vector<double> levels)
    : levels_(std::move(levels)) {
  FOSCIL_EXPECTS(!levels_.empty());
  std::sort(levels_.begin(), levels_.end());
  levels_.erase(std::unique(levels_.begin(), levels_.end()), levels_.end());
  FOSCIL_EXPECTS(levels_.front() > 0.0);
}

bool VoltageLevels::contains(double v, double tol) const {
  for (double level : levels_)
    if (std::abs(level - v) <= tol) return true;
  return false;
}

std::optional<double> VoltageLevels::floor_level(double v) const {
  auto it = std::upper_bound(levels_.begin(), levels_.end(), v);
  if (it == levels_.begin()) return std::nullopt;
  return *std::prev(it);
}

std::optional<double> VoltageLevels::ceil_level(double v) const {
  auto it = std::lower_bound(levels_.begin(), levels_.end(), v);
  if (it == levels_.end()) return std::nullopt;
  return *it;
}

NeighboringModes VoltageLevels::neighbors(double target) const {
  NeighboringModes modes;
  if (target <= lowest()) {
    modes.low = modes.high = lowest();
    return modes;
  }
  if (target >= highest()) {
    modes.low = modes.high = highest();
    return modes;
  }
  if (contains(target)) {
    modes.low = modes.high = *floor_level(target + 1e-12);
    return modes;
  }
  modes.low = *floor_level(target);
  modes.high = *ceil_level(target);
  return modes;
}

VoltageLevels VoltageLevels::paper_table4(int num_levels) {
  switch (num_levels) {
    case 2:
      return VoltageLevels({0.6, 1.3});
    case 3:
      return VoltageLevels({0.6, 0.8, 1.3});
    case 4:
      return VoltageLevels({0.6, 0.8, 1.0, 1.3});
    case 5:
      return VoltageLevels({0.6, 0.8, 1.0, 1.2, 1.3});
    default:
      throw ContractViolation("Precondition", "num_levels in [2, 5]",
                              std::source_location::current());
  }
}

VoltageLevels VoltageLevels::paper_full_range() {
  std::vector<double> levels;
  for (int i = 0; i <= 14; ++i) levels.push_back(0.6 + 0.05 * i);
  return VoltageLevels(std::move(levels));
}

TransitionOutcome decide_transition(const TransitionFaults& f, Rng& rng) {
  f.check();
  if (!f.any()) return TransitionOutcome::kApplied;
  // One uniform draw per request keeps the stream consumption constant per
  // decision, so seeded runs stay reproducible across fault mixes.
  const double roll = rng.uniform(0.0, 1.0);
  if (roll < f.drop_probability) return TransitionOutcome::kDropped;
  if (roll < f.drop_probability + f.delay_probability)
    return TransitionOutcome::kDelayed;
  return TransitionOutcome::kApplied;
}

}  // namespace foscil::power
