// Peak temperature identification for periodic schedules (Sec. IV).
//
// Two paths:
//  * step_up_peak — Theorem 1: for a step-up schedule the stable-status peak
//    (over cores) sits exactly at the period end, so one cold-start period
//    simulation plus one resolvent application identifies it.  Linear in the
//    number of state intervals.
//  * sampled_peak — the general path for arbitrary periodic schedules (on a
//    multi-core platform the peak need not land on a scheduling point):
//    walk one stable-status period, sampling each state interval densely.
#pragma once

#include "sim/steady.hpp"

namespace foscil::sim {

/// Where/when/how hot the schedule gets in stable status.
struct PeakInfo {
  double rise = 0.0;        ///< K over ambient
  double time = 0.0;        ///< offset within the period
  std::size_t core = 0;     ///< hottest core index
};

/// Theorem 1 fast path; requires `s.is_step_up()`.
[[nodiscard]] PeakInfo step_up_peak(const SteadyStateAnalyzer& analyzer,
                                    const sched::PeriodicSchedule& s);

/// step_up_peak for a batch of step-up candidates, bit-identical to the
/// per-schedule calls; the stable rises come from one amortized batch
/// evaluation (SteadyStateAnalyzer::batch_stable_core_rises).
[[nodiscard]] std::vector<PeakInfo> batch_step_up_peaks(
    const SteadyStateAnalyzer& analyzer,
    const std::vector<sched::PeriodicSchedule>& schedules);

/// General path: densely sampled stable-status peak.  `samples_per_interval`
/// controls resolution within each state interval.
[[nodiscard]] PeakInfo sampled_peak(const SteadyStateAnalyzer& analyzer,
                                    const sched::PeriodicSchedule& s,
                                    int samples_per_interval = 64);

}  // namespace foscil::sim
