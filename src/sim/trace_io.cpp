#include "sim/trace_io.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace foscil::sim {

namespace {

/// "<what> trace file: <path> (<errno text>)" — the errno detail is what
/// distinguishes disk-full from permission from a bad directory.
[[noreturn]] void throw_io_error(const std::string& what,
                                 const std::string& path) {
  std::string message = what + ": " + path;
  if (errno != 0)
    message += std::string(" (") + std::strerror(errno) + ")";
  throw std::runtime_error(message);
}

}  // namespace

std::string trace_to_csv(const thermal::ThermalModel& model,
                         const std::vector<TraceSample>& trace,
                         double t_ambient_c, TraceColumns columns) {
  std::ostringstream out;
  out << std::setprecision(9);

  const bool cores_only = columns == TraceColumns::kCores;
  const std::size_t width =
      cores_only ? model.num_cores() : model.num_nodes();
  out << "time_s";
  for (std::size_t i = 0; i < width; ++i)
    out << ',' << (cores_only ? "core" : "node") << i << "_c";
  out << '\n';

  for (const auto& sample : trace) {
    FOSCIL_EXPECTS(sample.rises.size() == model.num_nodes());
    out << sample.time;
    if (cores_only) {
      const linalg::Vector cores = model.core_rises(sample.rises);
      for (std::size_t i = 0; i < cores.size(); ++i)
        out << ',' << t_ambient_c + cores[i];
    } else {
      for (std::size_t i = 0; i < sample.rises.size(); ++i)
        out << ',' << t_ambient_c + sample.rises[i];
    }
    out << '\n';
  }
  return out.str();
}

void write_trace_csv(const std::string& path,
                     const thermal::ThermalModel& model,
                     const std::vector<TraceSample>& trace,
                     double t_ambient_c, TraceColumns columns) {
  errno = 0;
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) throw_io_error("cannot open trace file", path);
  out << trace_to_csv(model, trace, t_ambient_c, columns);
  if (!out) throw_io_error("failed writing trace file", path);
  // A successful `<<` only proves the stream buffer accepted the bytes.
  // Flush and close explicitly so a full disk or revoked write permission
  // surfaces here instead of silently truncating the file in ~ofstream.
  out.flush();
  if (!out) throw_io_error("failed flushing trace file", path);
  out.close();
  if (out.fail()) throw_io_error("failed closing trace file", path);
}

}  // namespace foscil::sim
