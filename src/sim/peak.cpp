#include "sim/peak.hpp"

namespace foscil::sim {

PeakInfo step_up_peak(const SteadyStateAnalyzer& analyzer,
                      const sched::PeriodicSchedule& s) {
  FOSCIL_EXPECTS(s.is_step_up());
  const linalg::Vector cores = analyzer.stable_core_rises(s);
  PeakInfo info;
  info.core = cores.argmax();
  info.rise = cores[info.core];
  info.time = s.period();
  return info;
}

std::vector<PeakInfo> batch_step_up_peaks(
    const SteadyStateAnalyzer& analyzer,
    const std::vector<sched::PeriodicSchedule>& schedules) {
  for (const auto& s : schedules) FOSCIL_EXPECTS(s.is_step_up());
  const std::vector<linalg::Vector> rises =
      analyzer.batch_stable_core_rises(schedules.data(), schedules.size());
  std::vector<PeakInfo> peaks(schedules.size());
  for (std::size_t i = 0; i < schedules.size(); ++i) {
    peaks[i].core = rises[i].argmax();
    peaks[i].rise = rises[i][peaks[i].core];
    peaks[i].time = schedules[i].period();
  }
  return peaks;
}

PeakInfo sampled_peak(const SteadyStateAnalyzer& analyzer,
                      const sched::PeriodicSchedule& s,
                      int samples_per_interval) {
  FOSCIL_EXPECTS(samples_per_interval >= 1);
  const auto& model = analyzer.model();
  const auto& sim = analyzer.simulator();
  const auto intervals = s.state_intervals();

  PeakInfo info;
  linalg::Vector at_start = analyzer.stable_boundary(s);
  double now = 0.0;

  // Consider the period boundary itself first.
  {
    const linalg::Vector cores = model.core_rises(at_start);
    info.core = cores.argmax();
    info.rise = cores[info.core];
    info.time = 0.0;
  }

  for (const auto& interval : intervals) {
    for (int k = 1; k <= samples_per_interval; ++k) {
      const double local = interval.length * static_cast<double>(k) /
                           static_cast<double>(samples_per_interval);
      const linalg::Vector temps =
          sim.advance(at_start, interval.voltages, local);
      const linalg::Vector cores = model.core_rises(temps);
      const std::size_t hottest = cores.argmax();
      if (cores[hottest] > info.rise) {
        info.rise = cores[hottest];
        info.core = hottest;
        info.time = now + local;
      }
      if (k == samples_per_interval) at_start = temps;
    }
    now += interval.length;
  }
  return info;
}

}  // namespace foscil::sim
