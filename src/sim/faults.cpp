#include "sim/faults.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace foscil::sim {

namespace {

constexpr double kPi = 3.14159265358979323846;

}  // namespace

bool FaultSpec::perturbs_plant() const {
  return r_convection_scale != 1.0 || k_tim_scale != 1.0 || c_scale != 1.0 ||
         alpha_scale != 1.0 || beta_scale != 1.0 || gamma_scale != 1.0 ||
         power_jitter > 0.0;
}

bool FaultSpec::any() const {
  return sensors.any() || transitions.any() || perturbs_plant() ||
         ambient_drift_c != 0.0;
}

void FaultSpec::check() const {
  sensors.check();
  transitions.check();
  FOSCIL_EXPECTS(r_convection_scale > 0.0);
  FOSCIL_EXPECTS(k_tim_scale > 0.0);
  FOSCIL_EXPECTS(c_scale > 0.0);
  FOSCIL_EXPECTS(alpha_scale > 0.0);
  FOSCIL_EXPECTS(beta_scale > 0.0);
  FOSCIL_EXPECTS(gamma_scale > 0.0);
  FOSCIL_EXPECTS(power_jitter >= 0.0 && power_jitter < 1.0);
  FOSCIL_EXPECTS(ambient_drift_c >= 0.0);
  FOSCIL_EXPECTS(ambient_drift_period_s > 0.0);
}

FaultSpec FaultSpec::at_intensity(double intensity, std::uint64_t seed) {
  FOSCIL_EXPECTS(std::isfinite(intensity));
  intensity = std::clamp(intensity, 0.0, 1.0);
  FaultSpec spec;
  spec.seed = seed;
  spec.sensors.bias_k = -3.0 * intensity;  // optimistic = dangerous direction
  spec.sensors.noise_sigma_k = 0.3 * intensity;
  spec.transitions.drop_probability = 0.3 * intensity;
  spec.transitions.delay_probability = 0.2 * intensity;
  spec.transitions.delay_s = intensity > 0.0 ? 2e-3 : 0.0;
  spec.r_convection_scale = 1.0 + 0.15 * intensity;
  spec.gamma_scale = 1.0 + 0.05 * intensity;
  spec.power_jitter = 0.05 * intensity;
  spec.ambient_drift_c = 2.0 * intensity;
  spec.ambient_drift_period_s = 30.0;
  return spec;
}

bool PlantPerturbation::any() const {
  if (beta_scale != 1.0 || r_convection_scale != 1.0) return true;
  for (double offset : alpha_offset_w)
    if (offset != 0.0) return true;
  return false;
}

void PlantPerturbation::check() const {
  FOSCIL_EXPECTS(beta_scale >= 0.0);
  FOSCIL_EXPECTS(r_convection_scale > 0.0);
  for (double offset : alpha_offset_w) FOSCIL_EXPECTS(std::isfinite(offset));
}

std::shared_ptr<const thermal::ThermalModel> perturbed_model(
    const std::shared_ptr<const thermal::ThermalModel>& nominal,
    const PlantPerturbation& delta) {
  FOSCIL_EXPECTS(nominal != nullptr);
  delta.check();
  FOSCIL_EXPECTS(delta.alpha_offset_w.empty() ||
                 delta.alpha_offset_w.size() == nominal->num_cores());
  if (!delta.any()) return nominal;

  thermal::HotSpotParams params = nominal->network().params();
  params.r_convection_block *= delta.r_convection_scale;
  thermal::RcNetwork network(nominal->network().floorplan(), params);

  const std::size_t cores = nominal->num_cores();
  std::vector<power::PowerCoefficients> per_core(cores);
  for (std::size_t i = 0; i < cores; ++i) {
    power::PowerCoefficients c = nominal->power().coefficients(i);
    if (!delta.alpha_offset_w.empty())
      c.alpha = std::max(0.0, c.alpha + delta.alpha_offset_w[i]);
    c.beta *= delta.beta_scale;
    per_core[i] = c;
  }
  return std::make_shared<const thermal::ThermalModel>(
      std::move(network), power::PowerModel(std::move(per_core)));
}

std::shared_ptr<const thermal::ThermalModel> perturbed_model(
    const std::shared_ptr<const thermal::ThermalModel>& nominal,
    const FaultSpec& spec) {
  FOSCIL_EXPECTS(nominal != nullptr);
  spec.check();
  if (!spec.perturbs_plant()) return nominal;

  thermal::HotSpotParams params = nominal->network().params();
  params.r_convection_block *= spec.r_convection_scale;
  params.k_tim *= spec.k_tim_scale;
  params.c_silicon *= spec.c_scale;
  params.c_copper *= spec.c_scale;
  thermal::RcNetwork network(nominal->network().floorplan(), params);

  // Per-core coefficient scaling + process-variation jitter.  The jitter
  // stream is separate from the runtime stream (sensor noise, transition
  // rolls) so the sampled chip depends only on the spec, not on how the
  // run consumed randomness.
  Rng jitter_rng(spec.seed ^ 0x9e3779b97f4a7c15ull);
  const std::size_t cores = nominal->num_cores();
  std::vector<power::PowerCoefficients> per_core(cores);
  for (std::size_t i = 0; i < cores; ++i) {
    power::PowerCoefficients c = nominal->power().coefficients(i);
    const double ja = spec.power_jitter > 0.0
                          ? jitter_rng.uniform(-spec.power_jitter,
                                               spec.power_jitter)
                          : 0.0;
    const double jg = spec.power_jitter > 0.0
                          ? jitter_rng.uniform(-spec.power_jitter,
                                               spec.power_jitter)
                          : 0.0;
    c.alpha *= spec.alpha_scale * (1.0 + ja);
    c.beta *= spec.beta_scale;
    c.gamma *= spec.gamma_scale * (1.0 + jg);
    per_core[i] = c;
  }
  return std::make_shared<const thermal::ThermalModel>(
      std::move(network), power::PowerModel(std::move(per_core)));
}

FaultedPlant::FaultedPlant(
    std::shared_ptr<const thermal::ThermalModel> nominal, FaultSpec spec)
    : spec_(std::move(spec)),
      true_model_(perturbed_model(nominal, spec_)),
      sim_(true_model_),
      rng_(spec_.seed),
      temps_(true_model_->num_nodes()),
      applied_(true_model_->num_cores()),
      pending_voltage_(true_model_->num_cores(), 0.0),
      pending_due_(true_model_->num_cores(), -1.0) {
  for (std::size_t core : spec_.sensors.stuck_cores)
    FOSCIL_EXPECTS(core < true_model_->num_cores());
}

void FaultedPlant::warm_start(const linalg::Vector& node_rises) {
  FOSCIL_EXPECTS(now_ == 0.0);
  FOSCIL_EXPECTS(node_rises.size() == temps_.size());
  temps_ = node_rises;
}

double FaultedPlant::ambient_offset(double t) const {
  if (spec_.ambient_drift_c == 0.0) return 0.0;
  return spec_.ambient_drift_c *
         std::sin(2.0 * kPi * t / spec_.ambient_drift_period_s);
}

void FaultedPlant::apply_now(std::size_t core, double voltage) {
  pending_due_[core] = -1.0;
  if (voltage == applied_[core]) return;
  applied_[core] = voltage;
  ++transitions_applied_;
  stall_volt_sum_ += voltage;
}

void FaultedPlant::request(const linalg::Vector& core_voltages) {
  FOSCIL_EXPECTS(core_voltages.size() == applied_.size());
  if (!booted_) {
    // Boot configuration: modes are programmed before the workload starts,
    // not switched in flight, so no fault roll and no transition counted.
    for (std::size_t i = 0; i < applied_.size(); ++i)
      applied_[i] = core_voltages[i];
    booted_ = true;
    return;
  }
  for (std::size_t i = 0; i < applied_.size(); ++i) {
    const bool pending = pending_due_[i] >= 0.0;
    const double target = pending ? pending_voltage_[i] : applied_[i];
    if (core_voltages[i] == target) continue;  // already there / in flight
    switch (power::decide_transition(spec_.transitions, rng_)) {
      case power::TransitionOutcome::kApplied:
        apply_now(i, core_voltages[i]);
        break;
      case power::TransitionOutcome::kDropped:
        // The request never reached the regulator; an earlier delayed
        // transition (if any) stays in flight.
        ++transitions_dropped_;
        break;
      case power::TransitionOutcome::kDelayed:
        pending_voltage_[i] = core_voltages[i];
        pending_due_[i] = now_ + spec_.transitions.delay_s;
        ++transitions_delayed_;
        break;
    }
  }
}

double FaultedPlant::advance(double dt, int samples) {
  FOSCIL_EXPECTS(dt >= 0.0);
  FOSCIL_EXPECTS(samples >= 1);
  const auto& model = *true_model_;
  double span_peak = 0.0;

  const double end = now_ + dt;
  while (now_ < end) {
    // Next delayed transition landing inside the remaining span, if any.
    double next_event = end;
    for (std::size_t i = 0; i < pending_due_.size(); ++i)
      if (pending_due_[i] >= 0.0 && pending_due_[i] < next_event)
        next_event = std::max(now_, pending_due_[i]);

    const double span = next_event - now_;
    if (span > 0.0) {
      linalg::Vector next = temps_;
      for (int k = 1; k <= samples; ++k) {
        const double local = span * k / samples;
        next = sim_.advance(temps_, applied_, local);
        span_peak = std::max(span_peak, model.max_core_rise(next) +
                                            ambient_offset(now_ + local));
      }
      temps_ = next;
      work_integral_ += applied_.sum() * span;
      now_ = next_event;
    } else {
      now_ = next_event;  // dt == 0 or event exactly at now_
    }

    for (std::size_t i = 0; i < pending_due_.size(); ++i)
      if (pending_due_[i] >= 0.0 && pending_due_[i] <= now_)
        apply_now(i, pending_voltage_[i]);
    if (span <= 0.0 && next_event >= end) break;
  }

  true_peak_rise_ = std::max(true_peak_rise_, span_peak);
  return span_peak;
}

linalg::Vector FaultedPlant::read_sensors() {
  const linalg::Vector rises = true_model_->core_rises(temps_);
  const double drift = ambient_offset(now_);
  linalg::Vector seen(rises.size());
  std::normal_distribution<double> noise(0.0, spec_.sensors.noise_sigma_k);
  for (std::size_t i = 0; i < rises.size(); ++i) {
    double value = rises[i] + drift + spec_.sensors.bias_k;
    if (spec_.sensors.noise_sigma_k > 0.0) value += noise(rng_.engine());
    seen[i] = value;
  }
  for (std::size_t core : spec_.sensors.stuck_cores)
    seen[core] = spec_.sensors.stuck_at_k;
  return seen;
}

double FaultedPlant::true_max_rise() const {
  return true_model_->max_core_rise(temps_) + ambient_offset(now_);
}

void FaultedPlant::enable_residual_log(std::size_t capacity) {
  residual_capacity_ = capacity;
  if (residual_log_.size() > capacity) {
    residuals_dropped_ += residual_log_.size() - capacity;
    residual_log_.erase(residual_log_.begin(),
                        residual_log_.end() -
                            static_cast<std::ptrdiff_t>(capacity));
  }
}

void FaultedPlant::log_residual(double t, double max_abs_k) {
  if (residual_capacity_ == 0) return;
  if (residual_log_.size() == residual_capacity_) {
    residual_log_.erase(residual_log_.begin());
    ++residuals_dropped_;
  }
  residual_log_.push_back(ResidualSample{t, max_abs_k});
}

}  // namespace foscil::sim
