// Thermal stable status of periodic schedules (eq. 4 of the paper).
//
// Repeating a periodic schedule forever drives the temperature into a
// periodic steady state.  With K = e^{A t_p} and T(t_p) the cold-start
// (T(0) = 0) end-of-period temperature, the stable-status temperature at the
// period boundary is
//     T_ss(t_p) = (I - K)^{-1} T(t_p),
// which is eq. (4) specialized to q = z; interior boundaries follow by
// propagating forward with eq. (3).  (I - K)^{-1} is evaluated through the
// spectral cache: 1/(1 - e^{lambda_i t_p}) on the eigenbasis.
//
// The analyzer evaluates that boundary with one of two engines (sim/modal.hpp):
// the reference dense interval walk, or the modal diagonal recurrence that
// stays in eigen-coordinates until the final back-transform.  Both produce
// the same temperatures to roundoff; the modal engine is the planners' fast
// path and the reference engine remains the independently-coded cross-check
// (the Theorem-2 audit certificates are always recomputed on it).
#pragma once

#include "sim/modal.hpp"
#include "sim/transient.hpp"

namespace foscil::sim {

class SteadyStateAnalyzer {
 public:
  explicit SteadyStateAnalyzer(
      std::shared_ptr<const thermal::ThermalModel> model,
      EvalEngine engine = EvalEngine::kReference);

  [[nodiscard]] const TransientSimulator& simulator() const { return sim_; }
  [[nodiscard]] const thermal::ThermalModel& model() const {
    return sim_.model();
  }

  [[nodiscard]] EvalEngine engine() const {
    return modal_ ? EvalEngine::kModal : EvalEngine::kReference;
  }

  /// The modal evaluator backing this analyzer, or nullptr when it runs on
  /// the reference engine.  Exposed so hot loops (TPT scans, peak checks)
  /// can use the die-row fast path directly.
  [[nodiscard]] const ModalEvaluator* modal() const { return modal_.get(); }

  /// Stable-status temperature at the period start/end boundary.
  [[nodiscard]] linalg::Vector stable_boundary(
      const sched::PeriodicSchedule& s) const;

  /// Die-node rises of the stable boundary.  Equivalent to
  /// model().core_rises(stable_boundary(s)) but skips the full node-space
  /// back-transform on the modal engine (O(cores·n) instead of O(n²)).
  [[nodiscard]] linalg::Vector stable_core_rises(
      const sched::PeriodicSchedule& s) const;

  /// stable_core_rises for a whole candidate batch, bit-identical to the
  /// per-schedule calls.  On the modal engine this is the amortized SoA
  /// pass (ModalEvaluator::batch_stable_core_rises); the reference engine
  /// evaluates each schedule independently.
  [[nodiscard]] std::vector<linalg::Vector> batch_stable_core_rises(
      const sched::PeriodicSchedule* schedules, std::size_t count) const;

  /// Stable-status temperatures at every state-interval boundary
  /// (element q is T_ss(t_q); element 0 equals the last element).
  [[nodiscard]] std::vector<linalg::Vector> stable_boundaries(
      const sched::PeriodicSchedule& s) const;

  /// One period of densely sampled stable-status trace.
  [[nodiscard]] std::vector<TraceSample> stable_trace(
      const sched::PeriodicSchedule& s, double dt_sample) const;

  /// Apply (I - e^{A t_p})^{-1} to a vector through the spectral cache.
  [[nodiscard]] linalg::Vector resolvent_apply(double period,
                                               const linalg::Vector& x) const;

 private:
  TransientSimulator sim_;
  std::shared_ptr<const ModalEvaluator> modal_;  // null on kReference
};

}  // namespace foscil::sim
