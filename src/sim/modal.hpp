// Modal-space schedule evaluation: the fast path behind eqs. (3) and (4).
//
// The reference walk (TransientSimulator + SteadyStateAnalyzer) pays two
// dense W/W⁻¹ matvecs per state interval inside exp_apply/phi_apply — an
// O(k·n²) cost per candidate schedule with k intervals on n thermal nodes.
// Since the model is LTI and eagerly diagonalized (A = W Λ W⁻¹), the whole
// evaluation can instead run in eigen-coordinates y = W⁻¹·T:
//
//   * the ambient start T(0) = 0 is y = 0 — no projection needed;
//   * each interval is a *diagonal* recurrence
//       y ← e^{λ·dt} ⊙ y + φ(λ, dt) ⊙ b̂(v),   b̂(v) = W⁻¹·B(v),
//     where b̂(v) is memoized per distinct voltage vector (an oscillating
//     schedule only ever visits a handful of voltage states, so the
//     projection cost is paid once per state, not once per interval);
//   * the stable-boundary resolvent (I − e^{A·t_p})⁻¹ is the diagonal
//     scaling 1/(1 − e^{λ·t_p});
//   * only the final boundary is transformed back to node space — and when
//     the caller only needs die-node rises (peak checks, TPT scans), only
//     the die rows of W are applied: O(cores·n) instead of O(n²).
//
// Net per-candidate cost: O(k·n + n²) (or O(k·n + cores·n) for core rises)
// versus the reference O(k·n²).  The factors used (phi_factor, the resolvent
// decay, b_vector) are the *same arithmetic* as the reference engine, so the
// two agree to roundoff; tests/sim/modal_test.cpp pins ≤1e-10.
//
// Thread safety: evaluation methods are const and safe to call from many
// threads sharing one evaluator.  The b̂ memo is the one piece of mutable
// state, guarded by a mutex per the ThermalModel concurrency contract
// (thermal/model.hpp); misses compute outside the lock, so concurrent
// evaluations never serialize on the projection itself.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sched/schedule.hpp"
#include "thermal/model.hpp"

namespace foscil::sim {

/// Which arithmetic evaluates candidate schedules: the reference dense
/// interval walk, or the modal diagonal recurrence.  Both compute the same
/// quantities; planners expose the choice so differential tests can pin
/// their agreement and benches can measure the gap.
enum class EvalEngine {
  kReference,  ///< dense exp_apply/phi_apply per interval, O(k·n²)
  kModal,      ///< diagonal recurrence in eigen-coordinates, O(k·n + n²)
};

[[nodiscard]] const char* eval_engine_name(EvalEngine engine);

class ModalEvaluator {
 public:
  explicit ModalEvaluator(std::shared_ptr<const thermal::ThermalModel> model);

  [[nodiscard]] const thermal::ThermalModel& model() const { return *model_; }

  /// End-of-period temperature from ambient start, in modal coordinates
  /// (apply w() to recover node-space T(t_p)).
  [[nodiscard]] linalg::Vector period_end_modal(
      const sched::PeriodicSchedule& s) const;

  /// Stable-status boundary temperature in modal coordinates: the resolvent
  /// 1/(1 − e^{λ·t_p}) applied to period_end_modal.
  [[nodiscard]] linalg::Vector stable_boundary_modal(
      const sched::PeriodicSchedule& s) const;

  /// Node-space stable boundary (matches SteadyStateAnalyzer::stable_boundary
  /// to roundoff): full W back-transform of stable_boundary_modal.
  [[nodiscard]] linalg::Vector stable_boundary(
      const sched::PeriodicSchedule& s) const;

  /// Die-node rises of the stable boundary without the full back-transform:
  /// only the cores×n die-row slice of W is applied.
  [[nodiscard]] linalg::Vector stable_core_rises(
      const sched::PeriodicSchedule& s) const;

  /// Stable-boundary die rises for `count` schedules in one pass,
  /// bit-identical to calling stable_core_rises on each.  Two batch
  /// economies: (a) factor lookups go through batch-local caches, so the
  /// global memo mutex is taken once per *distinct* voltage state, interval
  /// length, and period across the whole batch instead of twice per interval
  /// per candidate; (b) the per-candidate back-transforms fuse into one
  /// packed GEMM W_die · Yᵀ over the row-per-candidate boundary matrix Y,
  /// which the SIMD micro-tile kernel amortizes across four candidates per
  /// W-row load.  Per element it is the same dot kernel as the single-
  /// candidate gemv, hence the bit-identity.
  [[nodiscard]] std::vector<linalg::Vector> batch_stable_core_rises(
      const sched::PeriodicSchedule* schedules, std::size_t count) const;

  /// Die-node rises from an already-computed modal vector.
  [[nodiscard]] linalg::Vector core_rises_from_modal(
      const linalg::Vector& modal) const;

  /// Die-row slice of W (num_cores × num_nodes): row i back-transforms the
  /// rise of core i's die node.
  [[nodiscard]] const linalg::Matrix& w_die() const { return w_die_; }

  /// b̂(v) = W⁻¹·B(v) for one voltage vector, served from the memo.  The
  /// returned pointer stays valid after the bounded memo evicts (entries are
  /// shared, not owned by the map slot).
  [[nodiscard]] std::shared_ptr<const linalg::Vector> modal_b(
      const linalg::Vector& core_voltages) const;

  /// Diagonal resolvent factors 1/(1 − e^{λ·period}), memoized per distinct
  /// period (a planning loop evaluates thousands of candidates at the same
  /// sub-period, so the 2n exponentials are paid once, not per candidate).
  [[nodiscard]] std::shared_ptr<const linalg::Vector> resolvent_factors(
      double period) const;

  /// Per-interval diagonal factors e^{λ·dt} and φ(λ, dt), memoized per
  /// distinct interval length.  A TPT scan moves one core's oscillation
  /// boundary per iteration, so nearly every interval length recurs across
  /// the thousands of candidates it evaluates; caching turns the dominant
  /// 2n transcendentals per interval into one hash lookup.  The values are
  /// the same std::exp / phi_factor arithmetic as the uncached path, so
  /// results are bit-identical whether or not an entry was cached.
  ///
  /// Storage is structure-of-arrays in one aligned allocation: e^{λ·dt}
  /// occupies [0, n) and φ(λ, dt) occupies [n, 2n), so the modal_step
  /// kernel streams both halves contiguously and the pair costs one
  /// allocation instead of two.
  class IntervalFactors {
   public:
    explicit IntervalFactors(std::size_t n) : n_(n), packed_(2 * n) {}

    /// e^{λ_i·dt}, i in [0, n).
    [[nodiscard]] const double* exp() const { return packed_.data(); }
    [[nodiscard]] double* exp() { return packed_.data(); }
    /// phi_factor(λ_i, dt), i in [0, n).
    [[nodiscard]] const double* phi() const { return packed_.data() + n_; }
    [[nodiscard]] double* phi() { return packed_.data() + n_; }

    [[nodiscard]] std::size_t size() const { return n_; }

   private:
    std::size_t n_;
    linalg::Vector packed_;
  };
  [[nodiscard]] std::shared_ptr<const IntervalFactors> interval_factors(
      double dt) const;

  /// Memo observability for tests: distinct voltage vectors currently held
  /// and lifetime hit count.
  [[nodiscard]] std::size_t cache_entries() const;
  [[nodiscard]] std::uint64_t cache_hits() const;

 private:
  // Voltage vectors are memo keys by exact bit pattern: planners construct
  // them from the same level doubles every time, so exact equality is the
  // right notion (a vector differing in one ulp is simply a fresh entry).
  // The hash and equality are transparent over linalg::Vector so the hit
  // path never materializes a key (C++20 heterogeneous lookup).
  struct KeyHash {
    using is_transparent = void;
    std::size_t operator()(const std::vector<double>& key) const;
    std::size_t operator()(const linalg::Vector& key) const;
  };
  struct KeyEq {
    using is_transparent = void;
    bool operator()(const std::vector<double>& a,
                    const std::vector<double>& b) const;
    bool operator()(const std::vector<double>& a,
                    const linalg::Vector& b) const;
    bool operator()(const linalg::Vector& a,
                    const std::vector<double>& b) const;
  };

  std::shared_ptr<const thermal::ThermalModel> model_;
  linalg::Matrix w_die_;  // die rows of spectral().w()

  mutable std::mutex cache_mutex_;
  mutable std::unordered_map<std::vector<double>,
                             std::shared_ptr<const linalg::Vector>, KeyHash,
                             KeyEq>
      cache_;
  mutable std::unordered_map<double, std::shared_ptr<const linalg::Vector>>
      resolvent_cache_;
  mutable std::unordered_map<double, std::shared_ptr<const IntervalFactors>>
      interval_cache_;
  mutable std::uint64_t cache_hits_ = 0;
};

}  // namespace foscil::sim
