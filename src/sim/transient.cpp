#include "sim/transient.hpp"

#include <cmath>

namespace foscil::sim {

TransientSimulator::TransientSimulator(
    std::shared_ptr<const thermal::ThermalModel> model)
    : model_(std::move(model)) {
  FOSCIL_EXPECTS(model_ != nullptr);
}

linalg::Vector TransientSimulator::advance(
    const linalg::Vector& t0, const linalg::Vector& core_voltages,
    double dt) const {
  FOSCIL_EXPECTS(dt >= 0.0);
  FOSCIL_EXPECTS(t0.size() == model_->num_nodes());
  if (dt == 0.0) return t0;
  const auto& spectral = model_->spectral();
  linalg::Vector next = spectral.exp_apply(dt, t0);
  next += spectral.phi_apply(dt, model_->b_vector(core_voltages));
  return next;
}

linalg::Vector TransientSimulator::period_end(
    const sched::PeriodicSchedule& s, const linalg::Vector& t0) const {
  linalg::Vector temps = t0;
  for (const auto& interval : s.state_intervals())
    temps = advance(temps, interval.voltages, interval.length);
  return temps;
}

std::vector<linalg::Vector> TransientSimulator::boundary_temperatures(
    const sched::PeriodicSchedule& s, const linalg::Vector& t0) const {
  std::vector<linalg::Vector> boundaries;
  boundaries.push_back(t0);
  for (const auto& interval : s.state_intervals())
    boundaries.push_back(
        advance(boundaries.back(), interval.voltages, interval.length));
  return boundaries;
}

std::vector<TraceSample> TransientSimulator::trace(
    const sched::PeriodicSchedule& s, const linalg::Vector& t0,
    double dt_sample, double duration) const {
  FOSCIL_EXPECTS(dt_sample > 0.0);
  FOSCIL_EXPECTS(duration > 0.0);
  const auto intervals = s.state_intervals();

  std::vector<TraceSample> samples;
  samples.push_back({0.0, t0});
  linalg::Vector at_interval_start = t0;
  double now = 0.0;

  while (now < duration - 1e-15 * duration) {
    for (const auto& interval : intervals) {
      const double remaining = duration - now;
      const double span = std::min(interval.length, remaining);
      // Sample inside the interval relative to its start: exact evaluation,
      // no error accumulation across samples.
      const int steps = std::max(1, static_cast<int>(std::ceil(span / dt_sample)));
      for (int k = 1; k <= steps; ++k) {
        const double local = span * static_cast<double>(k) /
                             static_cast<double>(steps);
        linalg::Vector temps =
            advance(at_interval_start, interval.voltages, local);
        samples.push_back({now + local, std::move(temps)});
      }
      at_interval_start = samples.back().rises;
      now += span;
      if (now >= duration - 1e-15 * duration) break;
    }
  }
  return samples;
}

}  // namespace foscil::sim
