#include "sim/modal.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <utility>

namespace foscil::sim {

namespace {

// A planning call only ever touches a handful of distinct voltage vectors
// (one per oscillation state the TPT loop has visited), but a long-lived
// evaluator serving many platforms' worth of schedules should not grow
// without bound.  On overflow the memo is simply dropped: recomputation is
// one O(n²) projection per live voltage state.
constexpr std::size_t kMaxCacheEntries = 1024;

// The interval-length memo sees ~2 fresh lengths per TPT iteration (the
// moved boundary's neighbors), so a long ratio-reduction run accumulates a
// few thousand distinct entries.  Each is 2n doubles — at the cap this is a
// few MB, dropped wholesale on overflow like the voltage memo.
constexpr std::size_t kMaxIntervalEntries = 8192;

// Word-wise FNV-1a over the raw bit patterns, with a final avalanche so the
// low bits the bucket index uses depend on every key word.  Exact-bit keying
// is intentional (see header).
[[nodiscard]] std::size_t hash_doubles(const double* values, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= std::bit_cast<std::uint64_t>(values[i]);
    h *= 1099511628211ull;
  }
  h ^= h >> 32;
  h *= 0xd6e8feb86659fd93ull;
  h ^= h >> 32;
  return static_cast<std::size_t>(h);
}

[[nodiscard]] bool equal_doubles(const double* a, std::size_t na,
                                 const double* b, std::size_t nb) {
  return na == nb &&
         (na == 0 || std::memcmp(a, b, na * sizeof(double)) == 0);
}

}  // namespace

const char* eval_engine_name(EvalEngine engine) {
  switch (engine) {
    case EvalEngine::kReference:
      return "reference";
    case EvalEngine::kModal:
      return "modal";
  }
  FOSCIL_ASSERT(false);
  return "?";
}

std::size_t ModalEvaluator::KeyHash::operator()(
    const std::vector<double>& key) const {
  return hash_doubles(key.data(), key.size());
}

std::size_t ModalEvaluator::KeyHash::operator()(
    const linalg::Vector& key) const {
  return hash_doubles(key.data(), key.size());
}

bool ModalEvaluator::KeyEq::operator()(const std::vector<double>& a,
                                       const std::vector<double>& b) const {
  return equal_doubles(a.data(), a.size(), b.data(), b.size());
}

bool ModalEvaluator::KeyEq::operator()(const std::vector<double>& a,
                                       const linalg::Vector& b) const {
  return equal_doubles(a.data(), a.size(), b.data(), b.size());
}

bool ModalEvaluator::KeyEq::operator()(const linalg::Vector& a,
                                       const std::vector<double>& b) const {
  return equal_doubles(a.data(), a.size(), b.data(), b.size());
}

ModalEvaluator::ModalEvaluator(
    std::shared_ptr<const thermal::ThermalModel> model)
    : model_(std::move(model)) {
  FOSCIL_EXPECTS(model_ != nullptr);
  const auto& w = model_->spectral().w();
  const std::size_t cores = model_->num_cores();
  const std::size_t n = model_->num_nodes();
  w_die_ = linalg::Matrix(cores, n);
  for (std::size_t core = 0; core < cores; ++core) {
    const std::size_t die = model_->network().die_node(core);
    const double* src = w.row_data(die);
    double* dst = w_die_.row_data(core);
    for (std::size_t c = 0; c < n; ++c) dst[c] = src[c];
  }
}

std::shared_ptr<const linalg::Vector> ModalEvaluator::modal_b(
    const linalg::Vector& core_voltages) const {
  {
    // Heterogeneous lookup: the hit path hashes the caller's vector in
    // place — no key materialization, no copy of the cached projection.
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    const auto it = cache_.find(core_voltages);
    if (it != cache_.end()) {
      ++cache_hits_;
      return it->second;
    }
  }
  // Miss: project outside the lock so concurrent misses don't serialize on
  // the O(n²) matvec, then publish (a racing duplicate insert is harmless —
  // both threads computed the same vector).
  auto b_hat = std::make_shared<const linalg::Vector>(
      model_->spectral().w_inverse() * model_->b_vector(core_voltages));
  std::vector<double> key(core_voltages.begin(), core_voltages.end());
  {
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    if (cache_.size() >= kMaxCacheEntries) cache_.clear();
    cache_.emplace(std::move(key), b_hat);
  }
  return b_hat;
}

std::shared_ptr<const linalg::Vector> ModalEvaluator::resolvent_factors(
    double period) const {
  FOSCIL_EXPECTS(period > 0.0);
  {
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    const auto it = resolvent_cache_.find(period);
    if (it != resolvent_cache_.end()) return it->second;
  }
  const auto& lambda = model_->spectral().eigenvalues();
  linalg::Vector factors(lambda.size());
  for (std::size_t i = 0; i < lambda.size(); ++i) {
    const double decay = std::exp(lambda[i] * period);
    FOSCIL_ASSERT(decay < 1.0);  // guaranteed by stability
    factors[i] = 1.0 / (1.0 - decay);
  }
  auto shared = std::make_shared<const linalg::Vector>(std::move(factors));
  {
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    if (resolvent_cache_.size() >= kMaxCacheEntries) resolvent_cache_.clear();
    resolvent_cache_.emplace(period, shared);
  }
  return shared;
}

std::shared_ptr<const ModalEvaluator::IntervalFactors>
ModalEvaluator::interval_factors(double dt) const {
  {
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    const auto it = interval_cache_.find(dt);
    if (it != interval_cache_.end()) return it->second;
  }
  const auto& lambda = model_->spectral().eigenvalues();
  const std::size_t n = lambda.size();
  auto factors = std::make_shared<IntervalFactors>();
  factors->exp_lt = linalg::Vector(n);
  factors->phi_lt = linalg::Vector(n);
  for (std::size_t i = 0; i < n; ++i) {
    factors->exp_lt[i] = std::exp(lambda[i] * dt);
    factors->phi_lt[i] = linalg::phi_factor(lambda[i], dt);
  }
  std::shared_ptr<const IntervalFactors> shared = std::move(factors);
  {
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    if (interval_cache_.size() >= kMaxIntervalEntries)
      interval_cache_.clear();
    interval_cache_.emplace(dt, shared);
  }
  return shared;
}

linalg::Vector ModalEvaluator::period_end_modal(
    const sched::PeriodicSchedule& s) const {
  const std::size_t n = model_->spectral().size();
  linalg::Vector y(n);  // ambient start: T = 0 is y = 0 in any basis
  double* y_p = y.data();
  for (const auto& interval : s.state_intervals()) {
    const std::shared_ptr<const linalg::Vector> b_hat =
        modal_b(interval.voltages);
    const std::shared_ptr<const IntervalFactors> f =
        interval_factors(interval.length);
    const double* b_p = b_hat->data();
    const double* e_p = f->exp_lt.data();
    const double* p_p = f->phi_lt.data();
    for (std::size_t i = 0; i < n; ++i)
      y_p[i] = e_p[i] * y_p[i] + p_p[i] * b_p[i];
  }
  return y;
}

linalg::Vector ModalEvaluator::stable_boundary_modal(
    const sched::PeriodicSchedule& s) const {
  linalg::Vector y = period_end_modal(s);
  const std::shared_ptr<const linalg::Vector> factors =
      resolvent_factors(s.period());
  const double* f_p = factors->data();
  double* y_p = y.data();
  for (std::size_t i = 0; i < y.size(); ++i) y_p[i] *= f_p[i];
  return y;
}

linalg::Vector ModalEvaluator::stable_boundary(
    const sched::PeriodicSchedule& s) const {
  return model_->spectral().w() * stable_boundary_modal(s);
}

linalg::Vector ModalEvaluator::core_rises_from_modal(
    const linalg::Vector& modal) const {
  return w_die_ * modal;
}

linalg::Vector ModalEvaluator::stable_core_rises(
    const sched::PeriodicSchedule& s) const {
  return core_rises_from_modal(stable_boundary_modal(s));
}

std::size_t ModalEvaluator::cache_entries() const {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_.size();
}

std::uint64_t ModalEvaluator::cache_hits() const {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_hits_;
}

}  // namespace foscil::sim
