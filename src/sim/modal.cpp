#include "sim/modal.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <utility>

#include "linalg/simd.hpp"

namespace foscil::sim {

namespace {

// A planning call only ever touches a handful of distinct voltage vectors
// (one per oscillation state the TPT loop has visited), but a long-lived
// evaluator serving many platforms' worth of schedules should not grow
// without bound.  On overflow the memo is simply dropped: recomputation is
// one O(n²) projection per live voltage state.
constexpr std::size_t kMaxCacheEntries = 1024;

// The interval-length memo sees ~2 fresh lengths per TPT iteration (the
// moved boundary's neighbors), so a long ratio-reduction run accumulates a
// few thousand distinct entries.  Each is 2n doubles — at the cap this is a
// few MB, dropped wholesale on overflow like the voltage memo.
constexpr std::size_t kMaxIntervalEntries = 8192;

// Four interleaved FNV-1a lanes over the raw bit patterns, folded and
// avalanched at the end so the low bits the bucket index uses depend on
// every key word.  A single FNV chain serializes on the multiply latency;
// four independent lanes run it at throughput, which matters because the
// memo hit path hashes a cores-sized voltage vector per state interval.
// Exact-bit keying is intentional (see header).
[[nodiscard]] std::size_t hash_doubles(const double* values, std::size_t n) {
  constexpr std::uint64_t kOffset = 1469598103934665603ull;
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t lane[4] = {kOffset, kOffset + 1, kOffset + 2, kOffset + 3};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (std::size_t l = 0; l < 4; ++l) {
      lane[l] ^= std::bit_cast<std::uint64_t>(values[i + l]);
      lane[l] *= kPrime;
    }
  }
  for (; i < n; ++i) {
    lane[i % 4] ^= std::bit_cast<std::uint64_t>(values[i]);
    lane[i % 4] *= kPrime;
  }
  std::uint64_t h = lane[0];
  for (std::size_t l = 1; l < 4; ++l) {
    h ^= lane[l];
    h *= kPrime;
  }
  h ^= h >> 32;
  h *= 0xd6e8feb86659fd93ull;
  h ^= h >> 32;
  return static_cast<std::size_t>(h);
}

[[nodiscard]] bool equal_doubles(const double* a, std::size_t na,
                                 const double* b, std::size_t nb) {
  return na == nb &&
         (na == 0 || std::memcmp(a, b, na * sizeof(double)) == 0);
}

}  // namespace

const char* eval_engine_name(EvalEngine engine) {
  switch (engine) {
    case EvalEngine::kReference:
      return "reference";
    case EvalEngine::kModal:
      return "modal";
  }
  FOSCIL_ASSERT(false);
  return "?";
}

std::size_t ModalEvaluator::KeyHash::operator()(
    const std::vector<double>& key) const {
  return hash_doubles(key.data(), key.size());
}

std::size_t ModalEvaluator::KeyHash::operator()(
    const linalg::Vector& key) const {
  return hash_doubles(key.data(), key.size());
}

bool ModalEvaluator::KeyEq::operator()(const std::vector<double>& a,
                                       const std::vector<double>& b) const {
  return equal_doubles(a.data(), a.size(), b.data(), b.size());
}

bool ModalEvaluator::KeyEq::operator()(const std::vector<double>& a,
                                       const linalg::Vector& b) const {
  return equal_doubles(a.data(), a.size(), b.data(), b.size());
}

bool ModalEvaluator::KeyEq::operator()(const linalg::Vector& a,
                                       const std::vector<double>& b) const {
  return equal_doubles(a.data(), a.size(), b.data(), b.size());
}

ModalEvaluator::ModalEvaluator(
    std::shared_ptr<const thermal::ThermalModel> model)
    : model_(std::move(model)) {
  FOSCIL_EXPECTS(model_ != nullptr);
  const auto& w = model_->spectral().w();
  const std::size_t cores = model_->num_cores();
  const std::size_t n = model_->num_nodes();
  w_die_ = linalg::Matrix(cores, n);
  for (std::size_t core = 0; core < cores; ++core) {
    const std::size_t die = model_->network().die_node(core);
    const double* src = w.row_data(die);
    double* dst = w_die_.row_data(core);
    for (std::size_t c = 0; c < n; ++c) dst[c] = src[c];
  }
}

std::shared_ptr<const linalg::Vector> ModalEvaluator::modal_b(
    const linalg::Vector& core_voltages) const {
  {
    // Heterogeneous lookup: the hit path hashes the caller's vector in
    // place — no key materialization, no copy of the cached projection.
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    const auto it = cache_.find(core_voltages);
    if (it != cache_.end()) {
      ++cache_hits_;
      return it->second;
    }
  }
  // Miss: project outside the lock so concurrent misses don't serialize on
  // the O(n²) matvec, then publish (a racing duplicate insert is harmless —
  // both threads computed the same vector).
  auto b_hat = std::make_shared<const linalg::Vector>(
      model_->spectral().w_inverse() * model_->b_vector(core_voltages));
  std::vector<double> key(core_voltages.begin(), core_voltages.end());
  {
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    if (cache_.size() >= kMaxCacheEntries) cache_.clear();
    cache_.emplace(std::move(key), b_hat);
  }
  return b_hat;
}

std::shared_ptr<const linalg::Vector> ModalEvaluator::resolvent_factors(
    double period) const {
  FOSCIL_EXPECTS(period > 0.0);
  {
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    const auto it = resolvent_cache_.find(period);
    if (it != resolvent_cache_.end()) return it->second;
  }
  const auto& lambda = model_->spectral().eigenvalues();
  linalg::Vector factors(lambda.size());
  for (std::size_t i = 0; i < lambda.size(); ++i) {
    const double decay = std::exp(lambda[i] * period);
    FOSCIL_ASSERT(decay < 1.0);  // guaranteed by stability
    factors[i] = 1.0 / (1.0 - decay);
  }
  auto shared = std::make_shared<const linalg::Vector>(std::move(factors));
  {
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    if (resolvent_cache_.size() >= kMaxCacheEntries) resolvent_cache_.clear();
    resolvent_cache_.emplace(period, shared);
  }
  return shared;
}

std::shared_ptr<const ModalEvaluator::IntervalFactors>
ModalEvaluator::interval_factors(double dt) const {
  {
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    const auto it = interval_cache_.find(dt);
    if (it != interval_cache_.end()) return it->second;
  }
  const auto& lambda = model_->spectral().eigenvalues();
  const std::size_t n = lambda.size();
  auto factors = std::make_shared<IntervalFactors>(n);
  double* e_p = factors->exp();
  double* p_p = factors->phi();
  for (std::size_t i = 0; i < n; ++i) {
    e_p[i] = std::exp(lambda[i] * dt);
    p_p[i] = linalg::phi_factor(lambda[i], dt);
  }
  std::shared_ptr<const IntervalFactors> shared = std::move(factors);
  {
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    if (interval_cache_.size() >= kMaxIntervalEntries)
      interval_cache_.clear();
    interval_cache_.emplace(dt, shared);
  }
  return shared;
}

linalg::Vector ModalEvaluator::period_end_modal(
    const sched::PeriodicSchedule& s) const {
  const std::size_t n = model_->spectral().size();
  const linalg::simd::Kernels& kern = linalg::simd::kernels();
  linalg::Vector y(n);  // ambient start: T = 0 is y = 0 in any basis
  for (const auto& interval : s.state_intervals()) {
    const std::shared_ptr<const linalg::Vector> b_hat =
        modal_b(interval.voltages);
    const std::shared_ptr<const IntervalFactors> f =
        interval_factors(interval.length);
    kern.modal_step(n, f->exp(), f->phi(), b_hat->data(), y.data());
  }
  return y;
}

linalg::Vector ModalEvaluator::stable_boundary_modal(
    const sched::PeriodicSchedule& s) const {
  linalg::Vector y = period_end_modal(s);
  const std::shared_ptr<const linalg::Vector> factors =
      resolvent_factors(s.period());
  linalg::simd::kernels().hadamard_scale(y.size(), factors->data(), y.data());
  return y;
}

linalg::Vector ModalEvaluator::stable_boundary(
    const sched::PeriodicSchedule& s) const {
  return model_->spectral().w() * stable_boundary_modal(s);
}

linalg::Vector ModalEvaluator::core_rises_from_modal(
    const linalg::Vector& modal) const {
  return w_die_ * modal;
}

linalg::Vector ModalEvaluator::stable_core_rises(
    const sched::PeriodicSchedule& s) const {
  return core_rises_from_modal(stable_boundary_modal(s));
}

std::vector<linalg::Vector> ModalEvaluator::batch_stable_core_rises(
    const sched::PeriodicSchedule* schedules, std::size_t count) const {
  std::vector<linalg::Vector> rises(count);
  if (count == 0) return rises;
  const std::size_t n = model_->spectral().size();
  const linalg::simd::Kernels& kern = linalg::simd::kernels();

  // Batch-local views of the global memos.  Candidates in one batch (a
  // planner scan chunk) share almost all of their voltage states, interval
  // lengths, and the period, so resolving each distinct key once here drops
  // the global mutex traffic from two locks per interval per candidate to a
  // handful per batch.  The values are the *same shared factor objects* the
  // single-candidate path uses, so nothing about the arithmetic changes.
  std::unordered_map<std::vector<double>,
                     std::shared_ptr<const linalg::Vector>, KeyHash, KeyEq>
      local_b;
  std::unordered_map<double, std::shared_ptr<const IntervalFactors>>
      local_intervals;
  std::unordered_map<double, std::shared_ptr<const linalg::Vector>>
      local_resolvents;
  local_b.reserve(64);
  local_intervals.reserve(64);
  local_resolvents.reserve(8);

  // One modal boundary per row: batch-major SoA so the back-transform below
  // is a single packed GEMM over contiguous rows.
  linalg::Matrix y(count, n);
  for (std::size_t idx = 0; idx < count; ++idx) {
    const sched::PeriodicSchedule& s = schedules[idx];
    double* y_row = y.row_data(idx);
    for (const auto& interval : s.state_intervals()) {
      auto b_it = local_b.find(interval.voltages);
      if (b_it == local_b.end())
        b_it = local_b
                   .emplace(std::vector<double>(interval.voltages.begin(),
                                                interval.voltages.end()),
                            modal_b(interval.voltages))
                   .first;
      auto f_it = local_intervals.find(interval.length);
      if (f_it == local_intervals.end())
        f_it = local_intervals
                   .emplace(interval.length, interval_factors(interval.length))
                   .first;
      kern.modal_step(n, f_it->second->exp(), f_it->second->phi(),
                      b_it->second->data(), y_row);
    }
    auto r_it = local_resolvents.find(s.period());
    if (r_it == local_resolvents.end())
      r_it = local_resolvents
                 .emplace(s.period(), resolvent_factors(s.period()))
                 .first;
    kern.hadamard_scale(n, r_it->second->data(), y_row);
  }

  // Fused back-transform: R = W_die · Yᵀ is cores × count; column idx is
  // candidate idx's die rises.  multiply_transposed_rhs computes each entry
  // with the canonical dot kernel, exactly as the single-candidate gemv
  // does, so batching cannot move a bit.
  const linalg::Matrix r = linalg::multiply_transposed_rhs(w_die_, y);
  const std::size_t cores = w_die_.rows();
  for (std::size_t idx = 0; idx < count; ++idx) {
    linalg::Vector out(cores);
    for (std::size_t core = 0; core < cores; ++core) out[core] = r(core, idx);
    rises[idx] = std::move(out);
  }
  return rises;
}

std::size_t ModalEvaluator::cache_entries() const {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_.size();
}

std::uint64_t ModalEvaluator::cache_hits() const {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_hits_;
}

}  // namespace foscil::sim
