// Fault injection: a "true" plant that diverges from the controller's model.
//
// Every scheduler in this repository plans against the nominal RC model and
// power coefficients.  Real silicon does not oblige: sensors read wrong,
// DVFS transitions get dropped or arrive late, process variation perturbs
// alpha/gamma per core, the package deviates from its datasheet, and ambient
// drifts with the room.  FaultSpec describes such an uncertainty set;
// FaultedPlant realizes one sampled instance of it as the ground-truth chip
// a controller (core/guard.hpp) must survive on.
//
// The plant is simulated with the same analytic transient engine as the
// nominal model — faults change *which* LTI system is integrated and what
// the controller is told about it, never the integration accuracy.  All
// randomness flows from one seeded util/rng.hpp stream, so every faulted
// run is reproducible from its FaultSpec.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "power/dvfs.hpp"
#include "sim/transient.hpp"
#include "util/rng.hpp"

namespace foscil::sim {

/// Per-read sensor misbehavior.  Readings are rises over the *nominal*
/// ambient (what a controller calibrated at T_amb believes it measures).
struct SensorFaults {
  double bias_k = 0.0;         ///< common-mode offset (<0 = optimistic)
  double noise_sigma_k = 0.0;  ///< zero-mean gaussian noise per read
  std::vector<std::size_t> stuck_cores;  ///< sensors pinned at `stuck_at_k`
  double stuck_at_k = 0.0;     ///< reported rise of a stuck sensor
                               ///< (0 = stuck-cold at ambient)

  [[nodiscard]] bool any() const {
    return bias_k != 0.0 || noise_sigma_k > 0.0 || !stuck_cores.empty();
  }
  void check() const { FOSCIL_EXPECTS(noise_sigma_k >= 0.0); }
};

/// Complete fault/uncertainty specification for one run.  Doubles as the
/// *injected* fault set (what the plant actually does) and as the *assumed*
/// uncertainty set a guard derives its safety margin from.
struct FaultSpec {
  std::uint64_t seed = 0x5eedfa01;

  SensorFaults sensors;
  power::TransitionFaults transitions;

  // --- plant mismatch (controller model vs. ground truth) ---
  double r_convection_scale = 1.0;  ///< scales sink-to-ambient resistance
  double k_tim_scale = 1.0;         ///< scales die-to-spreader conductivity
  double c_scale = 1.0;             ///< scales all heat capacities
  double alpha_scale = 1.0;         ///< scales leakage offset, every core
  double beta_scale = 1.0;          ///< scales leakage-temperature slope
  double gamma_scale = 1.0;         ///< scales dynamic-power coefficient
  double power_jitter = 0.0;        ///< +- relative per-core uniform jitter
                                    ///< on alpha and gamma (process var.)

  // --- environment ---
  double ambient_drift_c = 0.0;        ///< sinusoid amplitude (K)
  double ambient_drift_period_s = 60;  ///< sinusoid period

  /// True when the ground-truth LTI system differs from the nominal one.
  [[nodiscard]] bool perturbs_plant() const;
  /// True when any fault at all is configured.
  [[nodiscard]] bool any() const;
  void check() const;

  /// Canonical mixed-fault dial for robustness sweeps: intensity 0 is the
  /// nominal plant (identity — `any()` is false), 1 is the harshest mix the
  /// guard is expected to survive (optimistic sensors, flaky actuator,
  /// degraded sink, ambient swing).  Every knob is monotone non-decreasing
  /// in intensity; inputs outside [0, 1] are clamped to the range ends.
  [[nodiscard]] static FaultSpec at_intensity(double intensity,
                                              std::uint64_t seed = 0x5eedfa01);
};

/// A *point* estimate of plant mismatch, as produced by online
/// identification (core/identify): additive per-core power offsets plus
/// relative leakage/convection scales.  Unlike FaultSpec — which describes
/// an uncertainty *set* with its own sampling seed — this is a deterministic
/// delta applied on top of the nominal model.
struct PlantPerturbation {
  std::vector<double> alpha_offset_w;  ///< per-core additive leakage-offset
                                       ///< delta (W); empty = all zero
  double beta_scale = 1.0;             ///< scales leakage-temperature slope
  double r_convection_scale = 1.0;     ///< scales sink-to-ambient resistance

  /// True when applying this perturbation would change the model.
  [[nodiscard]] bool any() const;
  void check() const;
};

/// Ground-truth chip behind a fault specification.
///
/// Owns the perturbed thermal model (the nominal one when the spec leaves
/// the plant untouched — pointer-identical, so the zero-fault path is exact),
/// the current/pending per-core voltages of the flaky actuator, and the
/// running true-peak statistics a robustness experiment reports.  Operates
/// entirely in the rises-over-nominal-ambient domain; absolute-temperature
/// conversion is the caller's concern.
class FaultedPlant {
 public:
  FaultedPlant(std::shared_ptr<const thermal::ThermalModel> nominal,
               FaultSpec spec);

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }
  /// The LTI system the plant actually obeys.
  [[nodiscard]] const std::shared_ptr<const thermal::ThermalModel>&
  true_model() const {
    return true_model_;
  }

  [[nodiscard]] double now() const { return now_; }
  /// Ambient drift (K over nominal ambient) at plant time t.
  [[nodiscard]] double ambient_offset(double t) const;

  /// Set the initial node rises before any time has elapsed.  Robustness
  /// runs start at the nominal schedule's stable-status state — the regime
  /// the paper's guarantees speak about — rather than on a cold chip whose
  /// slow sink masks steady-state mismatch for the whole horizon.
  void warm_start(const linalg::Vector& node_rises);

  /// Request per-core voltages.  Cores whose request differs from their
  /// applied (or in-flight) target roll the transition-fault dice; the very
  /// first request is the boot configuration and is exempt (no fault roll,
  /// no transition counted).  Re-requesting an already-dropped target rolls
  /// again, so a polling controller retries drops naturally.
  void request(const linalg::Vector& core_voltages);

  /// Currently applied per-core voltages (after drops/delays).
  [[nodiscard]] const linalg::Vector& applied() const { return applied_; }

  /// Advance the true plant by dt, landing any in-flight delayed transitions
  /// at their due time and sampling >= `samples` interior points for
  /// true-peak tracking.  Returns the max effective core rise (true rise +
  /// ambient drift, K over nominal ambient) seen within the span.
  double advance(double dt, int samples);

  /// Faulted sensor readings: effective core rises + bias + noise, stuck
  /// sensors pinned.  Each call consumes noise draws (one per core).
  [[nodiscard]] linalg::Vector read_sensors();

  /// Instantaneous max effective core rise (true rise + drift).
  [[nodiscard]] double true_max_rise() const;
  /// Running max of `advance`'s per-span peaks since construction.
  [[nodiscard]] double true_peak_rise() const { return true_peak_rise_; }

  // --- delivered-work accounting (for throughput under faults) ---
  /// Integral of applied voltage over time, summed across cores (V*s).
  [[nodiscard]] double work_integral() const { return work_integral_; }
  /// Sum of the post-transition voltages over all applied transitions;
  /// multiply by the stall overhead tau for the work lost to stalls
  /// (matches AO's accounting, where one stall costs v_new * tau of work).
  [[nodiscard]] double stall_volt_sum() const { return stall_volt_sum_; }

  [[nodiscard]] std::size_t transitions_applied() const {
    return transitions_applied_;
  }
  [[nodiscard]] std::size_t transitions_dropped() const {
    return transitions_dropped_;
  }
  [[nodiscard]] std::size_t transitions_delayed() const {
    return transitions_delayed_;
  }

  // --- residual recording (identification support) ---------------------
  /// One controller-side sensor-vs-prediction residual observation.
  struct ResidualSample {
    double t;           ///< plant time of the poll
    double max_abs_k;   ///< worst per-core |seen - predicted| (K)
  };

  /// Start keeping the most recent `capacity` residual samples reported via
  /// log_residual().  Capacity 0 disables logging (the default — a guard
  /// polling at kHz for minutes would otherwise grow without bound).
  void enable_residual_log(std::size_t capacity);
  /// Record one residual observation; drops the oldest beyond capacity.
  void log_residual(double t, double max_abs_k);
  [[nodiscard]] const std::vector<ResidualSample>& residual_log() const {
    return residual_log_;
  }
  /// Samples discarded to honor the capacity bound.
  [[nodiscard]] std::size_t residuals_dropped() const {
    return residuals_dropped_;
  }

 private:
  void apply_now(std::size_t core, double voltage);

  FaultSpec spec_;
  std::shared_ptr<const thermal::ThermalModel> true_model_;
  TransientSimulator sim_;
  Rng rng_;

  double now_ = 0.0;
  linalg::Vector temps_;    ///< true node rises over true ambient
  linalg::Vector applied_;  ///< per-core applied voltage
  std::vector<double> pending_voltage_;  ///< in-flight delayed target
  std::vector<double> pending_due_;      ///< land time (<0 = none)
  bool booted_ = false;

  double true_peak_rise_ = 0.0;
  double work_integral_ = 0.0;
  double stall_volt_sum_ = 0.0;
  std::size_t transitions_applied_ = 0;
  std::size_t transitions_dropped_ = 0;
  std::size_t transitions_delayed_ = 0;

  std::vector<ResidualSample> residual_log_;
  std::size_t residual_capacity_ = 0;
  std::size_t residuals_dropped_ = 0;
};

/// Build the ground-truth thermal model of a fault spec: HotSpot package
/// parameters scaled by the rc/ambient knobs and per-core power coefficients
/// scaled + jittered.  Returns the nominal model pointer unchanged when the
/// spec does not perturb the plant.
[[nodiscard]] std::shared_ptr<const thermal::ThermalModel> perturbed_model(
    const std::shared_ptr<const thermal::ThermalModel>& nominal,
    const FaultSpec& spec);

/// Build the thermal model of an identified point perturbation: convection
/// resistance scaled, per-core alpha shifted (clamped at the physical
/// alpha >= 0 floor), leakage slopes scaled.  Returns the nominal pointer
/// unchanged when the perturbation is the identity, so downstream
/// pointer-equality fast paths keep working.
[[nodiscard]] std::shared_ptr<const thermal::ThermalModel> perturbed_model(
    const std::shared_ptr<const thermal::ThermalModel>& nominal,
    const PlantPerturbation& delta);

}  // namespace foscil::sim
