// Trace serialization: turn TraceSample series into CSV for external
// plotting (gnuplot/matplotlib), with per-core or per-node columns.
#pragma once

#include <string>
#include <vector>

#include "sim/transient.hpp"

namespace foscil::sim {

/// Column selection for trace export.
enum class TraceColumns {
  kCores,     ///< one column per core (die nodes only)
  kAllNodes,  ///< one column per thermal node
};

/// Render a trace as CSV.  Header: time_s, then core<i>_c or node<i>_c.
/// Temperatures are absolute Celsius (rise + t_ambient_c).
[[nodiscard]] std::string trace_to_csv(
    const thermal::ThermalModel& model,
    const std::vector<TraceSample>& trace, double t_ambient_c,
    TraceColumns columns = TraceColumns::kCores);

/// Write a trace CSV to a file.  Throws std::runtime_error on I/O failure.
void write_trace_csv(const std::string& path,
                     const thermal::ThermalModel& model,
                     const std::vector<TraceSample>& trace,
                     double t_ambient_c,
                     TraceColumns columns = TraceColumns::kCores);

}  // namespace foscil::sim
