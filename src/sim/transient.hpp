// Analytic transient thermal simulation (eq. 3 of the paper).
//
// Within a state interval with voltage vector v, the temperature evolves as
//   T(t0 + dt) = e^{A dt} T(t0) + (I - e^{A dt}) T_inf(v)
//              = e^{A dt} T(t0) + phi(dt) B(v),   phi(t) = A^{-1}(e^{At} - I),
// which the spectral cache evaluates in O(n^2) per step with no time
// discretization error.  The simulator walks schedules one state interval at
// a time and can record densely sampled traces.
#pragma once

#include <memory>
#include <vector>

#include "sched/schedule.hpp"
#include "thermal/model.hpp"

namespace foscil::sim {

/// One sample of a recorded trace.
struct TraceSample {
  double time = 0.0;        ///< seconds since trace start
  linalg::Vector rises;     ///< node temperature rises (K over ambient)
};

class TransientSimulator {
 public:
  explicit TransientSimulator(std::shared_ptr<const thermal::ThermalModel> model);

  [[nodiscard]] const thermal::ThermalModel& model() const { return *model_; }

  /// Exact temperature after holding `core_voltages` for dt, from t0.
  [[nodiscard]] linalg::Vector advance(const linalg::Vector& t0,
                                       const linalg::Vector& core_voltages,
                                       double dt) const;

  /// Temperature at the end of one schedule period, starting from `t0`.
  [[nodiscard]] linalg::Vector period_end(const sched::PeriodicSchedule& s,
                                          const linalg::Vector& t0) const;

  /// Temperatures at every state-interval boundary across one period
  /// (index q holds T(t_q); index 0 is t0 itself).
  [[nodiscard]] std::vector<linalg::Vector> boundary_temperatures(
      const sched::PeriodicSchedule& s, const linalg::Vector& t0) const;

  /// Densely sampled trace over `duration` seconds of repeating `s` from t0.
  /// Samples land every `dt_sample` seconds plus at every interval boundary.
  [[nodiscard]] std::vector<TraceSample> trace(
      const sched::PeriodicSchedule& s, const linalg::Vector& t0,
      double dt_sample, double duration) const;

  /// Zero vector sized to the model (ambient start).
  [[nodiscard]] linalg::Vector ambient_start() const {
    return linalg::Vector(model_->num_nodes());
  }

 private:
  std::shared_ptr<const thermal::ThermalModel> model_;
};

}  // namespace foscil::sim
