#include "sim/steady.hpp"

#include <cmath>

namespace foscil::sim {

SteadyStateAnalyzer::SteadyStateAnalyzer(
    std::shared_ptr<const thermal::ThermalModel> model, EvalEngine engine)
    : sim_(model) {
  if (engine == EvalEngine::kModal)
    modal_ = std::make_shared<const ModalEvaluator>(std::move(model));
}

linalg::Vector SteadyStateAnalyzer::resolvent_apply(
    double period, const linalg::Vector& x) const {
  FOSCIL_EXPECTS(period > 0.0);
  const auto& spectral = model().spectral();
  FOSCIL_EXPECTS(x.size() == spectral.size());
  linalg::Vector y = spectral.w_inverse() * x;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double decay = std::exp(spectral.eigenvalues()[i] * period);
    FOSCIL_ASSERT(decay < 1.0);  // guaranteed by stability
    y[i] /= 1.0 - decay;
  }
  return spectral.w() * y;
}

linalg::Vector SteadyStateAnalyzer::stable_boundary(
    const sched::PeriodicSchedule& s) const {
  if (modal_) return modal_->stable_boundary(s);
  const linalg::Vector cold_end =
      sim_.period_end(s, sim_.ambient_start());
  return resolvent_apply(s.period(), cold_end);
}

linalg::Vector SteadyStateAnalyzer::stable_core_rises(
    const sched::PeriodicSchedule& s) const {
  if (modal_) return modal_->stable_core_rises(s);
  return model().core_rises(stable_boundary(s));
}

std::vector<linalg::Vector> SteadyStateAnalyzer::batch_stable_core_rises(
    const sched::PeriodicSchedule* schedules, std::size_t count) const {
  if (modal_) return modal_->batch_stable_core_rises(schedules, count);
  std::vector<linalg::Vector> rises(count);
  for (std::size_t i = 0; i < count; ++i)
    rises[i] = stable_core_rises(schedules[i]);
  return rises;
}

std::vector<linalg::Vector> SteadyStateAnalyzer::stable_boundaries(
    const sched::PeriodicSchedule& s) const {
  const linalg::Vector start = stable_boundary(s);
  return sim_.boundary_temperatures(s, start);
}

std::vector<TraceSample> SteadyStateAnalyzer::stable_trace(
    const sched::PeriodicSchedule& s, double dt_sample) const {
  return sim_.trace(s, stable_boundary(s), dt_sample, s.period());
}

}  // namespace foscil::sim
