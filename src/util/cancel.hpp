// Cooperative cancellation for long-running planner loops.
//
// A CancelToken combines an explicit cancel flag with an optional deadline
// on the steady clock.  The token is *advisory*: code that holds one polls
// it between units of work (candidate evaluations, m-iterations) and raises
// CancelledError when it fires.  Checks never happen inside the numerics —
// a planner run that is not cancelled produces bit-identical results
// whether or not a token was attached, because the token only ever decides
// *whether* the next candidate is evaluated, never *how*.
//
// Thread-safety: all members are lock-free atomics.  One token is typically
// shared between the thread that may cancel (a serving-stack worker pool,
// a signal handler) and the planner threads that poll it; `cancelled()` is
// safe to call from any number of threads concurrently with `cancel()` /
// `extend_deadline()`.
//
// Deadline semantics are designed for request coalescing: a token starts
// with no deadline, `set_deadline` arms one, and `extend_deadline` only
// ever moves it later (or removes it).  When several waiters share one
// planner run, the run must continue while *any* waiter still has budget,
// so the shared token carries the maximum deadline — and no deadline at
// all as soon as one waiter has none.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <stdexcept>

namespace foscil {

/// Raised by a planner whose CancelToken fired mid-run.  Derives from
/// runtime_error (not ContractViolation): cancellation is an expected,
/// recoverable outcome, not a programming error.
class CancelledError : public std::runtime_error {
 public:
  CancelledError() : std::runtime_error("planning run cancelled") {}
  explicit CancelledError(const char* what) : std::runtime_error(what) {}
};

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Explicitly cancel: every subsequent cancelled() is true.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arm (or overwrite) the deadline.
  void set_deadline(Clock::time_point deadline) noexcept {
    deadline_ns_.store(to_ns(deadline), std::memory_order_relaxed);
  }

  /// Remove the deadline entirely (the token can then only fire via
  /// cancel()).  Used when a deadline-free waiter joins a shared run.
  void clear_deadline() noexcept {
    deadline_ns_.store(kNoDeadline, std::memory_order_relaxed);
  }

  /// Move the deadline later, never earlier: the effective deadline becomes
  /// max(current, `deadline`).  No-op when the deadline was already removed.
  void extend_deadline(Clock::time_point deadline) noexcept {
    const std::int64_t proposed = to_ns(deadline);
    std::int64_t current = deadline_ns_.load(std::memory_order_relaxed);
    while (current < proposed &&
           !deadline_ns_.compare_exchange_weak(current, proposed,
                                               std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] bool has_deadline() const noexcept {
    return deadline_ns_.load(std::memory_order_relaxed) != kNoDeadline;
  }

  /// True once cancel() was called or the deadline passed.
  [[nodiscard]] bool cancelled() const noexcept {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    const std::int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    return deadline != kNoDeadline && to_ns(Clock::now()) >= deadline;
  }

  /// Raise CancelledError when the token has fired.  The planner's
  /// per-candidate check point.
  void throw_if_cancelled() const {
    if (cancelled()) throw CancelledError();
  }

 private:
  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::max();

  [[nodiscard]] static std::int64_t to_ns(Clock::time_point t) noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               t.time_since_epoch())
        .count();
  }

  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{kNoDeadline};
};

// ---- deadline plumbing helpers --------------------------------------------
//
// The serving stack passes time budgets across layers in three shapes: a
// relative budget in seconds (wire requests, config knobs), a steady-clock
// time point (CancelToken, waiter bookkeeping), and "remaining budget"
// (retry loops that must shrink the budget on every attempt).  These
// helpers are the single conversion point, so every layer rounds the same
// way and a deadline survives client -> wire -> service -> CancelToken
// without drift beyond clock-read jitter.

/// Steady-clock deadline `seconds` from now.  `seconds` must be finite.
[[nodiscard]] inline CancelToken::Clock::time_point deadline_after(
    double seconds) {
  return CancelToken::Clock::now() +
         std::chrono::duration_cast<CancelToken::Clock::duration>(
             std::chrono::duration<double>(seconds));
}

/// Seconds until `deadline`; negative once it has passed.
[[nodiscard]] inline double seconds_until(
    CancelToken::Clock::time_point deadline) {
  return std::chrono::duration<double>(deadline -
                                       CancelToken::Clock::now())
      .count();
}

}  // namespace foscil
