// Minimal shared-memory fork/join helper.
//
// The benches sweep large design spaces (EXS enumerates |levels|^N
// single-mode assignments; Fig. 3 sweeps thousands of schedule phases).
// Those loops are embarrassingly parallel, so we provide a static-partition
// parallel_for over [0, n) in the OpenMP "parallel for schedule(static)"
// spirit, built on std::thread only (no runtime dependency).
//
// Exceptions thrown by the body are captured and rethrown on the caller
// thread (first one wins), so contract violations inside workers are not
// lost.
#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace foscil {

/// Number of workers parallel_for will use by default.
inline unsigned hardware_parallelism() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

/// Invoke `body(i)` for every i in [0, n), split contiguously across up to
/// `threads` workers.  Runs inline when n is small or one worker suffices.
template <typename Body>
void parallel_for(std::size_t n, const Body& body,
                  unsigned threads = hardware_parallelism()) {
  if (n == 0) return;
  const std::size_t workers =
      std::min<std::size_t>(std::max(1u, threads), n);
  if (workers == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::vector<std::thread> pool;
  pool.reserve(workers);
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const std::size_t chunk = (n + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    pool.emplace_back([&, begin, end] {
      try {
        for (std::size_t i = begin; i < end; ++i) body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

/// Parallel reduction: each worker folds its range with `body(i, acc)` into a
/// local accumulator (initialized from `init`), then locals are combined with
/// `join` in index order so results are deterministic.
template <typename Acc, typename Body, typename Join>
Acc parallel_reduce(std::size_t n, Acc init, const Body& body,
                    const Join& join,
                    unsigned threads = hardware_parallelism()) {
  if (n == 0) return init;
  const std::size_t workers =
      std::min<std::size_t>(std::max(1u, threads), n);
  std::vector<Acc> locals(workers, init);
  parallel_for(
      workers,
      [&](std::size_t w) {
        const std::size_t chunk = (n + workers - 1) / workers;
        const std::size_t begin = w * chunk;
        const std::size_t end = std::min(n, begin + chunk);
        Acc acc = init;
        for (std::size_t i = begin; i < end; ++i) acc = body(i, acc);
        locals[w] = acc;
      },
      static_cast<unsigned>(workers));
  Acc result = init;
  for (const auto& acc : locals) result = join(result, acc);
  return result;
}

}  // namespace foscil
