// Deterministic random number generation for tests and benches.
//
// Every randomized experiment in this repository must be reproducible from a
// seed printed in its output, so we standardize on one engine (mt19937_64)
// and expose small typed helpers instead of passing distributions around.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "util/contracts.hpp"

namespace foscil {

/// Seeded pseudo-random source with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) {
    FOSCIL_EXPECTS(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    FOSCIL_EXPECTS(lo <= hi);
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n).
  std::size_t index(std::size_t n) {
    FOSCIL_EXPECTS(n > 0);
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Pick a random element of a non-empty vector (by value).
  template <typename T>
  T pick(const std::vector<T>& v) {
    FOSCIL_EXPECTS(!v.empty());
    return v[index(v.size())];
  }

  /// n positive weights summing to 1 (used for random interval splits).
  std::vector<double> simplex(std::size_t n) {
    FOSCIL_EXPECTS(n > 0);
    std::vector<double> w(n);
    double total = 0.0;
    for (auto& x : w) {
      x = uniform(0.05, 1.0);  // keep intervals bounded away from zero
      total += x;
    }
    for (auto& x : w) x /= total;
    return w;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace foscil
