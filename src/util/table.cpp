#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/contracts.hpp"

namespace foscil {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  FOSCIL_EXPECTS(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  FOSCIL_EXPECTS(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "| " << std::left << std::setw(static_cast<int>(width[c]))
          << row[c] << ' ';
    }
    out << "|\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << "|" << std::string(width[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) emit(row);
  return out.str();
}

namespace {
std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string quoted = "\"";
  for (char ch : field) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}
}  // namespace

std::string TextTable::csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << csv_escape(row[c]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string fmt(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string fmt_celsius(double celsius) { return fmt(celsius, 2) + " C"; }

std::string fmt_percent(double fraction) {
  std::ostringstream out;
  out << std::showpos << std::fixed << std::setprecision(1)
      << fraction * 100.0 << '%';
  return out.str();
}

}  // namespace foscil
