// Fixed-width console table and CSV writers.
//
// Every bench binary reproduces one table/figure of the paper; this keeps
// their output formatting consistent and lets EXPERIMENTS.md quote rows
// verbatim.
#pragma once

#include <string>
#include <vector>

namespace foscil {

/// Accumulates rows of strings and renders them as an aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Render with column alignment and a header rule.
  [[nodiscard]] std::string str() const;

  /// Render as RFC-4180-ish CSV (fields with commas/quotes get quoted).
  [[nodiscard]] std::string csv() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (default 4 digits).
[[nodiscard]] std::string fmt(double value, int precision = 4);

/// Format a temperature in degrees Celsius, e.g. "64.98 C".
[[nodiscard]] std::string fmt_celsius(double celsius);

/// Format a percentage with sign, e.g. "+11.2%".
[[nodiscard]] std::string fmt_percent(double fraction);

}  // namespace foscil
