// Minimal INI-style configuration parser.
//
// Powers the CLI front-end (examples/foscil_cli.cpp): platforms, level sets
// and scheduler options can be described in a text file instead of C++.
// Format:
//
//   # comment
//   [section]
//   key = value          ; values are scalars or comma-separated lists
//
// Keys are looked up as "section.key".  Parsing is strict: malformed lines,
// duplicate keys, and type mismatches raise ConfigError with a line number.
#pragma once

#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace foscil {

/// Raised on malformed input or failed typed lookups.
class ConfigError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Config {
 public:
  Config() = default;

  /// Parse from text (e.g. file contents).  Throws ConfigError.
  [[nodiscard]] static Config parse(const std::string& text);

  /// Load from a file path.  Throws ConfigError (also on I/O failure).
  [[nodiscard]] static Config load(const std::string& path);

  [[nodiscard]] bool has(const std::string& key) const;

  /// Raw string value; throws when missing.
  [[nodiscard]] const std::string& raw(const std::string& key) const;

  [[nodiscard]] std::string get_string(const std::string& key) const;
  [[nodiscard]] double get_double(const std::string& key) const;
  [[nodiscard]] long get_int(const std::string& key) const;
  [[nodiscard]] bool get_bool(const std::string& key) const;
  /// Comma-separated list of doubles.
  [[nodiscard]] std::vector<double> get_doubles(const std::string& key) const;

  /// Typed lookups with defaults for optional keys.
  [[nodiscard]] std::string get_string_or(const std::string& key,
                                          std::string fallback) const;
  [[nodiscard]] double get_double_or(const std::string& key,
                                     double fallback) const;
  [[nodiscard]] long get_int_or(const std::string& key, long fallback) const;

  /// All keys, sorted (for diagnostics / strict-mode validation).
  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace foscil
