#include "util/config.hpp"

#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>

namespace foscil {

namespace {

std::string trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])))
    ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])))
    --end;
  return s.substr(begin, end - begin);
}

[[noreturn]] void fail(int line, const std::string& what) {
  throw ConfigError("config line " + std::to_string(line) + ": " + what);
}

}  // namespace

Config Config::parse(const std::string& text) {
  Config config;
  std::istringstream in(text);
  std::string line;
  std::string section;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments (# or ;) outside of values' interior — keep it simple:
    // a comment starts a run of '#' or ';' preceded by start/whitespace.
    std::string stripped = line;
    for (std::size_t i = 0; i < stripped.size(); ++i) {
      if ((stripped[i] == '#' || stripped[i] == ';') &&
          (i == 0 ||
           std::isspace(static_cast<unsigned char>(stripped[i - 1])))) {
        stripped.resize(i);
        break;
      }
    }
    stripped = trim(stripped);
    if (stripped.empty()) continue;

    if (stripped.front() == '[') {
      if (stripped.back() != ']') fail(line_no, "unterminated section");
      section = trim(stripped.substr(1, stripped.size() - 2));
      if (section.empty()) fail(line_no, "empty section name");
      continue;
    }

    const std::size_t eq = stripped.find('=');
    if (eq == std::string::npos) fail(line_no, "expected 'key = value'");
    const std::string key = trim(stripped.substr(0, eq));
    const std::string value = trim(stripped.substr(eq + 1));
    if (key.empty()) fail(line_no, "empty key");
    const std::string full_key =
        section.empty() ? key : section + "." + key;
    if (config.values_.count(full_key) != 0)
      fail(line_no, "duplicate key '" + full_key + "'");
    config.values_[full_key] = value;
  }
  return config;
}

Config Config::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open config file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

bool Config::has(const std::string& key) const {
  return values_.count(key) != 0;
}

const std::string& Config::raw(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end())
    throw ConfigError("missing config key: " + key);
  return it->second;
}

std::string Config::get_string(const std::string& key) const {
  return raw(key);
}

double Config::get_double(const std::string& key) const {
  const std::string& value = raw(key);
  try {
    std::size_t used = 0;
    const double parsed = std::stod(value, &used);
    if (trim(value.substr(used)).empty()) {
      // stod happily parses "nan" and "inf"; no physical quantity in a
      // platform description is allowed to be non-finite.
      if (!std::isfinite(parsed))
        throw ConfigError("key '" + key + "' is not finite: '" + value +
                          "'");
      return parsed;
    }
  } catch (const ConfigError&) {
    throw;
  } catch (const std::exception&) {
  }
  throw ConfigError("key '" + key + "' is not a number: '" + value + "'");
}

long Config::get_int(const std::string& key) const {
  const std::string& value = raw(key);
  try {
    std::size_t used = 0;
    const long parsed = std::stol(value, &used);
    if (trim(value.substr(used)).empty()) return parsed;
  } catch (const std::exception&) {
  }
  throw ConfigError("key '" + key + "' is not an integer: '" + value + "'");
}

bool Config::get_bool(const std::string& key) const {
  const std::string& value = raw(key);
  if (value == "true" || value == "yes" || value == "1") return true;
  if (value == "false" || value == "no" || value == "0") return false;
  throw ConfigError("key '" + key + "' is not a boolean: '" + value + "'");
}

std::vector<double> Config::get_doubles(const std::string& key) const {
  const std::string& value = raw(key);
  std::vector<double> out;
  std::istringstream in(value);
  std::string field;
  while (std::getline(in, field, ',')) {
    const std::string token = trim(field);
    if (token.empty())
      throw ConfigError("key '" + key + "' has an empty list element");
    try {
      std::size_t used = 0;
      const double parsed = std::stod(token, &used);
      if (!trim(token.substr(used)).empty()) throw std::invalid_argument("");
      if (!std::isfinite(parsed))
        throw ConfigError("key '" + key + "' has a non-finite element: '" +
                          token + "'");
      out.push_back(parsed);
    } catch (const ConfigError&) {
      throw;
    } catch (const std::exception&) {
      throw ConfigError("key '" + key + "' has a non-numeric element: '" +
                        token + "'");
    }
  }
  if (out.empty())
    throw ConfigError("key '" + key + "' is an empty list");
  return out;
}

std::string Config::get_string_or(const std::string& key,
                                  std::string fallback) const {
  return has(key) ? raw(key) : std::move(fallback);
}

double Config::get_double_or(const std::string& key, double fallback) const {
  return has(key) ? get_double(key) : fallback;
}

long Config::get_int_or(const std::string& key, long fallback) const {
  return has(key) ? get_int(key) : fallback;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [key, value] : values_) out.push_back(key);
  return out;
}

}  // namespace foscil
