// Lightweight contract checking for foscil.
//
// FOSCIL_EXPECTS / FOSCIL_ENSURES mirror the GSL Expects/Ensures idiom from
// the C++ Core Guidelines (I.6, I.8): violations are programming errors, not
// recoverable conditions, so they throw foscil::ContractViolation carrying
// the failing expression and source location.  They stay enabled in release
// builds — every check in this library guards O(1) work next to O(n^2..3)
// numerical kernels, so the cost is immaterial.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace foscil {

/// Thrown when a precondition, postcondition, or invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const char* kind, const char* expr,
                    const std::source_location& loc)
      : std::logic_error(format(kind, expr, loc)) {}

 private:
  static std::string format(const char* kind, const char* expr,
                            const std::source_location& loc) {
    std::string msg = kind;
    msg += " failed: ";
    msg += expr;
    msg += " at ";
    msg += loc.file_name();
    msg += ":";
    msg += std::to_string(loc.line());
    msg += " (";
    msg += loc.function_name();
    msg += ")";
    return msg;
  }
};

namespace detail {
inline void contract_check(bool ok, const char* kind, const char* expr,
                           const std::source_location& loc) {
  if (!ok) throw ContractViolation(kind, expr, loc);
}
}  // namespace detail

}  // namespace foscil

#define FOSCIL_EXPECTS(expr)                                 \
  ::foscil::detail::contract_check((expr), "Precondition",   \
                                   #expr, std::source_location::current())

#define FOSCIL_ENSURES(expr)                                 \
  ::foscil::detail::contract_check((expr), "Postcondition",  \
                                   #expr, std::source_location::current())

#define FOSCIL_ASSERT(expr)                                  \
  ::foscil::detail::contract_check((expr), "Invariant",      \
                                   #expr, std::source_location::current())
