// Monotonic wall-clock stopwatch used by the computation-time experiments
// (Table V) and by examples that report scheduler latency.
#pragma once

#include <chrono>

namespace foscil {

/// Starts running on construction; `seconds()` reads elapsed wall time.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace foscil
