#include "core/lns.hpp"

#include "core/ideal.hpp"
#include "util/stopwatch.hpp"

namespace foscil::core {

SchedulerResult run_lns(const Platform& platform, double t_max_c) {
  const Stopwatch timer;
  const double rise_target = platform.rise_budget(t_max_c);
  const auto& model = *platform.model;
  const auto& levels = platform.levels;

  const IdealVoltages ideal =
      ideal_constant_voltages(model, rise_target, levels.highest());

  linalg::Vector assigned(platform.num_cores());
  for (std::size_t core = 0; core < platform.num_cores(); ++core) {
    const auto floor = levels.floor_level(ideal.voltages[core]);
    // Below the lowest level the paper's baseline has no mode to fall back
    // on; run the lowest level and let the feasibility check below decide.
    assigned[core] = floor.value_or(levels.lowest());
  }

  // Rounding down is heat-monotone, but the fallback-to-lowest corner can
  // still violate the budget; shed the hottest core's level if needed.
  linalg::Vector steady = model.steady_state(assigned);
  std::size_t evaluations = 1;
  bool feasible = model.max_core_rise(steady) <= rise_target * (1.0 + 1e-9);
  while (!feasible) {
    const linalg::Vector cores = model.core_rises(steady);
    const std::size_t hottest = cores.argmax();
    const auto lower = levels.floor_level(assigned[hottest] - 1e-9);
    if (!lower) break;  // already at the lowest level everywhere useful
    assigned[hottest] = *lower;
    steady = model.steady_state(assigned);
    ++evaluations;
    feasible = model.max_core_rise(steady) <= rise_target * (1.0 + 1e-9);
  }

  SchedulerResult result;
  result.scheduler = "LNS";
  result.feasible = feasible;
  result.schedule = sched::PeriodicSchedule::constant(assigned, 1.0);
  result.throughput = result.schedule.throughput();
  result.peak_rise = model.max_core_rise(steady);
  result.peak_celsius = platform.to_celsius(result.peak_rise);
  result.evaluations = evaluations;
  result.seconds = timer.seconds();
  return result;
}

}  // namespace foscil::core
