// Schedule auditing: certify an arbitrary periodic schedule against a
// platform and a peak-temperature threshold.
//
// This is the library surface an OS/firmware engineer uses when the
// schedule comes from somewhere else (a legacy governor table, a hand-tuned
// profile, another tool).  Two verdicts are produced:
//   * the exact stable-status peak, found by dense sampling, and
//   * the Theorem-2 certificate: the peak of the schedule's step-up
//     permutation, computable in closed form, which upper-bounds the true
//     peak.  When the certificate already clears T_max the schedule is
//     provably safe without any sampling.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/platform.hpp"
#include "sched/schedule.hpp"

namespace foscil::core {

struct ScheduleAudit {
  double throughput = 0.0;        ///< eq. (5) of the schedule as given
  double peak_rise = 0.0;         ///< sampled stable-status peak (K)
  double peak_celsius = 0.0;
  double bound_rise = 0.0;        ///< Theorem-2 step-up certificate (K)
  double bound_celsius = 0.0;
  std::size_t hottest_core = 0;   ///< argmax core of the sampled peak
  double peak_time = 0.0;         ///< offset of the sampled peak in-period
  bool certified_safe = false;    ///< bound <= T_max (proof, no sampling)
  bool measured_safe = false;     ///< sampled peak <= T_max
};

/// Audit `schedule` on `platform` against `t_max_c`.
/// `samples_per_interval` controls the exact-peak resolution.
[[nodiscard]] ScheduleAudit audit_schedule(const Platform& platform,
                                           const sched::PeriodicSchedule& schedule,
                                           double t_max_c,
                                           int samples_per_interval = 64);

/// The Theorem-2 certificate alone: the stable-status peak rise (K) of the
/// schedule's step-up permutation on an arbitrary model, which upper-bounds
/// the schedule's true stable peak.  No sampling, no Platform needed — this
/// is the per-sample safety proof behind core/identify's
/// uncertainty-certified replanning.
[[nodiscard]] double step_up_certificate_rise(
    const std::shared_ptr<const thermal::ThermalModel>& model,
    const sched::PeriodicSchedule& schedule);

/// Process-wide, thread-safe tally of audit activity.  The serving stack
/// (src/serve) certifies every plan it computes; long-running processes
/// surface these counters next to the cache/queue statistics so operators
/// can see how many plans were proven safe versus merely measured safe.
/// Counters are monotone and lock-free; `reset()` exists for tests.
class AuditCounters {
 public:
  struct Snapshot {
    std::uint64_t audits = 0;           ///< full audit_schedule runs
    std::uint64_t certificates = 0;     ///< Theorem-2 certificates issued
    std::uint64_t certified_safe = 0;   ///< certificates that cleared T_max
  };

  [[nodiscard]] static AuditCounters& instance();

  void record_audit() {
    audits_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_certificate(bool certified_safe) {
    certificates_.fetch_add(1, std::memory_order_relaxed);
    if (certified_safe)
      certified_safe_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] Snapshot snapshot() const {
    return {audits_.load(std::memory_order_relaxed),
            certificates_.load(std::memory_order_relaxed),
            certified_safe_.load(std::memory_order_relaxed)};
  }

  void reset() {
    audits_.store(0, std::memory_order_relaxed);
    certificates_.store(0, std::memory_order_relaxed);
    certified_safe_.store(0, std::memory_order_relaxed);
  }

 private:
  AuditCounters() = default;
  std::atomic<std::uint64_t> audits_{0};
  std::atomic<std::uint64_t> certificates_{0};
  std::atomic<std::uint64_t> certified_safe_{0};
};

}  // namespace foscil::core
