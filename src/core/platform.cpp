#include "core/platform.hpp"

namespace foscil::core {

Platform make_grid_platform(std::size_t rows, std::size_t cols,
                            power::VoltageLevels levels,
                            const thermal::HotSpotParams& params,
                            const power::PowerModel& power_model) {
  constexpr double kCoreEdgeM = 4e-3;  // 4x4 mm^2 cores (Sec. VI)
  const thermal::Floorplan floorplan(rows, cols, kCoreEdgeM);
  thermal::RcNetwork network(floorplan, params);
  Platform platform;
  platform.model = std::make_shared<const thermal::ThermalModel>(
      std::move(network), power_model);
  platform.levels = std::move(levels);
  platform.name = floorplan.label();
  if (params.die_tiers > 1) {
    platform.name += 'x';
    platform.name += std::to_string(params.die_tiers);
    platform.name += "tiers";
  }
  return platform;
}

}  // namespace foscil::core
