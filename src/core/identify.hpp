// Online thermal-model identification + uncertainty-certified replanning.
//
// The guard's deviation watchdog (core/guard.hpp) only measures *that* the
// plant left the qualified envelope; this module estimates *what* is wrong
// with it, from the same sensor-vs-prediction residuals the guard already
// computes each poll.  The estimated mismatch vector is
//
//   theta = [ Dalpha_0 .. Dalpha_{C-1},  Dbeta_rel,  d_conv,  b_0 .. b_{C-1} ]
//
// — per-core power offsets (W), a relative leakage-slope scale, a relative
// convection-resistance scale, and per-core sensor biases (K) — regressed by
// recursive least squares (linalg/rls.hpp) against the nominal model's
// sensitivity directions (thermal::ThermalModel::sensitivity_heat).
//
// Regressor construction is *dynamic*: for each plant parameter j the
// identifier integrates the linearized residual response
//     x_j' = A x_j + C^{-1} dPsi_eff/dtheta_j,      x_j(0) = 0,
// alongside the guard's nominal prediction via the spectral cache
// (exp_apply/phi_apply, O(n^2) per poll — no new factorizations).  Because
// guarded runs warm-start at the nominal stable state, the residual obeys
// DT(t) ~= sum_j theta_j x_j(t) exactly to first order, so the die-node
// entries of x_j are the correct regressors for the sensor residuals; the
// sensor-bias parameters enter with constant indicator regressors.
//
// Once the covariance converges below a confidence gate and the estimate is
// statistically significant, `certified_replan` rebuilds the identified
// plant (sim/faults::perturbed_model over a PlantPerturbation), re-runs AO
// against it, and certifies the plan not just at the point estimate but at
// the vertices of the estimator's remaining confidence ellipsoid, using the
// Theorem-2 step-up certificate (core/audit.hpp) as the per-sample safety
// proof.  The resulting planning margin is the *certified band* that
// replaces the guard's heuristic worst-case band.
#pragma once

#include <memory>
#include <vector>

#include "core/ao.hpp"
#include "core/platform.hpp"
#include "core/result.hpp"
#include "linalg/rls.hpp"
#include "sim/faults.hpp"

namespace foscil::core {

struct IdentifyOptions {
  bool enabled = false;       ///< master switch (off = PR-1 guard behavior)
  double forgetting = 1.0;    ///< RLS forgetting factor; 1 = pure recursive
                              ///< OLS.  Anything below 1 winds the gain up
                              ///< along weakly excited directions (per-core
                              ///< alpha splits) until theta diverges;
                              ///< regime changes are handled by an explicit
                              ///< covariance reset at escalation instead
  double prior_sigma = 1.0;   ///< prior std-dev per *scaled* parameter
  double beta_prior_sigma = 0.1;  ///< tighter prior for the leakage-slope
                              ///< scale: beta is characterized pre-silicon
                              ///< and its regressor is nearly collinear
                              ///< with the convection column, so a loose
                              ///< beta prior lets residual mass seesaw
                              ///< between the two instead of converging
  double gate_sigma = 0.25;   ///< convergence gate: every scaled sigma of
                              ///< the collapsed block (beta, conv, biases,
                              ///< drift) must fall below this before acting.
                              ///< Per-core alpha *splits* are structurally
                              ///< slow (all cores see near-identical
                              ///< excitation) and are excluded — their
                              ///< remaining uncertainty is priced by the
                              ///< certification ellipsoid, not the gate
  double confidence = 3.0;    ///< ellipsoid radius, in sigmas, certified by
                              ///< the replan (3 ~ 99.7% per axis)
  double trust_radius = 0.8;  ///< per-parameter cap (scaled units) on a
                              ///< vertex's distance from the estimate: the
                              ///< certificate covers ellipsoid INTERSECT
                              ///< qualification envelope, so directions the
                              ///< schedule cannot excite (per-core alpha
                              ///< splits, sigma stuck at the prior) are
                              ///< priced at the envelope, not at 3x an
                              ///< ignorance prior (0 disables the cap)
  std::size_t min_polls = 400;///< polls absorbed before acting at all
  double min_seconds = 5.0;   ///< observation time absorbed before acting:
                              ///< poll counts alone mislead when the
                              ///< schedule's intervals make polls much
                              ///< shorter than the control period — sigma
                              ///< shrinks with update count while the slow
                              ///< thermal directions have seen no real
                              ///< excitation yet
  double significance = 3.0;  ///< |theta|/sigma needed to call the mismatch
                              ///< real rather than noise
  double min_theta = 0.05;    ///< scaled-magnitude floor on top of the
                              ///< significance ratio (keeps a zero-fault
                              ///< run from ever acting on 1e-14 residuals)
  double band_floor_k = 0.5;  ///< K of slack always added to the certified
                              ///< margin (linearization + discretization)
  std::size_t max_replans = 3;///< identified replans per run
  double replan_delta = 0.5;  ///< scaled-theta movement vs the last
                              ///< identified plan that justifies another

  // Parameter scaling: theta is estimated in units where the prior is O(1).
  double alpha_scale_w = 0.5; ///< W of power offset per unit scaled theta
  double rel_scale = 0.3;     ///< relative beta/convection per unit theta
  double bias_scale_k = 3.0;  ///< K of sensor bias per unit scaled theta
  double drift_scale_k = 1.0; ///< K of ambient-drift quadrature amplitude
                              ///< per unit scaled theta

  // Robustness of the regression itself.
  double drift_period_s = 0.0;///< when > 0, append sin/cos regressors at
                              ///< this period so assumed ambient drift — a
                              ///< common-mode signal outside the plant
                              ///< basis — stops polluting the plant block.
                              ///< The guard fills this in from the assumed
                              ///< fault set when left at 0
  double innovation_clip_k = 1.0;  ///< Huber clip (K) on each update's
                              ///< innovation: bounds the pull of transient
                              ///< residual spikes from dropped/delayed DVFS
                              ///< transitions (0 disables clipping)
  bool conservative = true;   ///< clamp the identified plant to at-least-
                              ///< nominal severity (alpha offsets >= 0,
                              ///< beta/convection scales >= 1): estimator
                              ///< misattribution can then only cost
                              ///< throughput, never certify an easier-than-
                              ///< real plant

  void check() const;
};

/// Persistable estimator state for crash-safe recovery (serve/snapshot):
/// the RLS recursion (theta, covariance, update count) plus the poll tally
/// and accumulated observation time.  The dynamic regressor integrator
/// states are intentionally *not* persisted — they are transients of the
/// run's trajectory that re-integrate from zero after a warm restart —
/// whereas theta/P are the slowly-earned knowledge worth surviving a crash.
struct IdentifyState {
  linalg::Vector theta;        ///< scaled estimate
  linalg::Matrix covariance;   ///< scaled parameter covariance
  std::size_t updates = 0;     ///< RLS updates absorbed
  std::size_t polls = 0;       ///< observe() calls absorbed
  double seconds = 0.0;        ///< accumulated observation time
};

/// Recursive estimator of the mismatch vector theta; one instance lives for
/// the duration of a guarded run and absorbs every poll's residual.
class ThermalIdentifier {
 public:
  ThermalIdentifier(std::shared_ptr<const thermal::ThermalModel> nominal,
                    IdentifyOptions options);

  [[nodiscard]] const IdentifyOptions& options() const { return options_; }
  [[nodiscard]] std::size_t num_cores() const { return cores_; }
  /// Parameter count: cores power offsets + beta + conv + cores biases
  /// (+ drift sin/cos when drift_period_s > 0).
  [[nodiscard]] std::size_t num_params() const {
    return 2 * cores_ + 2 + (options_.drift_period_s > 0.0 ? 2 : 0);
  }
  /// Plant-block parameter count (power offsets + beta + conv).
  [[nodiscard]] std::size_t num_plant_params() const { return cores_ + 2; }
  [[nodiscard]] std::size_t polls() const { return polls_; }

  /// Absorb one poll: advance the dynamic regressor states over `dt` from
  /// the *pre-advance* nominal prediction `pre_nodes` under `requested`
  /// voltages, then run one scaled RLS update per core with the per-core
  /// residuals `seen - predicted` (K).
  void observe(const linalg::Vector& pre_nodes,
               const linalg::Vector& requested, double dt,
               const linalg::Vector& residual_cores);

  /// After min_polls updates *and* min_seconds of observation, every scaled
  /// sigma of the well-excited block — beta, conv, biases, drift — below
  /// the gate.  Per-core alpha splits are excluded (see
  /// IdentifyOptions::gate_sigma); the ellipsoid prices them.
  [[nodiscard]] bool converged() const;
  /// Accumulated observation time (s) across all observe() calls.
  [[nodiscard]] double observed_seconds() const { return t_; }
  /// Some plant parameter is both significant (|theta| > significance *
  /// sigma) and above the min_theta magnitude floor.
  [[nodiscard]] bool significant() const;

  /// Point estimate as a plant delta (physical units, clamped physical).
  [[nodiscard]] sim::PlantPerturbation perturbation() const;
  /// Plant perturbations at the center + vertices of the plant-block
  /// confidence ellipsoid (2 * num_plant_params + 1 entries, center first).
  [[nodiscard]] std::vector<sim::PlantPerturbation> ellipsoid_samples() const;

  /// Upper confidence bound (K) on the ambient-drift amplitude from the
  /// quadrature block: |theta| + confidence * sigma, in kelvin.  Infinity
  /// when the estimator carries no drift block — callers min() this with
  /// the assumed envelope's drift, so "no estimate" falls back to assumed.
  [[nodiscard]] double drift_amplitude_bound_k() const;

  /// Estimated sensor bias of a core (K) and its marginal sigma (K).
  [[nodiscard]] double bias_k(std::size_t core) const;
  [[nodiscard]] double bias_sigma_k(std::size_t core) const;
  [[nodiscard]] double max_bias_sigma_k() const;

  /// First-order node-rise correction sum_j theta_j x_j (K): add to the
  /// nominal prediction to seed an identified-model predictor.
  [[nodiscard]] linalg::Vector node_correction() const;

  /// Scaled estimate / distance helpers for the guard's replan gating.
  [[nodiscard]] const linalg::Vector& theta_scaled() const {
    return rls_.theta();
  }
  [[nodiscard]] double max_sigma_scaled() const { return rls_.max_sigma(); }
  [[nodiscard]] double sigma_scaled(std::size_t j) const {
    return rls_.sigma(j);
  }

  /// Re-open the estimator gain after a regime change (escalation trip):
  /// keeps theta, resets the covariance to the prior.
  void reset_covariance();

  /// Snapshot the persistable estimator state (see IdentifyState).
  [[nodiscard]] IdentifyState export_state() const;
  /// Warm-restart from a saved state.  The state's dimensions must match
  /// this identifier's parameter count; the dynamic regressor states are
  /// reset to zero and re-integrate from the next observe().
  void restore_state(const IdentifyState& state);

 private:
  [[nodiscard]] sim::PlantPerturbation perturbation_at(
      const linalg::Vector& plant_theta_scaled) const;

  std::shared_ptr<const thermal::ThermalModel> nominal_;
  IdentifyOptions options_;
  std::size_t cores_;
  linalg::RlsEstimator rls_;
  std::vector<linalg::Vector> x_;  ///< dynamic regressor states, node-sized,
                                   ///< one per plant parameter
  std::size_t polls_ = 0;
  double t_ = 0.0;  ///< accumulated observation time (drift regressor phase)
};

/// Outcome of an uncertainty-certified replan.
struct CertifiedPlan {
  bool ok = false;          ///< certified within the margin cap
  SchedulerResult planned;  ///< AO against the identified plant
  double margin = 0.0;      ///< K of planning margin — the certified band
  double center_rise = 0.0; ///< Theorem-2 bound at the point estimate (K)
  double worst_case_rise = 0.0;  ///< worst Theorem-2 bound on the ellipsoid
  /// Identified (point-estimate) model the plan targets; never null on ok.
  std::shared_ptr<const thermal::ThermalModel> model;
};

/// Re-run AO against the identified plant and certify the result over the
/// estimator's confidence ellipsoid: grow the planning margin until the
/// worst-case Theorem-2 step-up bound over all ellipsoid samples, plus the
/// environment slack the estimator cannot see (ambient drift, actuator
/// retry headroom from `assumed`, band_floor_k), clears the rise budget.
/// `extra_margin` adds escalation derate on top.  Fails (ok = false) when
/// no margin below 0.75 * budget certifies.
[[nodiscard]] CertifiedPlan certified_replan(const Platform& platform,
                                             double t_max_c,
                                             const ThermalIdentifier& id,
                                             const sim::FaultSpec& assumed,
                                             const AoOptions& ao,
                                             double extra_margin = 0.0);

}  // namespace foscil::core
