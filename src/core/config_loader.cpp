#include "core/config_loader.hpp"

namespace foscil::core {

namespace {

power::VoltageLevels levels_from_config(const Config& config) {
  const bool has_values = config.has("levels.values");
  const bool has_table4 = config.has("levels.table4");
  const bool has_full = config.has("levels.full_range");
  const int chosen = (has_values ? 1 : 0) + (has_table4 ? 1 : 0) +
                     (has_full ? 1 : 0);
  if (chosen > 1)
    throw ConfigError(
        "choose exactly one of levels.values / levels.table4 / "
        "levels.full_range");
  if (has_values)
    return power::VoltageLevels(config.get_doubles("levels.values"));
  if (has_table4)
    return power::VoltageLevels::paper_table4(
        static_cast<int>(config.get_int("levels.table4")));
  if (has_full && config.get_bool("levels.full_range"))
    return power::VoltageLevels::paper_full_range();
  // Default: the paper's 2-mode set.
  return power::VoltageLevels({0.6, 1.3});
}

thermal::HotSpotParams package_from_config(const Config& config) {
  thermal::HotSpotParams params;
  params.die_tiers = static_cast<std::size_t>(
      config.get_int_or("platform.tiers", 1));
  params.r_convection_block = config.get_double_or(
      "package.r_convection_block", params.r_convection_block);
  params.rim_width_blocks = config.get_double_or(
      "package.rim_width_blocks", params.rim_width_blocks);
  params.sink_mass_factor = config.get_double_or(
      "package.sink_mass_factor", params.sink_mass_factor);
  params.k_tim = config.get_double_or("package.k_tim", params.k_tim);
  if (config.has("package.t_tim_um"))
    params.t_tim = config.get_double("package.t_tim_um") * 1e-6;
  if (config.has("package.t_spreader_mm"))
    params.t_spreader = config.get_double("package.t_spreader_mm") * 1e-3;
  if (config.has("package.t_sink_base_mm"))
    params.t_sink_base = config.get_double("package.t_sink_base_mm") * 1e-3;
  params.k_inter_tier = config.get_double_or("package.k_inter_tier",
                                             params.k_inter_tier);
  if (config.has("package.t_inter_tier_um"))
    params.t_inter_tier =
        config.get_double("package.t_inter_tier_um") * 1e-6;
  return params;
}

power::PowerModel power_from_config(const Config& config,
                                    std::size_t num_cores) {
  power::PowerCoefficients coeff;
  coeff.alpha = config.get_double_or("power.alpha", coeff.alpha);
  coeff.beta = config.get_double_or("power.beta", coeff.beta);
  coeff.gamma = config.get_double_or("power.gamma", coeff.gamma);

  // Optional heterogeneity: per-core lists override the scalar baseline.
  const bool any_per_core = config.has("power.alpha_per_core") ||
                            config.has("power.beta_per_core") ||
                            config.has("power.gamma_per_core");
  if (!any_per_core) return power::PowerModel(coeff);

  std::vector<power::PowerCoefficients> per_core(num_cores, coeff);
  const auto apply = [&](const char* key, auto member) {
    if (!config.has(key)) return;
    const std::vector<double> values = config.get_doubles(key);
    if (values.size() != num_cores)
      throw ConfigError(std::string(key) + " must list exactly " +
                        std::to_string(num_cores) + " values");
    for (std::size_t i = 0; i < num_cores; ++i)
      per_core[i].*member = values[i];
  };
  apply("power.alpha_per_core", &power::PowerCoefficients::alpha);
  apply("power.beta_per_core", &power::PowerCoefficients::beta);
  apply("power.gamma_per_core", &power::PowerCoefficients::gamma);
  return power::PowerModel(std::move(per_core));
}

}  // namespace

Platform platform_from_config(const Config& config) {
  const auto rows =
      static_cast<std::size_t>(config.get_int("platform.rows"));
  const auto cols =
      static_cast<std::size_t>(config.get_int("platform.cols"));
  const double edge_m =
      config.get_double_or("platform.core_edge_mm", 4.0) * 1e-3;

  const thermal::Floorplan floorplan(rows, cols, edge_m);
  thermal::RcNetwork network(floorplan, package_from_config(config));
  const std::size_t num_cores = network.num_cores();
  Platform platform;
  platform.model = std::make_shared<const thermal::ThermalModel>(
      std::move(network), power_from_config(config, num_cores));
  platform.levels = levels_from_config(config);
  platform.t_ambient_c = config.get_double_or("platform.t_ambient_c", 35.0);
  platform.name = floorplan.label();
  const long tiers = config.get_int_or("platform.tiers", 1);
  if (tiers > 1) {
    platform.name += 'x';
    platform.name += std::to_string(tiers);
    platform.name += "tiers";
  }
  return platform;
}

AoOptions ao_options_from_config(const Config& config) {
  AoOptions options;
  if (config.has("ao.base_period_ms"))
    options.base_period = config.get_double("ao.base_period_ms") * 1e-3;
  if (config.has("ao.tau_us"))
    options.transition_overhead = config.get_double("ao.tau_us") * 1e-6;
  options.t_unit_fraction = config.get_double_or("ao.t_unit_fraction",
                                                 options.t_unit_fraction);
  options.max_m =
      static_cast<int>(config.get_int_or("ao.max_m", options.max_m));
  return options;
}

double t_max_from_config(const Config& config) {
  return config.get_double_or("run.t_max_c", 55.0);
}

}  // namespace foscil::core
