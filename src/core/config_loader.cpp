#include "core/config_loader.hpp"

#include <cmath>
#include <iostream>
#include <mutex>
#include <set>
#include <string>

#include "linalg/simd.hpp"

namespace foscil::core {

namespace {

/// ConfigError with the offending section.key in the message.
[[noreturn]] void reject(const std::string& key, const std::string& why) {
  throw ConfigError("key '" + key + "' " + why);
}

double probability_from_config(const Config& config, const char* key,
                               double fallback) {
  const double p = config.get_double_or(key, fallback);
  if (p < 0.0 || p > 1.0) reject(key, "must be a probability in [0, 1]");
  return p;
}

double positive_from_config(const Config& config, const char* key,
                            double fallback) {
  const double v = config.get_double_or(key, fallback);
  if (v <= 0.0) reject(key, "must be > 0");
  return v;
}

power::VoltageLevels levels_from_config(const Config& config) {
  const bool has_values = config.has("levels.values");
  const bool has_table4 = config.has("levels.table4");
  const bool has_full = config.has("levels.full_range");
  const int chosen = (has_values ? 1 : 0) + (has_table4 ? 1 : 0) +
                     (has_full ? 1 : 0);
  if (chosen > 1)
    throw ConfigError(
        "choose exactly one of levels.values / levels.table4 / "
        "levels.full_range");
  if (has_values)
    return power::VoltageLevels(config.get_doubles("levels.values"));
  if (has_table4)
    return power::VoltageLevels::paper_table4(
        static_cast<int>(config.get_int("levels.table4")));
  if (has_full && config.get_bool("levels.full_range"))
    return power::VoltageLevels::paper_full_range();
  // Default: the paper's 2-mode set.
  return power::VoltageLevels({0.6, 1.3});
}

thermal::HotSpotParams package_from_config(const Config& config) {
  thermal::HotSpotParams params;
  params.die_tiers = static_cast<std::size_t>(
      config.get_int_or("platform.tiers", 1));
  params.r_convection_block = config.get_double_or(
      "package.r_convection_block", params.r_convection_block);
  params.rim_width_blocks = config.get_double_or(
      "package.rim_width_blocks", params.rim_width_blocks);
  params.sink_mass_factor = config.get_double_or(
      "package.sink_mass_factor", params.sink_mass_factor);
  params.k_tim = config.get_double_or("package.k_tim", params.k_tim);
  if (config.has("package.t_tim_um"))
    params.t_tim = config.get_double("package.t_tim_um") * 1e-6;
  if (config.has("package.t_spreader_mm"))
    params.t_spreader = config.get_double("package.t_spreader_mm") * 1e-3;
  if (config.has("package.t_sink_base_mm"))
    params.t_sink_base = config.get_double("package.t_sink_base_mm") * 1e-3;
  params.k_inter_tier = config.get_double_or("package.k_inter_tier",
                                             params.k_inter_tier);
  if (config.has("package.t_inter_tier_um"))
    params.t_inter_tier =
        config.get_double("package.t_inter_tier_um") * 1e-6;
  return params;
}

power::PowerModel power_from_config(const Config& config,
                                    std::size_t num_cores) {
  power::PowerCoefficients coeff;
  coeff.alpha = config.get_double_or("power.alpha", coeff.alpha);
  coeff.beta = config.get_double_or("power.beta", coeff.beta);
  coeff.gamma = config.get_double_or("power.gamma", coeff.gamma);

  // Optional heterogeneity: per-core lists override the scalar baseline.
  const bool any_per_core = config.has("power.alpha_per_core") ||
                            config.has("power.beta_per_core") ||
                            config.has("power.gamma_per_core");
  if (!any_per_core) return power::PowerModel(coeff);

  std::vector<power::PowerCoefficients> per_core(num_cores, coeff);
  const auto apply = [&](const char* key, auto member) {
    if (!config.has(key)) return;
    const std::vector<double> values = config.get_doubles(key);
    if (values.size() != num_cores)
      throw ConfigError(std::string(key) + " must list exactly " +
                        std::to_string(num_cores) + " values");
    for (std::size_t i = 0; i < num_cores; ++i)
      per_core[i].*member = values[i];
  };
  apply("power.alpha_per_core", &power::PowerCoefficients::alpha);
  apply("power.beta_per_core", &power::PowerCoefficients::beta);
  apply("power.gamma_per_core", &power::PowerCoefficients::gamma);
  return power::PowerModel(std::move(per_core));
}

}  // namespace

Platform platform_from_config(const Config& config) {
  const long rows_raw = config.get_int("platform.rows");
  const long cols_raw = config.get_int("platform.cols");
  if (rows_raw < 1) reject("platform.rows", "must be >= 1");
  if (cols_raw < 1) reject("platform.cols", "must be >= 1");
  const auto rows = static_cast<std::size_t>(rows_raw);
  const auto cols = static_cast<std::size_t>(cols_raw);
  const double edge_m =
      config.get_double_or("platform.core_edge_mm", 4.0) * 1e-3;

  const thermal::Floorplan floorplan(rows, cols, edge_m);
  thermal::RcNetwork network(floorplan, package_from_config(config));
  const std::size_t num_cores = network.num_cores();
  Platform platform;
  platform.model = std::make_shared<const thermal::ThermalModel>(
      std::move(network), power_from_config(config, num_cores));
  platform.levels = levels_from_config(config);
  platform.t_ambient_c = config.get_double_or("platform.t_ambient_c", 35.0);
  platform.name = floorplan.label();
  const long tiers = config.get_int_or("platform.tiers", 1);
  if (tiers > 1) {
    platform.name += 'x';
    platform.name += std::to_string(tiers);
    platform.name += "tiers";
  }
  return platform;
}

AoOptions ao_options_from_config(const Config& config) {
  AoOptions options;
  if (config.has("ao.base_period_ms"))
    options.base_period = config.get_double("ao.base_period_ms") * 1e-3;
  if (config.has("ao.tau_us"))
    options.transition_overhead = config.get_double("ao.tau_us") * 1e-6;
  options.t_unit_fraction = config.get_double_or("ao.t_unit_fraction",
                                                 options.t_unit_fraction);
  options.max_m =
      static_cast<int>(config.get_int_or("ao.max_m", options.max_m));
  options.t_max_margin = config.get_double_or("ao.t_max_margin_k",
                                              options.t_max_margin);
  if (options.t_max_margin < 0.0)
    reject("ao.t_max_margin_k", "must be >= 0");
  if (config.has("ao.eval_engine")) {
    const std::string engine = config.get_string("ao.eval_engine");
    if (engine == "modal")
      options.eval_engine = sim::EvalEngine::kModal;
    else if (engine == "reference")
      options.eval_engine = sim::EvalEngine::kReference;
    else
      reject("ao.eval_engine", "must be 'modal' or 'reference'");
  }
  const long scan_threads =
      config.get_int_or("ao.scan_threads", options.scan_threads);
  if (scan_threads < 0) reject("ao.scan_threads", "must be >= 0");
  options.scan_threads = static_cast<unsigned>(scan_threads);
  // SIMD dispatch is a process-wide kernel-table selection, not a per-run
  // option struct field: every engine (modal, reference, EXS) reads the
  // same table.  The config key overrides the FOSCIL_SIMD environment
  // default; set_active_level clamps avx2 to scalar on CPUs without it.
  if (config.has("sim.simd")) {
    const std::string simd = config.get_string("sim.simd");
    if (simd == "scalar")
      linalg::simd::set_active_level(linalg::simd::Level::kScalar);
    else if (simd == "avx2")
      linalg::simd::set_active_level(linalg::simd::Level::kAvx2);
    else if (simd == "auto")
      linalg::simd::set_active_level(linalg::simd::detected_level());
    else
      reject("sim.simd", "must be 'scalar', 'avx2', or 'auto'");
  }
  return options;
}

double t_max_from_config(const Config& config) {
  return config.get_double_or("run.t_max_c", 55.0);
}

bool has_faults_config(const Config& config) {
  for (const std::string& key : config.keys())
    if (key.rfind("faults.", 0) == 0) return true;
  return false;
}

sim::FaultSpec faults_from_config(const Config& config) {
  sim::FaultSpec spec;
  if (config.has("faults.intensity")) {
    const double intensity = config.get_double("faults.intensity");
    if (intensity < 0.0 || intensity > 1.0)
      reject("faults.intensity", "must be in [0, 1]");
    spec = sim::FaultSpec::at_intensity(intensity);
  }

  spec.seed = static_cast<std::uint64_t>(
      config.get_int_or("faults.seed", static_cast<long>(spec.seed)));
  spec.sensors.bias_k =
      config.get_double_or("faults.sensor_bias_k", spec.sensors.bias_k);
  spec.sensors.noise_sigma_k = config.get_double_or(
      "faults.sensor_noise_k", spec.sensors.noise_sigma_k);
  if (spec.sensors.noise_sigma_k < 0.0)
    reject("faults.sensor_noise_k", "must be >= 0");
  if (config.has("faults.stuck_sensors")) {
    spec.sensors.stuck_cores.clear();
    for (double value : config.get_doubles("faults.stuck_sensors")) {
      if (value < 0.0 || value != std::floor(value))
        reject("faults.stuck_sensors",
               "must list non-negative core indices");
      spec.sensors.stuck_cores.push_back(static_cast<std::size_t>(value));
    }
  }
  spec.sensors.stuck_at_k =
      config.get_double_or("faults.stuck_at_k", spec.sensors.stuck_at_k);

  spec.transitions.drop_probability = probability_from_config(
      config, "faults.drop_probability", spec.transitions.drop_probability);
  spec.transitions.delay_probability = probability_from_config(
      config, "faults.delay_probability",
      spec.transitions.delay_probability);
  if (config.has("faults.delay_ms"))
    spec.transitions.delay_s = config.get_double("faults.delay_ms") * 1e-3;
  if (spec.transitions.delay_s < 0.0)
    reject("faults.delay_ms", "must be >= 0");
  if (spec.transitions.delay_probability > 0.0 &&
      spec.transitions.delay_s <= 0.0)
    reject("faults.delay_ms",
           "must be > 0 when faults.delay_probability is set");

  spec.r_convection_scale = positive_from_config(
      config, "faults.r_convection_scale", spec.r_convection_scale);
  spec.k_tim_scale = positive_from_config(config, "faults.k_tim_scale",
                                          spec.k_tim_scale);
  spec.c_scale =
      positive_from_config(config, "faults.c_scale", spec.c_scale);
  spec.alpha_scale = positive_from_config(config, "faults.alpha_scale",
                                          spec.alpha_scale);
  spec.beta_scale = positive_from_config(config, "faults.beta_scale",
                                         spec.beta_scale);
  spec.gamma_scale = positive_from_config(config, "faults.gamma_scale",
                                          spec.gamma_scale);
  spec.power_jitter =
      config.get_double_or("faults.power_jitter", spec.power_jitter);
  if (spec.power_jitter < 0.0 || spec.power_jitter >= 1.0)
    reject("faults.power_jitter", "must be in [0, 1)");

  spec.ambient_drift_c =
      config.get_double_or("faults.ambient_drift_c", spec.ambient_drift_c);
  if (spec.ambient_drift_c < 0.0)
    reject("faults.ambient_drift_c", "must be >= 0");
  spec.ambient_drift_period_s =
      positive_from_config(config, "faults.ambient_drift_period_s",
                           spec.ambient_drift_period_s);
  spec.check();
  return spec;
}

IdentifyOptions identify_options_from_config(const Config& config) {
  IdentifyOptions options;
  if (config.has("identify.enabled"))
    options.enabled = config.get_bool("identify.enabled");
  options.forgetting =
      config.get_double_or("identify.forgetting", options.forgetting);
  if (options.forgetting <= 0.0 || options.forgetting > 1.0)
    reject("identify.forgetting", "must be in (0, 1]");
  options.prior_sigma = positive_from_config(config, "identify.prior_sigma",
                                             options.prior_sigma);
  options.gate_sigma = positive_from_config(config, "identify.gate_sigma",
                                            options.gate_sigma);
  options.confidence =
      config.get_double_or("identify.confidence", options.confidence);
  if (options.confidence < 0.0) reject("identify.confidence", "must be >= 0");
  const long min_polls = config.get_int_or(
      "identify.min_polls", static_cast<long>(options.min_polls));
  if (min_polls < 1) reject("identify.min_polls", "must be >= 1");
  options.min_polls = static_cast<std::size_t>(min_polls);
  options.significance =
      config.get_double_or("identify.significance", options.significance);
  if (options.significance < 0.0)
    reject("identify.significance", "must be >= 0");
  options.min_theta =
      config.get_double_or("identify.min_theta", options.min_theta);
  if (options.min_theta < 0.0) reject("identify.min_theta", "must be >= 0");
  options.band_floor_k =
      config.get_double_or("identify.band_floor_k", options.band_floor_k);
  if (options.band_floor_k < 0.0)
    reject("identify.band_floor_k", "must be >= 0");
  const long max_replans = config.get_int_or(
      "identify.max_replans", static_cast<long>(options.max_replans));
  if (max_replans < 0) reject("identify.max_replans", "must be >= 0");
  options.max_replans = static_cast<std::size_t>(max_replans);
  options.replan_delta =
      config.get_double_or("identify.replan_delta", options.replan_delta);
  if (options.replan_delta < 0.0)
    reject("identify.replan_delta", "must be >= 0");
  options.alpha_scale_w = positive_from_config(
      config, "identify.alpha_scale_w", options.alpha_scale_w);
  options.rel_scale =
      positive_from_config(config, "identify.rel_scale", options.rel_scale);
  options.bias_scale_k = positive_from_config(
      config, "identify.bias_scale_k", options.bias_scale_k);
  options.beta_prior_sigma = positive_from_config(
      config, "identify.beta_prior_sigma", options.beta_prior_sigma);
  options.trust_radius =
      config.get_double_or("identify.trust_radius", options.trust_radius);
  if (options.trust_radius < 0.0)
    reject("identify.trust_radius", "must be >= 0");
  options.min_seconds =
      config.get_double_or("identify.min_seconds", options.min_seconds);
  if (options.min_seconds < 0.0)
    reject("identify.min_seconds", "must be >= 0");
  options.drift_scale_k = positive_from_config(
      config, "identify.drift_scale_k", options.drift_scale_k);
  options.drift_period_s = config.get_double_or("identify.drift_period_s",
                                                options.drift_period_s);
  if (options.drift_period_s < 0.0)
    reject("identify.drift_period_s", "must be >= 0");
  options.innovation_clip_k = config.get_double_or(
      "identify.innovation_clip_k", options.innovation_clip_k);
  if (options.innovation_clip_k < 0.0)
    reject("identify.innovation_clip_k", "must be >= 0");
  if (config.has("identify.conservative"))
    options.conservative = config.get_bool("identify.conservative");
  return options;
}

GuardOptions guard_options_from_config(const Config& config) {
  GuardOptions options;
  options.ao = ao_options_from_config(config);
  options.identify = identify_options_from_config(config);
  options.horizon =
      positive_from_config(config, "guard.horizon_s", options.horizon);
  if (config.has("guard.control_period_ms"))
    options.control_period =
        config.get_double("guard.control_period_ms") * 1e-3;
  if (options.control_period <= 0.0)
    reject("guard.control_period_ms", "must be > 0");
  options.samples_per_tick = static_cast<int>(config.get_int_or(
      "guard.samples_per_tick", options.samples_per_tick));
  options.trip_margin = positive_from_config(config, "guard.trip_margin_k",
                                             options.trip_margin);
  options.reentry_margin = config.get_double_or("guard.reentry_margin_k",
                                                options.reentry_margin);
  if (options.reentry_margin < 0.0)
    reject("guard.reentry_margin_k", "must be >= 0");
  options.backoff_initial = positive_from_config(
      config, "guard.backoff_initial_s", options.backoff_initial);
  options.backoff_factor = config.get_double_or("guard.backoff_factor",
                                                options.backoff_factor);
  if (options.backoff_factor < 1.0)
    reject("guard.backoff_factor", "must be >= 1");
  options.backoff_max =
      config.get_double_or("guard.backoff_max_s", options.backoff_max);
  if (options.backoff_max < options.backoff_initial)
    reject("guard.backoff_max_s", "must be >= guard.backoff_initial_s");
  options.escalate_after = static_cast<int>(
      config.get_int_or("guard.escalate_after", options.escalate_after));
  if (options.escalate_after < 1)
    reject("guard.escalate_after", "must be >= 1");
  options.derate_step = positive_from_config(config, "guard.derate_step_k",
                                             options.derate_step);
  options.max_derate =
      config.get_double_or("guard.max_derate_k", options.max_derate);
  if (options.max_derate < 0.0)
    reject("guard.max_derate_k", "must be >= 0");
  options.check();
  return options;
}

namespace {

/// Every "section.key" the loaders in this file read.  Kept literal (not
/// harvested at call time) so the validator can run without touching any
/// loader; the unknown-key test cross-checks it against a config
/// exercising every documented key.
const char* const kKnownKeys[] = {
    "platform.rows", "platform.cols", "platform.tiers",
    "platform.core_edge_mm", "platform.t_ambient_c",
    "levels.values", "levels.table4", "levels.full_range",
    "package.r_convection_block", "package.rim_width_blocks",
    "package.sink_mass_factor", "package.k_tim", "package.t_tim_um",
    "package.t_spreader_mm", "package.t_sink_base_mm",
    "package.k_inter_tier", "package.t_inter_tier_um",
    "power.alpha", "power.beta", "power.gamma", "power.alpha_per_core",
    "power.beta_per_core", "power.gamma_per_core",
    "ao.base_period_ms", "ao.tau_us", "ao.t_unit_fraction", "ao.max_m",
    "ao.t_max_margin_k", "ao.eval_engine", "ao.scan_threads",
    "sim.simd",
    "run.t_max_c",
    "faults.intensity", "faults.seed", "faults.sensor_bias_k",
    "faults.sensor_noise_k", "faults.stuck_sensors", "faults.stuck_at_k",
    "faults.drop_probability", "faults.delay_probability", "faults.delay_ms",
    "faults.r_convection_scale", "faults.k_tim_scale", "faults.c_scale",
    "faults.alpha_scale", "faults.beta_scale", "faults.gamma_scale",
    "faults.power_jitter", "faults.ambient_drift_c",
    "faults.ambient_drift_period_s",
    "guard.horizon_s", "guard.control_period_ms", "guard.samples_per_tick",
    "guard.trip_margin_k", "guard.reentry_margin_k",
    "guard.backoff_initial_s", "guard.backoff_factor", "guard.backoff_max_s",
    "guard.escalate_after", "guard.derate_step_k", "guard.max_derate_k",
    "identify.enabled", "identify.forgetting", "identify.prior_sigma",
    "identify.beta_prior_sigma", "identify.gate_sigma",
    "identify.confidence", "identify.trust_radius", "identify.min_polls",
    "identify.min_seconds", "identify.significance", "identify.min_theta",
    "identify.band_floor_k", "identify.max_replans", "identify.replan_delta",
    "identify.alpha_scale_w", "identify.rel_scale", "identify.bias_scale_k",
    "identify.drift_scale_k", "identify.drift_period_s",
    "identify.innovation_clip_k", "identify.conservative",
};

[[nodiscard]] std::string section_of(const std::string& key) {
  const std::size_t dot = key.find('.');
  return dot == std::string::npos ? key : key.substr(0, dot);
}

}  // namespace

std::vector<std::string> unknown_config_keys(
    const Config& config, const std::vector<std::string>& extra_known) {
  std::set<std::string> known(std::begin(kKnownKeys), std::end(kKnownKeys));
  known.insert(extra_known.begin(), extra_known.end());
  std::set<std::string> known_sections;
  for (const std::string& key : known) known_sections.insert(section_of(key));

  std::vector<std::string> unknown;
  for (const std::string& key : config.keys()) {
    if (known.count(key) != 0) continue;
    if (known_sections.count(section_of(key)) == 0) continue;
    unknown.push_back(key);
  }
  return unknown;  // Config::keys() is already sorted
}

std::vector<std::string> warn_unknown_config_keys(
    const Config& config, const std::vector<std::string>& extra_known) {
  // Process-wide memory of keys already warned about, so config re-loads
  // (file watchers, retry loops) log each misspelling exactly once.
  static std::mutex mutex;
  static std::set<std::string> warned;

  std::vector<std::string> fresh;
  for (const std::string& key : unknown_config_keys(config, extra_known)) {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      if (!warned.insert(key).second) continue;
    }
    std::cerr << "warning: unknown config key '" << key
              << "' in a known section (ignored; check for a misspelling)\n";
    fresh.push_back(key);
  }
  return fresh;
}

}  // namespace foscil::core
