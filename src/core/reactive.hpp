// Reactive DTM baseline (beyond the paper's evaluation, motivated by its
// Sec. I): a threshold governor in the style of "reactive (online)" DTM.
//
// Every `poll_period` seconds the governor reads each core's temperature
// sensor (optionally biased, modeling sensor error) and
//   * steps the core one level DOWN when the reading is above
//     T_max - margin,
//   * steps it one level UP when the reading is below
//     T_max - margin - hysteresis.
//
// The paper argues such schemes either violate the peak constraint (sensor
// error, inter-poll transients) or surrender throughput (safe margins);
// run_reactive quantifies both failure modes against AO on the same
// platform.  The governor is simulated exactly with the analytic transient
// engine, and the *true* inter-poll peak is tracked alongside what the
// sensor saw.
#pragma once

#include "core/platform.hpp"
#include "core/result.hpp"

namespace foscil::core {

struct ReactiveOptions {
  double poll_period = 0.01;   ///< s between sensor reads / decisions
  double margin = 1.0;         ///< K below T_max that triggers a step-down
  double hysteresis = 2.0;     ///< extra K of cushion before stepping up
  double horizon = 120.0;      ///< simulated seconds
  double sensor_bias = 0.0;    ///< K added to readings (<0 = optimistic)
  int samples_per_tick = 4;    ///< inter-poll samples for true-peak tracking
};

struct ReactiveResult {
  SchedulerResult result;       ///< scheduler-comparable summary
  double true_peak_rise = 0.0;  ///< max rise including inter-poll transients
  double seen_peak_rise = 0.0;  ///< max rise the (biased) sensor reported
  std::size_t violations = 0;   ///< ticks whose true peak exceeded T_max
  std::size_t transitions = 0;  ///< total DVFS level changes issued
};

[[nodiscard]] ReactiveResult run_reactive(const Platform& platform,
                                          double t_max_c,
                                          const ReactiveOptions& options = {});

}  // namespace foscil::core
