// Platform: everything a scheduler needs about the chip.
//
// Bundles the thermal model (with its spectral/LU caches), the available
// DVFS levels, and the ambient temperature.  Peak-temperature thresholds are
// per-request, not per-platform, because the experiments sweep them.
#pragma once

#include <memory>
#include <string>

#include "power/dvfs.hpp"
#include "thermal/model.hpp"

namespace foscil::core {

struct Platform {
  std::shared_ptr<const thermal::ThermalModel> model;
  power::VoltageLevels levels = power::VoltageLevels::paper_full_range();
  double t_ambient_c = 35.0;
  std::string name;

  [[nodiscard]] std::size_t num_cores() const { return model->num_cores(); }

  /// Convert an absolute threshold in Celsius to a rise budget in kelvin.
  [[nodiscard]] double rise_budget(double t_max_c) const {
    FOSCIL_EXPECTS(t_max_c > t_ambient_c);
    return t_max_c - t_ambient_c;
  }

  /// Convert a rise over ambient back to Celsius.
  [[nodiscard]] double to_celsius(double rise_kelvin) const {
    return t_ambient_c + rise_kelvin;
  }
};

/// Build a rows x cols grid platform with the paper's defaults
/// (4x4 mm^2 cores, HotSpot-style package, McPAT-style power constants,
/// T_amb = 35 C).
[[nodiscard]] Platform make_grid_platform(
    std::size_t rows, std::size_t cols,
    power::VoltageLevels levels = power::VoltageLevels::paper_full_range(),
    const thermal::HotSpotParams& params = {},
    const power::PowerModel& power_model = power::PowerModel{});

}  // namespace foscil::core
