#include "core/guard.hpp"

#include <algorithm>
#include <cmath>

#include "sim/steady.hpp"
#include "util/stopwatch.hpp"

namespace foscil::core {

void GuardOptions::check() const {
  FOSCIL_EXPECTS(horizon > 0.0);
  FOSCIL_EXPECTS(control_period > 0.0);
  FOSCIL_EXPECTS(horizon >= control_period);
  FOSCIL_EXPECTS(samples_per_tick >= 1);
  FOSCIL_EXPECTS(trip_margin > 0.0);
  FOSCIL_EXPECTS(reentry_margin >= 0.0);
  FOSCIL_EXPECTS(backoff_initial > 0.0);
  FOSCIL_EXPECTS(backoff_factor >= 1.0);
  FOSCIL_EXPECTS(backoff_max >= backoff_initial);
  FOSCIL_EXPECTS(escalate_after >= 1);
  FOSCIL_EXPECTS(derate_step > 0.0);
  FOSCIL_EXPECTS(max_derate >= 0.0);
  identify.check();
}

double guard_band(const Platform& platform, double t_max_c,
                  const sim::FaultSpec& assumed) {
  assumed.check();
  const double budget = platform.rise_budget(t_max_c);

  // Sensor + environment error translate into the estimate 1:1.
  double band = std::abs(assumed.sensors.bias_k) +
                3.0 * assumed.sensors.noise_sigma_k + assumed.ambient_drift_c;

  // Plant mismatch.  A power-side scale lifts every rise 1:1 (the LTI map
  // from power to rise is linear); a resistance scale lifts only the rise
  // across that resistance, so weight it by the layer's rough share of the
  // die-to-ambient stack (sink convection ~60%, TIM ~15%).
  const double jitter = 1.0 + assumed.power_jitter;
  const double power_excess =
      std::max({assumed.alpha_scale * jitter, assumed.gamma_scale * jitter,
                assumed.beta_scale}) -
      1.0;
  const double sink_excess = 0.6 * (assumed.r_convection_scale - 1.0);
  const double tim_excess = 0.15 * (1.0 / assumed.k_tim_scale - 1.0);
  band += budget * (std::max(0.0, power_excess) + std::max(0.0, sink_excess) +
                    std::max(0.0, tim_excess));

  // Actuator headroom: a failed step-down stretches a high interval by the
  // retry latency (one control period, ~1% of the oscillation period), so
  // the operating point shifts toward the all-high steady state only by a
  // sliver per failure.  Empirical coefficients; the trip/fallback loop
  // covers what this underestimates.
  band += budget * 0.05 * assumed.transitions.drop_probability;
  band += budget * 0.02 * assumed.transitions.delay_probability;

  // Leave at least half the budget to run in, or planning degenerates.
  return std::min(band, 0.5 * budget);
}

namespace {

/// Violation test shared by all three policies; tolerance mirrors AO's
/// feasibility tolerance so an exactly-at-threshold plan is not a violation.
bool violates(double effective_rise, double budget) {
  return effective_rise > budget * (1.0 + 1e-6);
}

/// Delivered throughput: applied volt-seconds minus v_new * tau per applied
/// transition (AO's stall accounting), per core per second.
double delivered_throughput(const sim::FaultedPlant& plant, double tau,
                            double horizon, std::size_t cores) {
  const double delivered =
      plant.work_integral() - plant.stall_volt_sum() * tau;
  return delivered / (horizon * static_cast<double>(cores));
}

/// Largest whole number of schedule periods fitting the requested horizon
/// (at least one).  Whole periods make the zero-fault delivered throughput
/// agree with the schedule's eq.-5 throughput instead of carrying a
/// partial-period remainder.
double snap_horizon(double horizon, double period) {
  return std::max(period, std::floor(horizon / period) * period);
}

/// Nominal stable-status state at the schedule's phase 0: every policy
/// starts at the operating point, not on a cold chip (see
/// FaultedPlant::warm_start).
linalg::Vector stable_start(const Platform& platform,
                            const sched::PeriodicSchedule& schedule) {
  return sim::SteadyStateAnalyzer(platform.model).stable_boundary(schedule);
}

void finish_result(GuardResult& out, const Platform& platform,
                   const sim::FaultedPlant& plant, double tau,
                   double horizon) {
  out.true_peak_rise = plant.true_peak_rise();
  out.dropped_transitions = plant.transitions_dropped();
  out.delayed_transitions = plant.transitions_delayed();
  SchedulerResult& r = out.result;
  r.feasible = out.violations == 0;
  r.throughput =
      delivered_throughput(plant, tau, horizon, platform.num_cores());
  r.peak_rise = out.true_peak_rise;
  r.peak_celsius = platform.to_celsius(out.true_peak_rise);
  r.evaluations = out.polls;
}

}  // namespace

GuardResult run_guarded_ao(const Platform& platform, double t_max_c,
                           const sim::FaultSpec& injected,
                           const GuardOptions& options) {
  options.check();
  injected.check();
  const Stopwatch timer;
  const double budget = platform.rise_budget(t_max_c);
  const double tau = options.ao.transition_overhead;
  const std::size_t cores = platform.num_cores();
  const sim::FaultSpec& assumed =
      options.assumed ? *options.assumed : injected;
  const double band = guard_band(platform, t_max_c, assumed);

  GuardResult out;
  out.guard_band = band;

  // Unfaulted reference (and the plan itself when no derating is needed).
  const SchedulerResult nominal_ao = run_ao(platform, t_max_c, options.ao);
  out.nominal_throughput = nominal_ao.throughput;

  double derate = 0.0;
  AoOptions plan_options = options.ao;
  auto plan = [&]() {
    plan_options.t_max_margin = std::min(
        options.ao.t_max_margin + band + derate, 0.75 * budget);
    return run_ao(platform, t_max_c, plan_options);
  };
  SchedulerResult planned =
      (band == 0.0 && derate == 0.0) ? nominal_ao : plan();
  const double horizon =
      snap_horizon(options.horizon, planned.schedule.period());

  sim::FaultedPlant plant(platform.model, injected);
  const sim::TransientSimulator predictor(platform.model);
  const auto& model = *platform.model;
  linalg::Vector predicted = stable_start(platform, planned.schedule);
  plant.warm_start(predicted);
  const linalg::Vector lowest_v(cores, platform.levels.lowest());

  // Online identification (opt-in).  The identifier observes every poll's
  // raw residual against the *nominal* predictor for the whole run — theta
  // stays "mismatch vs nominal" — while after a certified replan the
  // watchdog compares bias-corrected sensors against an *identified*-model
  // predictor instead.
  std::optional<ThermalIdentifier> identifier;
  if (options.identify.enabled) {
    IdentifyOptions id_options = options.identify;
    // The assumed envelope knows the qualification drift period; give the
    // estimator quadrature columns at it so the drift sinusoid has a home
    // outside the plant block (see IdentifyOptions::drift_period_s).
    if (id_options.drift_period_s == 0.0 && assumed.ambient_drift_c > 0.0)
      id_options.drift_period_s = assumed.ambient_drift_period_s;
    identifier.emplace(platform.model, id_options);
    plant.enable_residual_log(4096);
  }
  bool id_mode = false;           // watchdog on the identified model
  bool id_retired = false;        // certification failed; heuristic ladder
  std::optional<sim::TransientSimulator> id_predictor;
  linalg::Vector id_predicted;
  linalg::Vector theta_at_plan;
  double id_cooldown_until = 0.0;  // sim time (s) gating replan attempts
  double id_trip_dev = 0.0;
  double id_reentry_dev = 0.0;

  // The trip statistic is the *deviation* of the bias-corrected sensors from
  // the nominal prediction, not the absolute temperature: the band already
  // derates the plan for in-envelope mismatch, so mismatch the band has paid
  // for must not cost fallbacks too.  The envelope (band minus its bias
  // share, which the correction cancels) bounds the deviation the assumed
  // fault set can produce; only excess beyond it — the plant leaving the
  // qualified envelope — trips, and every escalation widens the accepted
  // envelope along with the extra derate it bought.
  const double abs_bias = std::abs(assumed.sensors.bias_k);
  const double envelope = band - abs_bias;
  std::vector<sched::StateInterval> intervals =
      planned.schedule.state_intervals();
  double trip_dev = 0.0;
  double reentry_dev = 0.0;
  auto refresh_thresholds = [&]() {
    trip_dev = envelope + derate + options.trip_margin;
    reentry_dev =
        trip_dev - std::min(options.reentry_margin, 0.5 * trip_dev);
  };
  refresh_thresholds();

  enum class State { kNominal, kFallback };
  State state = State::kNominal;
  std::size_t iv = 0;
  double iv_left = intervals.empty() ? 0.0 : intervals[0].length;
  double backoff = options.backoff_initial;
  double fallback_since = 0.0;
  int trips_since_plan = 0;
  int strikes = 0;
  double t = 0.0;

  // Identified-mode envelope: the heuristic band is gone, so the accepted
  // deviation is only what the certified plan does not already cover —
  // sensor noise, the residual bias uncertainty, ambient drift (the
  // identified predictor does not model it), and the linearization floor.
  auto refresh_id_thresholds = [&]() {
    id_trip_dev = options.trip_margin +
                  3.0 * assumed.sensors.noise_sigma_k +
                  options.identify.confidence *
                      identifier->max_bias_sigma_k() +
                  std::min(assumed.ambient_drift_c,
                           identifier->drift_amplitude_bound_k()) +
                  options.identify.band_floor_k;
    id_reentry_dev =
        id_trip_dev - std::min(options.reentry_margin, 0.5 * id_trip_dev);
  };
  auto theta_moved = [&]() {
    const linalg::Vector& now_theta = identifier->theta_scaled();
    double sq = 0.0;
    for (std::size_t j = 0; j < now_theta.size(); ++j) {
      const double d = now_theta[j] - theta_at_plan[j];
      sq += d * d;
    }
    return std::sqrt(sq);
  };
  // Swap in a certified plan: new schedule from phase 0, watchdog moved to
  // the identified model seeded with the linearized state correction.
  auto apply_certified = [&](const CertifiedPlan& certified) {
    planned = certified.planned;
    intervals = planned.schedule.state_intervals();
    iv = 0;
    iv_left = intervals[0].length;
    state = State::kNominal;
    strikes = 0;
    trips_since_plan = 0;
    id_predictor.emplace(certified.model);
    id_predicted = predicted;
    id_predicted += identifier->node_correction();
    id_mode = true;
    theta_at_plan = identifier->theta_scaled();
    out.certified_band = certified.margin;
    ++out.identified_replans;
    refresh_id_thresholds();
  };

  while (t < horizon - 1e-12) {
    const bool nominal = state == State::kNominal;
    const linalg::Vector& requested =
        nominal ? intervals[iv].voltages : lowest_v;
    double chunk = std::min(options.control_period, horizon - t);
    if (nominal) chunk = std::min(chunk, iv_left);

    plant.request(requested);
    const double span_peak = plant.advance(chunk, options.samples_per_tick);
    const linalg::Vector pre_predicted = predicted;
    predicted = predictor.advance(predicted, requested, chunk);
    if (id_mode)
      id_predicted = id_predictor->advance(id_predicted, requested, chunk);
    t += chunk;
    if (nominal) {
      iv_left -= chunk;
      if (iv_left <= 1e-12) {
        iv = (iv + 1) % intervals.size();
        iv_left = intervals[iv].length;
      }
    }

    if (violates(span_peak, budget)) ++out.violations;

    const linalg::Vector seen = plant.read_sensors();
    const linalg::Vector pred_rises = model.core_rises(predicted);
    out.seen_peak_rise = std::max(out.seen_peak_rise, seen.max());
    double deviation = seen[0] - pred_rises[0];
    for (std::size_t i = 1; i < cores; ++i)
      deviation = std::max(deviation, seen[i] - pred_rises[i]);
    deviation += abs_bias;
    ++out.polls;

    if (identifier) {
      // Raw residual vs the nominal prediction, every poll, regardless of
      // state — fallback spans are often the most informative (large
      // voltage step = strong excitation of the power-offset directions).
      linalg::Vector residual(cores);
      double max_abs = 0.0;
      for (std::size_t i = 0; i < cores; ++i) {
        residual[i] = seen[i] - pred_rises[i];
        max_abs = std::max(max_abs, std::abs(residual[i]));
      }
      plant.log_residual(t, max_abs);
      if (!id_retired)
        identifier->observe(pre_predicted, requested, chunk, residual);
    }

    // IDENTIFY -> REPLAN: once the estimate has converged and says the
    // mismatch is real, certify a plan against the identified plant.  The
    // cooldown keeps a failed certification from being retried every poll.
    if (identifier && !id_retired && !out.saturated &&
        t >= id_cooldown_until &&
        out.identified_replans < options.identify.max_replans &&
        identifier->converged() && identifier->significant() &&
        (!id_mode || theta_moved() > options.identify.replan_delta)) {
      const CertifiedPlan certified = certified_replan(
          platform, t_max_c, *identifier, assumed, options.ao, derate);
      // Utility test: the certified plan targets a *harder* (identified)
      // model, so compare planned throughput directly — a tighter margin
      // against a hotter plant can still be the slower plan.  Safety never
      // depends on applying it; keep estimating when it doesn't pay.
      if (certified.ok &&
          certified.planned.throughput > planned.throughput * (1.0 + 1e-6)) {
        apply_certified(certified);
      } else {
        id_cooldown_until = t + options.identify.min_seconds;
      }
    }

    double dev = deviation;
    if (id_mode) {
      // Bias-corrected sensors vs the identified prediction.
      const linalg::Vector id_rises =
          id_predictor->model().core_rises(id_predicted);
      dev = seen[0] - identifier->bias_k(0) - id_rises[0];
      for (std::size_t i = 1; i < cores; ++i)
        dev = std::max(dev, seen[i] - identifier->bias_k(i) - id_rises[i]);
    }
    const double trip_threshold = id_mode ? id_trip_dev : trip_dev;
    const double reentry_threshold = id_mode ? id_reentry_dev : reentry_dev;

    if (state == State::kNominal) {
      // Two consecutive over-threshold polls before tripping: a dropped
      // step-down (retried next poll) or a noise tail produces a one-poll
      // spike, while genuine envelope departure persists.  The debounce
      // costs one control period of latency, thermally negligible.
      strikes = dev > trip_threshold ? strikes + 1 : 0;
      if (strikes >= 2) {
        strikes = 0;
        state = State::kFallback;
        fallback_since = t;
        ++out.fallbacks;
        ++trips_since_plan;
        if (trips_since_plan >= options.escalate_after && !out.saturated) {
          derate += options.derate_step;
          trips_since_plan = 0;
          if (derate > options.max_derate) {
            out.saturated = true;  // pinned at the lowest mode from here on
          } else if (id_mode) {
            // The identified plan itself keeps tripping: re-certify with
            // the escalation derate on top, then re-open the estimator
            // gain — the plant has visibly left the identified regime.
            const CertifiedPlan certified =
                certified_replan(platform, t_max_c, *identifier, assumed,
                                 options.ao, derate);
            if (certified.ok) {
              const State fallback_state = state;
              apply_certified(certified);
              state = fallback_state;  // escalation keeps the step-down
              identifier->reset_covariance();
            } else {
              // Cannot certify anymore — retire identification and fall
              // back to the heuristic derate ladder for the rest of the
              // run.
              id_mode = false;
              id_retired = true;
              planned = plan();
              ++out.replans;
              intervals = planned.schedule.state_intervals();
              refresh_thresholds();
            }
          } else {
            planned = plan();
            ++out.replans;
            intervals = planned.schedule.state_intervals();
            refresh_thresholds();
          }
        }
      }
    } else if (!out.saturated && t - fallback_since >= backoff &&
               dev < reentry_threshold) {
      state = State::kNominal;
      ++out.reentries;
      iv = 0;
      iv_left = intervals[0].length;
      backoff = std::min(backoff * options.backoff_factor,
                         options.backoff_max);
    }
  }

  out.final_derate = derate;
  if (identifier) {
    out.identify_polls = identifier->polls();
    out.identify_converged = identifier->converged();
    const sim::PlantPerturbation estimate = identifier->perturbation();
    out.est_alpha_offset_w = estimate.alpha_offset_w;
    out.est_beta_scale = estimate.beta_scale;
    out.est_r_convection_scale = estimate.r_convection_scale;
    out.est_bias_k.resize(cores);
    for (std::size_t i = 0; i < cores; ++i)
      out.est_bias_k[i] = identifier->bias_k(i);
  }
  finish_result(out, platform, plant, tau, horizon);
  SchedulerResult& r = out.result;
  r.scheduler = "AO+GUARD";
  r.schedule = planned.schedule;
  r.m = planned.m;
  r.seconds = timer.seconds();
  return out;
}

GuardResult run_open_loop(const Platform& platform, double t_max_c,
                          const sched::PeriodicSchedule& schedule,
                          const sim::FaultSpec& injected,
                          const GuardOptions& options) {
  options.check();
  injected.check();
  FOSCIL_EXPECTS(schedule.num_cores() == platform.num_cores());
  const Stopwatch timer;
  const double budget = platform.rise_budget(t_max_c);

  GuardResult out;
  const double horizon = snap_horizon(options.horizon, schedule.period());
  sim::FaultedPlant plant(platform.model, injected);
  plant.warm_start(stable_start(platform, schedule));
  const std::vector<sched::StateInterval> intervals =
      schedule.state_intervals();

  // Reference: the schedule's eq.-5 throughput minus the v_new * tau stall
  // cost of each per-core transition in one period (wrap-around included) —
  // exactly what a fault-free plant delivers over whole periods.
  double stall_per_period = 0.0;
  for (std::size_t q = 0; q < intervals.size(); ++q) {
    const auto& prev = intervals[(q + intervals.size() - 1) % intervals.size()];
    for (std::size_t i = 0; i < platform.num_cores(); ++i)
      if (intervals[q].voltages[i] != prev.voltages[i])
        stall_per_period += intervals[q].voltages[i];
  }
  out.nominal_throughput =
      schedule.throughput() -
      stall_per_period * options.ao.transition_overhead /
          (schedule.period() * static_cast<double>(platform.num_cores()));

  std::size_t iv = 0;
  double iv_left = intervals[0].length;
  bool fresh_interval = true;
  double t = 0.0;
  while (t < horizon - 1e-12) {
    // Open loop: the transition is issued once, at the interval boundary —
    // nobody checks whether it took.
    if (fresh_interval) {
      plant.request(intervals[iv].voltages);
      fresh_interval = false;
    }
    const double chunk =
        std::min({options.control_period, horizon - t, iv_left});
    const double span_peak = plant.advance(chunk, options.samples_per_tick);
    t += chunk;
    iv_left -= chunk;
    if (iv_left <= 1e-12) {
      iv = (iv + 1) % intervals.size();
      iv_left = intervals[iv].length;
      fresh_interval = true;
    }
    if (violates(span_peak, budget)) ++out.violations;
    ++out.polls;
  }

  finish_result(out, platform, plant, options.ao.transition_overhead,
                horizon);
  SchedulerResult& r = out.result;
  r.scheduler = "OPEN-LOOP";
  r.schedule = schedule;
  r.seconds = timer.seconds();
  return out;
}

GuardResult run_reactive_on_plant(const Platform& platform, double t_max_c,
                                  const sim::FaultSpec& injected,
                                  const ReactiveOptions& reactive,
                                  const GuardOptions& options) {
  options.check();
  injected.check();
  FOSCIL_EXPECTS(reactive.poll_period > 0.0);
  FOSCIL_EXPECTS(reactive.margin >= 0.0);
  FOSCIL_EXPECTS(reactive.hysteresis >= 0.0);
  const Stopwatch timer;
  const double budget = platform.rise_budget(t_max_c);
  const auto& levels = platform.levels.values();
  const std::size_t cores = platform.num_cores();

  const double step_down_at = budget - reactive.margin;
  const double step_up_at = step_down_at - reactive.hysteresis;

  GuardResult out;
  // The governor takes over from AO at its operating point: same reference
  // throughput and same warm start as the guarded run, so the comparison
  // isolates the policies rather than their boot transients.
  const SchedulerResult nominal_ao = run_ao(platform, t_max_c, options.ao);
  out.nominal_throughput = nominal_ao.throughput;
  sim::FaultedPlant plant(platform.model, injected);
  plant.warm_start(stable_start(platform, nominal_ao.schedule));
  std::vector<std::size_t> level_of(cores, 0);  // start at the lowest mode

  double t = 0.0;
  while (t < options.horizon - 1e-12) {
    const double chunk =
        std::min(reactive.poll_period, options.horizon - t);
    linalg::Vector v(cores);
    for (std::size_t i = 0; i < cores; ++i) v[i] = levels[level_of[i]];
    // The governor rewrites the mode registers every tick, so dropped
    // transitions get retried — same actuator contact as the guard.
    plant.request(v);
    const double span_peak = plant.advance(chunk, options.samples_per_tick);
    t += chunk;
    if (violates(span_peak, budget)) ++out.violations;

    const linalg::Vector seen = plant.read_sensors();
    for (std::size_t i = 0; i < cores; ++i) {
      out.seen_peak_rise = std::max(out.seen_peak_rise, seen[i]);
      if (seen[i] > step_down_at && level_of[i] > 0) {
        --level_of[i];
      } else if (seen[i] < step_up_at && level_of[i] + 1 < levels.size()) {
        ++level_of[i];
      }
    }
    ++out.polls;
  }

  finish_result(out, platform, plant, options.ao.transition_overhead,
                options.horizon);
  SchedulerResult& r = out.result;
  r.scheduler = "REACTIVE";
  linalg::Vector final_v(cores);
  for (std::size_t i = 0; i < cores; ++i) final_v[i] = levels[level_of[i]];
  r.schedule = sched::PeriodicSchedule::constant(final_v, 1.0);
  r.seconds = timer.seconds();
  return out;
}

}  // namespace foscil::core
