// LNS — lower neighboring speed baseline (Sec. III).
//
// Compute the ideal continuous constant voltages, then round each core down
// to the nearest available discrete level.  Rounding down can only shed
// heat, so the result stays feasible; it is also pessimistic, which is the
// paper's motivation for oscillation.
#pragma once

#include "core/platform.hpp"
#include "core/result.hpp"

namespace foscil::core {

[[nodiscard]] SchedulerResult run_lns(const Platform& platform,
                                      double t_max_c);

}  // namespace foscil::core
