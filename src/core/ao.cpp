#include "core/ao.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/ideal.hpp"
#include "sched/transforms.hpp"
#include "sim/peak.hpp"
#include "util/parallel_for.hpp"
#include "util/stopwatch.hpp"

namespace foscil::core {

namespace detail {

std::vector<CoreOscillation> make_oscillations(
    const linalg::Vector& ideal_voltages,
    const power::VoltageLevels& levels, ModeChoice mode_choice) {
  std::vector<CoreOscillation> cores(ideal_voltages.size());
  for (std::size_t i = 0; i < ideal_voltages.size(); ++i) {
    // Ideal voltages below the lowest level (possible on thermally starved
    // cores, e.g. upper tiers of a 3D stack) oscillate between the
    // power-gated mode (v = f = 0, Sec. II-A) and the lowest level.
    if (ideal_voltages[i] < levels.lowest() - 1e-12) {
      CoreOscillation& osc = cores[i];
      osc.v_low = 0.0;
      osc.v_high = levels.lowest();
      if (ideal_voltages[i] <= 0.0) {
        osc.oscillating = false;  // fully off
        continue;
      }
      osc.oscillating = true;
      osc.ratio_high = ideal_voltages[i] / levels.lowest();
      continue;
    }
    power::NeighboringModes modes = levels.neighbors(ideal_voltages[i]);
    if (mode_choice == ModeChoice::kExtremes && !modes.exact()) {
      // Ablation of Theorem 4: realize the same mean speed with the widest
      // available mode pair instead of the neighboring one.
      modes.low = levels.lowest();
      modes.high = levels.highest();
    }
    CoreOscillation& osc = cores[i];
    osc.v_low = modes.low;
    osc.v_high = modes.high;
    if (modes.exact()) {
      osc.oscillating = false;
      osc.ratio_high = 0.0;
      continue;
    }
    osc.oscillating = true;
    // eq. (11): work-preserving split between the two neighboring modes.
    osc.ratio_high =
        (ideal_voltages[i] - modes.low) / (modes.high - modes.low);
    FOSCIL_ASSERT(osc.ratio_high > 0.0 && osc.ratio_high < 1.0);
  }
  return cores;
}

int oscillation_bound(const std::vector<CoreOscillation>& cores,
                      double base_period, double tau) {
  FOSCIL_EXPECTS(base_period > 0.0);
  FOSCIL_EXPECTS(tau >= 0.0);
  int bound = std::numeric_limits<int>::max();
  bool any = false;
  for (const auto& core : cores) {
    if (!core.oscillating) continue;
    any = true;
    if (tau == 0.0) continue;  // no stall => no per-core bound
    const double t_low = (1.0 - core.ratio_high) * base_period;
    const double per_m_cost = core.delta(tau) + tau;
    const int m_i = static_cast<int>(std::floor(t_low / per_m_cost));
    bound = std::min(bound, std::max(1, m_i));
  }
  if (!any) return 1;
  return bound;  // INT_MAX when tau == 0 (caller caps with max_m)
}

sched::PeriodicSchedule build_oscillating_schedule(
    const std::vector<CoreOscillation>& cores, double base_period, int m,
    double tau) {
  FOSCIL_EXPECTS(m >= 1);
  const double sub_period = base_period / static_cast<double>(m);
  sched::PeriodicSchedule schedule(cores.size(), sub_period);
  for (std::size_t i = 0; i < cores.size(); ++i) {
    const CoreOscillation& osc = cores[i];
    if (!osc.oscillating || osc.ratio_high <= 0.0 || osc.ratio_high >= 1.0) {
      const double level = !osc.oscillating
                               ? osc.v_low
                               : (osc.ratio_high <= 0.0 ? osc.v_low
                                                        : osc.v_high);
      schedule.set_core_segments(i, {sched::Segment{sub_period, level}});
      continue;
    }
    const double delta = tau > 0.0 ? osc.delta(tau) : 0.0;
    const double low = (1.0 - osc.ratio_high) * sub_period - delta;
    const double high = osc.ratio_high * sub_period + delta;
    FOSCIL_ASSERT(low > 0.0);
    std::vector<sched::Segment> segments{
        sched::Segment{low, osc.v_low}, sched::Segment{high, osc.v_high}};
    // Rotate the segment list in place rather than phase_shift-ing the whole
    // schedule, which copied every core's segments once per shifted core.
    if (osc.phase_offset != 0.0)
      segments = sched::rotate_segments(segments, sub_period, osc.phase_offset);
    schedule.set_core_segments(i, std::move(segments));
  }
  return schedule;
}

namespace {

/// Mean chip speed delivered by the oscillation parameters (stall work is
/// repaid by the delta extension, so this is the delivered throughput).
double oscillation_throughput(const std::vector<CoreOscillation>& cores) {
  double total = 0.0;
  for (const auto& core : cores) total += core.mean_speed();
  return total / static_cast<double>(cores.size());
}

/// Candidate scans fan out only when the per-candidate evaluation is
/// expensive enough to amortize thread spawns (~tens of microseconds per
/// worker); below ~32 thermal nodes a modal evaluation is sub-microsecond
/// and threading is pure overhead.
unsigned resolve_scan_threads(unsigned requested, std::size_t num_nodes) {
  if (requested != 0) return requested;
  return num_nodes >= 32 ? hardware_parallelism() : 1u;
}

/// Partition [0, count) into at most `threads` contiguous chunks and run
/// `body(begin, end)` over them concurrently.  The candidate scans use this
/// so each worker hands its whole chunk to the analyzer as one batch: SIMD
/// lanes (batched back-transform, amortized factor caches) compose with the
/// thread fan-out.  Batching is bit-identical to per-candidate evaluation
/// and each index is computed exactly once, so results stay independent of
/// the thread count even though the chunk boundaries move with it.
template <typename Body>
void parallel_chunks(std::size_t count, unsigned threads, const Body& body) {
  if (count == 0) return;
  const std::size_t workers = std::max<std::size_t>(1, threads);
  const std::size_t chunk = (count + workers - 1) / workers;
  const std::size_t n_chunks = (count + chunk - 1) / chunk;
  parallel_for(
      n_chunks,
      [&](std::size_t c) {
        const std::size_t begin = c * chunk;
        body(begin, std::min(count, begin + chunk));
      },
      threads);
}

}  // namespace

AoInternal run_ao_internal(const Platform& platform, double t_max_c,
                           const AoOptions& options) {
  FOSCIL_EXPECTS(options.base_period > 0.0);
  FOSCIL_EXPECTS(options.transition_overhead >= 0.0);
  FOSCIL_EXPECTS(options.t_unit_fraction > 0.0 &&
                 options.t_unit_fraction < 1.0);
  FOSCIL_EXPECTS(options.t_max_margin >= 0.0);
  const Stopwatch timer;
  const double rise_target =
      platform.rise_budget(t_max_c) - options.t_max_margin;
  FOSCIL_EXPECTS(rise_target > 0.0);
  const auto& model = *platform.model;
  const sim::SteadyStateAnalyzer analyzer(platform.model,
                                          options.eval_engine);
  const unsigned scan_threads =
      resolve_scan_threads(options.scan_threads, model.num_nodes());
  const double tau = options.transition_overhead;
  std::size_t evaluations = 0;

  // Steps 1-2: ideal voltages -> neighboring-mode oscillation parameters.
  const IdealVoltages ideal = ideal_constant_voltages(
      model, rise_target, platform.levels.highest());
  std::vector<CoreOscillation> cores = detail::make_oscillations(
      ideal.voltages, platform.levels, options.mode_choice);

  // Step 3: search m in [1, M] for the lowest peak (Theorem 5 modulated by
  // the per-transition extension cost).
  const int bound = std::min(
      options.max_m,
      detail::oscillation_bound(cores, options.base_period, tau));
  int best_m = 1;
  double best_peak = std::numeric_limits<double>::infinity();
  {
    // Evaluate the m window in fixed-size blocks so candidates run
    // concurrently while reproducing the sequential early-stop rule exactly:
    // block size depends only on the patience knob (never on the thread
    // count), each candidate is independent, and the patience fold walks the
    // block in ascending m — so the chosen m is identical for any
    // scan_threads.  A stop mid-block wastes at most patience-1 evaluations.
    const int block = std::max(1, options.m_search_patience);
    int stale = 0;
    int next = 1;
    bool stop = false;
    while (!stop && next <= bound) {
      const int count = std::min(block, bound - next + 1);
      std::vector<double> peaks(static_cast<std::size_t>(count));
      parallel_chunks(
          static_cast<std::size_t>(count), scan_threads,
          [&](std::size_t begin, std::size_t end) {
            // Cancellation check point: between chunks, never inside the
            // evaluation.  A fired token skips the remaining chunks (the
            // results are discarded by the throw below).
            if (options.cancel != nullptr && options.cancel->cancelled())
              return;
            std::vector<sched::PeriodicSchedule> schedules;
            schedules.reserve(end - begin);
            for (std::size_t i = begin; i < end; ++i)
              schedules.push_back(detail::build_oscillating_schedule(
                  cores, options.base_period, next + static_cast<int>(i),
                  tau));
            const std::vector<sim::PeakInfo> batch =
                sim::batch_step_up_peaks(analyzer, schedules);
            for (std::size_t i = begin; i < end; ++i)
              peaks[i] = batch[i - begin].rise;
          });
      if (options.cancel != nullptr) options.cancel->throw_if_cancelled();
      evaluations += static_cast<std::size_t>(count);
      for (int i = 0; i < count && !stop; ++i) {
        if (peaks[static_cast<std::size_t>(i)] < best_peak - 1e-12) {
          best_peak = peaks[static_cast<std::size_t>(i)];
          best_m = next + i;
          stale = 0;
        } else if (++stale >= options.m_search_patience) {
          stop = true;
        }
      }
      next += count;
    }
  }

  // Step 4: TPT-guided ratio reduction until the peak obeys the budget.
  const double u = options.t_unit_fraction;  // ratio step (t_unit / t_p)
  const double tolerance = rise_target * 1e-9;
  auto rises_of = [&](const std::vector<CoreOscillation>& state) {
    const auto schedule = detail::build_oscillating_schedule(
        state, options.base_period, best_m, tau);
    return analyzer.stable_core_rises(schedule);
  };

  linalg::Vector core_rises = rises_of(cores);
  ++evaluations;
  while (core_rises.max() > rise_target + tolerance) {
    if (options.cancel != nullptr) options.cancel->throw_if_cancelled();
    const std::size_t hottest = core_rises.argmax();
    const bool hottest_adjustable =
        cores[hottest].oscillating && cores[hottest].ratio_high > 0.0;
    // Collect the adjustable candidates first so their evaluations — each
    // an independent steady-state solve against the immutable model — can
    // fan out across scan threads.
    std::vector<std::size_t> scan;
    for (std::size_t j = 0; j < cores.size(); ++j) {
      if (!cores[j].oscillating || cores[j].ratio_high <= 0.0) continue;
      // Ablation: the naive policy only ever slows the hottest core down
      // (falling back to the full scan when that core has no knob left).
      if (options.tpt_policy == TptPolicy::kHottestCore &&
          hottest_adjustable && j != hottest)
        continue;
      scan.push_back(j);
    }
    if (scan.empty()) break;  // no adjustable core remains
    std::vector<linalg::Vector> scan_rises(scan.size());
    parallel_chunks(
        scan.size(), scan_threads, [&](std::size_t begin, std::size_t end) {
          if (options.cancel != nullptr && options.cancel->cancelled())
            return;  // between chunks; discarded by the throw below
          std::vector<sched::PeriodicSchedule> schedules;
          schedules.reserve(end - begin);
          for (std::size_t i = begin; i < end; ++i) {
            std::vector<CoreOscillation> candidate = cores;
            candidate[scan[i]].ratio_high =
                std::max(0.0, candidate[scan[i]].ratio_high - u);
            schedules.push_back(detail::build_oscillating_schedule(
                candidate, options.base_period, best_m, tau));
          }
          std::vector<linalg::Vector> batch =
              analyzer.batch_stable_core_rises(schedules.data(),
                                               schedules.size());
          for (std::size_t i = begin; i < end; ++i)
            scan_rises[i] = std::move(batch[i - begin]);
        });
    if (options.cancel != nullptr) options.cancel->throw_if_cancelled();
    evaluations += scan.size();
    // Deterministic selection: fold in ascending-core order with the same
    // strict `>` the sequential scan used, so the winner (and therefore the
    // whole trajectory) is independent of the thread count.
    double best_tpt = -1.0;
    std::size_t best_i = scan.size();
    for (std::size_t i = 0; i < scan.size(); ++i) {
      const std::size_t j = scan[i];
      const double new_ratio = std::max(0.0, cores[j].ratio_high - u);
      const double speed_loss =
          (cores[j].v_high - cores[j].v_low) *
          (cores[j].ratio_high - new_ratio);
      if (speed_loss <= 0.0) continue;
      const double delta_t = core_rises[hottest] - scan_rises[i][hottest];
      const double tpt = delta_t / speed_loss;
      if (tpt > best_tpt) {
        best_tpt = tpt;
        best_i = i;
      }
    }
    if (best_i == scan.size()) break;  // every candidate lost zero speed
    const std::size_t best_core = scan[best_i];
    cores[best_core].ratio_high =
        std::max(0.0, cores[best_core].ratio_high - u);
    core_rises = std::move(scan_rises[best_i]);
  }

  const auto final_schedule = detail::build_oscillating_schedule(
      cores, options.base_period, best_m, tau);
  const sim::PeakInfo peak = sim::step_up_peak(analyzer, final_schedule);

  AoInternal internal;
  internal.cores = cores;
  SchedulerResult& result = internal.result;
  result.scheduler = "AO";
  result.feasible = peak.rise <= rise_target * (1.0 + 1e-6);
  result.schedule = final_schedule;
  result.throughput = detail::oscillation_throughput(cores);
  result.peak_rise = peak.rise;
  result.peak_celsius = platform.to_celsius(peak.rise);
  result.m = best_m;
  result.evaluations = evaluations;
  result.seconds = timer.seconds();
  return internal;
}

}  // namespace detail

SchedulerResult run_ao(const Platform& platform, double t_max_c,
                       const AoOptions& options) {
  return detail::run_ao_internal(platform, t_max_c, options).result;
}

}  // namespace foscil::core
