#include "core/identify.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/audit.hpp"
#include "linalg/eigen_sym.hpp"
#include "linalg/lu.hpp"
#include "util/contracts.hpp"

namespace foscil::core {

void IdentifyOptions::check() const {
  FOSCIL_EXPECTS(forgetting > 0.0 && forgetting <= 1.0);
  FOSCIL_EXPECTS(prior_sigma > 0.0);
  FOSCIL_EXPECTS(beta_prior_sigma > 0.0);
  FOSCIL_EXPECTS(gate_sigma > 0.0);
  FOSCIL_EXPECTS(confidence >= 0.0);
  FOSCIL_EXPECTS(trust_radius >= 0.0);
  FOSCIL_EXPECTS(min_polls >= 1);
  FOSCIL_EXPECTS(min_seconds >= 0.0);
  FOSCIL_EXPECTS(significance >= 0.0);
  FOSCIL_EXPECTS(min_theta >= 0.0);
  FOSCIL_EXPECTS(band_floor_k >= 0.0);
  FOSCIL_EXPECTS(replan_delta >= 0.0);
  FOSCIL_EXPECTS(alpha_scale_w > 0.0);
  FOSCIL_EXPECTS(rel_scale > 0.0);
  FOSCIL_EXPECTS(bias_scale_k > 0.0);
  FOSCIL_EXPECTS(drift_scale_k > 0.0);
  FOSCIL_EXPECTS(drift_period_s >= 0.0);
  FOSCIL_EXPECTS(innovation_clip_k >= 0.0);
}

ThermalIdentifier::ThermalIdentifier(
    std::shared_ptr<const thermal::ThermalModel> nominal,
    IdentifyOptions options)
    : nominal_(std::move(nominal)),
      options_(options),
      cores_(nominal_->num_cores()),
      rls_(2 * nominal_->num_cores() + 2 +
               (options.drift_period_s > 0.0 ? 2 : 0),
           options.prior_sigma, options.forgetting),
      x_(nominal_->num_sensitivity_params(),
         linalg::Vector(nominal_->num_nodes())) {
  options_.check();
  rls_.set_prior_sigma(cores_, options_.beta_prior_sigma);
}

void ThermalIdentifier::observe(const linalg::Vector& pre_nodes,
                                const linalg::Vector& requested, double dt,
                                const linalg::Vector& residual_cores) {
  FOSCIL_EXPECTS(dt > 0.0);
  FOSCIL_EXPECTS(residual_cores.size() == cores_);
  const auto& model = *nominal_;
  const auto& spectral = model.spectral();
  const linalg::Vector& capacitance = model.network().capacitance();
  const std::size_t plant_params = num_plant_params();

  // Advance each dynamic regressor state over the poll interval with the
  // heat direction frozen at the interval's start (matching the piecewise-
  // constant voltage):  x_j <- e^{A dt} x_j + phi(dt) C^{-1} h_j.
  //
  // The heat columns are evaluated around the *corrected* trajectory
  // (nominal prediction + current first-order correction) rather than the
  // nominal one: a mismatched plant runs hotter than predicted, and
  // linearizing around the too-cold nominal trajectory systematically
  // overstates temperature-proportional parameters (conv, beta).  Using
  // the running estimate makes this a recursive Gauss-Newton step — the
  // regressors re-center on the estimated plant as theta converges.
  linalg::Vector linearization = pre_nodes;
  for (std::size_t j = 0; j < plant_params; ++j) {
    const double scale =
        j < cores_ ? options_.alpha_scale_w : options_.rel_scale;
    const double theta_physical = rls_.theta()[j] * scale;
    if (theta_physical == 0.0) continue;
    for (std::size_t node = 0; node < linearization.size(); ++node)
      linearization[node] += theta_physical * x_[j][node];
  }
  const linalg::Matrix heat =
      model.sensitivity_heat(linearization, requested);
  linalg::Vector b(model.num_nodes());
  for (std::size_t j = 0; j < plant_params; ++j) {
    for (std::size_t node = 0; node < b.size(); ++node)
      b[node] = heat(node, j) / capacitance[node];
    x_[j] = spectral.exp_apply(dt, x_[j]);
    x_[j] += spectral.phi_apply(dt, b);
  }

  t_ += dt;

  // One scaled scalar RLS update per core: residual_i regressed on the
  // die-node entries of the x_j (plant block), this core's bias indicator,
  // and — when an ambient-drift period is assumed — common-mode quadrature
  // columns at that period, so the drift sinusoid (which the plant basis
  // cannot represent) has somewhere to go other than the plant estimates.
  // Scaling puts every parameter's prior at O(1).
  linalg::Vector phi(num_params());
  if (options_.drift_period_s > 0.0) {
    const double omega_t = 2.0 * M_PI * t_ / options_.drift_period_s;
    phi[2 * cores_ + 2] = std::sin(omega_t) * options_.drift_scale_k;
    phi[2 * cores_ + 3] = std::cos(omega_t) * options_.drift_scale_k;
  }
  for (std::size_t core = 0; core < cores_; ++core) {
    const std::size_t die = model.network().die_node(core);
    for (std::size_t j = 0; j < plant_params; ++j) {
      const double scale =
          j < cores_ ? options_.alpha_scale_w : options_.rel_scale;
      phi[j] = x_[j][die] * scale;
    }
    for (std::size_t k = 0; k < cores_; ++k)
      phi[plant_params + k] = k == core ? options_.bias_scale_k : 0.0;

    // Huber-style innovation clip: a dropped/delayed DVFS transition puts
    // the plant on voltages the prediction never saw, producing a residual
    // spike no parameter explains.  Bounding the innovation keeps those
    // spikes from dragging theta while leaving small-residual updates (and
    // the covariance recursion) untouched.
    double y = residual_cores[core];
    if (options_.innovation_clip_k > 0.0) {
      double fit = 0.0;
      for (std::size_t j = 0; j < phi.size(); ++j)
        fit += phi[j] * rls_.theta()[j];
      const double innovation = y - fit;
      if (std::abs(innovation) > options_.innovation_clip_k)
        y = fit + std::copysign(options_.innovation_clip_k, innovation);
    }
    rls_.update(phi, y);
  }
  ++polls_;
}

bool ThermalIdentifier::converged() const {
  if (polls_ < options_.min_polls || t_ < options_.min_seconds) return false;
  // Gate on the collapsed block only (beta, conv, biases, drift); per-core
  // alpha splits stay near the prior under uniform excitation and are
  // priced by the certification ellipsoid instead.
  for (std::size_t j = cores_; j < num_params(); ++j)
    if (rls_.sigma(j) > options_.gate_sigma) return false;
  return true;
}

bool ThermalIdentifier::significant() const {
  const linalg::Vector& theta = rls_.theta();
  for (std::size_t j = 0; j < num_plant_params(); ++j) {
    const double magnitude = std::abs(theta[j]);
    if (magnitude > options_.significance * rls_.sigma(j) &&
        magnitude > options_.min_theta)
      return true;
  }
  return false;
}

sim::PlantPerturbation ThermalIdentifier::perturbation_at(
    const linalg::Vector& plant_theta_scaled) const {
  FOSCIL_EXPECTS(plant_theta_scaled.size() == num_plant_params());
  sim::PlantPerturbation delta;
  delta.alpha_offset_w.resize(cores_);
  // Conservative mode clamps the identified plant to at-least-nominal
  // severity: whatever residual mass the estimator misattributed to an
  // easier-than-nominal direction (e.g. actuator spikes read as improved
  // convection) is discarded rather than certified.  Otherwise clamp only
  // to physically meaningful territory — beta cannot go negative and the
  // convection path cannot vanish.  (A vertex clamped here is still a
  // *harder* plant than the clamp bound, never an easier one.)
  const double alpha_floor_w = options_.conservative
                                   ? 0.0
                                   : -std::numeric_limits<double>::infinity();
  const double scale_floor = options_.conservative ? 1.0 : 0.0;
  const double conv_floor = options_.conservative ? 1.0 : 0.05;
  for (std::size_t i = 0; i < cores_; ++i)
    delta.alpha_offset_w[i] = std::max(
        alpha_floor_w, plant_theta_scaled[i] * options_.alpha_scale_w);
  delta.beta_scale = std::max(
      scale_floor, 1.0 + plant_theta_scaled[cores_] * options_.rel_scale);
  delta.r_convection_scale = std::max(
      conv_floor, 1.0 + plant_theta_scaled[cores_ + 1] * options_.rel_scale);
  return delta;
}

sim::PlantPerturbation ThermalIdentifier::perturbation() const {
  linalg::Vector plant(num_plant_params());
  for (std::size_t j = 0; j < plant.size(); ++j)
    plant[j] = rls_.theta()[j];
  return perturbation_at(plant);
}

std::vector<sim::PlantPerturbation> ThermalIdentifier::ellipsoid_samples()
    const {
  const std::size_t p = num_plant_params();
  linalg::Vector center(p);
  for (std::size_t j = 0; j < p; ++j) center[j] = rls_.theta()[j];

  // Marginal covariance of the plant block; its eigenvectors are the
  // principal axes of the confidence ellipsoid.
  linalg::Matrix cov(p, p);
  for (std::size_t r = 0; r < p; ++r)
    for (std::size_t c = 0; c < p; ++c) cov(r, c) = rls_.covariance()(r, c);
  const linalg::SymmetricEigen eig = linalg::eigen_symmetric(cov);

  // Each vertex coordinate is clamped to the trust region around the
  // estimate: the certified set is ellipsoid INTERSECT qualification
  // envelope, so an unexcitable direction (sigma still at the prior) costs
  // the envelope's width instead of 3x an ignorance prior.
  const double trust = options_.trust_radius > 0.0
                           ? options_.trust_radius
                           : std::numeric_limits<double>::infinity();
  std::vector<sim::PlantPerturbation> samples;
  samples.reserve(2 * p + 1);
  samples.push_back(perturbation_at(center));
  for (std::size_t j = 0; j < p; ++j) {
    const double radius =
        options_.confidence * std::sqrt(std::max(0.0, eig.eigenvalues[j]));
    linalg::Vector vertex = center;
    for (int sign : {+1, -1}) {
      for (std::size_t i = 0; i < p; ++i)
        vertex[i] = center[i] + std::clamp(sign * radius *
                                               eig.eigenvectors(i, j),
                                           -trust, trust);
      samples.push_back(perturbation_at(vertex));
    }
  }
  return samples;
}

double ThermalIdentifier::drift_amplitude_bound_k() const {
  if (options_.drift_period_s <= 0.0)
    return std::numeric_limits<double>::infinity();
  const std::size_t s = 2 * cores_ + 2;
  const double amplitude = std::hypot(rls_.theta()[s], rls_.theta()[s + 1]);
  const double uncertainty =
      options_.confidence * std::max(rls_.sigma(s), rls_.sigma(s + 1));
  return (amplitude + uncertainty) * options_.drift_scale_k;
}

double ThermalIdentifier::bias_k(std::size_t core) const {
  FOSCIL_EXPECTS(core < cores_);
  return rls_.theta()[num_plant_params() + core] * options_.bias_scale_k;
}

double ThermalIdentifier::bias_sigma_k(std::size_t core) const {
  FOSCIL_EXPECTS(core < cores_);
  return rls_.sigma(num_plant_params() + core) * options_.bias_scale_k;
}

double ThermalIdentifier::max_bias_sigma_k() const {
  double worst = 0.0;
  for (std::size_t core = 0; core < cores_; ++core)
    worst = std::max(worst, bias_sigma_k(core));
  return worst;
}

linalg::Vector ThermalIdentifier::node_correction() const {
  // Use the *clamped* physical estimate (same clamps as perturbation()) so
  // the correction seeds a predictor state consistent with the identified
  // model the watchdog will integrate.
  const sim::PlantPerturbation delta = perturbation();
  linalg::Vector correction(nominal_->num_nodes());
  for (std::size_t j = 0; j < num_plant_params(); ++j) {
    const double theta_physical =
        j < cores_ ? delta.alpha_offset_w[j]
                   : (j == cores_ ? delta.beta_scale - 1.0
                                  : delta.r_convection_scale - 1.0);
    if (theta_physical == 0.0) continue;
    for (std::size_t node = 0; node < correction.size(); ++node)
      correction[node] += theta_physical * x_[j][node];
  }
  return correction;
}

void ThermalIdentifier::reset_covariance() {
  rls_.reset_covariance(options_.prior_sigma);
  rls_.set_prior_sigma(cores_, options_.beta_prior_sigma);
}

IdentifyState ThermalIdentifier::export_state() const {
  IdentifyState state;
  state.theta = rls_.theta();
  state.covariance = rls_.covariance();
  state.updates = rls_.updates();
  state.polls = polls_;
  state.seconds = t_;
  return state;
}

void ThermalIdentifier::restore_state(const IdentifyState& state) {
  rls_.restore(state.theta, state.covariance, state.updates);
  polls_ = state.polls;
  t_ = state.seconds;
  // Dynamic regressor states are trajectory transients, not persisted
  // knowledge: restart them from zero (they re-integrate from the next
  // observe() exactly as a fresh run warm-starting at the stable state).
  for (linalg::Vector& x : x_) x = linalg::Vector(x.size());
}

CertifiedPlan certified_replan(const Platform& platform, double t_max_c,
                               const ThermalIdentifier& id,
                               const sim::FaultSpec& assumed,
                               const AoOptions& ao, double extra_margin) {
  FOSCIL_EXPECTS(extra_margin >= 0.0);
  const double budget = platform.rise_budget(t_max_c);
  const IdentifyOptions& opts = id.options();

  CertifiedPlan plan;

  // Environment slack the plant model cannot absorb: ambient drift enters
  // the true temperature directly, and a dropped/delayed step-down
  // stretches high intervals by the retry latency (same empirical
  // coefficients as the heuristic guard_band).  Drift is priced at the
  // *measured* amplitude bound when the estimator carries a drift block —
  // one of the places identification beats the blind envelope.
  const double actuator_slack =
      budget * (0.05 * assumed.transitions.drop_probability +
                0.02 * assumed.transitions.delay_probability);
  const double drift_slack =
      std::min(assumed.ambient_drift_c, id.drift_amplitude_bound_k());
  const double env_slack = drift_slack + actuator_slack;

  // Realize the confidence ellipsoid as thermal models once; an unstable
  // or singular vertex means the remaining uncertainty includes thermal
  // runaway, which no margin can certify away.
  std::vector<std::shared_ptr<const thermal::ThermalModel>> models;
  try {
    for (const sim::PlantPerturbation& sample : id.ellipsoid_samples())
      models.push_back(sim::perturbed_model(platform.model, sample));
  } catch (const ContractViolation&) {
    return plan;
  } catch (const linalg::SingularMatrixError&) {
    return plan;
  }
  plan.model = models.front();

  Platform identified = platform;
  identified.model = plan.model;
  AoOptions plan_options = ao;

  double margin = std::min(env_slack + opts.band_floor_k + extra_margin,
                           0.75 * budget);
  for (int attempt = 0; attempt < 8; ++attempt) {
    plan_options.t_max_margin = margin;
    plan.planned = run_ao(identified, t_max_c, plan_options);
    plan.margin = margin;

    double worst = 0.0;
    for (std::size_t s = 0; s < models.size(); ++s) {
      const double bound =
          step_up_certificate_rise(models[s], plan.planned.schedule);
      if (s == 0) plan.center_rise = bound;
      worst = std::max(worst, bound);
    }
    plan.worst_case_rise = worst;

    const double excess = worst + env_slack - budget;
    if (excess <= 1e-9) {
      plan.ok = true;
      return plan;
    }
    const double next = margin + std::max(excess, 0.25);
    if (next > 0.75 * budget) break;  // would starve the planner — give up
    margin = next;
  }
  return plan;
}

}  // namespace foscil::core
