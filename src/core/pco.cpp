#include "core/pco.hpp"

#include <algorithm>
#include <cmath>

#include "sim/peak.hpp"
#include "util/stopwatch.hpp"

namespace foscil::core {

namespace {

double mean_speed(const std::vector<CoreOscillation>& cores) {
  double total = 0.0;
  for (const auto& core : cores) total += core.mean_speed();
  return total / static_cast<double>(cores.size());
}

}  // namespace

SchedulerResult run_pco(const Platform& platform, double t_max_c,
                        const PcoOptions& options) {
  FOSCIL_EXPECTS(options.phase_grid >= 2);
  FOSCIL_EXPECTS(options.phase_rounds >= 1);
  const Stopwatch timer;
  const double rise_target = platform.rise_budget(t_max_c);
  // The phase search samples *interior* temperatures (sampled_peak), whose
  // interval advances stay on the dense reference arithmetic; the modal
  // engine still accelerates every stable_boundary solve underneath.
  const sim::SteadyStateAnalyzer analyzer(platform.model,
                                          options.ao.eval_engine);
  const double tau = options.ao.transition_overhead;

  detail::AoInternal ao = detail::run_ao_internal(platform, t_max_c,
                                                  options.ao);
  std::vector<CoreOscillation> cores = ao.cores;
  const int m = ao.result.m;
  const double base_period = options.ao.base_period;
  const double sub_period = base_period / static_cast<double>(m);
  std::size_t evaluations = ao.result.evaluations;

  auto peak_of = [&](const std::vector<CoreOscillation>& state,
                     int samples) {
    // Cancellation check point: the phase-search and refill loops call this
    // once per candidate, so a fired token stops within one evaluation and
    // never perturbs a candidate that does get evaluated.
    if (options.ao.cancel != nullptr) options.ao.cancel->throw_if_cancelled();
    const auto schedule =
        detail::build_oscillating_schedule(state, base_period, m, tau);
    ++evaluations;
    return sim::sampled_peak(analyzer, schedule, samples).rise;
  };

  // Phase search: greedy coordinate descent over a sub-period offset grid.
  // Shifting changes only when each core is hot, never how much it works,
  // so the throughput is untouched while the peak can only improve
  // (offset 0 stays in the candidate set).
  double current_peak = peak_of(cores, options.peak_samples);
  for (int round = 0; round < options.phase_rounds; ++round) {
    bool improved = false;
    for (std::size_t i = 0; i < cores.size(); ++i) {
      if (!cores[i].oscillating || cores[i].ratio_high <= 0.0 ||
          cores[i].ratio_high >= 1.0)
        continue;
      double best_offset = cores[i].phase_offset;
      double best_peak = current_peak;
      for (int g = 0; g < options.phase_grid; ++g) {
        const double offset = sub_period * static_cast<double>(g) /
                              static_cast<double>(options.phase_grid);
        if (offset == cores[i].phase_offset) continue;
        std::vector<CoreOscillation> candidate = cores;
        candidate[i].phase_offset = offset;
        const double peak = peak_of(candidate, options.peak_samples);
        if (peak < best_peak - 1e-12) {
          best_peak = peak;
          best_offset = offset;
        }
      }
      if (best_offset != cores[i].phase_offset) {
        cores[i].phase_offset = best_offset;
        current_peak = best_peak;
        improved = true;
      }
    }
    if (!improved) break;
  }

  // Headroom refill: grow the most profitable core's high ratio while the
  // peak stays within budget.
  const double u = options.ao.t_unit_fraction;
  const double tolerance = rise_target * 1e-9;
  while (current_peak < rise_target - tolerance) {
    double best_gain = 0.0;
    std::size_t best_core = cores.size();
    double best_peak = current_peak;
    for (std::size_t j = 0; j < cores.size(); ++j) {
      if (!cores[j].oscillating || cores[j].ratio_high >= 1.0) continue;
      std::vector<CoreOscillation> candidate = cores;
      candidate[j].ratio_high = std::min(1.0, candidate[j].ratio_high + u);
      // Growing a ratio into the degenerate constant-v_high corner would
      // remove the transition pair mid-search; keep ratios interior.
      if (candidate[j].ratio_high >= 1.0) continue;
      const double peak = peak_of(candidate, options.peak_samples);
      if (peak > rise_target + tolerance) continue;
      const double gain = (cores[j].v_high - cores[j].v_low) *
                          (candidate[j].ratio_high - cores[j].ratio_high);
      if (gain > best_gain) {
        best_gain = gain;
        best_core = j;
        best_peak = peak;
      }
    }
    if (best_core == cores.size()) break;  // nothing fits under the budget
    cores[best_core].ratio_high =
        std::min(1.0, cores[best_core].ratio_high + u);
    current_peak = best_peak;
  }

  const auto final_schedule =
      detail::build_oscillating_schedule(cores, base_period, m, tau);
  const double final_peak = sim::sampled_peak(analyzer, final_schedule,
                                              options.final_peak_samples)
                                .rise;

  SchedulerResult result;
  result.scheduler = "PCO";
  result.feasible = final_peak <= rise_target * (1.0 + 1e-6);
  result.schedule = final_schedule;
  result.throughput = mean_speed(cores);
  result.peak_rise = final_peak;
  result.peak_celsius = platform.to_celsius(final_peak);
  result.m = m;
  result.evaluations = evaluations;
  result.seconds = timer.seconds();
  return result;
}

}  // namespace foscil::core
