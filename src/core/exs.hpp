// EXS — exhaustive search over single-mode assignments (Algorithm 1).
//
// Enumerates every |levels|^N assignment of one constant discrete mode per
// core, keeps the feasible assignment with the highest total speed
// (ties broken toward the cooler chip).  Each candidate needs one
// steady-state evaluation T_inf = (G - beta E)^{-1} Psi(v); the die-block of
// that inverse is precomputed once so a candidate costs one N x N mat-vec.
// The exponential enumeration is the paper's scalability strawman — kept
// faithful (no pruning), but partitioned across threads.
#pragma once

#include <cstdint>

#include "core/platform.hpp"
#include "core/result.hpp"
#include "sim/modal.hpp"
#include "util/cancel.hpp"

namespace foscil::core {

struct ExsOptions {
  /// Refuse to enumerate more candidates than this (0 = unlimited).  The
  /// 9-core x 15-level space is ~38e9 candidates; the guard turns an
  /// accidental multi-hour run into an error the caller can handle.
  std::uint64_t max_candidates = 200'000'000;
  unsigned threads = 0;  ///< 0 = hardware default
  /// kModal evaluates candidates incrementally: one precomputed steady
  /// contribution column per changed odometer digit (amortized O(N) per
  /// candidate, with a periodic full recompute bounding drift) instead of
  /// the reference N x N mat-vec.  kReference keeps Algorithm 1's honest
  /// per-candidate cost for timing comparisons.
  sim::EvalEngine eval_engine = sim::EvalEngine::kModal;
  /// Cooperative cancellation (util/cancel.hpp): each enumeration chunk
  /// polls the token between candidates (every few thousand) and the run
  /// raises CancelledError once all chunks have stopped.  A run that is not
  /// cancelled is bit-identical to one planned with no token.
  const CancelToken* cancel = nullptr;
};

/// Thrown when the design space exceeds ExsOptions::max_candidates.
class ExsSpaceTooLarge : public std::runtime_error {
 public:
  ExsSpaceTooLarge(std::uint64_t candidates, std::uint64_t limit)
      : std::runtime_error("EXS space of " + std::to_string(candidates) +
                           " candidates exceeds the limit of " +
                           std::to_string(limit)) {}
};

[[nodiscard]] SchedulerResult run_exs(const Platform& platform,
                                      double t_max_c,
                                      const ExsOptions& options = {});

}  // namespace foscil::core
