#include "core/ideal.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "linalg/lu.hpp"

namespace foscil::core {

namespace {

/// Clamp state of one core during the pinned-temperature iteration.
enum class CoreState {
  kFree,        // pinned at the rise target, heat unknown
  kClampedMax,  // runs at v_max, heat known, temperature floats below target
  kClampedOff,  // would need negative/zero heat: powered down, heat = 0
};

/// Steady-state core rises via the die block of (G - beta E)^{-1}: package
/// nodes carry no heat, so T_d = M_dd * Psi_d — a cores² dot product instead
/// of an n-node LU solve.  The coordinate-ascent search below issues tens of
/// thousands of feasibility probes, and this reduction (the same one the EXS
/// scan uses) makes each probe ~100x cheaper than steady_state().
class SteadyProbe {
 public:
  explicit SteadyProbe(const thermal::ThermalModel& model)
      : model_(model),
        cores_(model.num_cores()),
        psi_(model.num_cores()),
        m_dd_(model.num_cores(), model.num_cores()) {
    const linalg::Matrix inv = linalg::inverse(model.system_matrix());
    for (std::size_t r = 0; r < cores_; ++r)
      for (std::size_t c = 0; c < cores_; ++c)
        m_dd_(r, c) =
            inv(model.network().die_node(r), model.network().die_node(c));
  }

  [[nodiscard]] double max_rise(const linalg::Vector& v) const {
    for (std::size_t c = 0; c < cores_; ++c)
      psi_[c] = model_.power().psi(c, v[c]);
    double peak = -std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < cores_; ++r) {
      double acc = 0.0;
      for (std::size_t c = 0; c < cores_; ++c) acc += m_dd_(r, c) * psi_[c];
      peak = std::max(peak, acc);
    }
    return peak;
  }

  [[nodiscard]] bool feasible(const linalg::Vector& v,
                              double rise_target) const {
    return max_rise(v) <= rise_target * (1.0 + 1e-12);
  }

 private:
  const thermal::ThermalModel& model_;
  std::size_t cores_;
  mutable linalg::Vector psi_;  // scratch; probes are single-threaded
  linalg::Matrix m_dd_;
};

/// Alternative seed: start from the largest *uniform* feasible voltage and
/// raise cores one at a time (bisection against the steady-state constraint)
/// until no single core can rise further.  On planar grids this matches the
/// pinned-temperature solution; on 3D stacks — where pinning every core at
/// T_max drives upper tiers into the alpha dead-zone and off — it finds the
/// asymmetric assignments that are actually throughput-optimal.
linalg::Vector coordinate_ascent_voltages(const thermal::ThermalModel& model,
                                          double rise_target, double v_max) {
  const std::size_t cores = model.num_cores();
  const SteadyProbe steady_probe(model);

  // Largest uniform feasible voltage.
  double lo = 0.0;
  double hi = v_max;
  if (steady_probe.feasible(linalg::Vector(cores, v_max), rise_target)) {
    lo = v_max;
  } else {
    for (int it = 0; it < 40; ++it) {
      const double mid = 0.5 * (lo + hi);
      if (steady_probe.feasible(linalg::Vector(cores, mid), rise_target))
        lo = mid;
      else
        hi = mid;
    }
  }
  linalg::Vector v(cores, lo);

  // Largest feasible value of core j holding the others fixed.
  const auto raise_limit = [&](linalg::Vector& probe, std::size_t j,
                               double from) {
    double lo_j = from;
    double hi_j = v_max;
    probe[j] = v_max;
    if (steady_probe.feasible(probe, rise_target)) return v_max;
    for (int it = 0; it < 30; ++it) {
      const double mid = 0.5 * (lo_j + hi_j);
      probe[j] = mid;
      if (steady_probe.feasible(probe, rise_target))
        lo_j = mid;
      else
        hi_j = mid;
    }
    probe[j] = lo_j;
    return lo_j;
  };

  // Round-robin single-core ascent to a maximal feasible point.
  for (int round = 0; round < 8; ++round) {
    bool changed = false;
    for (std::size_t j = 0; j < cores; ++j) {
      linalg::Vector probe = v;
      const double lifted = raise_limit(probe, j, v[j]);
      if (lifted > v[j] + 1e-9) {
        v[j] = lifted;
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Pairwise exchange: raise-only moves stall at uniform binding points
  // (e.g. every upper-tier core of a stack pinned at the budget); trading
  // speed from a strongly-binding core to a weakly-coupled one can still
  // gain total throughput.  Accept a (donor, receiver) trade when the
  // receiver recovers more voltage than the donor gave up.
  for (int round = 0; round < 6; ++round) {
    bool improved = false;
    for (std::size_t donor = 0; donor < cores; ++donor) {
      for (std::size_t receiver = 0; receiver < cores; ++receiver) {
        if (donor == receiver) continue;
        for (const double delta : {0.1, 0.05, 0.02}) {
          if (v[donor] < delta) continue;
          linalg::Vector probe = v;
          probe[donor] = v[donor] - delta;
          const double lifted =
              raise_limit(probe, receiver, v[receiver]);
          if (lifted - v[receiver] > delta + 1e-6) {
            v = probe;
            improved = true;
            break;
          }
        }
      }
    }
    if (!improved) break;
  }

  // Group exchange: when a whole set of cores binds at once (all upper-tier
  // cores of a stack), no single-receiver trade can win — raising any one
  // core re-heats the other binding ones.  Trade as a bloc instead: shave
  // every binding core by delta, then lift every slack core by a common
  // bisected amount; accept when the bloc gains more than it gave.
  for (int round = 0; round < 6; ++round) {
    const linalg::Vector rises = model.core_rises(model.steady_state(v));
    std::vector<std::size_t> binding;
    std::vector<std::size_t> slack;
    for (std::size_t j = 0; j < cores; ++j) {
      if (rises[j] >= rise_target - 1e-3)
        binding.push_back(j);
      else if (v[j] < v_max - 1e-9)
        slack.push_back(j);
    }
    if (binding.empty() || slack.empty()) break;

    bool improved = false;
    for (const double delta : {0.1, 0.05, 0.02}) {
      linalg::Vector probe = v;
      bool can_shave = true;
      for (std::size_t j : binding) {
        if (probe[j] < delta) {
          can_shave = false;
          break;
        }
        probe[j] -= delta;
      }
      if (!can_shave) continue;

      double lo_u = 0.0;
      double hi_u = v_max;
      for (int it = 0; it < 30; ++it) {
        const double mid = 0.5 * (lo_u + hi_u);
        linalg::Vector lifted = probe;
        bool in_range = true;
        for (std::size_t j : slack) {
          lifted[j] = probe[j] + mid;
          if (lifted[j] > v_max) {
            in_range = false;
            break;
          }
        }
        if (in_range && steady_probe.feasible(lifted, rise_target))
          lo_u = mid;
        else
          hi_u = mid;
      }
      const double gained = lo_u * static_cast<double>(slack.size());
      const double given = delta * static_cast<double>(binding.size());
      if (gained > given + 1e-6) {
        for (std::size_t j : slack) probe[j] += lo_u;
        v = probe;
        improved = true;
        break;
      }
    }
    if (!improved) break;
  }
  return v;
}

}  // namespace

IdealVoltages ideal_constant_voltages(const thermal::ThermalModel& model,
                                      double rise_target, double v_max) {
  FOSCIL_EXPECTS(rise_target > 0.0);
  FOSCIL_EXPECTS(v_max > 0.0);
  const std::size_t n = model.num_nodes();
  const std::size_t cores = model.num_cores();
  const linalg::Matrix m = model.system_matrix();  // G - beta E
  const auto& power = model.power();

  IdealVoltages result;
  result.voltages = linalg::Vector(cores);
  result.clamped.assign(cores, false);
  std::vector<CoreState> state(cores, CoreState::kFree);

  // Iterate: free cores have known temperature (rise_target) and unknown
  // heat; clamped cores and package nodes have known heat and unknown
  // temperature.  Ceiling clamps (v > v_max) arise on thermally easy cores;
  // floor clamps (required heat <= 0) arise e.g. on upper tiers of 3D
  // stacks that neighbor heat pushes past the target on their own.  The
  // clamp set only grows, so this terminates in <= cores rounds.
  for (std::size_t round = 0; round <= cores; ++round) {
    // Partition node indices.
    std::vector<std::size_t> pinned;    // die nodes at T = rise_target
    std::vector<std::size_t> floating;  // everything else
    std::vector<double> floating_heat;  // known Psi on floating nodes
    std::vector<bool> is_pinned(n, false);
    for (std::size_t core = 0; core < cores; ++core) {
      if (state[core] == CoreState::kFree) {
        const std::size_t d = model.network().die_node(core);
        pinned.push_back(d);
        is_pinned[d] = true;
      }
    }
    for (std::size_t node = 0; node < n; ++node) {
      if (is_pinned[node]) continue;
      floating.push_back(node);
      double heat = 0.0;
      if (model.network().layer(node) == thermal::NodeLayer::kDie) {
        const std::size_t core = node;  // die nodes are [0, cores)
        if (state[core] == CoreState::kClampedMax)
          heat = power.psi(core, v_max);
      }
      floating_heat.push_back(heat);
    }

    linalg::Vector temperatures(n);
    for (std::size_t d : pinned) temperatures[d] = rise_target;

    if (!floating.empty()) {
      // Solve M_ff T_f = Psi_f - M_fp T_p for the floating temperatures.
      linalg::Matrix m_ff(floating.size(), floating.size());
      linalg::Vector rhs(floating.size());
      for (std::size_t r = 0; r < floating.size(); ++r) {
        for (std::size_t c = 0; c < floating.size(); ++c)
          m_ff(r, c) = m(floating[r], floating[c]);
        double acc = floating_heat[r];
        for (std::size_t d : pinned) acc -= m(floating[r], d) * rise_target;
        rhs[r] = acc;
      }
      const linalg::Vector t_f = linalg::LuDecomposition(m_ff).solve(rhs);
      for (std::size_t r = 0; r < floating.size(); ++r)
        temperatures[floating[r]] = t_f[r];
    }

    // Required heat on pinned die rows: Psi_p = (M T)_p.
    bool new_clamp = false;
    for (std::size_t core = 0; core < cores; ++core) {
      switch (state[core]) {
        case CoreState::kClampedMax:
          result.voltages[core] = v_max;
          continue;
        case CoreState::kClampedOff:
          result.voltages[core] = 0.0;
          continue;
        case CoreState::kFree:
          break;
      }
      const std::size_t d = model.network().die_node(core);
      double psi = 0.0;
      for (std::size_t c = 0; c < n; ++c) psi += m(d, c) * temperatures[c];
      if (psi <= 0.0) {
        // Even zero injection overshoots the target here: power the core
        // down and let its temperature float (it ends below the target
        // because its neighbors are at or below it).
        state[core] = CoreState::kClampedOff;
        result.clamped[core] = true;
        result.any_clamped = true;
        new_clamp = true;
        continue;
      }
      const double v = power.voltage_for_psi(core, psi);
      if (v > v_max) {
        state[core] = CoreState::kClampedMax;
        result.clamped[core] = true;
        result.any_clamped = true;
        new_clamp = true;
      } else {
        result.voltages[core] = v;
      }
    }
    if (!new_clamp) break;
  }

  // Repair phase.  On 3D stacks a powered-down core can *still* end above
  // the target: the model keeps the beta*T leakage term for every die node
  // (eq. 2's LTI assumption), so an off core surrounded by at-target
  // neighbors floats at target * g_ii / (g_ii - beta) > target.  The active
  // set must then unload other cores.  Greedy KKT-style descent: while some
  // core overshoots, shed heat on the core that cools the hottest one most
  // per unit of speed given up (influence read from the steady-state
  // operator's inverse), which is monotone and terminates at v = 0.
  linalg::Vector steady = model.steady_state(result.voltages);
  if (model.max_core_rise(steady) > rise_target * (1.0 + 1e-9)) {
    const linalg::Matrix influence =
        linalg::LuDecomposition(m).inverse();  // T = influence * Psi
    for (std::size_t guard = 0; guard < 64 * cores; ++guard) {
      const linalg::Vector rises = model.core_rises(steady);
      const std::size_t hottest = rises.argmax();
      const double overshoot = rises[hottest] - rise_target;
      if (overshoot <= rise_target * 1e-9) break;

      // Pick the donor core maximizing dT_hottest/dPsi_j per speed lost
      // (dv/dPsi = 1 / (3 gamma v^2)).
      const std::size_t h_node = model.network().die_node(hottest);
      std::size_t donor = cores;
      double best_score = 0.0;
      for (std::size_t j = 0; j < cores; ++j) {
        const double v = result.voltages[j];
        if (v <= 0.0) continue;
        const double coupling =
            influence(h_node, model.network().die_node(j));
        const double score = coupling * 3.0 * power.gamma(j, v) * v * v;
        if (score > best_score) {
          best_score = score;
          donor = j;
        }
      }
      FOSCIL_ASSERT(donor < cores);  // some heat source must remain
      const double coupling =
          influence(h_node, model.network().die_node(donor));
      const double psi_cut = overshoot / coupling;
      const double v_old = result.voltages[donor];
      const double psi_new = power.psi(donor, v_old) - psi_cut;
      result.voltages[donor] = power.voltage_for_psi(donor, psi_new);
      result.clamped[donor] = true;  // no longer sits at the analytic pin
      result.any_clamped = true;
      steady = model.steady_state(result.voltages);
    }
  }

  // The pinned-temperature construction is a heuristic, not the optimum
  // (it is the paper's / Hanumaiah's choice and is excellent on planar
  // grids).  When the alternative coordinate-ascent seed delivers strictly
  // more throughput — the 3D-stack regime — prefer it.
  const linalg::Vector ascent =
      coordinate_ascent_voltages(model, rise_target, v_max);
  if (ascent.sum() > result.voltages.sum() + 1e-6) {
    result.voltages = ascent;
    result.any_clamped = false;
    for (std::size_t core = 0; core < cores; ++core) {
      result.clamped[core] = ascent[core] >= v_max - 1e-9;
      result.any_clamped |= result.clamped[core];
    }
    steady = model.steady_state(result.voltages);
  }

  // Postcondition: running the ideal voltages forever keeps every core at or
  // below the rise target (up to solver round-off).
  FOSCIL_ENSURES(model.max_core_rise(steady) <= rise_target * (1.0 + 1e-6));
  return result;
}

}  // namespace foscil::core
