#include "core/exs.hpp"

#include <cmath>
#include <vector>

#include "linalg/lu.hpp"
#include "linalg/simd.hpp"
#include "util/parallel_for.hpp"
#include "util/stopwatch.hpp"

namespace foscil::core {

namespace {

/// Full recompute cadence of the incremental (modal) evaluation: at most
/// this many O(N) delta folds happen between O(N²) refreshes, bounding the
/// accumulated roundoff at a few thousand ulps — orders of magnitude below
/// the 1e-12 relative feasibility tolerance.
constexpr std::uint64_t kRefreshInterval = 4096;

/// Cancellation poll cadence: cheap enough to be invisible next to the
/// per-candidate arithmetic, frequent enough that a fired token stops every
/// chunk within a few milliseconds.
constexpr std::uint64_t kCancelCheckInterval = 4096;

struct Candidate {
  double throughput = -1.0;
  double peak = 0.0;
  std::uint64_t index = 0;
  std::vector<std::size_t> level_indices;

  [[nodiscard]] bool better_than(const Candidate& other) const {
    if (throughput != other.throughput) return throughput > other.throughput;
    if (peak != other.peak) return peak < other.peak;
    return index < other.index;
  }
};

}  // namespace

SchedulerResult run_exs(const Platform& platform, double t_max_c,
                        const ExsOptions& options) {
  const Stopwatch timer;
  const double rise_target = platform.rise_budget(t_max_c);
  const auto& model = *platform.model;
  const auto& levels = platform.levels.values();
  const std::size_t cores = platform.num_cores();
  const std::size_t num_levels = levels.size();

  std::uint64_t total = 1;
  for (std::size_t c = 0; c < cores; ++c) {
    FOSCIL_ASSERT(total < UINT64_MAX / num_levels);
    total *= num_levels;
  }
  if (options.max_candidates != 0 && total > options.max_candidates)
    throw ExsSpaceTooLarge(total, options.max_candidates);

  // Die-block of (G - beta E)^{-1}: candidate evaluation becomes
  // T_d = M_dd * Psi_d because package nodes carry no heat.
  const linalg::Matrix inv = linalg::inverse(model.system_matrix());
  linalg::Matrix m_dd(cores, cores);
  for (std::size_t r = 0; r < cores; ++r)
    for (std::size_t c = 0; c < cores; ++c)
      m_dd(r, c) =
          inv(model.network().die_node(r), model.network().die_node(c));

  // Explicit transposed copy of the die block: the odometer fold adds one
  // *column* of M_dd into temps per changed digit, and the transposed copy
  // turns that strided walk into a contiguous row the axpy kernel streams.
  // (An explicit copy, not a symmetry assumption — the LU-computed inverse
  // is only symmetric to roundoff.)
  const linalg::Matrix m_dd_t = m_dd.transposed();

  // Per-(core, level) heat lookup table (cores may be heterogeneous).
  linalg::Matrix psi_of(cores, num_levels);
  for (std::size_t c = 0; c < cores; ++c)
    for (std::size_t l = 0; l < num_levels; ++l)
      psi_of(c, l) = model.power().psi(c, levels[l]);

  const linalg::simd::Kernels& kern = linalg::simd::kernels();

  const bool modal = options.eval_engine == sim::EvalEngine::kModal;
  const unsigned threads =
      options.threads == 0 ? hardware_parallelism() : options.threads;
  const std::size_t chunks = std::min<std::uint64_t>(
      total, std::max<std::uint64_t>(1, threads * 4ull));
  const std::uint64_t chunk_size = (total + chunks - 1) / chunks;

  const Candidate best = parallel_reduce(
      chunks, Candidate{},
      [&](std::size_t chunk, Candidate acc) {
        const std::uint64_t begin = chunk * chunk_size;
        const std::uint64_t end = std::min<std::uint64_t>(total, begin + chunk_size);
        if (begin >= end) return acc;

        // Decode the starting odometer (digit 0 = core 0, least significant).
        std::vector<std::size_t> digits(cores);
        std::uint64_t rest = begin;
        for (std::size_t c = 0; c < cores; ++c) {
          digits[c] = static_cast<std::size_t>(rest % num_levels);
          rest /= num_levels;
        }

        linalg::Vector psi(cores);
        linalg::Vector temps(cores);
        double speed_sum = 0.0;
        // Recompute temps and the speed sum from the digits alone — the
        // start-of-chunk state and the periodic drift reset of the
        // incremental path.
        const auto refresh = [&] {
          speed_sum = 0.0;
          for (std::size_t c = 0; c < cores; ++c) {
            psi[c] = psi_of(c, digits[c]);
            speed_sum += levels[digits[c]];
          }
          for (std::size_t r = 0; r < cores; ++r)
            temps[r] = kern.dot(m_dd.row_data(r), psi.data(), cores);
        };
        if (modal) refresh();
        std::uint64_t since_refresh = 0;
        const double threshold = rise_target * (1.0 + 1e-12);
        // Incremental temps drift by a few thousand ulps between refreshes;
        // any candidate within this slack of the budget is re-evaluated
        // exactly before the feasibility test, so the accepted set (and the
        // winner) is bit-identical to the reference engine — independent of
        // chunk layout and thread count.
        const double slack = rise_target * 1e-6;
        for (std::uint64_t idx = begin; idx < end; ++idx) {
          // Poll the token between candidates; a fired token abandons the
          // chunk (the partial accumulator is discarded by the throw after
          // the reduction).
          if (options.cancel != nullptr &&
              (idx - begin) % kCancelCheckInterval == 0 &&
              options.cancel->cancelled())
            return acc;
          if (modal) {
            if (temps.max() <= threshold + slack) {
              refresh();  // exact confirm; also resets the drift
              since_refresh = 0;
            }
          } else {
            refresh();
          }
          const double peak = temps.max();
          if (peak <= threshold) {
            const double throughput =
                speed_sum / static_cast<double>(cores);
            Candidate candidate{throughput, peak, idx, digits};
            if (candidate.better_than(acc)) acc = std::move(candidate);
          }
          // Advance the odometer; on the fast path each changed digit folds
          // its steady contribution column into temps (amortized one digit
          // per step, so O(N) instead of the N x N mat-vec).
          for (std::size_t c = 0; c < cores; ++c) {
            const std::size_t old = digits[c];
            const std::size_t fresh = old + 1 < num_levels ? old + 1 : 0;
            digits[c] = fresh;
            if (modal) {
              kern.axpy(cores, psi_of(c, fresh) - psi_of(c, old),
                        m_dd_t.row_data(c), temps.data());
              speed_sum += levels[fresh] - levels[old];
            }
            if (fresh != 0) break;  // no carry
          }
          // Incremental updates accumulate roundoff; a periodic full
          // recompute keeps the drift far below the feasibility tolerance.
          if (modal && ++since_refresh >= kRefreshInterval) {
            refresh();
            since_refresh = 0;
          }
        }
        return acc;
      },
      [](Candidate a, const Candidate& b) {
        return b.better_than(a) ? b : a;
      },
      threads);
  if (options.cancel != nullptr) options.cancel->throw_if_cancelled();

  SchedulerResult result;
  result.scheduler = "EXS";
  result.evaluations = total;
  result.seconds = timer.seconds();
  if (best.throughput < 0.0) {
    result.feasible = false;
    return result;
  }
  linalg::Vector voltages(cores);
  for (std::size_t c = 0; c < cores; ++c)
    voltages[c] = levels[best.level_indices[c]];
  result.feasible = true;
  result.schedule = sched::PeriodicSchedule::constant(voltages, 1.0);
  result.throughput = best.throughput;
  result.peak_rise = best.peak;
  result.peak_celsius = platform.to_celsius(best.peak);
  result.seconds = timer.seconds();
  return result;
}

}  // namespace foscil::core
