#include "core/exs.hpp"

#include <cmath>
#include <vector>

#include "linalg/lu.hpp"
#include "util/parallel_for.hpp"
#include "util/stopwatch.hpp"

namespace foscil::core {

namespace {

struct Candidate {
  double throughput = -1.0;
  double peak = 0.0;
  std::uint64_t index = 0;
  std::vector<std::size_t> level_indices;

  [[nodiscard]] bool better_than(const Candidate& other) const {
    if (throughput != other.throughput) return throughput > other.throughput;
    if (peak != other.peak) return peak < other.peak;
    return index < other.index;
  }
};

}  // namespace

SchedulerResult run_exs(const Platform& platform, double t_max_c,
                        const ExsOptions& options) {
  const Stopwatch timer;
  const double rise_target = platform.rise_budget(t_max_c);
  const auto& model = *platform.model;
  const auto& levels = platform.levels.values();
  const std::size_t cores = platform.num_cores();
  const std::size_t num_levels = levels.size();

  std::uint64_t total = 1;
  for (std::size_t c = 0; c < cores; ++c) {
    FOSCIL_ASSERT(total < UINT64_MAX / num_levels);
    total *= num_levels;
  }
  if (options.max_candidates != 0 && total > options.max_candidates)
    throw ExsSpaceTooLarge(total, options.max_candidates);

  // Die-block of (G - beta E)^{-1}: candidate evaluation becomes
  // T_d = M_dd * Psi_d because package nodes carry no heat.
  const linalg::Matrix inv = linalg::inverse(model.system_matrix());
  linalg::Matrix m_dd(cores, cores);
  for (std::size_t r = 0; r < cores; ++r)
    for (std::size_t c = 0; c < cores; ++c)
      m_dd(r, c) =
          inv(model.network().die_node(r), model.network().die_node(c));

  // Per-(core, level) heat lookup table (cores may be heterogeneous).
  linalg::Matrix psi_of(cores, num_levels);
  for (std::size_t c = 0; c < cores; ++c)
    for (std::size_t l = 0; l < num_levels; ++l)
      psi_of(c, l) = model.power().psi(c, levels[l]);

  const unsigned threads =
      options.threads == 0 ? hardware_parallelism() : options.threads;
  const std::size_t chunks = std::min<std::uint64_t>(
      total, std::max<std::uint64_t>(1, threads * 4ull));
  const std::uint64_t chunk_size = (total + chunks - 1) / chunks;

  const Candidate best = parallel_reduce(
      chunks, Candidate{},
      [&](std::size_t chunk, Candidate acc) {
        const std::uint64_t begin = chunk * chunk_size;
        const std::uint64_t end = std::min<std::uint64_t>(total, begin + chunk_size);
        if (begin >= end) return acc;

        // Decode the starting odometer (digit 0 = core 0, least significant).
        std::vector<std::size_t> digits(cores);
        std::uint64_t rest = begin;
        for (std::size_t c = 0; c < cores; ++c) {
          digits[c] = static_cast<std::size_t>(rest % num_levels);
          rest /= num_levels;
        }

        linalg::Vector psi(cores);
        linalg::Vector temps(cores);
        for (std::uint64_t idx = begin; idx < end; ++idx) {
          double speed_sum = 0.0;
          for (std::size_t c = 0; c < cores; ++c) {
            psi[c] = psi_of(c, digits[c]);
            speed_sum += levels[digits[c]];
          }
          // One N x N mat-vec per candidate — the honest per-candidate cost
          // of Algorithm 1's line 7.
          for (std::size_t r = 0; r < cores; ++r) {
            double acc_t = 0.0;
            for (std::size_t c = 0; c < cores; ++c)
              acc_t += m_dd(r, c) * psi[c];
            temps[r] = acc_t;
          }
          const double peak = temps.max();
          if (peak <= rise_target * (1.0 + 1e-12)) {
            const double throughput =
                speed_sum / static_cast<double>(cores);
            Candidate candidate{throughput, peak, idx, digits};
            if (candidate.better_than(acc)) acc = std::move(candidate);
          }
          // Advance the odometer.
          for (std::size_t c = 0; c < cores; ++c) {
            if (++digits[c] < num_levels) break;
            digits[c] = 0;
          }
        }
        return acc;
      },
      [](Candidate a, const Candidate& b) {
        return b.better_than(a) ? b : a;
      },
      threads);

  SchedulerResult result;
  result.scheduler = "EXS";
  result.evaluations = total;
  result.seconds = timer.seconds();
  if (best.throughput < 0.0) {
    result.feasible = false;
    return result;
  }
  linalg::Vector voltages(cores);
  for (std::size_t c = 0; c < cores; ++c)
    voltages[c] = levels[best.level_indices[c]];
  result.feasible = true;
  result.schedule = sched::PeriodicSchedule::constant(voltages, 1.0);
  result.throughput = best.throughput;
  result.peak_rise = best.peak;
  result.peak_celsius = platform.to_celsius(best.peak);
  result.seconds = timer.seconds();
  return result;
}

}  // namespace foscil::core
