// PCO — phase-conscious oscillation (Sec. V/VI).
//
// AO constrains every candidate to a step-up schedule so the peak is cheap
// to locate (Theorem 1).  That alignment is thermally pessimistic: stacking
// every core's high interval at the sub-period end maximizes instantaneous
// power density.  PCO starts from AO's solution, then
//  1. phase-shifts each core's high/low pattern within the sub-period
//     (greedy coordinate descent over an offset grid) to spread the high
//     intervals spatially, re-evaluating the peak with the general sampled
//     identifier, and
//  2. refills the opened temperature headroom by growing high-mode ratios
//     until the peak touches T_max again.
#pragma once

#include "core/ao.hpp"

namespace foscil::core {

struct PcoOptions {
  AoOptions ao;                 ///< underlying AO configuration
  int phase_grid = 16;          ///< offsets tried per core per round
  int phase_rounds = 2;         ///< coordinate-descent sweeps
  int peak_samples = 48;        ///< samples per state interval (search)
  int final_peak_samples = 96;  ///< samples for the reported peak
};

[[nodiscard]] SchedulerResult run_pco(const Platform& platform,
                                      double t_max_c,
                                      const PcoOptions& options = {});

}  // namespace foscil::core
