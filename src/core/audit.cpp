#include "core/audit.hpp"

#include "sched/transforms.hpp"
#include "sim/peak.hpp"

namespace foscil::core {

AuditCounters& AuditCounters::instance() {
  static AuditCounters counters;  // magic-static init is thread-safe
  return counters;
}

ScheduleAudit audit_schedule(const Platform& platform,
                             const sched::PeriodicSchedule& schedule,
                             double t_max_c, int samples_per_interval) {
  FOSCIL_EXPECTS(schedule.num_cores() == platform.num_cores());
  const double rise_target = platform.rise_budget(t_max_c);
  const sim::SteadyStateAnalyzer analyzer(platform.model);

  ScheduleAudit audit;
  audit.throughput = schedule.throughput();

  // Theorem-2 certificate first: cheap, and a proof when it passes.
  const sched::PeriodicSchedule step_up = sched::to_step_up(schedule);
  audit.bound_rise = sim::step_up_peak(analyzer, step_up).rise;
  audit.bound_celsius = platform.to_celsius(audit.bound_rise);
  audit.certified_safe = audit.bound_rise <= rise_target * (1.0 + 1e-9);

  const sim::PeakInfo peak =
      sim::sampled_peak(analyzer, schedule, samples_per_interval);
  audit.peak_rise = peak.rise;
  audit.peak_celsius = platform.to_celsius(peak.rise);
  audit.hottest_core = peak.core;
  audit.peak_time = peak.time;
  audit.measured_safe = peak.rise <= rise_target * (1.0 + 1e-9);

  // The certificate must dominate the measurement (Theorem 2), up to the
  // millikelvin tolerance documented in EXPERIMENTS.md E4.
  FOSCIL_ENSURES(audit.peak_rise <= audit.bound_rise + 1e-2);
  AuditCounters::instance().record_audit();
  AuditCounters::instance().record_certificate(audit.certified_safe);
  return audit;
}

double step_up_certificate_rise(
    const std::shared_ptr<const thermal::ThermalModel>& model,
    const sched::PeriodicSchedule& schedule) {
  FOSCIL_EXPECTS(model != nullptr);
  FOSCIL_EXPECTS(schedule.num_cores() == model->num_cores());
  const sim::SteadyStateAnalyzer analyzer(model);
  return sim::step_up_peak(analyzer, sched::to_step_up(schedule)).rise;
}

}  // namespace foscil::core
