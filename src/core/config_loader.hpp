// Build platforms and scheduler options from a text Config (util/config.hpp).
//
// Recognized keys (defaults in parentheses):
//
//   [platform] rows, cols, tiers (1), core_edge_mm (4.0), t_ambient_c (35)
//   [levels]   values = 0.6, 1.3       -- explicit list, or:
//              table4 = 2..5           -- the paper's Table IV sets, or:
//              full_range = true       -- 0.6:0.05:1.3
//   [package]  r_convection_block, rim_width_blocks, sink_mass_factor,
//              k_tim, t_tim_um, t_spreader_mm, t_sink_base_mm,
//              k_inter_tier, t_inter_tier_um   (all optional overrides)
//   [power]    alpha, beta, gamma             (optional overrides)
//              alpha_per_core / beta_per_core / gamma_per_core =
//              comma-separated per-core lists (heterogeneous chips;
//              must match the core count, tier-major order)
//   [ao]       base_period_ms, tau_us, t_unit_fraction, max_m
//   [run]      t_max_c (55)
#pragma once

#include "core/ao.hpp"
#include "core/platform.hpp"
#include "util/config.hpp"

namespace foscil::core {

/// Assemble a Platform; throws ConfigError / ContractViolation on bad input.
[[nodiscard]] Platform platform_from_config(const Config& config);

/// AO options with [ao] overrides applied.
[[nodiscard]] AoOptions ao_options_from_config(const Config& config);

/// The requested peak-temperature threshold ([run] t_max_c, default 55 C).
[[nodiscard]] double t_max_from_config(const Config& config);

}  // namespace foscil::core
