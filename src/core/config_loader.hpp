// Build platforms and scheduler options from a text Config (util/config.hpp).
//
// Recognized keys (defaults in parentheses):
//
//   [platform] rows, cols, tiers (1), core_edge_mm (4.0), t_ambient_c (35)
//   [levels]   values = 0.6, 1.3       -- explicit list, or:
//              table4 = 2..5           -- the paper's Table IV sets, or:
//              full_range = true       -- 0.6:0.05:1.3
//   [package]  r_convection_block, rim_width_blocks, sink_mass_factor,
//              k_tim, t_tim_um, t_spreader_mm, t_sink_base_mm,
//              k_inter_tier, t_inter_tier_um   (all optional overrides)
//   [power]    alpha, beta, gamma             (optional overrides)
//              alpha_per_core / beta_per_core / gamma_per_core =
//              comma-separated per-core lists (heterogeneous chips;
//              must match the core count, tier-major order)
//   [ao]       base_period_ms, tau_us, t_unit_fraction, max_m,
//              t_max_margin_k (0)
//   [run]      t_max_c (55)
//   [faults]   intensity (canonical mixed-fault dial; explicit keys below
//              override it), seed, sensor_bias_k, sensor_noise_k,
//              stuck_sensors (core indices), stuck_at_k,
//              drop_probability, delay_probability, delay_ms,
//              r_convection_scale, k_tim_scale, c_scale,
//              alpha_scale, beta_scale, gamma_scale, power_jitter,
//              ambient_drift_c, ambient_drift_period_s
//   [guard]    horizon_s, control_period_ms, samples_per_tick,
//              trip_margin_k, reentry_margin_k, backoff_initial_s,
//              backoff_factor, backoff_max_s, escalate_after,
//              derate_step_k, max_derate_k
//   [identify] enabled (false), forgetting, prior_sigma,
//              beta_prior_sigma, gate_sigma, confidence, trust_radius,
//              min_polls, min_seconds, significance, min_theta,
//              band_floor_k, max_replans, replan_delta, alpha_scale_w,
//              rel_scale, bias_scale_k, drift_scale_k, drift_period_s,
//              innovation_clip_k, conservative (true)
#pragma once

#include "core/ao.hpp"
#include "core/guard.hpp"
#include "core/platform.hpp"
#include "sim/faults.hpp"
#include "util/config.hpp"

namespace foscil::core {

/// Assemble a Platform; throws ConfigError / ContractViolation on bad input.
[[nodiscard]] Platform platform_from_config(const Config& config);

/// AO options with [ao] overrides applied.
[[nodiscard]] AoOptions ao_options_from_config(const Config& config);

/// The requested peak-temperature threshold ([run] t_max_c, default 55 C).
[[nodiscard]] double t_max_from_config(const Config& config);

/// True when the config carries any [faults] key.
[[nodiscard]] bool has_faults_config(const Config& config);

/// Fault specification from [faults]; the zero (inert) spec when absent.
/// `faults.intensity` seeds the canonical mix (sim::FaultSpec::at_intensity)
/// and explicit keys override individual fields on top of it.
[[nodiscard]] sim::FaultSpec faults_from_config(const Config& config);

/// Identification options from [identify] (disabled when absent).
[[nodiscard]] IdentifyOptions identify_options_from_config(
    const Config& config);

/// Guard options from [guard], with the [ao] and [identify] options
/// embedded.
[[nodiscard]] GuardOptions guard_options_from_config(const Config& config);

/// Keys the loaders above never read, restricted to sections this library
/// knows about (a misspelled `[ao] max_n` is silently ignored by the typed
/// getters — this is how it gets caught).  `extra_known` extends the known
/// set with keys recognized by other layers (e.g. serve_config's [serve]
/// keys); a key in `extra_known` also marks its section as known.  Keys in
/// entirely unknown sections are NOT reported: unknown sections are the
/// documented extension point for downstream tooling.  Sorted.
[[nodiscard]] std::vector<std::string> unknown_config_keys(
    const Config& config, const std::vector<std::string>& extra_known = {});

/// Print one `warning: unknown config key ...` line to stderr per result of
/// unknown_config_keys — at most once per key per process, so re-loading
/// the same config (watchers, retries) cannot spam the log.  Returns the
/// keys warned about on *this* call.
std::vector<std::string> warn_unknown_config_keys(
    const Config& config, const std::vector<std::string>& extra_known = {});

}  // namespace foscil::core
