// AO — aligned oscillation (Algorithm 2), the paper's main contribution.
//
// Pipeline:
//  1. Ideal constant voltage per core with every core's steady temperature
//     pinned at T_max (core/ideal.hpp).
//  2. Replace each unavailable ideal voltage by its two neighboring discrete
//     modes (Theorem 4) with work-preserving time ratios (eq. 11), low mode
//     first — a step-up schedule.
//  3. m-Oscillate all cores together (Definition 3, Theorem 5).  Every DVFS
//     transition stalls the core for tau; keeping throughput requires
//     extending the high interval by delta_i = (v_H + v_L) tau/(v_H - v_L),
//     which bounds m by M_i = floor(t_iL / (delta_i + tau)) per core and
//     M = min_i M_i chip-wide.  The best m is found by sequential search
//     over the peak temperature, which Theorem 1 makes cheap.
//  4. The resulting peak generally exceeds T_max (Theorem 3), so trade
//     throughput for temperature via the TPT index: repeatedly convert one
//     t_unit of high time to low time on the core that cools the hottest
//     core most per unit of throughput lost, until the peak obeys T_max.
#pragma once

#include <vector>

#include "core/platform.hpp"
#include "core/result.hpp"
#include "sim/modal.hpp"
#include "util/cancel.hpp"

namespace foscil::core {

/// Which core the TPT loop slows down (ablation knob; the paper uses the
/// best temperature-per-throughput tradeoff).
enum class TptPolicy {
  kBestTradeoff,  ///< Algorithm 2: max ΔT_hottest per unit of speed lost
  kHottestCore,   ///< naive: always slow the hottest core itself
};

/// Which two modes realize an unavailable ideal voltage (ablation knob; the
/// paper proves neighboring modes are optimal, Theorem 4).
enum class ModeChoice {
  kNeighboring,  ///< the two levels bracketing the ideal voltage
  kExtremes,     ///< the lowest and highest available levels
};

struct AoOptions {
  double base_period = 0.05;          ///< t_p, seconds
  double transition_overhead = 5e-6;  ///< tau, seconds (Sec. VI uses 5 us)
  double t_unit_fraction = 1e-3;      ///< t_unit as a fraction of t_p
  int max_m = 4096;                   ///< hard cap on the m search
  int m_search_patience = 8;          ///< stop after this many non-improving m
  TptPolicy tpt_policy = TptPolicy::kBestTradeoff;
  ModeChoice mode_choice = ModeChoice::kNeighboring;
  /// Guard band (K) subtracted from the rise budget before planning: the
  /// whole pipeline (ideal voltages, TPT loop, feasibility) targets
  /// T_max - t_max_margin.  The closed-loop guard (core/guard.hpp) derives
  /// this from a fault/uncertainty set; 0 reproduces the paper exactly.
  double t_max_margin = 0.0;
  /// Candidate-evaluation engine (sim/modal.hpp).  The modal diagonal
  /// recurrence is the default; the reference dense walk stays available for
  /// differential testing and as the independently-coded cross-check.
  /// Changes per-candidate arithmetic order, so results may differ from the
  /// reference engine in the last ulps — the serve cache hashes this knob.
  sim::EvalEngine eval_engine = sim::EvalEngine::kModal;
  /// Worker threads for the m-search window and the TPT candidate scan.
  /// 0 = automatic: one per hardware thread when the platform is large
  /// enough for fan-out to amortize thread spawns (>= 32 thermal nodes),
  /// serial otherwise.  The thread count never changes the chosen plan:
  /// candidates are evaluated independently and reduced in deterministic
  /// index order, so any value yields bit-identical results.
  unsigned scan_threads = 0;
  /// Cooperative cancellation (util/cancel.hpp).  Polled *between*
  /// candidate evaluations in the m-search and TPT scans — never inside the
  /// numerics — so a fired token stops the run within one candidate and a
  /// run that finishes is bit-identical to one planned with no token.
  /// Raises CancelledError.  Not hashed by the serve cache key (like
  /// scan_threads, it cannot change a completed plan).
  const CancelToken* cancel = nullptr;
};

[[nodiscard]] SchedulerResult run_ao(const Platform& platform, double t_max_c,
                                     const AoOptions& options = {});

/// Per-core oscillation parameters shared by AO and PCO.
struct CoreOscillation {
  double v_low = 0.0;
  double v_high = 0.0;
  double ratio_high = 0.0;  ///< fraction of the period spent in v_high
  bool oscillating = false; ///< false => constant at v_low (== v_high)
  double phase_offset = 0.0;///< sub-period rotation (PCO only)

  [[nodiscard]] double mean_speed() const {
    return oscillating
               ? ratio_high * v_high + (1.0 - ratio_high) * v_low
               : v_low;
  }
  /// High-interval extension per transition pair that repays the stall work.
  [[nodiscard]] double delta(double tau) const {
    FOSCIL_EXPECTS(oscillating);
    return (v_high + v_low) * tau / (v_high - v_low);
  }
};

namespace detail {

/// Derive oscillation parameters from ideal voltages and a level set.
[[nodiscard]] std::vector<CoreOscillation> make_oscillations(
    const linalg::Vector& ideal_voltages, const power::VoltageLevels& levels,
    ModeChoice mode_choice = ModeChoice::kNeighboring);

/// Chip-wide upper bound M on the oscillation count (Sec. V); 1 when no
/// core oscillates.
[[nodiscard]] int oscillation_bound(const std::vector<CoreOscillation>& cores,
                                    double base_period, double tau);

/// Build the sub-period (t_p / m) schedule: per oscillating core, low for
/// r_L t_p/m - delta then high for r_H t_p/m + delta (phase-rotated when a
/// core carries an offset).  Cores whose high ratio reached 0 or 1 collapse
/// to constant segments.
[[nodiscard]] sched::PeriodicSchedule build_oscillating_schedule(
    const std::vector<CoreOscillation>& cores, double base_period, int m,
    double tau);

/// AO result plus the oscillation parameters it settled on; PCO continues
/// from this state.
struct AoInternal {
  SchedulerResult result;
  std::vector<CoreOscillation> cores;
};

[[nodiscard]] AoInternal run_ao_internal(const Platform& platform,
                                         double t_max_c,
                                         const AoOptions& options);

}  // namespace detail

}  // namespace foscil::core
