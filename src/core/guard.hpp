// Closed-loop thermal guard: keep AO schedules safe under model mismatch.
//
// AO (Alg. 2) is open-loop — its peak-temperature guarantee holds only if
// the RC model, the power coefficients, the sensors, and the DVFS actuator
// all behave exactly as assumed.  The guard wraps the nominal AO schedule in
// a supervisory loop executed against a (possibly faulted) plant:
//
//   plan      AO at T_max derated by a guard band derived from the assumed
//             uncertainty set (AoOptions::t_max_margin) — this derating, not
//             the trip wire, is what absorbs in-envelope faults;
//   watch     each poll, compare the bias-corrected sensor readings against
//             a nominal-model prediction integrated from the *requested*
//             voltages; their deviation measures how far the plant has left
//             the qualified envelope;
//   trip      when the deviation climbs trip_margin beyond what the assumed
//             fault set can explain, issue an emergency step-down to the
//             lowest mode, re-requested every poll so dropped transitions
//             are retried;
//   re-enter  once the deviation falls reentry_margin below the trip point
//             AND an exponential backoff has elapsed, restart the nominal
//             schedule from phase 0;
//   escalate  after escalate_after trips since the last (re)plan the
//             mismatch is persistent: derate T_max by another derate_step
//             and re-run AO, up to max_derate, after which the guard
//             saturates at the lowest mode for the rest of the horizon;
//   identify  (opt-in, IdentifyOptions::enabled) feed every poll's residual
//             to a ThermalIdentifier; once the estimate converges and is
//             significant, run an uncertainty-certified replan
//             (core/identify.hpp) against the identified plant and switch
//             the watchdog to the identified model with bias-corrected
//             sensors — the certified planning margin replaces the
//             heuristic guard band, recovering the throughput blind
//             derating cedes to in-envelope mismatch.
//
// The same executor also runs a schedule open-loop (what plain AO would do
// on the faulted chip) and the reactive baseline against the same plant, so
// robustness experiments compare all three policies on identical ground
// truth.
#pragma once

#include <optional>
#include <vector>

#include "core/ao.hpp"
#include "core/identify.hpp"
#include "core/platform.hpp"
#include "core/reactive.hpp"
#include "core/result.hpp"
#include "sim/faults.hpp"

namespace foscil::core {

struct GuardOptions {
  double horizon = 60.0;         ///< simulated seconds
  double control_period = 2e-3;  ///< max s between sensor polls / decisions
  int samples_per_tick = 2;      ///< interior samples per poll interval for
                                 ///< true-peak tracking
  double trip_margin = 0.3;      ///< K of sensor-vs-prediction deviation
                                 ///< beyond the assumed envelope that trips
                                 ///< an emergency step-down
  double reentry_margin = 2.0;   ///< K of deviation hysteresis below the
                                 ///< trip point required to re-enter the
                                 ///< nominal schedule (clamped to half the
                                 ///< trip point so re-entry stays reachable)
  double backoff_initial = 0.25; ///< s in fallback before the first retry
  double backoff_factor = 2.0;   ///< backoff growth per consecutive trip
  double backoff_max = 8.0;      ///< s, backoff ceiling
  int escalate_after = 3;        ///< trips since last plan that trigger a
                                 ///< margin escalation + AO re-plan
  double derate_step = 1.0;      ///< K of extra T_max margin per escalation
  double max_derate = 6.0;       ///< K; beyond this the guard saturates low
  AoOptions ao;                  ///< planning options (margin added on top)
  IdentifyOptions identify;      ///< online identification (off by default)
  /// Uncertainty set the guard defends against; defaults to the injected
  /// spec (the operator knows the qualification envelope).  Setting it
  /// weaker than the injected faults exercises the escalation path.
  std::optional<sim::FaultSpec> assumed;

  void check() const;
};

/// Outcome of one guarded (or open-loop, or reactive) run on a faulted
/// plant; comparable with SchedulerResult via `result`.
struct GuardResult {
  SchedulerResult result;        ///< throughput is *delivered* work/s/core
  double true_peak_rise = 0.0;   ///< max true rise incl. ambient drift
  double seen_peak_rise = 0.0;   ///< max rise the faulted sensors reported
  std::size_t violations = 0;    ///< polls whose true temp exceeded T_max
  std::size_t polls = 0;         ///< control decisions taken
  std::size_t fallbacks = 0;     ///< emergency step-downs issued
  std::size_t reentries = 0;     ///< successful returns to the schedule
  std::size_t replans = 0;       ///< margin escalations (AO re-runs)
  bool saturated = false;        ///< gave up: pinned low after max_derate
  double guard_band = 0.0;       ///< K derived from the assumed fault set
  double final_derate = 0.0;     ///< K of escalation margin at horizon end
  std::size_t dropped_transitions = 0;
  std::size_t delayed_transitions = 0;
  double nominal_throughput = 0.0;  ///< unfaulted AO reference throughput

  // --- identification outcome (zeros/empty when identify is off) -------
  std::size_t identified_replans = 0;  ///< certified replans applied
  bool identify_converged = false;     ///< estimator passed its gate
  double certified_band = 0.0;   ///< K planning margin of the last applied
                                 ///< certified plan (0 = never replanned)
  std::size_t identify_polls = 0;
  std::vector<double> est_alpha_offset_w;  ///< point estimate, horizon end
  double est_beta_scale = 1.0;
  double est_r_convection_scale = 1.0;
  std::vector<double> est_bias_k;

  /// Fraction of the unfaulted AO throughput this run delivered.
  [[nodiscard]] double throughput_retained() const {
    return nominal_throughput > 0.0 ? result.throughput / nominal_throughput
                                    : 0.0;
  }
};

/// Static guard band (K) for an assumed uncertainty set: sensor error
/// (|bias| + 3 sigma) + ambient swing + plant-mismatch headroom
/// (rise budget scaled by the worst assumed parameter deviation) + actuator
/// headroom.  An engineering bound, not a theorem — the closed loop covers
/// what it underestimates.  Clamped to half the rise budget so planning
/// stays feasible.
[[nodiscard]] double guard_band(const Platform& platform, double t_max_c,
                                const sim::FaultSpec& assumed);

/// All three executors start the plant at the relevant nominal stable-status
/// state (FaultedPlant::warm_start) and trim the horizon to whole schedule
/// periods where one exists, so zero faults reproduce the planner's numbers
/// instead of a cold-boot transient.

/// Plan AO against the derated threshold and execute it closed-loop on the
/// faulted plant.
[[nodiscard]] GuardResult run_guarded_ao(const Platform& platform,
                                         double t_max_c,
                                         const sim::FaultSpec& injected,
                                         const GuardOptions& options = {});

/// Execute `schedule` open-loop on the faulted plant: transitions are issued
/// once per interval boundary, nobody reads a sensor, nothing intervenes.
/// This is what trusting AO's certificate on a mismatched chip does.
[[nodiscard]] GuardResult run_open_loop(const Platform& platform,
                                        double t_max_c,
                                        const sched::PeriodicSchedule& schedule,
                                        const sim::FaultSpec& injected,
                                        const GuardOptions& options = {});

/// The reactive threshold governor (core/reactive.hpp) driven by the same
/// faulted plant — sensors and actuator both lie — for apples-to-apples
/// robustness comparisons.  `reactive.sensor_bias` is ignored; sensor
/// faults come from the plant.
[[nodiscard]] GuardResult run_reactive_on_plant(
    const Platform& platform, double t_max_c, const sim::FaultSpec& injected,
    const ReactiveOptions& reactive, const GuardOptions& options = {});

}  // namespace foscil::core
