// Common result type for all schedulers (LNS / EXS / AO / PCO).
#pragma once

#include <string>

#include "sched/schedule.hpp"

namespace foscil::core {

struct SchedulerResult {
  std::string scheduler;          ///< "LNS", "EXS", "AO", "PCO"
  bool feasible = false;          ///< peak <= T_max achieved
  double throughput = 0.0;        ///< eq. (5); stall-compensated for AO/PCO
  double peak_rise = 0.0;         ///< stable-status peak, K over ambient
  double peak_celsius = 0.0;      ///< same, absolute
  sched::PeriodicSchedule schedule{1, 1.0};
  int m = 1;                      ///< oscillation factor (AO/PCO)
  double seconds = 0.0;           ///< scheduler wall time
  std::size_t evaluations = 0;    ///< thermal evaluations performed
};

}  // namespace foscil::core
