// Ideal constant voltages: the starting point of the AO/PCO/LNS pipeline.
//
// Following the paper's Sec. V (after Hanumaiah et al.), assume every core's
// steady-state temperature is pinned at the threshold:
// T_inf(v_const) = [T_max].  Pinning the die-node temperatures turns the
// steady-state balance (G - beta E) T = Psi(v) into a Schur-complement
// solve: the non-die temperatures follow from the die temperatures, and the
// required per-core heat Psi_i falls out of the die rows; then
// v_i = cbrt((Psi_i - alpha)/gamma).
//
// Cores whose required voltage exceeds `v_max` are clamped there and
// re-enter the system as fixed-power (instead of fixed-temperature) nodes,
// and the reduced system is re-solved until no new clamp appears — the
// clamped cores end up strictly cooler than T_max.
#pragma once

#include "linalg/matrix.hpp"
#include "thermal/model.hpp"

namespace foscil::core {

struct IdealVoltages {
  linalg::Vector voltages;        ///< per-core ideal constant voltage
  std::vector<bool> clamped;      ///< true where v hit v_max
  bool any_clamped = false;
};

/// Compute the throughput-optimal constant voltage per core such that no
/// steady-state core temperature exceeds `rise_target` (K over ambient).
/// `v_max` bounds the physically available range (e.g. 1.3 V).
[[nodiscard]] IdealVoltages ideal_constant_voltages(
    const thermal::ThermalModel& model, double rise_target, double v_max);

}  // namespace foscil::core
