#include "core/reactive.hpp"

#include <algorithm>
#include <vector>

#include "sim/transient.hpp"
#include "util/stopwatch.hpp"

namespace foscil::core {

ReactiveResult run_reactive(const Platform& platform, double t_max_c,
                            const ReactiveOptions& options) {
  FOSCIL_EXPECTS(options.poll_period > 0.0);
  FOSCIL_EXPECTS(options.margin >= 0.0);
  FOSCIL_EXPECTS(options.hysteresis >= 0.0);
  FOSCIL_EXPECTS(options.horizon >= options.poll_period);
  FOSCIL_EXPECTS(options.samples_per_tick >= 1);
  const Stopwatch timer;

  const double rise_target = platform.rise_budget(t_max_c);
  const auto& model = *platform.model;
  const sim::TransientSimulator sim(platform.model);
  const auto& levels = platform.levels.values();
  const std::size_t cores = platform.num_cores();

  const double step_down_at = rise_target - options.margin;
  const double step_up_at = step_down_at - options.hysteresis;

  std::vector<std::size_t> level_of(cores, 0);  // start at the lowest mode
  linalg::Vector temps = sim.ambient_start();

  ReactiveResult out;
  const auto ticks =
      static_cast<std::size_t>(options.horizon / options.poll_period);
  double work = 0.0;        // volt-seconds over the measured window
  double measured_time = 0.0;
  const std::size_t warmup = ticks / 2;  // score the settled second half

  for (std::size_t tick = 0; tick < ticks; ++tick) {
    linalg::Vector v(cores);
    for (std::size_t i = 0; i < cores; ++i) v[i] = levels[level_of[i]];

    // Advance one poll interval, tracking the true inter-poll peak.
    double tick_peak = 0.0;
    linalg::Vector next = temps;
    for (int k = 1; k <= options.samples_per_tick; ++k) {
      const double local = options.poll_period * k /
                           options.samples_per_tick;
      next = sim.advance(temps, v, local);
      tick_peak = std::max(tick_peak, model.max_core_rise(next));
    }
    temps = next;
    out.true_peak_rise = std::max(out.true_peak_rise, tick_peak);
    if (tick_peak > rise_target * (1.0 + 1e-12)) ++out.violations;

    if (tick >= warmup) {
      for (std::size_t i = 0; i < cores; ++i)
        work += v[i] * options.poll_period;
      measured_time += options.poll_period;
    }

    // Sensor read + per-core decision.
    const linalg::Vector reading = model.core_rises(temps);
    for (std::size_t i = 0; i < cores; ++i) {
      const double seen = reading[i] + options.sensor_bias;
      out.seen_peak_rise = std::max(out.seen_peak_rise, seen);
      if (seen > step_down_at && level_of[i] > 0) {
        --level_of[i];
        ++out.transitions;
      } else if (seen < step_up_at && level_of[i] + 1 < levels.size()) {
        ++level_of[i];
        ++out.transitions;
      }
    }
  }

  SchedulerResult& r = out.result;
  r.scheduler = "REACTIVE";
  r.feasible = out.violations == 0;
  r.throughput = measured_time > 0.0
                     ? work / (measured_time * static_cast<double>(cores))
                     : 0.0;
  r.peak_rise = out.true_peak_rise;
  r.peak_celsius = platform.to_celsius(out.true_peak_rise);
  // Report the final operating point as a constant schedule snapshot.
  linalg::Vector final_v(cores);
  for (std::size_t i = 0; i < cores; ++i) final_v[i] = levels[level_of[i]];
  r.schedule = sched::PeriodicSchedule::constant(final_v, 1.0);
  r.evaluations = ticks;
  r.seconds = timer.seconds();
  return out;
}

}  // namespace foscil::core
