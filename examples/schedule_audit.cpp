// schedule_audit: certify a hand-written DVFS schedule against a platform.
//
//   $ ./examples/schedule_audit <config.ini> <period_s> <core specs...>
//   $ ./examples/schedule_audit examples/configs/motivation_3x1.ini 0.02
//         "0.6:0.25,1.3:0.75" "0.6:0.4,1.3:0.6" "0.6:0.25,1.3:0.75"
//
// Each core spec is a comma-separated list of voltage:fraction pairs; the
// fractions of a core must sum to 1.  The auditor reports the schedule's
// throughput, its exact stable-status peak, and the Theorem-2 step-up
// certificate — if the certificate clears T_max the schedule is *provably*
// safe without any transient search, which is the paper's core trick turned
// into a verification tool.
//
// When the config carries a [faults] section the auditor additionally
// replays the schedule open-loop on the faulted plant: the certificate
// holds for the *nominal* chip, and the replay shows what the same
// schedule does on the chip you actually got.
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "core/audit.hpp"
#include "core/config_loader.hpp"
#include "core/guard.hpp"
#include "util/table.hpp"

using namespace foscil;

namespace {

std::vector<sched::Segment> parse_core_spec(const std::string& spec,
                                            double period) {
  std::vector<sched::Segment> segments;
  std::istringstream in(spec);
  std::string field;
  while (std::getline(in, field, ',')) {
    const std::size_t colon = field.find(':');
    if (colon == std::string::npos)
      throw std::runtime_error("bad segment '" + field +
                               "', expected voltage:fraction");
    const double voltage = std::stod(field.substr(0, colon));
    const double fraction = std::stod(field.substr(colon + 1));
    segments.push_back({fraction * period, voltage});
  }
  if (segments.empty())
    throw std::runtime_error("empty core spec '" + spec + "'");
  return segments;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <config.ini> <period_s> <core spec>...\n"
                 "  core spec: v:frac[,v:frac...], fractions sum to 1\n",
                 argv[0]);
    return 2;
  }
  try {
    const Config config = Config::load(argv[1]);
    const core::Platform platform = core::platform_from_config(config);
    const double t_max = core::t_max_from_config(config);
    const double period = std::stod(argv[2]);

    const std::size_t specs = static_cast<std::size_t>(argc - 3);
    if (specs != platform.num_cores()) {
      std::fprintf(stderr, "error: platform has %zu cores but %zu core "
                   "specs were given\n",
                   platform.num_cores(), specs);
      return 2;
    }
    sched::PeriodicSchedule schedule(platform.num_cores(), period);
    for (std::size_t core = 0; core < specs; ++core)
      schedule.set_core_segments(
          core, parse_core_spec(argv[3 + static_cast<int>(core)], period));

    const core::ScheduleAudit audit =
        audit_schedule(platform, schedule, t_max, 96);

    std::printf("auditing a %.1f ms schedule on %s against T_max = %.1f C\n\n",
                period * 1e3, platform.name.c_str(), t_max);
    TextTable table({"quantity", "value"});
    table.add_row({"throughput (eq. 5)", fmt(audit.throughput)});
    table.add_row({"step-up certificate (Thm. 2)",
                   fmt_celsius(audit.bound_celsius)});
    table.add_row({"exact stable-status peak",
                   fmt_celsius(audit.peak_celsius)});
    table.add_row({"hottest core", std::to_string(audit.hottest_core)});
    table.add_row({"peak offset in period",
                   fmt(audit.peak_time * 1e3, 2) + " ms"});
    table.add_row({"certified safe (no sampling needed)",
                   audit.certified_safe ? "YES" : "no"});
    table.add_row({"measured safe", audit.measured_safe ? "YES" : "NO"});
    std::printf("%s\n", table.str().c_str());

    if (core::has_faults_config(config)) {
      const sim::FaultSpec faults = core::faults_from_config(config);
      const core::GuardOptions options =
          core::guard_options_from_config(config);
      const core::GuardResult replay =
          core::run_open_loop(platform, t_max, schedule, faults, options);
      std::printf("open-loop replay on the faulted plant (%.0f s horizon):\n",
                  options.horizon);
      TextTable faulted({"quantity", "value"});
      faulted.add_row({"true peak", fmt_celsius(replay.result.peak_celsius)});
      faulted.add_row({"violating polls", std::to_string(replay.violations) +
                                              " / " +
                                              std::to_string(replay.polls)});
      faulted.add_row({"delivered throughput", fmt(replay.result.throughput)});
      faulted.add_row(
          {"dropped / delayed transitions",
           std::to_string(replay.dropped_transitions) + " / " +
               std::to_string(replay.delayed_transitions)});
      faulted.add_row(
          {"survived faulted", replay.violations == 0 ? "YES" : "NO"});
      std::printf("%s\n", faulted.str().c_str());
    }

    if (audit.certified_safe) {
      std::printf("verdict: provably below T_max by the step-up bound.\n");
    } else if (audit.measured_safe) {
      std::printf("verdict: measured safe, but only by sampling — the "
                  "step-up bound exceeds T_max,\nso consider re-ordering "
                  "segments (step-up) or lowering high-mode ratios for a "
                  "certificate.\n");
    } else {
      std::printf("verdict: UNSAFE — the schedule overheats the chip in "
                  "stable status.\n");
    }
    return audit.measured_safe ? 0 : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
