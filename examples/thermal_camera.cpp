// thermal_camera: watch a chip heat up under a schedule, like pointing a
// thermal camera at the die.
//
//   $ ./examples/thermal_camera [rows cols seconds [trace.csv]]
//
// Builds a grid platform, runs the AO schedule for T_max = 55 C, and prints
// an ASCII heat map of the die at regular instants from ambient to the
// thermal stable status, plus a per-core temperature table.  Demonstrates
// the TransientSimulator / trace API on a realistic monitoring scenario.
// With a fourth argument, one stable-status period of the per-core trace is
// also written as CSV for external plotting.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/ao.hpp"
#include "sim/steady.hpp"
#include "sim/trace_io.hpp"
#include "util/table.hpp"

using namespace foscil;

namespace {

char shade(double celsius, double lo, double hi) {
  static const char kRamp[] = " .:-=+*#%@";
  const double unit = (celsius - lo) / (hi - lo);
  const int idx = static_cast<int>(unit * 9.0);
  return kRamp[std::max(0, std::min(9, idx))];
}

void draw(const core::Platform& platform, const linalg::Vector& rises,
          std::size_t rows, std::size_t cols, double lo, double hi) {
  const auto cores = platform.model->core_rises(rises);
  for (std::size_t r = 0; r < rows; ++r) {
    std::printf("    ");
    for (std::size_t c = 0; c < cols; ++c) {
      const double celsius = platform.to_celsius(cores[r * cols + c]);
      std::printf("[%c %5.1f]", shade(celsius, lo, hi), celsius);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t rows =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 3;
  const std::size_t cols =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 3;
  const double horizon = argc > 3 ? std::atof(argv[3]) : 40.0;
  const double t_max_c = 55.0;

  const core::Platform platform = core::make_grid_platform(
      rows, cols, power::VoltageLevels({0.6, 1.3}));
  std::printf("thermal camera on a %s chip, T_max = %.0f C, "
              "watching %.0f s of the AO schedule\n\n",
              platform.name.c_str(), t_max_c, horizon);

  const core::SchedulerResult plan = core::run_ao(platform, t_max_c);
  std::printf("AO plan: throughput %.4f at m = %d "
              "(sub-period %.2f ms), predicted peak %s\n\n",
              plan.throughput, plan.m, plan.schedule.period() * 1e3,
              fmt_celsius(plan.peak_celsius).c_str());

  const sim::TransientSimulator sim(platform.model);
  const auto intervals = plan.schedule.state_intervals();

  linalg::Vector temps = sim.ambient_start();
  double now = 0.0;
  const double frame_every = horizon / 8.0;
  double next_frame = 0.0;
  const double lo = platform.t_ambient_c;
  const double hi = t_max_c;

  while (now < horizon) {
    for (const auto& interval : intervals) {
      temps = sim.advance(temps, interval.voltages, interval.length);
      now += interval.length;
      if (now >= next_frame) {
        std::printf("t = %7.2f s  (chip max %s)\n", now,
                    fmt_celsius(platform.to_celsius(
                                    platform.model->max_core_rise(temps)))
                        .c_str());
        draw(platform, temps, rows, cols, lo, hi);
        std::printf("\n");
        next_frame += frame_every;
      }
      if (now >= horizon) break;
    }
  }

  // Converged view: the analytic stable status for comparison.
  const sim::SteadyStateAnalyzer analyzer(platform.model);
  const linalg::Vector stable = analyzer.stable_boundary(plan.schedule);
  std::printf("analytic stable status (period boundary):\n");
  draw(platform, stable, rows, cols, lo, hi);
  std::printf("\nhottest core sits at %s against the %.0f C budget\n",
              fmt_celsius(platform.to_celsius(
                              platform.model->max_core_rise(stable)))
                  .c_str(),
              t_max_c);

  if (argc > 4) {
    const auto stable_trace =
        analyzer.stable_trace(plan.schedule, plan.schedule.period() / 64.0);
    sim::write_trace_csv(argv[4], *platform.model, stable_trace,
                         platform.t_ambient_c);
    std::printf("wrote one stable-status period (%zu samples) to %s\n",
                stable_trace.size(), argv[4]);
  }
  return 0;
}
