// design_space: how many DVFS levels does a chip actually need?
//
//   $ ./examples/design_space [rows cols t_max_c]
//
// A hardware architect deciding how many voltage rails to provision can use
// the oscillation result directly: sweep the number of evenly spaced levels
// in [0.6, 1.3] V and compare the throughput of constant-mode scheduling
// (EXS) against oscillating scheduling (AO).  The punchline of the paper —
// with AO, two well-chosen rails already recover most of the continuous
// ideal, so extra rails buy little.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/ao.hpp"
#include "core/exs.hpp"
#include "core/ideal.hpp"
#include "util/table.hpp"

using namespace foscil;

int main(int argc, char** argv) {
  const std::size_t rows =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 2;
  const std::size_t cols =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 3;
  const double t_max_c = argc > 3 ? std::atof(argv[3]) : 55.0;

  std::printf("DVFS level-count design sweep on a %zux%zu chip, "
              "T_max = %.1f C\n\n",
              rows, cols, t_max_c);

  // Continuous-ideal reference (infinitely many levels).
  const core::Platform reference = core::make_grid_platform(rows, cols);
  const core::IdealVoltages ideal = core::ideal_constant_voltages(
      *reference.model, reference.rise_budget(t_max_c), 1.3);
  double ideal_thr = 0.0;
  for (std::size_t i = 0; i < reference.num_cores(); ++i)
    ideal_thr += ideal.voltages[i];
  ideal_thr /= static_cast<double>(reference.num_cores());

  TextTable table({"levels", "EXS", "EXS % ideal", "AO", "AO % ideal",
                   "AO edge"});
  for (int count = 2; count <= 8; ++count) {
    std::vector<double> levels;
    for (int k = 0; k < count; ++k)
      levels.push_back(0.6 + (1.3 - 0.6) * k / (count - 1));
    const core::Platform p = core::make_grid_platform(
        rows, cols, power::VoltageLevels(levels));
    const double exs = core::run_exs(p, t_max_c).throughput;
    const double ao = core::run_ao(p, t_max_c).throughput;
    table.add_row({std::to_string(count), fmt(exs),
                   fmt(100.0 * exs / ideal_thr, 1) + "%", fmt(ao),
                   fmt(100.0 * ao / ideal_thr, 1) + "%",
                   fmt(100.0 * (ao - exs) / exs, 1) + "%"});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("continuous-ideal throughput: %.4f\n", ideal_thr);
  std::printf("\nreading: with oscillation (AO), even 2 rails sit near the "
              "ideal;\nwithout it (EXS), the chip needs many rails to close "
              "the same gap.\n");
  return 0;
}
