// Quickstart: build a 3-core platform, ask every scheduler for a plan at
// T_max = 65 C, and print what each one would run.
//
//   $ ./examples/quickstart
//
// This mirrors the paper's motivation example (Sec. III): with only two
// modes available (0.6 V / 1.3 V), a constant-speed baseline leaves a lot of
// temperature headroom on the table, while the oscillating schedules close
// most of the gap to the continuous-ideal throughput.
#include <cstdio>

#include "core/ao.hpp"
#include "core/exs.hpp"
#include "core/ideal.hpp"
#include "core/lns.hpp"
#include "core/pco.hpp"
#include "util/table.hpp"

int main() {
  using namespace foscil;

  // A 3x1 grid of 4x4 mm^2 cores with only two DVFS modes.
  const core::Platform platform = core::make_grid_platform(
      1, 3, power::VoltageLevels({0.6, 1.3}));
  const double t_max_c = 65.0;

  std::printf("platform %s: %zu cores, %zu thermal nodes, T_amb=%.0f C, "
              "T_max=%.0f C, modes {0.6 V, 1.3 V}\n\n",
              platform.name.c_str(), platform.num_cores(),
              platform.model->num_nodes(), platform.t_ambient_c, t_max_c);

  // The continuous-ideal constant voltages (upper bound on any constant
  // schedule's throughput).
  const core::IdealVoltages ideal = core::ideal_constant_voltages(
      *platform.model, platform.rise_budget(t_max_c),
      platform.levels.highest());
  double ideal_thr = 0.0;
  std::printf("continuous-ideal voltages: [");
  for (std::size_t i = 0; i < platform.num_cores(); ++i) {
    std::printf("%s%.4f", i ? ", " : "", ideal.voltages[i]);
    ideal_thr += ideal.voltages[i];
  }
  ideal_thr /= static_cast<double>(platform.num_cores());
  std::printf("] V  ->  throughput %.4f\n\n", ideal_thr);

  const core::SchedulerResult lns = core::run_lns(platform, t_max_c);
  const core::SchedulerResult exs = core::run_exs(platform, t_max_c);
  const core::SchedulerResult ao = core::run_ao(platform, t_max_c);
  const core::SchedulerResult pco = core::run_pco(platform, t_max_c);

  TextTable table({"scheduler", "throughput", "% of ideal", "peak temp", "m",
                   "feasible", "time"});
  for (const auto* r : {&lns, &exs, &ao, &pco}) {
    table.add_row({r->scheduler, fmt(r->throughput),
                   fmt(100.0 * r->throughput / ideal_thr, 1) + "%",
                   fmt_celsius(r->peak_celsius), std::to_string(r->m),
                   r->feasible ? "yes" : "NO",
                   fmt(r->seconds * 1e3, 1) + " ms"});
  }
  std::printf("%s\n", table.str().c_str());

  std::printf("AO schedule (one oscillation sub-period of %.3f ms):\n",
              ao.schedule.period() * 1e3);
  for (std::size_t i = 0; i < platform.num_cores(); ++i) {
    std::printf("  core %zu:", i);
    for (const auto& seg : ao.schedule.core_segments(i))
      std::printf("  %.3f ms @ %.2f V", seg.duration * 1e3, seg.voltage);
    std::printf("\n");
  }
  return 0;
}
