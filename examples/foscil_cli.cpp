// foscil_cli: run the schedulers on a platform described by a config file.
//
//   $ ./examples/foscil_cli examples/configs/motivation_3x1.ini
//   $ ./examples/foscil_cli examples/configs/stacked_2x2x2.ini ao
//
// The second argument restricts the run to one scheduler
// (lns | exs | ao | pco | reactive | all; default all).  See
// src/core/config_loader.hpp for the recognized config keys.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/ao.hpp"
#include "core/config_loader.hpp"
#include "core/exs.hpp"
#include "core/lns.hpp"
#include "core/pco.hpp"
#include "core/reactive.hpp"
#include "util/table.hpp"

using namespace foscil;

namespace {

void add_result(TextTable& table, const core::SchedulerResult& r) {
  table.add_row({r.scheduler, fmt(r.throughput),
                 fmt_celsius(r.peak_celsius), std::to_string(r.m),
                 std::to_string(r.evaluations),
                 fmt(r.seconds * 1e3, 1) + " ms",
                 r.feasible ? "yes" : "NO"});
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <config.ini> [lns|exs|ao|pco|reactive|all]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string which = argc > 2 ? argv[2] : "all";

  Config config;
  try {
    config = Config::load(argv[1]);
  } catch (const ConfigError& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }

  try {
    const core::Platform platform = core::platform_from_config(config);
    const double t_max = core::t_max_from_config(config);
    const core::AoOptions ao_options = core::ao_options_from_config(config);

    std::printf("platform %s: %zu cores, %zu thermal nodes, %zu levels, "
                "T_amb = %.1f C, T_max = %.1f C\n\n",
                platform.name.c_str(), platform.num_cores(),
                platform.model->num_nodes(), platform.levels.count(),
                platform.t_ambient_c, t_max);

    TextTable table({"scheduler", "throughput", "peak", "m", "evals",
                     "time", "feasible"});
    const bool all = which == "all";
    if (all || which == "lns")
      add_result(table, core::run_lns(platform, t_max));
    if (all || which == "exs")
      add_result(table, core::run_exs(platform, t_max));
    if (all || which == "ao")
      add_result(table, core::run_ao(platform, t_max, ao_options));
    if (all || which == "pco") {
      core::PcoOptions pco_options;
      pco_options.ao = ao_options;
      add_result(table, core::run_pco(platform, t_max, pco_options));
    }
    if (all || which == "reactive")
      add_result(table, core::run_reactive(platform, t_max).result);
    if (table.rows() == 0) return usage(argv[0]);
    std::printf("%s", table.str().c_str());
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
