// foscil_cli: run the schedulers on a platform described by a config file.
//
//   $ ./examples/foscil_cli examples/configs/motivation_3x1.ini
//   $ ./examples/foscil_cli examples/configs/stacked_2x2x2.ini ao
//
// The second argument restricts the run to one scheduler
// (lns | exs | ao | pco | reactive | guard | all; default all).  "guard"
// executes AO closed-loop on the faulted plant described by the config's
// [faults] section (inert when absent); "all" includes it automatically
// whenever the config carries [faults] keys.  See
// src/core/config_loader.hpp for the recognized config keys.
//
// "serve" instead stands up the in-process planning service (src/serve)
// and drives it with a repeated-request workload shaped by the config's
// [serve] section (see src/serve/serve_config.hpp), printing cache, queue,
// and Theorem-2 certificate statistics.
//
// "serve --listen [host:port]" exposes the same service over TCP
// (src/serve/net): it prints the bound endpoint, serves plan frames until
// SIGTERM/SIGINT, then drains gracefully — finish in-flight work, flush
// the snapshot, exit 0.  "client --connect host:port[,host:port...]"
// drives such shards with the demo workload through the consistent-hash
// client (retries, failover), or sends one control operation with
// --health / --ready / --drain.
#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/ao.hpp"
#include "core/audit.hpp"
#include "core/config_loader.hpp"
#include "core/exs.hpp"
#include "core/guard.hpp"
#include "core/lns.hpp"
#include "core/pco.hpp"
#include "core/reactive.hpp"
#include "serve/net/client.hpp"
#include "serve/serve_config.hpp"
#include "util/table.hpp"

using namespace foscil;

namespace {

void add_result(TextTable& table, const core::SchedulerResult& r) {
  table.add_row({r.scheduler, fmt(r.throughput),
                 fmt_celsius(r.peak_celsius), std::to_string(r.m),
                 std::to_string(r.evaluations),
                 fmt(r.seconds * 1e3, 1) + " ms",
                 r.feasible ? "yes" : "NO"});
}

void print_guard_details(const core::GuardResult& guarded) {
  std::printf(
      "\nguard: band %.2f K, final derate %.2f K, %zu polls, "
      "%zu fallbacks, %zu reentries, %zu replans%s\n"
      "       true peak rise %.2f K (seen %.2f K), %zu violations, "
      "%zu dropped / %zu delayed transitions\n"
      "       retained %.1f%% of nominal AO throughput\n",
      guarded.guard_band, guarded.final_derate, guarded.polls,
      guarded.fallbacks, guarded.reentries, guarded.replans,
      guarded.saturated ? ", SATURATED" : "", guarded.true_peak_rise,
      guarded.seen_peak_rise, guarded.violations,
      guarded.dropped_transitions, guarded.delayed_transitions,
      guarded.throughput_retained() * 100.0);
  if (guarded.identify_polls == 0) return;
  std::printf("       identify: %zu polls, %s, %zu certified replans",
              guarded.identify_polls,
              guarded.identify_converged ? "converged" : "not converged",
              guarded.identified_replans);
  if (guarded.identified_replans > 0)
    std::printf(", certified band %.2f K", guarded.certified_band);
  std::printf("\n");
  if (!guarded.est_alpha_offset_w.empty()) {
    double max_alpha = 0.0, max_bias = 0.0;
    for (double a : guarded.est_alpha_offset_w)
      max_alpha = std::max(max_alpha, std::abs(a));
    for (double b : guarded.est_bias_k)
      max_bias = std::max(max_bias, std::abs(b));
    std::printf(
        "       estimate: beta x%.3f, r_conv x%.3f, max |alpha| %.2f W, "
        "max |bias| %.2f K\n",
        guarded.est_beta_scale, guarded.est_r_convection_scale, max_alpha,
        max_bias);
  }
}

/// Set by SIGINT/SIGTERM during the serve demo: the workload loop drains
/// early, the service stops cleanly, and a configured snapshot is flushed —
/// an operator's Ctrl-C never loses the cache a restart could warm from.
volatile std::sig_atomic_t g_interrupted = 0;

void handle_interrupt(int) { g_interrupted = 1; }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <config.ini> "
               "[lns|exs|ao|pco|reactive|guard|serve|client|all]\n"
               "       %s <config.ini> serve --listen [host:port]\n"
               "       %s <config.ini> client --connect host:port[,...] "
               "[--requests N] [--health|--ready|--drain]\n",
               argv0, argv0, argv0);
  return 2;
}

bool parse_endpoint(const std::string& spec, serve::net::Endpoint* out) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size())
    return false;
  out->host = spec.substr(0, colon);
  char* end = nullptr;
  const long port = std::strtol(spec.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || port < 1 || port > 65535)
    return false;
  out->port = static_cast<std::uint16_t>(port);
  return true;
}

bool parse_endpoint_list(const std::string& csv,
                         std::vector<serve::net::Endpoint>* out) {
  std::size_t at = 0;
  while (at <= csv.size()) {
    const std::size_t comma = csv.find(',', at);
    const std::string spec = comma == std::string::npos
                                 ? csv.substr(at)
                                 : csv.substr(at, comma - at);
    serve::net::Endpoint endpoint;
    if (!parse_endpoint(spec, &endpoint)) return false;
    out->push_back(endpoint);
    if (comma == std::string::npos) break;
    at = comma + 1;
  }
  return !out->empty();
}

/// One "NAME=count" per nonzero status code — the wire taxonomy surfaced
/// on the command line for both the server and the client side.
void print_status_counters(
    const char* label,
    const std::array<std::uint64_t, serve::kStatusCodeCount>& counts) {
  std::string line;
  for (std::size_t i = 0; i < serve::kStatusCodeCount; ++i) {
    if (counts[i] == 0) continue;
    if (!line.empty()) line += ", ";
    line += serve::status_code_name(static_cast<serve::StatusCode>(i));
    line += '=';
    line += std::to_string(counts[i]);
  }
  std::printf("%s: %s\n", label, line.empty() ? "none" : line.c_str());
}

/// "serve --listen": the networked shard.  Runs until SIGTERM/SIGINT,
/// then drains gracefully (finish in-flight, flush snapshot) and exits 0.
int run_serve_net(const Config& config, const core::Platform& platform,
                  int argc, char** argv) {
  serve::ServiceOptions service_options =
      serve::service_options_from_config(config);
  serve::net::ServerOptions server_options =
      serve::server_options_from_config(config);
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--listen") != 0) continue;
    if (i + 1 >= argc || argv[i + 1][0] == '-') continue;  // keep config
    serve::net::Endpoint endpoint;
    if (!parse_endpoint(argv[i + 1], &endpoint)) {
      std::fprintf(stderr, "error: bad --listen endpoint %s\n", argv[i + 1]);
      return 2;
    }
    server_options.listen_host = endpoint.host;
    server_options.listen_port = endpoint.port;
  }
  // The [serve] snapshot path doubles as the warm/drain file unless [net]
  // overrides it; the restore is deferred to the server so READY can gate
  // on it.
  if (server_options.warm_snapshot_path.empty())
    server_options.warm_snapshot_path = service_options.snapshot_path;
  if (server_options.drain_snapshot_path.empty())
    server_options.drain_snapshot_path = service_options.snapshot_path;
  service_options.warm_load_at_construction = false;

  serve::PlanningService service(service_options);
  serve::net::PlanServer server(service, platform, server_options);
  const std::uint16_t port = server.listen();
  std::printf("listening on %s:%u (%u workers, cache %zu entries)\n",
              server_options.listen_host.c_str(), port,
              service.worker_count(), service.cache().capacity());
  std::fflush(stdout);

  std::signal(SIGINT, handle_interrupt);
  std::signal(SIGTERM, handle_interrupt);
  server.run([] { return g_interrupted != 0; });

  const serve::net::ServerStats net_stats = server.stats();
  const serve::ServiceStats stats = service.stats();
  std::printf("drained: %llu requests, %llu responses, %llu connections "
              "(%llu shed, %llu malformed, %llu timed out)\n",
              static_cast<unsigned long long>(net_stats.requests),
              static_cast<unsigned long long>(net_stats.responses),
              static_cast<unsigned long long>(net_stats.accepted),
              static_cast<unsigned long long>(net_stats.shed_connections),
              static_cast<unsigned long long>(net_stats.malformed_closes),
              static_cast<unsigned long long>(net_stats.timeout_closes));
  std::array<std::uint64_t, serve::kStatusCodeCount> rejections =
      stats.rejections_by_code;
  for (std::size_t i = 0; i < serve::kStatusCodeCount; ++i)
    rejections[i] += net_stats.statuses_by_code[i];
  print_status_counters("statuses", rejections);
  service.stop();
  std::printf("snapshot flushed, exiting\n");
  return 0;
}

/// "client --connect": drive shards over the wire with the demo workload,
/// or send one control operation (--health / --ready / --drain).
int run_net_client(const Config& config, const core::Platform& platform,
                   double t_max, const core::AoOptions& ao_options,
                   int argc, char** argv) {
  std::vector<serve::net::Endpoint> endpoints;
  bool do_health = false, do_ready = false, do_drain = false;
  long requests_override = -1;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      if (!parse_endpoint_list(argv[++i], &endpoints)) {
        std::fprintf(stderr, "error: bad --connect list\n");
        return 2;
      }
    } else if (arg == "--health") {
      do_health = true;
    } else if (arg == "--ready") {
      do_ready = true;
    } else if (arg == "--drain") {
      do_drain = true;
    } else if (arg == "--requests" && i + 1 < argc) {
      requests_override = std::strtol(argv[++i], nullptr, 10);
    }
  }
  if (endpoints.empty()) {
    std::fprintf(stderr, "error: client mode needs --connect host:port\n");
    return 2;
  }
  serve::net::NetClient client(endpoints, platform);

  if (do_health || do_ready || do_drain) {
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
      const std::string label = endpoints[i].label();
      try {
        if (do_drain) {
          client.drain(i);
          std::printf("%s: drain acknowledged\n", label.c_str());
          continue;
        }
        if (do_ready) {
          const serve::net::ReadyInfo info = client.ready(i);
          std::printf("%s: ready=%d draining=%d warm_plans=%llu "
                      "load_failures=%llu\n",
                      label.c_str(), info.ready, info.draining,
                      static_cast<unsigned long long>(info.warm_plans),
                      static_cast<unsigned long long>(info.load_failures));
          continue;
        }
        const serve::net::HealthInfo info = client.health(i);
        std::printf("%s: %s ready=%d draining=%d conns=%llu cache=%llu "
                    "entries (%llu hits / %llu lookups) ewma_plan=%.1f ms "
                    "retry_hint=%.1f ms\n",
                    label.c_str(),
                    serve::load_state_name(
                        static_cast<serve::LoadState>(info.load_state)),
                    info.ready, info.draining,
                    static_cast<unsigned long long>(info.connections),
                    static_cast<unsigned long long>(info.cache_entries),
                    static_cast<unsigned long long>(info.cache_hits),
                    static_cast<unsigned long long>(info.cache_lookups),
                    info.ewma_plan_seconds * 1e3,
                    info.retry_after_hint_s * 1e3);
        print_status_counters(("  " + label + " rejections").c_str(),
                              info.rejections_by_code);
      } catch (const serve::net::NetClientError& error) {
        std::printf("%s: unreachable (%s)\n", label.c_str(), error.what());
      }
    }
    return 0;
  }

  const serve::ServeDemoOptions demo = serve::demo_options_from_config(config);
  const double deadline_s =
      serve::service_options_from_config(config).default_deadline_s;
  long total = static_cast<long>(demo.unique_requests) * demo.repeats;
  if (requests_override > 0) total = requests_override;

  const auto now_s = [] {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  };
  std::uint64_t failures = 0;
  const double start = now_s();
  for (long n = 0; n < total && !g_interrupted; ++n) {
    serve::net::WirePlanRequest request;
    // Same sweep as the in-process demo so shard caches see recurring keys.
    const int point = static_cast<int>(n) % demo.unique_requests;
    request.t_max_c =
        t_max + 5.0 * static_cast<double>(point) /
                    static_cast<double>(std::max(demo.unique_requests, 2) - 1);
    request.ao = ao_options;
    request.deadline_s = deadline_s > 0.0 ? deadline_s : -1.0;
    try {
      (void)client.plan(request);
    } catch (const serve::net::NetClientError& error) {
      ++failures;
      if (failures <= 3)
        std::fprintf(stderr, "request %ld failed: %s\n", n, error.what());
    }
  }
  const double elapsed = now_s() - start;

  const serve::net::ClientStats stats = client.stats();
  std::printf("client: %llu plans in %.3f s (%.1f/s) across %zu shard(s)\n",
              static_cast<unsigned long long>(stats.plans), elapsed,
              static_cast<double>(stats.plans) / std::max(elapsed, 1e-9),
              endpoints.size());
  std::printf("        %llu cache hits, %llu retries, %llu failovers, "
              "%llu reconnects, %llu transport errors\n",
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.retries),
              static_cast<unsigned long long>(stats.failovers),
              static_cast<unsigned long long>(stats.reconnects),
              static_cast<unsigned long long>(stats.transport_errors));
  print_status_counters("        statuses seen", stats.statuses_by_code);
  std::printf("failed requests: %llu\n",
              static_cast<unsigned long long>(failures));
  return failures == 0 ? 0 : 1;
}

/// Stand up the planning service and replay a repeated-request workload
/// against it: `demo.unique_requests` distinct T_max points, each recurring
/// `demo.repeats` times — the recurring-operating-point shape a thermal
/// daemon sees.  Print per-point plans, then the serving statistics.
int run_serve_demo(const Config& config, const core::Platform& platform,
                   double t_max, const core::AoOptions& ao_options) {
  const serve::ServiceOptions options =
      serve::service_options_from_config(config);
  const serve::ServeDemoOptions demo =
      serve::demo_options_from_config(config);
  serve::PlanningService service(options);
  std::signal(SIGINT, handle_interrupt);
  std::signal(SIGTERM, handle_interrupt);
  if (!options.snapshot_path.empty()) {
    const serve::ServiceStats boot = service.stats();
    std::printf("snapshot %s: %llu warm-loaded plan(s), %llu load failure(s)"
                " (%s start)\n",
                options.snapshot_path.c_str(),
                static_cast<unsigned long long>(
                    boot.snapshot_loads > 0 ? boot.cache.entries : 0),
                static_cast<unsigned long long>(boot.snapshot_load_failures),
                boot.snapshot_loads > 0 ? "warm" : "cold");
  }

  const auto now_s = [] {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  };

  auto request_at = [&](int point) {
    serve::PlanRequest request;
    request.platform = platform;
    // Sweep a 5 C window upward from the configured threshold.
    request.t_max_c =
        t_max + 5.0 * static_cast<double>(point) /
                    static_cast<double>(std::max(demo.unique_requests, 2) - 1);
    request.ao = ao_options;
    return request;
  };

  // One serial plan as the cost yardstick for the speedup estimate.
  const double serial_start = now_s();
  const auto serial = serve::plan_direct(request_at(0));
  const double serial_seconds = now_s() - serial_start;

  std::printf("serving %d unique T_max points x %d repeats "
              "(%u workers, cache %zu entries / %zu shards)\n\n",
              demo.unique_requests, demo.repeats, service.worker_count(),
              service.cache().capacity(), service.cache().shard_count());

  TextTable table({"T_max", "throughput", "peak", "m", "certified"});
  std::vector<bool> point_failed(
      static_cast<std::size_t>(demo.unique_requests), false);
  const double start = now_s();
  for (int repeat = 0; repeat < demo.repeats && !g_interrupted; ++repeat) {
    for (int point = 0; point < demo.unique_requests; ++point) {
      const std::size_t slot = static_cast<std::size_t>(point);
      if (point_failed[slot]) continue;
      try {
        const serve::PlanResponse response =
            service.submit(request_at(point)).get();
        if (repeat > 0) continue;  // table shows each point once
        const core::SchedulerResult& r = response.plan->result;
        table.add_row({fmt_celsius(request_at(point).t_max_c),
                       fmt(r.throughput), fmt_celsius(r.peak_celsius),
                       std::to_string(r.m),
                       response.plan->certified_safe ? "yes" : "NO"});
      } catch (const std::exception& error) {
        // Planner failures are per-request: the service delivers them
        // through the future and stays up.  Report the point and move on.
        point_failed[slot] = true;
        if (repeat == 0)
          table.add_row({fmt_celsius(request_at(point).t_max_c),
                         "planner failed", "-", "-", "-"});
      }
    }
  }
  const double elapsed = now_s() - start;
  std::printf("%s\n", table.str().c_str());
  (void)serial;

  const serve::ServiceStats stats = service.stats();
  const double total = static_cast<double>(stats.submitted);
  std::printf("served %.0f requests in %.3f s (%.1f/s); serial planner "
              "would need ~%.3f s (est. %.1fx)\n",
              total, elapsed, total / elapsed, serial_seconds * total,
              serial_seconds * total / elapsed);
  if (stats.failed > 0)
    std::printf("planner failures: %llu (delivered per-request; the "
                "service stays up)\n",
                static_cast<unsigned long long>(stats.failed));
  std::printf("cache: %.1f%% hit rate (%llu hits / %llu lookups), "
              "%llu inserts, %llu evictions\n",
              100.0 * stats.cache.hit_rate(),
              static_cast<unsigned long long>(stats.cache.hits),
              static_cast<unsigned long long>(stats.cache.lookups()),
              static_cast<unsigned long long>(stats.cache.inserts),
              static_cast<unsigned long long>(stats.cache.evictions));
  std::printf("queue: peak depth %zu, %llu planner runs, %llu coalesced, "
              "%llu rejected\n",
              stats.queue_peak,
              static_cast<unsigned long long>(stats.planned),
              static_cast<unsigned long long>(stats.coalesced),
              static_cast<unsigned long long>(stats.rejected_queue_full +
                                              stats.rejected_expired));
  std::printf("resilience: %llu degraded served, %llu shed, %llu breaker "
              "rejections, %llu cancelled mid-plan (ladder %s, %llu "
              "transitions)\n",
              static_cast<unsigned long long>(stats.degraded_served),
              static_cast<unsigned long long>(stats.rejected_overload),
              static_cast<unsigned long long>(stats.breaker_rejections),
              static_cast<unsigned long long>(stats.cancelled_mid_plan),
              serve::load_state_name(stats.load_state),
              static_cast<unsigned long long>(stats.overload_transitions));
  if (!options.snapshot_path.empty())
    std::printf("snapshots: %llu saved, %llu loaded, %llu load failures\n",
                static_cast<unsigned long long>(stats.snapshot_saves),
                static_cast<unsigned long long>(stats.snapshot_loads),
                static_cast<unsigned long long>(stats.snapshot_load_failures));
  const core::AuditCounters::Snapshot audits =
      core::AuditCounters::instance().snapshot();
  std::printf("theorem-2 certificates: %llu issued, %llu proved safe\n",
              static_cast<unsigned long long>(audits.certificates),
              static_cast<unsigned long long>(audits.certified_safe));
  if (g_interrupted) {
    std::printf("interrupted: flushing snapshot and exiting\n");
    service.stop();  // drains the queue and writes the final snapshot
    return 130;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string which = argc > 2 ? argv[2] : "all";

  Config config;
  try {
    config = Config::load(argv[1]);
  } catch (const ConfigError& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  // Surface misspelled keys in known sections (stderr, once per key) —
  // typed getters with defaults would otherwise ignore them silently.
  core::warn_unknown_config_keys(config, serve::serve_known_config_keys());

  try {
    const core::Platform platform = core::platform_from_config(config);
    const double t_max = core::t_max_from_config(config);
    const core::AoOptions ao_options = core::ao_options_from_config(config);

    std::printf("platform %s: %zu cores, %zu thermal nodes, %zu levels, "
                "T_amb = %.1f C, T_max = %.1f C\n\n",
                platform.name.c_str(), platform.num_cores(),
                platform.model->num_nodes(), platform.levels.count(),
                platform.t_ambient_c, t_max);

    bool listen_mode = false;
    for (int i = 3; i < argc; ++i)
      if (std::strcmp(argv[i], "--listen") == 0) listen_mode = true;
    if (which == "serve" && listen_mode)
      return run_serve_net(config, platform, argc, argv);
    if (which == "serve")
      return run_serve_demo(config, platform, t_max, ao_options);
    if (which == "client")
      return run_net_client(config, platform, t_max, ao_options, argc, argv);

    TextTable table({"scheduler", "throughput", "peak", "m", "evals",
                     "time", "feasible"});
    const bool all = which == "all";
    if (all || which == "lns")
      add_result(table, core::run_lns(platform, t_max));
    if (all || which == "exs")
      add_result(table, core::run_exs(platform, t_max));
    if (all || which == "ao")
      add_result(table, core::run_ao(platform, t_max, ao_options));
    if (all || which == "pco") {
      core::PcoOptions pco_options;
      pco_options.ao = ao_options;
      add_result(table, core::run_pco(platform, t_max, pco_options));
    }
    if (all || which == "reactive")
      add_result(table, core::run_reactive(platform, t_max).result);

    const bool want_guard =
        which == "guard" || (all && core::has_faults_config(config));
    core::GuardResult guarded;
    if (want_guard) {
      const sim::FaultSpec faults = core::faults_from_config(config);
      core::GuardOptions guard_options =
          core::guard_options_from_config(config);
      guard_options.ao = ao_options;
      guarded = core::run_guarded_ao(platform, t_max, faults, guard_options);
      add_result(table, guarded.result);
    }

    if (table.rows() == 0) return usage(argv[0]);
    std::printf("%s", table.str().c_str());
    if (want_guard) print_guard_details(guarded);
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
