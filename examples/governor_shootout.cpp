// governor_shootout: compare all four schedulers on a user-chosen platform.
//
//   $ ./examples/governor_shootout [rows cols t_max_c levels...]
//   $ ./examples/governor_shootout 3 3 55 0.6 0.9 1.3
//
// Prints per-scheduler throughput, peak temperature, wall time, and the
// schedule each governor would program into the DVFS hardware — the
// decision table a kernel engineer would want before picking a policy.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/ao.hpp"
#include "core/exs.hpp"
#include "core/ideal.hpp"
#include "core/lns.hpp"
#include "core/pco.hpp"
#include "util/table.hpp"

using namespace foscil;

namespace {

void print_schedule(const core::SchedulerResult& r) {
  std::printf("%s schedule (period %.3f ms, m = %d):\n", r.scheduler.c_str(),
              r.schedule.period() * 1e3, r.m);
  for (std::size_t i = 0; i < r.schedule.num_cores(); ++i) {
    std::printf("  core %zu:", i);
    for (const auto& seg : r.schedule.core_segments(i))
      std::printf(" %6.3fms@%.2fV", seg.duration * 1e3, seg.voltage);
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t rows =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 2;
  const std::size_t cols =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 3;
  const double t_max_c = argc > 3 ? std::atof(argv[3]) : 55.0;
  std::vector<double> levels;
  for (int i = 4; i < argc; ++i) levels.push_back(std::atof(argv[i]));
  if (levels.empty()) levels = {0.6, 1.3};

  const core::Platform platform = core::make_grid_platform(
      rows, cols, power::VoltageLevels(levels));
  std::printf("governor shootout on %s (%zu cores), T_max = %.1f C, "
              "%zu DVFS levels\n\n",
              platform.name.c_str(), platform.num_cores(), t_max_c,
              platform.levels.count());

  const core::IdealVoltages ideal = core::ideal_constant_voltages(
      *platform.model, platform.rise_budget(t_max_c),
      platform.levels.highest());
  double ideal_thr = 0.0;
  for (std::size_t i = 0; i < platform.num_cores(); ++i)
    ideal_thr += ideal.voltages[i];
  ideal_thr /= static_cast<double>(platform.num_cores());

  const core::SchedulerResult lns = core::run_lns(platform, t_max_c);
  const core::SchedulerResult exs = core::run_exs(platform, t_max_c);
  const core::SchedulerResult ao = core::run_ao(platform, t_max_c);
  const core::SchedulerResult pco = core::run_pco(platform, t_max_c);

  TextTable table({"governor", "throughput", "% of ideal", "peak",
                   "headroom", "evals", "time"});
  for (const auto* r : {&lns, &exs, &ao, &pco}) {
    table.add_row(
        {r->scheduler, fmt(r->throughput),
         fmt(100.0 * r->throughput / ideal_thr, 1) + "%",
         fmt_celsius(r->peak_celsius),
         fmt(t_max_c - r->peak_celsius, 2) + " K",
         std::to_string(r->evaluations), fmt(r->seconds * 1e3, 1) + " ms"});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("continuous-ideal throughput bound: %.4f\n\n", ideal_thr);

  print_schedule(ao);
  std::printf("\n");
  print_schedule(pco);
  return 0;
}
