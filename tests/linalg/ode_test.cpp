#include "linalg/ode.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/spectral.hpp"
#include "util/rng.hpp"

namespace foscil::linalg {
namespace {

TEST(Rk4, ScalarDecayMatchesClosedForm) {
  // dx/dt = -2x + 4, x(0) = 0  =>  x(t) = 2(1 - e^{-2t}).
  const Matrix a{{-2.0}};
  const Vector b{4.0};
  const Vector x = rk4_integrate(a, b, Vector{0.0}, 1.5, 300);
  EXPECT_NEAR(x[0], 2.0 * (1.0 - std::exp(-3.0)), 1e-10);
}

TEST(Rk4, ZeroDurationReturnsInitialState) {
  const Matrix a{{-1.0, 0.5}, {0.5, -2.0}};
  const Vector x0{3.0, -1.0};
  const Vector x = rk4_integrate(a, Vector{0.0, 0.0}, x0, 0.0, 1);
  EXPECT_EQ(x[0], 3.0);
  EXPECT_EQ(x[1], -1.0);
}

TEST(Rk4, MatchesSpectralSolutionOnStableSystem) {
  // Independent cross-validation of the production path: RK4 vs the exact
  // e^{At} x0 + phi(t) b evaluation.
  Rng rng(811);
  const std::size_t n = 6;
  Matrix s(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = r; c < n; ++c) {
      const double v = rng.uniform(-0.4, 0.4);
      s(r, c) = v;
      s(c, r) = v;
    }
  for (std::size_t i = 0; i < n; ++i) s(i, i) -= 3.0;
  Vector caps(n);
  for (std::size_t i = 0; i < n; ++i) caps[i] = rng.uniform(0.2, 2.0);
  const SpectralDecomposition spec(s, caps);
  const Matrix a = spec.matrix();

  Vector b(n);
  Vector x0(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = rng.uniform(0.0, 3.0);
    x0[i] = rng.uniform(0.0, 1.0);
  }
  const double t_end = 0.9;
  Vector exact = spec.exp_apply(t_end, x0);
  exact += spec.phi_apply(t_end, b);
  const Vector numeric = rk4_integrate(a, b, x0, t_end, 4000);
  EXPECT_LT((exact - numeric).inf_norm(), 1e-9);
}

TEST(Rk4, FourthOrderConvergence) {
  // Halving the step size should shrink the error by ~16x.
  const Matrix a{{-1.0, 0.3}, {0.3, -1.5}};
  const Vector b{1.0, 0.5};
  const Vector x0{0.2, 0.1};
  const Vector caps{1.0, 1.0};
  const SpectralDecomposition spec(a, caps);  // a itself symmetric here
  Vector exact = spec.exp_apply(2.0, x0);
  exact += spec.phi_apply(2.0, b);

  const double err_coarse =
      (rk4_integrate(a, b, x0, 2.0, 20) - exact).inf_norm();
  const double err_fine =
      (rk4_integrate(a, b, x0, 2.0, 40) - exact).inf_norm();
  EXPECT_GT(err_coarse / err_fine, 10.0);
  EXPECT_LT(err_coarse / err_fine, 24.0);
}

TEST(Rk4, TimeVaryingInputReducesToConstantCase) {
  const Matrix a{{-1.2, 0.1}, {0.1, -0.8}};
  const Vector b{2.0, 1.0};
  const Vector x0{0.0, 0.0};
  const Vector via_const = rk4_integrate(a, b, x0, 1.0, 500);
  const Vector via_fn = rk4_integrate_varying(
      a, [&](double) { return b; }, x0, 1.0, 500);
  EXPECT_LT((via_const - via_fn).inf_norm(), 1e-13);
}

TEST(Rk4, TimeVaryingInputMatchesSuperposition) {
  // For b(t) = b0 * t the solution is the convolution integral; validate
  // against a much finer integration of the same input.
  const Matrix a{{-2.0, 0.5}, {0.5, -1.0}};
  const Vector b0{1.0, 3.0};
  auto input = [&](double t) { return t * b0; };
  const Vector x0{0.0, 0.0};
  const Vector coarse = rk4_integrate_varying(a, input, x0, 1.0, 200);
  const Vector fine = rk4_integrate_varying(a, input, x0, 1.0, 4000);
  EXPECT_LT((coarse - fine).inf_norm(), 1e-9);
}

TEST(Rk4, InvalidArgumentsViolateContract) {
  const Matrix a{{-1.0}};
  EXPECT_THROW((void)rk4_integrate(a, Vector{1.0}, Vector{0.0}, -1.0, 10),
               ContractViolation);
  EXPECT_THROW((void)rk4_integrate(a, Vector{1.0}, Vector{0.0}, 1.0, 0),
               ContractViolation);
  EXPECT_THROW(
      (void)rk4_integrate(a, Vector{1.0, 2.0}, Vector{0.0}, 1.0, 10),
      ContractViolation);
  EXPECT_THROW((void)rk4_integrate(Matrix(2, 3), Vector{1.0, 2.0},
                                   Vector{0.0, 0.0}, 1.0, 10),
               ContractViolation);
}

}  // namespace
}  // namespace foscil::linalg
