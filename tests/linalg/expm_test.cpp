#include "linalg/expm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/lu.hpp"
#include "util/rng.hpp"

namespace foscil::linalg {
namespace {

TEST(Expm, ZeroMatrixGivesIdentity) {
  EXPECT_TRUE(allclose(expm(Matrix(4, 4)), Matrix::identity(4), 1e-14, 1e-14));
}

TEST(Expm, DiagonalMatrixExponentiatesElementwise) {
  const Matrix d = Matrix::diagonal(Vector{1.0, -2.0, 0.5});
  const Matrix e = expm(d);
  EXPECT_NEAR(e(0, 0), std::exp(1.0), 1e-13);
  EXPECT_NEAR(e(1, 1), std::exp(-2.0), 1e-13);
  EXPECT_NEAR(e(2, 2), std::exp(0.5), 1e-13);
  EXPECT_NEAR(e(0, 1), 0.0, 1e-14);
}

TEST(Expm, NilpotentMatrixTruncatesSeries) {
  // For strictly upper triangular N, e^N = I + N + N^2/2 exactly.
  const Matrix n{{0.0, 1.0, 2.0}, {0.0, 0.0, 3.0}, {0.0, 0.0, 0.0}};
  const Matrix e = expm(n);
  EXPECT_NEAR(e(0, 1), 1.0, 1e-13);
  EXPECT_NEAR(e(0, 2), 2.0 + 1.5, 1e-13);  // N + N^2/2
  EXPECT_NEAR(e(1, 2), 3.0, 1e-13);
  EXPECT_NEAR(e(0, 0), 1.0, 1e-13);
}

TEST(Expm, RotationGeneratorGivesSineCosine) {
  // exp(t * [[0, -1], [1, 0]]) is a rotation by t.
  const Matrix j{{0.0, -1.0}, {1.0, 0.0}};
  const double t = 0.7;
  const Matrix r = expm(j, t);
  EXPECT_NEAR(r(0, 0), std::cos(t), 1e-13);
  EXPECT_NEAR(r(0, 1), -std::sin(t), 1e-13);
  EXPECT_NEAR(r(1, 0), std::sin(t), 1e-13);
  EXPECT_NEAR(r(1, 1), std::cos(t), 1e-13);
}

TEST(Expm, SemigroupPropertyUnderScaling) {
  Rng rng(31);
  const std::size_t n = 6;
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
  const Matrix half = expm(a, 0.5);
  EXPECT_TRUE(allclose(half * half, expm(a), 1e-9, 1e-11));
}

TEST(Expm, LargeNormTriggersSquaringAndStaysAccurate) {
  // ||A|| well above theta_13 exercises the scaling/squaring path; compare
  // against the semigroup identity with a smaller step.
  Rng rng(33);
  const std::size_t n = 5;
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-4.0, 4.0);
  const Matrix tenth = expm(a, 0.1);
  Matrix composed = Matrix::identity(n);
  for (int i = 0; i < 10; ++i) composed = composed * tenth;
  EXPECT_TRUE(allclose(composed, expm(a), 1e-7, 1e-9));
}

TEST(Expm, InverseIsExpOfNegative) {
  Rng rng(35);
  const std::size_t n = 4;
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
  const Matrix product = expm(a) * expm(-1.0 * a);
  EXPECT_TRUE(allclose(product, Matrix::identity(n), 1e-10, 1e-12));
}

TEST(Expm, DeterminantEqualsExpTrace) {
  // det(e^A) = e^{tr A} (Jacobi's formula) — a strong global check.
  Rng rng(37);
  const std::size_t n = 5;
  Matrix a(n, n);
  double trace = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-0.8, 0.8);
    trace += a(r, r);
  }
  const double det = LuDecomposition(expm(a)).determinant();
  EXPECT_NEAR(det, std::exp(trace), 1e-9 * std::exp(trace));
}

TEST(Expm, NonSquareViolatesContract) {
  EXPECT_THROW((void)expm(Matrix(2, 3)), ContractViolation);
}

}  // namespace
}  // namespace foscil::linalg
