#include "linalg/eigen_sym.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace foscil::linalg {
namespace {

Matrix random_symmetric(Rng& rng, std::size_t n, double diag_boost = 0.0) {
  Matrix s(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = r; c < n; ++c) {
      const double value = rng.uniform(-1.0, 1.0);
      s(r, c) = value;
      s(c, r) = value;
    }
  for (std::size_t i = 0; i < n; ++i) s(i, i) += diag_boost;
  return s;
}

TEST(EigenSym, DiagonalMatrixIsItsOwnDecomposition) {
  const Matrix d = Matrix::diagonal(Vector{3.0, -1.0, 2.0});
  const SymmetricEigen eig = eigen_symmetric(d);
  EXPECT_NEAR(eig.eigenvalues[0], -1.0, 1e-14);
  EXPECT_NEAR(eig.eigenvalues[1], 2.0, 1e-14);
  EXPECT_NEAR(eig.eigenvalues[2], 3.0, 1e-14);
}

TEST(EigenSym, KnownTwoByTwo) {
  // Eigenvalues of [[2, 1], [1, 2]] are 1 and 3.
  const Matrix s{{2.0, 1.0}, {1.0, 2.0}};
  const SymmetricEigen eig = eigen_symmetric(s);
  EXPECT_NEAR(eig.eigenvalues[0], 1.0, 1e-13);
  EXPECT_NEAR(eig.eigenvalues[1], 3.0, 1e-13);
}

TEST(EigenSym, ReconstructsInput) {
  Rng rng(11);
  for (std::size_t n : {2u, 5u, 13u, 24u}) {
    const Matrix s = random_symmetric(rng, n);
    const SymmetricEigen eig = eigen_symmetric(s);
    const Matrix lambda = Matrix::diagonal(eig.eigenvalues);
    const Matrix rebuilt =
        eig.eigenvectors * lambda * eig.eigenvectors.transposed();
    EXPECT_TRUE(allclose(rebuilt, s, 1e-9, 1e-10)) << "n=" << n;
  }
}

TEST(EigenSym, EigenvectorsAreOrthonormal) {
  Rng rng(13);
  const Matrix s = random_symmetric(rng, 10);
  const SymmetricEigen eig = eigen_symmetric(s);
  const Matrix qtq = eig.eigenvectors.transposed() * eig.eigenvectors;
  EXPECT_TRUE(allclose(qtq, Matrix::identity(10), 1e-10, 1e-11));
}

TEST(EigenSym, EigenvaluesAscending) {
  Rng rng(17);
  const Matrix s = random_symmetric(rng, 16);
  const SymmetricEigen eig = eigen_symmetric(s);
  for (std::size_t i = 0; i + 1 < eig.eigenvalues.size(); ++i)
    EXPECT_LE(eig.eigenvalues[i], eig.eigenvalues[i + 1]);
}

TEST(EigenSym, EigenvalueSumEqualsTrace) {
  Rng rng(19);
  const Matrix s = random_symmetric(rng, 12);
  const SymmetricEigen eig = eigen_symmetric(s);
  double trace = 0.0;
  for (std::size_t i = 0; i < 12; ++i) trace += s(i, i);
  EXPECT_NEAR(eig.eigenvalues.sum(), trace, 1e-10);
}

TEST(EigenSym, EachPairSatisfiesDefinition) {
  Rng rng(23);
  const std::size_t n = 9;
  const Matrix s = random_symmetric(rng, n);
  const SymmetricEigen eig = eigen_symmetric(s);
  for (std::size_t j = 0; j < n; ++j) {
    Vector v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = eig.eigenvectors(i, j);
    const Vector sv = s * v;
    const Vector lv = eig.eigenvalues[j] * v;
    EXPECT_LT((sv - lv).inf_norm(), 1e-10) << "pair " << j;
  }
}

TEST(EigenSym, RepeatedEigenvaluesHandled) {
  // 3x3 identity scaled: triple eigenvalue.
  const Matrix s = 4.0 * Matrix::identity(3);
  const SymmetricEigen eig = eigen_symmetric(s);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_NEAR(eig.eigenvalues[i], 4.0, 1e-14);
}

TEST(EigenSym, AsymmetricInputViolatesContract) {
  const Matrix s{{1.0, 2.0}, {3.0, 1.0}};
  EXPECT_THROW((void)eigen_symmetric(s), ContractViolation);
}

TEST(EigenSym, NegativeDefiniteLaplacianStyleMatrix) {
  // -Laplacian of a path graph plus ground: all eigenvalues negative, like
  // the thermal system matrices this solver exists for.
  Matrix s(4, 4);
  for (std::size_t i = 0; i < 4; ++i) s(i, i) = -2.1;
  for (std::size_t i = 0; i + 1 < 4; ++i) {
    s(i, i + 1) = 1.0;
    s(i + 1, i) = 1.0;
  }
  const SymmetricEigen eig = eigen_symmetric(s);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_LT(eig.eigenvalues[i], 0.0);
}

TEST(EigenSym, ExhaustedSweepBudgetThrowsDiagnosableError) {
  // A zero sweep budget cannot annihilate any off-diagonal energy, so the
  // solver must fail — with a payload that reconstructs the failure
  // (matrix size, sweeps spent, leftover energy, norm) instead of an
  // opaque assert.
  const Matrix s{{2.0, 1.0}, {1.0, 2.0}};
  try {
    (void)eigen_symmetric(s, 1e-8, 0);
    FAIL() << "expected EigenConvergenceError";
  } catch (const EigenConvergenceError& e) {
    EXPECT_EQ(e.size(), 2u);
    EXPECT_EQ(e.sweeps(), 0);
    EXPECT_NEAR(e.off_energy(), 2.0, 1e-12);  // two off-diagonal 1.0 entries
    EXPECT_NEAR(e.inf_norm(), 3.0, 1e-12);
    EXPECT_NE(std::string(e.what()).find("sweep"), std::string::npos);
  }
  // A diagonal matrix needs no sweeps at all: zero budget still succeeds.
  EXPECT_NO_THROW((void)eigen_symmetric(Matrix::diagonal(Vector{1.0, 2.0}),
                                        1e-8, 0));
  // The error is catchable as std::runtime_error by callers that do not
  // know linalg types (e.g. code wrapping ThermalModel construction).
  EXPECT_THROW((void)eigen_symmetric(s, 1e-8, 0), std::runtime_error);
}

}  // namespace
}  // namespace foscil::linalg
