#include "linalg/spectral.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/expm.hpp"
#include "util/rng.hpp"

namespace foscil::linalg {
namespace {

struct System {
  Matrix s;   // symmetric
  Vector c;   // positive diagonal capacitances
};

System random_stable_system(Rng& rng, std::size_t n) {
  System sys;
  sys.s = Matrix(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t col = r; col < n; ++col) {
      const double value = rng.uniform(-0.5, 0.5);
      sys.s(r, col) = value;
      sys.s(col, r) = value;
    }
  // Shift to negative definite (stable thermal dynamics).
  for (std::size_t i = 0; i < n; ++i) sys.s(i, i) -= 2.0 + 0.5 * static_cast<double>(n);
  sys.c = Vector(n);
  for (std::size_t i = 0; i < n; ++i) sys.c[i] = rng.uniform(0.1, 5.0);
  return sys;
}

TEST(Spectral, ReconstructsSystemMatrix) {
  Rng rng(3);
  const System sys = random_stable_system(rng, 7);
  const SpectralDecomposition spec(sys.s, sys.c);
  Matrix a(7, 7);
  for (std::size_t r = 0; r < 7; ++r)
    for (std::size_t c = 0; c < 7; ++c) a(r, c) = sys.s(r, c) / sys.c[r];
  EXPECT_TRUE(allclose(spec.matrix(), a, 1e-9, 1e-11));
}

TEST(Spectral, StableWhenNegativeDefinite) {
  Rng rng(5);
  const System sys = random_stable_system(rng, 6);
  const SpectralDecomposition spec(sys.s, sys.c);
  EXPECT_TRUE(spec.stable());
  for (double lambda : spec.eigenvalues()) EXPECT_LT(lambda, 0.0);
}

TEST(Spectral, DetectsUnstableSystem) {
  const Matrix s{{1.0, 0.0}, {0.0, -1.0}};  // one positive eigenvalue
  const SpectralDecomposition spec(s, Vector{1.0, 1.0});
  EXPECT_FALSE(spec.stable());
}

TEST(Spectral, WTimesWInverseIsIdentity) {
  Rng rng(7);
  const System sys = random_stable_system(rng, 9);
  const SpectralDecomposition spec(sys.s, sys.c);
  EXPECT_TRUE(allclose(spec.w() * spec.w_inverse(), Matrix::identity(9),
                       1e-9, 1e-10));
}

TEST(Spectral, ExpAtZeroIsIdentity) {
  Rng rng(9);
  const System sys = random_stable_system(rng, 5);
  const SpectralDecomposition spec(sys.s, sys.c);
  EXPECT_TRUE(allclose(spec.exp(0.0), Matrix::identity(5), 1e-12, 1e-12));
}

TEST(Spectral, ExpMatchesPadeExpm) {
  Rng rng(11);
  for (std::size_t n : {3u, 8u, 15u}) {
    const System sys = random_stable_system(rng, n);
    const SpectralDecomposition spec(sys.s, sys.c);
    for (double t : {1e-3, 0.1, 2.0}) {
      const Matrix via_spectral = spec.exp(t);
      const Matrix via_pade = expm(spec.matrix(), t);
      EXPECT_TRUE(allclose(via_spectral, via_pade, 1e-8, 1e-10))
          << "n=" << n << " t=" << t;
    }
  }
}

TEST(Spectral, ExpSemigroupProperty) {
  Rng rng(13);
  const System sys = random_stable_system(rng, 6);
  const SpectralDecomposition spec(sys.s, sys.c);
  const Matrix two_steps = spec.exp(0.3) * spec.exp(0.7);
  EXPECT_TRUE(allclose(two_steps, spec.exp(1.0), 1e-10, 1e-12));
}

TEST(Spectral, ExpApplyMatchesDenseExp) {
  Rng rng(15);
  const System sys = random_stable_system(rng, 10);
  const SpectralDecomposition spec(sys.s, sys.c);
  Vector x(10);
  for (std::size_t i = 0; i < 10; ++i) x[i] = rng.uniform(-1.0, 1.0);
  const Vector fast = spec.exp_apply(0.42, x);
  const Vector dense = spec.exp(0.42) * x;
  EXPECT_LT((fast - dense).inf_norm(), 1e-11);
}

TEST(Spectral, PhiApplySolvesConstantInputOde) {
  // For dT/dt = A T + b with T(0) = 0, the exact solution is
  // T(t) = phi(t) b; cross-check against a fine explicit-Euler integration.
  Rng rng(17);
  const System sys = random_stable_system(rng, 4);
  const SpectralDecomposition spec(sys.s, sys.c);
  const Matrix a = spec.matrix();
  Vector b(4);
  for (std::size_t i = 0; i < 4; ++i) b[i] = rng.uniform(0.0, 2.0);

  const double t_end = 0.8;
  const int steps = 200000;
  const double h = t_end / steps;
  Vector t_euler(4);
  for (int s = 0; s < steps; ++s) {
    Vector dt = a * t_euler;
    dt += b;
    dt *= h;
    t_euler += dt;
  }
  const Vector exact = spec.phi_apply(t_end, b);
  EXPECT_LT((exact - t_euler).inf_norm(), 1e-4);
}

TEST(Spectral, PhiFactorNearZeroMatchesHighPrecisionSeries) {
  // phi_factor switches to the truncated series t(1 + lambda t / 2) below
  // |lambda| = 1e-14, where expm1(lambda t)/lambda loses all digits.  Pin
  // both branches against a long-double Taylor evaluation of
  // (e^{lambda t} - 1)/lambda = t (1 + lt/2 + (lt)^2/6 + (lt)^3/24 + ...).
  const auto series = [](double lambda, double t) {
    const long double lt = static_cast<long double>(lambda) * t;
    long double sum = 1.0L;
    long double term = 1.0L;
    for (int k = 2; k <= 20; ++k) {
      term *= lt / k;
      sum += term;
    }
    return static_cast<double>(static_cast<long double>(t) * sum);
  };
  const double t = 0.37;
  for (const double lambda :
       {0.0, 1e-18, -1e-18, 1e-15, -1e-15, 9e-15, -9e-15, 2e-14, -2e-14,
        1e-10, -1e-10, 1e-3, -1e-3, -2.5}) {
    const double expect = series(lambda, t);
    const double got = phi_factor(lambda, t);
    EXPECT_NEAR(got, expect, 1e-13 * std::abs(expect))
        << "lambda " << lambda;
  }
}

TEST(Spectral, PhiFactorIsContinuousAcrossBranchThreshold) {
  // Crossing the 1e-14 branch point must not produce a jump: the series and
  // expm1 forms agree to roundoff in the overlap region.
  const double t = 1.3;
  const double below = phi_factor(0.99e-14, t);   // series branch
  const double above = phi_factor(1.01e-14, t);   // expm1 branch
  EXPECT_NEAR(below, above, 1e-12 * t);
  // Both sides sit within roundoff of the lambda -> 0 limit, which is t.
  EXPECT_NEAR(below, t, 1e-12 * t);
  EXPECT_NEAR(above, t, 1e-12 * t);
}

TEST(Spectral, PhiApproachesMinusAInverseForLargeT) {
  // phi(t) b -> -A^{-1} b as t -> inf (the steady state).
  Rng rng(19);
  const System sys = random_stable_system(rng, 5);
  const SpectralDecomposition spec(sys.s, sys.c);
  Vector b(5);
  for (std::size_t i = 0; i < 5; ++i) b[i] = rng.uniform(0.5, 1.5);
  const Vector at_inf = spec.phi_apply(1e6, b);
  // Steady state solves A T = -b.
  const Vector residual = spec.matrix() * at_inf + b;
  EXPECT_LT(residual.inf_norm(), 1e-7);
}

TEST(Spectral, NonPositiveCapacitanceViolatesContract) {
  const Matrix s = -1.0 * Matrix::identity(2);
  EXPECT_THROW(SpectralDecomposition(s, Vector{1.0, 0.0}),
               ContractViolation);
  EXPECT_THROW(SpectralDecomposition(s, Vector{1.0, -2.0}),
               ContractViolation);
}

}  // namespace
}  // namespace foscil::linalg
