// Numerical hardening: larger problems and nastier conditioning than the
// module unit tests, sized to the biggest platforms the library builds
// (3x3 x multiple tiers => ~40 nodes).
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/eigen_sym.hpp"
#include "linalg/expm.hpp"
#include "linalg/lu.hpp"
#include "linalg/spectral.hpp"
#include "util/rng.hpp"

namespace foscil::linalg {
namespace {

TEST(Hardening, JacobiOnFortyByForty) {
  Rng rng(1401);
  const std::size_t n = 40;
  Matrix s(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = r; c < n; ++c) {
      const double v = rng.uniform(-1.0, 1.0);
      s(r, c) = v;
      s(c, r) = v;
    }
  const SymmetricEigen eig = eigen_symmetric(s);
  const Matrix rebuilt = eig.eigenvectors *
                         Matrix::diagonal(eig.eigenvalues) *
                         eig.eigenvectors.transposed();
  EXPECT_TRUE(allclose(rebuilt, s, 1e-8, 1e-9));
  EXPECT_TRUE(allclose(eig.eigenvectors.transposed() * eig.eigenvectors,
                       Matrix::identity(n), 1e-9, 1e-10));
}

TEST(Hardening, JacobiWithWideEigenvalueSpread) {
  // Thermal matrices have time constants spanning ms..tens of seconds:
  // eigenvalues across ~5 orders of magnitude.  Build such a spectrum
  // explicitly and verify it is recovered.
  Rng rng(1403);
  const std::size_t n = 12;
  Vector lambda(n);
  for (std::size_t i = 0; i < n; ++i)
    lambda[i] = -std::pow(10.0, -2.0 + 0.5 * static_cast<double>(i));
  // Random orthogonal Q from Jacobi of a random symmetric matrix.
  Matrix seed(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = r; c < n; ++c) {
      const double v = rng.uniform(-1.0, 1.0);
      seed(r, c) = v;
      seed(c, r) = v;
    }
  const Matrix q = eigen_symmetric(seed).eigenvectors;
  const Matrix s = q * Matrix::diagonal(lambda) * q.transposed();

  const SymmetricEigen eig = eigen_symmetric(s);
  // Eigenvalues ascend; ours were built descending in magnitude.
  for (std::size_t i = 0; i < n; ++i) {
    const double expected = lambda[n - 1 - i];
    EXPECT_NEAR(eig.eigenvalues[i], expected,
                1e-9 * std::abs(expected) + 1e-12)
        << i;
  }
}

TEST(Hardening, LuNearSingularStillSolvesAccurately) {
  // Condition number ~1e10: solutions should still carry ~6 good digits.
  const double eps = 1e-10;
  const Matrix a{{1.0, 1.0}, {1.0, 1.0 + eps}};
  const Vector b{2.0, 2.0 + eps};  // exact solution [1, 1]
  const Vector x = solve(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-4);
  EXPECT_NEAR(x[1], 1.0, 1e-4);
  // Residual is small even when the solution wobbles.
  EXPECT_LT((a * x - b).inf_norm(), 1e-12);
}

TEST(Hardening, SpectralOnStiffThermalScaleSystem) {
  // Capacitances spanning 4.2e-3 .. 27 J/K (die vs sink rim) with
  // conductances ~0.1..10 W/K: the realistic stiffness of our platforms.
  Rng rng(1405);
  const std::size_t n = 20;
  Matrix s(n, n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double g = rng.uniform(0.1, 10.0);
    s(i, i) -= g;
    s(i + 1, i + 1) -= g;
    s(i, i + 1) += g;
    s(i + 1, i) += g;
  }
  for (std::size_t i = 0; i < n; ++i) s(i, i) -= rng.uniform(0.1, 1.0);
  Vector caps(n);
  for (std::size_t i = 0; i < n; ++i)
    caps[i] = std::pow(10.0, rng.uniform(-2.5, 1.5));

  const SpectralDecomposition spec(s, caps);
  ASSERT_TRUE(spec.stable());
  for (double t : {1e-4, 1e-2, 1.0, 100.0}) {
    const Matrix via_pade = expm(spec.matrix(), t);
    EXPECT_TRUE(allclose(spec.exp(t), via_pade, 1e-6, 1e-8)) << t;
  }
}

TEST(Hardening, ExpmOfStronglyNonNormalMatrix) {
  // Non-normal matrices are where naive eigen-based exponentials die;
  // the Pade path must stay accurate.  Compare against the semigroup
  // identity with many small steps.
  const Matrix a{{-1.0, 100.0}, {0.0, -2.0}};
  Matrix composed = Matrix::identity(2);
  const Matrix small = expm(a, 1.0 / 64.0);
  for (int i = 0; i < 64; ++i) composed = composed * small;
  EXPECT_TRUE(allclose(composed, expm(a), 1e-9, 1e-11));
}

}  // namespace
}  // namespace foscil::linalg
