#include "linalg/rls.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>

#include "util/rng.hpp"

namespace foscil::linalg {
namespace {

// Deterministic regressor stream that excites every direction.
Vector regressor(int k) {
  return Vector{1.0, std::sin(0.37 * k), std::cos(0.91 * k)};
}

double truth(const Vector& phi) {
  const Vector theta{1.5, -2.0, 0.5};
  return dot(phi, theta);
}

TEST(Rls, RecoversNoiseFreeRegression) {
  RlsEstimator est(3, 10.0);
  for (int k = 0; k < 200; ++k) {
    const Vector phi = regressor(k);
    est.update(phi, truth(phi));
  }
  // The zero prior (sigma 10) shrinks the estimate by O(1/(N sigma^2)).
  EXPECT_NEAR(est.theta()[0], 1.5, 1e-3);
  EXPECT_NEAR(est.theta()[1], -2.0, 1e-3);
  EXPECT_NEAR(est.theta()[2], 0.5, 1e-3);
  EXPECT_EQ(est.updates(), 200u);
}

TEST(Rls, SigmaStartsAtPriorAndContracts) {
  RlsEstimator est(3, 2.0);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(est.sigma(i), 2.0);
  EXPECT_DOUBLE_EQ(est.max_sigma(), 2.0);
  for (int k = 0; k < 100; ++k) {
    const Vector phi = regressor(k);
    est.update(phi, truth(phi));
  }
  // Pure OLS (forgetting 1) never inflates the covariance.
  EXPECT_LT(est.max_sigma(), 0.5);
}

TEST(Rls, NoisyEstimateConvergesNearTruth) {
  Rng rng(11);
  RlsEstimator est(3, 10.0);
  for (int k = 0; k < 4000; ++k) {
    const Vector phi = regressor(k);
    est.update(phi, truth(phi) + rng.uniform(-0.1, 0.1));
  }
  EXPECT_NEAR(est.theta()[0], 1.5, 0.05);
  EXPECT_NEAR(est.theta()[1], -2.0, 0.05);
  EXPECT_NEAR(est.theta()[2], 0.5, 0.05);
}

TEST(Rls, ForgettingTracksAPlantStep) {
  RlsEstimator est(1, 10.0, 0.95);
  for (int k = 0; k < 300; ++k) est.update(Vector{1.0}, 2.0);
  EXPECT_NEAR(est.theta()[0], 2.0, 1e-6);
  // The plant steps to a new gain; discounting lets the estimate follow.
  for (int k = 0; k < 300; ++k) est.update(Vector{1.0}, 5.0);
  EXPECT_NEAR(est.theta()[0], 5.0, 0.01);
}

TEST(Rls, CovarianceResetReopensTheGain) {
  RlsEstimator est(1, 10.0);
  for (int k = 0; k < 500; ++k) est.update(Vector{1.0}, 2.0);
  EXPECT_NEAR(est.theta()[0], 2.0, 1e-4);
  const double wound_down = est.sigma(0);
  EXPECT_LT(wound_down, 0.5);

  // Without a reset, OLS barely moves off 2 after a regime change...
  RlsEstimator stale = est;
  for (int k = 0; k < 100; ++k) stale.update(Vector{1.0}, 5.0);
  // ...with a reset it re-converges like a fresh estimator.
  est.reset_covariance(10.0);
  EXPECT_DOUBLE_EQ(est.sigma(0), 10.0);
  for (int k = 0; k < 100; ++k) est.update(Vector{1.0}, 5.0);
  EXPECT_NEAR(est.theta()[0], 5.0, 0.01);
  EXPECT_GT(std::abs(stale.theta()[0] - 5.0),
            10.0 * std::abs(est.theta()[0] - 5.0));
}

TEST(Rls, PerParameterPriorTightensOneDirection) {
  RlsEstimator est(3, 1.0);
  est.set_prior_sigma(1, 0.05);
  EXPECT_DOUBLE_EQ(est.sigma(0), 1.0);
  EXPECT_DOUBLE_EQ(est.sigma(1), 0.05);
  EXPECT_DOUBLE_EQ(est.sigma(2), 1.0);

  // Two collinear explanations for the same data: the tightly-priored
  // parameter keeps (almost) none of the mass.
  for (int k = 0; k < 200; ++k) est.update(Vector{0.0, 1.0, 1.0}, 1.0);
  EXPECT_LT(std::abs(est.theta()[1]), 0.01);
  EXPECT_NEAR(est.theta()[2], 1.0, 0.01);
}

TEST(Rls, AllZeroRegressorIsSkipped) {
  RlsEstimator est(2, 1.0, 0.9);
  est.update(Vector{0.0, 0.0}, 123.0);
  EXPECT_EQ(est.updates(), 0u);
  // In particular the skipped update must not wind up the covariance
  // through the forgetting division.
  EXPECT_DOUBLE_EQ(est.max_sigma(), 1.0);
}

TEST(Rls, RestoreContinuesBitIdenticallyAfterInterruption) {
  // The warm-restart contract of serve/snapshot: an estimator restored from
  // saved state must produce exactly the trajectory the uninterrupted one
  // would have — bit for bit, since the snapshot stores doubles verbatim.
  RlsEstimator uninterrupted(3, 2.0, 0.995);
  for (int k = 0; k < 60; ++k) {
    const Vector phi = regressor(k);
    uninterrupted.update(phi, truth(phi));
  }
  const Vector saved_theta = uninterrupted.theta();
  const Matrix saved_p = uninterrupted.covariance();
  const std::size_t saved_updates = uninterrupted.updates();

  RlsEstimator revived(3, 2.0, 0.995);
  revived.restore(saved_theta, saved_p, saved_updates);
  EXPECT_EQ(revived.updates(), saved_updates);
  for (int k = 60; k < 120; ++k) {
    const Vector phi = regressor(k);
    uninterrupted.update(phi, truth(phi));
    revived.update(phi, truth(phi));
  }
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(revived.theta()[i]),
              std::bit_cast<std::uint64_t>(uninterrupted.theta()[i]))
        << "theta[" << i << "]";
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_EQ(std::bit_cast<std::uint64_t>(revived.covariance()(r, c)),
                std::bit_cast<std::uint64_t>(
                    uninterrupted.covariance()(r, c)))
          << "P(" << r << "," << c << ")";
}

TEST(Rls, RestoreRejectsMismatchedDimensions) {
  RlsEstimator est(3, 1.0);
  EXPECT_THROW(est.restore(Vector{1.0, 2.0}, Matrix(3, 3), 1),
               ContractViolation);
  EXPECT_THROW(est.restore(Vector{1.0, 2.0, 3.0}, Matrix(2, 2), 1),
               ContractViolation);
  EXPECT_THROW(est.restore(Vector{1.0, 2.0, 3.0}, Matrix(3, 2), 1),
               ContractViolation);
}

TEST(Rls, InvalidConstructionViolatesContract) {
  EXPECT_THROW(RlsEstimator(0, 1.0), ContractViolation);
  EXPECT_THROW(RlsEstimator(2, 0.0), ContractViolation);
  EXPECT_THROW(RlsEstimator(2, 1.0, 0.0), ContractViolation);
  EXPECT_THROW(RlsEstimator(2, 1.0, 1.5), ContractViolation);
}

}  // namespace
}  // namespace foscil::linalg
