#include "linalg/lu.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace foscil::linalg {
namespace {

TEST(Lu, SolvesHandComputedSystem) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Vector b{5.0, 10.0};
  const Vector x = solve(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, SolveResidualIsTiny) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 12));
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
      a(r, r) += static_cast<double>(n);  // diagonally dominant => regular
    }
    Vector b(n);
    for (std::size_t i = 0; i < n; ++i) b[i] = rng.uniform(-5.0, 5.0);
    const Vector x = solve(a, b);
    const Vector residual = a * x - b;
    EXPECT_LT(residual.inf_norm(), 1e-10) << "trial " << trial;
  }
}

TEST(Lu, PivotingHandlesZeroLeadingEntry) {
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const Vector x = solve(a, Vector{2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-14);
  EXPECT_NEAR(x[1], 2.0, 1e-14);
}

TEST(Lu, SingularMatrixThrows) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(LuDecomposition{a}, SingularMatrixError);
}

TEST(Lu, SingularMatrixErrorReportsTheCollapse) {
  // Rank-1 matrix: elimination zeroes the second pivot column.  The payload
  // must say which column died and against what magnitude it was judged.
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  try {
    const LuDecomposition lu(a);
    FAIL() << "expected SingularMatrixError";
  } catch (const SingularMatrixError& e) {
    EXPECT_EQ(e.column(), 1u);
    EXPECT_EQ(e.size(), 2u);
    EXPECT_NEAR(e.pivot(), 0.0, 1e-12);
    EXPECT_NEAR(e.inf_norm(), 6.0, 1e-12);
    EXPECT_NE(std::string(e.what()).find("pivot"), std::string::npos);
  }
  // Catchable generically, so ThermalModel construction surfaces it to
  // callers that only know std::runtime_error.
  EXPECT_THROW(LuDecomposition{a}, std::runtime_error);
}

TEST(Lu, NonSquareViolatesContract) {
  EXPECT_THROW(LuDecomposition{Matrix(2, 3)}, ContractViolation);
}

TEST(Lu, InverseTimesOriginalIsIdentity) {
  Rng rng(21);
  const std::size_t n = 8;
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
    a(r, r) += 4.0;
  }
  const Matrix inv = inverse(a);
  EXPECT_TRUE(allclose(a * inv, Matrix::identity(n), 1e-9, 1e-10));
  EXPECT_TRUE(allclose(inv * a, Matrix::identity(n), 1e-9, 1e-10));
}

TEST(Lu, MatrixRhsSolve) {
  const Matrix a{{3.0, 1.0}, {1.0, 2.0}};
  const Matrix b{{1.0, 0.0}, {0.0, 1.0}};
  const Matrix x = LuDecomposition(a).solve(b);
  EXPECT_TRUE(allclose(a * x, b, 1e-12, 1e-14));
}

TEST(Lu, DeterminantOfTriangularProduct) {
  const Matrix a{{2.0, 1.0}, {0.0, 3.0}};
  EXPECT_NEAR(LuDecomposition(a).determinant(), 6.0, 1e-12);
}

TEST(Lu, DeterminantTracksPermutationSign) {
  // Row-swapped identity has determinant -1.
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_NEAR(LuDecomposition(a).determinant(), -1.0, 1e-12);
}

TEST(Lu, DeterminantMultiplicative) {
  Rng rng(5);
  const std::size_t n = 5;
  Matrix a(n, n);
  Matrix b(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) {
      a(r, c) = rng.uniform(-1.0, 1.0) + (r == c ? 3.0 : 0.0);
      b(r, c) = rng.uniform(-1.0, 1.0) + (r == c ? 3.0 : 0.0);
    }
  const double det_ab = LuDecomposition(a * b).determinant();
  const double det_a = LuDecomposition(a).determinant();
  const double det_b = LuDecomposition(b).determinant();
  EXPECT_NEAR(det_ab, det_a * det_b, 1e-8 * std::abs(det_ab));
}

TEST(Lu, RhsSizeMismatchViolatesContract) {
  const LuDecomposition lu(Matrix::identity(3));
  EXPECT_THROW((void)lu.solve(Vector{1.0, 2.0}), ContractViolation);
}

}  // namespace
}  // namespace foscil::linalg
