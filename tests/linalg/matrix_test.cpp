#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/contracts.hpp"

namespace foscil::linalg {
namespace {

TEST(Vector, ConstructsZeroFilled) {
  const Vector v(4);
  EXPECT_EQ(v.size(), 4u);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(v[i], 0.0);
}

TEST(Vector, InitializerListKeepsOrder) {
  const Vector v{1.0, -2.0, 3.5};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1.0);
  EXPECT_EQ(v[1], -2.0);
  EXPECT_EQ(v[2], 3.5);
}

TEST(Vector, ElementwiseArithmetic) {
  const Vector a{1.0, 2.0, 3.0};
  const Vector b{0.5, -1.0, 2.0};
  const Vector sum = a + b;
  const Vector diff = a - b;
  EXPECT_DOUBLE_EQ(sum[0], 1.5);
  EXPECT_DOUBLE_EQ(sum[1], 1.0);
  EXPECT_DOUBLE_EQ(sum[2], 5.0);
  EXPECT_DOUBLE_EQ(diff[0], 0.5);
  EXPECT_DOUBLE_EQ(diff[1], 3.0);
  EXPECT_DOUBLE_EQ(diff[2], 1.0);
}

TEST(Vector, ScalarScale) {
  Vector v{1.0, -4.0};
  v *= 0.5;
  EXPECT_DOUBLE_EQ(v[0], 0.5);
  EXPECT_DOUBLE_EQ(v[1], -2.0);
  const Vector w = 3.0 * Vector{1.0, 1.0};
  EXPECT_DOUBLE_EQ(w[0], 3.0);
}

TEST(Vector, SizeMismatchViolatesContract) {
  Vector a{1.0, 2.0};
  const Vector b{1.0};
  EXPECT_THROW(a += b, ContractViolation);
  EXPECT_THROW((void)dot(a, b), ContractViolation);
}

TEST(Vector, Reductions) {
  const Vector v{3.0, -7.0, 5.0, 1.0};
  EXPECT_DOUBLE_EQ(v.max(), 5.0);
  EXPECT_DOUBLE_EQ(v.min(), -7.0);
  EXPECT_EQ(v.argmax(), 2u);
  EXPECT_DOUBLE_EQ(v.sum(), 2.0);
  EXPECT_DOUBLE_EQ(v.inf_norm(), 7.0);
  EXPECT_DOUBLE_EQ(v.two_norm(), std::sqrt(9.0 + 49.0 + 25.0 + 1.0));
}

TEST(Vector, EmptyReductionsViolateContract) {
  const Vector empty;
  EXPECT_THROW((void)empty.max(), ContractViolation);
  EXPECT_THROW((void)empty.argmax(), ContractViolation);
}

TEST(Vector, DotProduct) {
  EXPECT_DOUBLE_EQ(dot(Vector{1.0, 2.0, 3.0}, Vector{4.0, -5.0, 6.0}),
                   4.0 - 10.0 + 18.0);
}

TEST(Matrix, NestedInitializerList) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m(2, 1), 6.0);
}

TEST(Matrix, RaggedInitializerViolatesContract) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), ContractViolation);
}

TEST(Matrix, IdentityAndDiagonal) {
  const Matrix eye = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_EQ(eye(r, c), r == c ? 1.0 : 0.0);

  const Matrix d = Matrix::diagonal(Vector{2.0, -1.0});
  EXPECT_EQ(d(0, 0), 2.0);
  EXPECT_EQ(d(1, 1), -1.0);
  EXPECT_EQ(d(0, 1), 0.0);
}

TEST(Matrix, OutOfRangeAccessViolatesContract) {
  const Matrix m(2, 2);
  EXPECT_THROW((void)m(2, 0), ContractViolation);
  EXPECT_THROW((void)m(0, 2), ContractViolation);
}

TEST(Matrix, MatrixProductAgainstHandComputed) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, RectangularProductShapes) {
  const Matrix a(2, 3, 1.0);
  const Matrix b(3, 4, 2.0);
  const Matrix c = a * b;
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 4u);
  EXPECT_DOUBLE_EQ(c(1, 3), 6.0);  // 3 * (1*2)
}

TEST(Matrix, ProductShapeMismatchViolatesContract) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW((void)(a * b), ContractViolation);
}

TEST(Matrix, MatVecAgainstHandComputed) {
  const Matrix a{{1.0, -1.0}, {2.0, 0.5}};
  const Vector x{3.0, 4.0};
  const Vector y = a * x;
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], 8.0);
}

TEST(Matrix, GemvAccumulateAddsInPlace) {
  const Matrix a{{1.0, 0.0}, {0.0, 1.0}};
  const Vector x{2.0, 3.0};
  Vector y{10.0, 20.0};
  gemv_accumulate(0.5, a, x, y);
  EXPECT_DOUBLE_EQ(y[0], 11.0);
  EXPECT_DOUBLE_EQ(y[1], 21.5);
}

TEST(Matrix, Transpose) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 1), 6.0);
}

TEST(Matrix, Norms) {
  const Matrix a{{1.0, -2.0}, {-3.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.inf_norm(), 7.0);  // row 1: 3 + 4
  EXPECT_DOUBLE_EQ(a.one_norm(), 6.0);  // col 1: 2 + 4
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), std::sqrt(30.0));
}

TEST(Matrix, AsymmetryMeasuresWorstPair) {
  Matrix a{{1.0, 2.0}, {2.5, 1.0}};
  EXPECT_DOUBLE_EQ(a.asymmetry(), 0.5);
  a(1, 0) = 2.0;
  EXPECT_DOUBLE_EQ(a.asymmetry(), 0.0);
}

TEST(Matrix, DiagonalVector) {
  const Matrix a{{1.0, 9.0}, {9.0, 2.0}};
  const Vector d = a.diagonal_vector();
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0], 1.0);
  EXPECT_EQ(d[1], 2.0);
}

TEST(Allclose, RespectsRelativeAndAbsoluteTolerance) {
  const Matrix a{{1.0, 0.0}, {0.0, 1.0}};
  Matrix b = a;
  b(0, 0) += 1e-13;
  EXPECT_TRUE(allclose(a, b));
  b(0, 0) += 1e-3;
  EXPECT_FALSE(allclose(a, b));
  EXPECT_FALSE(allclose(Matrix(2, 2), Matrix(2, 3)));
}

TEST(Allclose, VectorOverload) {
  EXPECT_TRUE(allclose(Vector{1.0, 2.0}, Vector{1.0, 2.0 + 1e-13}));
  EXPECT_FALSE(allclose(Vector{1.0}, Vector{1.0, 2.0}));
}

// Associativity of the product up to round-off: a quick regression net over
// the ikj kernel's loop bounds.
TEST(Matrix, ProductAssociativity) {
  Matrix a(3, 4);
  Matrix b(4, 2);
  Matrix c(2, 5);
  double seed = 0.1;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t col = 0; col < 4; ++col) a(r, col) = (seed += 0.7);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t col = 0; col < 2; ++col) b(r, col) = (seed -= 0.3);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t col = 0; col < 5; ++col) c(r, col) = (seed += 0.11);
  EXPECT_TRUE(allclose((a * b) * c, a * (b * c), 1e-12, 1e-12));
}

TEST(Matrix, MultiplyTransposedRhsMatchesPlainProduct) {
  Matrix a(3, 5);
  Matrix b(5, 4);
  double seed = 0.3;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t col = 0; col < 5; ++col) a(r, col) = (seed += 0.17);
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t col = 0; col < 4; ++col) b(r, col) = (seed -= 0.29);
  const Matrix expect = a * b;
  const Matrix got = multiply_transposed_rhs(a, b.transposed());
  ASSERT_EQ(got.rows(), expect.rows());
  ASSERT_EQ(got.cols(), expect.cols());
  EXPECT_TRUE(allclose(got, expect, 1e-13, 1e-13));
}

TEST(Matrix, MultiplyTransposedRhsRejectsShapeMismatch) {
  const Matrix a(3, 5);
  const Matrix wrong(4, 4);  // inner dimensions (cols vs cols) disagree
  EXPECT_THROW((void)multiply_transposed_rhs(a, wrong), ContractViolation);
}

}  // namespace
}  // namespace foscil::linalg
