// Kernel-layer differential battery (DESIGN.md §14).
//
// The SIMD dispatch contract is that every kernel produces bit-identical
// results at every level, for every length — including the awkward tails a
// 4/8-wide vector loop has to mop up.  These tests pin that contract by
// running the scalar oracle and the best-available table over the same
// inputs and asserting exact (==) agreement, then repeat the check through
// the public Matrix/LU entry points that route through the kernels.
#include "linalg/simd.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "linalg/aligned.hpp"
#include "linalg/expm.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"

namespace foscil::linalg {
namespace {

// Deliberately awkward lengths: below one lane group, straddling the 4-wide
// and 8-wide boundaries, and odd sizes covering every tail remainder.
constexpr std::size_t kTailSizes[] = {1, 2, 3, 5, 7, 8, 9, 13, 16, 29, 50, 67};

/// Restores the dispatch level on scope exit so a failing test cannot leak
/// a forced level into later tests.
class ScopedLevel {
 public:
  explicit ScopedLevel(simd::Level level)
      : previous_(simd::set_active_level(level)) {}
  ~ScopedLevel() { simd::set_active_level(previous_); }
  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;

 private:
  simd::Level previous_;
};

[[nodiscard]] std::vector<double> random_values(std::size_t n,
                                                std::size_t seed) {
  std::mt19937 rng(static_cast<std::uint32_t>(seed));
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  std::vector<double> values(n);
  for (auto& v : values) v = dist(rng);
  return values;
}

[[nodiscard]] Matrix random_matrix(std::size_t rows, std::size_t cols,
                                   std::size_t seed) {
  const std::vector<double> values = random_values(rows * cols, seed);
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = values[r * cols + c];
  return m;
}

bool has_avx2() { return simd::detected_level() == simd::Level::kAvx2; }

TEST(SimdDispatch, DetectedLevelIsStable) {
  EXPECT_EQ(simd::detected_level(), simd::detected_level());
}

TEST(SimdDispatch, SetActiveLevelRoundTrips) {
  const simd::Level original = simd::active_level();
  const simd::Level previous = simd::set_active_level(simd::Level::kScalar);
  EXPECT_EQ(previous, original);
  EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
  EXPECT_EQ(simd::kernels().level, simd::Level::kScalar);
  simd::set_active_level(original);
  EXPECT_EQ(simd::active_level(), original);
}

TEST(SimdDispatch, Avx2RequestClampsToDetected) {
  const simd::Level original = simd::active_level();
  simd::set_active_level(simd::Level::kAvx2);
  if (has_avx2())
    EXPECT_EQ(simd::active_level(), simd::Level::kAvx2);
  else
    EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
  simd::set_active_level(original);
}

TEST(SimdDispatch, LevelNamesAreStable) {
  EXPECT_STREQ(simd::level_name(simd::Level::kScalar), "scalar");
  EXPECT_STREQ(simd::level_name(simd::Level::kAvx2), "avx2");
}

TEST(SimdDispatch, TablesReportTheirLevel) {
  EXPECT_EQ(simd::kernels(simd::Level::kScalar).level, simd::Level::kScalar);
  if (has_avx2())
    EXPECT_EQ(simd::kernels(simd::Level::kAvx2).level, simd::Level::kAvx2);
  else
    EXPECT_EQ(simd::kernels(simd::Level::kAvx2).level, simd::Level::kScalar);
}

TEST(AlignedAllocation, VectorAndMatrixStorageStartAligned) {
  for (const std::size_t n : kTailSizes) {
    const Vector v(n, 1.0);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kSimdAlignment, 0u)
        << "n=" << n;
    const Matrix m(n, n, 1.0);
    EXPECT_EQ(
        reinterpret_cast<std::uintptr_t>(m.row_data(0)) % kSimdAlignment, 0u)
        << "n=" << n;
  }
}

// --- Kernel-level tail battery: exact agreement scalar vs best table. ------

TEST(SimdKernels, DotAgreesExactlyAtAllTailLengths) {
  if (!has_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  const simd::Kernels& scalar = simd::kernels(simd::Level::kScalar);
  const simd::Kernels& best = simd::kernels(simd::Level::kAvx2);
  for (const std::size_t n : kTailSizes) {
    const std::vector<double> a = random_values(n, 100 + n);
    const std::vector<double> b = random_values(n, 200 + n);
    EXPECT_EQ(scalar.dot(a.data(), b.data(), n), best.dot(a.data(), b.data(), n))
        << "n=" << n;
  }
}

TEST(SimdKernels, AxpyAgreesExactlyAtAllTailLengths) {
  if (!has_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  const simd::Kernels& scalar = simd::kernels(simd::Level::kScalar);
  const simd::Kernels& best = simd::kernels(simd::Level::kAvx2);
  for (const std::size_t n : kTailSizes) {
    const std::vector<double> x = random_values(n, 300 + n);
    std::vector<double> y_s = random_values(n, 400 + n);
    std::vector<double> y_v = y_s;
    scalar.axpy(n, -1.75, x.data(), y_s.data());
    best.axpy(n, -1.75, x.data(), y_v.data());
    EXPECT_EQ(y_s, y_v) << "n=" << n;
  }
}

TEST(SimdKernels, ModalStepAgreesExactlyAtAllTailLengths) {
  if (!has_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  const simd::Kernels& scalar = simd::kernels(simd::Level::kScalar);
  const simd::Kernels& best = simd::kernels(simd::Level::kAvx2);
  for (const std::size_t n : kTailSizes) {
    const std::vector<double> e = random_values(n, 500 + n);
    const std::vector<double> p = random_values(n, 600 + n);
    const std::vector<double> b = random_values(n, 700 + n);
    std::vector<double> y_s = random_values(n, 800 + n);
    std::vector<double> y_v = y_s;
    scalar.modal_step(n, e.data(), p.data(), b.data(), y_s.data());
    best.modal_step(n, e.data(), p.data(), b.data(), y_v.data());
    EXPECT_EQ(y_s, y_v) << "n=" << n;
  }
}

TEST(SimdKernels, HadamardScaleAgreesExactlyAtAllTailLengths) {
  if (!has_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  const simd::Kernels& scalar = simd::kernels(simd::Level::kScalar);
  const simd::Kernels& best = simd::kernels(simd::Level::kAvx2);
  for (const std::size_t n : kTailSizes) {
    const std::vector<double> f = random_values(n, 900 + n);
    std::vector<double> y_s = random_values(n, 1000 + n);
    std::vector<double> y_v = y_s;
    scalar.hadamard_scale(n, f.data(), y_s.data());
    best.hadamard_scale(n, f.data(), y_v.data());
    EXPECT_EQ(y_s, y_v) << "n=" << n;
  }
}

TEST(SimdKernels, MtrAgreesExactlyAtAllTailShapes) {
  if (!has_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  const simd::Kernels& scalar = simd::kernels(simd::Level::kScalar);
  const simd::Kernels& best = simd::kernels(simd::Level::kAvx2);
  // Shapes exercise the 1x4 j-micro-tile remainder (n mod 4), the 8-wide
  // depth tail (depth mod 8), and single-row/-column degenerate cases.
  for (const std::size_t m : {std::size_t{1}, std::size_t{3}, std::size_t{7}}) {
    for (const std::size_t n : kTailSizes) {
      for (const std::size_t depth : kTailSizes) {
        const std::vector<double> a =
            random_values(m * depth, static_cast<std::uint32_t>(
                                         1100 + m * 131 + n * 17 + depth));
        const std::vector<double> b =
            random_values(n * depth, static_cast<std::uint32_t>(
                                         1200 + m * 131 + n * 17 + depth));
        std::vector<double> c_s(m * n, -7.0);
        std::vector<double> c_v(m * n, 7.0);  // different garbage on purpose
        scalar.mtr(m, n, depth, a.data(), depth, b.data(), depth, c_s.data(),
                   n);
        best.mtr(m, n, depth, a.data(), depth, b.data(), depth, c_v.data(), n);
        EXPECT_EQ(c_s, c_v) << "m=" << m << " n=" << n << " depth=" << depth;
      }
    }
  }
}

// --- Public entry points: bit-identical across dispatch levels. ------------

TEST(SimdMatrixOps, MultiplyBitIdenticalAcrossLevels) {
  if (!has_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  for (const std::size_t n : {std::size_t{3}, std::size_t{7}, std::size_t{29},
                              std::size_t{50}}) {
    const Matrix a = random_matrix(n, n, static_cast<std::uint32_t>(40 + n));
    const Matrix b = random_matrix(n, n, static_cast<std::uint32_t>(50 + n));
    Matrix scalar_ab, best_ab, scalar_mtr, best_mtr;
    {
      const ScopedLevel forced(simd::Level::kScalar);
      scalar_ab = a * b;
      scalar_mtr = multiply_transposed_rhs(a, b);
    }
    {
      const ScopedLevel forced(simd::Level::kAvx2);
      best_ab = a * b;
      best_mtr = multiply_transposed_rhs(a, b);
    }
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c) {
        EXPECT_EQ(scalar_ab(r, c), best_ab(r, c)) << n << ":" << r << "," << c;
        EXPECT_EQ(scalar_mtr(r, c), best_mtr(r, c))
            << n << ":" << r << "," << c;
      }
  }
}

TEST(SimdMatrixOps, LuSolveBitIdenticalAcrossLevels) {
  if (!has_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  for (const std::size_t n : {std::size_t{3}, std::size_t{7}, std::size_t{29},
                              std::size_t{67}}) {
    Matrix a = random_matrix(n, n, static_cast<std::uint32_t>(60 + n));
    for (std::size_t i = 0; i < n; ++i)
      a(i, i) += 8.0;  // diagonally dominant: well-conditioned, no pivoting luck
    const std::vector<double> rhs =
        random_values(n, static_cast<std::uint32_t>(70 + n));
    Vector b(n);
    for (std::size_t i = 0; i < n; ++i) b[i] = rhs[i];
    Vector x_scalar, x_best;
    {
      const ScopedLevel forced(simd::Level::kScalar);
      x_scalar = LuDecomposition(a).solve(b);
    }
    {
      const ScopedLevel forced(simd::Level::kAvx2);
      x_best = LuDecomposition(a).solve(b);
    }
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(x_scalar[i], x_best[i]) << "n=" << n << " i=" << i;
  }
}

TEST(SimdMatrixOps, ExpmBitIdenticalAcrossLevels) {
  if (!has_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  const std::size_t n = 29;
  Matrix a = random_matrix(n, n, 80);
  a *= 0.3;
  Matrix scalar_exp, best_exp;
  {
    const ScopedLevel forced(simd::Level::kScalar);
    scalar_exp = expm(a);
  }
  {
    const ScopedLevel forced(simd::Level::kAvx2);
    best_exp = expm(a);
  }
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      EXPECT_EQ(scalar_exp(r, c), best_exp(r, c)) << r << "," << c;
}

}  // namespace
}  // namespace foscil::linalg
