// Theorem 3: among step-up schedules completing the same work on a core, a
// constant voltage minimizes the stable-status peak; a work-equivalent
// two-mode split can only be hotter.
// Theorem 4: widening the two modes (lower low / higher high) while keeping
// the work fixed raises the peak — neighboring modes are the best split.
#include <gtest/gtest.h>

#include "../test_support.hpp"
#include "core/ideal.hpp"
#include "sim/peak.hpp"

namespace foscil::sim {
namespace {

/// Step-up schedule where `core` runs v_low then v_high with the time split
/// chosen so its work equals `v_eq * period`; other cores run `v_other`.
sched::PeriodicSchedule split_schedule(std::size_t cores, std::size_t core,
                                       double period, double v_eq,
                                       double v_low, double v_high,
                                       double v_other) {
  FOSCIL_EXPECTS(v_low <= v_eq && v_eq <= v_high);
  sched::PeriodicSchedule s(cores, period);
  for (std::size_t i = 0; i < cores; ++i) {
    if (i != core) {
      s.set_core_segments(i, {{period, v_other}});
      continue;
    }
    if (v_high - v_low < 1e-12) {
      s.set_core_segments(i, {{period, v_eq}});
      continue;
    }
    const double ratio_high = (v_eq - v_low) / (v_high - v_low);
    const double t_high = ratio_high * period;
    if (t_high <= 0.0) {
      s.set_core_segments(i, {{period, v_low}});
    } else if (t_high >= period) {
      s.set_core_segments(i, {{period, v_high}});
    } else {
      s.set_core_segments(i, {{period - t_high, v_low}, {t_high, v_high}});
    }
  }
  return s;
}

TEST(Theorem3, ConstantModeBeatsAnyTwoModeSplit) {
  Rng rng(601);
  const core::Platform platform = testing::grid_platform(1, 3);
  const SteadyStateAnalyzer analyzer(platform.model);
  for (int trial = 0; trial < 12; ++trial) {
    const double period = rng.uniform(0.02, 2.0);
    const double v_eq = rng.uniform(0.75, 1.15);
    const double v_low = rng.uniform(0.6, v_eq);
    const double v_high = rng.uniform(v_eq, 1.3);
    const double v_other = rng.uniform(0.6, 1.3);
    const std::size_t core = rng.index(3);

    const auto constant =
        split_schedule(3, core, period, v_eq, v_eq, v_eq, v_other);
    const auto split =
        split_schedule(3, core, period, v_eq, v_low, v_high, v_other);
    ASSERT_NEAR(constant.core_work(core), split.core_work(core), 1e-9);

    const double peak_const = step_up_peak(analyzer, constant).rise;
    const double peak_split = step_up_peak(analyzer, split).rise;
    EXPECT_LE(peak_const, peak_split + 1e-9) << "trial " << trial;
  }
}

TEST(Theorem3, EndTemperatureDominatedNodewise) {
  // The proof shows T(S_u1(t_p)) <= T(S_u2(t_p)) for every node, not just
  // the max; verify the stronger statement.
  const core::Platform platform = testing::grid_platform(1, 2);
  const SteadyStateAnalyzer analyzer(platform.model);
  const auto constant = split_schedule(2, 0, 0.5, 1.0, 1.0, 1.0, 0.8);
  const auto split = split_schedule(2, 0, 0.5, 1.0, 0.6, 1.3, 0.8);
  const linalg::Vector end_const = analyzer.stable_boundary(constant);
  const linalg::Vector end_split = analyzer.stable_boundary(split);
  for (std::size_t i = 0; i < end_const.size(); ++i)
    EXPECT_LE(end_const[i], end_split[i] + 1e-10) << "node " << i;
}

TEST(Theorem4, NeighboringModesBeatWiderModes) {
  Rng rng(603);
  const core::Platform platform = testing::grid_platform(1, 3);
  const SteadyStateAnalyzer analyzer(platform.model);
  for (int trial = 0; trial < 12; ++trial) {
    const double period = rng.uniform(0.02, 1.0);
    const double v_eq = rng.uniform(0.85, 1.05);
    const double v_other = rng.uniform(0.6, 1.3);
    const std::size_t core = rng.index(3);

    // Narrow (neighboring) vs wide mode pair around the same v_eq.
    const auto narrow =
        split_schedule(3, core, period, v_eq, v_eq - 0.1, v_eq + 0.1,
                       v_other);
    const auto wide =
        split_schedule(3, core, period, v_eq, v_eq - 0.25, v_eq + 0.25,
                       v_other);
    ASSERT_NEAR(narrow.core_work(core), wide.core_work(core), 1e-9);

    const double peak_narrow = step_up_peak(analyzer, narrow).rise;
    const double peak_wide = step_up_peak(analyzer, wide).rise;
    EXPECT_LE(peak_narrow, peak_wide + 1e-9) << "trial " << trial;
  }
}

TEST(Theorem4, NestedModePairsOrderThePeaks) {
  // v_eq fixed; peaks ordered by how far the mode pair spreads.
  const core::Platform platform = testing::grid_platform(1, 2);
  const SteadyStateAnalyzer analyzer(platform.model);
  const double v_eq = 0.95;
  double prev_peak = -1.0;
  for (double spread : {0.0, 0.05, 0.15, 0.25, 0.35}) {
    const auto s = split_schedule(2, 0, 0.2, v_eq, v_eq - spread,
                                  v_eq + spread, 0.9);
    const double peak = step_up_peak(analyzer, s).rise;
    EXPECT_GE(peak, prev_peak - 1e-10) << "spread " << spread;
    prev_peak = peak;
  }
}

TEST(Theorem3, ImpliesOscillationPeakExceedsIdealTarget) {
  // The AO pipeline consequence: starting from ideal voltages whose steady
  // state *equals* T_max, any two-mode work-equivalent schedule must
  // overshoot T_max before the ratio adjustment step.
  const core::Platform platform = testing::grid_platform(1, 3);
  const SteadyStateAnalyzer analyzer(platform.model);
  const double rise_target = 30.0;  // T_max = 65 C
  const auto ideal = core::ideal_constant_voltages(*platform.model,
                                                   rise_target, 1.3);
  sched::PeriodicSchedule split(3, 0.02);
  for (std::size_t i = 0; i < 3; ++i) {
    const double r_high = (ideal.voltages[i] - 0.6) / (1.3 - 0.6);
    split.set_core_segments(
        i, {{(1.0 - r_high) * 0.02, 0.6}, {r_high * 0.02, 1.3}});
  }
  const double peak = step_up_peak(analyzer, split).rise;
  EXPECT_GT(peak, rise_target - 1e-9);
}

}  // namespace
}  // namespace foscil::sim
