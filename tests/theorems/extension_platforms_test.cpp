// The paper's theorems on the extension platforms: heterogeneous per-core
// power coefficients and 3D die stacks.  The proofs only need the LTI
// structure (A similar-to-symmetric, -A^{-1} positive) and per-core convex
// psi(v) — both preserved by the extensions — so the properties must keep
// holding there.
#include <gtest/gtest.h>

#include "../test_support.hpp"
#include "sim/peak.hpp"

namespace foscil::sim {
namespace {

core::Platform heterogeneous_platform() {
  Rng rng(1501);
  std::vector<power::PowerCoefficients> coeffs;
  for (int i = 0; i < 6; ++i) {
    power::PowerCoefficients c;
    c.alpha *= 1.0 + rng.uniform(-0.3, 0.3);
    c.gamma *= 1.0 + rng.uniform(-0.3, 0.3);
    c.beta *= 1.0 + rng.uniform(-0.3, 0.3);
    coeffs.push_back(c);
  }
  const thermal::Floorplan floorplan(2, 3, 4e-3);
  thermal::RcNetwork network(floorplan, thermal::HotSpotParams{});
  core::Platform p;
  p.model = std::make_shared<const thermal::ThermalModel>(
      std::move(network), power::PowerModel(std::move(coeffs)));
  p.levels = power::VoltageLevels({0.6, 1.3});
  p.name = "2x3-hetero";
  return p;
}

core::Platform stacked_platform() {
  thermal::HotSpotParams params;
  params.die_tiers = 2;
  params.r_convection_block = 0.8;
  params.k_inter_tier = 10.0;
  return core::make_grid_platform(2, 2, power::VoltageLevels({0.6, 1.3}),
                                  params);
}

class ExtensionTheorems
    : public ::testing::TestWithParam<const char*> {
 protected:
  ExtensionTheorems()
      : platform_(std::string(GetParam()) == "hetero"
                      ? heterogeneous_platform()
                      : stacked_platform()),
        analyzer_(platform_.model),
        rng_(std::string(GetParam()) == "hetero" ? 1601u : 1603u) {}

  core::Platform platform_;
  SteadyStateAnalyzer analyzer_;
  Rng rng_;
};

TEST_P(ExtensionTheorems, Theorem1PeakAtPeriodEnd) {
  for (int trial = 0; trial < 4; ++trial) {
    const auto s = testing::random_step_up_schedule(
        rng_, platform_.num_cores(), rng_.uniform(0.05, 2.0), 4);
    const double end_rise = platform_.model->max_core_rise(
        analyzer_.stable_boundary(s));
    const double sampled = sampled_peak(analyzer_, s, 64).rise;
    EXPECT_LE(sampled, end_rise + 1e-2) << trial;
  }
}

TEST_P(ExtensionTheorems, Theorem2StepUpBounds) {
  for (int trial = 0; trial < 4; ++trial) {
    const auto s = testing::random_schedule(
        rng_, platform_.num_cores(), rng_.uniform(0.05, 2.0), 4);
    const double peak_any = sampled_peak(analyzer_, s, 48).rise;
    const double peak_up =
        step_up_peak(analyzer_, sched::to_step_up(s)).rise;
    EXPECT_LE(peak_any, peak_up + 1e-2) << trial;
  }
}

TEST_P(ExtensionTheorems, Theorem5MonotoneInM) {
  const auto s = testing::random_step_up_schedule(
      rng_, platform_.num_cores(), 1.5, 4);
  double prev = step_up_peak(analyzer_, s).rise;
  for (int m : {2, 4, 8, 16, 32}) {
    const double cur =
        step_up_peak(analyzer_, sched::m_oscillate(s, m)).rise;
    EXPECT_LE(cur, prev + 1e-9) << "m " << m;
    prev = cur;
  }
}

TEST_P(ExtensionTheorems, Property1CooldownMonotoneOnCores) {
  const TransientSimulator& sim = analyzer_.simulator();
  linalg::Vector v(platform_.num_cores());
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = rng_.uniform(0.6, 1.3);
  const linalg::Vector hot = sim.advance(sim.ambient_start(), v, 10.0);
  const linalg::Vector off(platform_.num_cores());
  linalg::Vector prev = platform_.model->core_rises(hot);
  for (int step = 1; step <= 20; ++step) {
    const linalg::Vector cur =
        platform_.model->core_rises(sim.advance(hot, off, 0.1 * step));
    for (std::size_t i = 0; i < cur.size(); ++i)
      EXPECT_LE(cur[i], prev[i] + 1e-10) << "core " << i;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(HeteroAndStacked, ExtensionTheorems,
                         ::testing::Values("hetero", "stacked"),
                         [](const ::testing::TestParamInfo<const char*>&
                                param_info) {
                           return std::string(param_info.param);
                         });

}  // namespace
}  // namespace foscil::sim
