// Theorem 5: for a periodic step-up schedule on a multi-core processor,
// m-oscillating *all* cores together monotonically lowers the stable-status
// peak temperature: T_peak(S(m, t)) >= T_peak(S(m+1, t)).
// Also reproduces the Fig. 2 caveat: oscillating a single core can raise
// the chip peak.
#include <gtest/gtest.h>

#include "../test_support.hpp"
#include "sim/peak.hpp"

namespace foscil::sim {
namespace {

TEST(Theorem5, PeakMonotoneNonIncreasingInM) {
  Rng rng(701);
  for (auto [rows, cols] : {std::pair<std::size_t, std::size_t>{1, 2},
                            {1, 3},
                            {3, 3}}) {
    const core::Platform platform = testing::grid_platform(rows, cols);
    const SteadyStateAnalyzer analyzer(platform.model);
    for (int trial = 0; trial < 4; ++trial) {
      const double period = rng.uniform(0.5, 5.0);
      const auto s = testing::random_step_up_schedule(
          rng, platform.num_cores(), period, 5);
      double prev = step_up_peak(analyzer, s).rise;
      for (int m = 2; m <= 24; m += (m < 8 ? 1 : 4)) {
        const double cur =
            step_up_peak(analyzer, sched::m_oscillate(s, m)).rise;
        EXPECT_LE(cur, prev + 1e-9)
            << rows << "x" << cols << " trial " << trial << " m " << m;
        prev = cur;
      }
    }
  }
}

TEST(Theorem5, LargeMApproachesConstantAverageSchedule) {
  // As m grows, the oscillating schedule's peak converges to the peak of a
  // hypothetical constant schedule delivering the same average *power*.
  // We check convergence numerically: successive peaks approach a limit.
  Rng rng(703);
  const core::Platform platform = testing::grid_platform(1, 3);
  const SteadyStateAnalyzer analyzer(platform.model);
  const auto s = testing::random_step_up_schedule(rng, 3, 1.0, 3);
  const double peak_64 =
      step_up_peak(analyzer, sched::m_oscillate(s, 64)).rise;
  const double peak_128 =
      step_up_peak(analyzer, sched::m_oscillate(s, 128)).rise;
  const double peak_256 =
      step_up_peak(analyzer, sched::m_oscillate(s, 256)).rise;
  EXPECT_LT(peak_64 - peak_128, 0.2);
  EXPECT_LT(peak_128 - peak_256, peak_64 - peak_128 + 1e-9);
}

TEST(Theorem5, OscillationReducesPeakSubstantiallyForSlowSchedules) {
  // The whole point of the method: a slow (seconds-scale) two-mode schedule
  // gains multiple kelvin from oscillation.
  const core::Platform platform = testing::grid_platform(1, 3);
  const SteadyStateAnalyzer analyzer(platform.model);
  sched::PeriodicSchedule s(3, 4.0);
  for (std::size_t i = 0; i < 3; ++i)
    s.set_core_segments(i, {{2.0, 0.6}, {2.0, 1.3}});
  const double peak_1 = step_up_peak(analyzer, s).rise;
  const double peak_40 =
      step_up_peak(analyzer, sched::m_oscillate(s, 40)).rise;
  const double peak_400 =
      step_up_peak(analyzer, sched::m_oscillate(s, 400)).rise;
  // m = 40 brings the 4 s period to 100 ms (below the sink's time constant)
  // and m = 400 to 10 ms (below the spreader's); each crossing recovers
  // visible headroom.
  EXPECT_GT(peak_1 - peak_40, 0.8);
  EXPECT_GT(peak_1 - peak_400, 1.5);
  EXPECT_GE(peak_40, peak_400 - 1e-9);
}

TEST(Fig2Caveat, OscillatingOnlyOneCoreCanRaiseThePeak) {
  // Paper Sec. IV-C / Fig. 2: two cores, 100 ms period, opposite phases.
  // Doubling only core 0's oscillation frequency raises the stable peak.
  const core::Platform platform = testing::grid_platform(1, 2);
  const SteadyStateAnalyzer analyzer(platform.model);

  sched::PeriodicSchedule base(2, 0.1);
  base.set_core_segments(0, {{0.05, 1.3}, {0.05, 0.6}});
  base.set_core_segments(1, {{0.05, 0.6}, {0.05, 1.3}});

  sched::PeriodicSchedule single(2, 0.1);
  single.set_core_segments(
      0, {{0.025, 1.3}, {0.025, 0.6}, {0.025, 1.3}, {0.025, 0.6}});
  single.set_core_segments(1, {{0.05, 0.6}, {0.05, 1.3}});

  const double peak_base = sampled_peak(analyzer, base, 128).rise;
  const double peak_single = sampled_peak(analyzer, single, 128).rise;
  EXPECT_GT(peak_single, peak_base);
}

TEST(Fig2Caveat, OscillatingAllCoresTogetherDoesReduceThePeak) {
  // The companion claim: scaling *both* cores' intervals fixes it.
  const core::Platform platform = testing::grid_platform(1, 2);
  const SteadyStateAnalyzer analyzer(platform.model);
  sched::PeriodicSchedule base(2, 0.1);
  base.set_core_segments(0, {{0.05, 1.3}, {0.05, 0.6}});
  base.set_core_segments(1, {{0.05, 0.6}, {0.05, 1.3}});
  const double peak_base = sampled_peak(analyzer, base, 128).rise;
  const double peak_all =
      sampled_peak(analyzer, sched::m_oscillate(base, 2), 128).rise;
  EXPECT_LE(peak_all, peak_base + 1e-9);
}

}  // namespace
}  // namespace foscil::sim
