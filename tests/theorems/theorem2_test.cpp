// Lemma 1 + Theorem 2: the step-up permutation of an arbitrary periodic
// schedule upper-bounds that schedule's stable-status peak temperature.
#include <gtest/gtest.h>

#include "../test_support.hpp"
#include "sim/peak.hpp"

namespace foscil::sim {
namespace {

TEST(Lemma1, SwappingLowBeforeHighRaisesEndTemperature) {
  // Two-interval swap on one core, all else constant: the schedule ending
  // in the high mode ends hotter in stable status.
  const core::Platform platform = testing::grid_platform(1, 3);
  const SteadyStateAnalyzer analyzer(platform.model);
  Rng rng(501);
  for (int trial = 0; trial < 10; ++trial) {
    const double period = rng.uniform(0.05, 1.5);
    const double split = rng.uniform(0.2, 0.8) * period;
    const double v_other = rng.uniform(0.6, 1.3);
    const std::size_t core = rng.index(3);

    sched::PeriodicSchedule low_first(3, period);
    sched::PeriodicSchedule high_first(3, period);
    for (std::size_t i = 0; i < 3; ++i) {
      if (i == core) {
        low_first.set_core_segments(
            i, {{split, 0.6}, {period - split, 1.3}});
        high_first.set_core_segments(
            i, {{period - split, 1.3}, {split, 0.6}});
      } else {
        low_first.set_core_segments(i, {{period, v_other}});
        high_first.set_core_segments(i, {{period, v_other}});
      }
    }
    const linalg::Vector end_low_first =
        analyzer.stable_boundary(low_first);
    const linalg::Vector end_high_first =
        analyzer.stable_boundary(high_first);
    for (std::size_t i = 0; i < end_low_first.size(); ++i)
      EXPECT_GE(end_low_first[i], end_high_first[i] - 1e-10)
          << "trial " << trial << " node " << i;
  }
}

TEST(Theorem2, StepUpBoundsArbitrarySchedulePeak) {
  Rng rng(503);
  for (auto [rows, cols] : {std::pair<std::size_t, std::size_t>{1, 2},
                            {1, 3},
                            {2, 3}}) {
    const core::Platform platform = testing::grid_platform(rows, cols);
    const SteadyStateAnalyzer analyzer(platform.model);
    for (int trial = 0; trial < 8; ++trial) {
      const double period = rng.uniform(0.05, 3.0);
      const auto s = testing::random_schedule(
          rng, platform.num_cores(), period, 4);
      const auto up = sched::to_step_up(s);
      const double peak_any = sampled_peak(analyzer, s, 64).rise;
      const double peak_up = step_up_peak(analyzer, up).rise;
      EXPECT_LE(peak_any, peak_up + 1e-8)
          << rows << "x" << cols << " trial " << trial;
    }
  }
}

TEST(Theorem2, BoundIsTightForAlreadyStepUpSchedules) {
  Rng rng(505);
  const core::Platform platform = testing::grid_platform(1, 3);
  const SteadyStateAnalyzer analyzer(platform.model);
  const auto s = testing::random_step_up_schedule(rng, 3, 0.4, 3);
  const double peak_any = sampled_peak(analyzer, s, 128).rise;
  const double peak_up = step_up_peak(analyzer, sched::to_step_up(s)).rise;
  EXPECT_NEAR(peak_any, peak_up, 1e-8);
}

TEST(Theorem2, GapCanBeLargeForLongPeriods) {
  // The Fig. 3 effect: with a 6 s period, schedules differing only in phase
  // span several kelvin, all bounded by the step-up peak.
  const core::Platform platform = testing::grid_platform(1, 3);
  const SteadyStateAnalyzer analyzer(platform.model);
  const double period = 6.0;

  sched::PeriodicSchedule aligned(3, period);
  for (std::size_t i = 0; i < 3; ++i)
    aligned.set_core_segments(i, {{3.0, 0.6}, {3.0, 1.3}});
  const double peak_up = step_up_peak(analyzer, aligned).rise;

  // Interleave core phases to spread the heat.
  auto spread = sched::phase_shift(aligned, 1, 2.0);
  spread = sched::phase_shift(spread, 2, 4.0);
  const double peak_spread = sampled_peak(analyzer, spread, 96).rise;

  EXPECT_LT(peak_spread, peak_up - 0.5);  // at least half a kelvin of slack
}

}  // namespace
}  // namespace foscil::sim
