// Theorem 1: repeating a step-up schedule from ambient, the peak temperature
// occurs at the end of the period once the temperature reaches the stable
// status.  Validated two ways:
//  * in the stable status, a densely sampled scan never beats the period-end
//    temperature, and
//  * starting from ambient, the per-core temperature at period boundaries is
//    non-decreasing across periods (so the stable status is the supremum).
#include <gtest/gtest.h>

#include "../test_support.hpp"
#include "sim/peak.hpp"

namespace foscil::sim {
namespace {

TEST(Theorem1, StableStatusPeakIsAtPeriodEnd) {
  Rng rng(401);
  for (auto [rows, cols] : {std::pair<std::size_t, std::size_t>{1, 2},
                            {1, 3},
                            {2, 3},
                            {3, 3}}) {
    const core::Platform platform = testing::grid_platform(rows, cols);
    const SteadyStateAnalyzer analyzer(platform.model);
    for (int trial = 0; trial < 6; ++trial) {
      const double period = rng.uniform(0.02, 2.0);
      const auto s = testing::random_step_up_schedule(
          rng, platform.num_cores(), period, 3);
      const double end_rise = platform.model->max_core_rise(
          analyzer.stable_boundary(s));
      const PeakInfo sampled = sampled_peak(analyzer, s, 96);
      // Theorem 1 holds to sub-millikelvin accuracy on our package: a core
      // can overshoot its period-end value by O(0.1 mK) inside the last
      // interval because neighbor heat arrives through the (non-diagonal)
      // package dynamics.  See EXPERIMENTS.md, E4 notes.
      EXPECT_LE(sampled.rise, end_rise + 2e-3)
          << rows << "x" << cols << " trial " << trial;
    }
  }
}

TEST(Theorem1, FirstPeriodTemperatureIsMonotoneFromAmbient) {
  // Within the first period from ambient, every core's temperature rises
  // monotonically through a step-up schedule (Fig. 4(a) behaviour).
  Rng rng(403);
  const core::Platform platform = testing::grid_platform(2, 3);
  const TransientSimulator sim(platform.model);
  const auto s = testing::random_step_up_schedule(rng, 6, 1.0, 3,
                                                  {0.8, 1.0, 1.3});
  const auto trace = sim.trace(s, sim.ambient_start(), 5e-3, s.period());
  for (std::size_t k = 1; k < trace.size(); ++k) {
    const auto prev = platform.model->core_rises(trace[k - 1].rises);
    const auto cur = platform.model->core_rises(trace[k].rises);
    for (std::size_t i = 0; i < 6; ++i)
      EXPECT_GE(cur[i], prev[i] - 1e-9) << "core " << i << " k " << k;
  }
}

TEST(Theorem1, PeriodBoundaryTemperaturesIncreaseTowardStableStatus) {
  Rng rng(405);
  const core::Platform platform = testing::grid_platform(1, 3);
  const SteadyStateAnalyzer analyzer(platform.model);
  const auto s = testing::random_step_up_schedule(rng, 3, 0.1, 3);

  linalg::Vector temps = analyzer.simulator().ambient_start();
  linalg::Vector prev = temps;
  for (int rep = 0; rep < 200; ++rep) {
    temps = analyzer.simulator().period_end(s, temps);
    for (std::size_t i = 0; i < temps.size(); ++i)
      EXPECT_GE(temps[i], prev[i] - 1e-10) << "rep " << rep;
    prev = temps;
  }
  const linalg::Vector stable = analyzer.stable_boundary(s);
  for (std::size_t i = 0; i < temps.size(); ++i)
    EXPECT_LE(temps[i], stable[i] + 1e-9);
}

TEST(Theorem1, FastPathMatchesExhaustiveScanOnManySchedules) {
  Rng rng(407);
  const core::Platform platform = testing::grid_platform(1, 2);
  const SteadyStateAnalyzer analyzer(platform.model);
  for (int trial = 0; trial < 20; ++trial) {
    const double period = rng.uniform(0.01, 1.0);
    const auto s =
        testing::random_step_up_schedule(rng, 2, period, 4);
    const PeakInfo fast = step_up_peak(analyzer, s);
    const PeakInfo scan = sampled_peak(analyzer, s, 200);
    EXPECT_NEAR(fast.rise, scan.rise, 1e-8) << "trial " << trial;
  }
}

}  // namespace
}  // namespace foscil::sim
