// Parameterized property sweeps of the paper's theorems across all four
// evaluation platforms and a spread of periods: each (platform, period)
// cell re-checks Theorems 1, 2 and 5 on fresh random schedules.  The
// focused per-theorem suites live in theorem{1,2,34,5}_test.cpp; this file
// is the wide net.
#include <gtest/gtest.h>

#include "../test_support.hpp"
#include "sim/peak.hpp"

namespace foscil::sim {
namespace {

struct SweepCase {
  std::size_t rows;
  std::size_t cols;
  double period;
};

class TheoremSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  TheoremSweep()
      : platform_(testing::grid_platform(GetParam().rows, GetParam().cols)),
        analyzer_(platform_.model),
        rng_(7000 + GetParam().rows * 100 + GetParam().cols * 10 +
             static_cast<std::uint64_t>(GetParam().period * 1e3)) {}

  core::Platform platform_;
  SteadyStateAnalyzer analyzer_;
  Rng rng_;
};

TEST_P(TheoremSweep, Theorem1PeakAtPeriodEnd) {
  for (int trial = 0; trial < 3; ++trial) {
    const auto s = testing::random_step_up_schedule(
        rng_, platform_.num_cores(), GetParam().period, 4);
    const double end_rise = platform_.model->max_core_rise(
        analyzer_.stable_boundary(s));
    const double sampled = sampled_peak(analyzer_, s, 64).rise;
    EXPECT_LE(sampled, end_rise + 1e-2) << "trial " << trial;  // see E4 notes
  }
}

TEST_P(TheoremSweep, Theorem2StepUpBounds) {
  for (int trial = 0; trial < 3; ++trial) {
    const auto s = testing::random_schedule(
        rng_, platform_.num_cores(), GetParam().period, 4);
    const double peak_any = sampled_peak(analyzer_, s, 48).rise;
    const double peak_up =
        step_up_peak(analyzer_, sched::to_step_up(s)).rise;
    EXPECT_LE(peak_any, peak_up + 1e-2) << "trial " << trial;
  }
}

TEST_P(TheoremSweep, Theorem5MonotoneInM) {
  const auto s = testing::random_step_up_schedule(
      rng_, platform_.num_cores(), GetParam().period, 4);
  double prev = step_up_peak(analyzer_, s).rise;
  for (int m : {2, 4, 8, 16}) {
    const double cur =
        step_up_peak(analyzer_, sched::m_oscillate(s, m)).rise;
    EXPECT_LE(cur, prev + 1e-9) << "m " << m;
    prev = cur;
  }
}

TEST_P(TheoremSweep, WorkInvariantUnderAllTransforms) {
  const auto s = testing::random_schedule(
      rng_, platform_.num_cores(), GetParam().period, 4);
  const auto up = sched::to_step_up(s);
  const auto osc = sched::m_oscillate(s, 7);
  for (std::size_t core = 0; core < platform_.num_cores(); ++core) {
    EXPECT_NEAR(up.core_work(core), s.core_work(core), 1e-9);
    EXPECT_NEAR(osc.core_work(core) * 7.0, s.core_work(core), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    GridsTimesPeriods, TheoremSweep,
    ::testing::Values(SweepCase{1, 2, 0.01}, SweepCase{1, 2, 1.0},
                      SweepCase{1, 3, 0.05}, SweepCase{1, 3, 2.0},
                      SweepCase{2, 3, 0.1}, SweepCase{2, 3, 4.0},
                      SweepCase{3, 3, 0.02}, SweepCase{3, 3, 1.5}),
    [](const ::testing::TestParamInfo<SweepCase>& param_info) {
      return std::to_string(param_info.param.rows) + "x" +
             std::to_string(param_info.param.cols) + "_p" +
             std::to_string(static_cast<int>(param_info.param.period * 1000)) +
             "ms";
    });

}  // namespace
}  // namespace foscil::sim
