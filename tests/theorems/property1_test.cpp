// Property 1 (Sec. II-B): shutting down all cores from any non-negative
// temperature makes every node's temperature non-increasing over time.
// This is the physical sanity condition the platform model must satisfy
// before any of the paper's theorems apply.
#include <gtest/gtest.h>

#include "../test_support.hpp"
#include "linalg/lu.hpp"
#include "sim/transient.hpp"

namespace foscil::sim {
namespace {

TEST(Property1, CooldownIsMonotonePerNode) {
  Rng rng(301);
  for (auto [rows, cols] : {std::pair<std::size_t, std::size_t>{1, 2},
                            {1, 3},
                            {2, 3},
                            {3, 3}}) {
    const core::Platform platform = testing::grid_platform(rows, cols);
    const TransientSimulator sim(platform.model);
    const std::size_t cores = platform.num_cores();

    // Heat the chip with a random load, then cut power.
    linalg::Vector v(cores);
    for (std::size_t i = 0; i < cores; ++i) v[i] = rng.uniform(0.6, 1.3);
    linalg::Vector hot = sim.advance(sim.ambient_start(), v, 5.0);

    // Property 1 speaks about *core* temperatures: package periphery nodes
    // (the rim) legitimately warm up for a while during cooldown as the
    // stored die heat flows outward through them.
    const linalg::Vector off(cores);  // all cores powered down
    linalg::Vector prev = platform.model->core_rises(hot);
    for (int step = 1; step <= 50; ++step) {
      const linalg::Vector cur = platform.model->core_rises(
          sim.advance(hot, off, 0.05 * step));
      for (std::size_t i = 0; i < cur.size(); ++i) {
        EXPECT_LE(cur[i], prev[i] + 1e-10)
            << rows << "x" << cols << " core " << i << " step " << step;
        EXPECT_GE(cur[i], -1e-10);
      }
      prev = cur;
    }
  }
}

TEST(Property1, CooldownEndsAtAmbient) {
  const core::Platform platform = testing::grid_platform(2, 2);
  const TransientSimulator sim(platform.model);
  linalg::Vector hot =
      sim.advance(sim.ambient_start(), linalg::Vector(4, 1.3), 10.0);
  const linalg::Vector cold = sim.advance(hot, linalg::Vector(4), 1e5);
  EXPECT_LT(cold.inf_norm(), 1e-8);
}

TEST(Property1, ExpOfAIsNonNegativeMatrix) {
  // e^{At} >= 0 elementwise (a Metzler/compartmental A): the formal
  // statement behind monotone cooldown for arbitrary T0 >= 0.
  const core::Platform platform = testing::grid_platform(1, 3);
  for (double t : {1e-4, 1e-2, 0.5, 5.0}) {
    const linalg::Matrix e = platform.model->spectral().exp(t);
    for (std::size_t r = 0; r < e.rows(); ++r)
      for (std::size_t c = 0; c < e.cols(); ++c)
        EXPECT_GE(e(r, c), -1e-10) << "t=" << t;
  }
}

TEST(Property1, MinusAInverseIsPositive) {
  // -A^{-1} > 0: raising any core's power cannot cool any node (used in
  // the proof of Theorem 3).
  const core::Platform platform = testing::grid_platform(2, 2);
  const linalg::Matrix a = platform.model->a_matrix();
  const linalg::Matrix inv = linalg::inverse(a);
  for (std::size_t r = 0; r < inv.rows(); ++r)
    for (std::size_t c = 0; c < inv.cols(); ++c)
      EXPECT_LT(inv(r, c), 1e-12) << r << "," << c;  // -A^{-1} >= 0
}

}  // namespace
}  // namespace foscil::sim
