#include "thermal/floorplan.hpp"

#include <gtest/gtest.h>

namespace foscil::thermal {
namespace {

TEST(Floorplan, BasicGeometry) {
  const Floorplan fp(2, 3, 4e-3);
  EXPECT_EQ(fp.rows(), 2u);
  EXPECT_EQ(fp.cols(), 3u);
  EXPECT_EQ(fp.num_cores(), 6u);
  EXPECT_DOUBLE_EQ(fp.core_edge_m(), 4e-3);
  EXPECT_DOUBLE_EQ(fp.core_area_m2(), 16e-6);
}

TEST(Floorplan, RowMajorIndexing) {
  const Floorplan fp(3, 3, 4e-3);
  EXPECT_EQ(fp.index(0, 0), 0u);
  EXPECT_EQ(fp.index(0, 2), 2u);
  EXPECT_EQ(fp.index(1, 0), 3u);
  EXPECT_EQ(fp.index(2, 2), 8u);
  const CoreSite site = fp.site(5);
  EXPECT_EQ(site.row, 1u);
  EXPECT_EQ(site.col, 2u);
}

TEST(Floorplan, IndexOutOfRangeViolatesContract) {
  const Floorplan fp(2, 2, 4e-3);
  EXPECT_THROW((void)fp.index(2, 0), ContractViolation);
  EXPECT_THROW((void)fp.site(4), ContractViolation);
}

TEST(Floorplan, AdjacencyCountMatchesGridFormula) {
  // rows*(cols-1) horizontal + (rows-1)*cols vertical edges.
  for (std::size_t rows : {1u, 2u, 3u}) {
    for (std::size_t cols : {1u, 2u, 3u}) {
      const Floorplan fp(rows, cols, 4e-3);
      const std::size_t expected = rows * (cols - 1) + (rows - 1) * cols;
      EXPECT_EQ(fp.adjacent_pairs().size(), expected)
          << rows << "x" << cols;
    }
  }
}

TEST(Floorplan, AdjacencyPairsAreOrderedAndUnique) {
  const Floorplan fp(3, 3, 4e-3);
  const auto& pairs = fp.adjacent_pairs();
  for (const auto& [a, b] : pairs) {
    EXPECT_LT(a, b);
    EXPECT_EQ(fp.manhattan(a, b), 1u);
  }
  // No duplicates.
  for (std::size_t i = 0; i < pairs.size(); ++i)
    for (std::size_t j = i + 1; j < pairs.size(); ++j)
      EXPECT_TRUE(pairs[i] != pairs[j]);
}

TEST(Floorplan, SingleCoreHasNoNeighbors) {
  const Floorplan fp(1, 1, 4e-3);
  EXPECT_TRUE(fp.adjacent_pairs().empty());
}

TEST(Floorplan, ManhattanDistance) {
  const Floorplan fp(3, 3, 4e-3);
  EXPECT_EQ(fp.manhattan(0, 8), 4u);  // (0,0) -> (2,2)
  EXPECT_EQ(fp.manhattan(4, 4), 0u);
  EXPECT_EQ(fp.manhattan(2, 6), 4u);  // (0,2) -> (2,0)
}

TEST(Floorplan, LabelMatchesPaperNotation) {
  EXPECT_EQ(Floorplan(3, 2, 4e-3).label(), "3x2");
  EXPECT_EQ(Floorplan(1, 2, 4e-3).label(), "1x2");
}

TEST(Floorplan, DegenerateSizesViolateContract) {
  EXPECT_THROW(Floorplan(0, 2, 4e-3), ContractViolation);
  EXPECT_THROW(Floorplan(2, 0, 4e-3), ContractViolation);
  EXPECT_THROW(Floorplan(2, 2, 0.0), ContractViolation);
}

}  // namespace
}  // namespace foscil::thermal
