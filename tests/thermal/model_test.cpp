#include "thermal/model.hpp"

#include <gtest/gtest.h>

#include "linalg/expm.hpp"

namespace foscil::thermal {
namespace {

ThermalModel make_model(std::size_t rows, std::size_t cols) {
  return ThermalModel(RcNetwork(Floorplan(rows, cols, 4e-3), HotSpotParams{}),
                      power::PowerModel{});
}

TEST(ThermalModel, SizesComeFromNetwork) {
  const ThermalModel model = make_model(2, 3);
  EXPECT_EQ(model.num_cores(), 6u);
  EXPECT_EQ(model.num_nodes(), 3u * 6u + 2u);
}

TEST(ThermalModel, SystemIsStable) {
  for (auto [r, c] : {std::pair<std::size_t, std::size_t>{1, 2},
                      {1, 3},
                      {2, 3},
                      {3, 3}}) {
    const ThermalModel model = make_model(r, c);
    EXPECT_TRUE(model.spectral().stable()) << r << "x" << c;
    // The paper relies on A having only negative real eigenvalues.
    for (double lambda : model.spectral().eigenvalues())
      EXPECT_LT(lambda, 0.0);
  }
}

TEST(ThermalModel, AMatrixMatchesDefinition) {
  // A = C^{-1}(beta E - G) elementwise.
  const ThermalModel model = make_model(1, 2);
  const linalg::Matrix a = model.a_matrix();
  const auto& g = model.network().conductance();
  const auto& c = model.network().capacitance();
  const double beta = model.power().beta();
  for (std::size_t r = 0; r < model.num_nodes(); ++r)
    for (std::size_t col = 0; col < model.num_nodes(); ++col) {
      double s = -g(r, col);
      if (r == col && model.network().layer(r) == NodeLayer::kDie)
        s += beta;
      EXPECT_NEAR(a(r, col), s / c[r], 1e-9 * (std::abs(s / c[r]) + 1.0));
    }
}

TEST(ThermalModel, HeatInjectionOnlyOnDieNodes) {
  const ThermalModel model = make_model(2, 2);
  linalg::Vector v(4);
  v[0] = 1.0;
  v[1] = 1.3;
  v[2] = 0.0;  // idle core: zero heat
  v[3] = 0.6;
  const linalg::Vector psi = model.heat_injection(v);
  EXPECT_GT(psi[model.network().die_node(0)], 0.0);
  EXPECT_GT(psi[model.network().die_node(1)],
            psi[model.network().die_node(0)]);
  EXPECT_EQ(psi[model.network().die_node(2)], 0.0);
  for (std::size_t node = 4; node < model.num_nodes(); ++node)
    EXPECT_EQ(psi[node], 0.0);
}

TEST(ThermalModel, BVectorIsHeatOverCapacitance) {
  const ThermalModel model = make_model(1, 2);
  const linalg::Vector v{1.2, 0.8};
  const linalg::Vector psi = model.heat_injection(v);
  const linalg::Vector b = model.b_vector(v);
  const auto& c = model.network().capacitance();
  for (std::size_t i = 0; i < model.num_nodes(); ++i)
    EXPECT_NEAR(b[i], psi[i] / c[i], 1e-15);
}

TEST(ThermalModel, SteadyStateSolvesMinusAInvB) {
  // T_inf = -A^{-1} B(v): check A * T_inf + B = 0.
  const ThermalModel model = make_model(1, 3);
  const linalg::Vector v{1.3, 0.6, 1.0};
  const linalg::Vector t_inf = model.steady_state(v);
  linalg::Vector residual = model.a_matrix() * t_inf;
  residual += model.b_vector(v);
  EXPECT_LT(residual.inf_norm(), 1e-9);
}

TEST(ThermalModel, SteadyStateMonotoneInVoltage) {
  // More voltage anywhere => no node gets cooler (positivity of the
  // steady-state operator, the property Theorem 3's proof leans on).
  const ThermalModel model = make_model(2, 2);
  const linalg::Vector low{0.8, 0.8, 0.8, 0.8};
  linalg::Vector high = low;
  high[2] = 1.3;
  const linalg::Vector t_low = model.steady_state(low);
  const linalg::Vector t_high = model.steady_state(high);
  for (std::size_t i = 0; i < model.num_nodes(); ++i)
    EXPECT_GE(t_high[i], t_low[i] - 1e-12);
}

TEST(ThermalModel, IdleChipSitsAtAmbient) {
  const ThermalModel model = make_model(1, 2);
  const linalg::Vector t = model.steady_state(linalg::Vector(2));
  EXPECT_LT(t.inf_norm(), 1e-12);
}

TEST(ThermalModel, CoreRiseExtraction) {
  const ThermalModel model = make_model(1, 3);
  linalg::Vector nodes(model.num_nodes());
  for (std::size_t i = 0; i < nodes.size(); ++i)
    nodes[i] = static_cast<double>(i);
  const linalg::Vector cores = model.core_rises(nodes);
  ASSERT_EQ(cores.size(), 3u);
  EXPECT_EQ(cores[0], 0.0);
  EXPECT_EQ(cores[2], 2.0);
  EXPECT_EQ(model.max_core_rise(nodes), 2.0);
}

TEST(ThermalModel, MiddleCoreRunsHotterThanEdges) {
  // The Table II asymmetry: same voltage everywhere, middle die node ends
  // hottest because edge cores couple into the package rim.
  const ThermalModel model = make_model(1, 3);
  const linalg::Vector t = model.steady_state(linalg::Vector(3, 1.2));
  const linalg::Vector cores = model.core_rises(t);
  EXPECT_GT(cores[1], cores[0]);
  EXPECT_GT(cores[1], cores[2]);
  EXPECT_NEAR(cores[0], cores[2], 1e-9);  // mirror symmetry
}

TEST(ThermalModel, SpectralExpMatchesPadeOnA) {
  const ThermalModel model = make_model(1, 2);
  const linalg::Matrix via_spec = model.spectral().exp(0.05);
  const linalg::Matrix via_pade = linalg::expm(model.a_matrix(), 0.05);
  EXPECT_TRUE(linalg::allclose(via_spec, via_pade, 1e-8, 1e-10));
}

TEST(ThermalModel, VoltageVectorSizeViolatesContract) {
  const ThermalModel model = make_model(1, 2);
  EXPECT_THROW((void)model.steady_state(linalg::Vector{1.0}),
               ContractViolation);
}

}  // namespace
}  // namespace foscil::thermal
