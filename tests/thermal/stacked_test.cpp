// 3D stacked-die extension (HotSpotParams::die_tiers > 1): the paper's
// intro motivates the thermal crisis with 3D ICs ("higher power density and
// longer heat removal path"); these tests pin that physics in our model and
// check the whole scheduler stack runs on stacked platforms.
#include <gtest/gtest.h>

#include "../test_support.hpp"
#include "core/ao.hpp"
#include "core/exs.hpp"
#include "core/ideal.hpp"
#include "core/lns.hpp"

namespace foscil::core {
namespace {

/// Package for 3D experiments: stacking doubles the leakage feedback per
/// package column, so the default laptop-grade sink (r = 2.0 K/W per block)
/// would go into genuine thermal runaway (beta * R >= 1) — the model
/// rejects it at construction (see RunawayRejected below).  3D platforms
/// therefore carry the stronger cooling a real 3D part would ship with.
thermal::HotSpotParams stacked_params(std::size_t tiers) {
  thermal::HotSpotParams params;
  params.die_tiers = tiers;
  params.r_convection_block = 0.8;
  params.k_inter_tier = 10.0;  // TSV/micro-bump bonded stack
  return params;
}

Platform stacked_platform(std::size_t rows, std::size_t cols,
                          std::size_t tiers,
                          std::vector<double> levels = {0.6, 1.3}) {
  return make_grid_platform(rows, cols,
                            power::VoltageLevels(std::move(levels)),
                            stacked_params(tiers));
}

/// Planar control with the same strengthened package (fair comparisons).
Platform planar_control(std::size_t rows, std::size_t cols,
                        std::vector<double> levels = {0.6, 1.3}) {
  return make_grid_platform(rows, cols,
                            power::VoltageLevels(std::move(levels)),
                            stacked_params(1));
}

TEST(Stacked, NodeAndCoreCounts) {
  const Platform p = stacked_platform(2, 2, 3);
  EXPECT_EQ(p.num_cores(), 12u);  // 3 tiers x 4 sites
  // 12 die + 4 spreader + 4 sink + 2 rims.
  EXPECT_EQ(p.model->num_nodes(), 22u);
  const auto& net = p.model->network();
  EXPECT_EQ(net.num_tiers(), 3u);
  EXPECT_EQ(net.sites_per_tier(), 4u);
  EXPECT_EQ(net.tier_of(0), 0u);
  EXPECT_EQ(net.tier_of(11), 2u);
  EXPECT_EQ(net.site_of(5), 1u);
  // All tiers of a column share spreader and sink nodes.
  EXPECT_EQ(net.spreader_node(1), net.spreader_node(5));
  EXPECT_EQ(net.sink_node(1), net.sink_node(9));
}

TEST(Stacked, SingleTierMatchesLegacyBehavior) {
  const Platform flat = planar_control(1, 3);
  const Platform one_tier = stacked_platform(1, 3, 1);
  const linalg::Vector v{1.2, 0.9, 1.1};
  const linalg::Vector t_flat = flat.model->steady_state(v);
  const linalg::Vector t_one = one_tier.model->steady_state(v);
  EXPECT_TRUE(linalg::allclose(flat.model->core_rises(t_flat),
                               one_tier.model->core_rises(t_one)));
}

TEST(Stacked, RunawayRejected) {
  // Stacking on the default weak package multiplies the per-column leakage
  // feedback past the conduction budget (beta * R_column >= 1): a real
  // thermal runaway, which the model refuses to construct.  Two tiers on a
  // 2x2 survive; three tiers on a narrow 1x2 footprint do not.
  thermal::HotSpotParams weak;
  weak.die_tiers = 3;  // default r_convection_block = 2.0 K/W
  EXPECT_THROW(make_grid_platform(1, 2, power::VoltageLevels({0.6, 1.3}),
                                  weak),
               ContractViolation);
}

TEST(Stacked, UpperTiersRunHotterUnderUniformLoad) {
  const Platform p = stacked_platform(2, 2, 2);
  const linalg::Vector t = p.model->steady_state(
      linalg::Vector(p.num_cores(), 1.0));
  const linalg::Vector cores = p.model->core_rises(t);
  for (std::size_t site = 0; site < 4; ++site) {
    EXPECT_GT(cores[4 + site], cores[site])
        << "tier-1 core above tier-0 core at site " << site;
  }
}

TEST(Stacked, StackingRaisesTemperatureVsPlanarSameCoreCount) {
  // 8 cores as a 2-tier 2x2 stack run hotter than as a planar 2x4 grid at
  // the same per-core load — the longer heat removal path.
  const Platform stacked = stacked_platform(2, 2, 2);
  const Platform planar = planar_control(2, 4);
  const linalg::Vector v(8, 1.0);
  const double hot_stacked =
      stacked.model->max_core_rise(stacked.model->steady_state(v));
  const double hot_planar =
      planar.model->max_core_rise(planar.model->steady_state(v));
  EXPECT_GT(hot_stacked, hot_planar);
}

TEST(Stacked, SystemRemainsStable) {
  for (std::size_t tiers : {2u, 3u, 4u}) {
    const Platform p = stacked_platform(1, 2, tiers);
    EXPECT_TRUE(p.model->spectral().stable()) << tiers << " tiers";
  }
}

TEST(Stacked, IdealVoltagesLowerOnUpperTiers) {
  const Platform p = stacked_platform(2, 2, 2);
  const IdealVoltages ideal =
      ideal_constant_voltages(*p.model, p.rise_budget(55.0), 1.3);
  for (std::size_t site = 0; site < 4; ++site) {
    EXPECT_LT(ideal.voltages[4 + site], ideal.voltages[site] + 1e-12)
        << "site " << site;
  }
}

TEST(Stacked, SchedulersRunAndOrderCorrectly) {
  const Platform p = stacked_platform(1, 2, 2);
  const double t_max = 55.0;
  const SchedulerResult lns = run_lns(p, t_max);
  const SchedulerResult exs = run_exs(p, t_max);
  const SchedulerResult ao = run_ao(p, t_max);
  for (const auto* r : {&lns, &exs, &ao}) {
    EXPECT_TRUE(r->feasible) << r->scheduler;
    EXPECT_LE(r->peak_celsius, t_max + 1e-6) << r->scheduler;
  }
  EXPECT_GE(exs.throughput, lns.throughput - 1e-12);
  EXPECT_GE(ao.throughput, exs.throughput - 1e-9);
}

TEST(Stacked, OscillationGainGrowsWithStacking) {
  // The thermal headroom argument sharpens in 3D: AO's relative gain over
  // EXS on a stacked chip is at least as large as on the planar chip with
  // the same number of cores.
  const Platform planar = planar_control(2, 2);
  const Platform stacked = stacked_platform(1, 2, 2);
  const double t_max = 55.0;
  const double gain_planar = run_ao(planar, t_max).throughput /
                             run_exs(planar, t_max).throughput;
  const double gain_stacked = run_ao(stacked, t_max).throughput /
                              run_exs(stacked, t_max).throughput;
  EXPECT_GE(gain_stacked, gain_planar - 0.05);
}

TEST(Stacked, InvalidTierParamsViolateContract) {
  thermal::HotSpotParams params;
  params.die_tiers = 0;
  EXPECT_THROW(
      thermal::RcNetwork(thermal::Floorplan(1, 2, 4e-3), params),
      ContractViolation);
  params = thermal::HotSpotParams{};
  params.k_inter_tier = -1.0;
  EXPECT_THROW(
      thermal::RcNetwork(thermal::Floorplan(1, 2, 4e-3), params),
      ContractViolation);
}

}  // namespace
}  // namespace foscil::core
