// Regime calibration checks (see DESIGN.md "Substitutions").
//
// The paper's absolute numbers come from HotSpot-5.02 + McPAT; our
// synthesized package must land in the same *operating regime* so the
// evaluation shapes carry over.  These tests pin that regime:
//   * the 3x1 motivation example (Sec. III): continuous-ideal voltages near
//     [1.2085, 1.1748, 1.2085] V at T_max = 65 C with middle core lowest;
//   * small platforms saturate (run all cores at 1.3 V) for relaxed
//     thresholds while big grids stay strongly constrained at 55 C;
//   * the lowest mode is always feasible at the tightest threshold used in
//     Fig. 7 (50 C), so every experiment has a non-empty feasible set.
#include <gtest/gtest.h>

#include "core/ideal.hpp"
#include "core/platform.hpp"

namespace foscil::core {
namespace {

Platform two_level_platform(std::size_t rows, std::size_t cols) {
  return make_grid_platform(rows, cols, power::VoltageLevels({0.6, 1.3}));
}

TEST(Calibration, MotivationExampleIdealVoltages) {
  const Platform p = two_level_platform(1, 3);
  const IdealVoltages ideal =
      ideal_constant_voltages(*p.model, p.rise_budget(65.0), 1.3);
  // Paper: [1.2085, 1.1748, 1.2085]; we require the same structure within
  // a few hundredths of a volt.
  EXPECT_NEAR(ideal.voltages[0], 1.2085, 0.05);
  EXPECT_NEAR(ideal.voltages[1], 1.1748, 0.05);
  EXPECT_NEAR(ideal.voltages[2], 1.2085, 0.05);
  EXPECT_LT(ideal.voltages[1], ideal.voltages[0]);
  EXPECT_NEAR(ideal.voltages[0], ideal.voltages[2], 1e-9);

  // Chip-wide ideal throughput near the paper's 1.1972.
  const double thr =
      (ideal.voltages[0] + ideal.voltages[1] + ideal.voltages[2]) / 3.0;
  EXPECT_NEAR(thr, 1.1972, 0.05);
}

TEST(Calibration, MotivationExampleConstraintIsActive) {
  // All three cores at 1.3 V must overshoot 65 C, otherwise the whole
  // oscillation machinery would be moot on this platform.
  const Platform p = two_level_platform(1, 3);
  const linalg::Vector t =
      p.model->steady_state(linalg::Vector(3, 1.3));
  EXPECT_GT(p.to_celsius(p.model->max_core_rise(t)), 65.0);
}

TEST(Calibration, TwoCoreChipSaturatesForRelaxedThreshold) {
  // Fig. 7 expects small platforms to hit the top mode once T_max relaxes;
  // our package reaches that just above the paper's 65 C column.
  const Platform p = two_level_platform(1, 2);
  const linalg::Vector t =
      p.model->steady_state(linalg::Vector(2, 1.3));
  const double all_max_c = p.to_celsius(p.model->max_core_rise(t));
  EXPECT_LT(all_max_c, 72.0);
  EXPECT_GT(all_max_c, 60.0);
}

TEST(Calibration, NineCoreChipIsStronglyConstrainedAt55C) {
  const Platform p = two_level_platform(3, 3);
  const IdealVoltages ideal =
      ideal_constant_voltages(*p.model, p.rise_budget(55.0), 1.3);
  double mean = 0.0;
  for (std::size_t i = 0; i < 9; ++i) mean += ideal.voltages[i];
  mean /= 9.0;
  EXPECT_GT(mean, 0.7);   // still well above the floor...
  EXPECT_LT(mean, 1.1);   // ...but far from saturated
  // Center core (index 4) has the least thermal headroom.
  for (std::size_t i = 0; i < 9; ++i)
    if (i != 4) {
      EXPECT_LT(ideal.voltages[4], ideal.voltages[i] + 1e-12);
    }
}

TEST(Calibration, LowestModeFeasibleAtTightestThreshold) {
  for (auto [rows, cols] : {std::pair<std::size_t, std::size_t>{1, 2},
                            {1, 3},
                            {2, 3},
                            {3, 3}}) {
    const Platform p = two_level_platform(rows, cols);
    const linalg::Vector t = p.model->steady_state(
        linalg::Vector(p.num_cores(), 0.6));
    EXPECT_LT(p.to_celsius(p.model->max_core_rise(t)), 50.0)
        << rows << "x" << cols;
  }
}

TEST(Calibration, SingleCoreAtFullTiltStaysModerate) {
  // One active core on a 2-core chip should not hit 65 C by itself — the
  // thermal crisis in the paper is a chip-level, not core-level, effect.
  const Platform p = two_level_platform(1, 2);
  linalg::Vector v(2);
  v[0] = 1.3;
  const linalg::Vector t = p.model->steady_state(v);
  EXPECT_LT(p.to_celsius(p.model->max_core_rise(t)), 65.0);
}

TEST(Calibration, TimeConstantsSpanMilliSecondsToSeconds) {
  // The paper's experiments rely on multi-scale dynamics: die responds in
  // milliseconds (m-oscillation matters at t_p = 5..20 ms) while the sink
  // integrates over seconds (Fig. 3 uses 6 s periods).
  const Platform p = two_level_platform(1, 3);
  const auto& lambda = p.model->spectral().eigenvalues();
  const double fastest = -1.0 / lambda.min();   // most negative eigenvalue
  const double slowest = -1.0 / lambda.max();   // least negative
  EXPECT_LT(fastest, 5e-3);
  EXPECT_GT(slowest, 1.0);
}

}  // namespace
}  // namespace foscil::core
