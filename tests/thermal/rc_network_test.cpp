#include "thermal/rc_network.hpp"

#include <gtest/gtest.h>

#include "linalg/eigen_sym.hpp"
#include "linalg/lu.hpp"

namespace foscil::thermal {
namespace {

RcNetwork make_network(std::size_t rows, std::size_t cols) {
  return RcNetwork(Floorplan(rows, cols, 4e-3), HotSpotParams{});
}

TEST(RcNetwork, NodeCountIsThreePerCorePlusRims) {
  EXPECT_EQ(make_network(1, 2).num_nodes(), 3u * 2u + 2u);
  EXPECT_EQ(make_network(3, 3).num_nodes(), 3u * 9u + 2u);
}

TEST(RcNetwork, NodeIndexingIsDisjointAndLayered) {
  const RcNetwork net = make_network(2, 2);
  for (std::size_t core = 0; core < 4; ++core) {
    EXPECT_EQ(net.layer(net.die_node(core)), NodeLayer::kDie);
    EXPECT_EQ(net.layer(net.spreader_node(core)), NodeLayer::kSpreader);
    EXPECT_EQ(net.layer(net.sink_node(core)), NodeLayer::kSink);
  }
  EXPECT_EQ(net.layer(net.spreader_rim_node()), NodeLayer::kSpreaderRim);
  EXPECT_EQ(net.layer(net.sink_rim_node()), NodeLayer::kSinkRim);
}

TEST(RcNetwork, ConductanceMatrixIsSymmetric) {
  const RcNetwork net = make_network(3, 2);
  EXPECT_EQ(net.conductance().asymmetry(), 0.0);
}

TEST(RcNetwork, OffDiagonalsNonPositiveDiagonalsPositive) {
  const RcNetwork net = make_network(3, 3);
  const auto& g = net.conductance();
  for (std::size_t r = 0; r < net.num_nodes(); ++r) {
    EXPECT_GT(g(r, r), 0.0);
    for (std::size_t c = 0; c < net.num_nodes(); ++c)
      if (r != c) {
        EXPECT_LE(g(r, c), 0.0);
      }
  }
}

TEST(RcNetwork, RowSumsEqualGroundConductance) {
  // G = Laplacian + diag(ground); row sums recover each node's direct path
  // to ambient, which only sink-layer nodes (and the token rim path) have.
  const RcNetwork net = make_network(2, 3);
  const auto& g = net.conductance();
  for (std::size_t r = 0; r < net.num_nodes(); ++r) {
    double row_sum = 0.0;
    for (std::size_t c = 0; c < net.num_nodes(); ++c) row_sum += g(r, c);
    const NodeLayer layer = net.layer(r);
    if (layer == NodeLayer::kSink || layer == NodeLayer::kSinkRim) {
      EXPECT_GT(row_sum, 0.1);
    } else if (layer == NodeLayer::kSpreaderRim) {
      EXPECT_NEAR(row_sum, 1e-6, 1e-9);  // token grounding only
    } else {
      EXPECT_NEAR(row_sum, 0.0, 1e-9);
    }
  }
}

TEST(RcNetwork, ConductanceIsPositiveDefinite) {
  const RcNetwork net = make_network(3, 3);
  const auto eig = linalg::eigen_symmetric(net.conductance());
  EXPECT_GT(eig.eigenvalues.min(), 0.0);
}

TEST(RcNetwork, CapacitancesPositiveAndLayered) {
  const RcNetwork net = make_network(2, 2);
  const auto& c = net.capacitance();
  for (std::size_t i = 0; i < net.num_nodes(); ++i) EXPECT_GT(c[i], 0.0);
  // Sink blocks are far heavier than spreader blocks, which beat the die.
  EXPECT_GT(c[net.sink_node(0)], c[net.spreader_node(0)]);
  EXPECT_GT(c[net.spreader_node(0)], c[net.die_node(0)]);
}

TEST(RcNetwork, DieLateralCouplingOnlyBetweenAdjacentCores) {
  const RcNetwork net = make_network(1, 3);
  const auto& g = net.conductance();
  EXPECT_LT(g(net.die_node(0), net.die_node(1)), 0.0);
  EXPECT_LT(g(net.die_node(1), net.die_node(2)), 0.0);
  EXPECT_EQ(g(net.die_node(0), net.die_node(2)), 0.0);
}

TEST(RcNetwork, BoundaryBlocksCoupleToRimByExposedEdges) {
  // 1x3 grid: edge cores expose 3 sides, the middle core 2.
  const RcNetwork net = make_network(1, 3);
  const auto& g = net.conductance();
  const double edge_to_rim =
      -g(net.sink_node(0), net.sink_rim_node());
  const double middle_to_rim =
      -g(net.sink_node(1), net.sink_rim_node());
  EXPECT_GT(edge_to_rim, 0.0);
  EXPECT_GT(middle_to_rim, 0.0);
  EXPECT_NEAR(edge_to_rim / middle_to_rim, 1.5, 1e-9);
}

TEST(RcNetwork, SteadyStateHeatBalances) {
  // Inject 10 W into one die node; the total heat leaving through every
  // grounded node must equal 10 W (energy conservation).
  const RcNetwork net = make_network(2, 2);
  linalg::Vector heat(net.num_nodes());
  heat[net.die_node(0)] = 10.0;
  const linalg::Vector temps = linalg::solve(net.conductance(), heat);
  double drained = 0.0;
  const auto& g = net.conductance();
  for (std::size_t r = 0; r < net.num_nodes(); ++r) {
    double row_sum = 0.0;
    for (std::size_t c = 0; c < net.num_nodes(); ++c) row_sum += g(r, c);
    drained += row_sum * temps[r];
  }
  EXPECT_NEAR(drained, 10.0, 1e-8);
}

TEST(RcNetwork, HeatedCoreIsHottestNode) {
  const RcNetwork net = make_network(3, 3);
  linalg::Vector heat(net.num_nodes());
  heat[net.die_node(4)] = 15.0;  // center core
  const linalg::Vector temps = linalg::solve(net.conductance(), heat);
  for (std::size_t i = 0; i < net.num_nodes(); ++i) {
    EXPECT_GE(temps[i], -1e-12);  // nothing below ambient
    if (i != net.die_node(4)) {
      EXPECT_LT(temps[i], temps[net.die_node(4)]);
    }
  }
}

TEST(RcNetwork, InvalidParamsViolateContract) {
  HotSpotParams params;
  params.k_silicon = -1.0;
  EXPECT_THROW(RcNetwork(Floorplan(1, 2, 4e-3), params), ContractViolation);
  params = HotSpotParams{};
  params.r_convection_block = 0.0;
  EXPECT_THROW(RcNetwork(Floorplan(1, 2, 4e-3), params), ContractViolation);
}

}  // namespace
}  // namespace foscil::thermal
