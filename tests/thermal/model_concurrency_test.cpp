// Regression tests for the ThermalModel thread-safety contract
// (thermal/model.hpp): the spectral/LU decompositions and every const
// entry point must be safely shareable across threads with no
// synchronization.  These tests run under ThreadSanitizer in CI — a lazily
// initialized cache snuck into the model (or a planner made non-reentrant)
// shows up here as a data race or as a bitwise mismatch against the serial
// reference.
#include <gtest/gtest.h>

#include <barrier>
#include <bit>
#include <thread>
#include <vector>

#include "core/ao.hpp"
#include "sim/peak.hpp"
#include "sim/steady.hpp"
#include "../test_support.hpp"

namespace foscil {
namespace {

constexpr int kThreads = 16;
constexpr int kIterations = 8;

[[nodiscard]] bool bits_equal(const linalg::Vector& a,
                              const linalg::Vector& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a[i]) !=
        std::bit_cast<std::uint64_t>(b[i]))
      return false;
  }
  return true;
}

TEST(ModelConcurrency, SixteenThreadsHammerSpectralAndSteadyState) {
  const core::Platform platform = testing::grid_platform(3, 3);
  const thermal::ThermalModel& model = *platform.model;

  // Serial references, computed before any concurrency starts.
  linalg::Vector voltages(model.num_cores());
  for (std::size_t i = 0; i < voltages.size(); ++i)
    voltages[i] = 0.6 + 0.05 * static_cast<double>(i % 8);
  const linalg::Vector ref_steady = model.steady_state(voltages);
  const linalg::Vector ref_b = model.b_vector(voltages);
  const linalg::Vector ref_exp =
      model.spectral().exp_apply(0.01, ref_steady);
  const thermal::SensitivityBasis ref_sens =
      model.sensitivity(ref_steady, voltages);
  const double ref_peak = model.max_core_rise(ref_steady);

  std::barrier sync(kThreads);
  std::vector<std::thread> threads;
  std::vector<int> mismatches(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      sync.arrive_and_wait();  // maximize overlap on the shared caches
      for (int i = 0; i < kIterations; ++i) {
        if (!bits_equal(model.steady_state(voltages), ref_steady))
          ++mismatches[t];
        if (!bits_equal(model.b_vector(voltages), ref_b)) ++mismatches[t];
        if (!bits_equal(model.spectral().exp_apply(0.01, ref_steady),
                        ref_exp))
          ++mismatches[t];
        const thermal::SensitivityBasis sens =
            model.sensitivity(ref_steady, voltages);
        for (std::size_t r = 0; r < sens.steady.rows(); ++r)
          for (std::size_t c = 0; c < sens.steady.cols(); ++c)
            if (sens.steady(r, c) != ref_sens.steady(r, c)) ++mismatches[t];
        if (model.max_core_rise(ref_steady) != ref_peak) ++mismatches[t];
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0);
}

TEST(ModelConcurrency, ConcurrentAnalyzersShareOneModel) {
  const core::Platform platform = testing::grid_platform(2, 2);
  Rng rng(2024);
  const sched::PeriodicSchedule schedule =
      testing::random_schedule(rng, platform.num_cores(), 0.05, 3);

  const sim::SteadyStateAnalyzer reference(platform.model);
  const linalg::Vector ref_boundary = reference.stable_boundary(schedule);

  std::barrier sync(kThreads);
  std::vector<std::thread> threads;
  std::vector<int> mismatches(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const sim::SteadyStateAnalyzer analyzer(platform.model);
      sync.arrive_and_wait();
      for (int i = 0; i < kIterations; ++i) {
        if (!bits_equal(analyzer.stable_boundary(schedule), ref_boundary))
          ++mismatches[t];
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0);
}

// The planner entry points are documented as reentrant pure functions of
// their arguments: concurrent run_ao calls over one shared Platform must
// produce bit-identical plans.
TEST(ModelConcurrency, ConcurrentAoPlansAreBitIdenticalToSerial) {
  const core::Platform platform = testing::grid_platform(2, 2);
  const double t_max_c = 55.0;
  const core::SchedulerResult reference = core::run_ao(platform, t_max_c);

  constexpr int kPlanners = 8;
  std::barrier sync(kPlanners);
  std::vector<std::thread> threads;
  std::vector<int> mismatches(kPlanners, 0);
  for (int t = 0; t < kPlanners; ++t) {
    threads.emplace_back([&, t] {
      sync.arrive_and_wait();
      const core::SchedulerResult mine = core::run_ao(platform, t_max_c);
      if (mine.feasible != reference.feasible ||
          std::bit_cast<std::uint64_t>(mine.throughput) !=
              std::bit_cast<std::uint64_t>(reference.throughput) ||
          std::bit_cast<std::uint64_t>(mine.peak_rise) !=
              std::bit_cast<std::uint64_t>(reference.peak_rise) ||
          mine.m != reference.m ||
          mine.evaluations != reference.evaluations)
        ++mismatches[t];
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kPlanners; ++t) EXPECT_EQ(mismatches[t], 0);
}

}  // namespace
}  // namespace foscil
