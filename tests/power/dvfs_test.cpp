#include "power/dvfs.hpp"

#include <gtest/gtest.h>

namespace foscil::power {
namespace {

TEST(VoltageLevels, SortsAndDeduplicates) {
  const VoltageLevels levels({1.3, 0.6, 0.8, 0.8});
  ASSERT_EQ(levels.count(), 3u);
  EXPECT_EQ(levels.level(0), 0.6);
  EXPECT_EQ(levels.level(1), 0.8);
  EXPECT_EQ(levels.level(2), 1.3);
  EXPECT_EQ(levels.lowest(), 0.6);
  EXPECT_EQ(levels.highest(), 1.3);
}

TEST(VoltageLevels, RejectsEmptyOrNonPositive) {
  EXPECT_THROW(VoltageLevels({}), ContractViolation);
  EXPECT_THROW(VoltageLevels({0.0, 1.0}), ContractViolation);
  EXPECT_THROW(VoltageLevels({-0.5}), ContractViolation);
}

TEST(VoltageLevels, Contains) {
  const VoltageLevels levels({0.6, 0.8, 1.3});
  EXPECT_TRUE(levels.contains(0.8));
  EXPECT_TRUE(levels.contains(0.8 + 1e-13));
  EXPECT_FALSE(levels.contains(0.7));
}

TEST(VoltageLevels, FloorAndCeil) {
  const VoltageLevels levels({0.6, 0.8, 1.3});
  EXPECT_EQ(levels.floor_level(0.7).value(), 0.6);
  EXPECT_EQ(levels.floor_level(0.8).value(), 0.8);
  EXPECT_EQ(levels.floor_level(2.0).value(), 1.3);
  EXPECT_FALSE(levels.floor_level(0.5).has_value());
  EXPECT_EQ(levels.ceil_level(0.7).value(), 0.8);
  EXPECT_EQ(levels.ceil_level(0.8).value(), 0.8);
  EXPECT_EQ(levels.ceil_level(0.1).value(), 0.6);
  EXPECT_FALSE(levels.ceil_level(1.4).has_value());
}

TEST(VoltageLevels, NeighborsBracketInteriorTarget) {
  const VoltageLevels levels({0.6, 0.8, 1.0, 1.3});
  const NeighboringModes modes = levels.neighbors(0.93);
  EXPECT_EQ(modes.low, 0.8);
  EXPECT_EQ(modes.high, 1.0);
  EXPECT_FALSE(modes.exact());
}

TEST(VoltageLevels, NeighborsExactWhenTargetIsALevel) {
  const VoltageLevels levels({0.6, 0.8, 1.3});
  const NeighboringModes modes = levels.neighbors(0.8);
  EXPECT_TRUE(modes.exact());
  EXPECT_EQ(modes.low, 0.8);
}

TEST(VoltageLevels, NeighborsClampOutOfRangeTargets) {
  const VoltageLevels levels({0.6, 1.3});
  const NeighboringModes below = levels.neighbors(0.4);
  EXPECT_TRUE(below.exact());
  EXPECT_EQ(below.low, 0.6);
  const NeighboringModes above = levels.neighbors(1.5);
  EXPECT_TRUE(above.exact());
  EXPECT_EQ(above.high, 1.3);
}

TEST(VoltageLevels, PaperTable4Sets) {
  EXPECT_EQ(VoltageLevels::paper_table4(2).count(), 2u);
  EXPECT_EQ(VoltageLevels::paper_table4(3).count(), 3u);
  EXPECT_EQ(VoltageLevels::paper_table4(4).count(), 4u);
  EXPECT_EQ(VoltageLevels::paper_table4(5).count(), 5u);
  // Every Table IV set spans [0.6, 1.3].
  for (int n = 2; n <= 5; ++n) {
    const VoltageLevels levels = VoltageLevels::paper_table4(n);
    EXPECT_EQ(levels.lowest(), 0.6);
    EXPECT_EQ(levels.highest(), 1.3);
  }
  EXPECT_THROW((void)VoltageLevels::paper_table4(6), ContractViolation);
}

TEST(VoltageLevels, PaperFullRangeHas15StepsOf50mV) {
  const VoltageLevels levels = VoltageLevels::paper_full_range();
  ASSERT_EQ(levels.count(), 15u);
  for (std::size_t i = 0; i + 1 < levels.count(); ++i)
    EXPECT_NEAR(levels.level(i + 1) - levels.level(i), 0.05, 1e-12);
}

TEST(SpeedOf, EqualsVoltage) {
  EXPECT_EQ(speed_of(1.2), 1.2);
  EXPECT_EQ(speed_of(0.0), 0.0);
  EXPECT_THROW((void)speed_of(-0.1), ContractViolation);
}

}  // namespace
}  // namespace foscil::power
