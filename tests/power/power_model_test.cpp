#include "power/power_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace foscil::power {
namespace {

TEST(PowerModel, PsiMatchesEquationOne) {
  const PowerModel model(PowerModel::Coefficients{1.5, 0.2, 7.0});
  const double v = 1.1;
  EXPECT_NEAR(model.psi(v), 1.5 + 7.0 * v * v * v, 1e-12);
}

TEST(PowerModel, TotalAddsLeakageFeedback) {
  const PowerModel model(PowerModel::Coefficients{1.0, 0.3, 9.0});
  const double v = 1.2;
  EXPECT_NEAR(model.total(v, 25.0), model.psi(v) + 0.3 * 25.0, 1e-12);
}

TEST(PowerModel, PowerGatedCoreConsumesNothing) {
  const PowerModel model;
  EXPECT_EQ(model.psi(0.0), 0.0);
  EXPECT_EQ(model.total(0.0, 40.0), 0.0);
  EXPECT_EQ(model.alpha(0.0), 0.0);
}

TEST(PowerModel, PsiIsStrictlyIncreasingInVoltage) {
  const PowerModel model;
  double prev = model.psi(0.1);
  for (double v = 0.2; v <= 1.4; v += 0.1) {
    const double cur = model.psi(v);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(PowerModel, PsiIsConvexOnActiveRange) {
  // Convexity of psi(v) underpins Theorem 3 (T_e <= x T_L + (1-x) T_H).
  const PowerModel model;
  for (double a = 0.6; a <= 1.2; a += 0.1) {
    const double b = a + 0.1;
    for (double x : {0.25, 0.5, 0.75}) {
      const double mid = x * a + (1.0 - x) * b;
      EXPECT_LE(model.psi(mid),
                x * model.psi(a) + (1.0 - x) * model.psi(b) + 1e-12);
    }
  }
}

TEST(PowerModel, VoltageForPsiInvertsActiveRange) {
  const PowerModel model;
  for (double v = 0.6; v <= 1.3; v += 0.05) {
    EXPECT_NEAR(model.voltage_for_psi(model.psi(v)), v, 1e-12);
  }
}

TEST(PowerModel, VoltageForPsiClampsBelowLeakageFloor) {
  const PowerModel model(PowerModel::Coefficients{2.0, 0.3, 9.0});
  EXPECT_EQ(model.voltage_for_psi(1.9), 0.0);
  EXPECT_EQ(model.voltage_for_psi(0.0), 0.0);
  EXPECT_EQ(model.voltage_for_psi(-5.0), 0.0);
}

TEST(PowerModel, DefaultsMatchDesignDoc) {
  const PowerModel model;
  EXPECT_EQ(model.coefficients().alpha, 1.0);
  EXPECT_EQ(model.coefficients().beta, 0.3);
  EXPECT_EQ(model.coefficients().gamma, 9.0);
}

TEST(PowerModel, NegativeCoefficientsViolateContract) {
  EXPECT_THROW(PowerModel(PowerModel::Coefficients{-1.0, 0.3, 9.0}),
               ContractViolation);
  EXPECT_THROW(PowerModel(PowerModel::Coefficients{1.0, -0.1, 9.0}),
               ContractViolation);
  EXPECT_THROW(PowerModel(PowerModel::Coefficients{1.0, 0.3, 0.0}),
               ContractViolation);
}

TEST(PowerModel, NegativeVoltageViolatesContract) {
  const PowerModel model;
  EXPECT_THROW((void)model.psi(-0.2), ContractViolation);
}

}  // namespace
}  // namespace foscil::power
