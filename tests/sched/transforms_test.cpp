#include "sched/transforms.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace foscil::sched {
namespace {

PeriodicSchedule random_schedule(Rng& rng, std::size_t cores,
                                 double period, int max_segments) {
  PeriodicSchedule s(cores, period);
  for (std::size_t core = 0; core < cores; ++core) {
    const int count = rng.uniform_int(1, max_segments);
    const std::vector<double> weights =
        rng.simplex(static_cast<std::size_t>(count));
    std::vector<Segment> segments;
    for (double w : weights)
      segments.push_back({w * period, rng.uniform(0.6, 1.3)});
    s.set_core_segments(core, std::move(segments));
  }
  return s;
}

TEST(ToStepUp, SortsVoltagesAscendingPerCore) {
  PeriodicSchedule s(2, 1.0);
  s.set_core_segments(0, {{0.2, 1.3}, {0.3, 0.6}, {0.5, 1.0}});
  s.set_core_segments(1, {{0.6, 0.9}, {0.4, 0.7}});
  const PeriodicSchedule up = to_step_up(s);
  EXPECT_TRUE(up.is_step_up());
  const auto& c0 = up.core_segments(0);
  EXPECT_EQ(c0[0].voltage, 0.6);
  EXPECT_EQ(c0[1].voltage, 1.0);
  EXPECT_EQ(c0[2].voltage, 1.3);
  EXPECT_NEAR(c0[0].duration, 0.3, 1e-12);
}

TEST(ToStepUp, PreservesWorkAndThroughput) {
  Rng rng(41);
  for (int trial = 0; trial < 10; ++trial) {
    const PeriodicSchedule s = random_schedule(rng, 3, 2.0, 5);
    const PeriodicSchedule up = to_step_up(s);
    EXPECT_NEAR(up.throughput(), s.throughput(), 1e-12);
    for (std::size_t core = 0; core < 3; ++core)
      EXPECT_NEAR(up.core_work(core), s.core_work(core), 1e-12);
    EXPECT_TRUE(up.is_step_up());
  }
}

TEST(ToStepUp, IdempotentOnStepUpInput) {
  PeriodicSchedule s(1, 1.0);
  s.set_core_segments(0, {{0.4, 0.6}, {0.6, 1.3}});
  const PeriodicSchedule up = to_step_up(s);
  const auto& segments = up.core_segments(0);
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].voltage, 0.6);
  EXPECT_NEAR(segments[0].duration, 0.4, 1e-12);
}

TEST(MOscillate, ScalesPeriodAndKeepsVoltages) {
  PeriodicSchedule s(2, 1.0);
  s.set_core_segments(0, {{0.4, 0.6}, {0.6, 1.3}});
  s.set_core_segments(1, {{1.0, 0.8}});
  const PeriodicSchedule osc = m_oscillate(s, 4);
  EXPECT_DOUBLE_EQ(osc.period(), 0.25);
  const auto& c0 = osc.core_segments(0);
  EXPECT_NEAR(c0[0].duration, 0.1, 1e-12);
  EXPECT_EQ(c0[0].voltage, 0.6);
  EXPECT_NEAR(c0[1].duration, 0.15, 1e-12);
  EXPECT_EQ(c0[1].voltage, 1.3);
}

TEST(MOscillate, MOf1IsIdentity) {
  Rng rng(43);
  const PeriodicSchedule s = random_schedule(rng, 2, 0.5, 4);
  const PeriodicSchedule same = m_oscillate(s, 1);
  EXPECT_EQ(same.period(), s.period());
  EXPECT_NEAR(same.throughput(), s.throughput(), 1e-12);
}

TEST(MOscillate, ThroughputInvariantForAnyM) {
  Rng rng(45);
  const PeriodicSchedule s = random_schedule(rng, 3, 1.0, 4);
  for (int m : {2, 3, 10, 57})
    EXPECT_NEAR(m_oscillate(s, m).throughput(), s.throughput(), 1e-12);
}

TEST(MOscillate, RepeatedMTimesCoversOriginalPeriodWork) {
  PeriodicSchedule s(1, 0.8);
  s.set_core_segments(0, {{0.3, 0.7}, {0.5, 1.2}});
  const int m = 5;
  const PeriodicSchedule osc = m_oscillate(s, m);
  EXPECT_NEAR(static_cast<double>(m) * osc.core_work(0), s.core_work(0),
              1e-12);
}

TEST(MOscillate, InvalidMViolatesContract) {
  const PeriodicSchedule s(1, 1.0);
  EXPECT_THROW((void)m_oscillate(s, 0), ContractViolation);
  EXPECT_THROW((void)m_oscillate(s, -2), ContractViolation);
}

TEST(PhaseShift, RotatesPattern) {
  PeriodicSchedule s(1, 1.0);
  s.set_core_segments(0, {{0.4, 0.6}, {0.6, 1.3}});
  const PeriodicSchedule shifted = phase_shift(s, 0, 0.25);
  // v'(t) = v(t - 0.25): the low interval [0, 0.4) moves to [0.25, 0.65).
  EXPECT_EQ(shifted.voltage_at(0, 0.1), 1.3);
  EXPECT_EQ(shifted.voltage_at(0, 0.3), 0.6);
  EXPECT_EQ(shifted.voltage_at(0, 0.5), 0.6);
  EXPECT_EQ(shifted.voltage_at(0, 0.7), 1.3);
}

TEST(PhaseShift, ZeroAndFullPeriodShiftsAreIdentity) {
  PeriodicSchedule s(1, 1.0);
  s.set_core_segments(0, {{0.4, 0.6}, {0.6, 1.3}});
  for (double offset : {0.0, 1.0, 2.0}) {
    const PeriodicSchedule shifted = phase_shift(s, 0, offset);
    for (double t : {0.1, 0.39, 0.41, 0.99})
      EXPECT_EQ(shifted.voltage_at(0, t), s.voltage_at(0, t)) << offset;
  }
}

TEST(PhaseShift, PreservesWorkForArbitraryOffsets) {
  Rng rng(47);
  for (int trial = 0; trial < 10; ++trial) {
    const PeriodicSchedule s = random_schedule(rng, 2, 1.5, 4);
    const double offset = rng.uniform(0.0, 3.0);
    const PeriodicSchedule shifted = phase_shift(s, 0, offset);
    EXPECT_NEAR(shifted.core_work(0), s.core_work(0), 1e-9);
    EXPECT_NEAR(shifted.core_work(1), s.core_work(1), 1e-12);
  }
}

TEST(PhaseShift, OnlyTargetsRequestedCore) {
  PeriodicSchedule s(2, 1.0);
  s.set_core_segments(0, {{0.5, 0.6}, {0.5, 1.3}});
  s.set_core_segments(1, {{0.5, 0.7}, {0.5, 1.1}});
  const PeriodicSchedule shifted = phase_shift(s, 0, 0.5);
  EXPECT_EQ(shifted.voltage_at(1, 0.25), 0.7);
  EXPECT_EQ(shifted.voltage_at(1, 0.75), 1.1);
}

TEST(PhaseShift, NegativeOffsetWrapsBackwards) {
  PeriodicSchedule s(1, 1.0);
  s.set_core_segments(0, {{0.4, 0.6}, {0.6, 1.3}});
  const PeriodicSchedule fwd = phase_shift(s, 0, 0.75);
  const PeriodicSchedule bwd = phase_shift(s, 0, -0.25);
  for (double t : {0.05, 0.3, 0.6, 0.9})
    EXPECT_EQ(fwd.voltage_at(0, t), bwd.voltage_at(0, t));
}

TEST(PhaseShift, CoreOutOfRangeViolatesContract) {
  const PeriodicSchedule s(1, 1.0);
  EXPECT_THROW((void)phase_shift(s, 1, 0.1), ContractViolation);
}

}  // namespace
}  // namespace foscil::sched
