#include "sched/schedule.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>

namespace foscil::sched {
namespace {

PeriodicSchedule two_core_example() {
  // core0: 0.6 V for 40 ms then 1.3 V for 60 ms
  // core1: 1.0 V for 70 ms then 1.2 V for 30 ms
  PeriodicSchedule s(2, 0.1);
  s.set_core_segments(0, {{0.04, 0.6}, {0.06, 1.3}});
  s.set_core_segments(1, {{0.07, 1.0}, {0.03, 1.2}});
  return s;
}

TEST(PeriodicSchedule, DefaultsToIdleCores) {
  const PeriodicSchedule s(3, 1.0);
  EXPECT_EQ(s.num_cores(), 3u);
  EXPECT_EQ(s.period(), 1.0);
  EXPECT_EQ(s.voltage_at(0, 0.5), 0.0);
  EXPECT_EQ(s.throughput(), 0.0);
}

TEST(PeriodicSchedule, ConstantBuilder) {
  const auto s =
      PeriodicSchedule::constant(linalg::Vector{1.0, 0.8}, 0.5);
  EXPECT_EQ(s.voltage_at(0, 0.2), 1.0);
  EXPECT_EQ(s.voltage_at(1, 0.49), 0.8);
  EXPECT_DOUBLE_EQ(s.throughput(), 0.9);
}

TEST(PeriodicSchedule, VoltageAtWrapsPeriodically) {
  const PeriodicSchedule s = two_core_example();
  EXPECT_EQ(s.voltage_at(0, 0.02), 0.6);
  EXPECT_EQ(s.voltage_at(0, 0.05), 1.3);
  EXPECT_EQ(s.voltage_at(0, 0.12), 0.6);   // wrapped
  EXPECT_EQ(s.voltage_at(0, -0.03), 1.3);  // negative time wraps too
}

TEST(PeriodicSchedule, SegmentsMustFillPeriod) {
  PeriodicSchedule s(1, 1.0);
  EXPECT_THROW(s.set_core_segments(0, {{0.5, 1.0}}), ContractViolation);
  EXPECT_THROW(s.set_core_segments(0, {{0.5, 1.0}, {0.6, 0.5}}),
               ContractViolation);
  EXPECT_THROW(s.set_core_segments(0, {}), ContractViolation);
  EXPECT_THROW(s.set_core_segments(0, {{1.0, -0.1}}), ContractViolation);
  EXPECT_THROW(s.set_core_segments(0, {{-0.1, 1.0}, {1.1, 1.0}}),
               ContractViolation);
}

TEST(PeriodicSchedule, TinyRoundingInDurationsIsRescaled) {
  PeriodicSchedule s(1, 1.0);
  s.set_core_segments(0, {{0.5 + 1e-13, 1.0}, {0.5, 0.6}});
  double total = 0.0;
  for (const auto& seg : s.core_segments(0)) total += seg.duration;
  EXPECT_DOUBLE_EQ(total, 1.0);
}

TEST(PeriodicSchedule, RestoreCoreSegmentsIsVerbatim) {
  // The snapshot loader (serve/snapshot) must reproduce saved schedules bit
  // for bit, so restore_core_segments skips the rescale that
  // set_core_segments applies to tiny rounding residue.
  const double head = 0.5 + 1e-13;
  PeriodicSchedule rescaled(1, 1.0);
  rescaled.set_core_segments(0, {{head, 1.0}, {0.5, 0.6}});
  EXPECT_NE(std::bit_cast<std::uint64_t>(rescaled.core_segments(0)[0].duration),
            std::bit_cast<std::uint64_t>(head))
      << "set_core_segments should have rescaled this duration";

  PeriodicSchedule verbatim(1, 1.0);
  verbatim.restore_core_segments(0, {{head, 1.0}, {0.5, 0.6}});
  EXPECT_EQ(std::bit_cast<std::uint64_t>(verbatim.core_segments(0)[0].duration),
            std::bit_cast<std::uint64_t>(head));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(verbatim.core_segments(0)[1].duration),
            std::bit_cast<std::uint64_t>(0.5));
  EXPECT_DOUBLE_EQ(verbatim.core_segments(0)[0].voltage, 1.0);
}

TEST(PeriodicSchedule, RestoreCoreSegmentsStillValidates) {
  PeriodicSchedule s(1, 1.0);
  EXPECT_THROW(s.restore_core_segments(0, {{0.5, 1.0}}), ContractViolation);
  EXPECT_THROW(s.restore_core_segments(0, {}), ContractViolation);
  EXPECT_THROW(s.restore_core_segments(0, {{1.0, -0.1}}), ContractViolation);
  EXPECT_THROW(s.restore_core_segments(1, {{1.0, 0.6}}), ContractViolation);
}

TEST(PeriodicSchedule, StateIntervalsMergeBreakpoints) {
  const PeriodicSchedule s = two_core_example();
  const auto intervals = s.state_intervals();
  // Breakpoints at 0.04 (core0) and 0.07 (core1) => 3 intervals.
  ASSERT_EQ(intervals.size(), 3u);
  EXPECT_NEAR(intervals[0].length, 0.04, 1e-12);
  EXPECT_NEAR(intervals[1].length, 0.03, 1e-12);
  EXPECT_NEAR(intervals[2].length, 0.03, 1e-12);
  EXPECT_EQ(intervals[0].voltages[0], 0.6);
  EXPECT_EQ(intervals[0].voltages[1], 1.0);
  EXPECT_EQ(intervals[1].voltages[0], 1.3);
  EXPECT_EQ(intervals[1].voltages[1], 1.0);
  EXPECT_EQ(intervals[2].voltages[0], 1.3);
  EXPECT_EQ(intervals[2].voltages[1], 1.2);
}

TEST(PeriodicSchedule, StateIntervalsCoverPeriodExactly) {
  const PeriodicSchedule s = two_core_example();
  double total = 0.0;
  for (const auto& interval : s.state_intervals()) total += interval.length;
  EXPECT_NEAR(total, s.period(), 1e-12);
}

TEST(PeriodicSchedule, CoincidentBreakpointsProduceNoSlivers) {
  PeriodicSchedule s(2, 1.0);
  s.set_core_segments(0, {{0.5, 0.6}, {0.5, 1.3}});
  s.set_core_segments(1, {{0.5, 1.3}, {0.5, 0.6}});
  EXPECT_EQ(s.state_intervals().size(), 2u);
}

TEST(PeriodicSchedule, ThroughputIsWorkOverTime) {
  const PeriodicSchedule s = two_core_example();
  const double core0 = 0.04 * 0.6 + 0.06 * 1.3;
  const double core1 = 0.07 * 1.0 + 0.03 * 1.2;
  EXPECT_NEAR(s.throughput(), (core0 + core1) / (2.0 * 0.1), 1e-12);
  EXPECT_NEAR(s.core_work(0), core0, 1e-12);
  EXPECT_NEAR(s.core_work(1), core1, 1e-12);
}

TEST(PeriodicSchedule, StepUpDetection) {
  PeriodicSchedule s(2, 1.0);
  s.set_core_segments(0, {{0.3, 0.6}, {0.7, 1.3}});
  s.set_core_segments(1, {{0.5, 0.8}, {0.5, 0.8}});
  EXPECT_TRUE(s.is_step_up());
  s.set_core_segments(1, {{0.5, 1.0}, {0.5, 0.8}});
  EXPECT_FALSE(s.is_step_up());
}

TEST(PeriodicSchedule, SimplifiedMergesEqualNeighbors) {
  PeriodicSchedule s(1, 1.0);
  s.set_core_segments(0, {{0.2, 0.6}, {0.3, 0.6}, {0.5, 1.3}});
  const PeriodicSchedule simple = s.simplified();
  ASSERT_EQ(simple.core_segments(0).size(), 2u);
  EXPECT_NEAR(simple.core_segments(0)[0].duration, 0.5, 1e-12);
  EXPECT_EQ(simple.core_segments(0)[0].voltage, 0.6);
  // Work is preserved.
  EXPECT_NEAR(simple.core_work(0), s.core_work(0), 1e-12);
}

TEST(PeriodicSchedule, InvalidConstructionViolatesContract) {
  EXPECT_THROW(PeriodicSchedule(0, 1.0), ContractViolation);
  EXPECT_THROW(PeriodicSchedule(2, 0.0), ContractViolation);
  EXPECT_THROW(PeriodicSchedule(2, -1.0), ContractViolation);
}

TEST(PeriodicSchedule, CoreIndexOutOfRangeViolatesContract) {
  PeriodicSchedule s(2, 1.0);
  EXPECT_THROW((void)s.core_segments(2), ContractViolation);
  EXPECT_THROW((void)s.voltage_at(2, 0.0), ContractViolation);
  EXPECT_THROW(s.set_core_segments(2, {{1.0, 0.6}}), ContractViolation);
}

}  // namespace
}  // namespace foscil::sched
