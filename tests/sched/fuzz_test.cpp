// Randomized stress tests of the schedule algebra: many-segment schedules,
// repeated transform compositions, and invariants that must survive any
// combination (period coverage, work conservation, voltage-set closure).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "../test_support.hpp"

namespace foscil::sched {
namespace {

TEST(ScheduleFuzz, ManySegmentStateIntervalsStayConsistent) {
  Rng rng(1301);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t cores = 1 + rng.index(6);
    const double period = rng.uniform(0.01, 5.0);
    const auto s = testing::random_schedule(
        rng, cores, period, 50);  // up to 50 segments per core

    const auto intervals = s.state_intervals();
    double covered = 0.0;
    for (const auto& interval : intervals) {
      EXPECT_GT(interval.length, 0.0);
      // Interval voltage must match the point query at its midpoint.
      const double mid = interval.start + 0.5 * interval.length;
      for (std::size_t core = 0; core < cores; ++core)
        EXPECT_EQ(interval.voltages[core], s.voltage_at(core, mid));
      covered += interval.length;
    }
    EXPECT_NEAR(covered, period, 1e-9 * period) << "trial " << trial;
  }
}

TEST(ScheduleFuzz, TransformCompositionsConserveWork) {
  Rng rng(1303);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t cores = 2 + rng.index(4);
    const double period = rng.uniform(0.05, 2.0);
    auto s = testing::random_schedule(rng, cores, period, 8);
    const std::vector<double> work = [&] {
      std::vector<double> w;
      for (std::size_t c = 0; c < cores; ++c) w.push_back(s.core_work(c));
      return w;
    }();

    // Random chain of transforms (m-oscillate scales work by 1/m).
    double scale = 1.0;
    for (int step = 0; step < 6; ++step) {
      switch (rng.index(3)) {
        case 0:
          s = to_step_up(s);
          break;
        case 1: {
          const int m = rng.uniform_int(2, 5);
          s = m_oscillate(s, m);
          scale /= m;
          break;
        }
        default:
          s = phase_shift(s, rng.index(cores),
                          rng.uniform(0.0, s.period()));
          break;
      }
    }
    for (std::size_t c = 0; c < cores; ++c)
      EXPECT_NEAR(s.core_work(c), work[c] * scale, 1e-9)
          << "trial " << trial << " core " << c;
  }
}

TEST(ScheduleFuzz, TransformsNeverInventVoltages) {
  Rng rng(1305);
  const std::vector<double> levels{0.6, 0.8, 1.0, 1.3};
  auto s = testing::random_schedule(rng, 3, 1.0, 10, levels);
  s = phase_shift(m_oscillate(to_step_up(s), 3), 1, 0.123);
  std::set<double> seen;
  for (std::size_t core = 0; core < 3; ++core)
    for (const auto& seg : s.core_segments(core)) seen.insert(seg.voltage);
  for (double v : seen)
    EXPECT_NE(std::find(levels.begin(), levels.end(), v), levels.end())
        << v;
}

TEST(ScheduleFuzz, SimplifiedIsIdempotentAndEquivalent) {
  Rng rng(1307);
  for (int trial = 0; trial < 10; ++trial) {
    const auto s = testing::random_schedule(rng, 2, 1.0, 30,
                                            {0.6, 0.6, 1.3});  // forced dups
    const auto once = s.simplified();
    const auto twice = once.simplified();
    EXPECT_EQ(once.core_segments(0).size(), twice.core_segments(0).size());
    for (double t : {0.05, 0.31, 0.77, 0.99}) {
      EXPECT_EQ(s.voltage_at(0, t), once.voltage_at(0, t));
      EXPECT_EQ(s.voltage_at(1, t), once.voltage_at(1, t));
    }
  }
}

TEST(ScheduleFuzz, StepUpThenOscillateEqualsOscillateThenStepUp) {
  // The two transforms commute (both act per-core, one on order, one on
  // scale).
  Rng rng(1309);
  const auto s = testing::random_schedule(rng, 3, 0.6, 6);
  const auto a = m_oscillate(to_step_up(s), 4);
  const auto b = to_step_up(m_oscillate(s, 4));
  ASSERT_EQ(a.period(), b.period());
  for (std::size_t core = 0; core < 3; ++core) {
    const auto& sa = a.core_segments(core);
    const auto& sb = b.core_segments(core);
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t k = 0; k < sa.size(); ++k) {
      EXPECT_NEAR(sa[k].duration, sb[k].duration, 1e-12);
      EXPECT_EQ(sa[k].voltage, sb[k].voltage);
    }
  }
}

}  // namespace
}  // namespace foscil::sched
