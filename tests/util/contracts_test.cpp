#include "util/contracts.hpp"

#include <gtest/gtest.h>

#include "util/stopwatch.hpp"

namespace foscil {
namespace {

TEST(Contracts, PassingChecksAreSilent) {
  EXPECT_NO_THROW(FOSCIL_EXPECTS(1 + 1 == 2));
  EXPECT_NO_THROW(FOSCIL_ENSURES(true));
  EXPECT_NO_THROW(FOSCIL_ASSERT(42 > 0));
}

TEST(Contracts, FailuresThrowContractViolation) {
  EXPECT_THROW(FOSCIL_EXPECTS(false), ContractViolation);
  EXPECT_THROW(FOSCIL_ENSURES(2 < 1), ContractViolation);
  EXPECT_THROW(FOSCIL_ASSERT(false), ContractViolation);
}

TEST(Contracts, MessageCarriesKindExpressionAndLocation) {
  try {
    FOSCIL_EXPECTS(1 == 2);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("Precondition"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("contracts_test.cpp"), std::string::npos);
  }
  try {
    FOSCIL_ENSURES(false);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& error) {
    EXPECT_NE(std::string(error.what()).find("Postcondition"),
              std::string::npos);
  }
  try {
    FOSCIL_ASSERT(false);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& error) {
    EXPECT_NE(std::string(error.what()).find("Invariant"),
              std::string::npos);
  }
}

TEST(Contracts, IsALogicError) {
  // Callers may catch std::logic_error generically.
  EXPECT_THROW(FOSCIL_EXPECTS(false), std::logic_error);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch timer;
  // Busy-wait a tiny, bounded amount.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  const double t1 = timer.seconds();
  EXPECT_GE(t1, 0.0);
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  const double t2 = timer.seconds();
  EXPECT_GE(t2, t1);  // monotone
  EXPECT_NEAR(timer.millis(), timer.seconds() * 1e3,
              timer.seconds() * 20.0);  // same clock, ~consistent units
}

TEST(Stopwatch, RestartResetsTheOrigin) {
  Stopwatch timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 200000; ++i) sink = sink + static_cast<double>(i);
  const double before = timer.seconds();
  timer.restart();
  EXPECT_LE(timer.seconds(), before + 1e-3);
}

}  // namespace
}  // namespace foscil
