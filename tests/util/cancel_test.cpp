// CancelToken semantics: flag, deadline arming/extension/clearing, and the
// coalescing-friendly "max deadline wins, no deadline beats all" ordering.
#include "util/cancel.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace foscil {
namespace {

using Clock = CancelToken::Clock;

TEST(CancelToken, StartsInertAndFiresOnExplicitCancel) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.has_deadline());
  EXPECT_NO_THROW(token.throw_if_cancelled());

  token.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_THROW(token.throw_if_cancelled(), CancelledError);
}

TEST(CancelToken, DeadlineInThePastFiresImmediately) {
  CancelToken token;
  token.set_deadline(Clock::now() - std::chrono::milliseconds(1));
  EXPECT_TRUE(token.cancelled());
  EXPECT_THROW(token.throw_if_cancelled(), CancelledError);
}

TEST(CancelToken, FutureDeadlineDoesNotFireEarly) {
  CancelToken token;
  token.set_deadline(Clock::now() + std::chrono::hours(1));
  EXPECT_TRUE(token.has_deadline());
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelToken, DeadlinePassingFiresTheToken) {
  CancelToken token;
  token.set_deadline(Clock::now() + std::chrono::milliseconds(5));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(token.cancelled());
}

TEST(CancelToken, ExtendMovesTheDeadlineLaterNeverEarlier) {
  CancelToken token;
  const Clock::time_point late = Clock::now() + std::chrono::hours(1);
  token.set_deadline(late);
  // An earlier proposal must not shorten the budget.
  token.extend_deadline(Clock::now() - std::chrono::hours(1));
  EXPECT_FALSE(token.cancelled());
  // A later proposal takes effect (observable as still-not-cancelled after
  // replacing with a past deadline first).
  token.set_deadline(Clock::now() - std::chrono::milliseconds(1));
  token.extend_deadline(late);
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelToken, ClearRemovesTheDeadlineAndExtendCannotResurrectIt) {
  CancelToken token;
  token.set_deadline(Clock::now() - std::chrono::milliseconds(1));
  EXPECT_TRUE(token.cancelled());
  token.clear_deadline();
  EXPECT_FALSE(token.has_deadline());
  EXPECT_FALSE(token.cancelled());
  // Once a deadline-free waiter joined a shared run, a later deadline-
  // carrying waiter must not re-arm the timer: extend is a max, and "no
  // deadline" is the top element.
  token.extend_deadline(Clock::now() + std::chrono::milliseconds(1));
  EXPECT_FALSE(token.has_deadline());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelToken, ExplicitCancelWinsOverAnyDeadline) {
  CancelToken token;
  token.set_deadline(Clock::now() + std::chrono::hours(1));
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  token.clear_deadline();
  EXPECT_TRUE(token.cancelled()) << "cancel() is sticky";
}

TEST(CancelToken, ConcurrentExtendersAndPollersAreRaceFree) {
  CancelToken token;
  token.set_deadline(Clock::now() + std::chrono::milliseconds(50));
  std::atomic<bool> stop{false};
  std::thread extender([&] {
    while (!stop.load()) {
      token.extend_deadline(Clock::now() + std::chrono::milliseconds(50));
      std::this_thread::yield();
    }
  });
  // A poller thread hammers cancelled() while the extender keeps pushing
  // the deadline out; the token must never fire.
  const Clock::time_point until =
      Clock::now() + std::chrono::milliseconds(30);
  bool fired = false;
  while (Clock::now() < until) fired = fired || token.cancelled();
  stop.store(true);
  extender.join();
  EXPECT_FALSE(fired);
}

}  // namespace
}  // namespace foscil
