#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace foscil {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 50; ++i)
    if (a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.5, 4.0);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 4.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int x = rng.uniform_int(3, 6);
    EXPECT_GE(x, 3);
    EXPECT_LE(x, 6);
    saw_lo |= (x == 3);
    saw_hi |= (x == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, IndexStaysBelowBound) {
  Rng rng(11);
  for (int i = 0; i < 500; ++i) EXPECT_LT(rng.index(17), 17u);
}

TEST(Rng, IndexOfZeroViolatesContract) {
  Rng rng(1);
  EXPECT_THROW((void)rng.index(0), ContractViolation);
}

TEST(Rng, PickReturnsElementOfVector) {
  Rng rng(13);
  const std::vector<int> pool{4, 8, 15, 16, 23, 42};
  for (int i = 0; i < 100; ++i) {
    const int x = rng.pick(pool);
    EXPECT_NE(std::find(pool.begin(), pool.end(), x), pool.end());
  }
}

TEST(Rng, PickEmptyViolatesContract) {
  Rng rng(1);
  EXPECT_THROW((void)rng.pick(std::vector<int>{}), ContractViolation);
}

TEST(Rng, SimplexSumsToOneWithPositiveParts) {
  Rng rng(15);
  for (std::size_t n : {1u, 3u, 10u}) {
    const std::vector<double> w = rng.simplex(n);
    ASSERT_EQ(w.size(), n);
    double total = 0.0;
    for (double x : w) {
      EXPECT_GT(x, 0.0);
      total += x;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(Rng, InvertedBoundsViolateContract) {
  Rng rng(1);
  EXPECT_THROW((void)rng.uniform(1.0, 0.0), ContractViolation);
  EXPECT_THROW((void)rng.uniform_int(5, 4), ContractViolation);
}

}  // namespace
}  // namespace foscil
