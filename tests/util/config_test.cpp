#include "util/config.hpp"

#include <gtest/gtest.h>

namespace foscil {
namespace {

TEST(Config, ParsesSectionsAndScalars) {
  const Config c = Config::parse(
      "top = 1\n"
      "[platform]\n"
      "rows = 3\n"
      "cols=2\n"
      "  edge  =  4.5  \n");
  EXPECT_EQ(c.get_int("top"), 1);
  EXPECT_EQ(c.get_int("platform.rows"), 3);
  EXPECT_EQ(c.get_int("platform.cols"), 2);
  EXPECT_DOUBLE_EQ(c.get_double("platform.edge"), 4.5);
}

TEST(Config, CommentsAndBlankLinesIgnored) {
  const Config c = Config::parse(
      "# full-line comment\n"
      "\n"
      "a = 1  # trailing comment\n"
      "b = 2  ; alt comment\n");
  EXPECT_EQ(c.get_int("a"), 1);
  EXPECT_EQ(c.get_int("b"), 2);
}

TEST(Config, ListsOfDoubles) {
  const Config c = Config::parse("[levels]\nvalues = 0.6, 0.8,1.3\n");
  const std::vector<double> v = c.get_doubles("levels.values");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 0.6);
  EXPECT_DOUBLE_EQ(v[1], 0.8);
  EXPECT_DOUBLE_EQ(v[2], 1.3);
}

TEST(Config, Booleans) {
  const Config c = Config::parse(
      "a = true\nb = no\nc = 1\nd = false\ne = maybe\n");
  EXPECT_TRUE(c.get_bool("a"));
  EXPECT_FALSE(c.get_bool("b"));
  EXPECT_TRUE(c.get_bool("c"));
  EXPECT_FALSE(c.get_bool("d"));
  EXPECT_THROW((void)c.get_bool("e"), ConfigError);
}

TEST(Config, DefaultsForMissingKeys) {
  const Config c = Config::parse("x = 7\n");
  EXPECT_EQ(c.get_int_or("x", 1), 7);
  EXPECT_EQ(c.get_int_or("y", 1), 1);
  EXPECT_DOUBLE_EQ(c.get_double_or("z", 2.5), 2.5);
  EXPECT_EQ(c.get_string_or("w", "fallback"), "fallback");
  EXPECT_TRUE(c.has("x"));
  EXPECT_FALSE(c.has("y"));
}

TEST(Config, MissingRequiredKeyThrows) {
  const Config c = Config::parse("");
  EXPECT_THROW((void)c.get_double("nope"), ConfigError);
}

TEST(Config, TypeMismatchesThrowWithKeyName) {
  const Config c = Config::parse("word = hello\npartial = 3x\n");
  try {
    (void)c.get_double("word");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& error) {
    EXPECT_NE(std::string(error.what()).find("word"), std::string::npos);
  }
  EXPECT_THROW((void)c.get_int("partial"), ConfigError);
}

TEST(Config, MalformedLinesReportLineNumbers) {
  try {
    (void)Config::parse("ok = 1\nthis line has no equals\n");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW((void)Config::parse("[unterminated\n"), ConfigError);
  EXPECT_THROW((void)Config::parse("[]\n"), ConfigError);
  EXPECT_THROW((void)Config::parse("= 3\n"), ConfigError);
}

TEST(Config, DuplicateKeysRejected) {
  EXPECT_THROW((void)Config::parse("a = 1\na = 2\n"), ConfigError);
  // Same key name in different sections is fine.
  const Config c = Config::parse("[x]\na = 1\n[y]\na = 2\n");
  EXPECT_EQ(c.get_int("x.a"), 1);
  EXPECT_EQ(c.get_int("y.a"), 2);
}

TEST(Config, EmptyAndBadListElementsRejected) {
  const Config c = Config::parse("l = 1.0, , 2.0\nm = 1.0, abc\n");
  EXPECT_THROW((void)c.get_doubles("l"), ConfigError);
  EXPECT_THROW((void)c.get_doubles("m"), ConfigError);
}

TEST(Config, KeysAreSorted) {
  const Config c = Config::parse("b = 1\n[s]\na = 2\n");
  const auto keys = c.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "b");
  EXPECT_EQ(keys[1], "s.a");
}

TEST(Config, LoadMissingFileThrows) {
  EXPECT_THROW((void)Config::load("/nonexistent/foscil.ini"), ConfigError);
}

}  // namespace
}  // namespace foscil
