#include "util/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace foscil {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  const std::size_t n = 10007;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); }, 4);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  bool touched = false;
  parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, SingleWorkerRunsInline) {
  std::vector<std::size_t> order;
  parallel_for(5, [&](std::size_t i) { order.push_back(i); }, 1);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, MoreThreadsThanWorkStillCoversAll) {
  std::vector<std::atomic<int>> hits(3);
  parallel_for(3, [&](std::size_t i) { hits[i].fetch_add(1); }, 64);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, PropagatesWorkerException) {
  EXPECT_THROW(
      parallel_for(
          100,
          [](std::size_t i) {
            if (i == 57) throw std::runtime_error("boom");
          },
          4),
      std::runtime_error);
}

TEST(ParallelReduce, SumsLikeSequential) {
  const std::size_t n = 5000;
  const double parallel_sum = parallel_reduce(
      n, 0.0,
      [](std::size_t i, double acc) { return acc + static_cast<double>(i); },
      [](double a, double b) { return a + b; }, 4);
  EXPECT_DOUBLE_EQ(parallel_sum, static_cast<double>(n) * (n - 1) / 2.0);
}

TEST(ParallelReduce, DeterministicAcrossThreadCounts) {
  // Max-reduction is order-insensitive; verify identical answers for
  // different worker counts on the same data.
  const std::size_t n = 1234;
  auto body = [](std::size_t i, double acc) {
    const double value = static_cast<double>((i * 2654435761u) % 1000);
    return value > acc ? value : acc;
  };
  auto join = [](double a, double b) { return a > b ? a : b; };
  const double one = parallel_reduce(n, -1.0, body, join, 1);
  const double four = parallel_reduce(n, -1.0, body, join, 4);
  const double nine = parallel_reduce(n, -1.0, body, join, 9);
  EXPECT_EQ(one, four);
  EXPECT_EQ(one, nine);
}

TEST(ParallelReduce, EmptyRangeReturnsInit) {
  const int result = parallel_reduce(
      0, 42, [](std::size_t, int acc) { return acc + 1; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(result, 42);
}

TEST(HardwareParallelism, IsAtLeastOne) {
  EXPECT_GE(hardware_parallelism(), 1u);
}

}  // namespace
}  // namespace foscil
