#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/contracts.hpp"

namespace foscil {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "12345"});
  const std::string out = table.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 12345 |"), std::string::npos);
}

TEST(TextTable, RowArityMismatchViolatesContract) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), ContractViolation);
}

TEST(TextTable, EmptyHeaderViolatesContract) {
  EXPECT_THROW(TextTable{std::vector<std::string>{}}, ContractViolation);
}

TEST(TextTable, CountsRows) {
  TextTable table({"x"});
  EXPECT_EQ(table.rows(), 0u);
  table.add_row({"1"});
  table.add_row({"2"});
  EXPECT_EQ(table.rows(), 2u);
}

TEST(TextTable, CsvQuotesSpecialCharacters) {
  TextTable table({"key", "note"});
  table.add_row({"plain", "hello"});
  table.add_row({"commas", "a,b"});
  table.add_row({"quotes", "say \"hi\""});
  const std::string csv = table.csv();
  EXPECT_NE(csv.find("key,note\n"), std::string::npos);
  EXPECT_NE(csv.find("plain,hello\n"), std::string::npos);
  EXPECT_NE(csv.find("commas,\"a,b\"\n"), std::string::npos);
  EXPECT_NE(csv.find("quotes,\"say \"\"hi\"\"\"\n"), std::string::npos);
}

TEST(Formatting, FixedPrecision) {
  EXPECT_EQ(fmt(1.23456), "1.2346");
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(-0.5, 1), "-0.5");
}

TEST(Formatting, Celsius) { EXPECT_EQ(fmt_celsius(64.987), "64.99 C"); }

TEST(Formatting, PercentCarriesSign) {
  EXPECT_EQ(fmt_percent(0.112), "+11.2%");
  EXPECT_EQ(fmt_percent(-0.05), "-5.0%");
}

}  // namespace
}  // namespace foscil
