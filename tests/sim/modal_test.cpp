// Differential battery for the modal evaluation engine (sim/modal.hpp):
// every quantity the planners consume must match the reference dense walk
// to roundoff, on randomized platforms and schedules, and the parallel
// candidate scans must be bit-identical for any thread count.
#include "sim/modal.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "../test_support.hpp"
#include "core/ao.hpp"
#include "core/exs.hpp"
#include "core/pco.hpp"
#include "sim/peak.hpp"
#include "sim/steady.hpp"

namespace foscil::sim {
namespace {

constexpr double kAgreeTol = 1e-10;

TEST(ModalEvaluator, StableBoundaryMatchesReferenceOnRandomPlatforms) {
  Rng rng(901);
  const std::vector<std::pair<std::size_t, std::size_t>> grids = {
      {1, 2}, {2, 2}, {2, 3}};
  for (const auto& [rows, cols] : grids) {
    const auto platform = testing::grid_platform(rows, cols);
    const SteadyStateAnalyzer reference(platform.model);
    const ModalEvaluator modal(platform.model);
    for (int trial = 0; trial < 8; ++trial) {
      const auto s = testing::random_schedule(
          rng, platform.num_cores(), rng.uniform(0.02, 0.3), 4);
      const linalg::Vector expect = reference.stable_boundary(s);
      const linalg::Vector got = modal.stable_boundary(s);
      EXPECT_LT((got - expect).inf_norm(), kAgreeTol)
          << rows << "x" << cols << " trial " << trial;
    }
  }
}

TEST(ModalEvaluator, PeriodEndMatchesReferenceTransient) {
  Rng rng(907);
  const auto platform = testing::grid_platform(2, 2);
  const SteadyStateAnalyzer reference(platform.model);
  const ModalEvaluator modal(platform.model);
  for (int trial = 0; trial < 8; ++trial) {
    const auto s =
        testing::random_schedule(rng, platform.num_cores(), 0.1, 5);
    const linalg::Vector expect = reference.simulator().period_end(
        s, reference.simulator().ambient_start());
    const linalg::Vector got =
        platform.model->spectral().w() * modal.period_end_modal(s);
    EXPECT_LT((got - expect).inf_norm(), kAgreeTol) << "trial " << trial;
  }
}

TEST(ModalEvaluator, CoreRisesMatchFullBackTransform) {
  // The die-row fast path must equal slicing the full back-transform.
  Rng rng(911);
  const auto platform = testing::grid_platform(2, 3);
  const ModalEvaluator modal(platform.model);
  for (int trial = 0; trial < 5; ++trial) {
    const auto s =
        testing::random_schedule(rng, platform.num_cores(), 0.05, 4);
    const linalg::Vector rises = modal.stable_core_rises(s);
    const linalg::Vector full =
        platform.model->core_rises(modal.stable_boundary(s));
    EXPECT_LT((rises - full).inf_norm(), 1e-12) << "trial " << trial;
  }
}

TEST(ModalEvaluator, AnalyzerDispatchesToSelectedEngine) {
  const auto platform = testing::grid_platform(2, 2);
  const SteadyStateAnalyzer reference(platform.model,
                                      EvalEngine::kReference);
  const SteadyStateAnalyzer modal(platform.model, EvalEngine::kModal);
  EXPECT_EQ(reference.engine(), EvalEngine::kReference);
  EXPECT_EQ(modal.engine(), EvalEngine::kModal);
  EXPECT_EQ(reference.modal(), nullptr);
  ASSERT_NE(modal.modal(), nullptr);

  Rng rng(913);
  const auto s = testing::random_schedule(rng, platform.num_cores(), 0.1, 3);
  EXPECT_LT(
      (modal.stable_boundary(s) - reference.stable_boundary(s)).inf_norm(),
      kAgreeTol);
  EXPECT_LT((modal.stable_core_rises(s) - reference.stable_core_rises(s))
                .inf_norm(),
            kAgreeTol);
  const PeakInfo ref_peak = step_up_peak(reference, sched::to_step_up(s));
  const PeakInfo mod_peak = step_up_peak(modal, sched::to_step_up(s));
  EXPECT_EQ(mod_peak.core, ref_peak.core);
  EXPECT_NEAR(mod_peak.rise, ref_peak.rise, kAgreeTol);
}

TEST(ModalEvaluator, MemoizesVoltageStatesAndIntervalFactors) {
  const auto platform = testing::grid_platform(2, 2);
  const ModalEvaluator modal(platform.model);
  Rng rng(917);
  const auto s = testing::random_schedule(rng, platform.num_cores(), 0.1, 3);
  const std::size_t states = s.state_intervals().size();

  const linalg::Vector first = modal.stable_boundary(s);
  const std::size_t entries = modal.cache_entries();
  EXPECT_GE(entries, 1u);
  EXPECT_LE(entries, states);

  // Re-evaluating hits the memo for every interval and changes nothing.
  const std::uint64_t hits_before = modal.cache_hits();
  const linalg::Vector second = modal.stable_boundary(s);
  EXPECT_EQ(modal.cache_entries(), entries);
  EXPECT_GE(modal.cache_hits(), hits_before + states);
  EXPECT_EQ((second - first).inf_norm(), 0.0);  // cached factors are exact
}

TEST(ModalEvaluator, ConcurrentEvaluationsAgree) {
  // Many threads hammer one shared evaluator with a mix of schedules; every
  // thread must observe exactly the single-threaded answers (the memo is
  // the only mutable state, and it only ever stores values identical to a
  // fresh computation).
  const auto platform = testing::grid_platform(2, 2);
  const ModalEvaluator modal(platform.model);
  Rng rng(919);
  std::vector<sched::PeriodicSchedule> schedules;
  std::vector<linalg::Vector> expected;
  for (int i = 0; i < 6; ++i) {
    schedules.push_back(
        testing::random_schedule(rng, platform.num_cores(), 0.08, 4));
    expected.push_back(modal.stable_boundary(schedules.back()));
  }

  constexpr int kThreads = 16;
  std::vector<double> worst(kThreads, 0.0);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      double local = 0.0;
      for (int rep = 0; rep < 40; ++rep) {
        const std::size_t i =
            static_cast<std::size_t>((t + rep) % schedules.size());
        const linalg::Vector got = modal.stable_boundary(schedules[i]);
        local = std::max(local, (got - expected[i]).inf_norm());
      }
      worst[static_cast<std::size_t>(t)] = local;
    });
  }
  for (auto& th : pool) th.join();
  for (double w : worst) EXPECT_EQ(w, 0.0);
}

class EngineDifferential : public ::testing::Test {
 protected:
  EngineDifferential()
      : platform_(testing::grid_platform(2, 2, {0.6, 0.8, 1.0, 1.3})) {}

  core::Platform platform_;
};

TEST_F(EngineDifferential, RunAoAgreesAcrossEngines) {
  core::AoOptions reference;
  reference.eval_engine = EvalEngine::kReference;
  core::AoOptions modal;
  modal.eval_engine = EvalEngine::kModal;
  for (const double t_max : {50.0, 55.0, 60.0}) {
    const auto ref = core::run_ao(platform_, t_max, reference);
    const auto mod = core::run_ao(platform_, t_max, modal);
    EXPECT_EQ(mod.m, ref.m) << "t_max " << t_max;
    EXPECT_EQ(mod.feasible, ref.feasible) << "t_max " << t_max;
    EXPECT_NEAR(mod.throughput, ref.throughput, 1e-9) << "t_max " << t_max;
    EXPECT_NEAR(mod.peak_rise, ref.peak_rise, kAgreeTol) << "t_max " << t_max;
  }
}

TEST_F(EngineDifferential, RunAoBitIdenticalAcrossThreadCounts) {
  for (const auto engine : {EvalEngine::kReference, EvalEngine::kModal}) {
    core::AoOptions serial;
    serial.eval_engine = engine;
    serial.scan_threads = 1;
    core::AoOptions parallel = serial;
    parallel.scan_threads = 4;
    const auto a = core::run_ao(platform_, 55.0, serial);
    const auto b = core::run_ao(platform_, 55.0, parallel);
    EXPECT_EQ(b.m, a.m);
    EXPECT_EQ(b.feasible, a.feasible);
    EXPECT_EQ(b.throughput, a.throughput);  // bit-identical plan
    EXPECT_EQ(b.peak_rise, a.peak_rise);
    EXPECT_EQ(b.evaluations, a.evaluations);
    for (std::size_t core = 0; core < platform_.num_cores(); ++core) {
      const auto& sa = a.schedule.core_segments(core);
      const auto& sb = b.schedule.core_segments(core);
      ASSERT_EQ(sb.size(), sa.size());
      for (std::size_t seg = 0; seg < sa.size(); ++seg) {
        EXPECT_EQ(sb[seg].duration, sa[seg].duration);
        EXPECT_EQ(sb[seg].voltage, sa[seg].voltage);
      }
    }
  }
}

TEST_F(EngineDifferential, RunPcoAgreesAcrossEngines) {
  core::PcoOptions reference;
  reference.ao.eval_engine = EvalEngine::kReference;
  core::PcoOptions modal;
  modal.ao.eval_engine = EvalEngine::kModal;
  const auto ref = core::run_pco(platform_, 55.0, reference);
  const auto mod = core::run_pco(platform_, 55.0, modal);
  EXPECT_EQ(mod.m, ref.m);
  EXPECT_EQ(mod.feasible, ref.feasible);
  EXPECT_NEAR(mod.throughput, ref.throughput, 1e-9);
  EXPECT_NEAR(mod.peak_rise, ref.peak_rise, 1e-8);
}

TEST_F(EngineDifferential, RunExsBitIdenticalAcrossEnginesAndThreads) {
  // The incremental EXS path re-confirms every near-budget candidate with
  // the exact evaluation, so its accepted set — and therefore the winner —
  // is bit-identical to the reference engine for any thread count.
  core::ExsOptions reference;
  reference.eval_engine = EvalEngine::kReference;
  reference.threads = 1;
  const auto expect = core::run_exs(platform_, 55.0, reference);
  for (const auto engine : {EvalEngine::kReference, EvalEngine::kModal}) {
    for (const unsigned threads : {1u, 4u}) {
      core::ExsOptions options;
      options.eval_engine = engine;
      options.threads = threads;
      const auto got = core::run_exs(platform_, 55.0, options);
      EXPECT_EQ(got.feasible, expect.feasible);
      EXPECT_EQ(got.throughput, expect.throughput);
      EXPECT_EQ(got.peak_rise, expect.peak_rise);
      for (std::size_t core = 0; core < platform_.num_cores(); ++core)
        EXPECT_EQ(got.schedule.voltage_at(core, 0.0),
                  expect.schedule.voltage_at(core, 0.0));
    }
  }
}

}  // namespace
}  // namespace foscil::sim
