#include "sim/peak.hpp"

#include <gtest/gtest.h>

#include "../test_support.hpp"

namespace foscil::sim {
namespace {

class PeakTest : public ::testing::Test {
 protected:
  PeakTest()
      : platform_(testing::grid_platform(1, 3)),
        analyzer_(platform_.model) {}

  core::Platform platform_;
  SteadyStateAnalyzer analyzer_;
};

TEST_F(PeakTest, StepUpPeakSitsAtPeriodEnd) {
  Rng rng(201);
  const auto s = testing::random_step_up_schedule(rng, 3, 0.2, 4);
  const PeakInfo info = step_up_peak(analyzer_, s);
  EXPECT_EQ(info.time, s.period());
  EXPECT_GT(info.rise, 0.0);
  EXPECT_LT(info.core, 3u);
}

TEST_F(PeakTest, StepUpFastPathAgreesWithSampling) {
  Rng rng(203);
  for (int trial = 0; trial < 8; ++trial) {
    const auto s = testing::random_step_up_schedule(rng, 3, 0.3, 4);
    const PeakInfo fast = step_up_peak(analyzer_, s);
    const PeakInfo slow = sampled_peak(analyzer_, s, 128);
    // Sampling can only discover peaks <= the true one on a step-up
    // schedule, and the period end is in the sample set.
    EXPECT_NEAR(fast.rise, slow.rise, 1e-9) << "trial " << trial;
    EXPECT_EQ(fast.core, slow.core);
  }
}

TEST_F(PeakTest, StepUpPeakRequiresStepUpSchedule) {
  sched::PeriodicSchedule s(3, 0.1);
  s.set_core_segments(0, {{0.05, 1.3}, {0.05, 0.6}});  // step-down
  s.set_core_segments(1, {{0.1, 0.8}});
  s.set_core_segments(2, {{0.1, 0.8}});
  EXPECT_THROW((void)step_up_peak(analyzer_, s), ContractViolation);
}

TEST_F(PeakTest, SampledPeakDominatesBoundaryTemperatures) {
  Rng rng(205);
  const auto s = testing::random_schedule(rng, 3, 0.2, 4);
  const PeakInfo info = sampled_peak(analyzer_, s, 64);
  for (const auto& boundary : analyzer_.stable_boundaries(s)) {
    EXPECT_GE(info.rise,
              platform_.model->max_core_rise(boundary) - 1e-9);
  }
}

TEST_F(PeakTest, ConstantSchedulePeakIsSteadyState) {
  const linalg::Vector v{1.3, 0.6, 1.0};
  const auto s = sched::PeriodicSchedule::constant(v, 0.1);
  const PeakInfo info = sampled_peak(analyzer_, s, 16);
  const double expected =
      platform_.model->max_core_rise(platform_.model->steady_state(v));
  EXPECT_NEAR(info.rise, expected, 1e-9);
}

TEST_F(PeakTest, NonStepUpPeakCanBeInsideThePeriod) {
  // A step-*down* schedule peaks right after the high interval, i.e. in the
  // interior of the period — the situation Theorem 1 exists to avoid.
  sched::PeriodicSchedule s(3, 2.0);
  s.set_core_segments(0, {{1.0, 1.3}, {1.0, 0.6}});
  s.set_core_segments(1, {{1.0, 1.3}, {1.0, 0.6}});
  s.set_core_segments(2, {{1.0, 1.3}, {1.0, 0.6}});
  const PeakInfo info = sampled_peak(analyzer_, s, 256);
  EXPECT_LT(info.time, 2.0 - 1e-9);
  EXPECT_GT(info.time, 0.0);
  // And it must beat the boundary temperature strictly.
  const linalg::Vector boundary = analyzer_.stable_boundary(s);
  EXPECT_GT(info.rise, platform_.model->max_core_rise(boundary) + 1e-9);
}

TEST_F(PeakTest, MoreSamplesNeverLowerThePeak) {
  Rng rng(207);
  const auto s = testing::random_schedule(rng, 3, 0.25, 4);
  const double coarse = sampled_peak(analyzer_, s, 8).rise;
  const double fine = sampled_peak(analyzer_, s, 64).rise;
  const double finest = sampled_peak(analyzer_, s, 256).rise;
  EXPECT_GE(fine, coarse - 1e-12);
  EXPECT_GE(finest, fine - 1e-12);
  // Refinement converges.
  EXPECT_NEAR(finest, fine, 1e-3);
}

TEST_F(PeakTest, InvalidSampleCountViolatesContract) {
  const auto s =
      sched::PeriodicSchedule::constant(linalg::Vector(3, 1.0), 0.1);
  EXPECT_THROW((void)sampled_peak(analyzer_, s, 0), ContractViolation);
}

}  // namespace
}  // namespace foscil::sim
