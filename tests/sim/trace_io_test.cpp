#include "sim/trace_io.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "../test_support.hpp"

namespace foscil::sim {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  TraceIoTest()
      : platform_(testing::grid_platform(1, 2)), sim_(platform_.model) {
    sched::PeriodicSchedule s(2, 0.02);
    s.set_core_segments(0, {{0.01, 0.6}, {0.01, 1.3}});
    s.set_core_segments(1, {{0.02, 1.0}});
    trace_ = sim_.trace(s, sim_.ambient_start(), 2e-3, 0.02);
  }

  core::Platform platform_;
  TransientSimulator sim_;
  std::vector<TraceSample> trace_;
};

TEST_F(TraceIoTest, CoreColumnsHeaderAndShape) {
  const std::string csv =
      trace_to_csv(*platform_.model, trace_, platform_.t_ambient_c);
  std::istringstream in(csv);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header, "time_s,core0_c,core1_c");
  std::size_t rows = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++rows;
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 2);
  }
  EXPECT_EQ(rows, trace_.size());
}

TEST_F(TraceIoTest, AllNodesColumns) {
  const std::string csv =
      trace_to_csv(*platform_.model, trace_, platform_.t_ambient_c,
                   TraceColumns::kAllNodes);
  std::istringstream in(csv);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  const auto commas = std::count(header.begin(), header.end(), ',');
  EXPECT_EQ(static_cast<std::size_t>(commas), platform_.model->num_nodes());
}

TEST_F(TraceIoTest, ValuesAreAbsoluteCelsius) {
  const std::string csv =
      trace_to_csv(*platform_.model, trace_, platform_.t_ambient_c);
  std::istringstream in(csv);
  std::string header;
  std::getline(in, header);
  std::string first;
  ASSERT_TRUE(std::getline(in, first));
  // The trace starts at ambient: first row reads t=0, 35, 35.
  double t = -1.0;
  double c0 = 0.0;
  double c1 = 0.0;
  char comma;
  std::istringstream row(first);
  row >> t >> comma >> c0 >> comma >> c1;
  EXPECT_EQ(t, 0.0);
  EXPECT_NEAR(c0, 35.0, 1e-9);
  EXPECT_NEAR(c1, 35.0, 1e-9);
}

TEST_F(TraceIoTest, RoundTripThroughFile) {
  const std::string path = ::testing::TempDir() + "/foscil_trace.csv";
  write_trace_csv(path, *platform_.model, trace_, platform_.t_ambient_c);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(),
            trace_to_csv(*platform_.model, trace_, platform_.t_ambient_c));
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, UnwritablePathThrows) {
  EXPECT_THROW(write_trace_csv("/nonexistent-dir/x.csv", *platform_.model,
                               trace_, platform_.t_ambient_c),
               std::runtime_error);
}

TEST_F(TraceIoTest, IoErrorNamesThePathAndCause) {
  try {
    write_trace_csv("/nonexistent-dir/x.csv", *platform_.model, trace_,
                    platform_.t_ambient_c);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("/nonexistent-dir/x.csv"), std::string::npos)
        << message;
    EXPECT_NE(message.find("cannot open"), std::string::npos) << message;
  }
}

TEST_F(TraceIoTest, FullDiskSurfacesAsErrorNotTruncation) {
  // /dev/full opens writable but fails every flush with ENOSPC — the
  // kernel's stand-in for a full disk.  The writer must report it instead
  // of silently truncating.
  if (!std::ofstream("/dev/full").is_open())
    GTEST_SKIP() << "no /dev/full on this system";
  EXPECT_THROW(write_trace_csv("/dev/full", *platform_.model, trace_,
                               platform_.t_ambient_c),
               std::runtime_error);
}

}  // namespace
}  // namespace foscil::sim
