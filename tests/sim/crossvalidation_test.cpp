// Cross-validation of the production thermal engine against independent
// numerical paths:
//   * the spectral transient (eq. 3) vs brute-force RK4 integration of
//     dT/dt = A T + B on real platform models and real schedules,
//   * the stable status (eq. 4) vs long-horizon RK4,
//   * superposition/linearity properties the theorems lean on.
#include <gtest/gtest.h>

#include "../test_support.hpp"
#include "linalg/ode.hpp"
#include "sim/steady.hpp"

namespace foscil::sim {
namespace {

struct GridCase {
  std::size_t rows;
  std::size_t cols;
};

class CrossValidation : public ::testing::TestWithParam<GridCase> {};

TEST_P(CrossValidation, TransientMatchesRk4ThroughASchedule) {
  const auto [rows, cols] = GetParam();
  const core::Platform p = testing::grid_platform(rows, cols);
  const TransientSimulator sim(p.model);
  const linalg::Matrix a = p.model->a_matrix();

  Rng rng(900 + rows * 10 + cols);
  const auto schedule =
      testing::random_schedule(rng, p.num_cores(), 0.08, 3);

  linalg::Vector analytic = sim.ambient_start();
  linalg::Vector numeric = sim.ambient_start();
  for (const auto& interval : schedule.state_intervals()) {
    analytic = sim.advance(analytic, interval.voltages, interval.length);
    const linalg::Vector b = p.model->b_vector(interval.voltages);
    numeric = linalg::rk4_integrate(a, b, numeric, interval.length, 2000);
  }
  EXPECT_LT((analytic - numeric).inf_norm(), 1e-7)
      << rows << "x" << cols;
}

TEST_P(CrossValidation, StableStatusMatchesLongRk4) {
  const auto [rows, cols] = GetParam();
  const core::Platform p = testing::grid_platform(rows, cols);
  const SteadyStateAnalyzer analyzer(p.model);
  const linalg::Matrix a = p.model->a_matrix();

  Rng rng(950 + rows * 10 + cols);
  const auto schedule =
      testing::random_schedule(rng, p.num_cores(), 0.5, 2);

  // March RK4 through repeated periods until the boundary temperature
  // settles, then compare with the analytic resolvent answer.
  linalg::Vector numeric(p.model->num_nodes());
  for (int rep = 0; rep < 800; ++rep) {
    for (const auto& interval : schedule.state_intervals()) {
      const linalg::Vector b = p.model->b_vector(interval.voltages);
      numeric = linalg::rk4_integrate(a, b, numeric, interval.length, 200);
    }
  }
  const linalg::Vector analytic = analyzer.stable_boundary(schedule);
  EXPECT_LT((analytic - numeric).inf_norm(), 2e-3) << rows << "x" << cols;
}

INSTANTIATE_TEST_SUITE_P(PaperGrids, CrossValidation,
                         ::testing::Values(GridCase{1, 2}, GridCase{1, 3},
                                           GridCase{2, 3}),
                         [](const ::testing::TestParamInfo<GridCase>& param_info) {
                           return std::to_string(param_info.param.rows) + "x" +
                                  std::to_string(param_info.param.cols);
                         });

TEST(Linearity, SteadyStateSuperposesInHeat) {
  // T_inf is linear in the heat vector — the superposition property the
  // proof of Theorem 2 invokes.
  const core::Platform p = testing::grid_platform(1, 3);
  linalg::Vector psi_a(p.model->num_nodes());
  linalg::Vector psi_b(p.model->num_nodes());
  psi_a[0] = 7.0;
  psi_b[1] = 3.0;
  psi_b[2] = 5.0;
  const linalg::Vector t_a = p.model->steady_state_from_heat(psi_a);
  const linalg::Vector t_b = p.model->steady_state_from_heat(psi_b);
  linalg::Vector psi_ab = psi_a;
  psi_ab += psi_b;
  const linalg::Vector t_ab = p.model->steady_state_from_heat(psi_ab);
  EXPECT_TRUE(linalg::allclose(t_ab, t_a + t_b, 1e-10, 1e-12));
}

TEST(Linearity, TransientSuperposesAcrossInputAndState) {
  // T(t; T0, B) = e^{At} T0 + phi(t) B splits exactly into the zero-input
  // and zero-state responses.
  const core::Platform p = testing::grid_platform(1, 2);
  const TransientSimulator sim(p.model);
  const linalg::Vector v{1.3, 0.8};
  linalg::Vector t0(p.model->num_nodes(), 2.0);
  const double dt = 0.04;

  const linalg::Vector full = sim.advance(t0, v, dt);
  const linalg::Vector zero_input =
      p.model->spectral().exp_apply(dt, t0);
  const linalg::Vector zero_state =
      sim.advance(sim.ambient_start(), v, dt);
  EXPECT_LT((full - (zero_input + zero_state)).inf_norm(), 1e-10);
}

TEST(Linearity, StableBoundaryIsMonotoneInVoltages) {
  // Raising any segment's voltage cannot cool any node in stable status.
  const core::Platform p = testing::grid_platform(1, 3);
  const SteadyStateAnalyzer analyzer(p.model);
  sched::PeriodicSchedule low(3, 0.1);
  low.set_core_segments(0, {{0.05, 0.6}, {0.05, 1.0}});
  low.set_core_segments(1, {{0.1, 0.8}});
  low.set_core_segments(2, {{0.04, 0.7}, {0.06, 0.9}});
  sched::PeriodicSchedule high = low;
  high.set_core_segments(1, {{0.1, 1.2}});
  const linalg::Vector t_low = analyzer.stable_boundary(low);
  const linalg::Vector t_high = analyzer.stable_boundary(high);
  for (std::size_t i = 0; i < t_low.size(); ++i)
    EXPECT_GE(t_high[i], t_low[i] - 1e-12) << "node " << i;
}

}  // namespace
}  // namespace foscil::sim
