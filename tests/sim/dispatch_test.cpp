// Dispatch-level differential battery (DESIGN.md §14): the full modal
// evaluation stack — single candidates, batches, and whole planning runs —
// must produce bit-identical results whether the kernel table is the forced
// scalar oracle or the best level this CPU offers, and must stay within the
// usual 1e-10 envelope of the reference dense walk on both.  Grids go up to
// 8x8 (~200 thermal nodes) so the vector loops run many full lane groups,
// not just tails.
#include <gtest/gtest.h>

#include <vector>

#include "../test_support.hpp"
#include "core/ao.hpp"
#include "linalg/simd.hpp"
#include "sim/modal.hpp"
#include "sim/peak.hpp"
#include "sim/steady.hpp"

namespace foscil::sim {
namespace {

constexpr double kAgreeTol = 1e-10;

using linalg::simd::Level;
using linalg::simd::set_active_level;

class ScopedLevel {
 public:
  explicit ScopedLevel(Level level) : previous_(set_active_level(level)) {}
  ~ScopedLevel() { set_active_level(previous_); }
  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;

 private:
  Level previous_;
};

bool has_avx2() {
  return linalg::simd::detected_level() == Level::kAvx2;
}

// Platforms (and their eigendecompositions) are built per dispatch level:
// the spectral factorization itself runs through the kernels, so forcing
// the level *before* construction exercises the whole pipeline under it.
struct LevelRun {
  std::vector<linalg::Vector> boundaries;
  std::vector<linalg::Vector> rises;
  std::vector<linalg::Vector> batch_rises;
};

LevelRun evaluate_under_level(Level level, std::size_t rows, std::size_t cols,
                              unsigned seed) {
  const ScopedLevel forced(level);
  const auto platform = testing::grid_platform(rows, cols);
  const ModalEvaluator modal(platform.model);
  Rng rng(seed);
  std::vector<sched::PeriodicSchedule> schedules;
  for (int trial = 0; trial < 6; ++trial)
    schedules.push_back(testing::random_schedule(
        rng, platform.num_cores(), rng.uniform(0.02, 0.2), 4));
  LevelRun run;
  for (const auto& s : schedules) {
    run.boundaries.push_back(modal.stable_boundary(s));
    run.rises.push_back(modal.stable_core_rises(s));
  }
  run.batch_rises =
      modal.batch_stable_core_rises(schedules.data(), schedules.size());
  return run;
}

TEST(SimdDispatchDifferential, ModalBatteryBitIdenticalAcrossLevels) {
  if (!has_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  const std::vector<std::pair<std::size_t, std::size_t>> grids = {
      {2, 3}, {4, 4}, {8, 8}};
  for (const auto& [rows, cols] : grids) {
    const unsigned seed = static_cast<unsigned>(1000 + rows * 100 + cols);
    const LevelRun scalar =
        evaluate_under_level(Level::kScalar, rows, cols, seed);
    const LevelRun best = evaluate_under_level(Level::kAvx2, rows, cols, seed);
    ASSERT_EQ(scalar.boundaries.size(), best.boundaries.size());
    for (std::size_t i = 0; i < scalar.boundaries.size(); ++i) {
      EXPECT_EQ((scalar.boundaries[i] - best.boundaries[i]).inf_norm(), 0.0)
          << rows << "x" << cols << " schedule " << i;
      EXPECT_EQ((scalar.rises[i] - best.rises[i]).inf_norm(), 0.0)
          << rows << "x" << cols << " schedule " << i;
      EXPECT_EQ((scalar.batch_rises[i] - best.batch_rises[i]).inf_norm(), 0.0)
          << rows << "x" << cols << " schedule " << i;
    }
  }
}

TEST(SimdDispatchDifferential, ModalMatchesReferenceUnderBothLevels) {
  const std::vector<Level> levels =
      has_avx2() ? std::vector<Level>{Level::kScalar, Level::kAvx2}
                 : std::vector<Level>{Level::kScalar};
  for (const Level level : levels) {
    const ScopedLevel forced(level);
    const auto platform = testing::grid_platform(2, 3);
    const SteadyStateAnalyzer reference(platform.model);
    const ModalEvaluator modal(platform.model);
    Rng rng(1203);
    for (int trial = 0; trial < 6; ++trial) {
      const auto s = testing::random_schedule(
          rng, platform.num_cores(), rng.uniform(0.02, 0.2), 4);
      EXPECT_LT(
          (modal.stable_boundary(s) - reference.stable_boundary(s)).inf_norm(),
          kAgreeTol)
          << linalg::simd::level_name(level) << " trial " << trial;
    }
  }
}

TEST(SimdDispatchDifferential, BatchEqualsSinglesOnBothEngines) {
  // batch_stable_core_rises is documented bit-identical to the per-schedule
  // loop — on the modal engine (amortized SoA pass) and on the reference
  // engine (plain loop), at the active dispatch level whatever it is.
  const auto platform = testing::grid_platform(4, 4);
  Rng rng(1301);
  std::vector<sched::PeriodicSchedule> schedules;
  for (int trial = 0; trial < 9; ++trial)
    schedules.push_back(testing::random_step_up_schedule(
        rng, platform.num_cores(), rng.uniform(0.02, 0.2), 3));
  for (const auto engine : {EvalEngine::kReference, EvalEngine::kModal}) {
    const SteadyStateAnalyzer analyzer(platform.model, engine);
    const std::vector<linalg::Vector> batch =
        analyzer.batch_stable_core_rises(schedules.data(), schedules.size());
    ASSERT_EQ(batch.size(), schedules.size());
    for (std::size_t i = 0; i < schedules.size(); ++i) {
      const linalg::Vector single = analyzer.stable_core_rises(schedules[i]);
      EXPECT_EQ((batch[i] - single).inf_norm(), 0.0)
          << eval_engine_name(engine) << " schedule " << i;
    }
    // And the batched peaks carry the same argmax/rise/time.
    const std::vector<PeakInfo> peaks =
        batch_step_up_peaks(analyzer, schedules);
    for (std::size_t i = 0; i < schedules.size(); ++i) {
      const PeakInfo single = step_up_peak(analyzer, schedules[i]);
      EXPECT_EQ(peaks[i].rise, single.rise);
      EXPECT_EQ(peaks[i].core, single.core);
      EXPECT_EQ(peaks[i].time, single.time);
    }
  }
}

TEST(SimdDispatchDifferential, EmptyBatchIsEmpty) {
  const auto platform = testing::grid_platform(2, 2);
  const SteadyStateAnalyzer analyzer(platform.model, EvalEngine::kModal);
  EXPECT_TRUE(analyzer.batch_stable_core_rises(nullptr, 0).empty());
}

core::SchedulerResult ao_under_level(Level level, std::size_t rows,
                                     std::size_t cols, double t_max) {
  const ScopedLevel forced(level);
  const auto platform =
      testing::grid_platform(rows, cols, {0.6, 0.8, 1.0, 1.3});
  core::AoOptions options;
  options.eval_engine = EvalEngine::kModal;
  return core::run_ao(platform, t_max, options);
}

TEST(SimdDispatchDifferential, RunAoPlansBitIdenticalAcrossLevels) {
  if (!has_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  const std::vector<std::pair<std::size_t, std::size_t>> grids = {{2, 3},
                                                                  {4, 4}};
  for (const auto& [rows, cols] : grids) {
    for (const double t_max : {50.0, 55.0}) {
      const auto scalar = ao_under_level(Level::kScalar, rows, cols, t_max);
      const auto best = ao_under_level(Level::kAvx2, rows, cols, t_max);
      EXPECT_EQ(best.m, scalar.m) << rows << "x" << cols << " " << t_max;
      EXPECT_EQ(best.feasible, scalar.feasible);
      EXPECT_EQ(best.throughput, scalar.throughput);  // bit-identical plan
      EXPECT_EQ(best.peak_rise, scalar.peak_rise);
      EXPECT_EQ(best.evaluations, scalar.evaluations);
      for (std::size_t core = 0; core < scalar.schedule.num_cores(); ++core) {
        const auto& ss = scalar.schedule.core_segments(core);
        const auto& bs = best.schedule.core_segments(core);
        ASSERT_EQ(bs.size(), ss.size());
        for (std::size_t seg = 0; seg < ss.size(); ++seg) {
          EXPECT_EQ(bs[seg].duration, ss[seg].duration);
          EXPECT_EQ(bs[seg].voltage, ss[seg].voltage);
        }
      }
    }
  }
}

}  // namespace
}  // namespace foscil::sim
