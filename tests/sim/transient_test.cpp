#include "sim/transient.hpp"

#include <gtest/gtest.h>

#include "../test_support.hpp"

namespace foscil::sim {
namespace {

class TransientTest : public ::testing::Test {
 protected:
  TransientTest()
      : platform_(testing::grid_platform(1, 2)), sim_(platform_.model) {}

  core::Platform platform_;
  TransientSimulator sim_;
};

TEST_F(TransientTest, ZeroDtReturnsInput) {
  linalg::Vector t0(platform_.model->num_nodes(), 1.0);
  const linalg::Vector t1 = sim_.advance(t0, linalg::Vector(2, 1.0), 0.0);
  EXPECT_LT((t1 - t0).inf_norm(), 1e-15);
}

TEST_F(TransientTest, ConvergesToSteadyState) {
  const linalg::Vector v{1.2, 0.7};
  const linalg::Vector t_inf = platform_.model->steady_state(v);
  const linalg::Vector t_end =
      sim_.advance(sim_.ambient_start(), v, 1e5);
  EXPECT_LT((t_end - t_inf).inf_norm(), 1e-8);
}

TEST_F(TransientTest, MatchesClosedFormEquation3) {
  // T(t) = e^{At} T0 + (I - e^{At}) T_inf.
  const linalg::Vector v{1.3, 0.6};
  linalg::Vector t0(platform_.model->num_nodes());
  for (std::size_t i = 0; i < t0.size(); ++i)
    t0[i] = 0.5 * static_cast<double>(i % 3);
  const double dt = 0.037;

  const auto& spec = platform_.model->spectral();
  const linalg::Matrix e_at = spec.exp(dt);
  const linalg::Vector t_inf = platform_.model->steady_state(v);
  linalg::Vector expected = e_at * t0;
  expected += t_inf;
  expected -= e_at * t_inf;

  const linalg::Vector actual = sim_.advance(t0, v, dt);
  EXPECT_LT((actual - expected).inf_norm(), 1e-10);
}

TEST_F(TransientTest, CompositionEqualsSingleStep) {
  // Advancing 2x 25 ms equals one 50 ms step under constant input.
  const linalg::Vector v{1.0, 1.0};
  linalg::Vector t0(platform_.model->num_nodes(), 0.3);
  const linalg::Vector two_steps =
      sim_.advance(sim_.advance(t0, v, 0.025), v, 0.025);
  const linalg::Vector one_step = sim_.advance(t0, v, 0.05);
  EXPECT_LT((two_steps - one_step).inf_norm(), 1e-11);
}

TEST_F(TransientTest, PeriodEndWalksAllIntervals) {
  sched::PeriodicSchedule s(2, 0.1);
  s.set_core_segments(0, {{0.04, 0.6}, {0.06, 1.3}});
  s.set_core_segments(1, {{0.1, 1.0}});
  const linalg::Vector direct = sim_.period_end(s, sim_.ambient_start());

  // Manual reconstruction via the two state intervals.
  linalg::Vector manual = sim_.ambient_start();
  manual = sim_.advance(manual, linalg::Vector{0.6, 1.0}, 0.04);
  manual = sim_.advance(manual, linalg::Vector{1.3, 1.0}, 0.06);
  EXPECT_LT((direct - manual).inf_norm(), 1e-12);
}

TEST_F(TransientTest, BoundaryTemperaturesHaveOnePerInterval) {
  sched::PeriodicSchedule s(2, 0.2);
  s.set_core_segments(0, {{0.05, 0.6}, {0.15, 1.3}});
  s.set_core_segments(1, {{0.1, 0.8}, {0.1, 1.2}});
  const auto boundaries = sim_.boundary_temperatures(s, sim_.ambient_start());
  // 3 state intervals (breaks at 0.05 and 0.1) => 4 boundary vectors.
  ASSERT_EQ(boundaries.size(), 4u);
  EXPECT_LT(boundaries.front().inf_norm(), 1e-15);
  const linalg::Vector end = sim_.period_end(s, sim_.ambient_start());
  EXPECT_LT((boundaries.back() - end).inf_norm(), 1e-12);
}

TEST_F(TransientTest, HeatingFromAmbientIsMonotoneUnderConstantLoad) {
  const linalg::Vector v{1.3, 1.3};
  linalg::Vector prev = sim_.ambient_start();
  for (int k = 1; k <= 20; ++k) {
    const linalg::Vector cur =
        sim_.advance(sim_.ambient_start(), v, 0.01 * k);
    for (std::size_t i = 0; i < cur.size(); ++i)
      EXPECT_GE(cur[i], prev[i] - 1e-12);
    prev = cur;
  }
}

TEST_F(TransientTest, TraceSamplesAreDenseAndOrdered) {
  sched::PeriodicSchedule s(2, 0.05);
  s.set_core_segments(0, {{0.02, 0.6}, {0.03, 1.3}});
  s.set_core_segments(1, {{0.05, 1.0}});
  const auto trace = sim_.trace(s, sim_.ambient_start(), 1e-3, 0.15);
  ASSERT_GT(trace.size(), 100u);
  EXPECT_EQ(trace.front().time, 0.0);
  EXPECT_NEAR(trace.back().time, 0.15, 1e-9);
  for (std::size_t k = 1; k < trace.size(); ++k)
    EXPECT_GT(trace[k].time, trace[k - 1].time);
}

TEST_F(TransientTest, TraceAgreesWithDirectAdvance) {
  sched::PeriodicSchedule s(2, 0.05);
  s.set_core_segments(0, {{0.02, 0.6}, {0.03, 1.3}});
  s.set_core_segments(1, {{0.05, 1.2}});
  const auto trace = sim_.trace(s, sim_.ambient_start(), 2e-3, 0.05);
  const linalg::Vector end = sim_.period_end(s, sim_.ambient_start());
  EXPECT_LT((trace.back().rises - end).inf_norm(), 1e-10);
}

TEST_F(TransientTest, NegativeDtViolatesContract) {
  EXPECT_THROW(
      (void)sim_.advance(sim_.ambient_start(), linalg::Vector(2, 1.0), -0.1),
      ContractViolation);
}

TEST(TransientSimulator, NullModelViolatesContract) {
  EXPECT_THROW(TransientSimulator{nullptr}, ContractViolation);
}

}  // namespace
}  // namespace foscil::sim
