#include "sim/faults.hpp"

#include <gtest/gtest.h>

#include "../test_support.hpp"

namespace foscil::sim {
namespace {

core::Platform small_platform() { return testing::grid_platform(1, 2); }

TEST(Faults, ZeroSpecIsInert) {
  const core::Platform p = small_platform();
  const FaultSpec spec;
  EXPECT_FALSE(spec.any());
  EXPECT_FALSE(spec.perturbs_plant());

  FaultedPlant plant(p.model, spec);
  // No perturbation => the plant *is* the nominal model, pointer-identical,
  // so the zero-fault path has no rebuilt-model rounding.
  EXPECT_EQ(plant.true_model().get(), p.model.get());

  const linalg::Vector v(p.num_cores(), 1.3);
  plant.request(v);  // boot: no transition counted
  EXPECT_EQ(plant.transitions_applied(), 0u);
  plant.advance(0.5, 4);
  const linalg::Vector seen = plant.read_sensors();
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_GT(seen[i], 0.0);
  // Faultless sensors are deterministic and exact: a second identical run
  // reads identically, and readings equal the true core rises.
  FaultedPlant again(p.model, spec);
  again.request(v);
  again.advance(0.5, 4);
  const linalg::Vector seen2 = again.read_sensors();
  for (std::size_t i = 0; i < seen.size(); ++i)
    EXPECT_DOUBLE_EQ(seen[i], seen2[i]);
  EXPECT_DOUBLE_EQ(seen.max(), plant.true_max_rise());
}

TEST(Faults, SeededRunsReproduce) {
  const core::Platform p = small_platform();
  FaultSpec spec = FaultSpec::at_intensity(0.8, 1234);
  const auto run = [&](const FaultSpec& s) {
    FaultedPlant plant(p.model, s);
    linalg::Vector v(p.num_cores(), 1.3);
    plant.request(v);
    double sum = 0.0;
    for (int k = 0; k < 20; ++k) {
      v[0] = (k % 2 == 0) ? 0.6 : 1.3;
      plant.request(v);
      plant.advance(0.01, 2);
      sum += plant.read_sensors().sum();
    }
    return sum;
  };
  EXPECT_DOUBLE_EQ(run(spec), run(spec));
  FaultSpec other = spec;
  other.seed = 99;
  EXPECT_NE(run(spec), run(other));
}

TEST(Faults, BiasShiftsReadingsExactly) {
  const core::Platform p = small_platform();
  FaultSpec spec;
  spec.sensors.bias_k = -2.5;
  FaultedPlant biased(p.model, spec);
  FaultedPlant honest(p.model, FaultSpec{});
  const linalg::Vector v(p.num_cores(), 1.0);
  biased.request(v);
  honest.request(v);
  biased.advance(0.2, 2);
  honest.advance(0.2, 2);
  const linalg::Vector b = biased.read_sensors();
  const linalg::Vector h = honest.read_sensors();
  for (std::size_t i = 0; i < b.size(); ++i)
    EXPECT_NEAR(b[i], h[i] - 2.5, 1e-12);
}

TEST(Faults, NoiseVariesAcrossReads) {
  const core::Platform p = small_platform();
  FaultSpec spec;
  spec.sensors.noise_sigma_k = 0.5;
  FaultedPlant plant(p.model, spec);
  plant.request(linalg::Vector(p.num_cores(), 1.0));
  plant.advance(0.1, 2);
  const linalg::Vector first = plant.read_sensors();
  const linalg::Vector second = plant.read_sensors();  // same instant
  EXPECT_NE(first[0], second[0]);
}

TEST(Faults, StuckSensorPinsItsReading) {
  const core::Platform p = small_platform();
  FaultSpec spec;
  spec.sensors.stuck_cores = {1};
  spec.sensors.stuck_at_k = 42.0;
  FaultedPlant plant(p.model, spec);
  plant.request(linalg::Vector(p.num_cores(), 1.3));
  for (int k = 0; k < 3; ++k) {
    plant.advance(0.05, 2);
    const linalg::Vector seen = plant.read_sensors();
    EXPECT_DOUBLE_EQ(seen[1], 42.0);
    EXPECT_NE(seen[0], 42.0);
  }
}

TEST(Faults, CertainDropFreezesBootConfiguration) {
  const core::Platform p = small_platform();
  FaultSpec spec;
  spec.transitions.drop_probability = 1.0;
  FaultedPlant plant(p.model, spec);
  const linalg::Vector boot(p.num_cores(), 0.6);
  plant.request(boot);  // boot is programmed, not switched: always lands
  linalg::Vector up(p.num_cores(), 1.3);
  for (int k = 0; k < 5; ++k) {
    plant.request(up);
    plant.advance(0.01, 1);
  }
  for (std::size_t i = 0; i < boot.size(); ++i)
    EXPECT_DOUBLE_EQ(plant.applied()[i], 0.6);
  EXPECT_EQ(plant.transitions_applied(), 0u);
  EXPECT_EQ(plant.transitions_dropped(), 5u * p.num_cores());
}

TEST(Faults, RequestingTheCurrentTargetRollsNoDice) {
  const core::Platform p = small_platform();
  FaultSpec spec;
  spec.transitions.drop_probability = 1.0;
  FaultedPlant plant(p.model, spec);
  const linalg::Vector v(p.num_cores(), 1.0);
  plant.request(v);
  plant.request(v);  // no-op: already applied
  EXPECT_EQ(plant.transitions_dropped(), 0u);
}

TEST(Faults, DelayedTransitionLandsAtItsDueTime) {
  const core::Platform p = small_platform();
  FaultSpec spec;
  spec.transitions.delay_probability = 1.0;
  spec.transitions.delay_s = 1e-3;
  FaultedPlant plant(p.model, spec);
  plant.request(linalg::Vector(p.num_cores(), 0.6));
  plant.request(linalg::Vector(p.num_cores(), 1.3));
  EXPECT_EQ(plant.transitions_delayed(), p.num_cores());
  EXPECT_DOUBLE_EQ(plant.applied()[0], 0.6);  // still in flight
  plant.advance(0.5e-3, 1);
  EXPECT_DOUBLE_EQ(plant.applied()[0], 0.6);  // due at 1 ms, not yet
  plant.advance(0.6e-3, 1);
  EXPECT_DOUBLE_EQ(plant.applied()[0], 1.3);  // landed mid-span
  EXPECT_EQ(plant.transitions_applied(), p.num_cores());
}

TEST(Faults, PerturbedPlantRunsHotterWithDegradedSink) {
  const core::Platform p = small_platform();
  FaultSpec spec;
  spec.r_convection_scale = 1.3;
  const auto perturbed = perturbed_model(p.model, spec);
  EXPECT_NE(perturbed.get(), p.model.get());
  const linalg::Vector v(p.num_cores(), 1.3);
  EXPECT_GT(perturbed->max_core_rise(perturbed->steady_state(v)),
            p.model->max_core_rise(p.model->steady_state(v)));
}

TEST(Faults, PowerJitterIsSeedStableAndPerCore) {
  const core::Platform p = small_platform();
  FaultSpec spec;
  spec.power_jitter = 0.1;
  const auto a = perturbed_model(p.model, spec);
  const auto b = perturbed_model(p.model, spec);
  // Same spec => the same sampled chip, even across plant instances.
  for (std::size_t i = 0; i < p.num_cores(); ++i) {
    EXPECT_DOUBLE_EQ(a->power().coefficients(i).gamma,
                     b->power().coefficients(i).gamma);
  }
  EXPECT_NE(a->power().coefficients(0).gamma,
            a->power().coefficients(1).gamma);
}

TEST(Faults, AmbientDriftShowsInSensorsAndTruePeak) {
  const core::Platform p = small_platform();
  FaultSpec spec;
  spec.ambient_drift_c = 2.0;
  spec.ambient_drift_period_s = 4.0;
  FaultedPlant plant(p.model, spec);
  FaultedPlant still(p.model, FaultSpec{});
  const linalg::Vector v(p.num_cores(), 1.0);
  plant.request(v);
  still.request(v);
  plant.advance(1.0, 8);  // quarter period: sin peaks at +1 => +2 K
  still.advance(1.0, 8);
  EXPECT_NEAR(plant.read_sensors()[0], still.read_sensors()[0] + 2.0, 1e-9);
  EXPECT_NEAR(plant.true_max_rise(), still.true_max_rise() + 2.0, 1e-9);
}

TEST(Faults, IntensityDialIsValidAndMonotone) {
  EXPECT_FALSE(FaultSpec::at_intensity(0.0).any());
  const FaultSpec mild = FaultSpec::at_intensity(0.3);
  const FaultSpec harsh = FaultSpec::at_intensity(0.9);
  mild.check();
  harsh.check();
  EXPECT_LT(harsh.sensors.bias_k, mild.sensors.bias_k);
  EXPECT_GT(harsh.transitions.drop_probability,
            mild.transitions.drop_probability);
  EXPECT_GT(harsh.r_convection_scale, mild.r_convection_scale);
}

// Property sweep over the dial: every knob's *severity* is monotone
// non-decreasing in intensity (bias grows more negative = more optimistic =
// worse), 0 is the identity, and out-of-range inputs clamp to the ends.
TEST(Faults, IntensityDialPropertySweep) {
  auto severity = [](const FaultSpec& s) {
    return std::vector<double>{
        -s.sensors.bias_k,  // more negative bias = more severe
        s.sensors.noise_sigma_k,
        s.transitions.drop_probability,
        s.transitions.delay_probability,
        s.transitions.delay_s,
        s.r_convection_scale,
        s.k_tim_scale >= 1.0 ? s.k_tim_scale : 1.0 / s.k_tim_scale,
        s.c_scale >= 1.0 ? s.c_scale : 1.0 / s.c_scale,
        s.alpha_scale,
        s.beta_scale,
        s.gamma_scale,
        s.power_jitter,
        s.ambient_drift_c,
    };
  };

  std::vector<double> previous = severity(FaultSpec::at_intensity(0.0));
  for (double x = 0.05; x <= 1.0 + 1e-12; x += 0.05) {
    const FaultSpec spec = FaultSpec::at_intensity(x);
    spec.check();
    const std::vector<double> current = severity(spec);
    for (std::size_t knob = 0; knob < current.size(); ++knob) {
      EXPECT_GE(current[knob], previous[knob])
          << "knob " << knob << " regressed at intensity " << x;
    }
    previous = current;
  }

  // Identity at zero: no fault configured at all, seed preserved.
  const FaultSpec zero = FaultSpec::at_intensity(0.0, 77);
  EXPECT_FALSE(zero.any());
  EXPECT_EQ(zero.seed, 77u);

  // Clamped outside [0, 1]: the ends, not an error.
  const FaultSpec over = FaultSpec::at_intensity(1.5);
  const FaultSpec top = FaultSpec::at_intensity(1.0);
  EXPECT_DOUBLE_EQ(over.sensors.bias_k, top.sensors.bias_k);
  EXPECT_DOUBLE_EQ(over.r_convection_scale, top.r_convection_scale);
  EXPECT_DOUBLE_EQ(over.transitions.drop_probability,
                   top.transitions.drop_probability);
  EXPECT_DOUBLE_EQ(over.ambient_drift_c, top.ambient_drift_c);
  EXPECT_FALSE(FaultSpec::at_intensity(-0.25).any());
}

TEST(Faults, WorkAccountingTracksAppliedVoltage) {
  const core::Platform p = small_platform();
  FaultedPlant plant(p.model, FaultSpec{});
  plant.request(linalg::Vector(p.num_cores(), 1.0));
  plant.advance(1.0, 1);
  EXPECT_NEAR(plant.work_integral(),
              1.0 * static_cast<double>(p.num_cores()), 1e-12);
  plant.request(linalg::Vector(p.num_cores(), 0.6));
  EXPECT_EQ(plant.transitions_applied(), p.num_cores());
  EXPECT_NEAR(plant.stall_volt_sum(),
              0.6 * static_cast<double>(p.num_cores()), 1e-12);
  plant.advance(1.0, 1);
  EXPECT_NEAR(plant.work_integral(),
              1.6 * static_cast<double>(p.num_cores()), 1e-12);
}

TEST(Faults, WarmStartSetsTheInitialState) {
  const core::Platform p = small_platform();
  FaultedPlant plant(p.model, FaultSpec{});
  const linalg::Vector v(p.num_cores(), 1.1);
  const linalg::Vector steady = p.model->steady_state(v);
  plant.warm_start(steady);
  plant.request(v);
  EXPECT_NEAR(plant.true_max_rise(), p.model->max_core_rise(steady), 1e-12);
  // At the steady state of the held voltages, nothing moves.
  plant.advance(0.5, 4);
  EXPECT_NEAR(plant.true_max_rise(), p.model->max_core_rise(steady), 1e-6);
}

TEST(Faults, SpecValidationRejectsNonsense) {
  FaultSpec bad;
  bad.transitions.drop_probability = 1.5;
  EXPECT_THROW(bad.check(), ContractViolation);
  bad = FaultSpec{};
  bad.transitions.delay_probability = 0.5;  // delay without a duration
  EXPECT_THROW(bad.check(), ContractViolation);
  bad = FaultSpec{};
  bad.r_convection_scale = 0.0;
  EXPECT_THROW(bad.check(), ContractViolation);
  bad = FaultSpec{};
  bad.power_jitter = 1.0;
  EXPECT_THROW(bad.check(), ContractViolation);
  const core::Platform p = small_platform();
  FaultSpec stuck;
  stuck.sensors.stuck_cores = {7};  // platform has 2 cores
  EXPECT_THROW(FaultedPlant(p.model, stuck), ContractViolation);
}

}  // namespace
}  // namespace foscil::sim
