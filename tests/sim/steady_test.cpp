#include "sim/steady.hpp"

#include <gtest/gtest.h>

#include "../test_support.hpp"
#include "linalg/lu.hpp"

namespace foscil::sim {
namespace {

class SteadyTest : public ::testing::Test {
 protected:
  SteadyTest()
      : platform_(testing::grid_platform(1, 3)),
        analyzer_(platform_.model) {}

  core::Platform platform_;
  SteadyStateAnalyzer analyzer_;
};

TEST_F(SteadyTest, StableBoundaryIsPeriodicFixedPoint) {
  // One more period of simulation from the stable boundary must return to
  // the same temperatures — the defining property of eq. (4).
  Rng rng(101);
  for (int trial = 0; trial < 5; ++trial) {
    const auto s = testing::random_schedule(rng, 3, 0.2, 4);
    const linalg::Vector boundary = analyzer_.stable_boundary(s);
    const linalg::Vector next =
        analyzer_.simulator().period_end(s, boundary);
    EXPECT_LT((next - boundary).inf_norm(), 1e-9) << "trial " << trial;
  }
}

TEST_F(SteadyTest, MatchesBruteForceRepetition) {
  // Repeating the schedule from ambient long enough converges to the
  // analytic stable status.
  Rng rng(103);
  const auto s = testing::random_schedule(rng, 3, 0.05, 3);
  linalg::Vector temps = analyzer_.simulator().ambient_start();
  // The sink's slowest mode has a tens-of-seconds time constant; 20000
  // periods of 50 ms give ~1000 s, far past convergence.
  for (int rep = 0; rep < 20000; ++rep)
    temps = analyzer_.simulator().period_end(s, temps);
  const linalg::Vector boundary = analyzer_.stable_boundary(s);
  EXPECT_LT((temps - boundary).inf_norm(), 1e-6);
}

TEST_F(SteadyTest, ConstantScheduleStableStateEqualsTInf) {
  const linalg::Vector v{1.2, 0.8, 1.0};
  const auto s = sched::PeriodicSchedule::constant(v, 0.1);
  const linalg::Vector boundary = analyzer_.stable_boundary(s);
  const linalg::Vector t_inf = platform_.model->steady_state(v);
  EXPECT_LT((boundary - t_inf).inf_norm(), 1e-9);
}

TEST_F(SteadyTest, StableBoundariesEndWhereTheyStart) {
  Rng rng(105);
  const auto s = testing::random_schedule(rng, 3, 0.3, 4);
  const auto boundaries = analyzer_.stable_boundaries(s);
  ASSERT_GE(boundaries.size(), 2u);
  EXPECT_LT((boundaries.front() - boundaries.back()).inf_norm(), 1e-9);
}

TEST_F(SteadyTest, StableStatusIsAboveFirstPeriod) {
  // Stable-status temperatures dominate the cold-start first period at
  // every boundary (heat only accumulates).
  Rng rng(107);
  const auto s = testing::random_schedule(rng, 3, 0.1, 3);
  const auto cold = analyzer_.simulator().boundary_temperatures(
      s, analyzer_.simulator().ambient_start());
  const auto stable = analyzer_.stable_boundaries(s);
  ASSERT_EQ(cold.size(), stable.size());
  for (std::size_t q = 0; q < cold.size(); ++q)
    for (std::size_t i = 0; i < cold[q].size(); ++i)
      EXPECT_GE(stable[q][i], cold[q][i] - 1e-12);
}

TEST_F(SteadyTest, Equation4FormHolds) {
  // T_ss(t_q) = T(t_q) + K_q (I - K)^{-1} T(t_p)  with T(0) = 0.
  Rng rng(109);
  const auto s = testing::random_schedule(rng, 3, 0.15, 3);
  const auto intervals = s.state_intervals();
  const auto cold = analyzer_.simulator().boundary_temperatures(
      s, analyzer_.simulator().ambient_start());
  const auto stable = analyzer_.stable_boundaries(s);
  const linalg::Vector correction =
      analyzer_.resolvent_apply(s.period(), cold.back());

  double elapsed = 0.0;
  for (std::size_t q = 0; q < intervals.size(); ++q) {
    elapsed += intervals[q].length;
    const linalg::Vector k_q_corr =
        platform_.model->spectral().exp_apply(elapsed, correction);
    linalg::Vector expected = cold[q + 1];
    expected += k_q_corr;
    EXPECT_LT((stable[q + 1] - expected).inf_norm(), 1e-9) << "q=" << q;
  }
}

TEST_F(SteadyTest, ResolventMatchesDenseInverse) {
  const double period = 0.08;
  const auto& spec = platform_.model->spectral();
  const std::size_t n = platform_.model->num_nodes();
  linalg::Vector x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = 0.1 * static_cast<double>(i + 1);
  const linalg::Vector fast = analyzer_.resolvent_apply(period, x);
  const linalg::Matrix dense = linalg::inverse(
      linalg::Matrix::identity(n) - spec.exp(period));
  EXPECT_LT((fast - dense * x).inf_norm(), 1e-9);
}

TEST_F(SteadyTest, StableTraceCoversExactlyOnePeriod) {
  Rng rng(111);
  const auto s = testing::random_schedule(rng, 3, 0.1, 3);
  const auto trace = analyzer_.stable_trace(s, 2e-3);
  EXPECT_NEAR(trace.back().time, s.period(), 1e-9);
  EXPECT_LT((trace.front().rises - trace.back().rises).inf_norm(), 1e-8);
}

TEST_F(SteadyTest, NonPositivePeriodViolatesContract) {
  EXPECT_THROW((void)analyzer_.resolvent_apply(
                   0.0, linalg::Vector(platform_.model->num_nodes())),
               ContractViolation);
}

}  // namespace
}  // namespace foscil::sim
