// End-to-end battery for the networked planning tier: a real PlanServer
// on a real socket, driven by the real NetClient.  Pins the contracts the
// class comments promise — bit-identical plans over the wire, READY
// gating, platform-skew rejection, malformed-stream close, slow-loris
// reaping, graceful drain with snapshot flush, shard failover, and warm
// restart — each on an ephemeral port so tests parallelize cleanly.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/net/client.hpp"
#include "serve/net/server.hpp"
#include "serve/service.hpp"
#include "../../test_support.hpp"

namespace foscil::serve::net {
namespace {

core::Platform small_platform() { return testing::grid_platform(1, 2); }

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "foscil_net_" + name;
}

WirePlanRequest small_request(double t_max_c) {
  WirePlanRequest request;
  request.t_max_c = t_max_c;
  request.ao.max_m = 8;  // keep the search cheap: wire tests, not planning
  return request;
}

PlanRequest direct_equivalent(const WirePlanRequest& wire) {
  PlanRequest request;
  request.platform = small_platform();
  request.t_max_c = wire.t_max_c;
  request.kind = wire.kind;
  request.ao = wire.ao;
  request.pco = wire.pco;
  return request;
}

/// One shard: service + server + event-loop thread, torn down in order.
class Shard {
 public:
  explicit Shard(ServerOptions server_options = {},
                 ServiceOptions service_options = {}) {
    if (service_options.workers == 0) service_options.workers = 2;
    service_options.warm_load_at_construction = false;
    service_ = std::make_unique<PlanningService>(service_options);
    server_ = std::make_unique<PlanServer>(*service_, small_platform(),
                                           server_options);
    port_ = server_->listen();
    thread_ = std::thread([this] { server_->run(); });
  }

  ~Shard() { stop(); }

  void stop() {
    if (thread_.joinable()) {
      server_->shutdown();
      thread_.join();
    }
  }

  /// Graceful counterpart to stop(): drain, then join run().
  void drain_and_join() {
    server_->begin_drain();
    if (thread_.joinable()) thread_.join();
  }

  /// Hard kill as a client would experience it: connections die mid-life.
  void kill() { stop(); }

  [[nodiscard]] Endpoint endpoint() const { return {"127.0.0.1", port_}; }
  [[nodiscard]] PlanServer& server() { return *server_; }
  [[nodiscard]] PlanningService& service() { return *service_; }

 private:
  std::unique_ptr<PlanningService> service_;
  std::unique_ptr<PlanServer> server_;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

ClientOptions fast_client_options() {
  ClientOptions options;
  options.backoff_initial_s = 0.005;
  options.backoff_max_s = 0.05;
  return options;
}

// ---- the happy path ------------------------------------------------------

TEST(NetE2E, PlansOverTheWireBitIdenticalToDirectPlanning) {
  Shard shard;
  NetClient client({shard.endpoint()}, small_platform(),
                   fast_client_options());
  for (const double t_max : {50.0, 57.5, 66.0}) {
    const WirePlanRequest request = small_request(t_max);
    const WirePlanResponse response = client.plan(request);
    const std::shared_ptr<const ServedPlan> direct =
        plan_direct(direct_equivalent(request));
    EXPECT_TRUE(plans_bit_identical(response.plan.result, direct->result))
        << "t_max " << t_max;
    EXPECT_EQ(response.plan.key, direct->key);
    EXPECT_TRUE(response.plan.certified_safe);
    EXPECT_FALSE(response.cache_hit);
  }
  EXPECT_EQ(client.stats().plans, 3u);
  EXPECT_EQ(client.stats().retries, 0u);
}

TEST(NetE2E, RepeatedRequestIsServedFromTheShardCache) {
  Shard shard;
  NetClient client({shard.endpoint()}, small_platform(),
                   fast_client_options());
  const WirePlanRequest request = small_request(55.0);
  const WirePlanResponse first = client.plan(request);
  const WirePlanResponse second = client.plan(request);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_TRUE(plans_bit_identical(first.plan.result, second.plan.result));
  EXPECT_EQ(client.stats().cache_hits, 1u);
}

TEST(NetE2E, PcoRequestsTravelWithTheirOwnOptionBlock) {
  Shard shard;
  NetClient client({shard.endpoint()}, small_platform(),
                   fast_client_options());
  WirePlanRequest request = small_request(60.0);
  request.kind = PlannerKind::kPco;
  request.pco.ao.max_m = 8;
  const WirePlanResponse response = client.plan(request);
  const std::shared_ptr<const ServedPlan> direct =
      plan_direct(direct_equivalent(request));
  EXPECT_EQ(response.plan.kind, PlannerKind::kPco);
  EXPECT_TRUE(plans_bit_identical(response.plan.result, direct->result));
}

TEST(NetE2E, HealthFrameReportsServiceAndSocketState) {
  Shard shard;
  NetClient client({shard.endpoint()}, small_platform(),
                   fast_client_options());
  (void)client.plan(small_request(55.0));
  (void)client.plan(small_request(55.0));
  const HealthInfo health = client.health(0);
  EXPECT_EQ(health.ready, 1);
  EXPECT_EQ(health.draining, 0);
  EXPECT_EQ(health.submitted, 2u);
  EXPECT_GE(health.completed, 1u);
  EXPECT_EQ(health.cache_hits, 1u);
  EXPECT_EQ(health.cache_lookups, 2u);
  EXPECT_GE(health.connections, 1u);
  EXPECT_GT(health.ewma_plan_seconds, 0.0);
}

// ---- READY gating --------------------------------------------------------

TEST(NetE2E, NotReadyIsRetryableAndClearsWhenReadyFlips) {
  ServerOptions options;
  options.manual_ready = true;
  Shard shard(options);
  NetClient client({shard.endpoint()}, small_platform(),
                   fast_client_options());

  const ReadyInfo gated = client.ready(0);
  EXPECT_EQ(gated.ready, 0);

  // With no retries the NOT_READY rejection surfaces as the final code.
  ClientOptions impatient = fast_client_options();
  impatient.max_retries = 0;
  NetClient one_shot({shard.endpoint()}, small_platform(), impatient);
  try {
    (void)one_shot.plan(small_request(55.0));
    FAIL() << "expected NetClientError";
  } catch (const NetClientError& error) {
    EXPECT_EQ(error.code(), StatusCode::kNotReady);
  }

  // A patient client retries straight through the flip.
  std::thread flipper([&shard] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    shard.server().set_ready(true);
  });
  const WirePlanResponse response = client.plan(small_request(55.0));
  flipper.join();
  EXPECT_TRUE(response.plan.certified_safe);
  EXPECT_GE(client.stats().retries +
                client.stats().statuses_by_code[status_index(
                    StatusCode::kNotReady)],
            1u);
  EXPECT_TRUE(client.await_ready(0, 1.0));
}

// ---- rejections ----------------------------------------------------------

TEST(NetE2E, PlatformSkewIsRejectedNotSilentlyPlanned) {
  Shard shard;  // serves grid_platform(1, 2)
  NetClient skewed({shard.endpoint()}, testing::grid_platform(2, 2),
                   fast_client_options());
  try {
    (void)skewed.plan(small_request(55.0));
    FAIL() << "expected NetClientError";
  } catch (const NetClientError& error) {
    EXPECT_EQ(error.code(), StatusCode::kPlatformMismatch);
  }
  EXPECT_EQ(skewed.stats().retries, 0u) << "mismatch must not be retried";
}

TEST(NetE2E, InfeasibleDomainComesBackMalformedWithoutKillingTheStream) {
  Shard shard;
  NetClient client({shard.endpoint()}, small_platform(),
                   fast_client_options());
  WirePlanRequest impossible = small_request(55.0);
  impossible.t_max_c = -40.0;  // below ambient: no schedule exists
  EXPECT_THROW((void)client.plan(impossible), NetClientError);
  // The connection survives the rejection: the next plan reuses it.
  const WirePlanResponse response = client.plan(small_request(55.0));
  EXPECT_TRUE(response.plan.certified_safe);
  EXPECT_EQ(client.stats().reconnects, 1u) << "no reconnect happened";
}

// ---- hostile bytes -------------------------------------------------------

/// Minimal raw TCP client for speaking garbage at the server.
class RawConnection {
 public:
  explicit RawConnection(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  }
  ~RawConnection() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_bytes(const std::string& bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
  }

  /// Read until EOF (or timeout); returns everything received.
  std::string drain(int timeout_ms = 2000) {
    std::string received;
    char chunk[4096];
    for (;;) {
      pollfd probe{fd_, POLLIN, 0};
      if (::poll(&probe, 1, timeout_ms) <= 0) break;
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) break;  // 0 = orderly close
      received.append(chunk, static_cast<std::size_t>(n));
    }
    return received;
  }

 private:
  int fd_ = -1;
};

TEST(NetE2E, MalformedStreamGetsOneStatusThenClose) {
  Shard shard;
  RawConnection raw(shard.server().port());
  raw.send_bytes("this is definitely not a frame, not even close........");
  const std::string reply = raw.drain();

  // The best-effort farewell is a parseable Status frame with request id 0.
  FrameAssembler assembler;
  assembler.feed(reply.data(), reply.size());
  Frame frame;
  ASSERT_EQ(assembler.next(&frame), FrameAssembler::Result::kFrame);
  EXPECT_EQ(frame.type, FrameType::kStatus);
  EXPECT_EQ(frame.request_id, 0u);
  const WireStatus status = decode_status(frame.body);
  EXPECT_EQ(status.code, StatusCode::kMalformed);

  // ... and the connection is gone, counted as a malformed close. The
  // counter ticks before the connection object is erased, so wait for both.
  for (int i = 0; i < 100 && (shard.server().stats().malformed_closes == 0 ||
                              shard.server().connection_count() != 0);
       ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(shard.server().stats().malformed_closes, 1u);
  EXPECT_EQ(shard.server().connection_count(), 0u);
}

TEST(NetE2E, SlowLorisPartialFrameIsReaped) {
  ServerOptions options;
  options.read_idle_timeout_s = 0.1;
  Shard shard(options);
  RawConnection raw(shard.server().port());
  // A valid prefix that never completes: magic + version, then silence.
  raw.send_bytes(std::string(kFrameMagic, 4) + std::string("\x01\x00", 2));
  const std::string reply = raw.drain(3000);
  EXPECT_TRUE(reply.empty()) << "a timed-out loris gets no reply";
  for (int i = 0; i < 200 && shard.server().stats().timeout_closes == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(shard.server().stats().timeout_closes, 1u);
  EXPECT_EQ(shard.server().connection_count(), 0u);
}

// ---- drain and failover --------------------------------------------------

TEST(NetE2E, DrainAnswersStoppingFlushesSnapshotAndReturns) {
  const std::string snapshot = temp_path("drain.snap");
  std::remove(snapshot.c_str());
  ServerOptions options;
  options.drain_snapshot_path = snapshot;
  auto shard = std::make_unique<Shard>(options);
  const Endpoint endpoint = shard->endpoint();

  NetClient client({endpoint}, small_platform(), fast_client_options());
  (void)client.plan(small_request(52.0));
  (void)client.plan(small_request(61.0));

  client.drain(0);
  shard->drain_and_join();  // run() must return on its own
  EXPECT_EQ(shard->server().stats().drains, 1u);
  shard.reset();

  // The drain snapshot warms a fresh service with both plans.
  ServiceOptions warmed;
  warmed.workers = 1;
  warmed.snapshot_path = snapshot;
  PlanningService revived(warmed);
  EXPECT_EQ(revived.stats().snapshot_loads, 1u);
  EXPECT_EQ(revived.stats().cache.entries, 2u);
  std::remove(snapshot.c_str());
}

TEST(NetE2E, KilledShardFailsOverToItsRingSuccessor) {
  Shard alpha;
  Shard beta;
  NetClient client({alpha.endpoint(), beta.endpoint()}, small_platform(),
                   fast_client_options());

  // Warm keys until both shards own at least one (routing is
  // deterministic, so scan t_max until the ring covers both endpoints).
  std::vector<WirePlanRequest> requests;
  bool saw_alpha = false;
  bool saw_beta = false;
  for (double t_max = 50.0; !(saw_alpha && saw_beta) && t_max < 80.0;
       t_max += 1.0) {
    const WirePlanRequest request = small_request(t_max);
    (client.route(request) == 0 ? saw_alpha : saw_beta) = true;
    requests.push_back(request);
  }
  ASSERT_TRUE(saw_alpha && saw_beta);
  for (const WirePlanRequest& request : requests)
    (void)client.plan(request);

  alpha.kill();  // connections die, no goodbye

  // Every key still resolves: keys alpha owned land on beta.
  for (const WirePlanRequest& request : requests) {
    const WirePlanResponse response = client.plan(request);
    EXPECT_TRUE(response.plan.certified_safe);
  }
  EXPECT_EQ(client.stats().plans, 2 * requests.size());
  // At least one key was alpha's, so at least one attempt failed over.
  EXPECT_GE(client.stats().failovers, 1u);
  EXPECT_GE(client.stats().transport_errors, 1u);
}

TEST(NetE2E, RestartedShardGatesReadyOnWarmRestore) {
  const std::string snapshot = temp_path("warm.snap");
  std::remove(snapshot.c_str());

  // First life: serve, drain, flush.
  ServerOptions first_options;
  first_options.drain_snapshot_path = snapshot;
  auto first = std::make_unique<Shard>(first_options);
  NetClient seeder({first->endpoint()}, small_platform(),
                   fast_client_options());
  const WirePlanRequest request = small_request(57.0);
  const WirePlanResponse original = seeder.plan(request);
  seeder.drain(0);
  first->drain_and_join();
  first.reset();

  // Second life: warm restore gates READY, then serves the cached plan.
  ServerOptions second_options;
  second_options.warm_snapshot_path = snapshot;
  Shard revived(second_options);
  NetClient client({revived.endpoint()}, small_platform(),
                   fast_client_options());
  ASSERT_TRUE(client.await_ready(0, 5.0));
  const ReadyInfo info = client.ready(0);
  EXPECT_EQ(info.ready, 1);
  EXPECT_EQ(info.warm_plans, 1u);
  EXPECT_EQ(info.load_failures, 0u);

  const WirePlanResponse served = client.plan(request);
  EXPECT_TRUE(served.cache_hit) << "warm restore must hit, not replan";
  EXPECT_TRUE(plans_bit_identical(served.plan.result, original.plan.result));
  std::remove(snapshot.c_str());
}

TEST(NetE2E, MissingWarmSnapshotStartsColdButReady) {
  ServerOptions options;
  options.warm_snapshot_path = temp_path("never_written.snap");
  Shard shard(options);
  NetClient client({shard.endpoint()}, small_platform(),
                   fast_client_options());
  ASSERT_TRUE(client.await_ready(0, 5.0));
  const ReadyInfo info = client.ready(0);
  EXPECT_EQ(info.ready, 1);
  EXPECT_EQ(info.warm_plans, 0u);
  EXPECT_EQ(info.load_failures, 1u);
  EXPECT_TRUE(client.plan(small_request(55.0)).plan.certified_safe);
}

// ---- the portable backend ------------------------------------------------

TEST(NetE2E, PollBackendServesTheSameContract) {
  ServerOptions options;
  options.force_poll = true;
  Shard shard(options);
  NetClient client({shard.endpoint()}, small_platform(),
                   fast_client_options());
  const WirePlanRequest request = small_request(55.0);
  const WirePlanResponse response = client.plan(request);
  const std::shared_ptr<const ServedPlan> direct =
      plan_direct(direct_equivalent(request));
  EXPECT_TRUE(plans_bit_identical(response.plan.result, direct->result));
  EXPECT_TRUE(client.plan(request).cache_hit);
}

}  // namespace
}  // namespace foscil::serve::net
